(* Command-line front end for the platform: run guest stacks concretely,
   hunt driver bugs (DDT+), reverse engineer drivers (REV+), profile
   workloads (PROFS) and compare consistency models.

   dune exec bin/s2e_cli.exe -- <command> --help *)

open Cmdliner
open S2e_tools
module Guest = S2e_guest.Guest
module Obs = S2e_obs
module Fault = S2e_fault.Fault

let driver_arg =
  let names = List.map fst Guest.drivers in
  let doc =
    Printf.sprintf "Driver to analyze: one of %s." (String.concat ", " names)
  in
  Arg.(value & opt string "pcnet" & info [ "driver" ] ~docv:"NAME" ~doc)

let model_arg =
  let doc = "Execution consistency model: SC-CE, SC-UE, SC-SE, LC, RC-OC or RC-CC." in
  Arg.(value & opt string "LC" & info [ "model" ] ~docv:"MODEL" ~doc)

let seconds_arg =
  let doc = "Wall-clock exploration budget in seconds." in
  Arg.(value & opt float 20.0 & info [ "seconds" ] ~docv:"S" ~doc)

let check_driver name =
  if not (List.mem_assoc name Guest.drivers) then begin
    Fmt.epr "unknown driver %S (have: %s)@." name
      (String.concat ", " (List.map fst Guest.drivers));
    exit 2
  end

(* --- run: boot a guest stack concretely on the reference VM --- *)

let run_cmd =
  let workload_arg =
    let doc = "Workload: exerciser, urlparse, ping, ping-buggy or mua." in
    Arg.(value & opt string "exerciser" & info [ "workload" ] ~docv:"W" ~doc)
  in
  let run driver workload =
    check_driver driver;
    let wl =
      match workload with
      | "exerciser" -> ("exerciser", S2e_guest.Workloads_src.exerciser)
      | "urlparse" -> ("urlparse", S2e_guest.Workloads_src.urlparse)
      | "ping" -> ("ping", S2e_guest.Workloads_src.ping ~buggy:false)
      | "ping-buggy" -> ("ping", S2e_guest.Workloads_src.ping ~buggy:true)
      | "mua" -> ("mua", S2e_guest.Workloads_src.mua)
      | w ->
          Fmt.epr "unknown workload %S@." w;
          exit 2
    in
    let img = Guest.build ~driver:(driver, List.assoc driver Guest.drivers) ~workload:wl () in
    let m = S2e_vm.Machine.create () in
    Guest.load_into_machine m img;
    ignore (S2e_vm.Netdev.inject_frame m.devices.netdev (Array.init 28 (fun i -> i)));
    let status = S2e_vm.Machine.run m in
    Fmt.pr "status: %s@."
      (match status with
      | S2e_vm.Machine.Halted -> "halted"
      | S2e_vm.Machine.Faulted f -> "faulted: " ^ f
      | S2e_vm.Machine.Running -> "still running (out of fuel)");
    Fmt.pr "instructions: %d@." m.instret;
    Fmt.pr "result: 0x%x@." (S2e_vm.Machine.read32 m Guest.result_addr);
    let out = S2e_vm.Machine.console_output m in
    if out <> "" then Fmt.pr "console: %s@." out
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Boot a guest stack concretely on the reference VM")
    Term.(const run $ driver_arg $ workload_arg)

(* --- ddt --- *)

let ddt_cmd =
  let run driver model seconds =
    check_driver driver;
    let consistency = S2e_core.Consistency.of_name model in
    let r = Ddt.run ~max_seconds:seconds ~driver ~consistency () in
    Fmt.pr "%a" Ddt.pp_result r
  in
  Cmd.v
    (Cmd.info "ddt" ~doc:"Test a driver for bugs (DDT+, paper section 6.1.1)")
    Term.(const run $ driver_arg $ model_arg $ seconds_arg)

(* --- rev --- *)

let rev_cmd =
  let listing_arg =
    let doc = "Print the synthesized driver listing." in
    Arg.(value & flag & info [ "listing" ] ~doc)
  in
  let baseline_arg =
    let doc = "Use the RevNIC-style baseline configuration." in
    Arg.(value & flag & info [ "baseline" ] ~doc)
  in
  let run driver seconds listing baseline =
    check_driver driver;
    let mode = if baseline then `Revnic_baseline else `Rev_plus in
    let r = Rev.run ~max_seconds:seconds ~mode ~driver () in
    Fmt.pr "coverage: %d/%d instructions (%.1f%%), %d blocks recovered@."
      r.covered_insns r.total_insns (100. *. r.coverage)
      (List.length r.cfg.blocks);
    if listing then print_string (Rev.synthesize r.cfg)
  in
  Cmd.v
    (Cmd.info "rev"
       ~doc:"Reverse engineer a driver binary (REV+, paper section 6.1.2)")
    Term.(const run $ driver_arg $ seconds_arg $ listing_arg $ baseline_arg)

(* --- profs --- *)

let profs_cmd =
  let workload_arg =
    let doc = "Workload to profile: urlparse, ping or ping-buggy." in
    Arg.(value & opt string "urlparse" & info [ "workload" ] ~docv:"W" ~doc)
  in
  let run workload seconds =
    let wl, frames, driver =
      let reply = Array.make 28 0 in
      reply.(0) <- 0x45;
      match workload with
      | "urlparse" ->
          ( ("urlparse", S2e_guest.Workloads_src.urlparse),
            [],
            ("nulldrv", S2e_guest.Drivers_src.nulldrv) )
      | "ping" ->
          ( ("ping", S2e_guest.Workloads_src.ping ~buggy:false),
            [ reply ],
            ("pcnet", List.assoc "pcnet" Guest.drivers) )
      | "ping-buggy" ->
          ( ("ping", S2e_guest.Workloads_src.ping ~buggy:true),
            [ reply ],
            ("pcnet", List.assoc "pcnet" Guest.drivers) )
      | w ->
          Fmt.epr "unknown workload %S@." w;
          exit 2
    in
    let r = Profs.run ~max_seconds:seconds ~driver ~frames ~workload:wl () in
    Fmt.pr "%d paths (%d completed), %d killed%s@." (List.length r.paths)
      (List.length (Profs.completed r))
      r.killed_paths
      (if r.unbounded then ", INFINITE LOOP DETECTED" else "");
    (match Profs.envelope r with
    | Some (lo, hi) -> Fmt.pr "instruction envelope: [%d, %d]@." lo hi
    | None -> ());
    List.iteri
      (fun i p ->
        if i < 12 then
          Fmt.pr "  path %4d: %6d instrs, %4d L1 misses, %3d TLB, %2d faults (%s)@."
            p.Profs.p_id p.p_instructions
            (p.p_i1_misses + p.p_d1_misses)
            p.p_tlb_misses p.p_page_faults p.p_status)
      r.paths
  in
  Cmd.v
    (Cmd.info "profs"
       ~doc:"Multi-path performance profiling (PROFS, paper section 6.1.3)")
    Term.(const run $ workload_arg $ seconds_arg)

(* --- explore: (parallel / distributed) multi-path exploration --- *)

(* Engine specification shared by `explore` (coordinator side) and the
   internal `worker` entry point: both must build bit-identical engines
   or state snapshots would not decode (the codec pins the base-image
   fingerprint). *)

let workload_names =
  [ "exerciser"; "urlparse"; "ping"; "ping-buggy"; "mua"; "symloop" ]

let workload_src = function
  | "exerciser" -> Some ("exerciser", S2e_guest.Workloads_src.exerciser)
  | "urlparse" -> Some ("urlparse", S2e_guest.Workloads_src.urlparse)
  | "ping" -> Some ("ping", S2e_guest.Workloads_src.ping ~buggy:false)
  | "ping-buggy" -> Some ("ping", S2e_guest.Workloads_src.ping ~buggy:true)
  | "mua" -> Some ("mua", S2e_guest.Workloads_src.mua)
  | "symloop" -> Some ("symloop", S2e_guest.Workloads_src.symloop)
  | _ -> None

(* Validate every exploration argument before any engine setup starts,
   with one consistent error shape: `s2e <cmd>: <problem>` to stderr,
   exit code 2. *)
let validate_explore_args ~cmd ~driver ~workload ~model ~searcher ~merge ~jobs
    ~procs ~seconds ~stats_interval =
  let fail msg =
    Fmt.epr "s2e %s: %s@." cmd msg;
    exit 2
  in
  if driver <> "nulldrv" && not (List.mem_assoc driver Guest.drivers) then
    fail
      (Printf.sprintf "unknown driver %S (have: nulldrv, %s)" driver
         (String.concat ", " (List.map fst Guest.drivers)));
  if workload_src workload = None then
    fail
      (Printf.sprintf "unknown workload %S (have: %s)" workload
         (String.concat ", " workload_names));
  (match S2e_core.Consistency.of_name model with
  | _ -> ()
  | exception Invalid_argument msg -> fail msg);
  (match S2e_core.Searcher.of_name searcher with
  | _ -> ()
  | exception Invalid_argument msg -> fail msg);
  (match S2e_merge.Policy.mode_of_string merge with
  | Ok _ -> ()
  | Error msg -> fail msg);
  if jobs < 1 then fail (Printf.sprintf "--jobs must be >= 1 (got %d)" jobs);
  if procs < 1 then fail (Printf.sprintf "--procs must be >= 1 (got %d)" procs);
  if seconds <= 0. then
    fail (Printf.sprintf "--seconds must be > 0 (got %g)" seconds);
  if stats_interval <= 0. then
    fail
      (Printf.sprintf "--stats-interval must be > 0 (got %g)" stats_interval)

(* Image + engine factory for a validated (driver, workload, model,
   searcher) spec.  The image is built once, outside the closure. *)
let engine_factory ~driver ~workload ~model ~searcher ~merge =
  let open S2e_core in
  let driver_src =
    if driver = "nulldrv" then S2e_guest.Drivers_src.nulldrv
    else List.assoc driver Guest.drivers
  in
  let wl = Option.get (workload_src workload) in
  let consistency = Consistency.of_name model in
  let img = Guest.build ~driver:(driver, driver_src) ~workload:wl () in
  let netdev_ports =
    (S2e_vm.Layout.port_netdev, S2e_vm.Layout.port_netdev + 16)
  in
  let merge_mode =
    match S2e_merge.Policy.mode_of_string merge with
    | Ok m -> m
    | Error msg -> invalid_arg msg
  in
  let make_engine () =
    let config = Executor.default_config () in
    config.consistency <- consistency;
    config.symbolic_hardware_ports <- [ netdev_ports ];
    let engine = Executor.create ~config () in
    engine.Executor.searcher <- Searcher.of_name searcher;
    Guest.load_into_engine engine img;
    Executor.set_unit engine [ driver; fst wl ];
    (* After the searcher: the controller wraps whatever is installed. *)
    ignore (S2e_merge.Controller.install ~mode:merge_mode engine);
    engine
  in
  (img, make_engine)

(* One "kind":"final" JSONL line from an already-merged snapshot (the
   distributed path: worker registries arrive as Bye snapshots, not as
   local shards, so the periodic reporter cannot see them). *)
let write_merged_stats path snap ~elapsed =
  let open Obs in
  let metrics, hists =
    List.fold_left
      (fun (ms, hs) (name, v) ->
        match (v : Metrics.value) with
        | Metrics.Int i -> ((name, Jsonl.Num (float_of_int i)) :: ms, hs)
        | Metrics.Float f -> ((name, Jsonl.Num f) :: ms, hs)
        | Metrics.Hist { bounds; counts; sum } ->
            let nums l = Jsonl.Arr (List.map (fun x -> Jsonl.Num x) l) in
            ( ms,
              ( name,
                Jsonl.Obj
                  [
                    ("bounds", nums (Array.to_list bounds));
                    ( "counts",
                      nums (List.map float_of_int (Array.to_list counts)) );
                    ("sum", Jsonl.Num sum);
                  ] )
              :: hs ))
      ([], []) snap
  in
  let line =
    Jsonl.Obj
      [
        ("kind", Jsonl.Str "final");
        ("elapsed_s", Jsonl.Num elapsed);
        ("metrics", Jsonl.Obj (List.rev metrics));
        ("hist", Jsonl.Obj (List.rev hists));
      ]
  in
  let oc = open_out path in
  output_string oc (Jsonl.to_string line);
  output_char oc '\n';
  close_out oc

(* Resilience knobs, shared by `explore` and the internal `worker` entry
   point (the coordinator forwards them verbatim so every process in a
   distributed run injects from the same declarative plan). *)

let fault_plan_arg =
  let doc =
    "Deterministic fault-injection plan: comma-separated \
     $(i,site)=$(i,kind):$(i,prob)[#$(i,cap)] rules, e.g. \
     'dev.read=err:0.05,dma=drop:0.01,solver=unknown:0.02,\\
     proto=corrupt:0.03'.  Sites: dev.read, dma, irq, solver (kinds \
     unknown/latency), proto (kinds corrupt/delay/disconnect/stall).  \
     Empty disables injection."
  in
  Arg.(value & opt string "" & info [ "fault-plan" ] ~docv:"PLAN" ~doc)

let fault_seed_arg =
  let doc =
    "Seed for the fault plan's per-site deterministic streams: the same \
     plan + seed fires the same faults at the same injection-site draws."
  in
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N" ~doc)

let solver_timeout_arg =
  let doc =
    "Wall-clock watchdog per SAT-core call, in milliseconds; a query \
     past it returns Unknown and the engine degrades the fork \
     (follow-the-concrete, path marked incomplete).  0 disables the \
     watchdog."
  in
  Arg.(value & opt float 0. & info [ "solver-timeout-ms" ] ~docv:"MS" ~doc)

let solver_mode_arg =
  let doc =
    "SAT-core strategy for branch-feasibility queries: \
     $(b,incremental) (default — a ring of live SAT instances keyed on \
     constraint-prefix hashes; a query matching a live instance pops to \
     the common ancestor and asserts only the suffix, reusing encodings \
     and learned clauses), $(b,fresh) (one cold instance per query; the \
     escape hatch and differential baseline), or $(b,portfolio) (two \
     cold instances with different branching seeds racing under the \
     watchdog).  Test-case models are always solved cold, so case sets \
     are identical across modes."
  in
  Arg.(value & opt string "incremental" & info [ "solver" ] ~docv:"MODE" ~doc)

(* Validate and arm the resilience knobs; exits 2 on a malformed plan. *)
let setup_resilience ~cmd ?(solver_mode = "incremental") ~fault_plan
    ~fault_seed ~solver_timeout_ms () =
  (match S2e_solver.Solver.mode_of_string solver_mode with
  | Some m -> S2e_solver.Solver.set_default_mode m
  | None ->
      Fmt.epr "s2e %s: --solver must be incremental, fresh or portfolio \
               (got %S)@."
        cmd solver_mode;
      exit 2);
  if solver_timeout_ms < 0. then begin
    Fmt.epr "s2e %s: --solver-timeout-ms must be >= 0 (got %g)@." cmd
      solver_timeout_ms;
    exit 2
  end;
  if solver_timeout_ms > 0. then
    S2e_solver.Solver.set_default_timeout_ms (Some solver_timeout_ms);
  if fault_plan <> "" then
    match Fault.parse_plan fault_plan with
    | Ok plan -> Fault.install ~seed:fault_seed plan
    | Error msg ->
        Fmt.epr "s2e %s: bad --fault-plan: %s@." cmd msg;
        exit 2

(* One human-readable resilience line, printed only when something
   actually happened (timeouts, degradations, injected faults), so
   fault-free runs keep their exact historical output. *)
let print_resilience ~degradations ~incomplete ~unknowns ~timeouts ~injected =
  if degradations + incomplete + unknowns + timeouts + injected > 0 then
    Fmt.pr
      "resilience: %d degradations, %d incomplete paths, %d solver \
       unknowns (%d timeouts), %d injected faults@."
      degradations incomplete unknowns timeouts injected

(* "HOST:PORT" (split on the last ':' so a future bracketed v6 literal
   stays parseable); exits 2 on malformed input. *)
let parse_hostport ~cmd s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 ->
          ((if host = "" then "127.0.0.1" else host), p)
      | _ ->
          Fmt.epr "s2e %s: bad port in %S@." cmd s;
          exit 2)
  | None ->
      Fmt.epr "s2e %s: expected HOST:PORT, got %S@." cmd s;
      exit 2

(* Merged report of a distributed run, shared by `explore --procs` and
   `serve`.  Cluster and delta lines appear only when TCP workers were
   involved, so fork-only runs keep their exact historical output. *)
let print_dist_result ~jobs ~cases (r : S2e_dist.Coordinator.result) =
  let open S2e_dist in
  Fmt.pr "procs: %d@." r.Coordinator.procs;
  Fmt.pr "jobs: %d@." jobs;
  Fmt.pr "wall seconds: %.2f@." r.wall_seconds;
  Fmt.pr "paths completed: %d@."
    r.stats.S2e_core.Executor.states_completed;
  Fmt.pr "states created: %d@." r.stats.states_created;
  Fmt.pr "forks: %d@." r.stats.forks;
  Fmt.pr "instructions: %d (%d symbolic)@." r.stats.concrete_instret
    r.stats.sym_instret;
  Fmt.pr "steals: %d, requeues: %d, restarts: %d@." r.steals r.requeues
    r.restarts;
  if r.joins + r.reconnects + r.leaves + r.solo_paths > 0 then
    Fmt.pr "cluster: %d joins, %d reconnects, %d leaves, %d solo paths@."
      r.joins r.reconnects r.leaves r.solo_paths;
  if r.delta_full_bytes > 0 then
    Fmt.pr "snapshots: %d delta bytes for %d full (ratio %.2f)@."
      r.delta_bytes r.delta_full_bytes
      (float_of_int r.delta_bytes /. float_of_int r.delta_full_bytes);
  if r.naks + r.retransmits > 0 then
    Fmt.pr "transport: %d naks, %d retransmits@." r.naks r.retransmits;
  if r.unexplored > 0 then Fmt.pr "unexplored states: %d@." r.unexplored;
  List.iter
    (fun (id, attempts) ->
      Fmt.pr "abandoned item %d after %d attempts@." id attempts)
    r.abandoned;
  Fmt.pr
    "solver: %d queries, %d to SAT core, %d cache hits, %d unknowns, %.2fs@."
    r.solver_stats.S2e_solver.Solver.queries r.solver_stats.sat_queries
    r.solver_stats.cache_hits r.solver_stats.unknowns
    r.solver_stats.total_time;
  if r.solver_stats.inc_hits + r.solver_stats.inc_partials > 0 then
    Fmt.pr
      "incremental: %d full prefix hits, %d partial, %d clauses learned \
       (%d kept live)@."
      r.solver_stats.inc_hits r.solver_stats.inc_partials
      r.solver_stats.sat_learned r.solver_stats.sat_kept;
  (* Every injected fault across all processes: per-site fault.*
     counters travel in the workers' Bye snapshots. *)
  let injected =
    List.fold_left
      (fun acc (name, v) ->
        match v with
        | Obs.Metrics.Int n
          when String.length name > 6 && String.sub name 0 6 = "fault." ->
            acc + n
        | _ -> acc)
      0 r.obs
  in
  print_resilience ~degradations:r.stats.degradations
    ~incomplete:(Obs.Metrics.get_int r.obs "engine.incomplete_paths")
    ~unknowns:r.solver_stats.unknowns
    ~timeouts:(Obs.Metrics.get_int r.obs "solver.timeouts")
    ~injected;
  if cases then
    r.paths
    |> List.map (fun (p : Proto.path) ->
           Printf.sprintf "%s | %s" p.p_status
             (S2e_core.Parallel.test_case_to_string p.p_case))
    |> List.sort compare
    |> List.iter (Fmt.pr "%s@.")

(* The argv an exec'd worker process is spawned with: rebuilds the same
   engine spec and resilience plan from scratch (exec'd workers don't
   inherit memory). *)
let worker_argv ~driver ~workload ~model ~searcher ~merge ~jobs ~fault_plan
    ~fault_seed ~solver_timeout_ms ~solver_mode ~trace =
  Array.of_list
    ([
       Sys.executable_name;
       "worker";
       "--driver";
       driver;
       "--workload";
       workload;
       "--model";
       model;
       "--searcher";
       searcher;
       "--merge";
       merge;
       "--jobs";
       string_of_int jobs;
       "--fault-plan";
       fault_plan;
       "--fault-seed";
       string_of_int fault_seed;
       "--solver-timeout-ms";
       string_of_float solver_timeout_ms;
       "--solver";
       solver_mode;
     ]
    @ if trace then [ "--trace" ] else [])

let jobs_arg =
  let doc =
    "Parallel exploration workers (OCaml domains) per process.  Each worker \
     owns a private searcher and solver context; 1 reproduces the serial \
     engine bit-for-bit, N>1 explores the same path set in parallel."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let explore_workload_arg =
  let doc =
    Printf.sprintf "Workload: one of %s." (String.concat ", " workload_names)
  in
  Arg.(value & opt string "exerciser" & info [ "workload" ] ~docv:"W" ~doc)

let merge_arg =
  let doc =
    "State merging at post-dominator merge points: $(b,off) (plain \
     enumeration, the default), $(b,auto) (ite-join sibling states when \
     the predicted expression blow-up fits the node budget), or \
     $(b,always) (join unconditionally).  Merging trades path count for \
     expression size; unmergeable pairs (pending DMA, differing device or \
     interrupt state) always fall back to enumeration.  Note that merging \
     rendezvouses sibling states on their home worker, so it serializes \
     some of the parallelism --jobs buys."
  in
  Arg.(value & opt string "off" & info [ "merge" ] ~docv:"MODE" ~doc)

let searcher_arg =
  let doc =
    Printf.sprintf "Path selector per worker: one of %s."
      (String.concat ", " S2e_core.Searcher.selector_names)
  in
  Arg.(value & opt string "dfs" & info [ "searcher" ] ~docv:"SEL" ~doc)

let explore_cmd =
  let open S2e_core in
  let procs_arg =
    let doc =
      "Distribute exploration across $(docv) worker processes (fork-server \
       coordinator).  Composes with --jobs: each process runs that many \
       domains.  1 keeps everything in-process."
    in
    Arg.(value & opt int 1 & info [ "procs" ] ~docv:"N" ~doc)
  in
  let cases_arg =
    let doc =
      "Print one line per completed path (sorted): status plus the \
       canonical test case.  Identical across --jobs and --procs values by \
       construction; diff two runs to verify."
    in
    Arg.(value & flag & info [ "cases" ] ~doc)
  in
  let stats_out_arg =
    let doc =
      "Stream run statistics to $(docv) as JSONL: one snapshot object per \
       line, ['kind':'periodic'] while exploring plus an exact \
       ['kind':'final'] line after all workers join (with --procs > 1, only \
       the merged final line is written).  Render with the $(b,stats) \
       subcommand."
    in
    Arg.(value & opt (some string) None & info [ "stats-out" ] ~docv:"FILE" ~doc)
  in
  let stats_interval_arg =
    let doc = "Seconds between periodic snapshots (with $(b,--stats-out))." in
    Arg.(value & opt float 0.5 & info [ "stats-interval" ] ~docv:"SEC" ~doc)
  in
  let trace_out_arg =
    let doc =
      "Record a low-overhead event trace (path lifecycle, solver queries \
       with constraint-prefix attribution, phases, faults, transport \
       frames) to $(docv) as Chrome trace_event JSON — load it in \
       Perfetto/chrome://tracing, or render it with the $(b,trace) \
       subcommand.  With --procs > 1, worker timelines are shipped over \
       heartbeats and merged onto the coordinator's clock.  The ring \
       buffer is bounded: oldest events are dropped first (the file \
       records how many)."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let run driver workload model jobs procs seconds searcher merge cases
      stats_out stats_interval trace_out fault_plan fault_seed
      solver_timeout_ms solver_mode =
    validate_explore_args ~cmd:"explore" ~driver ~workload ~model ~searcher
      ~merge ~jobs ~procs ~seconds ~stats_interval;
    setup_resilience ~cmd:"explore" ~solver_mode ~fault_plan ~fault_seed
      ~solver_timeout_ms ();
    if trace_out <> None then begin
      Obs.Trace.set_enabled true;
      Obs.Trace.reset ()
    end;
    let write_trace path events ~dropped =
      let oc = open_out path in
      Obs.Trace.write_json oc ~dropped events;
      close_out oc;
      Fmt.pr "trace: %d events -> %s%s@." (List.length events) path
        (if dropped > 0 then Printf.sprintf " (%d dropped)" dropped else "")
    in
    let img, make_engine =
      engine_factory ~driver ~workload ~model ~searcher ~merge
    in
    let limits =
      {
        Executor.max_instructions = None;
        max_seconds = Some seconds;
        max_completed = None;
      }
    in
    let boot eng = Executor.boot eng ~entry:img.entry () in
    let print_cases lines =
      lines |> List.sort compare |> List.iter (Fmt.pr "%s@.")
    in
    if procs = 1 then begin
      let run_explore () = Parallel.explore ~jobs ~limits ~make_engine ~boot () in
      let r =
        match stats_out with
        | None -> run_explore ()
        | Some path ->
            (* Zero the registry so the final snapshot's totals are exactly
               this run's totals (the registry is process-wide).  The
               reporter is stopped through [with_reporter] so the exact
               "final" line is flushed even when exploration raises. *)
            Obs.Metrics.reset ();
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                Obs.Reporter.with_reporter ~interval:stats_interval oc
                  run_explore)
      in
      (match trace_out with
      | None -> ()
      | Some path ->
          let events, dropped = Obs.Trace.drain () in
          write_trace path events ~dropped);
      Fmt.pr "procs: 1@.";
      Fmt.pr "jobs: %d@." r.Parallel.jobs;
      Fmt.pr "wall seconds: %.2f@." r.wall_seconds;
      Fmt.pr "paths completed: %d@." r.stats.Executor.states_completed;
      Fmt.pr "states created: %d@." r.stats.states_created;
      Fmt.pr "forks: %d@." r.stats.forks;
      Fmt.pr "instructions: %d (%d symbolic)@." r.stats.concrete_instret
        r.stats.sym_instret;
      Fmt.pr "steals: %d@." r.steals;
      Fmt.pr
        "solver: %d queries, %d to SAT core, %d cache hits, %d unknowns, \
         %.2fs@."
        r.solver_stats.S2e_solver.Solver.queries r.solver_stats.sat_queries
        r.solver_stats.cache_hits r.solver_stats.unknowns
        r.solver_stats.total_time;
      if r.solver_stats.inc_hits + r.solver_stats.inc_partials > 0 then
        Fmt.pr
          "incremental: %d full prefix hits, %d partial, %d clauses \
           learned (%d kept live)@."
          r.solver_stats.inc_hits r.solver_stats.inc_partials
          r.solver_stats.sat_learned r.solver_stats.sat_kept;
      print_resilience ~degradations:r.stats.degradations
        ~incomplete:
          (List.length
             (List.filter (fun (s : State.t) -> s.State.incomplete) r.completed))
        ~unknowns:r.solver_stats.unknowns
        ~timeouts:
          (Obs.Metrics.get_int (Obs.Metrics.snapshot ()) "solver.timeouts")
        ~injected:(Fault.total ());
      if cases then
        (* One line per test case: a state merged from N enumerated paths
           expands to N lines, so merged and enumerated case sets diff
           clean. *)
        print_cases
          (List.concat_map
             (fun (s : State.t) ->
               let status = State.report_string s in
               List.map
                 (fun tc ->
                   Printf.sprintf "%s | %s" status
                     (Parallel.test_case_to_string tc))
                 (Parallel.test_cases s))
             r.completed)
    end
    else begin
      (* Distributed: fork-server coordinator + `s2e_cli worker` children
         (each re-building the same engine spec from these arguments). *)
      let argv =
        worker_argv ~driver ~workload ~model ~searcher ~merge ~jobs
          ~fault_plan ~fault_seed ~solver_timeout_ms ~solver_mode
          ~trace:(trace_out <> None)
      in
      Obs.Metrics.reset ();
      let r =
        S2e_dist.Coordinator.explore ~procs ~limits ~cases
          ~handle_sigint:true
          ~spawn:(S2e_dist.Coordinator.Exec { argv })
          ~make_engine ~boot ()
      in
      (match stats_out with
      | None -> ()
      | Some path ->
          write_merged_stats path r.S2e_dist.Coordinator.obs
            ~elapsed:r.wall_seconds);
      (match trace_out with
      | None -> ()
      | Some path ->
          write_trace path r.S2e_dist.Coordinator.trace
            ~dropped:r.trace_dropped);
      print_dist_result ~jobs ~cases r;
      (* Completed-with-abandoned-work is distinguishable from a clean
         run: lost coverage must not look like exhaustive exploration. *)
      if r.abandoned <> [] then exit 3
    end
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Explore a guest workload multi-path, optionally across parallel \
          workers (--jobs) and worker processes (--procs)")
    Term.(
      const run $ driver_arg $ explore_workload_arg $ model_arg $ jobs_arg
      $ procs_arg $ seconds_arg $ searcher_arg $ merge_arg $ cases_arg
      $ stats_out_arg $ stats_interval_arg $ trace_out_arg $ fault_plan_arg
      $ fault_seed_arg $ solver_timeout_arg $ solver_mode_arg)

(* --- serve: TCP cluster coordinator --- *)

let serve_cmd =
  let open S2e_core in
  let listen_arg =
    let doc =
      "Listen address for TCP workers, HOST:PORT.  Port 0 picks an \
       ephemeral port; the chosen one is printed as 'listening on \
       HOST:PORT' before exploration starts."
    in
    Arg.(
      value & opt string "127.0.0.1:0" & info [ "listen" ] ~docv:"HOST:PORT" ~doc)
  in
  let procs_arg =
    let doc =
      "Also spawn $(docv) attached worker processes locally (0 relies \
       entirely on TCP workers; until one joins, the coordinator \
       explores solo)."
    in
    Arg.(value & opt int 0 & info [ "procs" ] ~docv:"N" ~doc)
  in
  let max_workers_arg =
    let doc = "Admission cap: TCP workers alive at once." in
    Arg.(value & opt int 64 & info [ "max-workers" ] ~docv:"N" ~doc)
  in
  let lease_arg =
    let doc =
      "Worker liveness lease in seconds: a worker silent past it is \
       presumed dead, its in-flight item requeued.  Granted to TCP \
       workers at admission (they heartbeat at a quarter of it)."
    in
    Arg.(value & opt float 10. & info [ "lease" ] ~docv:"SEC" ~doc)
  in
  let cases_arg =
    let doc =
      "Print one line per completed path (sorted): status plus the \
       canonical test case; diff against a serial run to verify the \
       cluster lost nothing."
    in
    Arg.(value & flag & info [ "cases" ] ~doc)
  in
  let run driver workload model jobs procs seconds searcher merge cases
      listen max_workers lease fault_plan fault_seed solver_timeout_ms
      solver_mode =
    validate_explore_args ~cmd:"serve" ~driver ~workload ~model ~searcher
      ~merge ~jobs ~procs:1 ~seconds ~stats_interval:1.;
    setup_resilience ~cmd:"serve" ~solver_mode ~fault_plan ~fault_seed
      ~solver_timeout_ms ();
    if procs < 0 then begin
      Fmt.epr "s2e serve: --procs must be >= 0 (got %d)@." procs;
      exit 2
    end;
    if lease <= 0. then begin
      Fmt.epr "s2e serve: --lease must be > 0 (got %g)@." lease;
      exit 2
    end;
    let host, port = parse_hostport ~cmd:"serve" listen in
    let lfd =
      try S2e_dist.Proto.listen ~host ~port
      with Unix.Unix_error (e, _, _) ->
        Fmt.epr "s2e serve: cannot listen on %s: %s@." listen
          (Unix.error_message e);
        exit 2
    in
    (* Flushed before the run so scripts can scrape the ephemeral port. *)
    Fmt.pr "listening on %s:%d@." host (S2e_dist.Proto.bound_port lfd);
    let img, make_engine =
      engine_factory ~driver ~workload ~model ~searcher ~merge
    in
    let limits =
      {
        Executor.max_instructions = None;
        max_seconds = Some seconds;
        max_completed = None;
      }
    in
    let boot eng = Executor.boot eng ~entry:img.entry () in
    let argv =
      worker_argv ~driver ~workload ~model ~searcher ~merge ~jobs ~fault_plan
        ~fault_seed ~solver_timeout_ms ~solver_mode ~trace:false
    in
    Obs.Metrics.reset ();
    let r =
      S2e_dist.Coordinator.explore ~procs ~limits ~cases ~handle_sigint:true
        ~heartbeat_timeout:lease ~listener:lfd ~max_workers
        ~spawn:(S2e_dist.Coordinator.Exec { argv })
        ~make_engine ~boot ()
    in
    (try Unix.close lfd with Unix.Unix_error _ -> ());
    print_dist_result ~jobs ~cases r;
    if r.S2e_dist.Coordinator.abandoned <> [] then exit 3
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Coordinate an elastic exploration cluster over TCP: workers \
          ($(b,s2e_cli worker --connect)) join and leave mid-run; the \
          coordinator leases them work, recovers from their crashes, and \
          degrades to exploring solo when none are left")
    Term.(
      const run $ driver_arg $ explore_workload_arg $ model_arg $ jobs_arg
      $ procs_arg $ seconds_arg $ searcher_arg $ merge_arg $ cases_arg
      $ listen_arg $ max_workers_arg $ lease_arg $ fault_plan_arg
      $ fault_seed_arg $ solver_timeout_arg $ solver_mode_arg)

(* --- worker: fork-server entry point (`explore --procs`) and TCP
   cluster joiner (`worker --connect`) --- *)

let worker_cmd =
  let slice_arg =
    let doc = "Wall-clock seconds per exploration slice between control polls." in
    Arg.(value & opt float 0.05 & info [ "slice" ] ~docv:"SEC" ~doc)
  in
  let trace_flag_arg =
    let doc =
      "Record trace events and ship drained chunks to the coordinator over \
       heartbeats (set by explore --trace-out)."
    in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let connect_arg =
    let doc =
      "Join a TCP coordinator ($(b,s2e_cli serve)) at $(docv) instead of \
       reading a socketpair fd from the environment.  The worker keeps \
       reconnecting with exponential backoff and resumes its session \
       after connection losses."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT" ~doc)
  in
  let run driver workload model jobs searcher merge slice trace connect
      fault_plan fault_seed solver_timeout_ms solver_mode =
    validate_explore_args ~cmd:"worker" ~driver ~workload ~model ~searcher
      ~merge ~jobs ~procs:1 ~seconds:1. ~stats_interval:1.;
    setup_resilience ~cmd:"worker" ~solver_mode ~fault_plan ~fault_seed
      ~solver_timeout_ms ();
    if trace then Obs.Trace.set_enabled true;
    if slice <= 0. then begin
      Fmt.epr "s2e worker: --slice must be > 0 (got %g)@." slice;
      exit 2
    end;
    let _img, make_engine =
      engine_factory ~driver ~workload ~model ~searcher ~merge
    in
    match connect with
    | Some hostport ->
        let host, port = parse_hostport ~cmd:"worker" hostport in
        S2e_dist.Worker.serve_tcp ~jobs ~slice ~host ~port ~make_engine ()
    | None ->
        let fd =
          match Sys.getenv_opt "S2E_DIST_FD" with
          | Some s -> (
              match int_of_string_opt s with
              | Some n when n >= 0 -> S2e_dist.Proto.fd_of_int n
              | _ ->
                  Fmt.epr "s2e worker: malformed S2E_DIST_FD %S@." s;
                  exit 2)
          | None ->
              Fmt.epr
                "s2e worker: pass --connect HOST:PORT to join a cluster \
                 (without it this is the internal entry point spawned by \
                 explore --procs, and S2E_DIST_FD is not set)@.";
              exit 2
        in
        S2e_dist.Worker.serve ~jobs ~slice ~fd ~make_engine ()
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Exploration worker process: joins a TCP cluster with \
          $(b,--connect), or serves a spawning coordinator over an \
          inherited socketpair (explore --procs)")
    Term.(
      const run $ driver_arg $ explore_workload_arg $ model_arg $ jobs_arg
      $ searcher_arg $ merge_arg $ slice_arg $ trace_flag_arg $ connect_arg
      $ fault_plan_arg $ fault_seed_arg $ solver_timeout_arg
      $ solver_mode_arg)

(* --- stats: render a run-stats JSONL file --- *)

let stats_cmd =
  let file_arg =
    let doc = "Run-stats JSONL file written by $(b,explore --stats-out)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let lines =
      match open_in file with
      | exception Sys_error msg ->
          Fmt.epr "%s@." msg;
          exit 2
      | ic ->
          let rec go acc =
            match input_line ic with
            | line -> go (if String.trim line = "" then acc else line :: acc)
            | exception End_of_file ->
                close_in ic;
                List.rev acc
          in
          go []
    in
    if lines = [] then begin
      Fmt.epr "%s: no snapshots (empty stats file)@." file;
      exit 2
    end;
    let parsed =
      List.mapi
        (fun i line ->
          match Obs.Jsonl.parse line with
          | Ok j -> j
          | Error msg ->
              Fmt.epr "%s: line %d unparsable: %s@." file (i + 1) msg;
              exit 2)
        lines
    in
    (* Prefer the exact post-join "final" snapshot; a run cut short still
       renders from its last periodic line. *)
    let final =
      match
        List.find_opt
          (fun j -> Obs.Jsonl.str_member "kind" j = Some "final")
          (List.rev parsed)
      with
      | Some j -> j
      | None -> List.nth parsed (List.length parsed - 1)
    in
    let metrics =
      Option.value ~default:(Obs.Jsonl.Obj [])
        (Obs.Jsonl.member "metrics" final)
    in
    let m name = Option.value ~default:0. (Obs.Jsonl.num_member name metrics) in
    let mi name = int_of_float (m name) in
    let elapsed =
      Option.value ~default:0. (Obs.Jsonl.num_member "elapsed_s" final)
    in
    let periodic =
      List.length
        (List.filter
           (fun j -> Obs.Jsonl.str_member "kind" j = Some "periodic")
           parsed)
    in
    let pct part whole = if whole <= 0. then 0. else 100. *. part /. whole in
    Fmt.pr "run: %.2f s, %d periodic snapshot(s)%s, %d worker(s)@." elapsed
      periodic
      (if Obs.Jsonl.str_member "kind" final = Some "final" then " + final"
       else " (no final line: run was cut short)")
      (max 1 (mi "parallel.workers"));
    Fmt.pr "paths: %d completed (%d aborted), %d live, %d forks, max %d live@."
      (mi "engine.states_completed")
      (mi "engine.aborts") (mi "engine.live_states") (mi "engine.forks")
      (mi "engine.max_live_states");
    let instr = m "engine.instructions" in
    Fmt.pr "instructions: %d (%d symbolic), %.0f instr/s@." (mi "engine.instructions")
      (mi "engine.sym_instructions")
      (if elapsed > 0. then instr /. elapsed else 0.);
    let queries = m "solver.queries" in
    Fmt.pr
      "solver: %d queries (%d reached SAT core), %.1f%% query-cache hits, \
       %d unknowns (%d timeouts)@."
      (mi "solver.queries") (mi "solver.sat_queries")
      (pct (m "solver.cache_hits") queries)
      (mi "solver.unknowns") (mi "solver.timeouts");
    (* Incremental reuse (--solver=incremental): realized prefix hits on
       live SAT instances, shown only when the mode actually fired. *)
    if mi "solver.inc_hits" + mi "solver.inc_partials" > 0 then
      Fmt.pr
        "incremental: %d full prefix hits, %d partial (%.1f%% of SAT-core \
         queries reused a live instance)@."
        (mi "solver.inc_hits")
        (mi "solver.inc_partials")
        (pct
           (m "solver.inc_hits" +. m "solver.inc_partials")
           (m "solver.sat_queries"));
    (* Resilience: degraded forks, incomplete paths and injected faults
       (per-site fault.* counters), shown only when something fired. *)
    let injected =
      List.fold_left
        (fun acc (name, v) ->
          match Obs.Jsonl.to_num v with
          | Some n when String.length name > 6 && String.sub name 0 6 = "fault."
            ->
              acc + int_of_float n
          | _ -> acc)
        0
        (Option.value ~default:[] (Obs.Jsonl.to_obj metrics))
    in
    if mi "engine.degradations" + mi "engine.incomplete_paths" + injected > 0
    then
      Fmt.pr
        "resilience: %d degraded forks, %d incomplete paths, %d injected \
         faults (naks %d, retransmits %d)@."
        (mi "engine.degradations")
        (mi "engine.incomplete_paths")
        injected (mi "dist.naks") (mi "dist.retransmits");
    let tb_hits = m "dbt.tb_hits" and tb_misses = m "dbt.tb_misses" in
    Fmt.pr "tb cache: %.1f%% hits (%d hits, %d misses), %d invalidations@."
      (pct tb_hits (tb_hits +. tb_misses))
      (mi "dbt.tb_hits") (mi "dbt.tb_misses")
      (mi "dbt.tb_invalidations");
    Fmt.pr
      "engine: %d concretizations, max constraint set %d, %d steals, %d \
       donations@."
      (mi "engine.concretizations")
      (mi "engine.max_constraint_set")
      (mi "parallel.steals") (mi "parallel.donations");
    (* State merging (--merge): join/reject totals plus the unmergeable
       taxonomy, whose counters are registered dynamically per reason. *)
    if mi "merge.merges" + mi "merge.rejected_cost" + mi "merge.parked" > 0
    then begin
      Fmt.pr
        "merge: %d merges, %d cost-rejected, %d parked, %d released (%d \
         forced), %d without merge point@."
        (mi "merge.merges")
        (mi "merge.rejected_cost")
        (mi "merge.parked") (mi "merge.released")
        (mi "merge.released_forced")
        (mi "merge.no_point");
      let pre = "merge.unmergeable." in
      let plen = String.length pre in
      let unmergeable =
        List.filter_map
          (fun (name, v) ->
            match Obs.Jsonl.to_num v with
            | Some n
              when String.length name > plen && String.sub name 0 plen = pre
                   && n > 0. ->
                Some (String.sub name plen (String.length name - plen), n)
            | _ -> None)
          (Option.value ~default:[] (Obs.Jsonl.to_obj metrics))
      in
      if unmergeable <> [] then
        Fmt.pr "  unmergeable: %s@."
          (String.concat ", "
             (List.map
                (fun (reason, n) -> Printf.sprintf "%s %d" reason
                    (int_of_float n))
                (List.sort (fun (_, a) (_, b) -> compare b a) unmergeable)));
      if mi "merge.carrier_aborts" > 0 then
        Fmt.pr
          "  carrier aborts: %d (each drops its carried paths' cases; see \
           DESIGN.md on LC environment hazards)@."
          (mi "merge.carrier_aborts")
    end;
    (* Phase breakdown: every "phase.<name>_s" fcounter holds that phase's
       exclusive (self) time, so fractions of their sum add up to ~100%. *)
    let phases =
      List.filter_map
        (fun (name, v) ->
          let n = String.length name in
          if
            n > 8
            && String.sub name 0 6 = "phase."
            && String.sub name (n - 2) 2 = "_s"
          then
            match Obs.Jsonl.to_num v with
            | Some secs -> Some (String.sub name 6 (n - 8), secs)
            | None -> None
          else None)
        (Option.value ~default:[] (Obs.Jsonl.to_obj metrics))
    in
    let total_phase = List.fold_left (fun a (_, s) -> a +. s) 0. phases in
    if phases <> [] then begin
      Fmt.pr "phase breakdown (self time, %.2f s accounted):@." total_phase;
      List.iter
        (fun (name, secs) ->
          Fmt.pr "  %-12s %5.1f%%  %8.3f s  (%d enters)@." name
            (pct secs total_phase) secs
            (mi (Printf.sprintf "phase.%s_count" name)))
        (List.sort (fun (_, a) (_, b) -> compare b a) phases)
    end;
    (* Solver query latency histogram. *)
    (match
       Obs.Jsonl.member "hist" final
       |> Option.map (fun h -> Obs.Jsonl.member "solver.query_s" h)
     with
    | Some (Some h) ->
        let bounds =
          Option.value ~default: []
            (Option.bind (Obs.Jsonl.member "bounds" h) Obs.Jsonl.to_arr)
          |> List.filter_map Obs.Jsonl.to_num
        in
        let counts =
          Option.value ~default: []
            (Option.bind (Obs.Jsonl.member "counts" h) Obs.Jsonl.to_arr)
          |> List.filter_map Obs.Jsonl.to_num
        in
        let total = List.fold_left ( +. ) 0. counts in
        if total > 0. then begin
          Fmt.pr "solver query latency (%.0f queries, %.3f s total):@." total
            (Option.value ~default:0. (Obs.Jsonl.num_member "sum" h));
          List.iteri
            (fun i c ->
              if c > 0. then
                let label =
                  if i < List.length bounds then
                    Printf.sprintf "<= %gs" (List.nth bounds i)
                  else "overflow"
                in
                Fmt.pr "  %-10s %6.0f  (%.1f%%)@." label c (pct c total))
            counts
        end
    | _ -> ());
    (* Per-worker breakdown from the per-shard views. *)
    (match Obs.Jsonl.member "shards" final with
    | Some (Obs.Jsonl.Arr shards) when List.length shards > 1 ->
        Fmt.pr "per-worker (registry shard):@.";
        List.iter
          (fun sh ->
            let id =
              int_of_float
                (Option.value ~default:(-1.)
                   (Obs.Jsonl.num_member "shard" sh))
            in
            let sm =
              Option.value ~default:(Obs.Jsonl.Obj [])
                (Obs.Jsonl.member "metrics" sh)
            in
            let g name =
              int_of_float
                (Option.value ~default:0. (Obs.Jsonl.num_member name sm))
            in
            Fmt.pr "  shard %d: %d instr, %d paths, %d forks, %d steals@." id
              (g "engine.instructions")
              (g "engine.states_completed")
              (g "engine.forks") (g "parallel.steals"))
          shards
    | _ -> ())
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Render the final breakdown of a run-stats JSONL file (explore \
          --stats-out)")
    Term.(const run $ file_arg)

(* --- trace: render a trace_event JSON file --- *)

let trace_cmd =
  let file_arg =
    let doc = "Trace JSON file written by $(b,explore --trace-out)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let top_arg =
    let doc = "Hottest constraint-prefix groups to list." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc)
  in
  let depth_arg =
    let doc = "Fork-tree levels to print (deeper subtrees are summarized)." in
    Arg.(value & opt int 4 & info [ "depth" ] ~docv:"N" ~doc)
  in
  let run file top depth =
    let contents =
      match In_channel.with_open_bin file In_channel.input_all with
      | s -> s
      | exception Sys_error msg ->
          Fmt.epr "%s@." msg;
          exit 2
    in
    let root =
      match Obs.Jsonl.parse (String.trim contents) with
      | Ok j -> j
      | Error msg ->
          Fmt.epr "%s: unparsable: %s@." file msg;
          exit 2
    in
    let events =
      match
        Option.bind (Obs.Jsonl.member "traceEvents" root) Obs.Jsonl.to_arr
      with
      | Some evs -> evs
      | None ->
          Fmt.epr "%s: no traceEvents array (not an explore --trace-out file)@."
            file;
          exit 2
    in
    let num ?(default = 0.) name j =
      Option.value ~default (Obs.Jsonl.num_member name j)
    in
    let dropped =
      match Obs.Jsonl.member "s2e" root with
      | Some meta -> int_of_float (num "dropped" meta)
      | None -> 0
    in
    (* One pass over the events: prefix groups for the solver-attribution
       report, start/end/own-cost tables for the fork tree. *)
    let starts = Hashtbl.create 256 in (* (pid, path) -> parent path *)
    let ends = Hashtbl.create 256 in (* (pid, path) -> (status, incomplete) *)
    let own = Hashtbl.create 256 in (* (pid, path) -> (queries, seconds) *)
    let groups = Hashtbl.create 256 in
    (* prefix -> (count, seconds, cache hits, incremental reuses) *)
    let total_q = ref 0 and total_qs = ref 0. and total_inc = ref 0 in
    List.iter
      (fun ev ->
        let name = Option.value ~default:"" (Obs.Jsonl.str_member "name" ev) in
        let pid = int_of_float (num "pid" ev) in
        let args =
          Option.value ~default:(Obs.Jsonl.Obj []) (Obs.Jsonl.member "args" ev)
        in
        let path = int_of_float (num ~default:(-1.) "path" args) in
        match name with
        | "path_start" ->
            Hashtbl.replace starts (pid, path)
              (int_of_float (num ~default:(-1.) "parent" args))
        | "path_end" ->
            Hashtbl.replace ends (pid, path)
              (int_of_float (num "status" args), num "incomplete" args <> 0.)
        | "solver_query" ->
            let dur = num "dur" ev /. 1e6 in
            let prefix =
              Option.value ~default:"0x0" (Obs.Jsonl.str_member "prefix" args)
            in
            let cached = Obs.Jsonl.str_member "cache" args <> Some "miss" in
            (* Realized incremental reuse: the query popped a live SAT
               instance back to a shared prefix instead of rebuilding. *)
            let inc =
              match Obs.Jsonl.str_member "incremental" args with
              | Some ("hit" | "partial") -> true
              | _ -> false
            in
            incr total_q;
            total_qs := !total_qs +. dur;
            if inc then incr total_inc;
            let c, s, h, ic =
              Option.value ~default:(0, 0., 0, 0)
                (Hashtbl.find_opt groups prefix)
            in
            Hashtbl.replace groups prefix
              ( c + 1,
                s +. dur,
                (h + if cached then 1 else 0),
                (ic + if inc then 1 else 0) );
            let qc, qs =
              Option.value ~default:(0, 0.) (Hashtbl.find_opt own (pid, path))
            in
            Hashtbl.replace own (pid, path) (qc + 1, qs +. dur)
        | _ -> ())
      events;
    Fmt.pr "trace: %d events, %d solver queries, %.3f s solver time%s@."
      (List.length events) !total_q !total_qs
      (if dropped > 0 then Printf.sprintf ", %d dropped" dropped else "");
    (* (a) hottest queries grouped by constraint-prefix hash. *)
    let glist =
      Hashtbl.fold (fun p (c, s, h, ic) acc -> (p, c, s, h, ic) :: acc) groups
        []
    in
    let reused_time =
      List.fold_left
        (fun acc (_, c, s, _, _) -> if c > 1 then acc +. s else acc)
        0. glist
    in
    Fmt.pr
      "constraint prefixes: %d distinct; %.1f%% of solver time in reused \
       prefixes; %d queries reused a live SAT instance@."
      (List.length glist)
      (if !total_qs > 0. then 100. *. reused_time /. !total_qs else 0.)
      !total_inc;
    if glist <> [] then begin
      Fmt.pr "hottest prefixes (top %d by solver time):@." top;
      Fmt.pr "  %-20s %8s %8s %8s %8s %12s@." "prefix" "queries" "reused"
        "cached" "inc" "seconds";
      List.iteri
        (fun i (p, c, s, h, ic) ->
          if i < top then
            Fmt.pr "  %-20s %8d %8d %8d %8d %12.4f@." p c (c - 1) h ic s)
        (List.sort
           (fun (_, _, a, _, _) (_, _, b, _, _) -> compare (b : float) a)
           glist)
    end;
    (* (b) the fork tree, each node annotated with its subtree's solver
       cost; children sorted hottest-subtree first. *)
    let children = Hashtbl.create 256 in
    let roots = ref [] in
    Hashtbl.iter
      (fun (pid, path) parent ->
        if parent >= 0 && Hashtbl.mem starts (pid, parent) then
          Hashtbl.replace children (pid, parent)
            ((pid, path)
            :: Option.value ~default:[]
                 (Hashtbl.find_opt children (pid, parent)))
        else roots := (pid, path) :: !roots)
      starts;
    let rec subtree key =
      let qc, qs = Option.value ~default:(0, 0.) (Hashtbl.find_opt own key) in
      List.fold_left
        (fun (c, s, n) k ->
          let c', s', n' = subtree k in
          (c + c', s +. s', n + n'))
        (qc, qs, 1)
        (Option.value ~default:[] (Hashtbl.find_opt children key))
    in
    let status_name key =
      match Hashtbl.find_opt ends key with
      | Some (st, inc) ->
          (match st with
          | 0 -> "active"
          | 1 -> "halted"
          | 2 -> "killed"
          | 3 -> "faulted"
          | 4 -> "aborted"
          | _ -> "?")
          ^ if inc then " incomplete" else ""
      | None -> "live"
    in
    let multi_pid =
      List.length
        (List.sort_uniq compare
           (Hashtbl.fold (fun (pid, _) _ acc -> pid :: acc) starts []))
      > 1
    in
    if Hashtbl.length starts > 0 then begin
      Fmt.pr "fork tree (per-subtree solver cost):@.";
      let rec print_node indent d key =
        let qc, qs, paths = subtree key in
        let oqc, oqs =
          Option.value ~default:(0, 0.) (Hashtbl.find_opt own key)
        in
        let pid, path = key in
        let kids =
          List.sort
            (fun a b ->
              let _, sa, _ = subtree a and _, sb, _ = subtree b in
              compare sb sa)
            (Option.value ~default:[] (Hashtbl.find_opt children key))
        in
        Fmt.pr "%spath %d%s [%s]  subtree %.4f s / %d queries%s@." indent path
          (if multi_pid then Printf.sprintf "@p%d" pid else "")
          (status_name key) qs qc
          (if oqc > 0 && kids <> [] then
             Printf.sprintf "  (own %.4f s / %d)" oqs oqc
           else "");
        if d + 1 >= depth && kids <> [] then
          Fmt.pr "%s  ... %d more path(s) below@." indent (paths - 1)
        else List.iter (print_node (indent ^ "  ") (d + 1)) kids
      in
      List.iter (print_node "  " 0) (List.sort compare !roots)
    end;
    let un_c, un_s =
      Hashtbl.fold
        (fun (_, p) (c, s) (ac, asum) ->
          if p < 0 then (ac + c, asum +. s) else (ac, asum))
        own (0, 0.)
    in
    if un_c > 0 then
      Fmt.pr "unattributed: %d queries, %.4f s (emitted outside any path)@."
        un_c un_s
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Render a trace file (explore --trace-out): hottest solver queries \
          by constraint prefix, and the fork tree with per-subtree solver \
          cost")
    Term.(const run $ file_arg $ top_arg $ depth_arg)

(* --- models --- *)

let models_cmd =
  let target_arg =
    let doc = "Target: a driver name or 'mua'." in
    Arg.(value & opt string "c111" & info [ "target" ] ~docv:"T" ~doc)
  in
  let run target seconds =
    let models = S2e_core.Consistency.[ RC_OC; LC; SC_SE; SC_UE ] in
    List.iter
      (fun model ->
        let m =
          if target = "mua" then
            if model = S2e_core.Consistency.SC_UE then None
            else Some (Model_exp.run_mua ~max_seconds:seconds ~consistency:model ())
          else begin
            check_driver target;
            Some (Model_exp.run_driver ~max_seconds:seconds ~driver:target ~consistency:model ())
          end
        in
        match m with
        | Some m -> Fmt.pr "%a@." Model_exp.pp_measurement m
        | None -> ())
      models
  in
  Cmd.v
    (Cmd.info "models"
       ~doc:"Compare execution consistency models (paper section 6.3)")
    Term.(const run $ target_arg $ seconds_arg)

(* --- oracle: differential ISA testing of the DBT against a reference
   interpreter --- *)

let oracle_cmd =
  let module Oracle = S2e_oracle.Oracle in
  let seed_arg =
    let doc = "Deterministic seed: same seed, byte-identical run." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let count_arg =
    let doc = "Number of generated blocks to run differentially." in
    Arg.(value & opt int 10_000 & info [ "count" ] ~docv:"N" ~doc)
  in
  let corpus_arg =
    let doc = "Corpus manifest to replay (written by --corpus-out)." in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"FILE" ~doc)
  in
  let capture_arg =
    let doc =
      Printf.sprintf
        "Capture a fresh corpus by exploring this workload (one of %s) \
         before replaying it."
        (String.concat ", " workload_names)
    in
    Arg.(value & opt (some string) None & info [ "capture" ] ~docv:"W" ~doc)
  in
  let corpus_out_arg =
    let doc = "Write the captured corpus manifest here." in
    Arg.(value & opt (some string) None & info [ "corpus-out" ] ~docv:"FILE" ~doc)
  in
  let repro_dir_arg =
    let doc = "Directory for divergence repro dumps." in
    Arg.(value & opt string "." & info [ "repro-dir" ] ~docv:"DIR" ~doc)
  in
  let run seed count corpus capture driver seconds corpus_out repro_dir =
    let captured =
      match capture with
      | None -> None
      | Some w ->
          if workload_src w = None then begin
            Fmt.epr "s2e oracle: unknown workload %S (have: %s)@." w
              (String.concat ", " workload_names);
            exit 2
          end;
          if driver <> "nulldrv" then check_driver driver;
          Fmt.pr "capturing corpus: workload %s, driver %s, %.0fs budget...@."
            w driver seconds;
          let cap = S2e_oracle.Corpus.capture ~driver ~seconds ~workload:w () in
          Fmt.pr "captured %d block(s), %d symbolic state(s)@."
            (List.length cap.cap_entries)
            (List.length cap.cap_sym);
          (match corpus_out with
          | Some path ->
              S2e_oracle.Corpus.save path ~workload:w cap.cap_entries;
              Fmt.pr "corpus manifest -> %s@." path
          | None -> ());
          Some cap
    in
    let loaded =
      match corpus with
      | None -> []
      | Some path ->
          let wl, entries = S2e_oracle.Corpus.load path in
          Fmt.pr "corpus %s: %d block(s) from workload %s@." path
            (List.length entries) wl;
          entries
    in
    let entries =
      loaded
      @ match captured with Some c -> c.cap_entries | None -> []
    in
    let sym = match captured with Some c -> c.cap_sym | None -> [] in
    let r =
      Oracle.run ~seed ~count ~corpus:entries ~sym ~repro_dir
        ~log:(fun m -> Fmt.epr "%s@." m)
        ()
    in
    Fmt.pr
      "oracle: %d differential block run(s) (%d generated, %d corpus, %d \
       sym), seed %d@."
      r.Oracle.r_blocks r.r_generated r.r_corpus r.r_sym seed;
    Fmt.pr "digest: %016Lx@." r.r_digest;
    if r.r_generated > 0 then begin
      let covered = List.filter (fun (_, n) -> n > 0) r.r_coverage in
      Fmt.pr "coverage: %d/%d constructors in generated corpus%s@."
        (List.length covered)
        (List.length r.r_coverage)
        (if r.r_missing = [] then ""
         else " (missing: " ^ String.concat ", " r.r_missing ^ ")")
    end;
    if r.r_divergences = [] then Fmt.pr "divergences: none@."
    else begin
      Fmt.pr "divergences: %d@." (List.length r.r_divergences);
      List.iter
        (fun (d : Oracle.divergence) ->
          Fmt.pr "  [%s/%s] %s%s@."
            (Oracle.source_name d.d_source)
            d.d_phase
            (String.concat "; " d.d_diff)
            (match d.d_file with Some f -> " -> " ^ f | None -> ""))
        r.r_divergences;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "oracle"
       ~doc:
         "Differentially test the DBT fast path against a naive reference \
          interpreter")
    Term.(
      const run $ seed_arg $ count_arg $ corpus_arg $ capture_arg $ driver_arg
      $ seconds_arg $ corpus_out_arg $ repro_dir_arg)

let () =
  let doc = "in-vivo multi-path analysis platform (S2E reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "s2e" ~doc)
          [
            run_cmd; ddt_cmd; rev_cmd; profs_cmd; models_cmd; explore_cmd;
            serve_cmd; worker_cmd; stats_cmd; trace_cmd; oracle_cmd;
          ]))
