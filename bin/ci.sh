#!/bin/sh
# Tier-1 verification: full build plus the whole test suite.
# Run from anywhere inside the repository.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune runtest

# Telemetry smoke test: a short parallel exploration must stream parsable
# run-stats JSONL (>= 2 periodic snapshots + a final line), and the stats
# renderer must accept the file.
stats_file=$(mktemp /tmp/s2e-stats-XXXXXX.jsonl)
trap 'rm -f "$stats_file"' EXIT
dune exec bin/s2e_cli.exe -- explore --driver nulldrv --workload urlparse \
  --jobs 2 --seconds 2 --stats-out "$stats_file" --stats-interval 0.05 \
  > /dev/null
test -s "$stats_file" || { echo "CI: stats file empty" >&2; exit 1; }
lines=$(wc -l < "$stats_file")
[ "$lines" -ge 3 ] || { echo "CI: expected >=3 snapshots, got $lines" >&2; exit 1; }
grep -q '"kind":"final"' "$stats_file" \
  || { echo "CI: no final snapshot line" >&2; exit 1; }
dune exec bin/s2e_cli.exe -- stats "$stats_file" > /dev/null \
  || { echo "CI: stats renderer rejected the JSONL" >&2; exit 1; }
echo "CI: telemetry smoke test passed ($lines snapshot lines)"

# Distributed-exploration smoke test: a two-process run on a small
# workload must succeed, report its process count, and emit exactly the
# serial run's test cases (the dist determinism guarantee).
serial_out=$(mktemp /tmp/s2e-serial-XXXXXX.txt)
dist_out=$(mktemp /tmp/s2e-dist-XXXXXX.txt)
trap 'rm -f "$stats_file" "$serial_out" "$dist_out"' EXIT
dune exec bin/s2e_cli.exe -- explore --driver nulldrv --workload symloop \
  --jobs 1 --seconds 30 --cases > "$serial_out"
dune exec bin/s2e_cli.exe -- explore --driver nulldrv --workload symloop \
  --procs 2 --seconds 30 --cases > "$dist_out"
grep -q '^procs: 2$' "$dist_out" \
  || { echo "CI: dist run did not report procs: 2" >&2; exit 1; }
serial_cases=$(grep -c '|' "$serial_out")
dist_cases=$(grep -c '|' "$dist_out")
[ "$serial_cases" -gt 1 ] \
  || { echo "CI: serial run produced no test cases" >&2; exit 1; }
[ "$serial_cases" = "$dist_cases" ] \
  || { echo "CI: case count mismatch (serial $serial_cases, dist $dist_cases)" >&2; exit 1; }
grep '|' "$serial_out" > "$serial_out.cases"
grep '|' "$dist_out" > "$dist_out.cases"
diff "$serial_out.cases" "$dist_out.cases" > /dev/null \
  || { echo "CI: dist test cases differ from serial" >&2; exit 1; }
rm -f "$serial_out.cases" "$dist_out.cases"
echo "CI: dist smoke test passed ($dist_cases cases, procs=2 == jobs=1)"

# Merge smoke test: --merge=auto must emit exactly the enumerated
# (--merge=off, the default) run's test cases after case-tree expansion,
# while completing strictly fewer paths.
merge_out=$(mktemp /tmp/s2e-merge-XXXXXX.txt)
trap 'rm -f "$stats_file" "$serial_out" "$dist_out" "$merge_out"' EXIT
dune exec bin/s2e_cli.exe -- explore --driver nulldrv --workload symloop \
  --jobs 1 --seconds 30 --merge auto --cases > "$merge_out"
merge_cases=$(grep -c '|' "$merge_out")
[ "$serial_cases" = "$merge_cases" ] \
  || { echo "CI: merge case count mismatch (off $serial_cases, auto $merge_cases)" >&2; exit 1; }
grep '|' "$serial_out" > "$serial_out.cases"
grep '|' "$merge_out" > "$merge_out.cases"
diff "$serial_out.cases" "$merge_out.cases" > /dev/null \
  || { echo "CI: merged test cases differ from enumerated" >&2; exit 1; }
rm -f "$serial_out.cases" "$merge_out.cases"
merged_paths=$(sed -n 's/^paths completed: \([0-9][0-9]*\)$/\1/p' "$merge_out")
enum_paths=$(sed -n 's/^paths completed: \([0-9][0-9]*\)$/\1/p' "$serial_out")
[ "$merged_paths" -lt "$enum_paths" ] \
  || { echo "CI: merge did not reduce completed paths ($merged_paths vs $enum_paths)" >&2; exit 1; }
echo "CI: merge smoke test passed ($merge_cases cases, $merged_paths merged vs $enum_paths enumerated paths)"

# On driver-ful LC workloads the kernel can branch on merged hardware
# data; such carriers abort conservatively and the loss must be visible
# in the stats, never silent (DESIGN.md §10).  The c111 exerciser is the
# regression workload: merging still engages (merges > 0) and the
# carrier-abort count is surfaced by the renderer.
merge_stats=$(mktemp /tmp/s2e-merge-stats-XXXXXX.jsonl)
trap 'rm -f "$stats_file" "$serial_out" "$dist_out" "$merge_out" "$solver_out" "$url_fresh" "$chaos_fresh" "$merge_stats"' EXIT
dune exec bin/s2e_cli.exe -- explore --driver c111 --workload exerciser \
  --jobs 1 --seconds 60 --merge auto --stats-out "$merge_stats" > /dev/null
merge_render=$(dune exec bin/s2e_cli.exe -- stats "$merge_stats")
printf '%s\n' "$merge_render" | grep -q '^merge: [1-9]' \
  || { echo "CI: merging did not engage on the c111 exerciser" >&2; exit 1; }
printf '%s\n' "$merge_render" | grep -q 'carrier aborts: ' \
  || { echo "CI: carrier aborts not surfaced in merged exerciser stats" >&2; exit 1; }
echo "CI: merge observability smoke test passed"

# Trace smoke test: a traced run must produce valid trace_event JSON
# (the trace renderer parses it with the same codec), render the prefix
# attribution report, and emit exactly the untraced serial run's test
# cases (tracing must not perturb exploration).
trace_json=$(mktemp /tmp/s2e-trace-XXXXXX.json)
traced_out=$(mktemp /tmp/s2e-traced-XXXXXX.txt)
trap 'rm -f "$stats_file" "$serial_out" "$dist_out" "$merge_out" "$solver_out" "$url_fresh" "$chaos_fresh" "$merge_stats" "$trace_json" "$traced_out"' EXIT
dune exec bin/s2e_cli.exe -- explore --driver nulldrv --workload symloop \
  --jobs 1 --seconds 30 --cases --trace-out "$trace_json" > "$traced_out"
test -s "$trace_json" || { echo "CI: trace file empty" >&2; exit 1; }
grep -q '"traceEvents"' "$trace_json" \
  || { echo "CI: trace file has no traceEvents key" >&2; exit 1; }
grep '|' "$serial_out" > "$serial_out.cases"
grep '|' "$traced_out" > "$traced_out.cases"
diff "$serial_out.cases" "$traced_out.cases" > /dev/null \
  || { echo "CI: traced test cases differ from untraced serial" >&2; exit 1; }
rm -f "$serial_out.cases" "$traced_out.cases"
trace_report=$(dune exec bin/s2e_cli.exe -- trace "$trace_json") \
  || { echo "CI: trace renderer rejected the JSON" >&2; exit 1; }
printf '%s\n' "$trace_report" | grep -q 'constraint prefixes:' \
  || { echo "CI: trace report missing prefix attribution" >&2; exit 1; }
printf '%s\n' "$trace_report" | grep -q 'fork tree' \
  || { echo "CI: trace report missing fork tree" >&2; exit 1; }
# A --procs 2 trace must merge both workers' timelines into one file
# (distinct pid lanes) and still parse with the repo's codec.
dune exec bin/s2e_cli.exe -- explore --driver nulldrv --workload symloop \
  --procs 2 --seconds 30 --trace-out "$trace_json" > /dev/null
pids=$(grep -o '"pid":[0-9]*' "$trace_json" | sort -u | wc -l)
[ "$pids" -ge 2 ] \
  || { echo "CI: procs=2 trace has $pids pid lane(s), expected >=2" >&2; exit 1; }
dune exec bin/s2e_cli.exe -- trace "$trace_json" > /dev/null \
  || { echo "CI: trace renderer rejected the merged JSON" >&2; exit 1; }
echo "CI: trace smoke test passed (cases == untraced serial, $pids merged pid lanes)"

# Incremental-solver differential: --solver=fresh must emit byte-identical
# case sets to the default incremental instance ring (serial and --jobs 4),
# and the incremental run must report realized prefix reuse.
solver_out=$(mktemp /tmp/s2e-solver-XXXXXX.txt)
trap 'rm -f "$stats_file" "$serial_out" "$dist_out" "$merge_out" "$solver_out"' EXIT
dune exec bin/s2e_cli.exe -- explore --driver nulldrv --workload symloop \
  --jobs 1 --seconds 30 --solver fresh --cases > "$solver_out"
grep '|' "$serial_out" > "$serial_out.cases"
grep '|' "$solver_out" > "$solver_out.cases"
diff "$serial_out.cases" "$solver_out.cases" > /dev/null \
  || { echo "CI: fresh-solver cases differ from incremental" >&2; exit 1; }
dune exec bin/s2e_cli.exe -- explore --driver nulldrv --workload symloop \
  --jobs 4 --seconds 30 --solver incremental --cases > "$solver_out"
grep '|' "$solver_out" > "$solver_out.cases"
diff "$serial_out.cases" "$solver_out.cases" > /dev/null \
  || { echo "CI: incremental --jobs 4 cases differ from serial" >&2; exit 1; }
grep -q '^incremental: [1-9]' "$solver_out" \
  || { echo "CI: incremental run reported no realized reuse" >&2; exit 1; }
url_fresh=$(mktemp /tmp/s2e-urlfresh-XXXXXX.txt)
trap 'rm -f "$stats_file" "$serial_out" "$dist_out" "$merge_out" "$solver_out" "$url_fresh"' EXIT
dune exec bin/s2e_cli.exe -- explore --driver nulldrv --workload urlparse \
  --jobs 1 --seconds 60 --solver fresh --cases > "$url_fresh"
dune exec bin/s2e_cli.exe -- explore --driver nulldrv --workload urlparse \
  --jobs 1 --seconds 60 --solver incremental --cases > "$solver_out"
grep '|' "$url_fresh" > "$url_fresh.cases"
grep '|' "$solver_out" > "$solver_out.cases"
diff "$url_fresh.cases" "$solver_out.cases" > /dev/null \
  || { echo "CI: urlparse cases diverge between solver modes" >&2; exit 1; }
rm -f "$serial_out.cases" "$solver_out.cases" "$url_fresh.cases"
echo "CI: solver-mode differential passed (fresh == incremental on symloop + urlparse, reuse reported)"

# Chaos solver differential: with an injected-unknown plan armed on a
# fixed seed, incremental must degrade exactly as fresh does — same
# [incomplete] suffixes, same final case set (injection fires per
# canonical query, before mode dispatch).
chaos_fresh=$(mktemp /tmp/s2e-chaosfresh-XXXXXX.txt)
trap 'rm -f "$stats_file" "$serial_out" "$dist_out" "$merge_out" "$solver_out" "$url_fresh" "$chaos_fresh"' EXIT
dune exec bin/s2e_cli.exe -- explore --driver nulldrv --workload symloop \
  --jobs 1 --seconds 30 --fault-plan 'solver=unknown:0.05' --fault-seed 11 \
  --solver fresh --cases > "$chaos_fresh"
dune exec bin/s2e_cli.exe -- explore --driver nulldrv --workload symloop \
  --jobs 1 --seconds 30 --fault-plan 'solver=unknown:0.05' --fault-seed 11 \
  --solver incremental --cases > "$solver_out"
grep '|' "$chaos_fresh" > "$chaos_fresh.cases"
grep '|' "$solver_out" > "$solver_out.cases"
diff "$chaos_fresh.cases" "$solver_out.cases" > /dev/null \
  || { echo "CI: chaos cases diverge between solver modes" >&2; exit 1; }
rm -f "$chaos_fresh.cases" "$solver_out.cases"
echo "CI: chaos solver differential passed (incremental degrades like fresh)"

# Chaos smoke test: exploration with an armed fault plan and solver
# watchdog must complete cleanly in both execution modes (recovery, not
# crashes) and report a nonzero injected-fault count.
chaos_out=$(mktemp /tmp/s2e-chaos-XXXXXX.txt)
trap 'rm -f "$stats_file" "$serial_out" "$dist_out" "$merge_out" "$solver_out" "$url_fresh" "$chaos_fresh" "$merge_stats" "$trace_json" "$traced_out" "$chaos_out"' EXIT
dune exec bin/s2e_cli.exe -- explore --driver nulldrv --workload urlparse \
  --jobs 2 --seconds 5 --solver-timeout-ms 10000 \
  --fault-plan 'dev.read=err:0.05,irq=spurious:0.02,solver=latency:0.05' \
  > "$chaos_out" \
  || { echo "CI: jobs-mode chaos run failed" >&2; exit 1; }
injected=$(sed -n 's/^resilience: .* \([0-9][0-9]*\) injected faults$/\1/p' "$chaos_out")
[ -n "$injected" ] && [ "$injected" -gt 0 ] \
  || { echo "CI: jobs-mode chaos run injected no faults" >&2; exit 1; }
echo "CI: jobs-mode chaos smoke test passed ($injected faults injected)"

# Transport-only plan at procs=2: corrupted frames must be recovered by
# NAK/retransmit with zero lost work -- the case set must still equal
# the clean serial run's.
dune exec bin/s2e_cli.exe -- explore --driver nulldrv --workload symloop \
  --procs 2 --seconds 30 --fault-plan 'proto=corrupt:0.3' --cases \
  > "$chaos_out" \
  || { echo "CI: procs-mode chaos run failed" >&2; exit 1; }
injected=$(sed -n 's/^resilience: .* \([0-9][0-9]*\) injected faults$/\1/p' "$chaos_out")
[ -n "$injected" ] && [ "$injected" -gt 0 ] \
  || { echo "CI: procs-mode chaos run injected no faults" >&2; exit 1; }
grep '|' "$serial_out" > "$serial_out.cases"
grep '|' "$chaos_out" > "$chaos_out.cases"
diff "$serial_out.cases" "$chaos_out.cases" > /dev/null \
  || { echo "CI: chaos dist test cases differ from clean serial" >&2; exit 1; }
rm -f "$serial_out.cases" "$chaos_out.cases"
echo "CI: procs-mode chaos smoke test passed ($injected faults injected, cases == serial)"

# Elastic TCP cluster smoke: coordinator on loopback plus two TCP
# workers; SIGKILL one mid-run and join a replacement.  The run must
# exit 0 with zero abandoned items -- transport loss requeues work, it
# never poisons it -- and the report must count all three joins.
cluster_out=$(mktemp /tmp/s2e-cluster-XXXXXX.txt)
trap 'rm -f "$stats_file" "$serial_out" "$dist_out" "$merge_out" "$solver_out" "$url_fresh" "$chaos_fresh" "$merge_stats" "$trace_json" "$traced_out" "$chaos_out" "$cluster_out"' EXIT
cli=_build/default/bin/s2e_cli.exe
"$cli" serve --driver nulldrv --workload urlparse --seconds 12 \
  --listen 127.0.0.1:0 --lease 2 > "$cluster_out" &
serve_pid=$!
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$cluster_out")
  [ -n "$port" ] && break
  sleep 0.1
done
[ -n "$port" ] || { echo "CI: serve never printed its port" >&2; exit 1; }
"$cli" worker --driver nulldrv --workload urlparse \
  --connect 127.0.0.1:"$port" > /dev/null 2>&1 &
w1=$!
"$cli" worker --driver nulldrv --workload urlparse \
  --connect 127.0.0.1:"$port" > /dev/null 2>&1 &
w2=$!
sleep 4
kill -9 "$w1" 2>/dev/null || true
"$cli" worker --driver nulldrv --workload urlparse \
  --connect 127.0.0.1:"$port" > /dev/null 2>&1 &
w3=$!
serve_rc=0
wait "$serve_pid" || serve_rc=$?
kill "$w2" "$w3" 2>/dev/null || true
wait "$w1" "$w2" "$w3" 2>/dev/null || true
[ "$serve_rc" -eq 0 ] \
  || { echo "CI: cluster serve exited $serve_rc" >&2; cat "$cluster_out" >&2; exit 1; }
if grep -q '^abandoned item' "$cluster_out"; then
  echo "CI: cluster run abandoned work" >&2
  cat "$cluster_out" >&2
  exit 1
fi
joins=$(sed -n 's/^cluster: \([0-9][0-9]*\) joins.*/\1/p' "$cluster_out")
[ -n "$joins" ] && [ "$joins" -ge 3 ] \
  || { echo "CI: expected >=3 cluster joins, got '${joins:-none}'" >&2; exit 1; }
leaves=$(sed -n 's/^cluster: .*, \([0-9][0-9]*\) leaves.*/\1/p' "$cluster_out")
[ -n "$leaves" ] && [ "$leaves" -ge 1 ] \
  || { echo "CI: killed worker was not counted as a leave" >&2; exit 1; }
echo "CI: tcp cluster smoke test passed ($joins joins, $leaves leaves)"

# Distributed bench must emit its BENCH JSON line within a small budget,
# including the TCP leg's delta-snapshot compression ratio.
bench_dist=$(S2E_BENCH_SECONDS=5 timeout 90 dune exec bench/main.exe dist \
  | grep '^BENCH {"name":"dist_explore"') \
  || { echo "CI: bench dist emitted no BENCH line" >&2; exit 1; }
printf '%s\n' "$bench_dist" | grep -q '"snapshot_delta_ratio":' \
  || { echo "CI: bench dist missing snapshot_delta_ratio" >&2; exit 1; }
echo "CI: bench dist smoke test passed"

# Solver bench: the incremental instance ring must cut SAT-core wall to
# at most 0.8x fresh per-query solving on the breakdown workload, at a
# byte-identical case set (the headline ratio is ~0.2; 0.8 catches a
# regressed ring without flaking on machine noise).
solver_bench=$(S2E_BENCH_SECONDS=5 timeout 300 dune exec bench/main.exe solver \
  | grep '^BENCH {"name":"solver"') \
  || { echo "CI: bench solver emitted no BENCH line" >&2; exit 1; }
ratio=$(printf '%s\n' "$solver_bench" \
  | sed -n 's/.*"inc_over_fresh":\([0-9.]*\).*/\1/p')
[ -n "$ratio" ] || { echo "CI: bench solver missing inc_over_fresh" >&2; exit 1; }
ok=$(awk -v v="$ratio" 'BEGIN { print (v <= 0.8) ? 1 : 0 }')
[ "$ok" = 1 ] \
  || { echo "CI: bench solver inc_over_fresh=$ratio above 0.8x floor" >&2; exit 1; }
printf '%s\n' "$solver_bench" | grep -q '"cases_equal":true' \
  || { echo "CI: bench solver case sets diverged between modes" >&2; exit 1; }
reuse=$(printf '%s\n' "$solver_bench" \
  | sed -n 's/.*"reuse_rate":\([0-9.]*\).*/\1/p')
ok=$(awk -v v="$reuse" 'BEGIN { print (v > 0) ? 1 : 0 }')
[ "$ok" = 1 ] \
  || { echo "CI: bench solver realized no prefix reuse" >&2; exit 1; }
echo "CI: bench solver smoke test passed (inc/fresh=$ratio, reuse=$reuse)"

# Expression-interning bench: the microbenchmark must emit its BENCH line
# and every speedup column must clear the 2x acceptance floor.
expr_bench=$(S2E_BENCH_SECONDS=5 timeout 120 dune exec bench/main.exe expr \
  | grep '^BENCH {"name":"expr_intern"') \
  || { echo "CI: bench expr emitted no BENCH line" >&2; exit 1; }
for field in equal_speedup hash_speedup slice_speedup; do
  v=$(printf '%s\n' "$expr_bench" \
    | sed -n "s/.*\"$field\":\([0-9.]*\).*/\1/p")
  [ -n "$v" ] || { echo "CI: bench expr missing $field" >&2; exit 1; }
  ok=$(awk -v v="$v" 'BEGIN { print (v >= 2.0) ? 1 : 0 }')
  [ "$ok" = 1 ] \
    || { echo "CI: bench expr $field=$v below 2x floor" >&2; exit 1; }
done
echo "CI: bench expr smoke test passed"

# Merge bench: both workloads must clear the 5x path-reduction floor at
# identical case discovery (the headline number is ~15x; 5x catches a
# regressed policy without flaking on scheduler noise).
merge_bench=$(timeout 120 dune exec bench/main.exe merge \
  | grep '^BENCH {"name":"merge"') \
  || { echo "CI: bench merge emitted no BENCH line" >&2; exit 1; }
for field in urlparse_reduction symloop_reduction; do
  v=$(printf '%s\n' "$merge_bench" \
    | sed -n "s/.*\"$field\":\([0-9.]*\).*/\1/p")
  [ -n "$v" ] || { echo "CI: bench merge missing $field" >&2; exit 1; }
  ok=$(awk -v v="$v" 'BEGIN { print (v >= 5.0) ? 1 : 0 }')
  [ "$ok" = 1 ] \
    || { echo "CI: bench merge $field=$v below 5x floor" >&2; exit 1; }
done
printf '%s\n' "$merge_bench" | grep -q '"urlparse_cases_equal":true' \
  && printf '%s\n' "$merge_bench" | grep -q '"symloop_cases_equal":true' \
  || { echo "CI: bench merge case sets diverged" >&2; exit 1; }
echo "CI: bench merge smoke test passed"

# ISA-oracle smoke test: 500 generated blocks plus the checked-in
# urlparse corpus must replay with zero divergences (the oracle exits 1
# and dumps a repro on any divergence), and a fresh capture of the
# urlparse workload must also replay cleanly end to end.
oracle_dir=$(mktemp -d /tmp/s2e-oracle-XXXXXX)
trap 'rm -f "$stats_file" "$serial_out" "$dist_out" "$merge_out" "$solver_out" "$url_fresh" "$chaos_fresh" "$merge_stats" "$trace_json" "$traced_out" "$chaos_out"; rm -rf "$oracle_dir"' EXIT
dune exec bin/s2e_cli.exe -- oracle --count 500 --seed 1 \
  --corpus examples/oracle/urlparse.corpus --repro-dir "$oracle_dir" \
  > "$oracle_dir/out.txt" \
  || { echo "CI: oracle run diverged or failed" >&2; cat "$oracle_dir/out.txt" >&2; exit 1; }
grep -q '^divergences: none$' "$oracle_dir/out.txt" \
  || { echo "CI: oracle run reported divergences" >&2; exit 1; }
dune exec bin/s2e_cli.exe -- oracle --count 0 --seed 1 \
  --capture urlparse --driver nulldrv --seconds 5 --repro-dir "$oracle_dir" \
  > "$oracle_dir/cap.txt" \
  || { echo "CI: oracle capture/replay diverged or failed" >&2; cat "$oracle_dir/cap.txt" >&2; exit 1; }
grep -q '^divergences: none$' "$oracle_dir/cap.txt" \
  || { echo "CI: oracle capture/replay reported divergences" >&2; exit 1; }
captured=$(sed -n 's/^captured \([0-9][0-9]*\) block(s).*/\1/p' "$oracle_dir/cap.txt")
[ -n "$captured" ] && [ "$captured" -gt 0 ] \
  || { echo "CI: oracle captured no blocks" >&2; exit 1; }
echo "CI: oracle smoke test passed (500 generated + corpus + $captured captured blocks)"
