#!/bin/sh
# Tier-1 verification: full build plus the whole test suite.
# Run from anywhere inside the repository.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune runtest

# Telemetry smoke test: a short parallel exploration must stream parsable
# run-stats JSONL (>= 2 periodic snapshots + a final line), and the stats
# renderer must accept the file.
stats_file=$(mktemp /tmp/s2e-stats-XXXXXX.jsonl)
trap 'rm -f "$stats_file"' EXIT
dune exec bin/s2e_cli.exe -- explore --driver nulldrv --workload urlparse \
  --jobs 2 --seconds 2 --stats-out "$stats_file" --stats-interval 0.05 \
  > /dev/null
test -s "$stats_file" || { echo "CI: stats file empty" >&2; exit 1; }
lines=$(wc -l < "$stats_file")
[ "$lines" -ge 3 ] || { echo "CI: expected >=3 snapshots, got $lines" >&2; exit 1; }
grep -q '"kind":"final"' "$stats_file" \
  || { echo "CI: no final snapshot line" >&2; exit 1; }
dune exec bin/s2e_cli.exe -- stats "$stats_file" > /dev/null \
  || { echo "CI: stats renderer rejected the JSONL" >&2; exit 1; }
echo "CI: telemetry smoke test passed ($lines snapshot lines)"
