#!/bin/sh
# Tier-1 verification: full build plus the whole test suite.
# Run from anywhere inside the repository.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune runtest
