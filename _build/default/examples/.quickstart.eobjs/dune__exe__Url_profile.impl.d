examples/url_profile.ml: Char List Printf Profs S2e_guest S2e_tools String
