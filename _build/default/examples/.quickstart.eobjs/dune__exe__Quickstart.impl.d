examples/quickstart.ml: Events Executor Printf S2e_core S2e_expr S2e_guest S2e_solver S2e_vm State Symmem
