examples/reverse_driver.mli:
