examples/quickstart.mli:
