examples/url_profile.mli:
