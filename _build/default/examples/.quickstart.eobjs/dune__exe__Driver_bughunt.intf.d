examples/driver_bughunt.mli:
