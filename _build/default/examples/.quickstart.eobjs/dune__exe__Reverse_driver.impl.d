examples/reverse_driver.ml: List Printf Rev S2e_tools String
