examples/driver_bughunt.ml: Array Consistency Ddt Events Executor List Printf S2e_core S2e_expr S2e_guest S2e_isa S2e_plugins S2e_solver S2e_tools S2e_vm State
