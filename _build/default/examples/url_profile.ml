(* Multi-path in-vivo performance profiling with PROFS: the Apache URL
   parser experiment of paper section 6.1.3.

   Run with:  dune exec examples/url_profile.exe

   The URL buffer's tail is symbolic, so the profile covers the whole family
   of URLs at once.  For every explored path, PROFS reports the instruction
   count and the simulated cache/TLB behaviour, and solving the path
   constraints recovers the concrete URL that follows that path. *)

open S2e_tools

let () =
  print_endline "PROFS: profiling the URL parser over all inputs at once...";
  let r =
    Profs.run ~max_seconds:20.0
      ~workload:("urlparse", S2e_guest.Workloads_src.urlparse)
      ()
  in
  let paths = Profs.completed r in
  Printf.printf "%d paths profiled in %.1fs (%.1fs constraint solving)\n\n"
    (List.length paths) r.seconds r.solver_seconds;
  (* A few sample paths with their reconstructed inputs. *)
  print_endline "sample paths (solved input suffix -> cost):";
  List.iteri
    (fun i p ->
      if i < 10 then begin
        let bytes =
          List.filter_map
            (fun (name, v) ->
              if String.length name >= 4 && String.sub name 0 4 = "sym1" then
                Some (Char.chr (if v >= 32 && v < 127 then v else Char.code '.'))
              else None)
            p.Profs.p_input
        in
        let input = String.init (List.length bytes) (List.nth bytes) in
        Printf.printf
          "  http://h/%-10s  %6d instrs, %3d L1 misses, %2d TLB misses, %d page faults\n"
          input p.p_instructions
          (p.p_i1_misses + p.p_d1_misses)
          p.p_tlb_misses p.p_page_faults
      end)
    paths;
  (* The paper's headline observation: cost is linear in '/' count. *)
  let pts =
    List.map
      (fun p ->
        ( float_of_int (Profs.count_input_byte p ~prefix:"sym1" (Char.code '/')),
          float_of_int p.Profs.p_instructions ))
      paths
  in
  (match Profs.regression pts with
  | Some (slope, intercept) ->
      Printf.printf
        "\nperformance model: instructions ~= %.1f * (#'/') + %.0f\n" slope
        intercept;
      Printf.printf
        "=> every extra '/' in a URL costs ~%.0f instructions, with no upper\n\
        \   bound on URL length: the denial-of-service angle the paper checked.\n"
        slope
  | None -> ());
  match Profs.envelope r with
  | Some (lo, hi) ->
      Printf.printf "\nperformance envelope: %d to %d instructions per URL\n" lo hi
  | None -> ()
