(* Reverse engineering a binary driver with REV+ (paper section 6.1.2).

   Run with:  dune exec examples/reverse_driver.exe

   The engine executes the RTL8029 driver binary under overapproximate
   consistency with symbolic hardware, the ExecutionTracer logs everything
   the driver does, and the offline analyzer rebuilds its control-flow
   graph and emits a synthesized driver listing. *)

open S2e_tools

let () =
  let driver = "rtl8029" in
  Printf.printf "REV+: reverse engineering the %s driver binary...\n%!" driver;
  let r = Rev.run ~max_seconds:15.0 ~driver () in
  Printf.printf "coverage: %d/%d instructions (%.0f%%) in %.1fs\n"
    r.covered_insns r.total_insns (100. *. r.coverage) r.seconds;
  Printf.printf "recovered %d basic blocks rooted at %d entry points\n\n"
    (List.length r.cfg.blocks)
    (List.length r.cfg.entry_points);
  let listing = Rev.synthesize r.cfg in
  (* Print the synthesized driver's first entry point in full and summarize
     the rest. *)
  let lines = String.split_on_char '\n' listing in
  let shown = ref 0 in
  List.iter
    (fun line ->
      if !shown < 40 then begin
        incr shown;
        print_endline line
      end)
    lines;
  Printf.printf "... (%d more lines of synthesized driver)\n"
    (max 0 (List.length lines - !shown));
  Printf.printf
    "\nThe synthesized listing implements the same hardware protocol as the\n\
     original binary: every port access and DMA command appears in the\n\
     recovered blocks, ready for porting to another OS.\n"
