(* Driver bug hunt: run DDT+ against the (buggy) PCnet driver analogue
   under local consistency and print a crash report for each bug, including
   a WinDbg-style dump of the guest state and the concrete inputs that
   reach the bug (paper section 6.1.1).

   Run with:  dune exec examples/driver_bughunt.exe *)

open S2e_core
open S2e_tools
module Expr = S2e_expr.Expr
module Guest = S2e_guest.Guest

(* A crash dump in the spirit of the ones DDT+ hands to WinDbg: registers,
   the top of the stack, and the injected values that trigger the bug. *)
let print_crash_dump (b : Events.bug) =
  let s = b.bug_state in
  Printf.printf "  --- crash dump (path %d) ---\n" s.State.id;
  Printf.printf "  pc = 0x%08x   status: %s\n" b.bug_pc
    (State.status_string s.State.status);
  for r = 0 to S2e_isa.Insn.num_regs - 1 do
    let v = State.get_reg s r in
    let rendered =
      match Expr.to_const v with
      | Some c -> Printf.sprintf "%08Lx" c
      | None -> "<symbolic>"
    in
    Printf.printf "  %4s = %s%s" (S2e_isa.Insn.reg_name r) rendered
      (if r mod 4 = 3 then "\n" else "  ")
  done;
  (* Concrete inputs that drive execution to this point. *)
  (match S2e_solver.Solver.check s.State.constraints with
  | S2e_solver.Solver.Sat model when not (Expr.Int_map.is_empty model) ->
      Printf.printf "  triggering inputs (solved from %d path constraints):\n"
        (List.length s.State.constraints);
      let shown = ref 0 in
      Expr.Int_map.iter
        (fun id v ->
          if !shown < 8 then begin
            incr shown;
            Printf.printf "    var#%d = 0x%Lx\n" id v
          end)
        model
  | _ -> ());
  print_newline ()

let () =
  let driver = "pcnet" in
  Printf.printf "DDT+: hunting bugs in the %s driver binary under LC...\n\n%!"
    (Guest.driver_display_name driver);
  (* Wire the bug event to the crash-dump printer by re-running with our own
     engine — Ddt.run owns its engine, so we use its result list for the
     summary and print dumps from a custom run for the first few bugs. *)
  let r = Ddt.run ~max_seconds:15.0 ~driver ~consistency:Consistency.LC () in
  Printf.printf "%d paths explored in %.1fs, %.0f%% driver coverage\n\n"
    r.paths r.seconds (100. *. r.coverage);
  Printf.printf "distinct bugs found: %d\n" (List.length r.bugs);
  List.iter
    (fun (b : Ddt.bug_report) ->
      Printf.printf "  [%s] at pc 0x%x: %s\n" b.kind b.pc b.message)
    r.bugs;
  print_newline ();
  (* Second pass with a dump printer attached, to show full crash dumps. *)
  print_endline "re-running with crash dumps enabled for the first 3 bugs:";
  let engine, img = Ddt.build_engine ~driver ~consistency:Consistency.LC in
  let checker =
    S2e_plugins.Memchecker.attach engine
      ~alloc_addr:(Guest.symbol img "alloc")
      ~free_addr:(Guest.symbol img "kfree")
      ~unit_name:driver
  in
  Ddt.install_lc_annotations engine img checker;
  let dumped = ref 0 in
  Events.reg_bug engine.Executor.events (fun b ->
      if !dumped < 3 then begin
        incr dumped;
        print_crash_dump b
      end);
  let s0 = Executor.boot engine ~entry:img.Guest.entry () in
  ignore
    (S2e_vm.Netdev.inject_frame s0.State.devices.netdev
       (Array.init 24 (fun i -> (i * 7) land 0xff)));
  ignore
    (Executor.run
       ~limits:{ Executor.max_instructions = Some 2_000_000;
                 max_seconds = Some 15.0; max_completed = None }
       engine s0)
