(* Quickstart: symbolically execute a small guest program and recover the
   "license key" that unlocks its hidden path.

   Run with:  dune exec examples/quickstart.exe

   This walks the whole public API surface once: compile MC source into a
   guest image, load it into the engine, mark data symbolic from inside the
   guest (the S2SYM custom opcode, via the __s2e_sym_int intrinsic), explore
   all paths, and solve a path's constraints back into a concrete input. *)

open S2e_core
module Expr = S2e_expr.Expr
module Guest = S2e_guest.Guest

(* The guest program: an activation check we want to break.  The guest
   stack also contains the kernel, klib and a null driver; the checker code
   calls into them (kputs) like any real program calls its OS. *)
let program =
  {|
int check_key(int key) {
  int k = key ^ 0x5A5A;
  if (k % 1000 != 77) return 0;
  if ((k >> 12) != 13) return 0;
  return 1;
}

int main() {
  int key = __s2e_sym_int(1);
  if (check_key(key)) {
    kputs("ACTIVATED");
    return 1;
  }
  kputs("bad key");
  return 0;
}
|}

let () =
  (* 1. Build a bootable guest image: kernel + klib + driver + program. *)
  let img =
    Guest.build
      ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
      ~workload:("keycheck", program)
      ()
  in
  (* 2. Create an engine; the program module is the multi-path unit, the
     kernel and library remain in the single-path concrete domain. *)
  let engine = Executor.create () in
  Guest.load_into_engine engine img;
  Executor.set_unit engine [ "keycheck" ];
  (* 3. Watch for finished paths. *)
  let winner = ref None in
  Events.reg_state_end engine.Executor.events (fun s ->
      let result = Symmem.read_word s.State.mem Guest.result_addr in
      if Expr.to_const result = Some 1L then winner := Some s);
  (* 4. Explore. *)
  let s0 = Executor.boot engine ~entry:img.entry () in
  let paths = Executor.run engine s0 in
  Printf.printf "explored %d paths\n" paths;
  (* 5. Solve the winning path's constraints into a concrete key. *)
  match !winner with
  | None -> print_endline "no ACTIVATED path found"
  | Some s -> (
      match S2e_solver.Solver.check s.State.constraints with
      | S2e_solver.Solver.Sat model ->
          let key =
            Expr.Int_map.fold (fun _ v acc -> if acc = None then Some v else acc)
              model None
          in
          (match key with
          | Some k ->
              Printf.printf "activation key found: 0x%Lx\n" k;
              (* Double-check by running the key concretely on the plain VM. *)
              let m = S2e_vm.Machine.create () in
              Guest.load_into_machine m img;
              ignore (S2e_vm.Machine.run m);
              Printf.printf "concrete run of the original image prints: %S\n"
                (S2e_vm.Machine.console_output m)
          | None -> print_endline "path had no symbolic input?")
      | _ -> print_endline "constraints unexpectedly unsatisfiable")
