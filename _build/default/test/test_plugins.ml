(* Tests for the stock plugins, over small purpose-built guest stacks. *)

open S2e_core
open S2e_plugins
module Expr = S2e_expr.Expr
module Guest = S2e_guest.Guest

let make_engine ?(consistency = Consistency.LC) ?registry ~unit_modules
    ~driver ~workload () =
  let img = Guest.build ?registry ~driver ~workload () in
  let config = Executor.default_config () in
  config.consistency <- consistency;
  let engine = Executor.create ~config () in
  Guest.load_into_engine engine img;
  Executor.set_unit engine unit_modules;
  (engine, img)

let nulldrv = ("nulldrv", S2e_guest.Drivers_src.nulldrv)

let run engine img =
  let s0 = Executor.boot engine ~entry:img.Guest.entry () in
  Executor.run
    ~limits:{ Executor.max_instructions = Some 2_000_000;
              max_seconds = Some 20.0; max_completed = None }
    engine s0

let test_coverage_plugin () =
  let engine, img =
    make_engine ~unit_modules:[ "w" ] ~driver:nulldrv
      ~workload:("w", {|
int main() {
  int x = __s2e_sym_int(1);
  if (x > 5) return 1;
  return 0;
}
|}) ()
  in
  let cov = Coverage.attach engine in
  ignore (run engine img);
  let c = Coverage.module_coverage cov "w" in
  Alcotest.(check bool) "full coverage of tiny unit" true (c > 0.95);
  Alcotest.(check bool) "timeline grows" true
    (List.length (Coverage.timeline cov) > 10)

let test_tracer_plugin () =
  let engine, img =
    make_engine ~unit_modules:[ "w" ] ~driver:nulldrv
      ~workload:("w", {|
int main() {
  int x = __s2e_sym_int(1);
  if (x == 3) return 1;
  return 0;
}
|}) ()
  in
  let w = Module_map.entry engine.Executor.modules "w" |> Option.get in
  let tracer = Tracer.attach ~only_range:(w.code_start, w.code_end) engine in
  ignore (run engine img);
  let traces = Tracer.finished_traces tracer in
  Alcotest.(check int) "two traces" 2 (List.length traces);
  (* Both traces share the prefix up to the fork. *)
  List.iter
    (fun (tr : Tracer.trace) ->
      Alcotest.(check bool) "trace nonempty" true (List.length tr.events > 5))
    traces

let test_path_killer_polling_loop () =
  let engine, img =
    make_engine ~unit_modules:[ "w" ] ~driver:nulldrv
      ~workload:("w", {|
int main() {
  while (1) { }
  return 0;
}
|}) ()
  in
  let killer = Path_killer.attach ~max_repeats:100 engine in
  let completed = run engine img in
  Alcotest.(check int) "loop killed" 1 completed;
  Alcotest.(check int) "killer fired" 1 (Path_killer.kills killer)

let test_memchecker_overflow () =
  let engine, img =
    make_engine ~unit_modules:[ "w" ] ~driver:nulldrv
      ~workload:("w", {|
int main() {
  int *p = alloc(16);
  if (!p) return 0 - 1;
  p[4] = 1;          // one past the end
  kfree(p);
  return 0;
}
|}) ()
  in
  let checker =
    Memchecker.attach engine
      ~alloc_addr:(Guest.symbol img "alloc")
      ~free_addr:(Guest.symbol img "kfree")
      ~unit_name:"w"
  in
  ignore (run engine img);
  match Memchecker.bugs checker with
  | [ b ] ->
      Alcotest.(check bool) "overflow reported" true
        (String.length b.Events.bug_message > 0)
  | l -> Alcotest.failf "expected 1 bug, got %d" (List.length l)

let test_memchecker_leak_and_double_free () =
  let engine, img =
    make_engine ~unit_modules:[ "w" ] ~driver:nulldrv
      ~workload:("w", {|
int main() {
  int *a = alloc(16);
  int *b = alloc(16);
  kfree(b);
  kfree(b);          // double free
  return 0;          // a leaks
}
|}) ()
  in
  let checker =
    Memchecker.attach engine
      ~alloc_addr:(Guest.symbol img "alloc")
      ~free_addr:(Guest.symbol img "kfree")
      ~unit_name:"w"
  in
  ignore (run engine img);
  let msgs = Memchecker.distinct_bugs checker in
  Alcotest.(check bool) "double free reported" true
    (List.exists (fun m -> String.length m >= 11 && String.sub m 0 11 = "double free") msgs);
  Alcotest.(check bool) "leak reported" true
    (List.exists (fun m -> String.length m >= 11 && String.sub m 0 11 = "memory leak") msgs)

let test_annotation_return_range () =
  (* Annotating an environment function's return makes the unit fork. *)
  let engine, img =
    make_engine ~unit_modules:[ "w" ]
      ~driver:nulldrv
      ~workload:("w", {|
int get_status() { return 1; }
int classify() {
  int v = kstrlen("xx");   // env call whose return we annotate
  if (v < 0) return 1;
  if (v > 10) return 2;
  return 0;
}
int main() { return classify(); }
|}) ()
  in
  Annotation.return_in_range engine
    ~callee:(Guest.symbol img "kstrlen")
    ~name:"len" ~lo:(-5) ~hi:100;
  let completed = run engine img in
  Alcotest.(check int) "three outcomes" 3 completed

let test_registry_selector_forks () =
  let engine, img =
    make_engine ~unit_modules:[ "w" ]
      ~registry:[ ("Mode", "1") ]
      ~driver:nulldrv
      ~workload:("w", {|
int main() {
  int mode = reg_query_int("Mode", 1);
  if (mode == 1) return 10;
  if (mode == 2) return 20;
  return 30;
}
|}) ()
  in
  let reg = Registry.attach engine ~query_entry:(Guest.symbol img "reg_query_int") in
  Registry.watch reg ~key:"Mode" ~values:[ 1; 2; 9 ];
  let completed = run engine img in
  Alcotest.(check int) "three config paths" 3 completed;
  Alcotest.(check int) "two injections" 2 (Registry.injections reg)

let test_registry_selector_inactive_under_strict () =
  let engine, img =
    make_engine ~consistency:Consistency.SC_SE ~unit_modules:[ "w" ]
      ~registry:[ ("Mode", "1") ]
      ~driver:nulldrv
      ~workload:("w", {|
int main() {
  int mode = reg_query_int("Mode", 1);
  if (mode == 1) return 10;
  return 30;
}
|}) ()
  in
  let reg = Registry.attach engine ~query_entry:(Guest.symbol img "reg_query_int") in
  Registry.watch reg ~key:"Mode" ~values:[ 1; 2; 9 ];
  let completed = run engine img in
  Alcotest.(check int) "registry concrete under SC-SE" 1 completed

let test_perf_profile_counts () =
  let engine, img =
    make_engine ~unit_modules:[ "w" ] ~driver:nulldrv
      ~workload:("w", {|
int main() {
  int sum = 0;
  for (int i = 0; i < 100; i = i + 1) sum = sum + i;
  return sum;
}
|}) ()
  in
  let prof = Perf_profile.attach engine in
  ignore (run engine img);
  match Perf_profile.reports prof with
  | [ r ] ->
      Alcotest.(check bool) "counted instructions" true (r.r_instructions > 500);
      Alcotest.(check bool) "loop has reads+writes" true (r.r_reads + r.r_writes > 100)
  | l -> Alcotest.failf "expected 1 report, got %d" (List.length l)

let test_bugcheck_panic () =
  let engine, img =
    make_engine ~unit_modules:[ "w" ] ~driver:nulldrv
      ~workload:("w", {|
int main() {
  int x = __s2e_sym_int(1);
  if (x == 42) __syscall(8, 0xDEAD, 0, 0);   // panic
  return 0;
}
|}) ()
  in
  let bc = Bugcheck.attach engine ~panic_addr:(Guest.symbol img "panic") in
  ignore (run engine img);
  Alcotest.(check int) "one bugcheck" 1 (List.length (Bugcheck.panics bc))

let tests =
  [
    Alcotest.test_case "coverage tracker" `Quick test_coverage_plugin;
    Alcotest.test_case "execution tracer" `Quick test_tracer_plugin;
    Alcotest.test_case "path killer (polling loop)" `Quick test_path_killer_polling_loop;
    Alcotest.test_case "memchecker overflow" `Quick test_memchecker_overflow;
    Alcotest.test_case "memchecker leak + double free" `Quick
      test_memchecker_leak_and_double_free;
    Alcotest.test_case "annotation return range" `Quick test_annotation_return_range;
    Alcotest.test_case "registry selector forks" `Quick test_registry_selector_forks;
    Alcotest.test_case "registry inactive under SC-SE" `Quick
      test_registry_selector_inactive_under_strict;
    Alcotest.test_case "performance profile" `Quick test_perf_profile_counts;
    Alcotest.test_case "bugcheck panic" `Quick test_bugcheck_panic;
  ]
