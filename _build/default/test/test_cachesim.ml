(* Tests for the cache/TLB simulator. *)

open S2e_cachesim

let cfg ?(size = 1024) ?(line = 64) ?(assoc = 2) name =
  { Cache.size; line_size = line; associativity = assoc; name }

let test_cold_misses () =
  let c = Cache.create (cfg "t") in
  Alcotest.(check bool) "first access misses" false (Cache.access c 0);
  Alcotest.(check bool) "second access hits" true (Cache.access c 0);
  Alcotest.(check bool) "same line hits" true (Cache.access c 63);
  Alcotest.(check bool) "next line misses" false (Cache.access c 64)

let test_associativity_lru () =
  (* 2-way, 1024B, 64B lines -> 8 sets.  Lines mapping to set 0 are
     multiples of 512. *)
  let c = Cache.create (cfg "t") in
  ignore (Cache.access c 0);
  ignore (Cache.access c 512);
  Alcotest.(check bool) "both ways resident" true (Cache.access c 0);
  ignore (Cache.access c 1024); (* evicts LRU = 512 *)
  Alcotest.(check bool) "0 still resident" true (Cache.access c 0);
  Alcotest.(check bool) "512 evicted" false (Cache.access c 512)

let test_clone_independent () =
  let c = Cache.create (cfg "t") in
  ignore (Cache.access c 0);
  let c' = Cache.clone c in
  ignore (Cache.access c' 4096);
  let _, m = Cache.stats c in
  let _, m' = Cache.stats c' in
  Alcotest.(check int) "original misses" 1 m;
  Alcotest.(check int) "clone misses" 2 m'

let prop_miss_count_bounded =
  QCheck2.Test.make ~count:100 ~name:"misses never exceed accesses"
    QCheck2.Gen.(list_size (int_bound 200) (int_bound 100_000))
    (fun addrs ->
      let c = Cache.create (cfg "t") in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      let acc, m = Cache.stats c in
      acc = List.length addrs && m <= acc)

let prop_repeat_hits =
  QCheck2.Test.make ~count:50 ~name:"re-access of a small working set hits"
    QCheck2.Gen.(int_bound 7)
    (fun n ->
      let c = Cache.create (cfg ~size:4096 ~assoc:4 "t") in
      let addrs = List.init (n + 1) (fun i -> i * 64) in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      List.for_all (fun a -> Cache.access c a) addrs)

let test_tlb_and_page_faults () =
  let t = Tlb.create ~page_size:4096 ~entries:4 () in
  Tlb.access t 0;
  Tlb.access t 4096;
  Tlb.access t 0;
  let acc, misses, faults = Tlb.stats t in
  Alcotest.(check int) "accesses" 3 acc;
  Alcotest.(check int) "tlb misses" 2 misses;
  Alcotest.(check int) "page faults" 2 faults;
  (* revisiting a resident page is not a fault even after TLB eviction *)
  Tlb.access t (2 * 4096);
  Tlb.access t (3 * 4096);
  Tlb.access t (4 * 4096);
  Tlb.access t (5 * 4096); (* page 0 evicted from TLB by now *)
  Tlb.access t 0;
  let _, _, faults = Tlb.stats t in
  Alcotest.(check int) "page 0 still resident" 6 faults

let test_hierarchy () =
  let h = Hierarchy.create () in
  Hierarchy.fetch h 0x1000;
  Hierarchy.data h 0x2000;
  Hierarchy.data h 0x2000;
  let t = Hierarchy.totals h in
  Alcotest.(check int) "i1 misses" 1 t.Hierarchy.i1_misses;
  Alcotest.(check int) "d1 misses" 1 t.d1_misses;
  Alcotest.(check int) "l2 misses" 2 t.l2_misses;
  Alcotest.(check int) "page faults" 2 t.page_faults

let tests =
  [
    Alcotest.test_case "cold misses" `Quick test_cold_misses;
    Alcotest.test_case "associativity + LRU" `Quick test_associativity_lru;
    Alcotest.test_case "clone independence" `Quick test_clone_independent;
    QCheck_alcotest.to_alcotest prop_miss_count_bounded;
    QCheck_alcotest.to_alcotest prop_repeat_hits;
    Alcotest.test_case "tlb and page faults" `Quick test_tlb_and_page_faults;
    Alcotest.test_case "hierarchy" `Quick test_hierarchy;
  ]
