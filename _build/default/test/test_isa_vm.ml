(* Tests for the assembler, instruction codec and the concrete machine. *)

open S2e_isa
open S2e_vm

let assemble = Asm.assemble ~origin:Layout.image_origin

let run_program ?fuel src =
  let img = assemble src in
  let m = Machine.create () in
  Machine.load_image m img;
  let status = Machine.run ?fuel m in
  (m, status)

let test_roundtrip () =
  let insns =
    Insn.
      [
        Alu { op = Add; rd = 1; rs1 = 2; rs2 = 3 };
        Alui { op = Xor; rd = 4; rs1 = 5; imm = 0x1234l };
        Li { rd = 0; imm = -1l };
        Mov { rd = 7; rs1 = 8 };
        Lw { rd = 1; base = 13; off = 16l };
        Sb { src = 2; base = 12; off = -4l };
        Jmp { target = 0x2000l };
        Jal { target = 0x3000l };
        Branch { cond = Bltu; rs1 = 1; rs2 = 2; target = 0x1008l };
        In { rd = 3; port = 15; port_off = 0x20l };
        Out { src = 3; port = 15; port_off = 0x21l };
        Syscall; Sysret; Iret; Halt; Cli; Sti; Nop;
        S2e { op = Sym_reg; rs1 = 1; rs2 = 15; imm = 7l };
      ]
  in
  let buf = Bytes.make (8 * List.length insns) '\000' in
  List.iteri (fun i insn -> Insn.encode insn buf (8 * i)) insns;
  List.iteri
    (fun i insn ->
      let insn' = Insn.decode buf (8 * i) in
      if insn <> insn' then
        Alcotest.failf "roundtrip mismatch: %s vs %s" (Insn.to_string insn)
          (Insn.to_string insn'))
    insns

let prop_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"encode/decode roundtrip (random alu)"
    QCheck2.Gen.(
      quad (int_bound 13) (int_bound 15) (int_bound 15) (int_bound 0xFFFF))
    (fun (op, rd, rs1, imm) ->
      let insn =
        Insn.Alui { op = Insn.alu_of_code op; rd; rs1; imm = Int32.of_int imm }
      in
      let buf = Bytes.make 8 '\000' in
      Insn.encode insn buf 0;
      Insn.decode buf 0 = insn)

let test_asm_labels () =
  let img =
    assemble
      {|
start:
  li r0, 5
  jal func
  halt
func:
  addi r0, r0, 1
  jr lr
|}
  in
  Alcotest.(check int) "start" Layout.image_origin (Asm.symbol img "start");
  Alcotest.(check int) "func" (Layout.image_origin + 24) (Asm.symbol img "func")

let test_machine_arith () =
  let m, status =
    run_program
      {|
  li r0, 21
  addi r1, r0, 21
  mul r2, r0, r1
  halt
|}
  in
  Alcotest.(check bool) "halted" true (status = Machine.Halted);
  Alcotest.(check int) "r1" 42 m.regs.(1);
  Alcotest.(check int) "r2" (21 * 42) m.regs.(2)

let test_machine_loop () =
  (* Sum 1..10 with a loop. *)
  let m, status =
    run_program
      {|
  li r0, 0      ; sum
  li r1, 1      ; i
  li r2, 11
loop:
  bgeu r1, r2, done
  add r0, r0, r1
  addi r1, r1, 1
  jmp loop
done:
  halt
|}
  in
  Alcotest.(check bool) "halted" true (status = Machine.Halted);
  Alcotest.(check int) "sum" 55 m.regs.(0)

let test_machine_memory () =
  let m, _ =
    run_program
      {|
  li r0, 0xDEADBEEF
  sw r0, -8(sp)
  lw r1, -8(sp)
  lb r2, -8(sp)
  lb r3, -5(sp)
  halt
|}
  in
  Alcotest.(check int) "lw" 0xDEADBEEF m.regs.(1);
  Alcotest.(check int) "lb low" 0xEF m.regs.(2);
  Alcotest.(check int) "lb high" 0xDE m.regs.(3)

let test_machine_console () =
  let m, _ =
    run_program
      {|
  li r0, 'H'
  out r0, 0(zr)
  li r0, 'i'
  out r0, 0(zr)
  halt
|}
  in
  Alcotest.(check string) "console" "Hi" (Machine.console_output m)

let test_machine_syscall () =
  let m, status =
    run_program
      {|
entry:
  li r0, vector
  lw r1, 0(r0)
  sw r1, 8(zr)       ; install syscall vector
  li r0, 123
  syscall
  halt
vector:
  .word handler
handler:
  addi r0, r0, 1
  sysret
|}
  in
  Alcotest.(check bool) "halted" true (status = Machine.Halted);
  Alcotest.(check int) "syscall ran" 124 m.regs.(0)

let test_machine_irq () =
  (* Program a timer, spin, and count IRQs in r5. *)
  let m, status =
    run_program ~fuel:4000
      {|
entry:
  li r0, handler
  sw r0, 4(zr)       ; install irq vector
  li r5, 0
  li r0, 100
  out r0, 0x11(zr)   ; timer interval = 100
  li r0, 1
  out r0, 0x10(zr)   ; timer enable
  sti
spin:
  li r6, 3
  bgeu r5, r6, done
  jmp spin
done:
  halt
handler:
  addi r5, r5, 1
  iret
|}
  in
  Alcotest.(check bool) "halted" true (status = Machine.Halted);
  Alcotest.(check int) "three irqs" 3 m.regs.(5)

let test_machine_fault () =
  let _, status = run_program {|
  li r0, 0x7FFFFFFF
  lw r1, 0(r0)
  halt
|} in
  match status with
  | Machine.Faulted _ -> ()
  | _ -> Alcotest.fail "expected fault"

let test_netdev_pio () =
  (* Inject a frame, then read it back through the DATA port. *)
  let img = assemble {|
  li r0, 2
  out r0, 0x21(zr)    ; enable rx
wait:
  in r1, 0x20(zr)     ; status
  andi r1, r1, 2
  beq r1, zr, wait
  in r2, 0x23(zr)     ; rx_len
  in r3, 0x22(zr)     ; first byte
  in r4, 0x22(zr)     ; second byte
  halt
|} in
  let m = Machine.create () in
  Machine.load_image m img;
  ignore (Netdev.inject_frame m.devices.netdev [| 0xAA; 0xBB; 0xCC |]);
  let status = Machine.run m in
  Alcotest.(check bool) "halted" true (status = Machine.Halted);
  Alcotest.(check int) "len" 3 m.regs.(2);
  Alcotest.(check int) "b0" 0xAA m.regs.(3);
  Alcotest.(check int) "b1" 0xBB m.regs.(4)

let test_netdev_dma () =
  let img = assemble {|
  li r0, 2
  out r0, 0x21(zr)    ; enable rx
  li r0, 0x8000
  out r0, 0x26(zr)    ; dma addr
  li r0, 16
  out r0, 0x27(zr)    ; dma len
  li r0, 5
  out r0, 0x21(zr)    ; cmd: dma rx
  li r5, 0x8000
  lb r1, 0(r5)
  lb r2, 1(r5)
  halt
|} in
  let m = Machine.create () in
  Machine.load_image m img;
  ignore (Netdev.inject_frame m.devices.netdev [| 0x11; 0x22 |]);
  let status = Machine.run m in
  Alcotest.(check bool) "halted" true (status = Machine.Halted);
  Alcotest.(check int) "dma b0" 0x11 m.regs.(1);
  Alcotest.(check int) "dma b1" 0x22 m.regs.(2)

let test_disasm () =
  let img = assemble {|
  li r0, 7
  halt
|} in
  let get i = Char.code (Bytes.get img.code (i - img.origin)) in
  let listing =
    Disasm.disassemble_range ~get ~start:img.origin ~stop:(img.origin + 16)
  in
  Alcotest.(check int) "two insns" 2 (List.length listing)

let tests =
  [
    Alcotest.test_case "insn roundtrip" `Quick test_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "assembler labels" `Quick test_asm_labels;
    Alcotest.test_case "machine arithmetic" `Quick test_machine_arith;
    Alcotest.test_case "machine loop" `Quick test_machine_loop;
    Alcotest.test_case "machine memory" `Quick test_machine_memory;
    Alcotest.test_case "console device" `Quick test_machine_console;
    Alcotest.test_case "syscall/sysret" `Quick test_machine_syscall;
    Alcotest.test_case "timer interrupt" `Quick test_machine_irq;
    Alcotest.test_case "memory fault" `Quick test_machine_fault;
    Alcotest.test_case "netdev programmed io" `Quick test_netdev_pio;
    Alcotest.test_case "netdev dma" `Quick test_netdev_dma;
    Alcotest.test_case "disassembler" `Quick test_disasm;
  ]
