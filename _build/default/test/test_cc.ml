(* Compiler tests: compile MC programs, run them on the concrete machine and
   check their observable results. *)

open S2e_vm
open S2e_cc

(* A minimal runtime: set up the stack, call main, write main's result to a
   known memory cell, halt. *)
let runtime =
  {|
__start:
  li sp, 0xFFFF0
  jal main
  li r1, 0x900
  sw r0, 0(r1)
  halt
|}

let run_mc ?fuel source =
  let linked = Cc.link ~runtime_asm:runtime [ ("test", source) ] in
  let m = Machine.create () in
  Machine.load_image m linked.image;
  let status = Machine.run ?fuel m in
  let result = Machine.read32 m 0x900 in
  (m, status, result)

let check_result ?fuel source expected =
  let _, status, result = run_mc ?fuel source in
  (match status with
  | Machine.Halted -> ()
  | Machine.Faulted msg -> Alcotest.failf "faulted: %s" msg
  | Machine.Running -> Alcotest.fail "out of fuel");
  Alcotest.(check int) "result" expected result

let test_arith () =
  check_result {| int main() { return (3 + 4) * 5 - 36 / 6; } |} 29

let test_vars () =
  check_result
    {|
int main() {
  int a = 10;
  int b;
  b = a * 3;
  return a + b;
}
|}
    40

let test_if_else () =
  check_result
    {|
int classify(int x) {
  if (x < 0) return 0 - 1;
  else if (x == 0) return 0;
  else return 1;
}
int main() { return classify(0-5) + 10 * classify(0) + 100 * classify(7); }
|}
    99

let test_while_loop () =
  check_result
    {|
int main() {
  int sum = 0;
  int i = 1;
  while (i <= 10) { sum = sum + i; i = i + 1; }
  return sum;
}
|}
    55

let test_for_loop () =
  check_result
    {|
int main() {
  int sum = 0;
  for (int i = 0; i < 5; i = i + 1) sum = sum + i * i;
  return sum;
}
|}
    30

let test_break_continue () =
  check_result
    {|
int main() {
  int sum = 0;
  for (int i = 0; i < 100; i = i + 1) {
    if (i % 2 == 0) continue;
    if (i > 10) break;
    sum = sum + i;
  }
  return sum;
}
|}
    (1 + 3 + 5 + 7 + 9)

let test_recursion () =
  check_result
    {|
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
|}
    144

let test_arrays () =
  check_result
    {|
int a[8];
int main() {
  for (int i = 0; i < 8; i = i + 1) a[i] = i * 10;
  int sum = 0;
  for (int i = 0; i < 8; i = i + 1) sum = sum + a[i];
  return sum;
}
|}
    280

let test_local_arrays () =
  check_result
    {|
int main() {
  char buf[16];
  buf[0] = 'A';
  buf[1] = buf[0] + 1;
  return buf[0] * 1000 + buf[1];
}
|}
    (65 * 1000 + 66)

let test_pointers () =
  check_result
    {|
int g = 5;
int bump(int *p) { *p = *p + 1; return *p; }
int main() {
  int x = 10;
  bump(&x);
  bump(&g);
  int *q = &x;
  return *q * 100 + g;
}
|}
    (11 * 100 + 6)

let test_pointer_arith () =
  check_result
    {|
int a[4];
int main() {
  int *p = a;
  *p = 7;
  *(p + 2) = 9;
  return a[0] + a[2];
}
|}
    16

let test_strings () =
  check_result
    {|
int strlen(char *s) {
  int n = 0;
  while (s[n]) n = n + 1;
  return n;
}
int main() { return strlen("hello world"); }
|}
    11

let test_globals_init () =
  check_result
    {|
int table[] = {2, 3, 5, 7, 11};
char name[] = "mc";
int big = 0x1234;
int main() { return table[2] + table[4] + name[0] + big; }
|}
    (5 + 11 + Char.code 'm' + 0x1234)

let test_const_decl () =
  check_result
    {|
const int WIDTH = 8;
const int AREA = WIDTH * WIDTH;
int main() { return AREA + WIDTH; }
|}
    72

let test_short_circuit () =
  check_result
    {|
int calls = 0;
int bump() { calls = calls + 1; return 1; }
int main() {
  int a = 0 && bump();
  int b = 1 || bump();
  int c = 1 && bump();
  return calls * 100 + a + b * 10 + c;
}
|}
    111

let test_ternary () =
  check_result {| int main() { int x = 7; return x > 5 ? 100 : 200; } |} 100

let test_logical_ops () =
  check_result
    {|
int main() {
  int x = 0xF0;
  return ((x | 0x0F) ^ 0xFF) + (x >> 4) + (1 << 3) + (!0) + (~0 & 0xFF);
}
|}
    (0 + 0xF + 8 + 1 + 0xFF)

let test_console_io () =
  let m, status, _ =
    run_mc
      {|
const int CONSOLE = 0;
int putc(int c) { return __out(CONSOLE, c); }
int puts(char *s) {
  int i = 0;
  while (s[i]) { putc(s[i]); i = i + 1; }
  return i;
}
int main() { return puts("mc says hi"); }
|}
  in
  Alcotest.(check bool) "halted" true (status = Machine.Halted);
  Alcotest.(check string) "console" "mc says hi" (Machine.console_output m)

let test_comments () =
  check_result
    {|
// line comment
/* block
   comment */
int main() { return 1; /* trailing */ }
|}
    1

let test_multi_module () =
  let linked =
    Cc.link ~runtime_asm:runtime
      [
        ("libm", {| int square(int x) { return x * x; } |});
        ("test", {| int main() { return square(9); } |});
      ]
  in
  let m = Machine.create () in
  Machine.load_image m linked.image;
  ignore (Machine.run m);
  Alcotest.(check int) "cross-module call" 81 (Machine.read32 m 0x900);
  (* Module ranges must be disjoint and ordered. *)
  let libm = Cc.module_range linked "libm" in
  let test = Cc.module_range linked "test" in
  Alcotest.(check bool) "ranges ordered" true (libm.m_end <= test.m_start);
  Alcotest.(check bool) "code within module" true
    (libm.m_start < libm.m_code_end && libm.m_code_end <= libm.m_end)

(* Property: compiled arithmetic agrees with OCaml arithmetic. *)
let prop_arith =
  QCheck2.Test.make ~count:40 ~name:"compiled arithmetic matches reference"
    QCheck2.Gen.(triple (int_bound 1000) (int_bound 1000) (int_bound 4))
    (fun (a, b, op) ->
      let expr, expected =
        match op with
        | 0 -> (Printf.sprintf "%d + %d" a b, a + b)
        | 1 -> (Printf.sprintf "%d * %d" a b, a * b)
        | 2 -> (Printf.sprintf "%d - %d" a b, (a - b) land 0xFFFFFFFF)
        | 3 -> (Printf.sprintf "%d / (%d + 1)" a b, a / (b + 1))
        | _ -> (Printf.sprintf "(%d ^ %d) & 0xFFFF" a b, (a lxor b) land 0xFFFF)
      in
      let _, status, result =
        run_mc (Printf.sprintf "int main() { return %s; }" expr)
      in
      status = Machine.Halted && result = expected)

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "variables" `Quick test_vars;
    Alcotest.test_case "if/else" `Quick test_if_else;
    Alcotest.test_case "while" `Quick test_while_loop;
    Alcotest.test_case "for" `Quick test_for_loop;
    Alcotest.test_case "break/continue" `Quick test_break_continue;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "global arrays" `Quick test_arrays;
    Alcotest.test_case "local arrays" `Quick test_local_arrays;
    Alcotest.test_case "pointers" `Quick test_pointers;
    Alcotest.test_case "pointer arithmetic" `Quick test_pointer_arith;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "global initializers" `Quick test_globals_init;
    Alcotest.test_case "const declarations" `Quick test_const_decl;
    Alcotest.test_case "short circuit" `Quick test_short_circuit;
    Alcotest.test_case "ternary" `Quick test_ternary;
    Alcotest.test_case "bitwise ops" `Quick test_logical_ops;
    Alcotest.test_case "console io" `Quick test_console_io;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "multi-module link" `Quick test_multi_module;
    QCheck_alcotest.to_alcotest prop_arith;
  ]
