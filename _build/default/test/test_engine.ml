(* Integration tests for the selective symbolic execution engine. *)

open S2e_cc
open S2e_core
module Expr = S2e_expr.Expr

let runtime =
  {|
__start:
  li sp, 0xFFFF0
  jal main
  li r1, 0x900
  sw r0, 0(r1)
  halt
|}

(* Build an engine from MC modules; [unit_modules] are explored
   symbolically. *)
let make_engine ?config ~unit_modules mods =
  let linked = Cc.link ~runtime_asm:runtime mods in
  let engine = Executor.create ?config () in
  Executor.load engine
    {
      Executor.l_origin = linked.image.origin;
      l_code = linked.image.code;
      l_modules =
        List.map
          (fun (m : Cc.module_range) -> (m.m_name, m.m_start, m.m_code_end, m.m_end))
          linked.modules;
    };
  Executor.set_unit engine unit_modules;
  (engine, linked)

let collect_results engine =
  let results = ref [] in
  Events.reg_state_end engine.Executor.events (fun s -> results := s :: !results);
  results

let test_concrete_run () =
  (* A fully concrete program must execute exactly one path. *)
  let engine, _ =
    make_engine ~unit_modules:[ "prog" ]
      [ ("prog", {| int main() { int x = 5; if (x > 3) return 10; return 20; } |}) ]
  in
  let results = collect_results engine in
  let s0 = Executor.boot engine ~entry:0x1000 () in
  let completed = Executor.run engine s0 in
  Alcotest.(check int) "one path" 1 completed;
  match !results with
  | [ s ] ->
      Alcotest.(check bool) "halted" true (s.State.status = State.Halted);
      (match Expr.to_const (S2e_core.Symmem.read_word s.mem 0x900) with
      | Some 10L -> ()
      | v -> Alcotest.failf "wrong result: %s" (match v with Some v -> Int64.to_string v | None -> "symbolic"))
  | _ -> Alcotest.fail "expected one result"

let test_symbolic_fork () =
  (* A symbolic input with one branch must explore two paths. *)
  let engine, _ =
    make_engine ~unit_modules:[ "prog" ]
      [
        ( "prog",
          {|
int main() {
  int x = __s2e_sym_int(1);
  if (x > 100) return 1;
  return 2;
} |}
        );
      ]
  in
  let results = collect_results engine in
  let s0 = Executor.boot engine ~entry:0x1000 () in
  let completed = Executor.run engine s0 in
  Alcotest.(check int) "two paths" 2 completed;
  let outcomes =
    List.filter_map
      (fun (s : State.t) ->
        match Expr.to_const (S2e_core.Symmem.read_word s.mem 0x900) with
        | Some v -> Some (Int64.to_int v)
        | None -> None)
      !results
    |> List.sort compare
  in
  Alcotest.(check (list int)) "both outcomes" [ 1; 2 ] outcomes

let test_magic_value () =
  (* The engine must find the 'magic' input via constraint solving. *)
  let engine, _ =
    make_engine ~unit_modules:[ "prog" ]
      [
        ( "prog",
          {|
int main() {
  int x = __s2e_sym_int(1);
  if (x * 3 + 7 == 52) return 1;  // x = 15
  return 0;
} |}
        );
      ]
  in
  let results = collect_results engine in
  let s0 = Executor.boot engine ~entry:0x1000 () in
  ignore (Executor.run engine s0);
  let winning =
    List.find_opt
      (fun (s : State.t) ->
        Expr.to_const (S2e_core.Symmem.read_word s.mem 0x900) = Some 1L)
      !results
  in
  match winning with
  | None -> Alcotest.fail "did not find the magic path"
  | Some s -> (
      (* Solve the path constraints: the input must be 15. *)
      match S2e_solver.Solver.check s.constraints with
      | S2e_solver.Solver.Sat m ->
          let x =
            S2e_expr.Expr.Int_map.fold (fun _ v acc -> if acc = None then Some v else acc) m None
          in
          Alcotest.(check (option int64)) "x = 15" (Some 15L) x
      | _ -> Alcotest.fail "path constraints unsat")

let test_loop_forking () =
  (* Symbolic loop bound: N iterations produce N+1 paths. *)
  let engine, _ =
    make_engine ~unit_modules:[ "prog" ]
      [
        ( "prog",
          {|
int main() {
  int n = __s2e_sym_int(1);
  if (n < 0) return 0;
  if (n > 4) return 0;
  int sum = 0;
  for (int i = 0; i < n; i = i + 1) sum = sum + i;
  return sum;
} |}
        );
      ]
  in
  let s0 = Executor.boot engine ~entry:0x1000 () in
  let completed = Executor.run engine s0 in
  (* paths: n<0, n>4, and n in {0..4} -> 7 *)
  Alcotest.(check int) "seven paths" 7 completed

let test_multipath_toggle () =
  (* Disabling multipath makes symbolic branches concretize instead of
     forking. *)
  let engine, _ =
    make_engine ~unit_modules:[ "prog" ]
      [
        ( "prog",
          {|
int main() {
  int x = __s2e_sym_int(1);
  __s2e_disable();
  if (x > 100) return 1;
  return 2;
} |}
        );
      ]
  in
  let s0 = Executor.boot engine ~entry:0x1000 () in
  let completed = Executor.run engine s0 in
  Alcotest.(check int) "single path" 1 completed

let test_symbolic_memory () =
  (* Symbolic buffer bytes drive branches. *)
  let engine, _ =
    make_engine ~unit_modules:[ "prog" ]
      [
        ( "prog",
          {|
char buf[4];
int main() {
  __s2e_sym_mem(buf, 4, 2);
  if (buf[0] == 'A' && buf[1] == 'B') return 1;
  return 0;
} |}
        );
      ]
  in
  let results = collect_results engine in
  let s0 = Executor.boot engine ~entry:0x1000 () in
  let completed = Executor.run engine s0 in
  Alcotest.(check bool) "several paths" true (completed >= 2);
  let winning =
    List.exists
      (fun (s : State.t) ->
        Expr.to_const (S2e_core.Symmem.read_word s.mem 0x900) = Some 1L)
      !results
  in
  Alcotest.(check bool) "found AB path" true winning

let test_cow_isolation () =
  (* Forked paths must not see each other's writes (the non-VM tools
     problem the paper describes: paths clobbering each other's state). *)
  let engine, _ =
    make_engine ~unit_modules:[ "prog" ]
      [
        ( "prog",
          {|
int g = 0;
int main() {
  int x = __s2e_sym_int(1);
  if (x == 7) { g = 111; } else { g = 222; }
  return g;
} |}
        );
      ]
  in
  let results = collect_results engine in
  let s0 = Executor.boot engine ~entry:0x1000 () in
  ignore (Executor.run engine s0);
  let outcomes =
    List.filter_map
      (fun (s : State.t) ->
        Expr.to_const (S2e_core.Symmem.read_word s.mem 0x900)
        |> Option.map Int64.to_int)
      !results
    |> List.sort compare
  in
  Alcotest.(check (list int)) "isolated globals" [ 111; 222 ] outcomes

let test_sc_ce_single_path () =
  (* Under SC-CE the symbolic-data opcodes are inert: one concrete path. *)
  let config = Executor.default_config () in
  config.consistency <- Consistency.SC_CE;
  let engine, _ =
    make_engine ~config ~unit_modules:[ "prog" ]
      [
        ( "prog",
          {|
int main() {
  int x = __s2e_sym_int(1);
  if (x > 100) return 1;
  return 2;
} |}
        );
      ]
  in
  let s0 = Executor.boot engine ~entry:0x1000 () in
  let completed = Executor.run engine s0 in
  Alcotest.(check int) "single concrete path" 1 completed

let test_instr_marking () =
  (* onInstrTranslation marking triggers onInstrExecution. *)
  let engine, linked =
    make_engine ~unit_modules:[ "prog" ]
      [ ("prog", {| int work(int k) { return k + 1; }
int main() { int s = 0; for (int i = 0; i < 5; i = i + 1) s = work(s); return s; } |}) ]
  in
  let work_addr = S2e_isa.Asm.symbol linked.image "work" in
  let executions = ref 0 in
  Events.reg_instr_translate engine.Executor.events (fun addr _ ->
      if addr = work_addr then S2e_dbt.Dbt.mark engine.Executor.dbt addr);
  Events.reg_instr_execute engine.Executor.events (fun _ addr _ ->
      if addr = work_addr then incr executions);
  let s0 = Executor.boot engine ~entry:0x1000 () in
  ignore (Executor.run engine s0);
  Alcotest.(check int) "work executed 5 times" 5 !executions

let test_env_boundary_lc_abort () =
  (* Under LC, the environment branching on unit-provided symbolic data
     aborts the path. *)
  let engine, _ =
    make_engine ~unit_modules:[ "unit" ]
      [
        ( "env",
          {| int env_check(int v) { if (v > 5) return 1; return 0; } |} );
        ( "unit",
          {|
int main() {
  int x = __s2e_sym_int(1);
  return env_check(x);
} |}
        );
      ]
  in
  let results = collect_results engine in
  let s0 = Executor.boot engine ~entry:0x1000 () in
  ignore (Executor.run engine s0);
  let aborted =
    List.exists
      (fun (s : State.t) ->
        match s.status with State.Aborted _ -> true | _ -> false)
      !results
  in
  Alcotest.(check bool) "LC aborts env symbolic branch" true aborted

let test_env_boundary_scse_forks () =
  (* Under SC-SE the same program forks inside the environment instead. *)
  let config = Executor.default_config () in
  config.consistency <- Consistency.SC_SE;
  let engine, _ =
    make_engine ~config ~unit_modules:[ "unit" ]
      [
        ("env", {| int env_check(int v) { if (v > 5) return 1; return 0; } |});
        ("unit", {|
int main() {
  int x = __s2e_sym_int(1);
  return env_check(x);
} |});
      ]
  in
  let s0 = Executor.boot engine ~entry:0x1000 () in
  let completed = Executor.run engine s0 in
  Alcotest.(check int) "two paths under SC-SE" 2 completed

let test_sc_ue_concretizes () =
  (* Under SC-UE, calling the environment pins the symbolic argument. *)
  let config = Executor.default_config () in
  config.consistency <- Consistency.SC_UE;
  let engine, _ =
    make_engine ~config ~unit_modules:[ "unit" ]
      [
        ("env", {| int env_id(int v) { return v; } |});
        ("unit", {|
int main() {
  int x = __s2e_sym_int(1);
  int y = env_id(x);
  if (x > 100) return 1;   // dead after concretization to a single value
  return 2;
} |});
      ]
  in
  let s0 = Executor.boot engine ~entry:0x1000 () in
  let completed = Executor.run engine s0 in
  (* x was pinned by the env call, so the later branch cannot fork. *)
  Alcotest.(check int) "one path under SC-UE" 1 completed

let test_rc_oc_unconstrained_return () =
  (* Under RC-OC, env return values are unconstrained: both assert outcomes
     are explored, including the locally infeasible one (paper Fig. 4). *)
  let config = Executor.default_config () in
  config.consistency <- Consistency.RC_OC;
  let engine, _ =
    make_engine ~config ~unit_modules:[ "unit" ]
      [
        ("env", {| int env_flag() { return 0; } |});
        ("unit", {|
int main() {
  int st = env_flag();
  if (st == 0) return 1;
  return 2;     // infeasible in reality: env_flag always returns 0
} |});
      ]
  in
  let s0 = Executor.boot engine ~entry:0x1000 () in
  let completed = Executor.run engine s0 in
  Alcotest.(check int) "two paths under RC-OC" 2 completed

let test_rc_cc_no_solver () =
  (* RC-CC follows both CFG edges even when one is infeasible. *)
  let config = Executor.default_config () in
  config.consistency <- Consistency.RC_CC;
  let engine, _ =
    make_engine ~config ~unit_modules:[ "prog" ]
      [
        ("prog", {|
int main() {
  int x = __s2e_sym_int(1);
  if (x > 10) {
    if (x < 5) return 99;   // infeasible edge, still explored under RC-CC
    return 1;
  }
  return 2;
} |});
      ]
  in
  let results = collect_results engine in
  let s0 = Executor.boot engine ~entry:0x1000 () in
  ignore (Executor.run engine s0);
  let outcomes =
    List.filter_map
      (fun (s : State.t) ->
        Expr.to_const (S2e_core.Symmem.read_word s.mem 0x900)
        |> Option.map Int64.to_int)
      !results
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "all CFG edges" [ 1; 2; 99 ] outcomes

let test_assert_bug_detection () =
  let engine, _ =
    make_engine ~unit_modules:[ "prog" ]
      [
        ("prog", {|
int main() {
  int x = __s2e_sym_int(1);
  if (x < 10) {
    __s2e_assert(x != 3);   // can fail
  }
  return 0;
} |});
      ]
  in
  let bugs = ref [] in
  Events.reg_bug engine.Executor.events (fun b -> bugs := b :: !bugs);
  let s0 = Executor.boot engine ~entry:0x1000 () in
  ignore (Executor.run engine s0);
  Alcotest.(check int) "one bug found" 1 (List.length !bugs);
  match !bugs with
  | [ b ] -> Alcotest.(check string) "kind" "assertion" b.Events.bug_kind
  | _ -> ()

let tests =
  [
    Alcotest.test_case "concrete run" `Quick test_concrete_run;
    Alcotest.test_case "symbolic fork" `Quick test_symbolic_fork;
    Alcotest.test_case "magic value" `Quick test_magic_value;
    Alcotest.test_case "loop forking" `Quick test_loop_forking;
    Alcotest.test_case "multipath toggle" `Quick test_multipath_toggle;
    Alcotest.test_case "symbolic memory" `Quick test_symbolic_memory;
    Alcotest.test_case "copy-on-write isolation" `Quick test_cow_isolation;
    Alcotest.test_case "SC-CE single path" `Quick test_sc_ce_single_path;
    Alcotest.test_case "instruction marking" `Quick test_instr_marking;
    Alcotest.test_case "LC env abort" `Quick test_env_boundary_lc_abort;
    Alcotest.test_case "SC-SE env fork" `Quick test_env_boundary_scse_forks;
    Alcotest.test_case "SC-UE concretize at call" `Quick test_sc_ue_concretizes;
    Alcotest.test_case "RC-OC unconstrained return" `Quick test_rc_oc_unconstrained_return;
    Alcotest.test_case "RC-CC ignores feasibility" `Quick test_rc_cc_no_solver;
    Alcotest.test_case "assertion bug detection" `Quick test_assert_bug_detection;
  ]
