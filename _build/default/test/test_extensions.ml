(* Tests for the section-6.1.4 extension analyzers (privacy, energy) and
   the RC-CC dynamic unpacker. *)

open S2e_core
open S2e_plugins
module Guest = S2e_guest.Guest

let make_engine ?(consistency = Consistency.LC) ?registry ~unit_modules
    ~workload () =
  let img =
    Guest.build ?registry
      ~driver:("pcnet", List.assoc "pcnet" Guest.drivers)
      ~workload ()
  in
  let config = Executor.default_config () in
  config.consistency <- consistency;
  let engine = Executor.create ~config () in
  Guest.load_into_engine engine img;
  Executor.set_unit engine unit_modules;
  (engine, img)

let run engine img =
  let s0 = Executor.boot engine ~entry:img.Guest.entry () in
  ( s0,
    fun () ->
      Executor.run
        ~limits:{ Executor.max_instructions = Some 2_000_000;
                  max_seconds = Some 20.0; max_completed = None }
        engine s0 )

(* --- privacy / taint --- *)

let netdev_ports = (S2e_vm.Layout.port_netdev, S2e_vm.Layout.port_netdev + 16)

let test_taint_detects_leak () =
  (* A program that sends a secret over the network: the secret flows
     through the kernel and the driver (lazy concretization keeps it
     symbolic) and must be flagged when it reaches the NIC's data port. *)
  let engine, img =
    make_engine ~unit_modules:[ "w" ]
      ~workload:("w", {|
char card_number[8];
int main() {
  char packet[16];
  kmemcpy(packet, card_number, 8);
  net_send(packet, 8);
  return 0;
}
|}) ()
  in
  let taint = Taint.attach engine ~ports:[ netdev_ports ] in
  let s0, go = run engine img in
  Taint.mark_secret taint s0 ~addr:(Guest.symbol img "card_number") ~len:8
    ~label:"card";
  ignore (go ());
  Alcotest.(check bool) "leak detected" true (Taint.leaks taint <> []);
  match Taint.leaks taint with
  | l :: _ -> Alcotest.(check string) "which secret" "card" l.Taint.leak_var
  | [] -> ()

let test_taint_no_false_positive () =
  (* Sending unrelated data must not be flagged. *)
  let engine, img =
    make_engine ~unit_modules:[ "w" ]
      ~workload:("w", {|
char card_number[8];
int main() {
  char packet[16];
  kmemset(packet, 0x41, 8);
  net_send(packet, 8);
  return card_number[0] & 0;
}
|}) ()
  in
  let taint = Taint.attach engine ~ports:[ netdev_ports ] in
  let s0, go = run engine img in
  Taint.mark_secret taint s0 ~addr:(Guest.symbol img "card_number") ~len:8
    ~label:"card";
  ignore (go ());
  Alcotest.(check (list string)) "no leaks" []
    (List.map (fun l -> l.Taint.leak_var) (Taint.leaks taint))

(* --- energy --- *)

let test_energy_envelope () =
  let engine, img =
    make_engine ~unit_modules:[ "w" ]
      ~workload:("w", {|
int main() {
  int n = __s2e_sym_int(1);
  if (n < 0) return 0;
  if (n > 3) return 0;
  int acc = 0;
  for (int i = 0; i < n * 10; i = i + 1) acc = acc + i * i;
  return acc;
}
|}) ()
  in
  let energy = Energy.attach engine in
  let _, go = run engine img in
  ignore (go ());
  match Energy.envelope energy with
  | None -> Alcotest.fail "no energy reports"
  | Some (lo, hi, worst) ->
      Alcotest.(check bool) "spread exists" true (hi > lo);
      Alcotest.(check int) "worst path has max energy" hi worst.Energy.e_energy

let test_energy_io_is_expensive () =
  (* The same instruction count with I/O must cost more energy. *)
  let model = Energy.default_model in
  Alcotest.(check bool) "io > alu" true (model.io > model.alu);
  let io_cost =
    Energy.cost model (S2e_isa.Insn.Out { src = 0; port = 15; port_off = 0l })
  in
  let alu_cost =
    Energy.cost model (S2e_isa.Insn.Alu { op = Add; rd = 0; rs1 = 1; rs2 = 2 })
  in
  Alcotest.(check bool) "cost function honours class" true (io_cost > alu_cost)

(* --- dynamic unpacker (RC-CC) --- *)

let test_unpacker_decrypts_and_disassembles () =
  let r = S2e_tools.Unpacker.run ~max_seconds:15.0 () in
  Alcotest.(check bool) "decryption stub is correct" true r.decrypt_ok;
  (* RC-CC must reach every CFG edge of the decrypted payload: full
     coverage of the packed region. *)
  Alcotest.(check bool)
    (Printf.sprintf "full packed-region recovery (%.0f%%)"
       (100. *. r.covered_fraction))
    true
    (r.covered_fraction > 0.99);
  (* The payload's 4 outcomes all explored. *)
  Alcotest.(check bool) "all payload paths" true (r.paths >= 4)

let test_packed_image_is_garbled () =
  (* Before decryption, the packed region must not decode as the original
     function (otherwise the experiment proves nothing). *)
  let img, lo, _ = S2e_tools.Unpacker.build_packed () in
  let code = img.linked.image.code in
  let origin = img.linked.image.origin in
  let first = Char.code (Bytes.get code (lo - origin)) in
  (* The original first byte is the opcode of "subi sp, sp, 8" = op_alui;
     after XOR it must differ. *)
  Alcotest.(check bool) "first opcode is encrypted" true
    (first <> S2e_isa.Insn.op_alui)

let tests =
  [
    Alcotest.test_case "taint: leak detected" `Quick test_taint_detects_leak;
    Alcotest.test_case "taint: no false positive" `Quick test_taint_no_false_positive;
    Alcotest.test_case "energy: envelope" `Quick test_energy_envelope;
    Alcotest.test_case "energy: io cost" `Quick test_energy_io_is_expensive;
    Alcotest.test_case "unpacker: RC-CC disassembly" `Slow
      test_unpacker_decrypts_and_disassembles;
    Alcotest.test_case "unpacker: payload encrypted in image" `Quick
      test_packed_image_is_garbled;
  ]
