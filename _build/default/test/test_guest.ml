(* Tests for the guest software stack: boot full kernel+driver+workload
   images on the concrete machine and under the engine. *)

open S2e_vm
open S2e_guest

let read_result m = Machine.read32 m Guest.result_addr

let boot_concrete ?registry ?(frames = []) ~driver ~workload () =
  let driver_src = List.assoc driver Guest.drivers in
  let img = Guest.build ?registry ~driver:(driver, driver_src) ~workload () in
  let m = Machine.create () in
  Guest.load_into_machine m img;
  List.iter (fun f -> ignore (Netdev.inject_frame m.devices.netdev f)) frames;
  let status = Machine.run ~fuel:3_000_000 m in
  (m, img, status)

let test_boot_pcnet () =
  let m, _, status =
    boot_concrete ~driver:"pcnet"
      ~workload:("exerciser", Workloads_src.exerciser)
      ~frames:[ Array.init 8 (fun i -> i + 1) ]
      ()
  in
  (match status with
  | Machine.Halted -> ()
  | Machine.Faulted msg -> Alcotest.failf "faulted: %s" msg
  | Machine.Running -> Alcotest.fail "out of fuel");
  Alcotest.(check int) "workload result" 0 (read_result m);
  (* The driver must have transmitted the exerciser's two frames. *)
  Alcotest.(check int) "tx frames" 2
    (List.length (Netdev.transmitted m.devices.netdev))

let test_boot_all_drivers () =
  List.iter
    (fun (name, _) ->
      let m, _, status =
        boot_concrete ~driver:name
          ~workload:("exerciser", Workloads_src.exerciser)
          ~frames:[ Array.init 8 (fun i -> i * 2) ]
          ()
      in
      (match status with
      | Machine.Halted -> ()
      | Machine.Faulted msg -> Alcotest.failf "%s faulted: %s" name msg
      | Machine.Running -> Alcotest.failf "%s out of fuel" name);
      Alcotest.(check int) (name ^ " result") 0 (read_result m))
    Guest.drivers

let test_bad_card_type_fails_init () =
  let m, _, status =
    boot_concrete
      ~registry:[ ("CardType", "9"); ("TxMode", "1") ]
      ~driver:"pcnet"
      ~workload:("exerciser", Workloads_src.exerciser)
      ()
  in
  Alcotest.(check bool) "halted" true (status = Machine.Halted);
  (* kmain returns nonzero -> boot stub stores -1. *)
  Alcotest.(check int) "init failed" 0xFFFFFFFF (read_result m);
  let out = Machine.console_output m in
  Alcotest.(check bool) "diagnostic printed" true
    (String.length out > 0
    && String.sub out 0 5 = "pcnet")

(* Build with the null driver for hardware-free workloads. *)
let boot_null_concrete ?registry ~workload () =
  let img =
    Guest.build ?registry ~driver:("nulldrv", Drivers_src.nulldrv) ~workload ()
  in
  let m = Machine.create () in
  Guest.load_into_machine m img;
  let status = Machine.run ~fuel:3_000_000 m in
  (m, img, status)

let test_urlparse () =
  let m, _, status = boot_null_concrete ~workload:("urlparse", Workloads_src.urlparse) () in
  Alcotest.(check bool) "halted" true (status = Machine.Halted);
  Alcotest.(check int) "valid url" 0 (read_result m)

let test_ping_fixed_concrete () =
  (* With the null driver net_poll returns 0; the workload then parses its
     zeroed buffer (v != 4 -> error -2). *)
  let m, _, status =
    boot_null_concrete ~workload:("ping", Workloads_src.ping ~buggy:false) ()
  in
  Alcotest.(check bool) "halted" true (status = Machine.Halted);
  Alcotest.(check int) "bad version rejected" (-2 land 0xFFFFFFFF) (read_result m)

let test_ping_with_reply () =
  (* A pcnet driver delivers a real echo reply; the parser accepts it. *)
  let reply = Array.make 28 0 in
  reply.(0) <- 0x45;
  (* type/code at offset 20 are already 0/0 = echo reply *)
  reply.(24) <- 7;
  let m, _, status =
    boot_concrete ~driver:"pcnet"
      ~workload:("ping", Workloads_src.ping ~buggy:false)
      ~frames:[ reply ] ()
  in
  (match status with
  | Machine.Halted -> ()
  | Machine.Faulted msg -> Alcotest.failf "faulted: %s" msg
  | Machine.Running -> Alcotest.fail "out of fuel");
  Alcotest.(check int) "payload sum" 7 (read_result m)

let test_mua_concrete () =
  let m, _, status = boot_null_concrete ~workload:("mua", Workloads_src.mua) () in
  Alcotest.(check bool) "halted" true (status = Machine.Halted);
  (* a=2; while (a<6) a=a*2; print a  => 8 *)
  Alcotest.(check int) "mua result" 8 (read_result m);
  Alcotest.(check string) "mua printed" "8\n" (Machine.console_output m)

let test_registry_lookup () =
  let m, _, status =
    boot_null_concrete
      ~registry:[ ("CardType", "3"); ("Answer", "42") ]
      ~workload:
        ( "regtest",
          {|
int main() {
  char buf[16];
  int n = reg_query("Answer", buf, 16);
  if (n < 0) return 0 - 1;
  int v = katoi(buf);
  int miss = reg_query("Nope", buf, 16);
  if (miss != 0 - 1) return 0 - 2;
  return v;
}
|} )
      ()
  in
  Alcotest.(check bool) "halted" true (status = Machine.Halted);
  Alcotest.(check int) "registry value" 42 (read_result m)

let test_alloc_free () =
  let m, _, status =
    boot_null_concrete
      ~workload:
        ( "alloctest",
          {|
int main() {
  int *a = __syscall(3, 64, 0, 0);
  int *b = __syscall(3, 128, 0, 0);
  if (!a || !b) return 0 - 1;
  a[0] = 11;
  b[0] = 22;
  if (a[0] + b[0] != 33) return 0 - 2;
  __syscall(4, a, 0, 0);
  // freed block is recycled for an allocation that fits
  int *c = __syscall(3, 32, 0, 0);
  if (c != a) return 0 - 3;
  __syscall(4, b, 0, 0);
  __syscall(4, c, 0, 0);
  return 7;
}
|} )
      ()
  in
  Alcotest.(check bool) "halted" true (status = Machine.Halted);
  Alcotest.(check int) "alloc/free works" 7 (read_result m)

let tests =
  [
    Alcotest.test_case "boot pcnet + exerciser" `Quick test_boot_pcnet;
    Alcotest.test_case "boot all four drivers" `Quick test_boot_all_drivers;
    Alcotest.test_case "bad CardType fails init" `Quick test_bad_card_type_fails_init;
    Alcotest.test_case "urlparse accepts sample" `Quick test_urlparse;
    Alcotest.test_case "ping rejects empty reply" `Quick test_ping_fixed_concrete;
    Alcotest.test_case "ping parses real reply" `Quick test_ping_with_reply;
    Alcotest.test_case "mua runs sample program" `Quick test_mua_concrete;
    Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
    Alcotest.test_case "kernel allocator" `Quick test_alloc_free;
  ]
