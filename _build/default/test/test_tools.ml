(* End-to-end tests for the three tools: the paper's headline results must
   reproduce.  These runs take a few seconds each. *)

open S2e_core
open S2e_tools

(* --- DDT+: 2 bugs under SC-SE, all 7 under LC (paper section 6.1.1) --- *)

let test_ddt_scse () =
  let pcnet = Ddt.run ~max_seconds:20.0 ~driver:"pcnet" ~consistency:Consistency.SC_SE () in
  let rtl = Ddt.run ~max_seconds:20.0 ~driver:"rtl8029" ~consistency:Consistency.SC_SE () in
  Alcotest.(check int) "2 bugs total under SC-SE" 2
    (Ddt.seeded_bug_count pcnet + Ddt.seeded_bug_count rtl)

let test_ddt_lc () =
  let pcnet = Ddt.run ~max_seconds:25.0 ~driver:"pcnet" ~consistency:Consistency.LC () in
  let rtl = Ddt.run ~max_seconds:25.0 ~driver:"rtl8029" ~consistency:Consistency.LC () in
  let total = Ddt.seeded_bug_count pcnet + Ddt.seeded_bug_count rtl in
  Alcotest.(check int) "7 bugs total under LC" 7 total;
  (* The bug classes the paper lists: memory corruption, leaks, races. *)
  let kinds =
    List.sort_uniq compare
      (List.map (fun (b : Ddt.bug_report) -> b.kind) (pcnet.bugs @ rtl.bugs))
  in
  Alcotest.(check (list string)) "bug classes" [ "memory"; "race" ] kinds

let test_ddt_no_bugs_in_clean_drivers () =
  List.iter
    (fun driver ->
      let r = Ddt.run ~max_seconds:12.0 ~driver ~consistency:Consistency.LC () in
      Alcotest.(check int) (driver ^ " clean") 0 (Ddt.seeded_bug_count r))
    [ "c111"; "rtl8139" ]

(* --- REV+: better coverage than the RevNIC-style baseline (Table 5) --- *)

let test_rev_beats_baseline () =
  let plus = Rev.run ~max_seconds:10.0 ~mode:`Rev_plus ~driver:"rtl8139" () in
  let base = Rev.run ~max_seconds:10.0 ~mode:`Revnic_baseline ~driver:"rtl8139" () in
  Alcotest.(check bool)
    (Printf.sprintf "REV+ (%.0f%%) >= baseline (%.0f%%)"
       (100. *. plus.coverage) (100. *. base.coverage))
    true
    (plus.coverage >= base.coverage);
  Alcotest.(check bool) "meaningful coverage" true (plus.coverage > 0.5)

let test_rev_synthesis () =
  let r = Rev.run ~max_seconds:8.0 ~driver:"rtl8029" () in
  Alcotest.(check bool) "blocks recovered" true (List.length r.cfg.blocks > 10);
  let listing = Rev.synthesize r.cfg in
  (* Entry points appear as labels in the synthesized driver. *)
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "driver_init synthesized" true
    (contains "driver_init:" listing);
  Alcotest.(check bool) "control-flow edges present" true
    (contains "// ->" listing)

(* --- PROFS (section 6.1.3) --- *)

let test_profs_url_linear_in_slashes () =
  let r =
    Profs.run ~max_seconds:15.0
      ~workload:("urlparse", S2e_guest.Workloads_src.urlparse)
      ()
  in
  let pts =
    List.filter_map
      (fun p ->
        if p.Profs.p_status = "halted" then
          Some
            ( float_of_int (Profs.count_input_byte p ~prefix:"sym1" (Char.code '/')),
              float_of_int p.Profs.p_instructions )
        else None)
      r.paths
  in
  Alcotest.(check bool) "many paths" true (List.length pts > 100);
  match Profs.regression pts with
  | None -> Alcotest.fail "no regression"
  | Some (slope, _) ->
      (* The paper reports a small constant cost per '/' character. *)
      Alcotest.(check bool)
        (Printf.sprintf "per-slash cost positive and small (%.1f)" slope)
        true
        (slope > 1.0 && slope < 100.0)

let test_profs_ping_finds_infinite_loop () =
  let reply = Array.make 28 0 in
  reply.(0) <- 0x45;
  let driver = ("pcnet", List.assoc "pcnet" S2e_guest.Guest.drivers) in
  let r =
    Profs.run ~max_seconds:25.0 ~driver ~frames:[ reply ]
      ~workload:("ping", S2e_guest.Workloads_src.ping ~buggy:true)
      ()
  in
  Alcotest.(check bool) "unbounded path detected" true r.unbounded

let test_profs_ping_envelope_after_patch () =
  let reply = Array.make 28 0 in
  reply.(0) <- 0x45;
  let driver = ("pcnet", List.assoc "pcnet" S2e_guest.Guest.drivers) in
  let r =
    Profs.run ~max_seconds:25.0 ~driver ~frames:[ reply ]
      ~workload:("ping", S2e_guest.Workloads_src.ping ~buggy:false)
      ()
  in
  Alcotest.(check bool) "no unbounded path" false r.unbounded;
  match Profs.envelope r with
  | None -> Alcotest.fail "no envelope"
  | Some (lo, hi) ->
      Alcotest.(check bool)
        (Printf.sprintf "envelope [%d, %d] is a real spread" lo hi)
        true
        (lo > 0 && hi > lo)

(* --- Consistency-model experiments (section 6.3) --- *)

let test_models_driver_coverage_ordering () =
  let run model = Model_exp.run_driver ~max_seconds:8.0 ~driver:"c111" ~consistency:model () in
  let rc_oc = run Consistency.RC_OC in
  let lc = run Consistency.LC in
  let sc_ue = run Consistency.SC_UE in
  (* Weaker models achieve at least as much coverage; SC-UE fails to load
     the driver (paper Fig. 7). *)
  Alcotest.(check bool) "RC-OC >= LC - eps" true (rc_oc.coverage >= lc.coverage -. 0.05);
  Alcotest.(check bool) "SC-UE driver fails to load" true (sc_ue.coverage < 0.3);
  Alcotest.(check bool) "SC-UE finishes immediately" true (sc_ue.seconds < 2.0);
  Alcotest.(check int) "SC-UE explores one path" 1 sc_ue.paths

let test_models_mua () =
  let lc = Model_exp.run_mua ~max_seconds:8.0 ~consistency:Consistency.LC () in
  let sc_se = Model_exp.run_mua ~max_seconds:8.0 ~consistency:Consistency.SC_SE () in
  (* LC bypasses the lexer; SC-SE drowns in it (paper section 6.3). *)
  Alcotest.(check bool)
    (Printf.sprintf "LC (%.0f%%) > SC-SE (%.0f%%) on the interpreter"
       (100. *. lc.coverage) (100. *. sc_se.coverage))
    true
    (lc.coverage > sc_se.coverage)

let tests =
  [
    Alcotest.test_case "DDT+ finds 2 bugs under SC-SE" `Slow test_ddt_scse;
    Alcotest.test_case "DDT+ finds 7 bugs under LC" `Slow test_ddt_lc;
    Alcotest.test_case "DDT+ reports nothing on clean drivers" `Slow
      test_ddt_no_bugs_in_clean_drivers;
    Alcotest.test_case "REV+ beats RevNIC baseline" `Slow test_rev_beats_baseline;
    Alcotest.test_case "REV+ synthesizes a driver" `Slow test_rev_synthesis;
    Alcotest.test_case "PROFS: URL cost linear in slashes" `Slow
      test_profs_url_linear_in_slashes;
    Alcotest.test_case "PROFS: ping infinite loop" `Slow
      test_profs_ping_finds_infinite_loop;
    Alcotest.test_case "PROFS: ping envelope after patch" `Slow
      test_profs_ping_envelope_after_patch;
    Alcotest.test_case "models: driver coverage ordering" `Slow
      test_models_driver_coverage_ordering;
    Alcotest.test_case "models: mua LC beats SC-SE" `Slow test_models_mua;
  ]
