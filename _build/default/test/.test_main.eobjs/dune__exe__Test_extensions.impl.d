test/test_extensions.ml: Alcotest Bytes Char Consistency Energy Executor List Printf S2e_core S2e_guest S2e_isa S2e_plugins S2e_tools S2e_vm Taint
