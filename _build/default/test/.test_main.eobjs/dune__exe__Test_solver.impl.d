test/test_solver.ml: Alcotest Array Expr Int64 List QCheck2 QCheck_alcotest S2e_expr S2e_solver Sat Solver
