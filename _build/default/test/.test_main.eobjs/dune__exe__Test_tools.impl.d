test/test_tools.ml: Alcotest Array Char Consistency Ddt List Model_exp Printf Profs Rev S2e_core S2e_guest S2e_tools String
