test/test_isa_vm.ml: Alcotest Array Asm Bytes Char Disasm Insn Int32 Layout List Machine Netdev QCheck2 QCheck_alcotest S2e_isa S2e_vm
