test/test_cachesim.ml: Alcotest Cache Hierarchy List QCheck2 QCheck_alcotest S2e_cachesim Tlb
