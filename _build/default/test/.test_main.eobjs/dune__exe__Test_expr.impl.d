test/test_expr.ml: Alcotest Expr Fun Int64 QCheck2 QCheck_alcotest S2e_expr Simplifier
