test/test_guest.ml: Alcotest Array Drivers_src Guest List Machine Netdev S2e_guest S2e_vm String Workloads_src
