test/test_cc.ml: Alcotest Cc Char Machine Printf QCheck2 QCheck_alcotest S2e_cc S2e_vm
