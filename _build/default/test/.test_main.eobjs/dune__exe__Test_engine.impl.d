test/test_engine.ml: Alcotest Cc Consistency Events Executor Int64 List Option S2e_cc S2e_core S2e_dbt S2e_expr S2e_isa S2e_solver State
