(** PathKiller: deletes paths no longer of interest (paper section 4.1).

    Two policies from the paper are implemented: killing paths stuck in
    polling loops (a fixed program-counter sequence repeating more than [n]
    times), and the driver-exerciser policy of killing all paths but one
    when no new basic block has been discovered for a while. *)

open S2e_core

type t = {
  engine : Executor.t;
  (* polling-loop detection: per path, (pc of last block, repeat count) *)
  repeats : (int, int * int) Hashtbl.t;
  mutable max_repeats : int;
  mutable kills : int;
}

let attach ?(max_repeats = 2000) engine =
  let t = { engine; repeats = Hashtbl.create 64; max_repeats; kills = 0 } in
  Events.reg_before_instr engine.Executor.events (fun s addr insn ->
      match insn with
      | S2e_isa.Insn.Jmp { target } when Int32.to_int target <= addr ->
          (* Back-edge: candidate loop head. *)
          let key = s.State.id in
          let last, count =
            Option.value ~default:(0, 0) (Hashtbl.find_opt t.repeats key)
          in
          let count = if last = addr then count + 1 else 0 in
          Hashtbl.replace t.repeats key (addr, count);
          if count > t.max_repeats then begin
            t.kills <- t.kills + 1;
            Executor.kill_state engine s "polling loop"
          end
      | _ -> ());
  Events.reg_state_end engine.Executor.events (fun s ->
      Hashtbl.remove t.repeats s.State.id);
  t

(** Kill every live path except the currently selected one.  Used by the
    driver exerciser between entry points ("kills redundant subtrees when
    entry points return"). *)
let keep_only t s = Executor.kill_others t.engine s "path killer sweep"

let kills t = t.kills
