(** RegistrySelector: the MSWinRegistry analogue (paper section 4.1).

    The guest kernel reads configuration through [reg_query_int]; this
    selector intercepts those reads at the environment→unit boundary and
    forks one path per admissible value of each watched key — the way DDT
    injects locally consistent values at the kernel/driver interface.  The
    environment itself keeps running concretely, so local consistency is
    preserved without tracking symbolic data through the kernel's string
    handling.

    Under strict models (SC-CE/SC-UE/SC-SE) registry inputs stay concrete,
    matching the paper's observation that SC-SE "keeps all registry inputs
    concrete, which prevents several configuration-dependent blocks from
    being explored". *)

open S2e_core
module Expr = S2e_expr.Expr

type t = {
  engine : Executor.t;
  query_entry : int; (* address of the kernel's reg_query_int *)
  watched : (string, int list) Hashtbl.t; (* key -> admissible values *)
  (* per-path stack of keys for reg_query_int calls in flight *)
  pending : (int, string list) Hashtbl.t;
  mutable injections : int;
}

let watch t ~key ~values = Hashtbl.replace t.watched key values

let active t =
  match t.engine.Executor.config.consistency with
  | Consistency.LC | Consistency.RC_OC | Consistency.RC_CC -> true
  | Consistency.SC_CE | Consistency.SC_UE | Consistency.SC_SE -> false

let attach engine ~query_entry =
  let t =
    {
      engine;
      query_entry;
      watched = Hashtbl.create 8;
      pending = Hashtbl.create 32;
      injections = 0;
    }
  in
  Events.reg_instr_translate engine.Executor.events (fun addr _ ->
      if addr = query_entry then S2e_dbt.Dbt.mark engine.Executor.dbt addr);
  (* Record which key each in-flight call is asking for. *)
  Events.reg_instr_execute engine.Executor.events (fun s addr _ ->
      if addr = query_entry then begin
        let key =
          match Expr.to_const (State.get_reg s 0) with
          | Some ptr -> Symmem.read_cstring s.State.mem (Int64.to_int ptr)
          | None -> ""
        in
        let stack = Option.value ~default:[] (Hashtbl.find_opt t.pending s.State.id) in
        Hashtbl.replace t.pending s.State.id (key :: stack)
      end);
  Events.reg_env_return engine.Executor.events (fun er ->
      if er.Events.er_callee = t.query_entry then begin
        let s = er.er_state in
        let stack = Option.value ~default:[] (Hashtbl.find_opt t.pending s.State.id) in
        match stack with
        | [] -> ()
        | key :: rest ->
            Hashtbl.replace t.pending s.State.id rest;
            if active t then begin
              match Hashtbl.find_opt t.watched key with
              | None -> ()
              | Some values ->
                  let actual =
                    match Expr.to_const (State.get_reg s 0) with
                    | Some v -> Int64.to_int v
                    | None -> 0
                  in
                  (* One forked path per alternative value of the key. *)
                  List.iter
                    (fun v ->
                      if v <> actual then begin
                        t.injections <- t.injections + 1;
                        let child = Executor.plugin_fork engine s in
                        State.set_reg child 0 (Expr.const (Int64.of_int v))
                      end)
                    values
            end
      end);
  Events.reg_fork engine.Executor.events (fun parent child _ ->
      match Hashtbl.find_opt t.pending parent.State.id with
      | Some stack -> Hashtbl.replace t.pending child.State.id stack
      | None -> ());
  Events.reg_state_end engine.Executor.events (fun s ->
      Hashtbl.remove t.pending s.State.id);
  t

let injections t = t.injections

(* Registry blob construction (shared with the guest image builder). *)
let build_blob entries =
  let buf = Buffer.create 128 in
  List.iter
    (fun (key, value) ->
      Buffer.add_char buf (Char.chr (String.length key));
      Buffer.add_string buf key;
      Buffer.add_char buf (Char.chr (String.length value));
      Buffer.add_string buf value)
    entries;
  Buffer.add_char buf '\000';
  Buffer.contents buf
