(** CoverageTracker: records which instruction addresses of which modules
    executed, globally across all paths.  Feeds Table 5 / Fig. 6 / Fig. 7
    (basic-block coverage) and the MaxCoverage searcher. *)

open S2e_core

type t = {
  engine : Executor.t;
  executed : (int, unit) Hashtbl.t; (* instruction addresses, global *)
  block_heat : (int, int) Hashtbl.t; (* tb start -> execution count *)
  (* The timeline (Fig. 6 curve) counts only addresses within
     [timeline_range] when one is given. *)
  timeline_range : (int * int) option;
  mutable timeline : (int * int) list; (* (total instret, covered count) *)
  mutable last_new_cover_instret : int;
  mutable covered_count : int;
}

let attach ?timeline_range engine =
  let t =
    {
      engine;
      executed = Hashtbl.create 4096;
      block_heat = Hashtbl.create 1024;
      timeline_range;
      timeline = [];
      last_new_cover_instret = 0;
      covered_count = 0;
    }
  in
  let in_range addr =
    match t.timeline_range with
    | None -> true
    | Some (lo, hi) -> addr >= lo && addr < hi
  in
  Events.reg_before_instr engine.Executor.events (fun _s addr _insn ->
      if not (Hashtbl.mem t.executed addr) then begin
        Hashtbl.replace t.executed addr ();
        if in_range addr then begin
          t.covered_count <- t.covered_count + 1;
          t.last_new_cover_instret <- engine.Executor.stats.concrete_instret;
          t.timeline <-
            (engine.Executor.stats.concrete_instret, t.covered_count)
            :: t.timeline
        end
      end;
      Hashtbl.replace t.block_heat addr
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.block_heat addr)));
  t

(** Fraction of a module's code covered, in [0, 1]. *)
let module_coverage t name =
  match Module_map.entry t.engine.Executor.modules name with
  | None -> 0.0
  | Some e ->
      let total = Module_map.code_insns e in
      if total = 0 then 0.0
      else begin
        let covered = ref 0 in
        let addr = ref e.code_start in
        while !addr < e.code_end do
          if Hashtbl.mem t.executed !addr then incr covered;
          addr := !addr + S2e_isa.Insn.insn_size
        done;
        float_of_int !covered /. float_of_int total
      end

let covered_in_range t lo hi =
  let covered = ref 0 in
  let addr = ref lo in
  while !addr < hi do
    if Hashtbl.mem t.executed !addr then incr covered;
    addr := !addr + S2e_isa.Insn.insn_size
  done;
  !covered

(** Instructions executed since the last time new code was discovered:
    the staleness signal driver exercisers use to kill path families. *)
let staleness t = t.engine.Executor.stats.concrete_instret - t.last_new_cover_instret

(** Timeline of (instructions executed, covered instructions), oldest
    first: the Fig. 6 curve. *)
let timeline t = List.rev t.timeline

(** A searcher that prefers states sitting at rarely-executed code: the
    MaxCoverage priority selector. *)
let max_coverage_searcher t =
  Searcher.scored (fun s ->
      let heat = Option.value ~default:0 (Hashtbl.find_opt t.block_heat s.State.pc) in
      -heat)
