lib/plugins/path_killer.ml: Events Executor Hashtbl Int32 Option S2e_core S2e_isa State
