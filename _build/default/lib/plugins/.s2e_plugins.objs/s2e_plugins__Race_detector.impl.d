lib/plugins/race_detector.ml: Events Executor Hashtbl List Printf S2e_core S2e_vm State
