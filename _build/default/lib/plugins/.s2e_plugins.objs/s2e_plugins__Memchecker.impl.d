lib/plugins/memchecker.ml: Events Executor Hashtbl Int64 List Module_map Printf S2e_core S2e_dbt S2e_expr S2e_solver S2e_vm State
