lib/plugins/coverage.ml: Events Executor Hashtbl List Module_map Option S2e_core S2e_isa Searcher State
