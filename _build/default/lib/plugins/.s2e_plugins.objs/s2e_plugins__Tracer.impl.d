lib/plugins/tracer.ml: Events Executor Hashtbl List S2e_core S2e_expr S2e_isa State
