lib/plugins/perf_profile.ml: Events Executor Hashtbl List S2e_cachesim S2e_core State
