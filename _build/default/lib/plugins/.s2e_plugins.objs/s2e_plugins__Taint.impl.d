lib/plugins/taint.ml: Events Executor List Printf S2e_core S2e_expr State Symmem
