lib/plugins/registry.ml: Buffer Char Consistency Events Executor Hashtbl Int64 List Option S2e_core S2e_dbt S2e_expr State String Symmem
