lib/plugins/annotation.ml: Events Executor Int64 List S2e_core S2e_dbt S2e_expr State
