lib/plugins/bugcheck.ml: Events Executor Int64 List Printf S2e_core S2e_dbt S2e_expr State
