(** Privacy-leak analyzer (paper section 6.1.4, "analyze binaries for
    privacy leaks").

    Secrets (credit-card numbers, license keys, ...) are introduced as
    tagged symbolic values; because the engine's concretization is lazy,
    those values flow through the whole software stack — program, kernel,
    driver — still carrying their symbolic provenance.  The analyzer
    watches the points where data leaves the system (device port writes,
    DMA-visible buffers) and reports whenever an outgoing value's
    expression mentions a secret variable. *)

open S2e_core
module Expr = S2e_expr.Expr

type leak = {
  leak_port : int;
  leak_pc : int;
  leak_path : int;
  leak_var : string; (* which secret leaked *)
}

type t = {
  engine : Executor.t;
  mutable secrets : (int * string) list; (* var id, label *)
  mutable leaks : leak list;
  mutable watched_ports : (int * int) list; (* port ranges that exit the system *)
}

let attach engine ~ports =
  let t = { engine; secrets = []; leaks = []; watched_ports = ports } in
  Events.reg_port_write engine.Executor.events (fun pw ->
      let port = pw.Events.pw_port in
      if List.exists (fun (lo, hi) -> port >= lo && port < hi) t.watched_ports
      then begin
        let vars = Expr.vars pw.pw_value in
        List.iter
          (fun (id, label) ->
            if Expr.Int_set.mem id vars then begin
              let s = pw.pw_state in
              t.leaks <-
                { leak_port = port; leak_pc = s.State.pc;
                  leak_path = s.State.id; leak_var = label }
                :: t.leaks;
              Events.bug engine.Executor.events
                { bug_state = s; bug_kind = "privacy";
                  bug_message =
                    Printf.sprintf "secret %S leaves the system on port 0x%x"
                      label port;
                  bug_pc = s.State.pc }
            end)
          t.secrets
      end);
  t

(** Declare a symbolic buffer as secret: marks [len] fresh symbolic bytes
    at [addr] in [s] and registers them for leak tracking. *)
let mark_secret t (s : State.t) ~addr ~len ~label =
  for i = 0 to len - 1 do
    let v = Expr.fresh_var ~width:8 (Printf.sprintf "%s_%d" label i) in
    (match v with
    | Expr.Var { id; _ } -> t.secrets <- (id, label) :: t.secrets
    | _ -> ());
    s.State.mem <- Symmem.write_byte s.State.mem (addr + i) v
  done

(** Register an existing tagged symbolic variable as secret. *)
let track_var t ~id ~label = t.secrets <- (id, label) :: t.secrets

let leaks t = List.rev t.leaks
