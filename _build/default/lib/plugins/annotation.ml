(** Annotation plugin: direct injection of custom-constrained symbolic
    values at internal interfaces (paper section 4.1), and the vehicle for
    LC interface annotations at the unit/environment boundary (DDT-style). *)

open S2e_core
module Expr = S2e_expr.Expr

(** Replace the return value of [callee] (an environment function) with a
    symbolic value in [\[lo, hi\]] that also admits the actual concrete
    return value — the local-consistency contract of paper section 3.2.2. *)
let return_in_range engine ~callee ~name ~lo ~hi =
  Executor.annotate engine ~callee (fun t s ->
      let v = Expr.fresh_var ~width:32 name in
      ignore t;
      State.add_constraint s
        (Expr.log_and
           (Expr.sle (Expr.const (Int64.of_int lo)) v)
           (Expr.sle v (Expr.const (Int64.of_int hi))));
      State.set_reg s 0 v)

(** Replace the return value of [callee] with a symbolic choice among
    [values] (e.g. {success, FAIL}). *)
let return_choice engine ~callee ~name ~values =
  Executor.annotate engine ~callee (fun t s ->
      ignore t;
      let v = Expr.fresh_var ~width:32 name in
      let admissible =
        List.fold_left
          (fun acc value ->
            Expr.log_or acc (Expr.eq v (Expr.const (Int64.of_int value))))
          Expr.bool_f values
      in
      State.add_constraint s admissible;
      State.set_reg s 0 v)

(** Leave the return value completely unconstrained (RC-OC style, usable
    under any model for targeted overapproximation). *)
let return_unconstrained engine ~callee ~name =
  Executor.annotate engine ~callee (fun t s ->
      ignore t;
      State.set_reg s 0 (Expr.fresh_var ~width:32 name))

(** Run an arbitrary state transformer when [callee] returns to the unit. *)
let on_return engine ~callee f = Executor.annotate engine ~callee f

(** Inject a constrained symbolic value every time execution reaches
    [addr]: the register [reg] is replaced by a fresh symbolic value
    constrained to [\[lo, hi\]].  Uses the translation-marking fast path. *)
let value_at engine ~addr ~reg ~name ~lo ~hi =
  Events.reg_instr_translate engine.Executor.events (fun a _ ->
      if a = addr then S2e_dbt.Dbt.mark engine.Executor.dbt a);
  Events.reg_instr_execute engine.Executor.events (fun s a _ ->
      if a = addr then begin
        let v = Expr.fresh_var ~width:32 name in
        State.add_constraint s
          (Expr.log_and
             (Expr.sle (Expr.const (Int64.of_int lo)) v)
             (Expr.sle v (Expr.const (Int64.of_int hi))));
        State.set_reg s reg v
      end)
