(** Energy profiler (paper section 6.1.4, "profile energy use of embedded
    applications").

    Given a per-instruction-class power model, accumulates the energy each
    path consumes, so the multi-path exploration surfaces the
    energy-hogging paths the paper suggests optimizing.  Memory traffic
    costs extra per byte, I/O is the most expensive class — the usual
    embedded-CPU shape. *)

open S2e_core

(** Energy cost model, in arbitrary nanojoule-like units. *)
type model = {
  alu : int;
  mul_div : int;
  mem_word : int;
  mem_byte : int;
  branch : int;
  io : int;
  other : int;
}

let default_model =
  { alu = 1; mul_div = 4; mem_word = 6; mem_byte = 4; branch = 2; io = 20; other = 1 }

let cost model (insn : S2e_isa.Insn.t) =
  match insn with
  | Alu { op = Mul | Divu | Remu; _ } | Alui { op = Mul | Divu | Remu; _ } ->
      model.mul_div
  | Alu _ | Alui _ | Li _ | Mov _ -> model.alu
  | Lw _ | Sw _ -> model.mem_word
  | Lb _ | Sb _ -> model.mem_byte
  | Jmp _ | Jr _ | Jal _ | Jalr _ | Branch _ -> model.branch
  | In _ | Out _ -> model.io
  | Syscall | Sysret | Iret | Halt | Cli | Sti | Nop | S2e _ -> model.other

type report = { e_path : int; e_status : string; e_energy : int }

type t = {
  model : model;
  per_path : (int, int ref) Hashtbl.t;
  mutable reports : report list;
  only_range : (int * int) option;
}

let attach ?(model = default_model) ?only_range engine =
  let t = { model; per_path = Hashtbl.create 64; reports = []; only_range } in
  let in_range addr =
    match t.only_range with None -> true | Some (lo, hi) -> addr >= lo && addr < hi
  in
  let acc (s : State.t) =
    match Hashtbl.find_opt t.per_path s.State.id with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace t.per_path s.State.id r;
        r
  in
  Events.reg_before_instr engine.Executor.events (fun s addr insn ->
      if in_range addr then begin
        let r = acc s in
        r := !r + cost t.model insn
      end);
  Events.reg_fork engine.Executor.events (fun parent child _ ->
      match Hashtbl.find_opt t.per_path parent.State.id with
      | Some r -> Hashtbl.replace t.per_path child.State.id (ref !r)
      | None -> ());
  Events.reg_state_end engine.Executor.events (fun s ->
      (match Hashtbl.find_opt t.per_path s.State.id with
      | Some r ->
          t.reports <-
            { e_path = s.State.id;
              e_status = State.status_string s.State.status;
              e_energy = !r }
            :: t.reports
      | None -> ());
      Hashtbl.remove t.per_path s.State.id);
  t

let reports t = List.rev t.reports

(** The energy envelope over completed paths, plus the hungriest path. *)
let envelope t =
  let done_ = List.filter (fun r -> r.e_status = "halted") (reports t) in
  match done_ with
  | [] -> None
  | r :: rest ->
      let lo, hi, worst =
        List.fold_left
          (fun (lo, hi, worst) r ->
            ( min lo r.e_energy,
              max hi r.e_energy,
              if r.e_energy > worst.e_energy then r else worst ))
          (r.e_energy, r.e_energy, r)
          rest
      in
      Some (lo, hi, worst)
