(** MemoryChecker: validates every memory access the unit makes against the
    set of regions it may legally touch — its own module (code+data), the
    stack, and buffers obtained from the kernel allocator.  Also reports
    use-after-free, double-free and leaks at path end.

    It learns allocations by watching the guest kernel's [alloc]/[free]
    functions: the entry instructions are marked at translation time (the
    onInstrTranslation/onInstrExecution pattern of paper section 4.2), and
    allocation results are captured when the call returns to the unit. *)

open S2e_core
module Expr = S2e_expr.Expr

type region = { base : int; size : int }

type pstate = {
  mutable live_allocs : region list;
  mutable freed : region list;
  mutable pending_sizes : int list; (* sizes of alloc calls in flight *)
}

type t = {
  engine : Executor.t;
  alloc_addr : int;
  free_addr : int;
  per_path : (int, pstate) Hashtbl.t;
  mutable extra_regions : region list; (* tool-configured shared buffers *)
  mutable bugs : Events.bug list;
  mutable check_leaks : bool;
}

let pstate t id =
  match Hashtbl.find_opt t.per_path id with
  | Some p -> p
  | None ->
      let p = { live_allocs = []; freed = []; pending_sizes = [] } in
      Hashtbl.replace t.per_path id p;
      p

let allow_region t r = t.extra_regions <- r :: t.extra_regions

let report t (s : State.t) message =
  let bug =
    { Events.bug_state = s; bug_kind = "memory"; bug_message = message;
      bug_pc = s.State.pc }
  in
  t.bugs <- bug :: t.bugs;
  Events.bug t.engine.Executor.events bug

let in_region addr size r = addr >= r.base && addr + size <= r.base + r.size

let attach engine ~alloc_addr ~free_addr ~unit_name =
  let t =
    {
      engine;
      alloc_addr;
      free_addr;
      per_path = Hashtbl.create 64;
      extra_regions = [];
      bugs = [];
      check_leaks = true;
    }
  in
  (* Mark the allocator entry points once they are translated. *)
  Events.reg_instr_translate engine.Executor.events (fun addr _ ->
      if addr = alloc_addr || addr = free_addr then
        S2e_dbt.Dbt.mark engine.Executor.dbt addr);
  Events.reg_instr_execute engine.Executor.events (fun s addr _ ->
      let p = pstate t s.State.id in
      if addr = alloc_addr then begin
        match Expr.to_const (State.get_reg s 0) with
        | Some size -> p.pending_sizes <- Int64.to_int size :: p.pending_sizes
        | None -> p.pending_sizes <- 64 :: p.pending_sizes
      end
      else if addr = free_addr then begin
        match Expr.to_const (State.get_reg s 0) with
        | Some base ->
            let base = Int64.to_int base in
            if base = 0 then () (* free(NULL) is a no-op *)
            else (
              match List.partition (fun r -> r.base = base) p.live_allocs with
              | [ r ], rest ->
                  p.live_allocs <- rest;
                  p.freed <- r :: p.freed
              | [], _ ->
                  if List.exists (fun r -> r.base = base) p.freed then
                    report t s (Printf.sprintf "double free of 0x%x" base)
                  else
                    report t s (Printf.sprintf "free of invalid pointer 0x%x" base)
              | _ :: _ :: _, _ -> ())
        | None -> ()
      end);
  (* Capture alloc's return value when control comes back to the unit. *)
  Events.reg_env_return engine.Executor.events (fun er ->
      if er.Events.er_callee = alloc_addr then begin
        let s = er.er_state in
        let p = pstate t s.State.id in
        match p.pending_sizes with
        | size :: rest -> (
            p.pending_sizes <- rest;
            match Expr.to_const (State.get_reg s 0) with
            | Some base when base <> 0L ->
                p.live_allocs <- { base = Int64.to_int base; size } :: p.live_allocs
            | _ -> ())
        | [] -> ()
      end);
  (* Check the unit's accesses. *)
  let unit_entry = Module_map.entry engine.Executor.modules unit_name in
  let legal_regions p =
    (match unit_entry with
    | Some e -> [ { base = e.code_start; size = e.data_end - e.code_start } ]
    | None -> [])
    @ [ { base = S2e_vm.Layout.ram_size * 3 / 4;
          size = S2e_vm.Layout.ram_size / 4 } ]
    @ p.live_allocs @ t.extra_regions
  in
  Events.reg_memory_access engine.Executor.events (fun ma ->
      let s = ma.Events.ma_state in
      if Executor.in_unit engine s.State.pc then begin
        let p = pstate t s.State.id in
        let addr = ma.ma_concrete_addr and size = ma.ma_size in
        let regions = legal_regions p in
        let legal = List.exists (in_region addr size) regions in
        if not legal then begin
          if List.exists (in_region addr size) p.freed then
            report t s
              (Printf.sprintf "use after free: %s of %d bytes at 0x%x (pc 0x%x)"
                 (if ma.ma_is_write then "write" else "read")
                 size addr s.State.pc)
          else
            report t s
              (Printf.sprintf "illegal %s of %d bytes at 0x%x (pc 0x%x)"
                 (if ma.ma_is_write then "write" else "read")
                 size addr s.State.pc)
        end
        else if not (Expr.is_const ma.ma_addr) then begin
          (* The anchor landed in a legal region, but can the symbolic
             address escape every legal region under the path constraints? *)
          let within r =
            Expr.log_and
              (Expr.ule (Expr.const (Int64.of_int r.base)) ma.ma_addr)
              (Expr.ule
                 (Expr.add ma.ma_addr (Expr.const (Int64.of_int size)))
                 (Expr.const (Int64.of_int (r.base + r.size))))
          in
          let somewhere_legal =
            List.fold_left (fun acc r -> Expr.log_or acc (within r)) Expr.bool_f
              regions
          in
          match
            S2e_solver.Solver.check_with ~constraints:ma.ma_pre_constraints
              (Expr.log_not somewhere_legal)
          with
          | S2e_solver.Solver.Sat _ ->
              report t s
                (Printf.sprintf
                   "symbolic %s of %d bytes at pc 0x%x can escape all valid regions"
                   (if ma.ma_is_write then "write" else "read")
                   size s.State.pc)
          | S2e_solver.Solver.Unsat | S2e_solver.Solver.Unknown -> ()
        end
      end);
  Events.reg_fork engine.Executor.events (fun parent child _ ->
      let p = pstate t parent.State.id in
      Hashtbl.replace t.per_path child.State.id
        { live_allocs = p.live_allocs; freed = p.freed;
          pending_sizes = p.pending_sizes });
  Events.reg_state_end engine.Executor.events (fun s ->
      (match Hashtbl.find_opt t.per_path s.State.id with
      | Some p when t.check_leaks && s.State.status = State.Halted ->
          List.iter
            (fun r ->
              report t s
                (Printf.sprintf "memory leak: %d bytes at 0x%x never freed"
                   r.size r.base))
            p.live_allocs
      | _ -> ());
      Hashtbl.remove t.per_path s.State.id);
  t

(** Forget a recorded allocation in [state]'s path (used by fault-injection
    annotations that pretend an allocation failed). *)
let forget_region t (s : State.t) base =
  let p = pstate t s.State.id in
  p.live_allocs <- List.filter (fun r -> r.base <> base) p.live_allocs

let bugs t = List.rev t.bugs

(** Distinct bug messages (the same bug found on many paths counts once). *)
let distinct_bugs t =
  List.sort_uniq compare (List.map (fun b -> b.Events.bug_message) (bugs t))
