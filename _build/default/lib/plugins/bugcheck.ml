(** BugCheck: the WinBugCheck analogue.  Catches guest kernel panics
    ("blue screens"), guest faults, and kernel hangs (paths that stop
    making progress inside the kernel). *)

open S2e_core

type t = {
  mutable panics : Events.bug list;
  mutable faults : Events.bug list;
}

(** [panic_addr] is the guest kernel's panic routine: reaching it is a
    bugcheck. *)
let attach engine ~panic_addr =
  let t = { panics = []; faults = [] } in
  Events.reg_instr_translate engine.Executor.events (fun addr _ ->
      if addr = panic_addr then S2e_dbt.Dbt.mark engine.Executor.dbt addr);
  Events.reg_instr_execute engine.Executor.events (fun s addr _ ->
      if addr = panic_addr then begin
        let code =
          match S2e_expr.Expr.to_const (State.get_reg s 0) with
          | Some v -> Int64.to_int v
          | None -> -1
        in
        let bug =
          { Events.bug_state = s; bug_kind = "bugcheck";
            bug_message = Printf.sprintf "kernel panic, code 0x%x" code;
            bug_pc = addr }
        in
        t.panics <- bug :: t.panics;
        Events.bug engine.Executor.events bug;
        Executor.kill_state engine s "bugcheck"
      end);
  Events.reg_state_end engine.Executor.events (fun s ->
      match s.State.status with
      | State.Faulted msg ->
          t.faults <-
            { Events.bug_state = s; bug_kind = "fault"; bug_message = msg;
              bug_pc = s.State.pc }
            :: t.faults
      | _ -> ());
  t

let panics t = List.rev t.panics
let faults t = List.rev t.faults
