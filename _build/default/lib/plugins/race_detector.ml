(** DataRaceDetector: flags shared data accessed both from interrupt
    context and from normal context while interrupts were enabled, without
    synchronisation — the classic driver race the paper's DDT+ reports.

    The detector records, per path, every non-stack address the unit writes
    in IRQ context and every address it touches in normal context with
    interrupts enabled; an address in both sets is a candidate race. *)

open S2e_core

type pstate = {
  mutable irq_writes : (int, int) Hashtbl.t;      (* addr -> pc *)
  mutable normal_accesses : (int, int) Hashtbl.t; (* addr -> pc *)
}

type t = {
  engine : Executor.t;
  per_path : (int, pstate) Hashtbl.t;
  mutable races : Events.bug list;
  mutable reported : (int, unit) Hashtbl.t; (* addr, report each once *)
}

let pstate t id =
  match Hashtbl.find_opt t.per_path id with
  | Some p -> p
  | None ->
      let p = { irq_writes = Hashtbl.create 16; normal_accesses = Hashtbl.create 64 } in
      Hashtbl.replace t.per_path id p;
      p

let attach engine =
  let t =
    { engine; per_path = Hashtbl.create 64; races = []; reported = Hashtbl.create 16 }
  in
  let is_stack addr = addr >= S2e_vm.Layout.ram_size * 3 / 4 in
  Events.reg_memory_access engine.Executor.events (fun ma ->
      let s = ma.Events.ma_state in
      if Executor.in_unit engine s.State.pc && not (is_stack ma.ma_concrete_addr)
      then begin
        let p = pstate t s.State.id in
        let addr = ma.ma_concrete_addr in
        if s.State.in_irq then begin
          if ma.ma_is_write then begin
            Hashtbl.replace p.irq_writes addr s.State.pc;
            match Hashtbl.find_opt p.normal_accesses addr with
            | Some pc when not (Hashtbl.mem t.reported addr) ->
                Hashtbl.replace t.reported addr ();
                let bug =
                  { Events.bug_state = s; bug_kind = "race";
                    bug_message =
                      Printf.sprintf
                        "data race on 0x%x: irq write at 0x%x vs access at 0x%x"
                        addr s.State.pc pc;
                    bug_pc = s.State.pc }
                in
                t.races <- bug :: t.races;
                Events.bug engine.Executor.events bug
            | _ -> ()
          end
        end
        else if s.State.irq_enabled then begin
          Hashtbl.replace p.normal_accesses addr s.State.pc;
          match Hashtbl.find_opt p.irq_writes addr with
          | Some irq_pc when not (Hashtbl.mem t.reported addr) ->
              Hashtbl.replace t.reported addr ();
              let bug =
                { Events.bug_state = s; bug_kind = "race";
                  bug_message =
                    Printf.sprintf
                      "data race on 0x%x: access at 0x%x vs irq write at 0x%x"
                      addr s.State.pc irq_pc;
                  bug_pc = s.State.pc }
              in
              t.races <- bug :: t.races;
              Events.bug engine.Executor.events bug
          | _ -> ()
        end
      end);
  Events.reg_fork engine.Executor.events (fun parent child _ ->
      match Hashtbl.find_opt t.per_path parent.State.id with
      | Some p ->
          Hashtbl.replace t.per_path child.State.id
            { irq_writes = Hashtbl.copy p.irq_writes;
              normal_accesses = Hashtbl.copy p.normal_accesses }
      | None -> ());
  Events.reg_state_end engine.Executor.events (fun s ->
      Hashtbl.remove t.per_path s.State.id);
  t

let races t = List.rev t.races
