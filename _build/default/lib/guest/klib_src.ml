(** Guest C library: string and memory helpers shared by the kernel,
    drivers and workloads. *)

let source =
  {|
// klib: freestanding string/memory routines.

int kstrlen(char *s) {
  int n = 0;
  while (s[n]) n = n + 1;
  return n;
}

int kstrcmp(char *a, char *b) {
  int i = 0;
  while (a[i] && b[i]) {
    if (a[i] != b[i]) return a[i] - b[i];
    i = i + 1;
  }
  return a[i] - b[i];
}

int kmemcpy(char *dst, char *src, int n) {
  for (int i = 0; i < n; i = i + 1) dst[i] = src[i];
  return n;
}

int kmemset(char *dst, int c, int n) {
  for (int i = 0; i < n; i = i + 1) dst[i] = c;
  return n;
}

int kmemcmp(char *a, char *b, int n) {
  for (int i = 0; i < n; i = i + 1) {
    if (a[i] != b[i]) return a[i] - b[i];
  }
  return 0;
}

// Parse an unsigned decimal number; returns -1 on empty/invalid.
int katoi(char *s) {
  int v = 0;
  int seen = 0;
  int i = 0;
  while (s[i]) {
    if (s[i] < '0' || s[i] > '9') return 0 - 1;
    v = v * 10 + (s[i] - '0');
    seen = 1;
    i = i + 1;
  }
  if (!seen) return 0 - 1;
  return v;
}

int kputs(char *s) {
  int i = 0;
  while (s[i]) {
    __out(0, s[i]);
    i = i + 1;
  }
  return i;
}

int kputint(int v) {
  char digits[12];
  int n = 0;
  if (v == 0) { __out(0, '0'); return 1; }
  while (v > 0) {
    digits[n] = '0' + v % 10;
    v = v / 10;
    n = n + 1;
  }
  for (int i = n - 1; i >= 0; i = i - 1) __out(0, digits[i]);
  return n;
}
|}
