(** The guest boot runtime: assembly stub that sets up the stack, installs
    the interrupt and syscall vectors, boots the kernel, runs the workload's
    [main] and stores its result at a well-known address for the harness. *)

let result_addr = 0x900

let boot_asm =
  Printf.sprintf
    {|
__boot:
  li sp, 0x%x
  li r0, __irq_stub
  sw r0, 4(zr)
  li r0, __syscall_stub
  sw r0, 8(zr)
  jal kmain
  li r1, 0x%x
  bne r0, zr, __boot_fail
  jal main
  li r1, 0x%x
  sw r0, 0(r1)
  halt
__boot_fail:
  li r2, -1
  sw r2, 0(r1)
  halt

; Asynchronous interrupts may arrive at any instruction: save every
; register MC-generated code can have live, call the kernel handler,
; restore, and return with iret.
__irq_stub:
  subi sp, sp, 32
  sw r0, 0(sp)
  sw r1, 4(sp)
  sw r2, 8(sp)
  sw r3, 12(sp)
  sw r4, 16(sp)
  sw r5, 20(sp)
  sw lr, 24(sp)
  jal kernel_irq
  lw r0, 0(sp)
  lw r1, 4(sp)
  lw r2, 8(sp)
  lw r3, 12(sp)
  lw r4, 16(sp)
  lw r5, 20(sp)
  lw lr, 24(sp)
  addi sp, sp, 32
  iret

; Syscalls are synchronous: the MC calling convention already treats
; r0-r5 and lr as clobbered across them.
__syscall_stub:
  jal ksyscall
  sysret
|}
    S2e_vm.Layout.stack_top result_addr result_addr
