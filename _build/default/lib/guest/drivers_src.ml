(** The four network drivers: analogues of the AMD PCnet, RTL8029,
    SMSC 91C111 and RTL8139 binaries the paper evaluates.  Each implements
    the same kernel-facing API (init/send/recv/query/set/isr/unload) with a
    different hardware programming style, and the PCnet/RTL8029 pair carry
    the seven seeded bugs that the DDT+ experiment must find (two reachable
    from symbolic hardware alone, five needing LC annotations). *)

(* Shared port map, prepended to every driver. *)
let netdev_header =
  {|
const int NET_STATUS = 0x20;
const int NET_CMD    = 0x21;
const int NET_DATA   = 0x22;
const int NET_RXLEN  = 0x23;
const int NET_TXSTAT = 0x24;
const int NET_IRQMASK= 0x25;
const int NET_DMAADDR= 0x26;
const int NET_DMALEN = 0x27;
const int NET_MAC    = 0x28;
const int CMD_RESET = 1;
const int CMD_RXEN  = 2;
const int CMD_TX    = 3;
const int CMD_ACK   = 4;
const int CMD_DMARX = 5;
const int CMD_RXDONE = 6;
|}

(* --------------------------------------------------------------- *)
(* AMD PCnet analogue: DMA-based receive; carries bugs B1, B3, B4, B5. *)
(* --------------------------------------------------------------- *)

let pcnet =
  netdev_header
  ^ {|
int pcnet_ready = 0;
int pcnet_txmode = 1;
int pcnet_stats = 0;       // shared between isr and send path (bug B5)
int *pcnet_ring = 0;
char *pcnet_rxbuf = 0;
int pcnet_rx_count = 0;
char pcnet_mac[8];

int pcnet_probe_card() {
  int st = __in(NET_STATUS);
  return (st >> 8) & 0xFF;
}

int driver_init() {
  __out(NET_CMD, CMD_RESET);
  int ct = reg_query_int("CardType", 1);
  if (ct == 1 || ct == 2) {
    // supported cards
    pcnet_ring = alloc(128);
    pcnet_ring[0] = 0;            // bug B3: no NULL check on alloc result
    pcnet_rxbuf = alloc(64);
    if (!pcnet_rxbuf) { kfree(pcnet_ring); return 0 - 3; }
    for (int i = 0; i < 6; i = i + 1) pcnet_mac[i] = __in(NET_MAC);
    pcnet_txmode = reg_query_int("TxMode", 1);
    int st = __in(NET_STATUS);
    if (!(st & 1)) {
      // link down
      kfree(pcnet_ring);
      kfree(pcnet_rxbuf);
      return 0 - 2;
    }
    if (ct == 2) {
      // extended setup path for the second card revision
      __out(NET_DMAADDR, pcnet_ring);
      __out(NET_DMALEN, 128);
    }
    __out(NET_IRQMASK, 1);
    __out(NET_CMD, CMD_RXEN);
    pcnet_ready = 1;
    return 0;
  }
  // unsupported card: grab a diagnostic buffer and probe the chip
  int *probe = alloc(64);
  int card = pcnet_probe_card();
  kputs("pcnet: unsupported card ");
  kputint(__s2e_concretize(card & 0xFF));
  if (probe) probe[0] = card;
  return 0 - 1;                   // bug B4: probe buffer leaked
}

int driver_send(char *buf, int len) {
  if (!pcnet_ready) return 0 - 1;
  if (len > 1500) return 0 - 1;
  if (pcnet_txmode == 2) {
    // "fast" mode: touches the shared stats word without masking the isr
    pcnet_stats = pcnet_stats + 1;          // bug B5: data race with isr
  } else {
    __cli();
    pcnet_stats = pcnet_stats + 1;
    __sti();
  }
  for (int i = 0; i < len; i = i + 1) __out(NET_DATA, buf[i]);
  __out(NET_CMD, CMD_TX);
  return len;
}

int driver_recv(char *buf, int maxlen) {
  if (!pcnet_ready) return 0 - 1;
  int st = __in(NET_STATUS);
  if (!(st & 2)) return 0;
  int len = __in(NET_RXLEN) & 0xFF;
  // bug B1: device-controlled length fills a 64-byte frame buffer unchecked
  for (int i = 0; i < len; i = i + 1) {
    pcnet_rxbuf[i] = __in(NET_DATA);
  }
  __out(NET_CMD, CMD_RXDONE);
  __out(NET_CMD, CMD_ACK);
  int n = len;
  if (n > maxlen) n = maxlen;
  if (n > 64) n = 64;
  for (int i = 0; i < n; i = i + 1) buf[i] = pcnet_rxbuf[i];
  pcnet_rx_count = pcnet_rx_count + 1;
  return n;
}

int driver_query(int code) {
  if (code == 1) return pcnet_rx_count;
  if (code == 2) {
    __cli();
    int v = pcnet_stats;
    __sti();
    return v;
  }
  if (code == 3) return pcnet_txmode;
  return 0 - 1;
}

int driver_set(int code, int val) {
  if (code == 3) { pcnet_txmode = val; return 0; }
  return 0 - 1;
}

int driver_isr() {
  pcnet_stats = pcnet_stats + 1;
  __out(NET_CMD, CMD_ACK);
  return 0;
}

int driver_unload() {
  if (pcnet_ready) {
    __out(NET_CMD, CMD_RESET);
    kfree(pcnet_ring);
    kfree(pcnet_rxbuf);
    pcnet_ready = 0;
  }
  return 0;
}
|}

(* --------------------------------------------------------------- *)
(* RTL8029 analogue: programmed I/O; carries bugs B2, B6, B7.       *)
(* --------------------------------------------------------------- *)

let rtl8029 =
  netdev_header
  ^ {|
int rtl_ready = 0;
int rtl_qtable[8] = {10, 20, 30, 40, 50, 60, 70, 80};
int rtl_tx_count = 0;
char rtl_mac[8];

int driver_init() {
  __out(NET_CMD, CMD_RESET);
  int st = __in(NET_STATUS);
  if ((st & 0x60) == 0x60) {
    // "diagnostic" status combination: write the diagnostic latch...
    int *latch = 0;
    latch[0] = st;                // bug B2: null pointer write
  }
  if (!(st & 1)) return 0 - 2;
  for (int i = 0; i < 6; i = i + 1) rtl_mac[i] = __in(NET_MAC);
  __out(NET_IRQMASK, 1);
  __out(NET_CMD, CMD_RXEN);
  rtl_ready = 1;
  return 0;
}

int driver_send(char *buf, int len) {
  if (!rtl_ready) return 0 - 1;
  if (len <= 0 || len > 1500) return 0 - 1;
  char *copy = alloc(len);
  if (!copy) return 0 - 1;
  kmemcpy(copy, buf, len);
  for (int i = 0; i < len; i = i + 1) __out(NET_DATA, copy[i]);
  __out(NET_CMD, CMD_TX);
  rtl_tx_count = rtl_tx_count + 1;
  int *node = alloc(8);
  if (!node) {
    kfree(copy);                  // error cleanup...
  }
  if (!node) {
    kfree(copy);                  // bug B6: ...and again: double free
    return 0 - 1;
  }
  node[0] = len;
  kfree(node);
  kfree(copy);
  return len;
}

int driver_recv(char *buf, int maxlen) {
  if (!rtl_ready) return 0 - 1;
  int st = __in(NET_STATUS);
  if (!(st & 2)) return 0;
  int len = __in(NET_RXLEN) & 0xFF;
  if (len > maxlen) len = maxlen;
  for (int i = 0; i < len; i = i + 1) buf[i] = __in(NET_DATA);
  __out(NET_CMD, CMD_RXDONE);
  __out(NET_CMD, CMD_ACK);
  return len;
}

int driver_query(int code) {
  if (code >= 100) {
    return rtl_qtable[code - 100]; // bug B7: no upper bound on the index
  }
  if (code == 1) return rtl_tx_count;
  if (code == 2) return rtl_ready;
  return 0 - 1;
}

int driver_set(int code, int val) {
  if (code == 2 && val == 0) { rtl_ready = 0; return 0; }
  return 0 - 1;
}

int driver_isr() {
  __out(NET_CMD, CMD_ACK);
  return 0;
}

int driver_unload() {
  if (rtl_ready) {
    __out(NET_CMD, CMD_RESET);
    rtl_ready = 0;
  }
  return 0;
}
|}

(* --------------------------------------------------------------- *)
(* SMSC 91C111 analogue: banked-register style, no seeded bugs.     *)
(* --------------------------------------------------------------- *)

let c111 =
  netdev_header
  ^ {|
int c111_ready = 0;
int c111_bank = 0;
int c111_promisc = 0;
int c111_rx_frames = 0;
int c111_tx_frames = 0;
char c111_mac[8];

int c111_select_bank(int b) {
  c111_bank = b & 3;
  return c111_bank;
}

int c111_read_reg(int r) {
  // Banked access: the register value depends on the selected bank.
  if (c111_bank == 0) {
    if (r == 0) return __in(NET_STATUS);
    if (r == 1) return __in(NET_TXSTAT);
    return 0;
  }
  if (c111_bank == 1) {
    if (r < 6) return __in(NET_MAC);
    return 0;
  }
  if (c111_bank == 2) {
    if (r == 0) return __in(NET_RXLEN);
    return 0;
  }
  return 0xFF;
}

int driver_init() {
  __out(NET_CMD, CMD_RESET);
  c111_select_bank(0);
  int st = c111_read_reg(0);
  if (!(st & 1)) return 0 - 2;
  int ct = (st >> 8) & 0xFF;
  if (ct != 1 && ct != 3) {
    kputs("91c111: unknown chip rev ");
    kputint(ct);
    return 0 - 1;
  }
  c111_select_bank(1);
  for (int i = 0; i < 6; i = i + 1) c111_mac[i] = c111_read_reg(i);
  c111_promisc = reg_query_int("Promisc", 0);
  if (c111_promisc != 0 && c111_promisc != 1) return 0 - 3;
  c111_select_bank(0);
  __out(NET_IRQMASK, 1);
  __out(NET_CMD, CMD_RXEN);
  c111_ready = 1;
  return 0;
}

int driver_send(char *buf, int len) {
  if (!c111_ready) return 0 - 1;
  if (len <= 0 || len > 1500) return 0 - 1;
  c111_select_bank(0);
  int txs = c111_read_reg(1);
  if (!txs) return 0 - 2;
  for (int i = 0; i < len; i = i + 1) __out(NET_DATA, buf[i]);
  __out(NET_CMD, CMD_TX);
  c111_tx_frames = c111_tx_frames + 1;
  return len;
}

int driver_recv(char *buf, int maxlen) {
  if (!c111_ready) return 0 - 1;
  c111_select_bank(0);
  int st = c111_read_reg(0);
  if (!(st & 2)) return 0;
  c111_select_bank(2);
  int len = c111_read_reg(0) & 0xFF;
  if (len > maxlen) len = maxlen;
  c111_select_bank(0);
  for (int i = 0; i < len; i = i + 1) buf[i] = __in(NET_DATA);
  __out(NET_CMD, CMD_RXDONE);
  __out(NET_CMD, CMD_ACK);
  c111_rx_frames = c111_rx_frames + 1;
  return len;
}

int driver_query(int code) {
  if (code == 1) return c111_rx_frames;
  if (code == 2) return c111_tx_frames;
  if (code == 3) return c111_promisc;
  if (code == 4) return c111_bank;
  return 0 - 1;
}

int driver_set(int code, int val) {
  if (code == 3) {
    if (val != 0 && val != 1) return 0 - 1;
    c111_promisc = val;
    return 0;
  }
  return 0 - 1;
}

int driver_isr() {
  __out(NET_CMD, CMD_ACK);
  return 0;
}

int driver_unload() {
  if (c111_ready) {
    __out(NET_CMD, CMD_RESET);
    c111_ready = 0;
  }
  return 0;
}
|}

(* --------------------------------------------------------------- *)
(* RTL8139 analogue: descriptor-ring DMA receive, no seeded bugs.   *)
(* --------------------------------------------------------------- *)

let rtl8139 =
  netdev_header
  ^ {|
const int RING_SLOTS = 4;
const int SLOT_SIZE = 256;

int r39_ready = 0;
int *r39_ring = 0;
int r39_head = 0;
int r39_rx_count = 0;
int r39_dropped = 0;
char r39_mac[8];

int driver_init() {
  __out(NET_CMD, CMD_RESET);
  int st = __in(NET_STATUS);
  if (!(st & 1)) return 0 - 2;
  int ct = (st >> 8) & 0xFF;
  if (ct == 0 || ct > 4) {
    kputs("rtl8139: bad chip id");
    return 0 - 1;
  }
  r39_ring = alloc(RING_SLOTS * SLOT_SIZE);
  if (!r39_ring) return 0 - 3;
  r39_head = 0;
  for (int i = 0; i < 6; i = i + 1) r39_mac[i] = __in(NET_MAC);
  int mtu = reg_query_int("Mtu", 1500);
  if (mtu < 64 || mtu > 1500) {
    kfree(r39_ring);
    r39_ring = 0;
    return 0 - 4;
  }
  __out(NET_IRQMASK, 1);
  __out(NET_CMD, CMD_RXEN);
  r39_ready = 1;
  return 0;
}

int driver_send(char *buf, int len) {
  if (!r39_ready) return 0 - 1;
  if (len <= 0 || len > 1500) return 0 - 1;
  for (int i = 0; i < len; i = i + 1) __out(NET_DATA, buf[i]);
  __out(NET_CMD, CMD_TX);
  return len;
}

// DMA the pending frame into the current ring slot.
int r39_pump() {
  int st = __in(NET_STATUS);
  if (!(st & 2)) return 0;
  int len = __in(NET_RXLEN) & 0xFF;
  if (len > SLOT_SIZE - 4) {
    r39_dropped = r39_dropped + 1;
    __out(NET_CMD, CMD_RXDONE);
    __out(NET_CMD, CMD_ACK);
    return 0;
  }
  char *slot = r39_ring;
  slot = slot + r39_head * SLOT_SIZE;
  __out(NET_DMAADDR, slot + 4);
  __out(NET_DMALEN, len);
  __out(NET_CMD, CMD_DMARX);
  int *hdr = slot;
  hdr[0] = len;
  r39_head = (r39_head + 1) % RING_SLOTS;
  __out(NET_CMD, CMD_RXDONE);
  __out(NET_CMD, CMD_ACK);
  r39_rx_count = r39_rx_count + 1;
  return len;
}

int driver_recv(char *buf, int maxlen) {
  if (!r39_ready) return 0 - 1;
  // The ring head and headers are shared with the isr: read them with
  // interrupts masked.
  __cli();
  int got = r39_pump();
  if (got <= 0) { __sti(); return 0; }
  int slot_idx = (r39_head + RING_SLOTS - 1) % RING_SLOTS;
  char *slot = r39_ring;
  slot = slot + slot_idx * SLOT_SIZE;
  int *hdr = slot;
  int len = hdr[0];
  __sti();
  if (len > maxlen) len = maxlen;
  kmemcpy(buf, slot + 4, len);
  return len;
}

int driver_query(int code) {
  __cli();
  int v = 0 - 1;
  if (code == 1) v = r39_rx_count;
  if (code == 2) v = r39_dropped;
  if (code == 3) v = r39_head;
  __sti();
  return v;
}

int driver_set(int code, int val) {
  if (code == 3 && val >= 0 && val < RING_SLOTS) {
    __cli();
    r39_head = val;
    __sti();
    return 0;
  }
  return 0 - 1;
}

int driver_isr() {
  r39_pump();
  return 0;
}

int driver_unload() {
  if (r39_ready) {
    __out(NET_CMD, CMD_RESET);
    kfree(r39_ring);
    r39_ring = 0;
    r39_ready = 0;
  }
  return 0;
}
|}

let all = [ ("pcnet", pcnet); ("rtl8029", rtl8029); ("c111", c111); ("rtl8139", rtl8139) ]

(* A no-op driver for images whose workload does not exercise hardware. *)
let nulldrv =
  {|
int driver_init() { return 0; }
int driver_send(char *buf, int len) { return len; }
int driver_recv(char *buf, int maxlen) { return 0; }
int driver_query(int code) { return 0; }
int driver_set(int code, int val) { return 0; }
int driver_isr() { return 0; }
int driver_unload() { return 0; }
|}
