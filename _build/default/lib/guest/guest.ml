(** Guest image builder: composes the boot runtime, the kernel, klib, a
    driver and a workload into one bootable image, places the configuration
    registry, and produces the engine's view of the result. *)

module Layout = S2e_vm.Layout

type image = {
  linked : S2e_cc.Cc.linked;
  registry : string; (* raw blob placed at Layout.registry_base *)
  entry : int;
  driver_name : string;
  workload_name : string;
}

(* Registry records: [klen][key][vlen][value], terminated by klen = 0. *)
let registry_blob entries =
  let buf = Buffer.create 128 in
  List.iter
    (fun (key, value) ->
      Buffer.add_char buf (Char.chr (String.length key));
      Buffer.add_string buf key;
      Buffer.add_char buf (Char.chr (String.length value));
      Buffer.add_string buf value)
    entries;
  Buffer.add_char buf '\000';
  Buffer.contents buf

let default_registry =
  [ ("CardType", "1"); ("TxMode", "1"); ("Promisc", "0"); ("Mtu", "1500") ]

(** Build a bootable image from a driver and a workload.  [registry]
    defaults to the standard configuration. *)
let build ?(registry = default_registry) ~driver:(driver_name, driver_src)
    ~workload:(workload_name, workload_src) () =
  let linked =
    S2e_cc.Cc.link ~origin:Layout.image_origin ~runtime_asm:Runtime.boot_asm
      [
        ("kernel", Kernel_src.source);
        ("klib", Klib_src.source);
        (driver_name, driver_src);
        (workload_name, workload_src);
      ]
  in
  {
    linked;
    registry = registry_blob registry;
    entry = Layout.image_origin;
    driver_name;
    workload_name;
  }

(** Engine view including the registry in base memory. *)
let to_view (img : image) : S2e_core.Executor.image_view =
  {
    S2e_core.Executor.l_origin = img.linked.image.origin;
    l_code = img.linked.image.code;
    l_modules =
      List.map
        (fun (m : S2e_cc.Cc.module_range) ->
          (m.m_name, m.m_start, m.m_code_end, m.m_end))
        img.linked.modules;
  }

(** Load into an engine (code + registry) ready to boot. *)
let load_into_engine (engine : S2e_core.Executor.t) img =
  S2e_core.Executor.load engine (to_view img);
  Bytes.blit_string img.registry 0 engine.S2e_core.Executor.base_mem
    Layout.registry_base
    (String.length img.registry)

(** Load into the concrete reference machine. *)
let load_into_machine (m : S2e_vm.Machine.t) img =
  S2e_vm.Machine.load_image m img.linked.image;
  Bytes.blit_string img.registry 0 m.S2e_vm.Machine.mem Layout.registry_base
    (String.length img.registry)

let symbol img name = S2e_isa.Asm.symbol img.linked.image name

(** Result value the runtime stub stores after [main] returns. *)
let result_addr = Runtime.result_addr

let drivers = Drivers_src.all

let driver_display_name = function
  | "pcnet" -> "PCnet"
  | "rtl8029" -> "RTL8029"
  | "c111" -> "91C111"
  | "rtl8139" -> "RTL8139"
  | other -> other
