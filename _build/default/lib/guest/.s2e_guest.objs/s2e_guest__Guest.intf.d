lib/guest/guest.mli: S2e_cc S2e_core S2e_vm
