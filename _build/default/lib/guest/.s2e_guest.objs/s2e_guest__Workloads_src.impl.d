lib/guest/workloads_src.ml: Printf
