lib/guest/klib_src.ml:
