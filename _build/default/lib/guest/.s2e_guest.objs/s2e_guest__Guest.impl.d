lib/guest/guest.ml: Buffer Bytes Char Drivers_src Kernel_src Klib_src List Runtime S2e_cc S2e_core S2e_isa S2e_vm String
