lib/guest/kernel_src.ml:
