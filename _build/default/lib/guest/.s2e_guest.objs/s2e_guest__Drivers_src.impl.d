lib/guest/drivers_src.ml:
