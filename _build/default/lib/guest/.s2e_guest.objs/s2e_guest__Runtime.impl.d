lib/guest/runtime.ml: Printf S2e_vm
