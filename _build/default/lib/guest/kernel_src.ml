(** The guest kernel: allocator, console, registry access, network API,
    interrupt dispatch and the syscall table.  Plays the role Windows plays
    in the paper: the large concrete environment surrounding the analyzed
    unit. *)

let source =
  {|
// kernel: memory management, config registry, driver interface, syscalls.

const int HEAP_BASE = 0x40000;
const int HEAP_END  = 0x80000;
const int REG_BASE  = 0x800;
const int IRQ_CAUSE_PORT = 0x0F;
const int IRQ_NETDEV = 1;

// Free-list allocator.  Each block has an 8-byte header: [size][next].
int heap_ptr = 0;
int free_list = 0;
int alloc_count = 0;
int panic_code = 0;

int kmain() {
  heap_ptr = HEAP_BASE;
  free_list = 0;
  alloc_count = 0;
  return driver_init();
}

int panic(int code) {
  panic_code = code;
  kputs("KERNEL PANIC ");
  kputint(code);
  __halt();
  return 0;
}

int *alloc(int size) {
  if (size <= 0) return 0;
  size = (size + 7) & ~7;
  // First-fit search of the free list.
  int *prev = 0;
  int *blk = free_list;
  while (blk) {
    if (blk[0] >= size) {
      if (prev) prev[1] = blk[1];
      else free_list = blk[1];
      alloc_count = alloc_count + 1;
      return blk + 2;
    }
    prev = blk;
    blk = blk[1];
  }
  // Bump allocation.
  if (heap_ptr + size + 8 > HEAP_END) return 0;
  int *hdr = heap_ptr;
  hdr[0] = size;
  hdr[1] = 0;
  heap_ptr = heap_ptr + size + 8;
  alloc_count = alloc_count + 1;
  return hdr + 2;
}

int kfree(int *p) {
  if (!p) return 0;
  int *hdr = p - 2;
  hdr[1] = free_list;
  free_list = hdr;
  alloc_count = alloc_count - 1;
  return 0;
}

// Registry: records of [klen:1][key][vlen:1][value], ending with klen=0.
// reg_query copies the value of [key] into [out] (NUL-terminated) and
// returns its length, or -1 when the key is absent.
int reg_query(char *key, char *out, int maxlen) {
  char *p = REG_BASE;
  while (p[0]) {
    int klen = p[0];
    int match = 1;
    for (int i = 0; i < klen; i = i + 1) {
      if (!key[i] || key[i] != p[1 + i]) match = 0;
    }
    if (match && key[klen]) match = 0;
    int vlen = p[1 + klen];
    if (match) {
      int n = vlen;
      if (n > maxlen - 1) n = maxlen - 1;
      for (int i = 0; i < n; i = i + 1) out[i] = p[2 + klen + i];
      out[n] = 0;
      return n;
    }
    p = p + 2 + klen + vlen;
  }
  return 0 - 1;
}

// Reads a numeric registry value with a default.
int reg_query_int(char *key, int dflt) {
  char buf[16];
  if (reg_query(key, buf, 16) < 0) return dflt;
  int v = katoi(buf);
  if (v < 0) return dflt;
  return v;
}

// Network API exposed to programs; forwards to the loaded driver.
int net_send(char *buf, int len) {
  if (len <= 0) return 0 - 1;
  return driver_send(buf, len);
}

int net_poll(char *buf, int maxlen) {
  return driver_recv(buf, maxlen);
}

int kernel_irq() {
  int cause = __in(IRQ_CAUSE_PORT);
  if (cause == IRQ_NETDEV) driver_isr();
  return 0;
}

// Syscall table: 1 putchar, 2 puts, 3 alloc, 4 free, 5 net_send,
// 6 net_poll, 7 reg_query, 8 panic, 9 putint.
int ksyscall(int n, int a, int b, int c) {
  if (n == 1) return __out(0, a);
  if (n == 2) return kputs(a);
  if (n == 3) return alloc(a);
  if (n == 4) return kfree(a);
  if (n == 5) return net_send(a, b);
  if (n == 6) return net_poll(a, b);
  if (n == 7) return reg_query(a, b, c);
  if (n == 8) return panic(a);
  if (n == 9) return kputint(a);
  return 0 - 1;
}
|}
