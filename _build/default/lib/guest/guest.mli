(** Guest image builder: composes the boot runtime, kernel, klib, a driver
    and a workload into one bootable image with a configuration registry,
    and loads the result into the engine or the concrete reference VM. *)

type image = {
  linked : S2e_cc.Cc.linked;
  registry : string; (** raw blob placed at {!S2e_vm.Layout.registry_base} *)
  entry : int;
  driver_name : string;
  workload_name : string;
}

val registry_blob : (string * string) list -> string
(** Serialize key/value pairs into the registry's record format. *)

val default_registry : (string * string) list

val build :
  ?registry:(string * string) list ->
  driver:string * string ->
  workload:string * string ->
  unit ->
  image
(** [build ~driver:(name, mc_source) ~workload:(name, mc_source) ()]
    compiles and links kernel + klib + driver + workload. *)

val to_view : image -> S2e_core.Executor.image_view

val load_into_engine : S2e_core.Executor.t -> image -> unit
(** Code plus registry, ready for {!S2e_core.Executor.boot}. *)

val load_into_machine : S2e_vm.Machine.t -> image -> unit

val symbol : image -> string -> int
(** Address of a guest symbol (function or global). *)

val result_addr : int
(** Where the boot stub stores [main]'s return value. *)

val drivers : (string * string) list
(** The four driver sources, keyed by module name. *)

val driver_display_name : string -> string
(** "pcnet" → "PCnet", etc. *)
