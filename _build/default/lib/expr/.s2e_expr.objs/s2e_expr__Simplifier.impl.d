lib/expr/simplifier.ml: Expr Int64
