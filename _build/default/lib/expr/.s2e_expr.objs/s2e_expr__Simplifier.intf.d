lib/expr/simplifier.mli: Expr
