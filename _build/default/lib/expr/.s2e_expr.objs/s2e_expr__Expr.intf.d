lib/expr/expr.mli: Format Map Set
