lib/expr/expr.ml: Fmt Int Int64 Map Set
