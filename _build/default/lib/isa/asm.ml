(** Two-pass assembler for the guest ISA.

    Input is a conventional line-oriented syntax ([label:] prefixes,
    [; comments], [.word]/[.byte]/[.ascii]/[.asciz]/[.space]/[.align]
    directives).  Output is a binary image plus a symbol table that the
    engine uses for module maps and coverage accounting. *)

exception Error of { line : int; message : string }

let error line fmt = Fmt.kstr (fun message -> raise (Error { line; message })) fmt

type item =
  | I_insn of string * string list (* mnemonic, operands *)
  | I_word of string list
  | I_byte of string list
  | I_ascii of string * bool (* string, nul-terminated *)
  | I_space of int
  | I_align of int

type line = { num : int; labels : string list; item : item option }

let strip_comment s =
  let cut c s = match String.index_opt s c with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  (* Don't cut inside string literals. *)
  if String.contains s '"' then s else cut ';' (cut '#' s)

let tokenize_operands s =
  (* Split on commas not inside quotes; trim. *)
  let parts = ref [] and buf = Buffer.create 16 and in_str = ref false in
  String.iter
    (fun c ->
      if c = '"' then begin
        in_str := not !in_str;
        Buffer.add_char buf c
      end
      else if c = ',' && not !in_str then begin
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map String.trim !parts |> List.filter (fun s -> s <> "")

let parse_line num raw =
  let s = String.trim (strip_comment raw) in
  let rec take_labels acc s =
    match String.index_opt s ':' with
    | Some i
      when i > 0
           && String.for_all
                (fun c ->
                  c = '_' || c = '.'
                  || (c >= 'a' && c <= 'z')
                  || (c >= 'A' && c <= 'Z')
                  || (c >= '0' && c <= '9'))
                (String.sub s 0 i) ->
        let label = String.sub s 0 i in
        let rest = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
        take_labels (label :: acc) rest
    | _ -> (List.rev acc, s)
  in
  let labels, rest = take_labels [] s in
  if rest = "" then { num; labels; item = None }
  else
    let mnemonic, operands =
      match String.index_opt rest ' ' with
      | None -> (rest, "")
      | Some i ->
          ( String.sub rest 0 i,
            String.sub rest (i + 1) (String.length rest - i - 1) )
    in
    let mnemonic = String.lowercase_ascii mnemonic in
    let item =
      match mnemonic with
      | ".word" -> I_word (tokenize_operands operands)
      | ".byte" -> I_byte (tokenize_operands operands)
      | ".ascii" | ".asciz" ->
          let s = String.trim operands in
          if String.length s < 2 || s.[0] <> '"' || s.[String.length s - 1] <> '"'
          then error num "malformed string literal %s" s
          else
            I_ascii
              (Scanf.unescaped (String.sub s 1 (String.length s - 2)),
               mnemonic = ".asciz")
      | ".space" -> I_space (int_of_string (String.trim operands))
      | ".align" -> I_align (int_of_string (String.trim operands))
      | m -> I_insn (m, tokenize_operands operands)
    in
    { num; labels; item = Some item }

let item_size = function
  | I_insn _ -> Insn.insn_size
  | I_word ws -> 4 * List.length ws
  | I_byte bs -> List.length bs
  | I_ascii (s, z) -> String.length s + if z then 1 else 0
  | I_space n -> n
  | I_align _ -> 0 (* handled specially *)

let parse_reg line s =
  match String.lowercase_ascii s with
  | "fp" -> Insn.reg_fp
  | "sp" -> Insn.reg_sp
  | "lr" -> Insn.reg_lr
  | "zr" -> Insn.reg_zero
  | s when String.length s >= 2 && s.[0] = 'r' -> (
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some r when r >= 0 && r < Insn.num_regs -> r
      | _ -> error line "bad register %S" s)
  | s -> error line "bad register %S" s

let parse_imm line symbols s =
  let s = String.trim s in
  if String.length s >= 3 && s.[0] = '\'' && s.[String.length s - 1] = '\'' then
    let body = Scanf.unescaped (String.sub s 1 (String.length s - 2)) in
    if String.length body <> 1 then error line "bad char literal %s" s
    else Int32.of_int (Char.code body.[0])
  else
    match Int32.of_string_opt s with
    | Some v -> v
    | None -> (
        match Hashtbl.find_opt symbols s with
        | Some addr -> Int32.of_int addr
        | None -> error line "undefined symbol %S" s)

(* Parse "off(reg)" or "reg" or "off". *)
let parse_mem line symbols s =
  match String.index_opt s '(' with
  | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
      let off = String.trim (String.sub s 0 i) in
      let reg = String.sub s (i + 1) (String.length s - i - 2) in
      let off = if off = "" then 0l else parse_imm line symbols off in
      (parse_reg line reg, off)
  | _ -> (Insn.reg_zero, parse_imm line symbols s)

let alu_mnemonics =
  Insn.[ "add", Add; "sub", Sub; "mul", Mul; "divu", Divu; "remu", Remu;
         "and", And; "or", Or; "xor", Xor; "shl", Shl; "shr", Shr;
         "sar", Sar; "slt", Slt; "sltu", Sltu; "seq", Seq ]

let branch_mnemonics =
  Insn.[ "beq", Beq; "bne", Bne; "blt", Blt; "bge", Bge; "bltu", Bltu;
         "bgeu", Bgeu ]

let s2e_mnemonics =
  Insn.[ "s2e.symreg", Sym_reg; "s2e.symmem", Sym_mem;
         "s2e.enable", Enable_mp; "s2e.disable", Disable_mp;
         "s2e.print", Print; "s2e.kill", Kill_path;
         "s2e.assert", Assert_op; "s2e.concretize", Concretize;
         "s2e.cli", Disable_irq; "s2e.sti", Enable_irq ]

let assemble_insn line symbols mnemonic operands : Insn.t =
  let reg = parse_reg line and imm = parse_imm line symbols in
  let mem = parse_mem line symbols in
  match (mnemonic, operands) with
  | m, [ rd; rs1; rs2 ] when List.mem_assoc m alu_mnemonics ->
      Alu { op = List.assoc m alu_mnemonics; rd = reg rd; rs1 = reg rs1; rs2 = reg rs2 }
  | m, [ rd; rs1; i ]
    when String.length m > 1
         && m.[String.length m - 1] = 'i'
         && List.mem_assoc (String.sub m 0 (String.length m - 1)) alu_mnemonics
    ->
      let op = List.assoc (String.sub m 0 (String.length m - 1)) alu_mnemonics in
      Alui { op; rd = reg rd; rs1 = reg rs1; imm = imm i }
  | "li", [ rd; i ] -> Li { rd = reg rd; imm = imm i }
  | "mov", [ rd; rs1 ] -> Mov { rd = reg rd; rs1 = reg rs1 }
  | "lw", [ rd; m ] ->
      let base, off = mem m in
      Lw { rd = reg rd; base; off }
  | "lb", [ rd; m ] ->
      let base, off = mem m in
      Lb { rd = reg rd; base; off }
  | "sw", [ src; m ] ->
      let base, off = mem m in
      Sw { src = reg src; base; off }
  | "sb", [ src; m ] ->
      let base, off = mem m in
      Sb { src = reg src; base; off }
  | "jmp", [ t ] -> Jmp { target = imm t }
  | "jr", [ r ] -> Jr { rs1 = reg r }
  | "jal", [ t ] -> Jal { target = imm t }
  | "jalr", [ r ] -> Jalr { rs1 = reg r }
  | m, [ rs1; rs2; t ] when List.mem_assoc m branch_mnemonics ->
      Branch { cond = List.assoc m branch_mnemonics; rs1 = reg rs1;
               rs2 = reg rs2; target = imm t }
  | "in", [ rd; m ] ->
      let port, port_off = mem m in
      In { rd = reg rd; port; port_off }
  | "out", [ src; m ] ->
      let port, port_off = mem m in
      Out { src = reg src; port; port_off }
  | "syscall", [] -> Syscall
  | "sysret", [] -> Sysret
  | "iret", [] -> Iret
  | "halt", [] -> Halt
  | "cli", [] -> Cli
  | "sti", [] -> Sti
  | "nop", [] -> Nop
  | m, ops when List.mem_assoc m s2e_mnemonics ->
      let op = List.assoc m s2e_mnemonics in
      let rs1, rs2, i =
        match ops with
        | [] -> (Insn.reg_zero, Insn.reg_zero, 0l)
        | [ a ] -> (reg a, Insn.reg_zero, 0l)
        | [ a; b ] -> (reg a, Insn.reg_zero, imm b)
        | [ a; b; c ] -> (reg a, reg b, imm c)
        | _ -> error line "bad s2e operands"
      in
      S2e { op; rs1; rs2; imm = i }
  | m, ops ->
      error line "unknown instruction %S with %d operands" m (List.length ops)

type image = {
  origin : int;
  code : Bytes.t;
  symbols : (string, int) Hashtbl.t;
  (* Addresses that hold instructions, in order: used for coverage and
     disassembly. *)
  insn_addrs : int list;
}

(** Assemble [source] into an image loaded at [origin]. *)
let assemble ?(origin = 0x1000) source : image =
  let lines =
    String.split_on_char '\n' source
    |> List.mapi (fun i raw -> parse_line (i + 1) raw)
  in
  (* Pass 1: lay out addresses and collect symbols. *)
  let symbols = Hashtbl.create 64 in
  let addr = ref origin in
  let placed =
    List.filter_map
      (fun { num; labels; item } ->
        (match item with
        | Some (I_align n) ->
            if n > 0 && !addr mod n <> 0 then addr := !addr + (n - (!addr mod n))
        | _ -> ());
        List.iter
          (fun l ->
            if Hashtbl.mem symbols l then error num "duplicate label %S" l;
            Hashtbl.replace symbols l !addr)
          labels;
        match item with
        | None | Some (I_align _) -> None
        | Some item ->
            let a = !addr in
            addr := !addr + item_size item;
            Some (num, a, item))
      lines
  in
  let total = !addr - origin in
  let code = Bytes.make total '\000' in
  let insn_addrs = ref [] in
  (* Pass 2: encode. *)
  List.iter
    (fun (num, a, item) ->
      let off = a - origin in
      match item with
      | I_insn (m, ops) ->
          insn_addrs := a :: !insn_addrs;
          Insn.encode (assemble_insn num symbols m ops) code off
      | I_word ws ->
          List.iteri
            (fun i w -> Bytes.set_int32_le code (off + (4 * i)) (parse_imm num symbols w))
            ws
      | I_byte bs ->
          List.iteri
            (fun i b ->
              Bytes.set code (off + i)
                (Char.chr (Int32.to_int (parse_imm num symbols b) land 0xff)))
            bs
      | I_ascii (s, z) ->
          Bytes.blit_string s 0 code off (String.length s);
          if z then Bytes.set code (off + String.length s) '\000'
      | I_space _ -> ()
      | I_align _ -> assert false)
    placed;
  { origin; code; symbols; insn_addrs = List.rev !insn_addrs }

let symbol image name =
  match Hashtbl.find_opt image.symbols name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "unknown symbol %S" name)
