(** Linear disassembler over an in-memory image: the offline half of what
    the paper calls "dynamic disassembly" is done by the engine; this module
    is used for debugging output and for the REV+ code synthesis backend. *)

let disassemble_range ~get ~start ~stop =
  let rec go addr acc =
    if addr >= stop then List.rev acc
    else
      match Insn.decode_with ~get addr with
      | insn -> go (addr + Insn.insn_size) ((addr, insn) :: acc)
      | exception Insn.Invalid_instruction _ ->
          go (addr + Insn.insn_size) acc
  in
  go start []

let pp_listing ppf items =
  List.iter (fun (addr, insn) -> Fmt.pf ppf "%08x:  %a@." addr Insn.pp insn) items
