(** Linear disassembler over an in-memory image, for debugging output and
    the REV+ synthesis backend; the engine itself performs dynamic
    disassembly through the translator. *)

val disassemble_range :
  get:(int -> int) -> start:int -> stop:int -> (int * Insn.t) list
(** Decode successive 8-byte slots in [\[start, stop)], skipping
    undecodable ones. *)

val pp_listing : Format.formatter -> (int * Insn.t) list -> unit
