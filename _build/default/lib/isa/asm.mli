(** Two-pass assembler for the guest ISA.

    Line-oriented syntax: [label:] prefixes, [;]/[#] comments, and the
    directives [.word], [.byte], [.ascii], [.asciz], [.space], [.align].
    Immediates may be decimal, hex, character literals or label names.
    Memory operands are written [off(reg)]. *)

exception Error of { line : int; message : string }

type image = {
  origin : int;
  code : Bytes.t;
  symbols : (string, int) Hashtbl.t;
  insn_addrs : int list; (** addresses holding instructions, in order *)
}

val assemble : ?origin:int -> string -> image
(** Assemble a complete source text.  Forward label references are
    resolved in the second pass.  @raise Error with a line number on any
    syntactic or semantic problem. *)

val symbol : image -> string -> int
(** Address of a label; @raise Invalid_argument when undefined. *)
