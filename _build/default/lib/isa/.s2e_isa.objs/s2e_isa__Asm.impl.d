lib/isa/asm.ml: Buffer Bytes Char Fmt Hashtbl Insn Int32 List Printf Scanf String
