lib/isa/insn.ml: Bytes Char Fmt Int32 Printf
