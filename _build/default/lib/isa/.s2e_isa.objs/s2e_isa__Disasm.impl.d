lib/isa/disasm.ml: Fmt Insn List
