lib/isa/asm.mli: Bytes Hashtbl
