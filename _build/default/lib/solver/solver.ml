(** High-level constraint solver used by the symbolic execution engine.

    Sits above {!Bitblast}/{!Sat} and adds the optimizations KLEE/STP give
    the S2E prototype: independent-constraint slicing (only the constraints
    sharing variables with the query are sent to the SAT core), a
    counterexample/model cache (recent models are re-tried by evaluation
    before any SAT call), and global statistics that the Fig. 9 benchmarks
    report (per-query time, total solver time, query counts). *)

open S2e_expr

type result = Sat of Expr.model | Unsat | Unknown

type stats = {
  mutable queries : int;
  mutable sat_queries : int; (* queries that reached the SAT core *)
  mutable cache_hits : int;
  mutable total_time : float;
  mutable max_time : float;
}

let stats = { queries = 0; sat_queries = 0; cache_hits = 0; total_time = 0.; max_time = 0. }

let reset_stats () =
  stats.queries <- 0;
  stats.sat_queries <- 0;
  stats.cache_hits <- 0;
  stats.total_time <- 0.;
  stats.max_time <- 0.

(* Recent models, most recent first.  Evaluating a candidate model against
   the constraints is far cheaper than a SAT call and hits often because
   consecutive queries along a path share most constraints. *)
let model_cache : Expr.model list ref = ref []
let model_cache_limit = 24

let remember_model m =
  model_cache := m :: (List.filteri (fun i _ -> i < model_cache_limit - 1) !model_cache)

let satisfies m constraints =
  List.for_all (fun c -> Expr.eval m c = 1L) constraints

(* Unsatisfiable-set cache: loops whose infeasible side is re-queried every
   iteration would otherwise pay a full SAT call each time.  Keyed by a
   structural hash, verified by structural equality. *)
let unsat_cache : (int, Expr.t list list) Hashtbl.t = Hashtbl.create 256

let constraints_key constraints =
  List.fold_left (fun acc c -> acc lxor Hashtbl.hash c) 0 constraints

let unsat_cached constraints =
  let key = constraints_key constraints in
  match Hashtbl.find_opt unsat_cache key with
  | None -> false
  | Some entries ->
      List.exists (fun cs -> List.equal Expr.equal cs constraints) entries

let remember_unsat constraints =
  let key = constraints_key constraints in
  let entries = Option.value ~default:[] (Hashtbl.find_opt unsat_cache key) in
  if List.length entries < 8 then
    Hashtbl.replace unsat_cache key (constraints :: entries)

(* ------------------------------------------------------------------ *)
(* Independent-constraint slicing                                      *)
(* ------------------------------------------------------------------ *)

(* Keep only constraints transitively sharing variables with [seed_vars].
   Constraints mentioning no seed variable cannot affect satisfiability of
   the query (they are satisfiable on their own by path construction). *)
let slice ~seed_vars constraints =
  let remaining = ref (List.map (fun c -> (c, Expr.vars c)) constraints) in
  let relevant = ref [] in
  let frontier = ref seed_vars in
  let changed = ref true in
  while !changed do
    changed := false;
    let keep, rest =
      List.partition
        (fun (_, vs) -> not (Expr.Int_set.disjoint vs !frontier))
        !remaining
    in
    if keep <> [] then begin
      changed := true;
      List.iter
        (fun (c, vs) ->
          relevant := c :: !relevant;
          frontier := Expr.Int_set.union !frontier vs)
        keep;
      remaining := rest
    end
  done;
  !relevant

(* ------------------------------------------------------------------ *)
(* Core check                                                          *)
(* ------------------------------------------------------------------ *)

let max_conflicts = ref 200_000

let run_sat constraints =
  stats.sat_queries <- stats.sat_queries + 1;
  let sat = Sat.create () in
  let ctx = Bitblast.create sat in
  List.iter (Bitblast.assert_true ctx) constraints;
  match Sat.solve ~max_conflicts:!max_conflicts sat with
  | Sat.Sat ->
      let m = Bitblast.model ctx in
      remember_model m;
      Sat m
  | Sat.Unsat -> Unsat
  | Sat.Unknown -> Unknown

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  stats.total_time <- stats.total_time +. dt;
  if dt > stats.max_time then stats.max_time <- dt;
  r

(** Is the conjunction of [constraints] satisfiable?  Returns a model on
    success. *)
let check constraints =
  stats.queries <- stats.queries + 1;
  timed (fun () ->
      let constraints = List.map Simplifier.simplify constraints in
      if List.exists (fun c -> Expr.equal c Expr.bool_f) constraints then Unsat
      else
        let constraints =
          List.filter (fun c -> not (Expr.equal c Expr.bool_t)) constraints
        in
        if constraints = [] then Sat Expr.Int_map.empty
        else
          match List.find_opt (fun m -> satisfies m constraints) !model_cache with
          | Some m ->
              stats.cache_hits <- stats.cache_hits + 1;
              Sat m
          | None ->
              if unsat_cached constraints then begin
                stats.cache_hits <- stats.cache_hits + 1;
                Unsat
              end
              else begin
                let r = run_sat constraints in
                (match r with Unsat -> remember_unsat constraints | _ -> ());
                r
              end)

(** Satisfiability of [constraints ∧ cond]: used to decide branch
    feasibility.  The constraint set is sliced around [cond]'s variables. *)
let check_with ~constraints cond =
  let sliced = slice ~seed_vars:(Expr.vars cond) constraints in
  check (cond :: sliced)

(** A concrete value for [e] consistent with [constraints], if any. *)
let get_value ~constraints e =
  match Expr.to_const e with
  | Some v -> Some v
  | None -> (
      let sliced = slice ~seed_vars:(Expr.vars e) constraints in
      match check sliced with
      | Sat m -> Some (Expr.eval m e)
      | Unsat | Unknown -> None)

(** Must [e] evaluate to a single value under [constraints]?  Returns that
    value when it is unique. *)
let get_unique_value ~constraints e =
  match Expr.to_const e with
  | Some v -> Some v
  | None -> (
      match get_value ~constraints e with
      | None -> None
      | Some v ->
          let differs = Expr.ne e (Expr.const ~width:(Expr.width e) v) in
          (match check_with ~constraints differs with
          | Unsat -> Some v
          | Sat _ | Unknown -> None))

(** Up to [limit] distinct concrete values for [e] under [constraints]. *)
let get_values ~constraints ~limit e =
  let rec go acc extra n =
    if n = 0 then List.rev acc
    else
      let sliced = slice ~seed_vars:(Expr.vars e) constraints in
      match check (extra @ sliced) with
      | Sat m ->
          let v = Expr.eval m e in
          let block = Expr.ne e (Expr.const ~width:(Expr.width e) v) in
          go (v :: acc) (block :: extra) (n - 1)
      | Unsat | Unknown -> List.rev acc
  in
  go [] [] limit
