lib/solver/solver.ml: Bitblast Expr Hashtbl List Option S2e_expr Sat Simplifier Unix
