lib/solver/sat.ml: Array Bytes Char List
