lib/solver/solver.mli: Expr S2e_expr
