lib/solver/bitblast.ml: Array Expr Hashtbl Int64 S2e_expr Sat
