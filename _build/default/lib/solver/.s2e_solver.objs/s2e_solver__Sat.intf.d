lib/solver/sat.mli:
