(** High-level constraint solver used by the symbolic execution engine.

    Sits above {!Bitblast}/{!Sat} and adds the optimizations KLEE/STP give
    the paper's prototype: independent-constraint slicing, a model cache
    (recent satisfying assignments re-tried by evaluation before any SAT
    call), an unsatisfiable-set cache, and global statistics for the
    Fig. 9 benchmarks. *)

open S2e_expr

type result = Sat of Expr.model | Unsat | Unknown

type stats = {
  mutable queries : int;
  mutable sat_queries : int; (** queries that reached the SAT core *)
  mutable cache_hits : int;
  mutable total_time : float;
  mutable max_time : float;
}

val stats : stats
val reset_stats : unit -> unit

val model_cache : Expr.model list ref
(** Recent models, most recent first.  Exposed for the cache ablation. *)

val max_conflicts : int ref
(** SAT-core conflict budget per query; exceeding it yields [Unknown]. *)

val slice : seed_vars:Expr.Int_set.t -> Expr.t list -> Expr.t list
(** Keep only constraints transitively sharing variables with
    [seed_vars]. *)

val check : Expr.t list -> result
(** Is the conjunction satisfiable?  Returns a model on success. *)

val check_with : constraints:Expr.t list -> Expr.t -> result
(** Satisfiability of [constraints ∧ cond], slicing [constraints] around
    [cond]'s variables: the branch-feasibility query. *)

val get_value : constraints:Expr.t list -> Expr.t -> int64 option
(** A concrete value for the expression consistent with the constraints. *)

val get_unique_value : constraints:Expr.t list -> Expr.t -> int64 option
(** The expression's value when the constraints determine it uniquely. *)

val get_values : constraints:Expr.t list -> limit:int -> Expr.t -> int64 list
(** Up to [limit] distinct feasible values. *)
