(** Dynamic disassembly of packed/self-modifying binaries: the RC-CC use
    case (paper sections 3.1.3 and 4, "dynamic disassembly of a potentially
    obfuscated binary").

    The guest program carries an XOR-encrypted function; at run time it
    decrypts the code in place (exercising the translator's self-modifying
    code invalidation) and jumps into it.  The unpacker tool first lets the
    decryption stub run under local consistency — ensuring the decryption
    itself is correct — and then switches to CFG consistency (RC-CC) to
    follow every edge of the decrypted code without solver checks, exactly
    the two-phase recipe the paper describes. *)

open S2e_core
module Expr = S2e_expr.Expr
module Guest = S2e_guest.Guest

let xor_key = 0x5C

(* The guest: [payload] is encrypted in the image; main decrypts it and
   calls it with a symbolic argument.  The addresses of the packed region
   arrive through the registry, playing the role of the packer's header. *)
let packed_program =
  {|
int payload(int x) {
  if (x > 10) {
    if (x > 100) return 3;
    return 2;
  }
  if (x < 0 - 5) return 1;
  return 0;
}

int main() {
  int start = reg_query_int("PackedStart", 0);
  int end = reg_query_int("PackedEnd", 0);
  if (!start || !end) return 0 - 1;
  // self-decryption: XOR the code bytes in place
  char *p = start;
  while (p < end) {
    *p = *p ^ 0x5C;
    p = p + 1;
  }
  int x = __s2e_sym_int(1);
  return payload(x);
}
|}

type result = {
  decrypt_ok : bool;          (* concrete pre-check: decrypted code runs *)
  paths : int;
  disassembled : (int * S2e_isa.Insn.t) list; (* dynamically recovered code *)
  covered_fraction : float;   (* of the packed region *)
}

(** Build the image with the payload function encrypted in place. *)
let build_packed () =
  (* First build once to learn the payload's address range. *)
  let probe =
    Guest.build
      ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
      ~workload:("packed", packed_program)
      ()
  in
  let payload_start = Guest.symbol probe "payload" in
  let payload_end = Guest.symbol probe "main" in
  let img =
    Guest.build
      ~registry:
        (( "PackedStart", string_of_int payload_start )
         :: ("PackedEnd", string_of_int payload_end)
         :: Guest.default_registry)
      ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
      ~workload:("packed", packed_program)
      ()
  in
  (* Encrypt the payload bytes in the linked image. *)
  let code = img.linked.image.code in
  let origin = img.linked.image.origin in
  for addr = payload_start to payload_end - 1 do
    let off = addr - origin in
    Bytes.set code off
      (Char.chr (Char.code (Bytes.get code off) lxor xor_key))
  done;
  (img, payload_start, payload_end)

(** Run the two-phase unpack-and-disassemble analysis. *)
let run ?(max_seconds = 10.0) () =
  let img, lo, hi = build_packed () in
  (* Phase 0: concrete sanity run — the decryption stub must produce
     executable code (the LC phase of the paper's recipe collapses to
     concrete execution here because the stub takes no symbolic input). *)
  let m = S2e_vm.Machine.create () in
  Guest.load_into_machine m img;
  let decrypt_ok = S2e_vm.Machine.run m = S2e_vm.Machine.Halted in
  (* Phase 1: explore the decrypted payload under RC-CC, recording every
     instruction the translator sees inside the packed region. *)
  let config = Executor.default_config () in
  config.consistency <- Consistency.RC_CC;
  let engine = Executor.create ~config () in
  Guest.load_into_engine engine img;
  Executor.set_unit engine [ "packed" ];
  let recovered = Hashtbl.create 64 in
  Events.reg_instr_translate engine.Executor.events (fun addr insn ->
      if addr >= lo && addr < hi then Hashtbl.replace recovered addr insn);
  let s0 = Executor.boot engine ~entry:img.entry () in
  let paths =
    Executor.run
      ~limits:{ Executor.max_instructions = Some 2_000_000;
                max_seconds = Some max_seconds; max_completed = None }
      engine s0
  in
  let disassembled =
    Hashtbl.fold (fun a i acc -> (a, i) :: acc) recovered []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let total = (hi - lo) / S2e_isa.Insn.insn_size in
  {
    decrypt_ok;
    paths;
    disassembled;
    covered_fraction =
      (if total = 0 then 0.
       else float_of_int (List.length disassembled) /. float_of_int total);
  }

let pp_listing ppf r =
  List.iter
    (fun (addr, insn) -> Fmt.pf ppf "%08x:  %a@." addr S2e_isa.Insn.pp insn)
    r.disassembled
