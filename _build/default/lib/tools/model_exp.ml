(** The execution-consistency-model trade-off experiments of paper section
    6.3: explore two drivers and the Mua interpreter under RC-OC / LC /
    SC-SE / SC-UE, measuring time to finish, basic-block coverage, memory
    high-watermark and constraint-solving time.  Feeds Table 6 and
    Figures 7, 8 and 9. *)

open S2e_core
open S2e_plugins
module Expr = S2e_expr.Expr
module Solver = S2e_solver.Solver
module Guest = S2e_guest.Guest

type measurement = {
  target : string;
  consistency : Consistency.t;
  seconds : float;
  finished : bool; (* exploration drained before the budget *)
  coverage : float;
  paths : int;
  mem_watermark : int; (* state-footprint words, high watermark *)
  solver_fraction : float;
  avg_query_ms : float;
  solver_queries : int;
  instructions : int;
}

let netdev_ports = (S2e_vm.Layout.port_netdev, S2e_vm.Layout.port_netdev + 16)

let finish_measurement ~target ~consistency ~started ~finished ~coverage ~paths
    engine =
  let seconds = Unix.gettimeofday () -. started in
  let st = Solver.stats in
  {
    target;
    consistency;
    seconds;
    finished;
    coverage;
    paths;
    mem_watermark = engine.Executor.stats.footprint_watermark;
    solver_fraction = (if seconds > 0. then st.total_time /. seconds else 0.);
    avg_query_ms =
      (if st.queries > 0 then 1000. *. st.total_time /. float_of_int st.queries
       else 0.);
    solver_queries = st.queries;
    instructions = engine.Executor.stats.concrete_instret;
  }

(** Explore [driver] under [consistency] until exploration drains or the
    budget runs out. *)
let run_driver ?(max_seconds = 20.0) ?(max_instructions = 4_000_000) ~driver
    ~consistency () =
  Solver.reset_stats ();
  let driver_src = List.assoc driver Guest.drivers in
  let img =
    Guest.build ~driver:(driver, driver_src)
      ~workload:("exerciser", S2e_guest.Workloads_src.exerciser)
      ()
  in
  let config = Executor.default_config () in
  config.consistency <- consistency;
  config.symbolic_hardware_ports <- [ netdev_ports ];
  config.max_fork_depth <- 96;
  let engine = Executor.create ~config () in
  Guest.load_into_engine engine img;
  Executor.set_unit engine [ driver ];
  let coverage = Coverage.attach engine in
  let _killer = Path_killer.attach ~max_repeats:3000 engine in
  (* The LC interface annotations (registry and allocation injection). *)
  (match consistency with
  | Consistency.LC | Consistency.RC_OC ->
      let reg =
        Registry.attach engine ~query_entry:(Guest.symbol img "reg_query_int")
      in
      Registry.watch reg ~key:"CardType" ~values:[ 1; 2; 7 ];
      Registry.watch reg ~key:"TxMode" ~values:[ 1; 2 ];
      Registry.watch reg ~key:"Promisc" ~values:[ 0; 1; 2 ];
      Registry.watch reg ~key:"Mtu" ~values:[ 1500; 9000 ];
      let alloc_addr = Guest.symbol img "alloc" in
      Annotation.on_return engine ~callee:alloc_addr (fun t s ->
          match Expr.to_const (State.get_reg s 0) with
          | Some base when base <> 0L ->
              let child = Executor.plugin_fork t s in
              State.set_reg child 0 (Expr.const 0L)
          | _ -> ())
  | Consistency.SC_CE | Consistency.SC_UE | Consistency.SC_SE
  | Consistency.RC_CC ->
      ());
  let s0 = Executor.boot engine ~entry:img.entry () in
  ignore
    (S2e_vm.Netdev.inject_frame s0.State.devices.netdev
       (Array.init 20 (fun i -> (i * 3) land 0xff)));
  let started = Unix.gettimeofday () in
  let limits =
    {
      Executor.max_instructions = Some max_instructions;
      max_seconds = Some max_seconds;
      max_completed = None;
    }
  in
  ignore (Executor.run ~limits engine s0);
  let finished = engine.Executor.searcher.select () = None in
  finish_measurement ~target:driver ~consistency ~started ~finished
    ~coverage:(Coverage.module_coverage coverage driver)
    ~paths:engine.Executor.stats.states_completed engine

(* Inject symbolic Mua opcodes into [mua_code] when the interpreter starts,
   once per path: the paper's "suitably constrained symbolic Lua opcodes
   after the parser stage" (LC) or completely unconstrained ones (RC-OC). *)
let inject_opcodes engine img ~count ~constrain =
  let interp_addr = Guest.symbol img "mua_interp" in
  let code_addr = Guest.symbol img "mua_code" in
  let injected = Hashtbl.create 16 in
  Events.reg_instr_translate engine.Executor.events (fun addr _ ->
      if addr = interp_addr then S2e_dbt.Dbt.mark engine.Executor.dbt addr);
  Events.reg_instr_execute engine.Executor.events (fun s addr _ ->
      if addr = interp_addr && not (Hashtbl.mem injected s.State.id) then begin
        Hashtbl.replace injected s.State.id ();
        for i = 0 to count - 1 do
          let v = Expr.fresh_var ~width:8 (Printf.sprintf "mua_op_%d" i) in
          if constrain then
            State.add_constraint s
              (Expr.log_and
                 (Expr.ule (Expr.const ~width:8 1L) v)
                 (Expr.ule v (Expr.const ~width:8 12L)));
          s.State.mem <- Symmem.write_byte s.State.mem (code_addr + i) v
        done
      end);
  Events.reg_fork engine.Executor.events (fun parent child _ ->
      if Hashtbl.mem injected parent.State.id then
        Hashtbl.replace injected child.State.id ())

(** Explore the Mua interpreter under [consistency].  The unit is the
    interpreter (and main); the lexer/parser runs in the concrete domain,
    which is the selective-symbolic-execution benefit the paper highlights
    for Lua. *)
let run_mua ?(max_seconds = 20.0) ?(max_instructions = 4_000_000) ~consistency
    () =
  Solver.reset_stats ();
  let sym_source =
    match consistency with Consistency.SC_SE -> "1" | _ -> "0"
  in
  let img =
    Guest.build
      ~registry:(("MuaSym", sym_source) :: Guest.default_registry)
      ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
      ~workload:("mua", S2e_guest.Workloads_src.mua)
      ()
  in
  let config = Executor.default_config () in
  config.consistency <- consistency;
  config.max_fork_depth <- 96;
  (* Symbolic Mua opcodes become symbolic jump offsets and stack slots:
     small solver pages keep the resulting ITE chains tractable (the
     page-splitting optimization of paper section 5). *)
  config.page_size <- 32;
  let engine = Executor.create ~config () in
  engine.Executor.searcher <- Searcher.bfs ();
  Guest.load_into_engine engine img;
  (* Unit: the interpreter loop and main, not the lexer/parser. *)
  let mua = S2e_cc.Cc.module_range img.linked "mua" in
  let interp_addr = Guest.symbol img "mua_interp" in
  Executor.add_unit_range engine interp_addr mua.m_code_end;
  (match consistency with
  | Consistency.LC -> inject_opcodes engine img ~count:6 ~constrain:true
  | Consistency.RC_OC -> inject_opcodes engine img ~count:6 ~constrain:false
  | Consistency.SC_SE ->
      (* symbolic program text: the unit must include the whole module so
         the parser's forks are followed (system-level consistency) *)
      Executor.add_unit_range engine mua.m_start mua.m_code_end
  | Consistency.SC_CE | Consistency.SC_UE | Consistency.RC_CC -> ());
  let coverage = Coverage.attach engine in
  let _killer = Path_killer.attach ~max_repeats:3000 engine in
  let s0 = Executor.boot engine ~entry:img.entry () in
  let started = Unix.gettimeofday () in
  let limits =
    {
      Executor.max_instructions = Some max_instructions;
      max_seconds = Some max_seconds;
      max_completed = None;
    }
  in
  ignore (Executor.run ~limits engine s0);
  let finished = engine.Executor.searcher.select () = None in
  (* Coverage of the interpreter range. *)
  let total = (mua.m_code_end - interp_addr) / S2e_isa.Insn.insn_size in
  let covered = Coverage.covered_in_range coverage interp_addr mua.m_code_end in
  finish_measurement ~target:"mua" ~consistency ~started ~finished
    ~coverage:(float_of_int covered /. float_of_int total)
    ~paths:engine.Executor.stats.states_completed engine

let pp_measurement ppf m =
  Fmt.pf ppf
    "%-8s %-6s %7.2fs%s  cov %5.1f%%  paths %5d  mem %7d  solver %4.0f%% (%.2f ms/query)"
    m.target
    (Consistency.name m.consistency)
    m.seconds
    (if m.finished then " (done)" else " (cap) ")
    (100. *. m.coverage) m.paths m.mem_watermark
    (100. *. m.solver_fraction)
    m.avg_query_ms
