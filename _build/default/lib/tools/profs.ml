(** PROFS: the multi-path in-vivo performance profiler
    (paper section 6.1.3) — the first use of symbolic execution for
    performance analysis.

    Runs a workload with symbolic inputs under local consistency, attaches
    the PerformanceProfile plugin (instruction counts + cache/TLB/page-fault
    simulation per path), and post-processes the per-path reports: solving
    each path's constraints reconstructs the concrete input that drives the
    program down that path, which is how the URL experiment relates
    instruction counts to the number of '/' characters. *)

open S2e_core
open S2e_plugins
module Expr = S2e_expr.Expr
module Solver = S2e_solver.Solver
module Guest = S2e_guest.Guest

type path_profile = {
  p_id : int;
  p_status : string;
  p_instructions : int;
  p_i1_misses : int;
  p_d1_misses : int;
  p_l2_misses : int;
  p_tlb_misses : int;
  p_page_faults : int;
  (* Values of the symbolic input bytes along this path (solved model),
     keyed by variable name. *)
  p_input : (string * int) list;
  p_result : int option; (* workload exit value when concrete *)
}

type report = {
  workload : string;
  paths : path_profile list;
  killed_paths : int; (* paths terminated without completing (e.g. loops) *)
  unbounded : bool;   (* some path hit the polling-loop killer *)
  seconds : float;
  solver_seconds : float;
}

let input_of_model engine (s : State.t) =
  match Solver.check s.State.constraints with
  | Solver.Sat m ->
      List.filter_map
        (fun (id, name) ->
          match Expr.Int_map.find_opt id m with
          | Some v -> Some (name, Int64.to_int v land 0xff)
          | None -> Some (name, 0))
        engine.Executor.var_tags
  | Solver.Unsat | Solver.Unknown -> []

(** Profile [workload] (an MC source) with the given driver and injected
    frames.  [unit_modules] defaults to the workload module itself. *)
let run ?(max_seconds = 30.0) ?(max_instructions = 6_000_000)
    ?(consistency = Consistency.LC) ?(driver = ("nulldrv", S2e_guest.Drivers_src.nulldrv))
    ?(frames = []) ?unit_modules ?registry ~workload:(wname, wsrc) () =
  S2e_solver.Solver.reset_stats ();
  let img = Guest.build ?registry ~driver ~workload:(wname, wsrc) () in
  let config = Executor.default_config () in
  config.consistency <- consistency;
  let engine = Executor.create ~config () in
  Guest.load_into_engine engine img;
  Executor.set_unit engine (Option.value ~default:[ wname ] unit_modules);
  let profile = Perf_profile.attach engine in
  let _killer = Path_killer.attach ~max_repeats:150 engine in
  let killed = ref 0 in
  let unbounded = ref false in
  Events.reg_state_end engine.Executor.events (fun s ->
      match s.State.status with
      | State.Killed reason ->
          incr killed;
          if reason = "polling loop" then unbounded := true
      | _ -> ());
  let profiles = ref [] in
  Events.reg_state_end engine.Executor.events (fun s ->
      let input = input_of_model engine s in
      let result =
        if s.State.status = State.Halted then
          Expr.to_const (Symmem.read_word s.State.mem Guest.result_addr)
          |> Option.map Int64.to_int
        else None
      in
      profiles := (s.State.id, s, input, result) :: !profiles);
  let s0 = Executor.boot engine ~entry:img.entry () in
  List.iter
    (fun f -> ignore (S2e_vm.Netdev.inject_frame s0.State.devices.netdev f))
    frames;
  let started = Unix.gettimeofday () in
  ignore
    (Executor.run
       ~limits:
         {
           Executor.max_instructions = Some max_instructions;
           max_seconds = Some max_seconds;
           max_completed = None;
         }
       engine s0);
  let seconds = Unix.gettimeofday () -. started in
  (* Join the plugin's per-path counters with the solved inputs. *)
  let reports = Perf_profile.reports profile in
  let paths =
    List.filter_map
      (fun (r : Perf_profile.report) ->
        match List.find_opt (fun (id, _, _, _) -> id = r.r_path) !profiles with
        | None -> None
        | Some (_, _, input, result) ->
            Some
              {
                p_id = r.r_path;
                p_status = r.r_status;
                p_instructions = r.r_instructions;
                p_i1_misses = r.r_totals.i1_misses;
                p_d1_misses = r.r_totals.d1_misses;
                p_l2_misses = r.r_totals.l2_misses;
                p_tlb_misses = r.r_totals.tlb_misses;
                p_page_faults = r.r_totals.page_faults;
                p_input = input;
                p_result = result;
              })
      reports
  in
  {
    workload = wname;
    paths;
    killed_paths = !killed;
    unbounded = !unbounded;
    seconds;
    solver_seconds = S2e_solver.Solver.stats.total_time;
  }

let completed r = List.filter (fun p -> p.p_status = "halted") r.paths

(** [min, max] executed instructions over completed paths: the performance
    envelope of the paper's ping experiment. *)
let envelope r =
  match completed r with
  | [] -> None
  | p :: rest ->
      Some
        (List.fold_left
           (fun (lo, hi) p -> (min lo p.p_instructions, max hi p.p_instructions))
           (p.p_instructions, p.p_instructions)
           rest)

(** Count occurrences of byte [c] among a path's symbolic input bytes whose
    variable name starts with [prefix]. *)
let count_input_byte p ~prefix c =
  List.length
    (List.filter
       (fun (name, v) ->
         v = c
         && String.length name >= String.length prefix
         && String.sub name 0 (String.length prefix) = prefix)
       p.p_input)

(** Least-squares slope and intercept of instructions as a function of a
    per-path feature: used to report "k extra instructions per '/'" for the
    URL experiment. *)
let regression points =
  match points with
  | [] | [ _ ] -> None
  | _ ->
      let n = float_of_int (List.length points) in
      let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
      let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
      let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. points in
      let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. points in
      let denom = (n *. sxx) -. (sx *. sx) in
      if abs_float denom < 1e-9 then None
      else
        let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
        let intercept = (sy -. (slope *. sx)) /. n in
        Some (slope, intercept)
