(** REV+: reverse engineering of closed-source drivers
    (paper section 6.1.2).

    The driver binary is executed under overapproximate consistency
    (RC-OC): the tracer only needs to see each basic block execute, not
    full path consistency.  ExecutionTracer records the driver's executed
    instructions, memory accesses and hardware I/O; the offline component
    rebuilds the control flow graph from the traces and synthesizes a
    driver listing that implements the same hardware protocol.

    The "RevNIC-style" baseline uses the same tracer but with the weaker
    exploration RevNIC had: symbolic hardware only (SC-SE), depth-first
    search, no registry injection and no coverage-guided scheduling — the
    delta is what Table 5 measures. *)

open S2e_core
open S2e_plugins
module Expr = S2e_expr.Expr
module Guest = S2e_guest.Guest
module Insn = S2e_isa.Insn

type recovered_block = {
  rb_start : int;
  rb_insns : (int * Insn.t) list;
  rb_succs : int list;
}

type recovered_cfg = {
  blocks : recovered_block list;
  entry_points : (string * int) list;
}

type result = {
  driver : string;
  mode : [ `Revnic_baseline | `Rev_plus ];
  covered_insns : int;
  total_insns : int;
  coverage : float;
  timeline : (int * float) list; (* (instructions, coverage fraction) *)
  cfg : recovered_cfg;
  seconds : float;
}

let netdev_ports = (S2e_vm.Layout.port_netdev, S2e_vm.Layout.port_netdev + 16)

(* ---------------- offline CFG recovery ---------------- *)

(* Rebuild basic blocks from the union of traced instruction sequences. *)
let recover_cfg traces ~entry_points =
  (* successor relation from consecutive trace events *)
  let succs : (int, int list) Hashtbl.t = Hashtbl.create 512 in
  let insn_at : (int, Insn.t) Hashtbl.t = Hashtbl.create 512 in
  let add_succ a b =
    let cur = Option.value ~default:[] (Hashtbl.find_opt succs a) in
    if not (List.mem b cur) then Hashtbl.replace succs a (b :: cur)
  in
  List.iter
    (fun (tr : Tracer.trace) ->
      let prev = ref None in
      List.iter
        (fun ev ->
          match ev with
          | Tracer.T_insn { addr; insn } ->
              Hashtbl.replace insn_at addr insn;
              (match !prev with Some p -> add_succ p addr | None -> ());
              prev := Some addr
          | Tracer.T_mem _ | Tracer.T_io _ | Tracer.T_irq _ -> ())
        tr.events)
    traces;
  (* leaders: entry points, branch targets, fall-throughs of multi-successor
     instructions *)
  let leaders = Hashtbl.create 128 in
  List.iter (fun (_, a) -> Hashtbl.replace leaders a ()) entry_points;
  Hashtbl.iter
    (fun a ss ->
      match Hashtbl.find_opt insn_at a with
      | Some insn when Insn.is_block_terminator insn ->
          List.iter (fun s -> Hashtbl.replace leaders s ()) ss
      | Some _ when List.length ss > 1 ->
          List.iter (fun s -> Hashtbl.replace leaders s ()) ss
      | _ -> ())
    succs;
  (* build blocks by walking from each leader *)
  let blocks =
    Hashtbl.fold
      (fun leader () acc ->
        let rec walk addr insns =
          match Hashtbl.find_opt insn_at addr with
          | None -> (List.rev insns, [])
          | Some insn ->
              let insns = (addr, insn) :: insns in
              let ss = Option.value ~default:[] (Hashtbl.find_opt succs addr) in
              if Insn.is_block_terminator insn || List.length ss <> 1 then
                (List.rev insns, ss)
              else
                let next = List.hd ss in
                if Hashtbl.mem leaders next then (List.rev insns, ss)
                else walk next insns
        in
        let rb_insns, rb_succs = walk leader [] in
        if rb_insns = [] then acc
        else { rb_start = leader; rb_insns; rb_succs } :: acc)
      leaders []
  in
  { blocks = List.sort (fun a b -> compare a.rb_start b.rb_start) blocks;
    entry_points }

(** Synthesized driver listing: labeled blocks with control-flow edges, the
    artifact REV+'s offline code generator emits. *)
let synthesize cfg =
  let buf = Buffer.create 4096 in
  let name_of addr =
    match List.find_opt (fun (_, a) -> a = addr) cfg.entry_points with
    | Some (n, _) -> Printf.sprintf "%s:" n
    | None -> Printf.sprintf "L_%x:" addr
  in
  List.iter
    (fun b ->
      Buffer.add_string buf (name_of b.rb_start);
      Buffer.add_char buf '\n';
      List.iter
        (fun (addr, insn) ->
          Buffer.add_string buf
            (Printf.sprintf "  /*%05x*/ %s\n" addr (Insn.to_string insn)))
        b.rb_insns;
      (match b.rb_succs with
      | [] -> ()
      | ss ->
          Buffer.add_string buf
            (Printf.sprintf "  // -> %s\n"
               (String.concat ", "
                  (List.map (fun a -> Printf.sprintf "L_%x" a) ss))));
      Buffer.add_char buf '\n')
    cfg.blocks;
  Buffer.contents buf

(* ---------------- online exploration ---------------- *)

let entry_point_names =
  [ "driver_init"; "driver_send"; "driver_recv"; "driver_query";
    "driver_set"; "driver_isr"; "driver_unload" ]

(** Trace [driver] for up to [max_instructions]; [mode] selects the REV+
    configuration or the RevNIC-style baseline. *)
let run ?(max_seconds = 30.0) ?(max_instructions = 4_000_000)
    ?(mode = `Rev_plus) ~driver () =
  S2e_solver.Solver.reset_stats ();
  let driver_src = List.assoc driver Guest.drivers in
  let img =
    Guest.build ~driver:(driver, driver_src)
      ~workload:("exerciser", S2e_guest.Workloads_src.exerciser)
      ()
  in
  let config = Executor.default_config () in
  config.consistency <-
    (match mode with
    | `Rev_plus -> Consistency.RC_OC
    | `Revnic_baseline -> Consistency.SC_SE);
  config.symbolic_hardware_ports <- [ netdev_ports ];
  config.max_fork_depth <- 96;
  let engine = Executor.create ~config () in
  Guest.load_into_engine engine img;
  Executor.set_unit engine [ driver ];
  let drv = Module_map.entry engine.Executor.modules driver |> Option.get in
  let coverage =
    Coverage.attach ~timeline_range:(drv.code_start, drv.code_end) engine
  in
  let tracer =
    Tracer.attach ~trace_mem:true ~only_range:(drv.code_start, drv.code_end)
      engine
  in
  let _killer = Path_killer.attach ~max_repeats:3000 engine in
  (match mode with
  | `Rev_plus ->
      (* The platform's selectors: registry injection plus coverage-guided
         scheduling. *)
      let reg =
        Registry.attach engine ~query_entry:(Guest.symbol img "reg_query_int")
      in
      Registry.watch reg ~key:"CardType" ~values:[ 1; 2; 7 ];
      Registry.watch reg ~key:"TxMode" ~values:[ 1; 2 ];
      Registry.watch reg ~key:"Promisc" ~values:[ 0; 1 ];
      Registry.watch reg ~key:"Mtu" ~values:[ 1500; 9000 ];
      (* Keep the allocator's contract: an unconstrained pointer would send
         every send/receive path into wild memory and kill it before the
         later entry points execute.  The annotation (which overrides the
         blanket RC-OC return policy) forks a NULL-return path instead. *)
      Annotation.on_return engine ~callee:(Guest.symbol img "alloc")
        (fun t s ->
          match Expr.to_const (State.get_reg s 0) with
          | Some base when base <> 0L ->
              let child = Executor.plugin_fork t s in
              State.set_reg child 0 (Expr.const 0L)
          | _ -> ())
  | `Revnic_baseline -> ());
  let s0 = Executor.boot engine ~entry:img.entry () in
  ignore
    (S2e_vm.Netdev.inject_frame s0.State.devices.netdev
       (Array.init 20 (fun i -> (i * 3) land 0xff)));
  let started = Unix.gettimeofday () in
  ignore
    (Executor.run
       ~limits:
         {
           Executor.max_instructions = Some max_instructions;
           max_seconds = Some max_seconds;
           max_completed = None;
         }
       engine s0);
  let seconds = Unix.gettimeofday () -. started in
  let total = Module_map.code_insns drv in
  let covered = Coverage.covered_in_range coverage drv.code_start drv.code_end in
  let entry_points =
    List.filter_map
      (fun n ->
        match S2e_isa.Asm.symbol img.linked.image n with
        | a -> Some (n, a)
        | exception _ -> None)
      entry_point_names
  in
  let cfg = recover_cfg (Tracer.finished_traces tracer) ~entry_points in
  let timeline =
    List.map
      (fun (instret, count) -> (instret, float_of_int count /. float_of_int total))
      (Coverage.timeline coverage)
  in
  {
    driver;
    mode;
    covered_insns = covered;
    total_insns = total;
    coverage = float_of_int covered /. float_of_int total;
    timeline;
    cfg;
    seconds;
  }
