(** DDT+: automated testing of (closed-source) device drivers
    (paper section 6.1.1).

    Glues together the CodeSelector (the driver module is the unit),
    MemoryChecker, DataRaceDetector, BugCheck and ExecutionTracer plugins,
    with the kernel/driver interface annotations that implement local
    consistency: allocation failure injection at [alloc] returns, registry
    value injection at [reg_query_int] returns, and symbolic arguments for
    the query/set entry points.  Without annotations (e.g. under SC-SE) the
    only symbolic input comes from the simulated hardware. *)

open S2e_core
open S2e_plugins
module Expr = S2e_expr.Expr
module Guest = S2e_guest.Guest

type bug_report = {
  kind : string;
  pc : int;
  message : string; (* first occurrence *)
}

type result = {
  driver : string;
  consistency : Consistency.t;
  bugs : bug_report list; (* distinct by (kind, pc) *)
  paths : int;
  seconds : float;
  coverage : float; (* of the driver module *)
  instructions : int;
}

(* Netdev port range treated as symbolic hardware. *)
let netdev_ports = (S2e_vm.Layout.port_netdev, S2e_vm.Layout.port_netdev + 16)

let build_engine ~driver ~consistency =
  let driver_src = List.assoc driver Guest.drivers in
  let img =
    Guest.build ~driver:(driver, driver_src)
      ~workload:("exerciser", S2e_guest.Workloads_src.exerciser)
      ()
  in
  let config = Executor.default_config () in
  config.consistency <- consistency;
  config.symbolic_hardware_ports <- [ netdev_ports ];
  config.max_fork_depth <- 96;
  let engine = Executor.create ~config () in
  Guest.load_into_engine engine img;
  Executor.set_unit engine [ driver ];
  (engine, img)

(* The LC interface annotations (the "720 LOC of glue" of the paper's DDT+,
   in miniature). *)
let install_lc_annotations engine img checker =
  let alloc_addr = Guest.symbol img "alloc" in
  (* Allocation failure injection: fork a path in which alloc returned
     NULL, and forget the region on that path. *)
  Annotation.on_return engine ~callee:alloc_addr (fun t s ->
      match Expr.to_const (State.get_reg s 0) with
      | Some base when base <> 0L ->
          let child = Executor.plugin_fork t s in
          State.set_reg child 0 (Expr.const 0L);
          Memchecker.forget_region checker child (Int64.to_int base)
      | _ -> ());
  (* Registry value injection. *)
  let reg = Registry.attach engine ~query_entry:(Guest.symbol img "reg_query_int") in
  Registry.watch reg ~key:"CardType" ~values:[ 1; 2; 7 ];
  Registry.watch reg ~key:"TxMode" ~values:[ 1; 2 ];
  Registry.watch reg ~key:"Promisc" ~values:[ 0; 1; 2 ];
  Registry.watch reg ~key:"Mtu" ~values:[ 1500; 9000 ];
  (* Symbolic arguments for the information handlers (the paper's
     QueryInformationHandler / SetInformationHandler). *)
  Annotation.value_at engine
    ~addr:(Guest.symbol img "driver_query")
    ~reg:0 ~name:"query_code" ~lo:0 ~hi:(1 lsl 20);
  Annotation.value_at engine
    ~addr:(Guest.symbol img "driver_set")
    ~reg:0 ~name:"set_code" ~lo:0 ~hi:255

(** Test [driver] under [consistency].  Returns the distinct bugs found. *)
let run ?(max_seconds = 20.0) ?(max_instructions = 3_000_000) ~driver
    ~consistency () =
  S2e_solver.Solver.reset_stats ();
  let engine, img = build_engine ~driver ~consistency in
  let coverage = Coverage.attach engine in
  let checker =
    Memchecker.attach engine
      ~alloc_addr:(Guest.symbol img "alloc")
      ~free_addr:(Guest.symbol img "kfree")
      ~unit_name:driver
  in
  let _races = Race_detector.attach engine in
  let _bugcheck = Bugcheck.attach engine ~panic_addr:(Guest.symbol img "panic") in
  let _killer = Path_killer.attach ~max_repeats:3000 engine in
  let bugs = ref [] in
  Events.reg_bug engine.Executor.events (fun b ->
      if
        not
          (List.exists
             (fun r -> r.kind = b.Events.bug_kind && r.pc = b.bug_pc)
             !bugs)
      then
        bugs :=
          { kind = b.bug_kind; pc = b.bug_pc; message = b.bug_message } :: !bugs);
  (match consistency with
  | Consistency.LC | Consistency.RC_OC -> install_lc_annotations engine img checker
  | Consistency.SC_CE | Consistency.SC_UE | Consistency.SC_SE | Consistency.RC_CC
    ->
      ());
  let s0 = Executor.boot engine ~entry:img.entry () in
  (* Deliver one frame so receive paths have concrete traffic too. *)
  ignore
    (S2e_vm.Netdev.inject_frame s0.State.devices.netdev
       (Array.init 24 (fun i -> (i * 7) land 0xff)));
  let started = Unix.gettimeofday () in
  let paths =
    Executor.run
      ~limits:
        {
          Executor.max_instructions = Some max_instructions;
          max_seconds = Some max_seconds;
          max_completed = None;
        }
      engine s0
  in
  let seconds = Unix.gettimeofday () -. started in
  {
    driver;
    consistency;
    bugs = List.rev !bugs;
    paths;
    seconds;
    coverage = Coverage.module_coverage coverage driver;
    instructions = engine.Executor.stats.concrete_instret;
  }

(* Filter to the seeded memory/race bug classes (ignores duplicate fault
   reports for the same root cause). *)
let seeded_bug_count r =
  List.length
    (List.filter (fun b -> b.kind = "memory" || b.kind = "race") r.bugs)

let pp_result ppf r =
  Fmt.pf ppf "%s under %s: %d paths, %.1fs, %.0f%% coverage, %d bugs@."
    r.driver
    (Consistency.name r.consistency)
    r.paths r.seconds (100. *. r.coverage)
    (List.length r.bugs);
  List.iter
    (fun b -> Fmt.pf ppf "  [%s] pc=0x%x %s@." b.kind b.pc b.message)
    r.bugs
