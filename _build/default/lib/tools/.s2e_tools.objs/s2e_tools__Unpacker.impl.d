lib/tools/unpacker.ml: Bytes Char Consistency Events Executor Fmt Hashtbl List S2e_core S2e_expr S2e_guest S2e_isa S2e_vm
