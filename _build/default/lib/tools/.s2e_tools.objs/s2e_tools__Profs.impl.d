lib/tools/profs.ml: Consistency Events Executor Int64 List Option Path_killer Perf_profile S2e_core S2e_expr S2e_guest S2e_plugins S2e_solver S2e_vm State String Symmem Unix
