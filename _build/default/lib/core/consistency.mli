(** Execution consistency models (paper section 3): the systematic way to
    trade path realism for exploration cost.  Each model is characterised
    by what happens to symbolic data at the unit/environment boundary. *)

type t =
  | SC_CE  (** strictly consistent concrete execution: single path *)
  | SC_UE  (** strict, unit-level: environment is a black box *)
  | SC_SE  (** strict, system-level: symbolic everywhere; complete *)
  | LC     (** local consistency: contract-constrained injections *)
  | RC_OC  (** overapproximate: unconstrained env returns; complete *)
  | RC_CC  (** CFG consistency: follow every edge, no solver *)

val all : t list
val name : t -> string

val of_name : string -> t
(** Case-insensitive; @raise Invalid_argument on unknown names. *)

val fork_in_env : t -> bool
(** May the environment itself execute in multi-path mode? *)

type env_branch_policy =
  | Follow_symbolic (** SC-SE: fork inside the environment *)
  | Concretize      (** pin a feasible value and continue *)
  | Abort           (** LC: inconsistency reached environment control flow *)

val env_branch : t -> env_branch_policy

type return_policy =
  | Keep          (** strict models: the actual return value *)
  | Contract      (** LC: symbolic within the interface contract *)
  | Unconstrained (** RC-OC: fresh unconstrained symbolic value *)

val env_return : t -> return_policy

val check_feasibility : t -> bool
(** Are branch directions checked with the solver?  [false] for RC-CC. *)

val symbolic_hardware : t -> bool
(** Do device port reads return fresh symbolic values? *)

val concretized_hardware : t -> bool
(** SC-UE: hardware reads are symbolic values instantly pinned to an
    arbitrary concrete value ("blind selection", section 3.1.1). *)

val concretize_at_call : t -> bool
(** Eagerly concretize registers when the unit calls the environment. *)

val is_consistent : t -> bool
(** Paper Table 1, consistency column (LC counts as locally consistent). *)

val is_complete : t -> bool
(** Paper Table 1, completeness column. *)
