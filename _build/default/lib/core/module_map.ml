(** Map of loaded guest modules (kernel, libraries, drivers, programs).

    The engine uses it to decide whether the current program counter is in
    the {e unit} (the code under analysis) or the {e environment}
    (everything else), and plugins use it for coverage accounting. *)

type entry = {
  name : string;
  code_start : int;
  code_end : int; (* executable code only *)
  data_end : int;
}

type t = { mutable entries : entry list }

let create () = { entries = [] }

let add t ~name ~code_start ~code_end ~data_end =
  t.entries <- { name; code_start; code_end; data_end } :: t.entries

let find t addr =
  List.find_opt (fun e -> addr >= e.code_start && addr < e.data_end) t.entries

let find_code t addr =
  List.find_opt (fun e -> addr >= e.code_start && addr < e.code_end) t.entries

let entry t name = List.find_opt (fun e -> e.name = name) t.entries

(** Number of instruction slots in a module's code range: the denominator
    of basic-block coverage figures. *)
let code_insns e = (e.code_end - e.code_start) / S2e_isa.Insn.insn_size
