(** Execution-tree recorder.

    Mirrors the paper's picture of multi-path execution as a tree that
    grows in width inside the symbolic domain and only in depth inside the
    concrete domain (section 2, Fig. 1).  Attach one to an engine to record
    every fork and path end; useful for debugging selectors and for
    reporting exploration structure. *)

module Expr = S2e_expr.Expr

type node = {
  n_id : int;
  n_parent : int; (* 0 for the root *)
  n_fork_pc : int; (* pc at which this node was created *)
  n_cond : Expr.t option; (* branch condition (parent took it) *)
  mutable n_children : int list;
  mutable n_status : string; (* "live" until the path ends *)
}

type t = {
  nodes : (int, node) Hashtbl.t;
  mutable root : int;
  mutable forks : int;
  mutable max_depth : int;
}

let attach engine =
  let t = { nodes = Hashtbl.create 256; root = 0; forks = 0; max_depth = 0 } in
  let ensure (s : State.t) =
    match Hashtbl.find_opt t.nodes s.State.id with
    | Some n -> n
    | None ->
        let n =
          { n_id = s.State.id; n_parent = s.State.parent;
            n_fork_pc = s.State.pc; n_cond = None; n_children = [];
            n_status = "live" }
        in
        Hashtbl.replace t.nodes s.State.id n;
        if t.root = 0 then t.root <- s.State.id;
        n
  in
  Events.reg_fork engine.Executor.events (fun parent child cond ->
      t.forks <- t.forks + 1;
      if child.State.depth > t.max_depth then t.max_depth <- child.State.depth;
      let pn = ensure parent in
      let cn = ensure child in
      Hashtbl.replace t.nodes child.State.id { cn with n_cond = Some cond };
      pn.n_children <- child.State.id :: pn.n_children);
  Events.reg_state_end engine.Executor.events (fun s ->
      let n = ensure s in
      n.n_status <- State.status_string s.State.status);
  t

let node t id = Hashtbl.find_opt t.nodes id

let size t = Hashtbl.length t.nodes

(* Depth of the tree below [id]. *)
let rec depth_below t id =
  match node t id with
  | None -> 0
  | Some n ->
      1 + List.fold_left (fun acc c -> max acc (depth_below t c)) 0 n.n_children

(** Leaves (terminated or still-live paths with no children). *)
let leaves t =
  Hashtbl.fold (fun _ n acc -> if n.n_children = [] then n :: acc else acc)
    t.nodes []

(** Render the tree as indented text, conditions included. *)
let pp ppf t =
  let rec go indent id =
    match node t id with
    | None -> ()
    | Some n ->
        Fmt.pf ppf "%s#%d @@0x%x [%s]%a@." indent n.n_id n.n_fork_pc n.n_status
          (fun ppf -> function
            | Some c -> Fmt.pf ppf " if %a" Expr.pp c
            | None -> ())
          n.n_cond;
        List.iter (go (indent ^ "  ")) (List.rev n.n_children)
  in
  go "" t.root
