(** Execution consistency models (paper section 3).

    Each model is characterised by how the engine treats the
    unit/environment boundary and symbolic data inside the environment:

    - {b SC-CE}: no symbolic data at all — plain concrete execution.
    - {b SC-UE}: symbolic data is concretized (with the soft constraint
      promoted to a hard one) when the unit calls the environment; the
      environment is a black box, never forked.
    - {b SC-SE}: symbolic data flows everywhere; the environment executes
      symbolically too.  Consistent and complete, but path explosion moves
      into the (much larger) environment.
    - {b LC}: the environment runs concretely, but values it returns to the
      unit are replaced by symbolic values constrained by the interface
      contract (via annotations).  If the environment ever branches on
      symbolic data the unit handed it, the path is aborted to preserve the
      unit's local consistency.
    - {b RC-OC}: like LC but environment return values (and symbolic
      hardware reads) are completely unconstrained — inconsistent but
      complete; right for reverse engineering.
    - {b RC-CC}: branches in the unit follow both edges of the CFG without
      feasibility checks or constraint tracking. *)

type t = SC_CE | SC_UE | SC_SE | LC | RC_OC | RC_CC

let all = [ SC_CE; SC_UE; SC_SE; LC; RC_OC; RC_CC ]

let name = function
  | SC_CE -> "SC-CE"
  | SC_UE -> "SC-UE"
  | SC_SE -> "SC-SE"
  | LC -> "LC"
  | RC_OC -> "RC-OC"
  | RC_CC -> "RC-CC"

let of_name s =
  match String.uppercase_ascii s with
  | "SC-CE" -> SC_CE
  | "SC-UE" -> SC_UE
  | "SC-SE" -> SC_SE
  | "LC" -> LC
  | "RC-OC" -> RC_OC
  | "RC-CC" -> RC_CC
  | _ -> invalid_arg (Printf.sprintf "unknown consistency model %S" s)

(** May the environment itself be executed in multi-path mode? *)
let fork_in_env = function
  | SC_SE -> true
  | SC_CE | SC_UE | LC | RC_OC | RC_CC -> false

(** What to do when the environment branches on a symbolic value. *)
type env_branch_policy =
  | Follow_symbolic (* SC-SE: fork in the environment *)
  | Concretize      (* pick one feasible value, add it as a hard constraint *)
  | Abort           (* LC: the inconsistency reached the environment's control flow *)

let env_branch = function
  | SC_SE -> Follow_symbolic
  | SC_CE | SC_UE | RC_OC | RC_CC -> Concretize
  | LC -> Abort

(** What replaces a value the environment returns to the unit. *)
type return_policy =
  | Keep            (* strict models: the actual (possibly constrained) value *)
  | Contract        (* LC: symbolic within the API contract (annotations) *)
  | Unconstrained   (* RC-OC: fresh unconstrained symbolic value *)

let env_return = function
  | SC_CE | SC_UE | SC_SE -> Keep
  | LC -> Contract
  | RC_OC -> Unconstrained
  | RC_CC -> Keep

(** Must branch feasibility be checked with the solver in the unit? *)
let check_feasibility = function
  | RC_CC -> false
  | SC_CE | SC_UE | SC_SE | LC | RC_OC -> true

(** Do symbolic hardware reads (I/O ports) return symbolic values?  The
    hardware is outside the system, so under SC-SE it is the one legitimate
    symbolic input source ("the only symbolic input comes from hardware",
    section 6.1.1); LC and RC-OC keep it symbolic too, differing in how
    API-contract values are constrained.  SC-UE concretizes the fresh value
    immediately to an arbitrary admissible one — which is exactly why
    drivers fail to load under SC-UE in section 6.3. *)
let symbolic_hardware = function
  | SC_SE | LC | RC_OC -> true
  | SC_CE | SC_UE | RC_CC -> false

(** SC-UE: hardware reads become fresh symbolic values that are instantly
    pinned to an arbitrary concrete value ("blind selection of concrete
    arguments", section 3.1.1). *)
let concretized_hardware = function
  | SC_UE -> true
  | SC_CE | SC_SE | LC | RC_OC | RC_CC -> false

(** Should symbolic data be eagerly concretized when the unit calls into
    the environment?  (SC-UE treats the environment as a black box.) *)
let concretize_at_call = function
  | SC_UE -> true
  | SC_CE | SC_SE | LC | RC_OC | RC_CC -> false

let is_consistent = function
  | SC_CE | SC_UE | SC_SE -> true
  | LC -> true (* locally *)
  | RC_OC | RC_CC -> false

let is_complete = function
  | SC_SE | RC_OC | RC_CC -> true
  | SC_CE | SC_UE | LC -> false
