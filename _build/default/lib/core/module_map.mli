(** Map of loaded guest modules.  The engine uses it to decide whether the
    program counter is in the unit or the environment; coverage accounting
    uses it for per-module denominators. *)

type entry = {
  name : string;
  code_start : int;
  code_end : int; (** end of executable code *)
  data_end : int; (** end of the module including data *)
}

type t

val create : unit -> t
val add : t -> name:string -> code_start:int -> code_end:int -> data_end:int -> unit

val find : t -> int -> entry option
(** Module containing an address (code or data). *)

val find_code : t -> int -> entry option
(** Module whose executable code contains an address. *)

val entry : t -> string -> entry option

val code_insns : entry -> int
(** Instruction slots in the module's code range: the coverage
    denominator. *)
