lib/core/module_map.mli:
