lib/core/events.ml: Expr List S2e_expr S2e_isa State
