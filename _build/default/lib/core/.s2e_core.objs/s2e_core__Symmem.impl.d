lib/core/symmem.ml: Array Buffer Bytes Char Expr Fmt Int Int64 Map S2e_expr Seq
