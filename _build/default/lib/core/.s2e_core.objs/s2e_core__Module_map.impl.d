lib/core/module_map.ml: List S2e_isa
