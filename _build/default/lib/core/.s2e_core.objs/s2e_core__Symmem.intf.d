lib/core/symmem.mli: Bytes Expr S2e_expr
