lib/core/searcher.mli: State
