lib/core/searcher.ml: Hashtbl List Printf Queue Random State
