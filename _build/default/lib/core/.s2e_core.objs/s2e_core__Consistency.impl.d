lib/core/consistency.ml: Printf String
