lib/core/tree.ml: Events Executor Fmt Hashtbl List S2e_expr State
