lib/core/executor.ml: Array Bytes Consistency Events Expr Hashtbl Insn Int32 Int64 List Module_map Printf S2e_dbt S2e_expr S2e_isa S2e_solver S2e_vm Searcher Simplifier State Symmem Unix
