lib/core/state.mli: Expr S2e_expr S2e_vm Symmem
