lib/core/consistency.mli:
