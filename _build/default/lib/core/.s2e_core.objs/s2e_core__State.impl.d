lib/core/state.ml: Array Expr List S2e_expr S2e_isa S2e_vm Symmem
