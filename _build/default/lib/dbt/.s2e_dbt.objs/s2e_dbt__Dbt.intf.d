lib/dbt/dbt.mli: Insn S2e_isa
