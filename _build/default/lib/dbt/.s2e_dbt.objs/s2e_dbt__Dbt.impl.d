lib/dbt/dbt.ml: Array Hashtbl Insn List S2e_isa
