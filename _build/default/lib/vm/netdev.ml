(** Simulated network interface card.

    A port-programmed NIC with an RX FIFO readable either byte-by-byte
    through the DATA port (RTL8029-style programmed I/O) or via a DMA
    command that copies the pending frame into guest memory (PCnet-style).
    Receiving a frame raises the netdev IRQ.  The device also exposes a
    card-type identifier that drivers branch on, mirroring the CardType
    registry behaviour discussed in the paper's evaluation.

    Port offsets (from {!Layout.port_netdev}):
    - 0 STATUS (in): bit0 link, bit1 rx-ready, bit2 tx-done, bits 8..15 card id
    - 1 CMD (out): 1 reset, 2 enable rx, 3 tx start, 4 ack irq, 5 dma rx,
      6 rx done (pop the consumed frame)
    - 2 DATA: in = next rx byte, out = append tx byte
    - 3 RX_LEN (in)
    - 4 TX_STATUS (in)
    - 5 IRQ_MASK (out)
    - 6 DMA_ADDR (out)
    - 7 DMA_LEN (out)
    - 8 MAC (in): successive reads return the 6 MAC bytes *)

type t = {
  card_id : int;
  mutable link_up : bool;
  mutable rx_enabled : bool;
  mutable irq_mask : int;
  mutable rx_queue : int array list; (* pending frames, oldest first *)
  mutable rx_pos : int;              (* read cursor into head frame *)
  mutable tx_buf : int list;         (* bytes written so far, reversed *)
  mutable tx_frames : int array list;(* completed transmissions, newest first *)
  mutable dma_addr : int;
  mutable dma_len : int;
  mutable mac_pos : int;
  mutable irq_pending : bool;
}

let mac = [| 0x52; 0x54; 0x00; 0xbe; 0xef; 0x01 |]

let create ?(card_id = 1) () =
  {
    card_id;
    link_up = true;
    rx_enabled = false;
    irq_mask = 0;
    rx_queue = [];
    rx_pos = 0;
    tx_buf = [];
    tx_frames = [];
    dma_addr = 0;
    dma_len = 0;
    mac_pos = 0;
    irq_pending = false;
  }

let clone t = { t with rx_queue = t.rx_queue }

(** Deliver a frame to the device (the workload generator's entry point).
    Returns the IRQ-raise action when the driver unmasked interrupts. *)
let inject_frame t frame : Device.action list =
  t.rx_queue <- t.rx_queue @ [ frame ];
  if t.rx_enabled && t.irq_mask land 1 <> 0 then begin
    t.irq_pending <- true;
    [ Device.Raise_irq Layout.irq_netdev ]
  end
  else []

let head_frame t = match t.rx_queue with [] -> None | f :: _ -> Some f

let read_port t off =
  match off with
  | 0 ->
      (if t.link_up then 1 else 0)
      lor (if t.rx_queue <> [] then 2 else 0)
      lor 4 (* tx always ready in simulation *)
      lor (t.card_id lsl 8)
  | 2 -> (
      match head_frame t with
      | Some f when t.rx_pos < Array.length f ->
          let b = f.(t.rx_pos) in
          t.rx_pos <- t.rx_pos + 1;
          b
      | _ -> 0)
  | 3 -> ( match head_frame t with Some f -> Array.length f | None -> 0)
  | 4 -> 1
  | 8 ->
      let b = mac.(t.mac_pos mod 6) in
      t.mac_pos <- t.mac_pos + 1;
      b
  | _ -> 0

let pop_frame t =
  (match t.rx_queue with [] -> () | _ :: rest -> t.rx_queue <- rest);
  t.rx_pos <- 0

let write_port t off v : Device.action list =
  match off with
  | 1 -> (
      match v with
      | 1 ->
          (* Reset clears device-side state but keeps queued frames so a
             reset-then-enable init sequence can still receive traffic the
             harness injected before boot. *)
          t.rx_enabled <- false;
          t.rx_pos <- 0;
          t.tx_buf <- [];
          t.mac_pos <- 0;
          t.irq_pending <- false;
          []
      | 2 ->
          t.rx_enabled <- true;
          (* Frames queued before receive was enabled raise the IRQ now. *)
          if t.rx_queue <> [] && t.irq_mask land 1 <> 0 then begin
            t.irq_pending <- true;
            [ Device.Raise_irq Layout.irq_netdev ]
          end
          else []
      | 3 ->
          (* tx start: commit accumulated bytes as one frame *)
          t.tx_frames <- Array.of_list (List.rev t.tx_buf) :: t.tx_frames;
          t.tx_buf <- [];
          []
      | 4 ->
          t.irq_pending <- false;
          []
      | 5 -> (
          (* DMA the pending frame into guest memory *)
          match head_frame t with
          | Some f ->
              let n = min t.dma_len (Array.length f) in
              [ Device.Dma_write { addr = t.dma_addr; data = Array.sub f 0 n } ]
          | None -> [])
      | 6 ->
          pop_frame t;
          []
      | _ -> [])
  | 2 ->
      t.tx_buf <- (v land 0xff) :: t.tx_buf;
      []
  | 5 ->
      t.irq_mask <- v;
      []
  | 6 ->
      t.dma_addr <- v;
      []
  | 7 ->
      t.dma_len <- v;
      []
  | _ -> []

let transmitted t = List.rev t.tx_frames
