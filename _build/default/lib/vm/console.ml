(** Console device: one output port; reads return a ready status. *)

type t = { mutable out : string }

let create () = { out = "" }
let clone t = { out = t.out }

let read_port t off = match off with 1 -> 1 | _ -> ignore t; 0

let write_port t off v : Device.action list =
  if off = 0 then t.out <- t.out ^ String.make 1 (Char.chr (v land 0xff));
  []

let output t = t.out
