(** The machine's device complement, dispatched by port number.  This record
    is part of every execution state and must be cloned on fork. *)

type t = { console : Console.t; timer : Timer.t; netdev : Netdev.t }

let create ?card_id () =
  { console = Console.create (); timer = Timer.create (); netdev = Netdev.create ?card_id () }

let clone t =
  {
    console = Console.clone t.console;
    timer = Timer.clone t.timer;
    netdev = Netdev.clone t.netdev;
  }

(* Decompose an absolute port number into (device, offset). *)
let read_port t port =
  if port >= Layout.port_netdev then Netdev.read_port t.netdev (port - Layout.port_netdev)
  else if port >= Layout.port_timer then Timer.read_port t.timer (port - Layout.port_timer)
  else Console.read_port t.console (port - Layout.port_console)

let write_port t port v : Device.action list =
  if port >= Layout.port_netdev then Netdev.write_port t.netdev (port - Layout.port_netdev) v
  else if port >= Layout.port_timer then Timer.write_port t.timer (port - Layout.port_timer) v
  else Console.write_port t.console (port - Layout.port_console) v

(** Advance device time by [n] instruction ticks; returns pending IRQ
    numbers. *)
let tick t n = if Timer.tick t.timer n then [ Layout.irq_timer ] else []
