(** Guest physical memory and I/O port layout. *)

let ram_size = 1 lsl 20 (* 1 MiB *)

(* Vector table (word addresses at the base of RAM). *)
let vec_reset = 0x0
let vec_irq = 0x4
let vec_syscall = 0x8
let vec_fault = 0xc

(* Images are linked at this origin; the stack grows down from the top of
   RAM. *)
let image_origin = 0x1000
let stack_top = ram_size - 16

(* I/O port bases. *)
let port_console = 0x00
let port_timer = 0x10
let port_netdev = 0x20

(* Registry (guest configuration store) region: the image builder places
   key/value records here; the kernel reads them like the Windows registry
   reads hives.  The RegistrySelector plugin overlays symbolic bytes on
   selected values. *)
let registry_base = 0x0800
let registry_size = 0x0800

let irq_timer = 0
let irq_netdev = 1
