(** Concrete full-system virtual machine: the "vanilla VM" baseline of the
    paper's overhead measurements, and the oracle the compiler and guest
    test suites run against.  Shares {!S2e_isa.Insn} semantics and the
    {!Devices} models with the symbolic engine. *)

type status =
  | Running
  | Halted
  | Faulted of string

type t = {
  mem : Bytes.t;
  regs : int array; (** values in [0, 2^32) *)
  mutable pc : int;
  mutable irq_enabled : bool;
  mutable in_irq : bool;
  mutable iepc : int;
  mutable sepc : int;
  mutable last_irq : int;
  mutable pending_irqs : int list;
  mutable status : status;
  mutable instret : int;
  devices : Devices.t;
}

val create : ?card_id:int -> unit -> t

val load_image : t -> S2e_isa.Asm.image -> unit
(** Copy the image into RAM, point pc at its origin and set up the stack. *)

val read8 : t -> int -> int
val write8 : t -> int -> int -> unit
val read32 : t -> int -> int
val write32 : t -> int -> int -> unit

val step : t -> unit
(** Execute one instruction (including interrupt delivery and device
    ticks).  Faults change [status] instead of raising. *)

val run : ?fuel:int -> t -> status
(** Run until halt/fault or [fuel] instructions ([Running] on timeout). *)

val console_output : t -> string
