(** Timer device: raises the timer IRQ every [interval] ticks once enabled.
    One tick is one executed guest instruction; the engine slows this virtual
    clock down while running symbolically (paper section 5, "handling time"). *)

type t = {
  mutable enabled : bool;
  mutable interval : int;
  mutable countdown : int;
  mutable fired : int;
}

let create () = { enabled = false; interval = 10_000; countdown = 10_000; fired = 0 }

let clone t =
  { enabled = t.enabled; interval = t.interval; countdown = t.countdown; fired = t.fired }

let read_port t off =
  match off with
  | 0 -> if t.enabled then 1 else 0
  | 1 -> t.interval
  | 2 -> t.fired
  | _ -> 0

let write_port t off v : Device.action list =
  (match off with
  | 0 ->
      t.enabled <- v <> 0;
      t.countdown <- t.interval
  | 1 ->
      t.interval <- max 1 v;
      t.countdown <- t.interval
  | _ -> ());
  []

(** Advance by [n] ticks; returns true when the IRQ line should be raised. *)
let tick t n =
  if not t.enabled then false
  else begin
    t.countdown <- t.countdown - n;
    if t.countdown <= 0 then begin
      t.countdown <- t.countdown + t.interval;
      t.fired <- t.fired + 1;
      true
    end
    else false
  end
