(** Simulated network interface card.

    A port-programmed NIC with an RX FIFO readable byte-by-byte through the
    DATA port (RTL8029-style programmed I/O) or via a DMA command that
    copies the pending frame into guest memory (PCnet-style).  Exposes a
    card-type identifier in STATUS bits 8–15 that drivers branch on.

    Port offsets from {!Layout.port_netdev}: 0 STATUS (bit0 link, bit1
    rx-ready, bit2 tx-done), 1 CMD (1 reset, 2 enable rx, 3 tx, 4 ack irq,
    5 dma rx, 6 rx done), 2 DATA, 3 RX_LEN, 4 TX_STATUS, 5 IRQ_MASK,
    6 DMA_ADDR, 7 DMA_LEN, 8 MAC. *)

type t = {
  card_id : int;
  mutable link_up : bool;
  mutable rx_enabled : bool;
  mutable irq_mask : int;
  mutable rx_queue : int array list;
  mutable rx_pos : int;
  mutable tx_buf : int list;
  mutable tx_frames : int array list;
  mutable dma_addr : int;
  mutable dma_len : int;
  mutable mac_pos : int;
  mutable irq_pending : bool;
}

val create : ?card_id:int -> unit -> t
val clone : t -> t

val inject_frame : t -> int array -> Device.action list
(** Deliver a frame (the workload generator's entry point).  Returns the
    IRQ action when the driver has receive and the IRQ unmasked. *)

val read_port : t -> int -> int
val write_port : t -> int -> int -> Device.action list

val transmitted : t -> int array list
(** Frames the driver transmitted, oldest first. *)
