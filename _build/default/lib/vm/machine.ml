(** Concrete full-system virtual machine.

    This is the "vanilla VM" of the evaluation: a direct interpreter over
    concrete state, with devices, interrupts and syscalls.  The symbolic
    engine in [lib/core] implements the same guest semantics over symbolic
    state; sharing {!S2e_isa.Insn} and {!Devices} keeps the two in sync. *)

open S2e_isa

type status =
  | Running
  | Halted
  | Faulted of string

type t = {
  mem : Bytes.t;
  regs : int array; (* values in [0, 2^32) *)
  mutable pc : int;
  mutable irq_enabled : bool;
  mutable in_irq : bool;
  mutable iepc : int; (* return address for iret *)
  mutable sepc : int; (* return address for sysret *)
  mutable last_irq : int;
  mutable pending_irqs : int list;
  mutable status : status;
  mutable instret : int; (* retired instruction count *)
  devices : Devices.t;
}

let mask32 v = v land 0xFFFFFFFF

let create ?card_id () =
  {
    mem = Bytes.make Layout.ram_size '\000';
    regs = Array.make Insn.num_regs 0;
    pc = Layout.image_origin;
    irq_enabled = false;
    in_irq = false;
    iepc = 0;
    sepc = 0;
    last_irq = 0;
    pending_irqs = [];
    status = Running;
    instret = 0;
    devices = Devices.create ?card_id ();
  }

let load_image t (img : Asm.image) =
  Bytes.blit img.code 0 t.mem img.origin (Bytes.length img.code);
  t.pc <- img.origin;
  t.regs.(Insn.reg_sp) <- Layout.stack_top

exception Fault of string

let check_addr t addr len =
  if addr < 0 || addr + len > Bytes.length t.mem then
    raise (Fault (Printf.sprintf "memory access out of range: 0x%x" addr))

let read8 t addr =
  check_addr t addr 1;
  Char.code (Bytes.get t.mem addr)

let write8 t addr v =
  check_addr t addr 1;
  Bytes.set t.mem addr (Char.chr (v land 0xff))

let read32 t addr =
  check_addr t addr 4;
  Int32.to_int (Bytes.get_int32_le t.mem addr) land 0xFFFFFFFF

let write32 t addr v =
  check_addr t addr 4;
  Bytes.set_int32_le t.mem addr (Int32.of_int (mask32 v))

let get_reg t r = if r = Insn.reg_zero then 0 else t.regs.(r)
let set_reg t r v = if r <> Insn.reg_zero then t.regs.(r) <- mask32 v

let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let alu_eval op a b =
  match op with
  | Insn.Add -> a + b
  | Insn.Sub -> a - b
  | Insn.Mul -> a * b
  | Insn.Divu -> if b = 0 then 0xFFFFFFFF else a / b
  | Insn.Remu -> if b = 0 then a else a mod b
  | Insn.And -> a land b
  | Insn.Or -> a lor b
  | Insn.Xor -> a lxor b
  | Insn.Shl -> a lsl (b land 31)
  | Insn.Shr -> a lsr (b land 31)
  | Insn.Sar -> to_signed a asr (b land 31)
  | Insn.Slt -> if to_signed a < to_signed b then 1 else 0
  | Insn.Sltu -> if a < b then 1 else 0
  | Insn.Seq -> if a = b then 1 else 0

let branch_taken cond a b =
  match cond with
  | Insn.Beq -> a = b
  | Insn.Bne -> a <> b
  | Insn.Blt -> to_signed a < to_signed b
  | Insn.Bge -> to_signed a >= to_signed b
  | Insn.Bltu -> a < b
  | Insn.Bgeu -> a >= b

let apply_actions t actions =
  List.iter
    (fun action ->
      match action with
      | Device.Dma_write { addr; data } ->
          Array.iteri (fun i b -> write8 t (addr + i) b) data
      | Device.Raise_irq irq -> t.pending_irqs <- t.pending_irqs @ [ irq ])
    actions

let deliver_irq t irq =
  t.last_irq <- irq;
  t.iepc <- t.pc;
  t.in_irq <- true;
  t.irq_enabled <- false;
  t.pc <- read32 t Layout.vec_irq

(* Special machine ports handled outside the device complement. *)
let port_irq_cause = 0x0f

let step t =
  match t.status with
  | Halted | Faulted _ -> ()
  | Running -> (
      try
        (* Interrupt delivery happens between instructions. *)
        (match t.pending_irqs with
        | irq :: rest when t.irq_enabled && not t.in_irq ->
            t.pending_irqs <- rest;
            deliver_irq t irq
        | _ -> ());
        let insn =
          try Insn.decode t.mem t.pc
          with Insn.Invalid_instruction op ->
            raise (Fault (Printf.sprintf "invalid opcode 0x%x at 0x%x" op t.pc))
        in
        let next = t.pc + Insn.insn_size in
        t.instret <- t.instret + 1;
        (match insn with
        | Alu { op; rd; rs1; rs2 } ->
            set_reg t rd (alu_eval op (get_reg t rs1) (get_reg t rs2));
            t.pc <- next
        | Alui { op; rd; rs1; imm } ->
            set_reg t rd (alu_eval op (get_reg t rs1) (mask32 (Int32.to_int imm)));
            t.pc <- next
        | Li { rd; imm } ->
            set_reg t rd (mask32 (Int32.to_int imm));
            t.pc <- next
        | Mov { rd; rs1 } ->
            set_reg t rd (get_reg t rs1);
            t.pc <- next
        | Lw { rd; base; off } ->
            set_reg t rd (read32 t (mask32 (get_reg t base + Int32.to_int off)));
            t.pc <- next
        | Lb { rd; base; off } ->
            set_reg t rd (read8 t (mask32 (get_reg t base + Int32.to_int off)));
            t.pc <- next
        | Sw { src; base; off } ->
            write32 t (mask32 (get_reg t base + Int32.to_int off)) (get_reg t src);
            t.pc <- next
        | Sb { src; base; off } ->
            write8 t (mask32 (get_reg t base + Int32.to_int off)) (get_reg t src);
            t.pc <- next
        | Jmp { target } -> t.pc <- Int32.to_int target land 0xFFFFFFFF
        | Jr { rs1 } -> t.pc <- get_reg t rs1
        | Jal { target } ->
            set_reg t Insn.reg_lr next;
            t.pc <- Int32.to_int target land 0xFFFFFFFF
        | Jalr { rs1 } ->
            let target = get_reg t rs1 in
            set_reg t Insn.reg_lr next;
            t.pc <- target
        | Branch { cond; rs1; rs2; target } ->
            if branch_taken cond (get_reg t rs1) (get_reg t rs2) then
              t.pc <- Int32.to_int target land 0xFFFFFFFF
            else t.pc <- next
        | In { rd; port; port_off } ->
            let p = mask32 (get_reg t port + Int32.to_int port_off) in
            let v =
              if p = port_irq_cause then t.last_irq
              else Devices.read_port t.devices p
            in
            set_reg t rd v;
            t.pc <- next
        | Out { src; port; port_off } ->
            let p = mask32 (get_reg t port + Int32.to_int port_off) in
            apply_actions t (Devices.write_port t.devices p (get_reg t src));
            t.pc <- next
        | Syscall ->
            t.sepc <- next;
            t.pc <- read32 t Layout.vec_syscall
        | Sysret -> t.pc <- t.sepc
        | Iret ->
            t.pc <- t.iepc;
            t.in_irq <- false;
            t.irq_enabled <- true
        | Halt -> t.status <- Halted
        | Cli ->
            t.irq_enabled <- false;
            t.pc <- next
        | Sti ->
            t.irq_enabled <- true;
            t.pc <- next
        | Nop -> t.pc <- next
        | S2e { op; rs1; imm; _ } ->
            (* On bare hardware the S2E opcodes are inert, except for the
               assertion opcode which faults when violated, so concrete runs
               still catch seeded assertion bugs. *)
            (match op with
            | Insn.Assert_op when get_reg t rs1 = 0 ->
                raise (Fault (Printf.sprintf "guest assertion failed (tag %ld)" imm))
            | Insn.Kill_path -> t.status <- Halted
            | _ -> ());
            t.pc <- next);
        let irqs = Devices.tick t.devices 1 in
        List.iter (fun irq -> t.pending_irqs <- t.pending_irqs @ [ irq ]) irqs
      with Fault msg -> t.status <- Faulted msg)

(** Run for at most [fuel] instructions.  Returns the final status
    ([Running] when fuel ran out first). *)
let run ?(fuel = 10_000_000) t =
  let budget = ref fuel in
  while t.status = Running && !budget > 0 do
    step t;
    decr budget
  done;
  t.status

let console_output t = Console.output t.devices.console
