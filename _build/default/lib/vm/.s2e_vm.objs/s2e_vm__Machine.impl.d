lib/vm/machine.ml: Array Asm Bytes Char Console Device Devices Insn Int32 Layout List Printf S2e_isa
