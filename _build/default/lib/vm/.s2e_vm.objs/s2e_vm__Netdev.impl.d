lib/vm/netdev.ml: Array Device Layout List
