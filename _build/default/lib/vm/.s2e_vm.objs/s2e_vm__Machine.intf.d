lib/vm/machine.mli: Bytes Devices S2e_isa
