lib/vm/console.mli: Device
