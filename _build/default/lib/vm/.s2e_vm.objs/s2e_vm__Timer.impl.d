lib/vm/timer.ml: Device
