lib/vm/netdev.mli: Device
