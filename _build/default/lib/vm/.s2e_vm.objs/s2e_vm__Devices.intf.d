lib/vm/devices.mli: Console Device Netdev Timer
