lib/vm/layout.ml:
