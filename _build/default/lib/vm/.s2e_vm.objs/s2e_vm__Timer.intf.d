lib/vm/timer.mli: Device
