lib/vm/device.ml:
