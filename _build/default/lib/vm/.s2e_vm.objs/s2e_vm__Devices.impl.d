lib/vm/devices.ml: Console Device Layout Netdev Timer
