lib/vm/console.ml: Char Device String
