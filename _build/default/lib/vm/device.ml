(** Common device types.

    Devices are plain mutable records with explicit [clone] functions so the
    engine can snapshot them per execution state, exactly like the paper's
    use of QEMU's snapshot mechanism for virtual devices (section 5). *)

(** Side effects a port write can request from the machine.  DMA is
    expressed as data to copy rather than direct memory access so both the
    concrete machine and the symbolic engine can apply it to their own
    notion of memory. *)
type action =
  | Dma_write of { addr : int; data : int array }
  | Raise_irq of int
