(** Abstract syntax of MC, the mini-C dialect guest software is written in.

    MC is deliberately small: [int] (32-bit), [char] (8-bit), pointers and
    one-dimensional arrays; functions with up to six arguments; the usual
    expressions and control flow; and intrinsics ([__in], [__out],
    [__syscall], [__s2e_*]) that lower to single guest instructions.  It is
    large enough to write the guest kernel, drivers and workloads
    idiomatically, which is all the paper's evaluation needs. *)

type ty = T_int | T_char | T_ptr of ty | T_array of ty * int

let rec sizeof = function
  | T_int -> 4
  | T_char -> 1
  | T_ptr _ -> 4
  | T_array (t, n) -> n * sizeof t

(* Size of the element a pointer/array refers to, for pointer arithmetic. *)
let elem_size = function
  | T_ptr t | T_array (t, _) -> sizeof t
  | T_int | T_char -> 1

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor (* short-circuit *)

type unop = Neg | Lnot | Bnot

type expr =
  | Num of int
  | Str of string
  | Ident of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Assign of expr * expr       (* lvalue = expr *)
  | Index of expr * expr        (* a[i] *)
  | Deref of expr
  | Addr_of of expr
  | Call of string * expr list
  | Cond of expr * expr * expr  (* e ? a : b *)

type stmt =
  | S_expr of expr
  | S_decl of ty * string * expr option
  | S_if of expr * stmt * stmt option
  | S_while of expr * stmt
  | S_for of stmt option * expr option * expr option * stmt
  | S_return of expr option
  | S_break
  | S_continue
  | S_block of stmt list
  | S_asm of string (* raw assembly escape hatch *)

type func = {
  name : string;
  params : (ty * string) list;
  locals_hint : unit; (* locals are collected during codegen *)
  body : stmt list;
}

type global = {
  g_ty : ty;
  g_name : string;
  g_init : init option;
}

and init =
  | I_num of int
  | I_str of string
  | I_list of int list

type decl = D_func of func | D_global of global | D_const of string * int

type program = decl list
