(** Code generator: MC AST to guest assembly.

    The generated code uses a simple stack discipline: every expression
    leaves its value in [r0]; binary operators stash the left operand on the
    guest stack.  Arguments are passed in [r0]–[r5], the result comes back
    in [r0], and the prologue spills parameters to frame slots so nested
    calls are safe.  The output is deliberately naive — the point of the
    substrate is to produce real multi-block binary code for the engine to
    chew on, not to win benchmarks. *)

open Ast

exception Error of string

let error fmt = Fmt.kstr (fun m -> raise (Error m)) fmt

type env = {
  module_name : string;
  buf : Buffer.t;
  consts : (string, int) Hashtbl.t;
  globals : (string, ty) Hashtbl.t;
  funcs : (string, int) Hashtbl.t; (* name -> arity *)
  mutable locals : (string * (ty * int)) list; (* name -> fp offset *)
  mutable frame_size : int;
  mutable label_counter : int;
  mutable strings : (string * string) list; (* label, contents *)
  mutable break_labels : string list;
  mutable continue_labels : string list;
}

let emit env fmt = Fmt.kstr (fun s -> Buffer.add_string env.buf ("  " ^ s ^ "\n")) fmt
let emit_label env l = Buffer.add_string env.buf (l ^ ":\n")

let fresh_label env prefix =
  env.label_counter <- env.label_counter + 1;
  Printf.sprintf ".L%s_%s%d" env.module_name prefix env.label_counter

let push env = emit env "subi sp, sp, 4"; emit env "sw r0, 0(sp)"
let pop env reg = emit env "lw %s, 0(sp)" reg; emit env "addi sp, sp, 4"

let string_label env s =
  match List.find_opt (fun (_, s') -> s = s') env.strings with
  | Some (l, _) -> l
  | None ->
      let l = fresh_label env "str" in
      env.strings <- (l, s) :: env.strings;
      l

let lookup_local env name = List.assoc_opt name env.locals

let is_pointerish = function T_ptr _ | T_array _ -> true | T_int | T_char -> false

let load_of ty = match ty with T_char -> "lb" | _ -> "lw"
let store_of ty = match ty with T_char -> "sb" | _ -> "sw"

(* S2E intrinsic names understood by the compiler. *)
let intrinsics =
  [ "__in"; "__out"; "__syscall"; "__halt"; "__cli"; "__sti";
    "__s2e_sym_mem"; "__s2e_sym_int"; "__s2e_enable"; "__s2e_disable";
    "__s2e_print"; "__s2e_kill"; "__s2e_assert"; "__s2e_concretize";
    "__s2e_irq_off"; "__s2e_irq_on" ]

(* Generate [e], leaving its value in r0; returns the expression's type. *)
let rec gen_expr env (e : expr) : ty =
  match e with
  | Num n ->
      emit env "li r0, %d" n;
      T_int
  | Str s ->
      emit env "li r0, %s" (string_label env s);
      T_ptr T_char
  | Ident name -> (
      match Hashtbl.find_opt env.consts name with
      | Some v ->
          emit env "li r0, %d" v;
          T_int
      | None -> (
          match lookup_local env name with
          | Some (T_array _ as ty, off) ->
              emit env "addi r0, fp, %d" off;
              ty
          | Some (ty, off) ->
              emit env "%s r0, %d(fp)" (load_of ty) off;
              ty
          | None -> (
              match Hashtbl.find_opt env.globals name with
              | Some (T_array _ as ty) ->
                  emit env "li r0, %s" name;
                  ty
              | Some ty ->
                  emit env "li r0, %s" name;
                  emit env "%s r0, 0(r0)" (load_of ty);
                  ty
              | None -> error "%s: unbound identifier %s" env.module_name name)))
  | Binop (Land, a, b) ->
      let l_false = fresh_label env "andf" in
      let l_end = fresh_label env "ande" in
      ignore (gen_expr env a);
      emit env "beq r0, zr, %s" l_false;
      ignore (gen_expr env b);
      emit env "sltu r0, zr, r0"; (* normalize to 0/1 *)
      emit env "jmp %s" l_end;
      emit_label env l_false;
      emit env "li r0, 0";
      emit_label env l_end;
      T_int
  | Binop (Lor, a, b) ->
      let l_true = fresh_label env "ort" in
      let l_end = fresh_label env "ore" in
      ignore (gen_expr env a);
      emit env "bne r0, zr, %s" l_true;
      ignore (gen_expr env b);
      emit env "sltu r0, zr, r0";
      emit env "jmp %s" l_end;
      emit_label env l_true;
      emit env "li r0, 1";
      emit_label env l_end;
      T_int
  | Binop (op, a, b) ->
      let ta = gen_expr env a in
      push env;
      let tb = gen_expr env b in
      pop env "r1";
      (* r1 = a, r0 = b *)
      gen_binop env op ta tb
  | Unop (Neg, a) ->
      ignore (gen_expr env a);
      emit env "sub r0, zr, r0";
      T_int
  | Unop (Lnot, a) ->
      ignore (gen_expr env a);
      emit env "seqi r0, r0, 0";
      T_int
  | Unop (Bnot, a) ->
      ignore (gen_expr env a);
      emit env "xori r0, r0, -1";
      T_int
  | Assign (lhs, rhs) ->
      let _ = gen_expr env rhs in
      push env;
      let ty = gen_addr env lhs in
      pop env "r1";
      emit env "%s r1, 0(r0)" (store_of ty);
      emit env "mov r0, r1";
      ty
  | Index (a, i) ->
      let ty = gen_index_addr env a i in
      emit env "%s r0, 0(r0)" (load_of ty);
      ty
  | Deref a ->
      let ty = gen_expr env a in
      let pointee =
        match ty with
        | T_ptr t | T_array (t, _) -> t
        | T_int | T_char -> T_int (* int used as address *)
      in
      emit env "%s r0, 0(r0)" (load_of pointee);
      pointee
  | Addr_of lv ->
      let ty = gen_addr env lv in
      T_ptr ty
  | Cond (c, a, b) ->
      let l_else = fresh_label env "celse" in
      let l_end = fresh_label env "cend" in
      ignore (gen_expr env c);
      emit env "beq r0, zr, %s" l_else;
      let ta = gen_expr env a in
      emit env "jmp %s" l_end;
      emit_label env l_else;
      ignore (gen_expr env b);
      emit_label env l_end;
      ta
  | Call (name, args) when List.mem name intrinsics -> gen_intrinsic env name args
  | Call (name, args) ->
      (match Hashtbl.find_opt env.funcs name with
      | Some arity when arity <> List.length args ->
          error "%s: %s expects %d arguments, got %d" env.module_name name
            arity (List.length args)
      | Some _ -> ()
      | None -> () (* cross-module call: resolved at assembly time *));
      let n = List.length args in
      if n > 6 then error "%s: too many arguments to %s" env.module_name name;
      List.iter
        (fun arg ->
          ignore (gen_expr env arg);
          push env)
        args;
      for i = n - 1 downto 0 do
        pop env (Printf.sprintf "r%d" i)
      done;
      emit env "jal %s" name;
      T_int

and gen_binop env op ta tb =
  (* Pointer arithmetic scaling: p + n and p - n scale n; n + p scales n. *)
  let scale reg ty =
    let s = elem_size ty in
    if s > 1 then emit env "muli %s, %s, %d" reg reg s
  in
  match op with
  | Add ->
      if is_pointerish ta && not (is_pointerish tb) then begin
        scale "r0" ta;
        emit env "add r0, r1, r0";
        ta
      end
      else if is_pointerish tb && not (is_pointerish ta) then begin
        scale "r1" tb;
        emit env "add r0, r1, r0";
        tb
      end
      else begin
        emit env "add r0, r1, r0";
        T_int
      end
  | Sub ->
      if is_pointerish ta && not (is_pointerish tb) then begin
        scale "r0" ta;
        emit env "sub r0, r1, r0";
        ta
      end
      else begin
        emit env "sub r0, r1, r0";
        T_int
      end
  | Mul -> emit env "mul r0, r1, r0"; T_int
  | Div -> emit env "divu r0, r1, r0"; T_int
  | Mod -> emit env "remu r0, r1, r0"; T_int
  | Band -> emit env "and r0, r1, r0"; T_int
  | Bor -> emit env "or r0, r1, r0"; T_int
  | Bxor -> emit env "xor r0, r1, r0"; T_int
  | Shl -> emit env "shl r0, r1, r0"; T_int
  | Shr -> emit env "shr r0, r1, r0"; T_int
  | Lt ->
      if is_pointerish ta || is_pointerish tb then emit env "sltu r0, r1, r0"
      else emit env "slt r0, r1, r0";
      T_int
  | Gt ->
      if is_pointerish ta || is_pointerish tb then emit env "sltu r0, r0, r1"
      else emit env "slt r0, r0, r1";
      T_int
  | Le ->
      if is_pointerish ta || is_pointerish tb then emit env "sltu r0, r0, r1"
      else emit env "slt r0, r0, r1";
      emit env "xori r0, r0, 1";
      T_int
  | Ge ->
      if is_pointerish ta || is_pointerish tb then emit env "sltu r0, r1, r0"
      else emit env "slt r0, r1, r0";
      emit env "xori r0, r0, 1";
      T_int
  | Eq -> emit env "seq r0, r1, r0"; T_int
  | Ne ->
      emit env "seq r0, r1, r0";
      emit env "xori r0, r0, 1";
      T_int
  | Land | Lor -> assert false (* handled above *)

(* Address of an lvalue in r0; returns the type of the addressed object. *)
and gen_addr env (e : expr) : ty =
  match e with
  | Ident name -> (
      match lookup_local env name with
      | Some (ty, off) ->
          emit env "addi r0, fp, %d" off;
          ty
      | None -> (
          match Hashtbl.find_opt env.globals name with
          | Some ty ->
              emit env "li r0, %s" name;
              ty
          | None -> error "%s: cannot take address of %s" env.module_name name))
  | Deref a ->
      let ty = gen_expr env a in
      (match ty with
      | T_ptr t | T_array (t, _) -> t
      | T_int | T_char -> T_int)
  | Index (a, i) -> gen_index_addr env a i
  | _ -> error "%s: expression is not an lvalue" env.module_name

(* Address of a[i] in r0; returns the element type. *)
and gen_index_addr env a i =
  let ta = gen_expr env a in
  let elem =
    match ta with
    | T_ptr t | T_array (t, _) -> t
    | T_int | T_char -> T_char (* indexing an int treats it as a byte ptr *)
  in
  push env;
  ignore (gen_expr env i);
  let s = sizeof elem in
  if s > 1 then emit env "muli r0, r0, %d" s;
  pop env "r1";
  emit env "add r0, r1, r0";
  elem

and gen_intrinsic env name args =
  let nargs = List.length args in
  let eval_args () =
    List.iter (fun a -> ignore (gen_expr env a); push env) args;
    for i = nargs - 1 downto 0 do
      pop env (Printf.sprintf "r%d" i)
    done
  in
  let literal_tag = function
    | Num n -> n
    | _ -> error "%s: s2e tag must be a literal" env.module_name
  in
  match name, args with
  | "__in", [ port ] ->
      ignore (gen_expr env port);
      emit env "in r0, 0(r0)";
      T_int
  | "__out", [ port; v ] ->
      ignore (gen_expr env port);
      push env;
      ignore (gen_expr env v);
      pop env "r1";
      emit env "out r0, 0(r1)";
      T_int
  | "__syscall", _ when nargs >= 1 && nargs <= 4 ->
      eval_args ();
      emit env "syscall";
      T_int
  | "__halt", [] -> emit env "halt"; T_int
  | "__cli", [] -> emit env "cli"; T_int
  | "__sti", [] -> emit env "sti"; T_int
  | "__s2e_sym_mem", [ ptr; len; tag ] ->
      let tag = literal_tag tag in
      ignore (gen_expr env ptr);
      push env;
      ignore (gen_expr env len);
      emit env "mov r1, r0";
      pop env "r0";
      emit env "s2e.symmem r0, r1, %d" tag;
      T_int
  | "__s2e_sym_int", [ tag ] ->
      emit env "s2e.symreg r0, zr, %d" (literal_tag tag);
      T_int
  | "__s2e_enable", [] -> emit env "s2e.enable"; T_int
  | "__s2e_disable", [] -> emit env "s2e.disable"; T_int
  | "__s2e_print", [ v ] ->
      ignore (gen_expr env v);
      emit env "s2e.print r0";
      T_int
  | "__s2e_kill", [ st ] ->
      emit env "s2e.kill zr, %d" (literal_tag st);
      T_int
  | "__s2e_assert", [ c ] ->
      ignore (gen_expr env c);
      emit env "s2e.assert r0";
      T_int
  | "__s2e_concretize", [ v ] ->
      ignore (gen_expr env v);
      emit env "s2e.concretize r0";
      T_int
  | "__s2e_irq_off", [] -> emit env "s2e.cli"; T_int
  | "__s2e_irq_on", [] -> emit env "s2e.sti"; T_int
  | _ -> error "%s: bad intrinsic call %s/%d" env.module_name name nargs

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec gen_stmt env ret_label (s : stmt) =
  match s with
  | S_expr e -> ignore (gen_expr env e)
  | S_decl (_, name, init) -> (
      match init with
      | None -> ()
      | Some e ->
          ignore (gen_expr env (Assign (Ident name, e))))
  | S_if (c, then_, else_) ->
      let l_else = fresh_label env "else" in
      let l_end = fresh_label env "fi" in
      ignore (gen_expr env c);
      emit env "beq r0, zr, %s" l_else;
      gen_stmt env ret_label then_;
      (match else_ with
      | None -> emit_label env l_else
      | Some s ->
          emit env "jmp %s" l_end;
          emit_label env l_else;
          gen_stmt env ret_label s;
          emit_label env l_end)
  | S_while (c, body) ->
      let l_top = fresh_label env "wtop" in
      let l_end = fresh_label env "wend" in
      emit_label env l_top;
      ignore (gen_expr env c);
      emit env "beq r0, zr, %s" l_end;
      env.break_labels <- l_end :: env.break_labels;
      env.continue_labels <- l_top :: env.continue_labels;
      gen_stmt env ret_label body;
      env.break_labels <- List.tl env.break_labels;
      env.continue_labels <- List.tl env.continue_labels;
      emit env "jmp %s" l_top;
      emit_label env l_end
  | S_for (init, cond, step, body) ->
      let l_top = fresh_label env "ftop" in
      let l_step = fresh_label env "fstep" in
      let l_end = fresh_label env "fend" in
      (match init with Some s -> gen_stmt env ret_label s | None -> ());
      emit_label env l_top;
      (match cond with
      | Some c ->
          ignore (gen_expr env c);
          emit env "beq r0, zr, %s" l_end
      | None -> ());
      env.break_labels <- l_end :: env.break_labels;
      env.continue_labels <- l_step :: env.continue_labels;
      gen_stmt env ret_label body;
      env.break_labels <- List.tl env.break_labels;
      env.continue_labels <- List.tl env.continue_labels;
      emit_label env l_step;
      (match step with Some e -> ignore (gen_expr env e) | None -> ());
      emit env "jmp %s" l_top;
      emit_label env l_end
  | S_return e ->
      (match e with Some e -> ignore (gen_expr env e) | None -> ());
      emit env "jmp %s" ret_label
  | S_break -> (
      match env.break_labels with
      | l :: _ -> emit env "jmp %s" l
      | [] -> error "%s: break outside loop" env.module_name)
  | S_continue -> (
      match env.continue_labels with
      | l :: _ -> emit env "jmp %s" l
      | [] -> error "%s: continue outside loop" env.module_name)
  | S_block stmts -> List.iter (gen_stmt env ret_label) stmts
  | S_asm text -> Buffer.add_string env.buf ("  " ^ text ^ "\n")

(* Collect every local declaration in a function body (function scoping). *)
let rec collect_decls acc (s : stmt) =
  match s with
  | S_decl (ty, name, _) -> (name, ty) :: acc
  | S_if (_, a, b) ->
      let acc = collect_decls acc a in
      (match b with Some b -> collect_decls acc b | None -> acc)
  | S_while (_, b) -> collect_decls acc b
  | S_for (init, _, _, b) ->
      let acc = match init with Some s -> collect_decls acc s | None -> acc in
      collect_decls acc b
  | S_block stmts -> List.fold_left collect_decls acc stmts
  | S_expr _ | S_return _ | S_break | S_continue | S_asm _ -> acc

let gen_func env (f : func) =
  env.locals <- [];
  env.frame_size <- 0;
  let add_local name ty =
    (* MC locals are function-scoped; re-declaring a name (e.g. the same
       loop counter in two for-loops) reuses the original slot. *)
    if not (List.mem_assoc name env.locals) then begin
      let size = (sizeof ty + 3) land lnot 3 in
      env.frame_size <- env.frame_size + size;
      env.locals <- (name, (ty, -env.frame_size)) :: env.locals
    end
  in
  List.iter (fun (ty, name) -> add_local name ty) f.params;
  List.iter
    (fun (name, ty) -> add_local name ty)
    (List.rev (List.fold_left collect_decls [] f.body));
  let ret_label = fresh_label env "ret" in
  emit_label env f.name;
  emit env "subi sp, sp, 8";
  emit env "sw lr, 4(sp)";
  emit env "sw fp, 0(sp)";
  emit env "mov fp, sp";
  if env.frame_size > 0 then emit env "subi sp, sp, %d" env.frame_size;
  List.iteri
    (fun i (_, name) ->
      let _, off = List.assoc name env.locals in
      emit env "sw r%d, %d(fp)" i off)
    f.params;
  List.iter (gen_stmt env ret_label) f.body;
  emit_label env ret_label;
  emit env "mov sp, fp";
  emit env "lw fp, 0(sp)";
  emit env "lw lr, 4(sp)";
  emit env "addi sp, sp, 8";
  emit env "jr lr"

let escape_string s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\%03o" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let gen_global env (g : global) =
  emit env ".align 4";
  emit_label env g.g_name;
  match g.g_ty, g.g_init with
  | _, Some (I_num v) -> (
      match g.g_ty with
      | T_char -> emit env ".byte %d" v
      | _ -> emit env ".word %d" v)
  | T_array (T_char, n), Some (I_str s) ->
      emit env ".asciz \"%s\"" (escape_string s);
      if n > String.length s + 1 then emit env ".space %d" (n - String.length s - 1)
  | T_ptr T_char, Some (I_str s) ->
      let l = string_label env s in
      emit env ".word %s" l
  | T_array (T_char, n), Some (I_list items) ->
      emit env ".byte %s" (String.concat ", " (List.map string_of_int items));
      if n > List.length items then emit env ".space %d" (n - List.length items)
  | T_array (_, n), Some (I_list items) ->
      emit env ".word %s" (String.concat ", " (List.map string_of_int items));
      if n > List.length items then emit env ".space %d" (4 * (n - List.length items))
  | ty, None -> emit env ".space %d" (sizeof ty)
  | _, Some _ -> error "%s: unsupported initializer for %s" env.module_name g.g_name

(** Compile one MC module to assembly text.  The module is bracketed by
    [__module_<name>_start] / [__module_<name>_end] labels that the engine's
    module map uses to define code-range selectors. *)
let compile ~module_name source : string =
  let program = Parser.parse source in
  let env =
    {
      module_name;
      buf = Buffer.create 4096;
      consts = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      locals = [];
      frame_size = 0;
      label_counter = 0;
      strings = [];
      break_labels = [];
      continue_labels = [];
    }
  in
  (* Register top-level names first so forward references work. *)
  List.iter
    (fun d ->
      match d with
      | D_const (name, v) -> Hashtbl.replace env.consts name v
      | D_global g -> Hashtbl.replace env.globals g.g_name g.g_ty
      | D_func f -> Hashtbl.replace env.funcs f.name (List.length f.params))
    program;
  emit_label env (Printf.sprintf "__module_%s_start" module_name);
  List.iter (function D_func f -> gen_func env f | D_global _ | D_const _ -> ()) program;
  emit_label env (Printf.sprintf "__module_%s_code_end" module_name);
  List.iter (function D_global g -> gen_global env g | D_func _ | D_const _ -> ()) program;
  (* String literals *)
  List.iter
    (fun (label, s) ->
      emit_label env label;
      emit env ".asciz \"%s\"" (escape_string s))
    (List.rev env.strings);
  emit env ".align 8";
  emit_label env (Printf.sprintf "__module_%s_end" module_name);
  Buffer.contents env.buf
