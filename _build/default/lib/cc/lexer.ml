(** Hand-written lexer for MC. *)

type token =
  | T_num of int
  | T_str of string
  | T_char_lit of int
  | T_ident of string
  | T_kw of string     (* int char if else while for return break continue const *)
  | T_punct of string  (* operators and punctuation *)
  | T_eof

exception Error of { line : int; message : string }

let error line fmt = Fmt.kstr (fun message -> raise (Error { line; message })) fmt

let keywords =
  [ "int"; "char"; "if"; "else"; "while"; "for"; "return"; "break";
    "continue"; "const"; "void" ]

(* Longest-match first. *)
let puncts =
  [ "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||";
    "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "=";
    "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "?"; ":" ]

let is_ident_start c = c = '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

type t = { src : string; mutable pos : int; mutable line : int }

let create src = { src; pos = 0; line = 1 }

let peek_char t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

let advance t =
  (if t.pos < String.length t.src && t.src.[t.pos] = '\n' then
     t.line <- t.line + 1);
  t.pos <- t.pos + 1

let rec skip_ws t =
  match peek_char t with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance t;
      skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
      while peek_char t <> None && peek_char t <> Some '\n' do advance t done;
      skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '*' ->
      advance t; advance t;
      let rec close () =
        match peek_char t with
        | None -> error t.line "unterminated comment"
        | Some '*' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
            advance t; advance t
        | Some _ -> advance t; close ()
      in
      close ();
      skip_ws t
  | _ -> ()

let read_escaped t =
  match peek_char t with
  | Some '\\' -> (
      advance t;
      match peek_char t with
      | Some 'n' -> advance t; '\n'
      | Some 't' -> advance t; '\t'
      | Some 'r' -> advance t; '\r'
      | Some '0' -> advance t; '\000'
      | Some '\\' -> advance t; '\\'
      | Some '\'' -> advance t; '\''
      | Some '"' -> advance t; '"'
      | _ -> error t.line "bad escape")
  | Some c -> advance t; c
  | None -> error t.line "unterminated literal"

let next t : int * token =
  skip_ws t;
  let line = t.line in
  match peek_char t with
  | None -> (line, T_eof)
  | Some c when is_digit c ->
      let start = t.pos in
      let hex = c = '0' && t.pos + 1 < String.length t.src
                && (t.src.[t.pos + 1] = 'x' || t.src.[t.pos + 1] = 'X') in
      if hex then begin advance t; advance t end;
      while
        match peek_char t with
        | Some c -> is_digit c || (hex && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')))
        | None -> false
      do advance t done;
      let s = String.sub t.src start (t.pos - start) in
      (line, T_num (int_of_string s))
  | Some c when is_ident_start c ->
      let start = t.pos in
      while (match peek_char t with Some c -> is_ident_char c | None -> false) do
        advance t
      done;
      let s = String.sub t.src start (t.pos - start) in
      (line, if List.mem s keywords then T_kw s else T_ident s)
  | Some '"' ->
      advance t;
      let buf = Buffer.create 16 in
      let rec go () =
        match peek_char t with
        | Some '"' -> advance t
        | Some _ -> Buffer.add_char buf (read_escaped t); go ()
        | None -> error line "unterminated string"
      in
      go ();
      (line, T_str (Buffer.contents buf))
  | Some '\'' ->
      advance t;
      let c = read_escaped t in
      (match peek_char t with
      | Some '\'' -> advance t
      | _ -> error line "unterminated char literal");
      (line, T_char_lit (Char.code c))
  | Some _ ->
      let try_punct p =
        let n = String.length p in
        t.pos + n <= String.length t.src && String.sub t.src t.pos n = p
      in
      (match List.find_opt try_punct puncts with
      | Some p ->
          for _ = 1 to String.length p do advance t done;
          (line, T_punct p)
      | None -> error line "unexpected character %C" t.src.[t.pos])

(** Tokenize the whole source. *)
let tokenize src =
  let t = create src in
  let rec go acc =
    match next t with
    | line, T_eof -> List.rev ((line, T_eof) :: acc)
    | tok -> go (tok :: acc)
  in
  go []
