(** Recursive-descent parser for MC. *)

open Ast

exception Error of { line : int; message : string }

let error line fmt = Fmt.kstr (fun message -> raise (Error { line; message })) fmt

type t = {
  mutable toks : (int * Lexer.token) list;
  consts : (string, int) Hashtbl.t; (* for constant-expression evaluation *)
}

let peek p = match p.toks with (_, tok) :: _ -> tok | [] -> Lexer.T_eof
let line p = match p.toks with (l, _) :: _ -> l | [] -> 0

let advance p = match p.toks with _ :: rest -> p.toks <- rest | [] -> ()

let eat_punct p s =
  match peek p with
  | Lexer.T_punct s' when s = s' -> advance p
  | _ -> error (line p) "expected %S" s

let eat_ident p =
  match peek p with
  | Lexer.T_ident s -> advance p; s
  | _ -> error (line p) "expected identifier"

let accept_punct p s =
  match peek p with
  | Lexer.T_punct s' when s = s' -> advance p; true
  | _ -> false

let accept_kw p s =
  match peek p with
  | Lexer.T_kw s' when s = s' -> advance p; true
  | _ -> false

(* type = ("int" | "char" | "void") "*"*  ; void only as "void *" or return *)
let parse_base_ty p =
  if accept_kw p "int" then Some T_int
  else if accept_kw p "char" then Some T_char
  else if accept_kw p "void" then Some T_int (* treated as int-sized *)
  else None

let parse_ptr_suffix p base =
  let ty = ref base in
  while accept_punct p "*" do ty := T_ptr !ty done;
  !ty

(* Expression grammar, precedence climbing. *)
let binop_table =
  [
    (1, [ ("||", Lor) ]);
    (2, [ ("&&", Land) ]);
    (3, [ ("|", Bor) ]);
    (4, [ ("^", Bxor) ]);
    (5, [ ("&", Band) ]);
    (6, [ ("==", Eq); ("!=", Ne) ]);
    (7, [ ("<", Lt); ("<=", Le); (">", Gt); (">=", Ge) ]);
    (8, [ ("<<", Shl); (">>", Shr) ]);
    (9, [ ("+", Add); ("-", Sub) ]);
    (10, [ ("*", Mul); ("/", Div); ("%", Mod) ]);
  ]

let rec parse_expr p = parse_assign p

and parse_assign p =
  let lhs = parse_cond p in
  if accept_punct p "=" then Assign (lhs, parse_assign p) else lhs

and parse_cond p =
  let c = parse_binary p 1 in
  if accept_punct p "?" then begin
    let a = parse_expr p in
    eat_punct p ":";
    let b = parse_cond p in
    Cond (c, a, b)
  end
  else c

and parse_binary p prec =
  if prec > 10 then parse_unary p
  else begin
    let ops = List.assoc prec binop_table in
    let lhs = ref (parse_binary p (prec + 1)) in
    let continue = ref true in
    while !continue do
      match peek p with
      | Lexer.T_punct s when List.mem_assoc s ops ->
          advance p;
          let rhs = parse_binary p (prec + 1) in
          lhs := Binop (List.assoc s ops, !lhs, rhs)
      | _ -> continue := false
    done;
    !lhs
  end

and parse_unary p =
  match peek p with
  | Lexer.T_punct "-" -> advance p; Unop (Neg, parse_unary p)
  | Lexer.T_punct "!" -> advance p; Unop (Lnot, parse_unary p)
  | Lexer.T_punct "~" -> advance p; Unop (Bnot, parse_unary p)
  | Lexer.T_punct "*" -> advance p; Deref (parse_unary p)
  | Lexer.T_punct "&" -> advance p; Addr_of (parse_unary p)
  | _ -> parse_postfix p

and parse_postfix p =
  let e = ref (parse_primary p) in
  let continue = ref true in
  while !continue do
    if accept_punct p "[" then begin
      let i = parse_expr p in
      eat_punct p "]";
      e := Index (!e, i)
    end
    else continue := false
  done;
  !e

and parse_primary p =
  match peek p with
  | Lexer.T_num n -> advance p; Num n
  | Lexer.T_char_lit n -> advance p; Num n
  | Lexer.T_str s -> advance p; Str s
  | Lexer.T_punct "(" ->
      advance p;
      let e = parse_expr p in
      eat_punct p ")";
      e
  | Lexer.T_ident name ->
      advance p;
      if accept_punct p "(" then begin
        let args = ref [] in
        if not (accept_punct p ")") then begin
          let rec go () =
            args := parse_expr p :: !args;
            if accept_punct p "," then go () else eat_punct p ")"
          in
          go ()
        end;
        Call (name, List.rev !args)
      end
      else Ident name
  | _ -> error (line p) "expected expression"

(* Statements. *)
let rec parse_stmt p : stmt =
  match peek p with
  | Lexer.T_punct "{" ->
      advance p;
      let stmts = ref [] in
      while not (accept_punct p "}") do
        stmts := parse_stmt p :: !stmts
      done;
      S_block (List.rev !stmts)
  | Lexer.T_kw "if" ->
      advance p;
      eat_punct p "(";
      let c = parse_expr p in
      eat_punct p ")";
      let then_ = parse_stmt p in
      let else_ = if accept_kw p "else" then Some (parse_stmt p) else None in
      S_if (c, then_, else_)
  | Lexer.T_kw "while" ->
      advance p;
      eat_punct p "(";
      let c = parse_expr p in
      eat_punct p ")";
      S_while (c, parse_stmt p)
  | Lexer.T_kw "for" ->
      advance p;
      eat_punct p "(";
      let init =
        if accept_punct p ";" then None
        else begin
          let s = parse_simple_stmt p in
          eat_punct p ";";
          Some s
        end
      in
      let cond = if accept_punct p ";" then None
        else begin
          let e = parse_expr p in
          eat_punct p ";";
          Some e
        end
      in
      let step = if accept_punct p ")" then None
        else begin
          let e = parse_expr p in
          eat_punct p ")";
          Some e
        end
      in
      S_for (init, cond, step, parse_stmt p)
  | Lexer.T_kw "return" ->
      advance p;
      if accept_punct p ";" then S_return None
      else begin
        let e = parse_expr p in
        eat_punct p ";";
        S_return (Some e)
      end
  | Lexer.T_kw "break" ->
      advance p;
      eat_punct p ";";
      S_break
  | Lexer.T_kw "continue" ->
      advance p;
      eat_punct p ";";
      S_continue
  | _ ->
      let s = parse_simple_stmt p in
      eat_punct p ";";
      s

(* A declaration or expression statement without the trailing semicolon
   (shared between plain statements and for-loop initializers). *)
and parse_simple_stmt p : stmt =
  match parse_base_ty p with
  | Some base ->
      let ty = parse_ptr_suffix p base in
      let name = eat_ident p in
      let ty =
        if accept_punct p "[" then begin
          let n = match peek p with
            | Lexer.T_num n -> advance p; n
            | _ -> error (line p) "array size must be a literal"
          in
          eat_punct p "]";
          T_array (ty, n)
        end
        else ty
      in
      let init = if accept_punct p "=" then Some (parse_expr p) else None in
      S_decl (ty, name, init)
  | None ->
      (* __asm("...") escape hatch *)
      (match peek p with
      | Lexer.T_ident "__asm" ->
          advance p;
          eat_punct p "(";
          let s = match peek p with
            | Lexer.T_str s -> advance p; s
            | _ -> error (line p) "__asm expects a string"
          in
          eat_punct p ")";
          S_asm s
      | _ -> S_expr (parse_expr p))

(* Top-level declarations. *)
let parse_decl p : decl =
  if accept_kw p "const" then begin
    (match parse_base_ty p with Some _ -> () | None -> ());
    let name = eat_ident p in
    eat_punct p "=";
    let rec const_expr () =
      (* constant expressions: literals with + - * << | and parens *)
      let e = parse_expr p in
      let rec eval = function
        | Num n -> n
        | Ident name -> (
            match Hashtbl.find_opt p.consts name with
            | Some v -> v
            | None -> error (line p) "unknown constant %s" name)
        | Binop (Add, a, b) -> eval a + eval b
        | Binop (Sub, a, b) -> eval a - eval b
        | Binop (Mul, a, b) -> eval a * eval b
        | Binop (Shl, a, b) -> eval a lsl eval b
        | Binop (Bor, a, b) -> eval a lor eval b
        | Unop (Neg, a) -> -eval a
        | _ -> error (line p) "const initializer must be constant"
      in
      ignore const_expr;
      eval e
    in
    let v = const_expr () in
    eat_punct p ";";
    Hashtbl.replace p.consts name v;
    D_const (name, v)
  end
  else
    match parse_base_ty p with
    | None -> error (line p) "expected declaration"
    | Some base ->
        let ty = parse_ptr_suffix p base in
        let name = eat_ident p in
        if accept_punct p "(" then begin
          (* function *)
          let params = ref [] in
          if not (accept_punct p ")") then begin
            let rec go () =
              (match parse_base_ty p with
              | Some b ->
                  let pt = parse_ptr_suffix p b in
                  let pn = eat_ident p in
                  params := (pt, pn) :: !params
              | None -> error (line p) "expected parameter type");
              if accept_punct p "," then go () else eat_punct p ")"
            in
            go ()
          end;
          let body =
            match parse_stmt p with
            | S_block stmts -> stmts
            | _ -> error (line p) "function body must be a block"
          in
          D_func { name; params = List.rev !params; locals_hint = (); body }
        end
        else begin
          (* global *)
          let ty =
            if accept_punct p "[" then begin
              match peek p with
              | Lexer.T_num n ->
                  advance p;
                  eat_punct p "]";
                  T_array (ty, n)
              | Lexer.T_punct "]" ->
                  advance p;
                  T_array (ty, 0) (* sized by initializer *)
              | _ -> error (line p) "array size must be a literal"
            end
            else ty
          in
          let init =
            if accept_punct p "=" then
              Some
                (match peek p with
                | Lexer.T_num n -> advance p; I_num n
                | Lexer.T_char_lit n -> advance p; I_num n
                | Lexer.T_str s -> advance p; I_str s
                | Lexer.T_punct "{" ->
                    advance p;
                    let items = ref [] in
                    if not (accept_punct p "}") then begin
                      let rec go () =
                        (match peek p with
                        | Lexer.T_num n -> advance p; items := n :: !items
                        | Lexer.T_char_lit n -> advance p; items := n :: !items
                        | _ -> error (line p) "array initializer must be literals");
                        if accept_punct p "," then go () else eat_punct p "}"
                      in
                      go ()
                    end;
                    I_list (List.rev !items)
                | _ -> error (line p) "bad initializer")
            else None
          in
          eat_punct p ";";
          let ty =
            match ty, init with
            | T_array (t, 0), Some (I_list l) -> T_array (t, List.length l)
            | T_array (t, 0), Some (I_str s) -> T_array (t, String.length s + 1)
            | ty, _ -> ty
          in
          D_global { g_ty = ty; g_name = name; g_init = init }
        end

let parse source : program =
  let p = { toks = Lexer.tokenize source; consts = Hashtbl.create 16 } in
  let decls = ref [] in
  while peek p <> Lexer.T_eof do
    decls := parse_decl p :: !decls
  done;
  List.rev !decls
