lib/cc/cc.mli: S2e_isa
