lib/cc/ast.ml:
