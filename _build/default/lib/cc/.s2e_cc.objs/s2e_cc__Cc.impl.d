lib/cc/cc.ml: Codegen List Printf S2e_isa String
