lib/cc/lexer.ml: Buffer Char Fmt List String
