lib/cc/codegen.ml: Ast Buffer Char Fmt Hashtbl List Parser Printf String
