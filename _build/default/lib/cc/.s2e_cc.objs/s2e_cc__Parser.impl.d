lib/cc/parser.ml: Ast Fmt Hashtbl Lexer List String
