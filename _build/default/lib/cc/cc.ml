(** Compiler driver: compile MC modules and link them with a runtime stub
    into one guest image. *)

type module_range = {
  m_name : string;
  m_start : int;    (* first code byte *)
  m_code_end : int; (* end of executable code *)
  m_end : int;      (* end of the module including data *)
}

type linked = {
  image : S2e_isa.Asm.image;
  modules : module_range list;
}

(** [link ~runtime_asm mods] compiles each [(name, mc_source)] in [mods],
    concatenates the runtime stub (plain assembly, placed first so the entry
    point is at the image origin) with the generated code, and assembles the
    result.  [header] is MC source prepended to every module (shared
    constants, in lieu of a preprocessor). *)
let link ?(origin = 0x1000) ?(header = "") ~runtime_asm mods : linked =
  let parts =
    runtime_asm
    :: List.map
         (fun (name, source) -> Codegen.compile ~module_name:name (header ^ source))
         mods
  in
  let image = S2e_isa.Asm.assemble ~origin (String.concat "\n" parts) in
  let modules =
    List.map
      (fun (name, _) ->
        {
          m_name = name;
          m_start = S2e_isa.Asm.symbol image (Printf.sprintf "__module_%s_start" name);
          m_code_end =
            S2e_isa.Asm.symbol image (Printf.sprintf "__module_%s_code_end" name);
          m_end = S2e_isa.Asm.symbol image (Printf.sprintf "__module_%s_end" name);
        })
      mods
  in
  { image; modules }

let module_range linked name =
  match List.find_opt (fun m -> m.m_name = name) linked.modules with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "unknown module %S" name)
