(** Compiler driver: compile MC modules and link them with a runtime stub
    into one guest image. *)

type module_range = {
  m_name : string;
  m_start : int;    (** first code byte *)
  m_code_end : int; (** end of executable code *)
  m_end : int;      (** end of the module including data *)
}

type linked = {
  image : S2e_isa.Asm.image;
  modules : module_range list;
}

val link :
  ?origin:int ->
  ?header:string ->
  runtime_asm:string ->
  (string * string) list ->
  linked
(** [link ~runtime_asm mods] compiles each [(name, mc_source)], prepends
    the runtime stub (plain assembly, placed first so the entry point sits
    at the origin) and assembles everything into one image.  [header] is
    MC source prepended to every module. *)

val module_range : linked -> string -> module_range
(** @raise Invalid_argument on unknown module names. *)
