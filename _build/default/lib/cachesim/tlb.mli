(** Fully-associative TLB with LRU replacement, plus a demand-paging
    page-fault model: the first touch of each page in a path's lifetime
    counts as a fault. *)

type t

val create : ?page_size:int -> ?entries:int -> unit -> t
val access : t -> int -> unit
val clone : t -> t

val stats : t -> int * int * int
(** (accesses, TLB misses, page faults). *)
