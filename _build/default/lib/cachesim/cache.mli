(** Set-associative cache with LRU replacement: the building block of the
    PROFS memory-hierarchy simulation. *)

type config = {
  size : int;          (** total bytes *)
  line_size : int;     (** bytes per line *)
  associativity : int;
  name : string;
}

type t

val create : config -> t
(** @raise Invalid_argument when the geometry yields no sets. *)

val access : t -> int -> bool
(** Access an address; [true] on hit.  Misses fill the LRU way. *)

val reset : t -> unit
val clone : t -> t
(** Independent copy (used when execution paths fork). *)

val stats : t -> int * int
(** (accesses, misses). *)
