lib/cachesim/tlb.ml: Array Hashtbl
