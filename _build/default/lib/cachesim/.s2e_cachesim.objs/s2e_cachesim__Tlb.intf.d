lib/cachesim/tlb.mli:
