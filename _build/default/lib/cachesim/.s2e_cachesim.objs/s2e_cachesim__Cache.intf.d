lib/cachesim/cache.mli:
