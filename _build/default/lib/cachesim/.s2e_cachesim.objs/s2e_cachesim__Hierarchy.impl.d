lib/cachesim/hierarchy.ml: Cache List Tlb
