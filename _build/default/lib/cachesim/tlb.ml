(** Fully-associative TLB with LRU replacement, plus a simple page-fault
    model: the first touch of a page in a path's lifetime is a (soft) page
    fault, as with a demand-paged working set starting cold. *)

type t = {
  page_size : int;
  entries : int;
  tags : int array;
  lru : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  (* page fault model *)
  mutable resident : (int, unit) Hashtbl.t;
  mutable page_faults : int;
}

let create ?(page_size = 4096) ?(entries = 64) () =
  {
    page_size;
    entries;
    tags = Array.make entries (-1);
    lru = Array.make entries 0;
    clock = 0;
    accesses = 0;
    misses = 0;
    resident = Hashtbl.create 64;
    page_faults = 0;
  }

let access t addr =
  let page = addr / t.page_size in
  t.clock <- t.clock + 1;
  t.accesses <- t.accesses + 1;
  if not (Hashtbl.mem t.resident page) then begin
    Hashtbl.replace t.resident page ();
    t.page_faults <- t.page_faults + 1
  end;
  let rec find i =
    if i >= t.entries then None
    else if t.tags.(i) = page then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i -> t.lru.(i) <- t.clock
  | None ->
      t.misses <- t.misses + 1;
      let victim = ref 0 in
      for i = 1 to t.entries - 1 do
        if t.lru.(i) < t.lru.(!victim) then victim := i
      done;
      t.tags.(!victim) <- page;
      t.lru.(!victim) <- t.clock

let clone t =
  {
    t with
    tags = Array.copy t.tags;
    lru = Array.copy t.lru;
    resident = Hashtbl.copy t.resident;
  }

let stats t = (t.accesses, t.misses, t.page_faults)
