(** A memory hierarchy: split L1 I/D caches, a unified L2 (optionally more
    levels), and a TLB.  The default configuration matches the one the
    paper used for PROFS: 64-KB I1/D1, 64-byte lines, 2-way; 1-MB L2,
    64-byte lines, 4-way. *)

type t = {
  i1 : Cache.t;
  d1 : Cache.t;
  levels : Cache.t list; (* L2, L3, ... checked in order on L1 miss *)
  tlb : Tlb.t;
}

let default_config () =
  ( { Cache.size = 64 * 1024; line_size = 64; associativity = 2; name = "I1" },
    { Cache.size = 64 * 1024; line_size = 64; associativity = 2; name = "D1" },
    [ { Cache.size = 1024 * 1024; line_size = 64; associativity = 4; name = "L2" } ] )

let create ?config () =
  let i1c, d1c, lcs = match config with Some c -> c | None -> default_config () in
  {
    i1 = Cache.create i1c;
    d1 = Cache.create d1c;
    levels = List.map Cache.create lcs;
    tlb = Tlb.create ();
  }

let rec access_levels levels addr =
  match levels with
  | [] -> ()
  | l :: rest -> if not (Cache.access l addr) then access_levels rest addr

(** Instruction fetch at [addr]. *)
let fetch t addr =
  Tlb.access t.tlb addr;
  if not (Cache.access t.i1 addr) then access_levels t.levels addr

(** Data access at [addr]. *)
let data t addr =
  Tlb.access t.tlb addr;
  if not (Cache.access t.d1 addr) then access_levels t.levels addr

let clone t =
  {
    i1 = Cache.clone t.i1;
    d1 = Cache.clone t.d1;
    levels = List.map Cache.clone t.levels;
    tlb = Tlb.clone t.tlb;
  }

type totals = {
  i1_misses : int;
  d1_misses : int;
  l2_misses : int;
  tlb_misses : int;
  page_faults : int;
}

let totals t =
  let _, i1m = Cache.stats t.i1 in
  let _, d1m = Cache.stats t.d1 in
  let l2m =
    match t.levels with [] -> 0 | l2 :: _ -> snd (Cache.stats l2)
  in
  let _, tlbm, pf = Tlb.stats t.tlb in
  { i1_misses = i1m; d1_misses = d1m; l2_misses = l2m; tlb_misses = tlbm;
    page_faults = pf }
