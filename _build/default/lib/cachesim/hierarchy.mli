(** A memory hierarchy: split L1 instruction/data caches, further unified
    levels, and a TLB.  The default geometry matches the paper's PROFS
    configuration (64-KB 2-way I1/D1, 1-MB 4-way L2, 64-byte lines). *)

type t

val default_config : unit -> Cache.config * Cache.config * Cache.config list
(** (I1, D1, [L2; ...]). *)

val create : ?config:Cache.config * Cache.config * Cache.config list -> unit -> t

val fetch : t -> int -> unit
(** Instruction fetch at an address. *)

val data : t -> int -> unit
(** Data access at an address. *)

val clone : t -> t

type totals = {
  i1_misses : int;
  d1_misses : int;
  l2_misses : int;
  tlb_misses : int;
  page_faults : int;
}

val totals : t -> totals
