(** Set-associative cache with LRU replacement.

    The PerformanceProfile plugin simulates a configurable hierarchy of
    these for every memory access on every path — the paper's PROFS tool
    claims a superset of Valgrind's cachegrind functionality (arbitrary
    levels, sizes, associativities and line sizes). *)

type config = {
  size : int;          (* total bytes *)
  line_size : int;     (* bytes per line, power of two *)
  associativity : int;
  name : string;
}

type t = {
  config : config;
  num_sets : int;
  (* tags.(set * assoc + way); -1 = invalid.  lru.(i) = age counter. *)
  tags : int array;
  lru : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let create config =
  let num_sets = config.size / (config.line_size * config.associativity) in
  if num_sets <= 0 then invalid_arg "cache too small for its associativity";
  {
    config;
    num_sets;
    tags = Array.make (num_sets * config.associativity) (-1);
    lru = Array.make (num_sets * config.associativity) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

(** Access [addr]; returns [true] on hit. *)
let access t addr =
  let line = addr / t.config.line_size in
  let set = line mod t.num_sets in
  let tag = line / t.num_sets in
  let base = set * t.config.associativity in
  t.clock <- t.clock + 1;
  t.accesses <- t.accesses + 1;
  let rec find w =
    if w >= t.config.associativity then None
    else if t.tags.(base + w) = tag then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
      t.lru.(base + w) <- t.clock;
      true
  | None ->
      t.misses <- t.misses + 1;
      (* Evict the LRU way. *)
      let victim = ref 0 in
      for w = 1 to t.config.associativity - 1 do
        if t.lru.(base + w) < t.lru.(base + !victim) then victim := w
      done;
      t.tags.(base + !victim) <- tag;
      t.lru.(base + !victim) <- t.clock;
      false

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.lru 0 (Array.length t.lru) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0

let clone t =
  {
    t with
    tags = Array.copy t.tags;
    lru = Array.copy t.lru;
  }

let stats t = (t.accesses, t.misses)
