(* lib/dist tests: snapshot codec roundtrips, strict decoding, and
   differential + fault-injection tests for the fork-server coordinator.

   This suite must run before any suite that spawns OCaml domains: the
   coordinator's Fork spawn mode uses Unix.fork, which is only safe
   while the process is still single-domain. *)

open S2e_cc
open S2e_core
open S2e_expr
module Codec = S2e_dist.Codec
module Proto = S2e_dist.Proto
module Coordinator = S2e_dist.Coordinator
module Solver = S2e_solver.Solver

let runtime =
  {|
__start:
  li sp, 0xFFFF0
  jal main
  li r1, 0x900
  sw r0, 0(r1)
  halt
|}

(* 2^5 = 32 paths; every path fixes all five tested bits, so test cases
   are distinct and the drained path set is deterministic. *)
let workload_32 =
  {|
int main() {
  int x = __s2e_sym_int(1);
  int acc = 0;
  for (int i = 0; i < 5; i = i + 1) {
    if ((x >> i) & 1) acc = acc + (i * 3 + 1);
  }
  if (acc > 20) return 1;
  return 0;
} |}

(* 2^6 = 64 paths: enough runway that a worker killed mid-run is still
   holding unexplored states. *)
let workload_64 =
  {|
int main() {
  int x = __s2e_sym_int(1);
  int acc = 0;
  for (int i = 0; i < 6; i = i + 1) {
    if ((x >> i) & 1) acc = acc + (i * 3 + 1);
  }
  if (acc > 30) return 1;
  return 0;
} |}

let make_engine_for workload () =
  let linked = Cc.link ~runtime_asm:runtime [ ("prog", workload) ] in
  let engine = Executor.create () in
  Executor.load engine
    {
      Executor.l_origin = linked.image.origin;
      l_code = linked.image.code;
      l_modules =
        List.map
          (fun (m : Cc.module_range) ->
            (m.m_name, m.m_start, m.m_code_end, m.m_end))
          linked.modules;
    };
  Executor.set_unit engine [ "prog" ];
  engine

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_expr_roundtrip () =
  (* Expr.Raw builds these shapes verbatim (no smart-constructor folding),
     which is exactly what the codec promises to reproduce. *)
  let v = Expr.Raw.var ~id:7 ~name:"sym1_0" ~width:8 in
  let exprs =
    [
      Expr.Raw.const ~width:16 0x1234L;
      v;
      Expr.Raw.unop Expr.Bnot v;
      Expr.Raw.binop Expr.Add v v;
      Expr.Raw.cmp Expr.Slt v (Expr.Raw.const ~width:8 3L);
      Expr.Raw.ite (Expr.Raw.cmp Expr.Eq v v) v v;
      Expr.Raw.extract ~hi:6 ~lo:2 v;
      Expr.Raw.concat ~high:v ~low:v;
      Expr.Raw.zext ~width:32 v;
      Expr.Raw.sext ~width:64 v;
    ]
  in
  List.iter
    (fun e ->
      let e' = Codec.decode_expr (Codec.encode_expr e) in
      Alcotest.(check bool) "expr roundtrips structurally" true (Expr.equal e e');
      (* Decode interns into this domain's table, so the roundtrip result
         must be the canonical node itself. *)
      Alcotest.(check bool) "expr roundtrips physically" true (e == e'))
    exprs

(* Explore a few paths, then snapshot a mid-run frontier state: it has a
   symbolic memory overlay, non-trivial path constraints and live device
   state. *)
let frontier_state () =
  let eng = make_engine_for workload_32 () in
  let s0 = Executor.boot eng ~entry:0x1000 () in
  ignore
    (Executor.run
       ~limits:
         {
           Executor.max_instructions = None;
           max_seconds = None;
           max_completed = Some 4;
         }
       eng s0);
  match eng.Executor.live with
  | [] -> Alcotest.fail "expected a live frontier state"
  | s :: _ -> (eng, s)

let test_state_roundtrip () =
  let eng, s = frontier_state () in
  Alcotest.(check bool) "state has constraints" true (s.State.constraints <> []);
  let blob = Codec.encode_state s in
  let s' = Codec.decode_state ~base:eng.Executor.base_mem blob in
  Alcotest.(check int) "id" s.State.id s'.State.id;
  Alcotest.(check int) "parent" s.State.parent s'.State.parent;
  Alcotest.(check int) "pc" s.State.pc s'.State.pc;
  Alcotest.(check int) "depth" s.State.depth s'.State.depth;
  Alcotest.(check int) "instret" s.State.instret s'.State.instret;
  Alcotest.(check int) "sym_instret" s.State.sym_instret s'.State.sym_instret;
  Alcotest.(check string) "status" (State.status_string s.State.status)
    (State.status_string s'.State.status);
  Alcotest.(check bool) "regs equal" true (s.State.regs = s'.State.regs);
  Alcotest.(check bool) "constraints equal (exact order, no resimplify)" true
    (s.State.constraints = s'.State.constraints);
  let overlay st =
    Symmem.fold_overlay (fun a e acc -> (a, e) :: acc) st.State.mem []
  in
  Alcotest.(check bool) "overlay non-empty" true (overlay s <> []);
  Alcotest.(check bool) "overlay equal" true (overlay s = overlay s');
  Alcotest.(check bool) "same base image" true
    (Symmem.base s'.State.mem == eng.Executor.base_mem);
  Alcotest.(check string) "console" s.State.devices.S2e_vm.Devices.console.out
    s'.State.devices.S2e_vm.Devices.console.out;
  (* The decoded state must solve to the same canonical test case. *)
  Alcotest.(check string) "same test case"
    (Parallel.test_case_to_string (Parallel.test_case s))
    (Parallel.test_case_to_string (Parallel.test_case s'))

let test_strict_decode_errors () =
  let eng, s = frontier_state () in
  let base = eng.Executor.base_mem in
  let blob = Codec.encode_state s in
  let raises what f =
    match f () with
    | (_ : State.t) -> Alcotest.failf "%s: expected Codec.Error" what
    | exception Codec.Error _ -> ()
  in
  raises "truncated" (fun () ->
      Codec.decode_state ~base (String.sub blob 0 (String.length blob / 2)));
  raises "empty" (fun () -> Codec.decode_state ~base "");
  (* Flip one payload byte: the trailing checksum must catch it. *)
  let corrupt = Bytes.of_string blob in
  let mid = Bytes.length corrupt / 2 in
  Bytes.set corrupt mid (Char.chr (Char.code (Bytes.get corrupt mid) lxor 0x40));
  raises "corrupted byte" (fun () ->
      Codec.decode_state ~base (Bytes.to_string corrupt));
  (* Wrong magic. *)
  let wrong_magic = Bytes.of_string blob in
  Bytes.set wrong_magic 0 'X';
  raises "wrong magic" (fun () ->
      Codec.decode_state ~base (Bytes.to_string wrong_magic));
  (* Trailing garbage after a well-formed payload. *)
  raises "trailing bytes" (fun () -> Codec.decode_state ~base (blob ^ "\000"));
  (* A different base image must be rejected by the fingerprint. *)
  let other = Bytes.copy base in
  Bytes.set other 0 (Char.chr (Char.code (Bytes.get other 0) lxor 1));
  raises "base image mismatch" (fun () -> Codec.decode_state ~base:other blob)

(* ------------------------------------------------------------------ *)
(* Coordinator                                                         *)
(* ------------------------------------------------------------------ *)

let serial_case_set workload =
  let r = Parallel.explore ~jobs:1 ~make_engine:(make_engine_for workload)
      ~boot:(fun eng -> Executor.boot eng ~entry:0x1000 ()) ()
  in
  ( List.map
      (fun (s : State.t) ->
        Parallel.test_case_to_string (Parallel.test_case s))
      r.Parallel.completed
    |> List.sort compare,
    r )

let dist_case_set (r : Coordinator.result) =
  List.map
    (fun (p : Proto.path) -> Parallel.test_case_to_string p.Proto.p_case)
    r.Coordinator.paths
  |> List.sort compare

let test_procs2_matches_serial () =
  let make_engine = make_engine_for workload_32 in
  let serial_cases, serial = serial_case_set workload_32 in
  let r =
    Coordinator.explore ~procs:2 ~cases:true
      ~spawn:(Coordinator.Fork { jobs = 1; slice = 0.01; make_engine })
      ~make_engine
      ~boot:(fun eng -> Executor.boot eng ~entry:0x1000 ())
      ()
  in
  Alcotest.(check int) "procs recorded" 2 r.Coordinator.procs;
  Alcotest.(check int) "nothing left unexplored" 0 r.Coordinator.unexplored;
  Alcotest.(check int) "no requeues" 0 r.Coordinator.requeues;
  Alcotest.(check (list string))
    "identical test-case sets" serial_cases (dist_case_set r);
  Alcotest.(check int) "same completion count"
    serial.Parallel.stats.Executor.states_completed
    r.Coordinator.stats.Executor.states_completed;
  Alcotest.(check int) "same fork count" serial.Parallel.stats.Executor.forks
    r.Coordinator.stats.Executor.forks;
  Alcotest.(check int) "same creation count"
    serial.Parallel.stats.Executor.states_created
    r.Coordinator.stats.Executor.states_created;
  Alcotest.(check bool) "worker solver contexts did the solving" true
    (r.Coordinator.solver_stats.Solver.queries > 0)

let test_kill_worker_mid_run () =
  let make_engine = make_engine_for workload_64 in
  let serial_cases, _ = serial_case_set workload_64 in
  (* SIGKILL the first worker the moment it is handed the root item: its
     in-flight item must be requeued and redone by a surviving/respawned
     worker, with no path lost or duplicated. *)
  let killed = ref false in
  let on_event = function
    | Coordinator.Dispatched { pid; _ } when not !killed ->
        killed := true;
        Unix.kill pid Sys.sigkill
    | _ -> ()
  in
  let r =
    Coordinator.explore ~procs:2 ~cases:true ~on_event
      ~spawn:(Coordinator.Fork { jobs = 1; slice = 0.01; make_engine })
      ~make_engine
      ~boot:(fun eng -> Executor.boot eng ~entry:0x1000 ())
      ()
  in
  Alcotest.(check bool) "a worker was killed" true !killed;
  Alcotest.(check bool) "in-flight item was requeued" true
    (r.Coordinator.requeues >= 1);
  Alcotest.(check bool) "worker was respawned" true (r.Coordinator.restarts >= 1);
  Alcotest.(check int) "nothing left unexplored" 0 r.Coordinator.unexplored;
  Alcotest.(check (list string))
    "path set unchanged by the crash" serial_cases (dist_case_set r)

(* ------------------------------------------------------------------ *)
(* Chaos: transport fault injection                                    *)
(* ------------------------------------------------------------------ *)

module Fault = S2e_fault.Fault

let with_plan ?seed spec f =
  (match Fault.parse_plan spec with
  | Ok plan -> Fault.install ?seed plan
  | Error msg -> Alcotest.failf "bad plan %S: %s" spec msg);
  Fun.protect ~finally:Fault.disarm f

(* Drive both ends of an in-process connection pair until a message (or
   control traffic) moves; bounded so a protocol bug fails instead of
   hanging. *)
let pump_until ~a ~b ~limit pred =
  let steps = ref 0 in
  let delivered = ref [] in
  while not (pred (List.rev !delivered)) && !steps < limit do
    incr steps;
    (match Proto.recv_opt b ~timeout:0.05 with
    | Some m -> delivered := m :: !delivered
    | None -> ());
    match Proto.recv_opt a ~timeout:0. with Some _ | None -> ()
  done;
  List.rev !delivered

let test_corrupt_frame_nak_retransmit () =
  let fd_a, fd_b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close fd_a;
      Unix.close fd_b)
    (fun () ->
      let a = Proto.connect fd_a and b = Proto.connect fd_b in
      let sent =
        [ Proto.Ping;
          Proto.Heartbeat { pid = 7; frontier = 3; now = 12.5; trace = "" };
          Proto.Steal ]
      in
      (* Every application frame is corrupted on the wire; the receiver
         must NAK each one and end up with the exact sequence anyway. *)
      with_plan "proto=corrupt:1.0" (fun () ->
          List.iter (Proto.send a) sent;
          let got =
            pump_until ~a ~b ~limit:200 (fun ms -> List.length ms >= 3)
          in
          Alcotest.(check bool) "all messages delivered in order" true
            (got = sent));
      Alcotest.(check bool) "receiver NAKed" true (b.Proto.naks >= 1);
      Alcotest.(check bool) "sender retransmitted" true
        (a.Proto.retransmits >= 3);
      Alcotest.(check int) "every frame was injected" 3 a.Proto.injected;
      (* The stream stays usable after recovery (recv_opt first drains
         any leftover duplicate retransmissions as [None]s). *)
      Proto.send a Proto.Shutdown;
      let rec drain n =
        if n = 0 then Alcotest.fail "clean frame after recovery not delivered"
        else
          match Proto.recv_opt b ~timeout:0.1 with
          | Some Proto.Shutdown -> ()
          | Some _ | None -> drain (n - 1)
      in
      drain 50)

let test_corrupt_transport_full_run () =
  let make_engine = make_engine_for workload_32 in
  let serial_cases, _ = serial_case_set workload_32 in
  let r =
    with_plan "proto=corrupt:0.3" (fun () ->
        Coordinator.explore ~procs:2 ~cases:true
          ~limits:
            {
              Executor.max_instructions = None;
              max_seconds = Some 60.;
              max_completed = None;
            }
          ~spawn:(Coordinator.Fork { jobs = 1; slice = 0.01; make_engine })
          ~make_engine
          ~boot:(fun eng -> Executor.boot eng ~entry:0x1000 ())
          ())
  in
  (* Transport-only chaos: work accounting must be untouched... *)
  Alcotest.(check int) "zero lost work items" 0 r.Coordinator.unexplored;
  Alcotest.(check bool) "no abandoned items" true (r.Coordinator.abandoned = []);
  Alcotest.(check int) "no requeues" 0 r.Coordinator.requeues;
  Alcotest.(check int) "no restarts" 0 r.Coordinator.restarts;
  Alcotest.(check (list string))
    "path set identical to serial" serial_cases (dist_case_set r);
  (* ...while the chaos demonstrably happened and was accounted for. *)
  Alcotest.(check bool) "faults were injected" true (r.Coordinator.injected > 0);
  Alcotest.(check bool) "NAKs recovered them" true (r.Coordinator.naks > 0);
  Alcotest.(check bool) "retransmissions served" true
    (r.Coordinator.retransmits > 0);
  Alcotest.(check int) "merged telemetry reports every injected fault"
    r.Coordinator.injected
    (S2e_obs.Metrics.get_int r.Coordinator.obs "fault.proto.corrupt")

let test_heartbeat_delay_abandonment () =
  let make_engine = make_engine_for workload_64 in
  (* Every heartbeat suppressed + every solver call slowed: the lone
     worker always goes silent past the timeout mid-item.  The
     coordinator must requeue once, then abandon the item visibly
     rather than dropping it on the floor. *)
  let r =
    with_plan "proto=delay:1.0,solver=latency:1.0" (fun () ->
        Coordinator.explore ~procs:1 ~max_item_attempts:1 ~max_restarts:8
          ~heartbeat_timeout:0.3
          ~spawn:(Coordinator.Fork { jobs = 1; slice = 0.01; make_engine })
          ~make_engine
          ~boot:(fun eng -> Executor.boot eng ~entry:0x1000 ())
          ())
  in
  Alcotest.(check bool) "silent worker's item was requeued" true
    (r.Coordinator.requeues >= 1);
  Alcotest.(check bool) "worker was respawned" true (r.Coordinator.restarts >= 1);
  Alcotest.(check (list (pair int int)))
    "root item abandoned with its attempt count" [ (0, 2) ]
    r.Coordinator.abandoned;
  Alcotest.(check bool) "abandoned work counts as unexplored" true
    (r.Coordinator.unexplored >= 1)

let tests =
  [
    Alcotest.test_case "expression codec roundtrip" `Quick test_expr_roundtrip;
    Alcotest.test_case "state snapshot roundtrip" `Quick test_state_roundtrip;
    Alcotest.test_case "strict decode errors" `Quick test_strict_decode_errors;
    Alcotest.test_case "procs=2 drains same path set as serial" `Quick
      test_procs2_matches_serial;
    Alcotest.test_case "killed worker's states are requeued" `Quick
      test_kill_worker_mid_run;
    Alcotest.test_case "corrupted frame is NAKed and retransmitted" `Quick
      test_corrupt_frame_nak_retransmit;
    Alcotest.test_case "corrupt transport: zero lost work, same paths" `Quick
      test_corrupt_transport_full_run;
    Alcotest.test_case "heartbeat delay: requeue then visible abandonment"
      `Quick test_heartbeat_delay_abandonment;
  ]
