(* lib/dist tests: snapshot codec roundtrips, strict decoding, and
   differential + fault-injection tests for the fork-server coordinator.

   This suite must run before any suite that spawns OCaml domains: the
   coordinator's Fork spawn mode uses Unix.fork, which is only safe
   while the process is still single-domain. *)

open S2e_cc
open S2e_core
open S2e_expr
module Codec = S2e_dist.Codec
module Proto = S2e_dist.Proto
module Coordinator = S2e_dist.Coordinator
module Solver = S2e_solver.Solver

let runtime =
  {|
__start:
  li sp, 0xFFFF0
  jal main
  li r1, 0x900
  sw r0, 0(r1)
  halt
|}

(* 2^5 = 32 paths; every path fixes all five tested bits, so test cases
   are distinct and the drained path set is deterministic. *)
let workload_32 =
  {|
int main() {
  int x = __s2e_sym_int(1);
  int acc = 0;
  for (int i = 0; i < 5; i = i + 1) {
    if ((x >> i) & 1) acc = acc + (i * 3 + 1);
  }
  if (acc > 20) return 1;
  return 0;
} |}

(* 2^6 = 64 paths: enough runway that a worker killed mid-run is still
   holding unexplored states. *)
let workload_64 =
  {|
int main() {
  int x = __s2e_sym_int(1);
  int acc = 0;
  for (int i = 0; i < 6; i = i + 1) {
    if ((x >> i) & 1) acc = acc + (i * 3 + 1);
  }
  if (acc > 30) return 1;
  return 0;
} |}

(* 2^8 = 256 paths: a run long enough that TCP chaos (disconnects,
   kills, joins) reliably lands mid-run. *)
let workload_256 =
  {|
int main() {
  int x = __s2e_sym_int(1);
  int acc = 0;
  for (int i = 0; i < 8; i = i + 1) {
    if ((x >> i) & 1) acc = acc + (i * 3 + 1);
  }
  if (acc > 50) return 1;
  return 0;
} |}

(* 2^12 = 4096 paths: seconds of runway, so probabilistic disconnect
   chaos (p = 0.05 per liveness draw) fires many times per run. *)
let workload_4096 =
  {|
int main() {
  int x = __s2e_sym_int(1);
  int y = __s2e_sym_int(1);
  int acc = 0;
  for (int i = 0; i < 6; i = i + 1) {
    if ((x >> i) & 1) acc = acc + (i * 3 + 1);
    if ((y >> i) & 1) acc = acc + (i * 5 + 2);
  }
  if (acc > 100) return 1;
  return 0;
} |}

let make_engine_for workload () =
  let linked = Cc.link ~runtime_asm:runtime [ ("prog", workload) ] in
  let engine = Executor.create () in
  Executor.load engine
    {
      Executor.l_origin = linked.image.origin;
      l_code = linked.image.code;
      l_modules =
        List.map
          (fun (m : Cc.module_range) ->
            (m.m_name, m.m_start, m.m_code_end, m.m_end))
          linked.modules;
    };
  Executor.set_unit engine [ "prog" ];
  engine

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_expr_roundtrip () =
  (* Expr.Raw builds these shapes verbatim (no smart-constructor folding),
     which is exactly what the codec promises to reproduce. *)
  let v = Expr.Raw.var ~id:7 ~name:"sym1_0" ~width:8 in
  let exprs =
    [
      Expr.Raw.const ~width:16 0x1234L;
      v;
      Expr.Raw.unop Expr.Bnot v;
      Expr.Raw.binop Expr.Add v v;
      Expr.Raw.cmp Expr.Slt v (Expr.Raw.const ~width:8 3L);
      Expr.Raw.ite (Expr.Raw.cmp Expr.Eq v v) v v;
      Expr.Raw.extract ~hi:6 ~lo:2 v;
      Expr.Raw.concat ~high:v ~low:v;
      Expr.Raw.zext ~width:32 v;
      Expr.Raw.sext ~width:64 v;
    ]
  in
  List.iter
    (fun e ->
      let e' = Codec.decode_expr (Codec.encode_expr e) in
      Alcotest.(check bool) "expr roundtrips structurally" true (Expr.equal e e');
      (* Decode interns into this domain's table, so the roundtrip result
         must be the canonical node itself. *)
      Alcotest.(check bool) "expr roundtrips physically" true (e == e'))
    exprs

(* Explore a few paths, then snapshot a mid-run frontier state: it has a
   symbolic memory overlay, non-trivial path constraints and live device
   state. *)
let frontier_state () =
  let eng = make_engine_for workload_32 () in
  let s0 = Executor.boot eng ~entry:0x1000 () in
  ignore
    (Executor.run
       ~limits:
         {
           Executor.max_instructions = None;
           max_seconds = None;
           max_completed = Some 4;
         }
       eng s0);
  match eng.Executor.live with
  | [] -> Alcotest.fail "expected a live frontier state"
  | s :: _ -> (eng, s)

let test_state_roundtrip () =
  let eng, s = frontier_state () in
  Alcotest.(check bool) "state has constraints" true (s.State.constraints <> []);
  let blob = Codec.encode_state s in
  let s' = Codec.decode_state ~base:eng.Executor.base_mem blob in
  Alcotest.(check int) "id" s.State.id s'.State.id;
  Alcotest.(check int) "parent" s.State.parent s'.State.parent;
  Alcotest.(check int) "pc" s.State.pc s'.State.pc;
  Alcotest.(check int) "depth" s.State.depth s'.State.depth;
  Alcotest.(check int) "instret" s.State.instret s'.State.instret;
  Alcotest.(check int) "sym_instret" s.State.sym_instret s'.State.sym_instret;
  Alcotest.(check string) "status" (State.status_string s.State.status)
    (State.status_string s'.State.status);
  Alcotest.(check bool) "regs equal" true (s.State.regs = s'.State.regs);
  Alcotest.(check bool) "constraints equal (exact order, no resimplify)" true
    (s.State.constraints = s'.State.constraints);
  let overlay st =
    Symmem.fold_overlay (fun a e acc -> (a, e) :: acc) st.State.mem []
  in
  Alcotest.(check bool) "overlay non-empty" true (overlay s <> []);
  Alcotest.(check bool) "overlay equal" true (overlay s = overlay s');
  Alcotest.(check bool) "same base image" true
    (Symmem.base s'.State.mem == eng.Executor.base_mem);
  Alcotest.(check string) "console" s.State.devices.S2e_vm.Devices.console.out
    s'.State.devices.S2e_vm.Devices.console.out;
  (* The decoded state must solve to the same canonical test case. *)
  Alcotest.(check string) "same test case"
    (Parallel.test_case_to_string (Parallel.test_case s))
    (Parallel.test_case_to_string (Parallel.test_case s'))

let test_strict_decode_errors () =
  let eng, s = frontier_state () in
  let base = eng.Executor.base_mem in
  let blob = Codec.encode_state s in
  let raises what f =
    match f () with
    | (_ : State.t) -> Alcotest.failf "%s: expected Codec.Error" what
    | exception Codec.Error _ -> ()
  in
  raises "truncated" (fun () ->
      Codec.decode_state ~base (String.sub blob 0 (String.length blob / 2)));
  raises "empty" (fun () -> Codec.decode_state ~base "");
  (* Flip one payload byte: the trailing checksum must catch it. *)
  let corrupt = Bytes.of_string blob in
  let mid = Bytes.length corrupt / 2 in
  Bytes.set corrupt mid (Char.chr (Char.code (Bytes.get corrupt mid) lxor 0x40));
  raises "corrupted byte" (fun () ->
      Codec.decode_state ~base (Bytes.to_string corrupt));
  (* Wrong magic. *)
  let wrong_magic = Bytes.of_string blob in
  Bytes.set wrong_magic 0 'X';
  raises "wrong magic" (fun () ->
      Codec.decode_state ~base (Bytes.to_string wrong_magic));
  (* Trailing garbage after a well-formed payload. *)
  raises "trailing bytes" (fun () -> Codec.decode_state ~base (blob ^ "\000"));
  (* A different base image must be rejected by the fingerprint. *)
  let other = Bytes.copy base in
  Bytes.set other 0 (Char.chr (Char.code (Bytes.get other 0) lxor 1));
  raises "base image mismatch" (fun () -> Codec.decode_state ~base:other blob)

(* ------------------------------------------------------------------ *)
(* Delta codec                                                         *)
(* ------------------------------------------------------------------ *)

let test_compress_roundtrip () =
  let cases =
    [
      "";
      "a";
      "abc";
      String.make 3 'r';
      String.make 500 '\000';
      String.init 400 (fun i -> Char.chr (i * 7 mod 251));
      (* literal runs longer than one 128-byte op *)
      String.init 300 (fun i -> Char.chr (i mod 253));
      (* run longer than one 130-repeat op, with literal tails *)
      "xy" ^ String.make 1000 'z' ^ "tail";
      (* 1- and 2-byte repeats must stay literals, not bogus runs *)
      "aabbccddee";
    ]
  in
  List.iter
    (fun s ->
      let c = Codec.compress s in
      Alcotest.(check string)
        "compress/decompress roundtrip" s
        (Codec.decompress ~expect:(String.length s) c))
    cases;
  (* A run-heavy input must actually shrink. *)
  Alcotest.(check bool)
    "runs compress" true
    (String.length (Codec.compress (String.make 4096 '\000')) < 256)

let test_delta_roundtrip () =
  let eng, s = frontier_state () in
  let baseline = Codec.encode_state s in
  (* Delta a sibling frontier state against it: mid-run siblings share
     almost everything, so the block-match mode must engage. *)
  let target =
    match eng.Executor.live with
    | _ :: t :: _ -> Codec.encode_state t
    | _ -> Alcotest.fail "expected at least two frontier states"
  in
  let d = Codec.encode_delta ~baseline target in
  Alcotest.(check bool) "tagged as delta" true (Codec.is_delta d);
  Alcotest.(check bool) "full blobs are not deltas" false
    (Codec.is_delta target);
  Alcotest.(check bool) "delta never exceeds the full blob" true
    (String.length d <= String.length target);
  Alcotest.(check char) "block-match mode engaged (not fallback)" 'D' d.[3];
  (* 'D' is only ever chosen when strictly smaller than shipping whole. *)
  Alcotest.(check bool) "engaged delta is strictly smaller" true
    (String.length d < String.length target);
  let target' = Codec.decode_delta ~baseline d in
  Alcotest.(check string) "decode(encode) is byte-identical" target target';
  (* The reconstructed blob decodes to a working state. *)
  let st = Codec.decode_state ~base:eng.Executor.base_mem target' in
  Alcotest.(check bool) "reconstructed state decodes" true (st.State.id >= 0);
  (* Self-delta: maximal sharing, near-nothing on the wire. *)
  let self = Codec.encode_delta ~baseline baseline in
  Alcotest.(check bool) "self-delta is tiny" true (String.length self < 64);
  Alcotest.(check string) "self-delta roundtrips" baseline
    (Codec.decode_delta ~baseline self)

let test_delta_baseline_mismatch () =
  let eng, s = frontier_state () in
  let baseline = Codec.encode_state s in
  let target =
    match eng.Executor.live with
    | _ :: t :: _ -> Codec.encode_state t
    | _ -> Alcotest.fail "expected at least two frontier states"
  in
  let d = Codec.encode_delta ~baseline target in
  Alcotest.(check char) "block-match mode engaged" 'D' d.[3];
  (* Applying against any other baseline must be rejected by the
     negotiated-baseline digest, not silently produce garbage.  The
     target blob itself is a handy wrong-baseline: well-formed, same
     run, different payload. *)
  let other = target in
  Alcotest.(check bool) "baselines actually differ" true (other <> baseline);
  (match Codec.decode_delta ~baseline:other d with
  | (_ : string) -> Alcotest.fail "mismatched baseline must raise"
  | exception Codec.Error _ -> ());
  (* Fallback-mode deltas carry everything and are baseline-independent;
     a torn 'D' body must still be caught by its ops checksum. *)
  let torn = Bytes.of_string d in
  let mid = Bytes.length torn - 8 in
  Bytes.set torn mid (Char.chr (Char.code (Bytes.get torn mid) lxor 1));
  match Codec.decode_delta ~baseline (Bytes.to_string torn) with
  | (_ : string) -> Alcotest.fail "torn delta must raise"
  | exception Codec.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Coordinator                                                         *)
(* ------------------------------------------------------------------ *)

let serial_case_set workload =
  let r = Parallel.explore ~jobs:1 ~make_engine:(make_engine_for workload)
      ~boot:(fun eng -> Executor.boot eng ~entry:0x1000 ()) ()
  in
  ( List.map
      (fun (s : State.t) ->
        Parallel.test_case_to_string (Parallel.test_case s))
      r.Parallel.completed
    |> List.sort compare,
    r )

let dist_case_set (r : Coordinator.result) =
  List.map
    (fun (p : Proto.path) -> Parallel.test_case_to_string p.Proto.p_case)
    r.Coordinator.paths
  |> List.sort compare

let test_procs2_matches_serial () =
  let make_engine = make_engine_for workload_32 in
  let serial_cases, serial = serial_case_set workload_32 in
  let r =
    Coordinator.explore ~procs:2 ~cases:true
      ~spawn:(Coordinator.Fork { jobs = 1; slice = 0.01; make_engine })
      ~make_engine
      ~boot:(fun eng -> Executor.boot eng ~entry:0x1000 ())
      ()
  in
  Alcotest.(check int) "procs recorded" 2 r.Coordinator.procs;
  Alcotest.(check int) "nothing left unexplored" 0 r.Coordinator.unexplored;
  Alcotest.(check int) "no requeues" 0 r.Coordinator.requeues;
  Alcotest.(check (list string))
    "identical test-case sets" serial_cases (dist_case_set r);
  Alcotest.(check int) "same completion count"
    serial.Parallel.stats.Executor.states_completed
    r.Coordinator.stats.Executor.states_completed;
  Alcotest.(check int) "same fork count" serial.Parallel.stats.Executor.forks
    r.Coordinator.stats.Executor.forks;
  Alcotest.(check int) "same creation count"
    serial.Parallel.stats.Executor.states_created
    r.Coordinator.stats.Executor.states_created;
  Alcotest.(check bool) "worker solver contexts did the solving" true
    (r.Coordinator.solver_stats.Solver.queries > 0)

let test_kill_worker_mid_run () =
  let make_engine = make_engine_for workload_64 in
  let serial_cases, _ = serial_case_set workload_64 in
  (* SIGKILL the first worker the moment it is handed the root item: its
     in-flight item must be requeued and redone by a surviving/respawned
     worker, with no path lost or duplicated. *)
  let killed = ref false in
  let on_event = function
    | Coordinator.Dispatched { pid; _ } when not !killed ->
        killed := true;
        Unix.kill pid Sys.sigkill
    | _ -> ()
  in
  let r =
    Coordinator.explore ~procs:2 ~cases:true ~on_event
      ~spawn:(Coordinator.Fork { jobs = 1; slice = 0.01; make_engine })
      ~make_engine
      ~boot:(fun eng -> Executor.boot eng ~entry:0x1000 ())
      ()
  in
  Alcotest.(check bool) "a worker was killed" true !killed;
  Alcotest.(check bool) "in-flight item was requeued" true
    (r.Coordinator.requeues >= 1);
  Alcotest.(check bool) "worker was respawned" true (r.Coordinator.restarts >= 1);
  Alcotest.(check int) "nothing left unexplored" 0 r.Coordinator.unexplored;
  Alcotest.(check (list string))
    "path set unchanged by the crash" serial_cases (dist_case_set r)

(* ------------------------------------------------------------------ *)
(* Chaos: transport fault injection                                    *)
(* ------------------------------------------------------------------ *)

module Fault = S2e_fault.Fault

let with_plan ?seed spec f =
  (match Fault.parse_plan spec with
  | Ok plan -> Fault.install ?seed plan
  | Error msg -> Alcotest.failf "bad plan %S: %s" spec msg);
  Fun.protect ~finally:Fault.disarm f

(* Drive both ends of an in-process connection pair until a message (or
   control traffic) moves; bounded so a protocol bug fails instead of
   hanging. *)
let pump_until ~a ~b ~limit pred =
  let steps = ref 0 in
  let delivered = ref [] in
  while not (pred (List.rev !delivered)) && !steps < limit do
    incr steps;
    (match Proto.recv_opt b ~timeout:0.05 with
    | Some m -> delivered := m :: !delivered
    | None -> ());
    match Proto.recv_opt a ~timeout:0. with Some _ | None -> ()
  done;
  List.rev !delivered

let test_corrupt_frame_nak_retransmit () =
  let fd_a, fd_b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close fd_a;
      Unix.close fd_b)
    (fun () ->
      let a = Proto.connect fd_a and b = Proto.connect fd_b in
      let sent =
        [ Proto.Ping;
          Proto.Heartbeat { pid = 7; frontier = 3; now = 12.5; trace = "" };
          Proto.Steal ]
      in
      (* Every application frame is corrupted on the wire; the receiver
         must NAK each one and end up with the exact sequence anyway. *)
      with_plan "proto=corrupt:1.0" (fun () ->
          List.iter (Proto.send a) sent;
          let got =
            pump_until ~a ~b ~limit:200 (fun ms -> List.length ms >= 3)
          in
          Alcotest.(check bool) "all messages delivered in order" true
            (got = sent));
      Alcotest.(check bool) "receiver NAKed" true (b.Proto.naks >= 1);
      Alcotest.(check bool) "sender retransmitted" true
        (a.Proto.retransmits >= 3);
      Alcotest.(check int) "every frame was injected" 3 a.Proto.injected;
      (* The stream stays usable after recovery (recv_opt first drains
         any leftover duplicate retransmissions as [None]s). *)
      Proto.send a Proto.Shutdown;
      let rec drain n =
        if n = 0 then Alcotest.fail "clean frame after recovery not delivered"
        else
          match Proto.recv_opt b ~timeout:0.1 with
          | Some Proto.Shutdown -> ()
          | Some _ | None -> drain (n - 1)
      in
      drain 50)

let test_corrupt_transport_full_run () =
  let make_engine = make_engine_for workload_32 in
  let serial_cases, _ = serial_case_set workload_32 in
  let r =
    with_plan "proto=corrupt:0.3" (fun () ->
        Coordinator.explore ~procs:2 ~cases:true
          ~limits:
            {
              Executor.max_instructions = None;
              max_seconds = Some 60.;
              max_completed = None;
            }
          ~spawn:(Coordinator.Fork { jobs = 1; slice = 0.01; make_engine })
          ~make_engine
          ~boot:(fun eng -> Executor.boot eng ~entry:0x1000 ())
          ())
  in
  (* Transport-only chaos: work accounting must be untouched... *)
  Alcotest.(check int) "zero lost work items" 0 r.Coordinator.unexplored;
  Alcotest.(check bool) "no abandoned items" true (r.Coordinator.abandoned = []);
  Alcotest.(check int) "no requeues" 0 r.Coordinator.requeues;
  Alcotest.(check int) "no restarts" 0 r.Coordinator.restarts;
  Alcotest.(check (list string))
    "path set identical to serial" serial_cases (dist_case_set r);
  (* ...while the chaos demonstrably happened and was accounted for. *)
  Alcotest.(check bool) "faults were injected" true (r.Coordinator.injected > 0);
  Alcotest.(check bool) "NAKs recovered them" true (r.Coordinator.naks > 0);
  Alcotest.(check bool) "retransmissions served" true
    (r.Coordinator.retransmits > 0);
  Alcotest.(check int) "merged telemetry reports every injected fault"
    r.Coordinator.injected
    (S2e_obs.Metrics.get_int r.Coordinator.obs "fault.proto.corrupt")

let test_heartbeat_delay_abandonment () =
  let make_engine = make_engine_for workload_64 in
  (* Every heartbeat suppressed + every solver call slowed: the lone
     worker always goes silent past the timeout mid-item.  The
     coordinator must requeue once, then abandon the item visibly
     rather than dropping it on the floor. *)
  let r =
    with_plan "proto=delay:1.0,solver=latency:1.0" (fun () ->
        Coordinator.explore ~procs:1 ~max_item_attempts:1 ~max_restarts:8
          ~heartbeat_timeout:0.3
          ~spawn:(Coordinator.Fork { jobs = 1; slice = 0.01; make_engine })
          ~make_engine
          ~boot:(fun eng -> Executor.boot eng ~entry:0x1000 ())
          ())
  in
  Alcotest.(check bool) "silent worker's item was requeued" true
    (r.Coordinator.requeues >= 1);
  Alcotest.(check bool) "worker was respawned" true (r.Coordinator.restarts >= 1);
  Alcotest.(check (list (pair int int)))
    "root item abandoned with its attempt count" [ (0, 2) ]
    r.Coordinator.abandoned;
  Alcotest.(check bool) "abandoned work counts as unexplored" true
    (r.Coordinator.unexplored >= 1)

(* ------------------------------------------------------------------ *)
(* Elastic TCP cluster                                                 *)
(* ------------------------------------------------------------------ *)

module Worker = S2e_dist.Worker

let no_limits ~seconds =
  {
    Executor.max_instructions = None;
    max_seconds = Some seconds;
    max_completed = None;
  }

(* Fork a TCP worker process.  The child closes every inherited
   descriptor above stderr (coordinator sockets, the listener, test-log
   fds): a surviving copy would pin peers' connections open and defeat
   the coordinator's EOF detection.  Any armed fault plan is inherited
   across the fork, so install chaos before forking. *)
let fork_tcp_worker ?(delay = 0.) ~port ~make_engine () =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      for fd = 3 to 255 do
        try Unix.close (Proto.fd_of_int fd) with Unix.Unix_error _ -> ()
      done;
      if delay > 0. then Unix.sleepf delay;
      (try
         (* heartbeat 0.02: ~50 liveness draws/sec, so a probabilistic
            chaos plan reliably fires even on short runs *)
         Worker.serve_tcp ~jobs:1 ~slice:0.01 ~heartbeat:0.02 ~max_retries:60
           ~host:"127.0.0.1" ~port ~make_engine ()
       with _ -> ());
      Unix._exit 0
  | pid -> pid

let reap_worker pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let boot_entry eng = Executor.boot eng ~entry:0x1000 ()

(* The acceptance scenario: two TCP workers under disconnect chaos
   (every heartbeat draw has a 5% chance of abruptly severing the
   connection).  Workers must keep rejoining with their session tokens;
   transport loss must never bleed into abandonment; and the final case
   set must match a serial run exactly. *)
let test_tcp_disconnect_chaos () =
  let make_engine = make_engine_for workload_4096 in
  let serial_cases, _ = serial_case_set workload_4096 in
  let lfd = Proto.listen ~host:"127.0.0.1" ~port:0 in
  let port = Proto.bound_port lfd in
  let pids = ref [] in
  let r =
    with_plan "proto=disconnect:0.05" (fun () ->
        pids :=
          [
            fork_tcp_worker ~port ~make_engine ();
            fork_tcp_worker ~port ~make_engine ();
          ];
        Coordinator.explore ~procs:0 ~cases:true ~listener:lfd
          ~heartbeat_timeout:2.0 ~limits:(no_limits ~seconds:120.)
          ~spawn:(Coordinator.Fork { jobs = 1; slice = 0.01; make_engine })
          ~make_engine ~boot:boot_entry ())
  in
  Unix.close lfd;
  List.iter reap_worker !pids;
  Alcotest.(check bool) "both workers joined" true (r.Coordinator.joins >= 2);
  Alcotest.(check bool) "disconnects happened and were survived" true
    (r.Coordinator.reconnects > 0);
  Alcotest.(check bool) "leaves were recorded" true (r.Coordinator.leaves > 0);
  Alcotest.(check (list (pair int int)))
    "transport chaos never abandons items" [] r.Coordinator.abandoned;
  Alcotest.(check int) "nothing left unexplored" 0 r.Coordinator.unexplored;
  Alcotest.(check bool) "deltas were shipped" true
    (r.Coordinator.delta_full_bytes > 0);
  Alcotest.(check bool) "deltas actually saved bytes" true
    (r.Coordinator.delta_bytes < r.Coordinator.delta_full_bytes);
  Alcotest.(check (list string))
    "case set identical to serial under chaos" serial_cases (dist_case_set r)

(* SIGKILL a TCP worker the moment it is handed an item, then have a
   fresh worker join mid-run: the lease recovers the in-flight item, the
   replacement is admitted, and no path is lost or duplicated. *)
let test_tcp_kill_and_join () =
  let make_engine = make_engine_for workload_256 in
  let serial_cases, _ = serial_case_set workload_256 in
  let lfd = Proto.listen ~host:"127.0.0.1" ~port:0 in
  let port = Proto.bound_port lfd in
  let w1 = fork_tcp_worker ~port ~make_engine () in
  let pids = ref [ w1 ] in
  let killed = ref false in
  let on_event = function
    | Coordinator.Dispatched { pid; _ } when (not !killed) && pid = w1 ->
        killed := true;
        Unix.kill w1 Sys.sigkill;
        (* the replacement dials in while the run is underway *)
        pids := fork_tcp_worker ~port ~make_engine () :: !pids
    | _ -> ()
  in
  let r =
    Coordinator.explore ~procs:0 ~cases:true ~listener:lfd
      ~heartbeat_timeout:1.0 ~limits:(no_limits ~seconds:120.) ~on_event
      ~spawn:(Coordinator.Fork { jobs = 1; slice = 0.01; make_engine })
      ~make_engine ~boot:boot_entry ()
  in
  Unix.close lfd;
  List.iter reap_worker !pids;
  Alcotest.(check bool) "the first worker was killed" true !killed;
  Alcotest.(check bool) "original + replacement both admitted" true
    (r.Coordinator.joins >= 2);
  Alcotest.(check bool) "the kill was detected as a leave" true
    (r.Coordinator.leaves >= 1);
  Alcotest.(check bool) "its in-flight item was requeued" true
    (r.Coordinator.requeues >= 1);
  Alcotest.(check (list (pair int int)))
    "no abandonment from the kill" [] r.Coordinator.abandoned;
  Alcotest.(check int) "nothing left unexplored" 0 r.Coordinator.unexplored;
  Alcotest.(check (list string))
    "case set identical to serial across kill + join" serial_cases
    (dist_case_set r)

(* Bottom rung of the degradation ladder: a listener with no workers at
   all.  The coordinator must complete the whole run on its own boot
   engine and still produce the serial case set. *)
let test_solo_completion () =
  let make_engine = make_engine_for workload_32 in
  let serial_cases, serial = serial_case_set workload_32 in
  let lfd = Proto.listen ~host:"127.0.0.1" ~port:0 in
  let r =
    Coordinator.explore ~procs:0 ~cases:true ~listener:lfd
      ~limits:(no_limits ~seconds:60.)
      ~spawn:
        (Coordinator.Fork { jobs = 1; slice = 0.01; make_engine })
      ~make_engine ~boot:boot_entry ()
  in
  Unix.close lfd;
  Alcotest.(check int) "no workers ever joined" 0 r.Coordinator.joins;
  Alcotest.(check int) "nothing left unexplored" 0 r.Coordinator.unexplored;
  Alcotest.(check bool) "paths were explored solo" true
    (r.Coordinator.solo_paths > 0);
  Alcotest.(check int) "every path was explored solo"
    serial.Parallel.stats.Executor.states_completed r.Coordinator.solo_paths;
  Alcotest.(check (list string))
    "solo case set identical to serial" serial_cases (dist_case_set r)

let tests =
  [
    Alcotest.test_case "expression codec roundtrip" `Quick test_expr_roundtrip;
    Alcotest.test_case "state snapshot roundtrip" `Quick test_state_roundtrip;
    Alcotest.test_case "strict decode errors" `Quick test_strict_decode_errors;
    Alcotest.test_case "procs=2 drains same path set as serial" `Quick
      test_procs2_matches_serial;
    Alcotest.test_case "killed worker's states are requeued" `Quick
      test_kill_worker_mid_run;
    Alcotest.test_case "corrupted frame is NAKed and retransmitted" `Quick
      test_corrupt_frame_nak_retransmit;
    Alcotest.test_case "corrupt transport: zero lost work, same paths" `Quick
      test_corrupt_transport_full_run;
    Alcotest.test_case "heartbeat delay: requeue then visible abandonment"
      `Quick test_heartbeat_delay_abandonment;
    Alcotest.test_case "byte-run compressor roundtrip" `Quick
      test_compress_roundtrip;
    Alcotest.test_case "delta snapshot roundtrip against baseline" `Quick
      test_delta_roundtrip;
    Alcotest.test_case "delta rejects mismatched baseline" `Quick
      test_delta_baseline_mismatch;
    Alcotest.test_case "tcp cluster: disconnect chaos, same paths" `Quick
      test_tcp_disconnect_chaos;
    Alcotest.test_case "tcp cluster: kill one worker, join another" `Quick
      test_tcp_kill_and_join;
    Alcotest.test_case "tcp cluster: coordinator-solo completion" `Quick
      test_solo_completion;
  ]
