(* lib/dist tests: snapshot codec roundtrips, strict decoding, and
   differential + fault-injection tests for the fork-server coordinator.

   This suite must run before any suite that spawns OCaml domains: the
   coordinator's Fork spawn mode uses Unix.fork, which is only safe
   while the process is still single-domain. *)

open S2e_cc
open S2e_core
open S2e_expr
module Codec = S2e_dist.Codec
module Proto = S2e_dist.Proto
module Coordinator = S2e_dist.Coordinator
module Solver = S2e_solver.Solver

let runtime =
  {|
__start:
  li sp, 0xFFFF0
  jal main
  li r1, 0x900
  sw r0, 0(r1)
  halt
|}

(* 2^5 = 32 paths; every path fixes all five tested bits, so test cases
   are distinct and the drained path set is deterministic. *)
let workload_32 =
  {|
int main() {
  int x = __s2e_sym_int(1);
  int acc = 0;
  for (int i = 0; i < 5; i = i + 1) {
    if ((x >> i) & 1) acc = acc + (i * 3 + 1);
  }
  if (acc > 20) return 1;
  return 0;
} |}

(* 2^6 = 64 paths: enough runway that a worker killed mid-run is still
   holding unexplored states. *)
let workload_64 =
  {|
int main() {
  int x = __s2e_sym_int(1);
  int acc = 0;
  for (int i = 0; i < 6; i = i + 1) {
    if ((x >> i) & 1) acc = acc + (i * 3 + 1);
  }
  if (acc > 30) return 1;
  return 0;
} |}

let make_engine_for workload () =
  let linked = Cc.link ~runtime_asm:runtime [ ("prog", workload) ] in
  let engine = Executor.create () in
  Executor.load engine
    {
      Executor.l_origin = linked.image.origin;
      l_code = linked.image.code;
      l_modules =
        List.map
          (fun (m : Cc.module_range) ->
            (m.m_name, m.m_start, m.m_code_end, m.m_end))
          linked.modules;
    };
  Executor.set_unit engine [ "prog" ];
  engine

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_expr_roundtrip () =
  let v = Expr.Var { id = 7; name = "sym1_0"; width = 8 } in
  let exprs =
    [
      Expr.Const { value = 0x1234L; width = 16 };
      v;
      Expr.Unop { op = Expr.Bnot; arg = v; width = 8 };
      Expr.Binop { op = Expr.Add; lhs = v; rhs = v; width = 8 };
      Expr.Cmp { op = Expr.Slt; lhs = v; rhs = Expr.Const { value = 3L; width = 8 } };
      Expr.Ite
        {
          cond = Expr.Cmp { op = Expr.Eq; lhs = v; rhs = v };
          then_ = v;
          else_ = v;
          width = 8;
        };
      Expr.Extract { hi = 6; lo = 2; arg = v };
      Expr.Concat { high = v; low = v; width = 16 };
      Expr.Zext { arg = v; width = 32 };
      Expr.Sext { arg = v; width = 64 };
    ]
  in
  List.iter
    (fun e ->
      let e' = Codec.decode_expr (Codec.encode_expr e) in
      Alcotest.(check bool) "expr roundtrips structurally" true (e = e'))
    exprs

(* Explore a few paths, then snapshot a mid-run frontier state: it has a
   symbolic memory overlay, non-trivial path constraints and live device
   state. *)
let frontier_state () =
  let eng = make_engine_for workload_32 () in
  let s0 = Executor.boot eng ~entry:0x1000 () in
  ignore
    (Executor.run
       ~limits:
         {
           Executor.max_instructions = None;
           max_seconds = None;
           max_completed = Some 4;
         }
       eng s0);
  match eng.Executor.live with
  | [] -> Alcotest.fail "expected a live frontier state"
  | s :: _ -> (eng, s)

let test_state_roundtrip () =
  let eng, s = frontier_state () in
  Alcotest.(check bool) "state has constraints" true (s.State.constraints <> []);
  let blob = Codec.encode_state s in
  let s' = Codec.decode_state ~base:eng.Executor.base_mem blob in
  Alcotest.(check int) "id" s.State.id s'.State.id;
  Alcotest.(check int) "parent" s.State.parent s'.State.parent;
  Alcotest.(check int) "pc" s.State.pc s'.State.pc;
  Alcotest.(check int) "depth" s.State.depth s'.State.depth;
  Alcotest.(check int) "instret" s.State.instret s'.State.instret;
  Alcotest.(check int) "sym_instret" s.State.sym_instret s'.State.sym_instret;
  Alcotest.(check string) "status" (State.status_string s.State.status)
    (State.status_string s'.State.status);
  Alcotest.(check bool) "regs equal" true (s.State.regs = s'.State.regs);
  Alcotest.(check bool) "constraints equal (exact order, no resimplify)" true
    (s.State.constraints = s'.State.constraints);
  let overlay st =
    Symmem.fold_overlay (fun a e acc -> (a, e) :: acc) st.State.mem []
  in
  Alcotest.(check bool) "overlay non-empty" true (overlay s <> []);
  Alcotest.(check bool) "overlay equal" true (overlay s = overlay s');
  Alcotest.(check bool) "same base image" true
    (Symmem.base s'.State.mem == eng.Executor.base_mem);
  Alcotest.(check string) "console" s.State.devices.S2e_vm.Devices.console.out
    s'.State.devices.S2e_vm.Devices.console.out;
  (* The decoded state must solve to the same canonical test case. *)
  Alcotest.(check string) "same test case"
    (Parallel.test_case_to_string (Parallel.test_case s))
    (Parallel.test_case_to_string (Parallel.test_case s'))

let test_strict_decode_errors () =
  let eng, s = frontier_state () in
  let base = eng.Executor.base_mem in
  let blob = Codec.encode_state s in
  let raises what f =
    match f () with
    | (_ : State.t) -> Alcotest.failf "%s: expected Codec.Error" what
    | exception Codec.Error _ -> ()
  in
  raises "truncated" (fun () ->
      Codec.decode_state ~base (String.sub blob 0 (String.length blob / 2)));
  raises "empty" (fun () -> Codec.decode_state ~base "");
  (* Flip one payload byte: the trailing checksum must catch it. *)
  let corrupt = Bytes.of_string blob in
  let mid = Bytes.length corrupt / 2 in
  Bytes.set corrupt mid (Char.chr (Char.code (Bytes.get corrupt mid) lxor 0x40));
  raises "corrupted byte" (fun () ->
      Codec.decode_state ~base (Bytes.to_string corrupt));
  (* Wrong magic. *)
  let wrong_magic = Bytes.of_string blob in
  Bytes.set wrong_magic 0 'X';
  raises "wrong magic" (fun () ->
      Codec.decode_state ~base (Bytes.to_string wrong_magic));
  (* Trailing garbage after a well-formed payload. *)
  raises "trailing bytes" (fun () -> Codec.decode_state ~base (blob ^ "\000"));
  (* A different base image must be rejected by the fingerprint. *)
  let other = Bytes.copy base in
  Bytes.set other 0 (Char.chr (Char.code (Bytes.get other 0) lxor 1));
  raises "base image mismatch" (fun () -> Codec.decode_state ~base:other blob)

(* ------------------------------------------------------------------ *)
(* Coordinator                                                         *)
(* ------------------------------------------------------------------ *)

let serial_case_set workload =
  let r = Parallel.explore ~jobs:1 ~make_engine:(make_engine_for workload)
      ~boot:(fun eng -> Executor.boot eng ~entry:0x1000 ()) ()
  in
  ( List.map
      (fun (s : State.t) ->
        Parallel.test_case_to_string (Parallel.test_case s))
      r.Parallel.completed
    |> List.sort compare,
    r )

let dist_case_set (r : Coordinator.result) =
  List.map
    (fun (p : Proto.path) -> Parallel.test_case_to_string p.Proto.p_case)
    r.Coordinator.paths
  |> List.sort compare

let test_procs2_matches_serial () =
  let make_engine = make_engine_for workload_32 in
  let serial_cases, serial = serial_case_set workload_32 in
  let r =
    Coordinator.explore ~procs:2 ~cases:true
      ~spawn:(Coordinator.Fork { jobs = 1; slice = 0.01; make_engine })
      ~make_engine
      ~boot:(fun eng -> Executor.boot eng ~entry:0x1000 ())
      ()
  in
  Alcotest.(check int) "procs recorded" 2 r.Coordinator.procs;
  Alcotest.(check int) "nothing left unexplored" 0 r.Coordinator.unexplored;
  Alcotest.(check int) "no requeues" 0 r.Coordinator.requeues;
  Alcotest.(check (list string))
    "identical test-case sets" serial_cases (dist_case_set r);
  Alcotest.(check int) "same completion count"
    serial.Parallel.stats.Executor.states_completed
    r.Coordinator.stats.Executor.states_completed;
  Alcotest.(check int) "same fork count" serial.Parallel.stats.Executor.forks
    r.Coordinator.stats.Executor.forks;
  Alcotest.(check int) "same creation count"
    serial.Parallel.stats.Executor.states_created
    r.Coordinator.stats.Executor.states_created;
  Alcotest.(check bool) "worker solver contexts did the solving" true
    (r.Coordinator.solver_stats.Solver.queries > 0)

let test_kill_worker_mid_run () =
  let make_engine = make_engine_for workload_64 in
  let serial_cases, _ = serial_case_set workload_64 in
  (* SIGKILL the first worker the moment it is handed the root item: its
     in-flight item must be requeued and redone by a surviving/respawned
     worker, with no path lost or duplicated. *)
  let killed = ref false in
  let on_event = function
    | Coordinator.Dispatched { pid; _ } when not !killed ->
        killed := true;
        Unix.kill pid Sys.sigkill
    | _ -> ()
  in
  let r =
    Coordinator.explore ~procs:2 ~cases:true ~on_event
      ~spawn:(Coordinator.Fork { jobs = 1; slice = 0.01; make_engine })
      ~make_engine
      ~boot:(fun eng -> Executor.boot eng ~entry:0x1000 ())
      ()
  in
  Alcotest.(check bool) "a worker was killed" true !killed;
  Alcotest.(check bool) "in-flight item was requeued" true
    (r.Coordinator.requeues >= 1);
  Alcotest.(check bool) "worker was respawned" true (r.Coordinator.restarts >= 1);
  Alcotest.(check int) "nothing left unexplored" 0 r.Coordinator.unexplored;
  Alcotest.(check (list string))
    "path set unchanged by the crash" serial_cases (dist_case_set r)

let tests =
  [
    Alcotest.test_case "expression codec roundtrip" `Quick test_expr_roundtrip;
    Alcotest.test_case "state snapshot roundtrip" `Quick test_state_roundtrip;
    Alcotest.test_case "strict decode errors" `Quick test_strict_decode_errors;
    Alcotest.test_case "procs=2 drains same path set as serial" `Quick
      test_procs2_matches_serial;
    Alcotest.test_case "killed worker's states are requeued" `Quick
      test_kill_worker_mid_run;
  ]
