(* Unit and property tests for the expression library and the bitfield
   simplifier. *)

open S2e_expr

let e32 v = Expr.const ~width:32 (Int64.of_int v)
let check_i64 = Alcotest.(check int64)

let test_const_fold () =
  check_i64 "add" 7L (Expr.eval Expr.Int_map.empty Expr.(add (e32 3) (e32 4) |> Fun.id));
  (match Expr.add (e32 3) (e32 4) with
  | Expr.Const { value = 7L; width = 32; _ } -> ()
  | e -> Alcotest.failf "expected folded const, got %s" (Expr.to_string e));
  (match Expr.mul (e32 0) (Expr.fresh_var "x") with
  | Expr.Const { value = 0L; _ } -> ()
  | e -> Alcotest.failf "0*x should fold, got %s" (Expr.to_string e))

let test_width_norm () =
  let c = Expr.const ~width:8 300L in
  check_i64 "mask to width" 44L (Expr.eval Expr.Int_map.empty c)

let test_identities () =
  let x = Expr.fresh_var ~width:32 "x" in
  assert (Expr.equal (Expr.add x (e32 0)) x);
  assert (Expr.equal (Expr.bxor x x) (e32 0));
  assert (Expr.equal (Expr.band x x) x);
  assert (Expr.equal (Expr.sub x x) (e32 0));
  assert (Expr.equal (Expr.ite Expr.bool_t x (e32 5)) x)

let test_extract_concat () =
  let x = Expr.fresh_var ~width:32 "x" in
  let lo = Expr.extract ~hi:15 ~lo:0 x in
  let hi = Expr.extract ~hi:31 ~lo:16 x in
  (* re-fusing adjacent extracts of the same expression *)
  assert (Expr.equal (Expr.concat ~high:hi ~low:lo) x);
  let m = Expr.Int_map.singleton
      (match x with Expr.Var { id; _ } -> id | _ -> assert false)
      0xAABBCCDDL in
  check_i64 "extract lo" 0xCCDDL (Expr.eval m lo);
  check_i64 "extract hi" 0xAABBL (Expr.eval m hi)

let test_sext_zext () =
  let b = Expr.const ~width:8 0x80L in
  check_i64 "sext" 0xFFFFFF80L (Expr.eval Expr.Int_map.empty (Expr.sext ~width:32 b));
  check_i64 "zext" 0x80L (Expr.eval Expr.Int_map.empty (Expr.zext ~width:32 b))

let test_div_semantics () =
  check_i64 "div0" 0xFFFFFFFFL
    (Expr.eval Expr.Int_map.empty (Expr.udiv (e32 5) (e32 0)));
  check_i64 "rem0" 5L (Expr.eval Expr.Int_map.empty (Expr.urem (e32 5) (e32 0)));
  check_i64 "div" 3L (Expr.eval Expr.Int_map.empty (Expr.udiv (e32 13) (e32 4)))

let test_simplifier_known_bits () =
  let x = Expr.fresh_var ~width:32 "x" in
  (* (x | 0xff) & 0xff is fully known: 0xff *)
  let e = Expr.band (Expr.bor x (e32 0xff)) (e32 0xff) in
  (match Simplifier.simplify e with
  | Expr.Const { value = 0xffL; _ } -> ()
  | e -> Alcotest.failf "known-bits fold failed: %s" (Expr.to_string e));
  (* ((x << 16) >> 16) & 0xffff0000 = 0 is NOT true; but (x << 16) & 0xff is 0 *)
  let e2 = Expr.band (Expr.shl x (e32 16)) (e32 0xff) in
  (match Simplifier.simplify e2 with
  | Expr.Const { value = 0L; _ } -> ()
  | e -> Alcotest.failf "shift known-zeros failed: %s" (Expr.to_string e))

let test_simplifier_demanded_bits () =
  let x = Expr.fresh_var ~width:32 "x" in
  (* Masking away bits that an OR set: ((x | 0xff00) & 0xff) should drop
     the OR entirely. *)
  let e = Expr.band (Expr.bor x (e32 0xff00)) (e32 0xff) in
  let s = Simplifier.simplify e in
  assert (Expr.size s <= Expr.size (Expr.band x (e32 0xff)));
  (* The eflags pattern the DBT generates: extract one bit of a masked or. *)
  let flags = Expr.bor (Expr.band x (e32 1)) (e32 0x10) in
  let bit0 = Expr.extract ~hi:0 ~lo:0 flags in
  let s2 = Simplifier.simplify bit0 in
  assert (Expr.size s2 <= Expr.size bit0)

(* Property: simplification preserves evaluation. *)
let arb_expr =
  let open QCheck2.Gen in
  let leaf vars =
    oneof
      [
        map (fun v -> Expr.const ~width:32 (Int64.of_int v)) (int_bound 1000);
        oneofl vars;
      ]
  in
  let rec gen vars n =
    if n <= 0 then leaf vars
    else
      let sub = gen vars (n / 2) in
      oneof
        [
          leaf vars;
          map2 Expr.add sub sub;
          map2 Expr.sub sub sub;
          map2 Expr.band sub sub;
          map2 Expr.bor sub sub;
          map2 Expr.bxor sub sub;
          map Expr.bnot sub;
          map2 (fun a s -> Expr.shl a (Expr.const ~width:32 (Int64.of_int (s mod 32))))
            sub (int_bound 31);
          map2 (fun a s -> Expr.lshr a (Expr.const ~width:32 (Int64.of_int (s mod 32))))
            sub (int_bound 31);
          map2 Expr.mul sub sub;
          map3 (fun c a b -> Expr.ite (Expr.eq c (Expr.const 0L)) a b) sub sub sub;
        ]
  in
  gen

let prop_simplify_preserves_eval =
  let x = Expr.fresh_var ~width:32 "px" in
  let y = Expr.fresh_var ~width:32 "py" in
  let xid = match x with Expr.Var { id; _ } -> id | _ -> assert false in
  let yid = match y with Expr.Var { id; _ } -> id | _ -> assert false in
  QCheck2.Test.make ~count:500 ~name:"simplify preserves eval"
    QCheck2.Gen.(
      triple (arb_expr [ x; y ] 6) (int_bound 0xFFFFFF) (int_bound 0xFFFFFF))
    (fun (e, vx, vy) ->
      let m =
        Expr.Int_map.(add xid (Int64.of_int vx) (singleton yid (Int64.of_int vy)))
      in
      Expr.eval m e = Expr.eval m (Simplifier.simplify e))

let prop_smart_constructors_match_eval =
  QCheck2.Test.make ~count:500 ~name:"smart constructors fold correctly"
    QCheck2.Gen.(triple (int_bound 0xFFFF) (int_bound 0xFFFF) (int_bound 9))
    (fun (a, b, op) ->
      let ea = Expr.const ~width:16 (Int64.of_int a) in
      let eb = Expr.const ~width:16 (Int64.of_int b) in
      let f, g =
        match op with
        | 0 -> Expr.add, Expr.eval_binop Expr.Add
        | 1 -> Expr.sub, Expr.eval_binop Expr.Sub
        | 2 -> Expr.mul, Expr.eval_binop Expr.Mul
        | 3 -> Expr.band, Expr.eval_binop Expr.And
        | 4 -> Expr.bor, Expr.eval_binop Expr.Or
        | 5 -> Expr.bxor, Expr.eval_binop Expr.Xor
        | 6 -> Expr.udiv, Expr.eval_binop Expr.Udiv
        | 7 -> Expr.urem, Expr.eval_binop Expr.Urem
        | 8 -> Expr.shl, (fun a b w -> Expr.eval_binop Expr.Shl a b w)
        | _ -> Expr.lshr, (fun a b w -> Expr.eval_binop Expr.Lshr a b w)
      in
      Expr.eval Expr.Int_map.empty (f ea eb)
      = g (Int64.of_int a) (Int64.of_int b) 16)

let tests =
  [
    Alcotest.test_case "constant folding" `Quick test_const_fold;
    Alcotest.test_case "width normalisation" `Quick test_width_norm;
    Alcotest.test_case "algebraic identities" `Quick test_identities;
    Alcotest.test_case "extract/concat" `Quick test_extract_concat;
    Alcotest.test_case "sext/zext" `Quick test_sext_zext;
    Alcotest.test_case "division semantics" `Quick test_div_semantics;
    Alcotest.test_case "simplifier known bits" `Quick test_simplifier_known_bits;
    Alcotest.test_case "simplifier demanded bits" `Quick test_simplifier_demanded_bits;
    QCheck_alcotest.to_alcotest prop_simplify_preserves_eval;
    QCheck_alcotest.to_alcotest prop_smart_constructors_match_eval;
  ]
