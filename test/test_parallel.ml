(* Differential tests for Parallel.explore: a multi-worker run must
   terminate with the same set of paths — identified by their canonical
   test cases — and the same fork/termination totals as the serial run. *)

open S2e_cc
open S2e_core
module Solver = S2e_solver.Solver

let runtime =
  {|
__start:
  li sp, 0xFFFF0
  jal main
  li r1, 0x900
  sw r0, 0(r1)
  halt
|}

(* 2^5 = 32 paths from the loop, collapsed to two exit codes: enough
   parallelism for the steal pool to engage, small enough to stay quick. *)
let workload =
  {|
int main() {
  int x = __s2e_sym_int(1);
  int acc = 0;
  for (int i = 0; i < 5; i = i + 1) {
    if ((x >> i) & 1) acc = acc + (i * 3 + 1);
  }
  if (acc > 20) return 1;
  return 0;
} |}

let make_engine () =
  let linked = Cc.link ~runtime_asm:runtime [ ("prog", workload) ] in
  let engine = Executor.create () in
  Executor.load engine
    {
      Executor.l_origin = linked.image.origin;
      l_code = linked.image.code;
      l_modules =
        List.map
          (fun (m : Cc.module_range) -> (m.m_name, m.m_start, m.m_code_end, m.m_end))
          linked.modules;
    };
  Executor.set_unit engine [ "prog" ];
  engine

let explore jobs =
  Parallel.explore ~jobs ~make_engine
    ~boot:(fun engine -> Executor.boot engine ~entry:0x1000 ())
    ()

let case_set (r : Parallel.result) =
  List.map
    (fun (s : State.t) -> Parallel.test_case_to_string (Parallel.test_case s))
    r.Parallel.completed
  |> List.sort compare

let test_serial_matches_executor_run () =
  (* jobs = 1 must behave exactly like a plain Executor.run. *)
  let engine = make_engine () in
  let s0 = Executor.boot engine ~entry:0x1000 () in
  let completed = Executor.run engine s0 in
  let r = explore 1 in
  Alcotest.(check int) "same path count" completed r.Parallel.stats.Executor.states_completed;
  Alcotest.(check int) "32 paths" 32 (List.length r.Parallel.completed);
  Alcotest.(check int) "31 forks" 31 r.Parallel.stats.Executor.forks;
  Alcotest.(check int) "no steals at jobs=1" 0 r.Parallel.steals

let test_parallel_same_path_set () =
  let serial = explore 1 in
  let par = explore 4 in
  Alcotest.(check int) "jobs recorded" 4 par.Parallel.jobs;
  Alcotest.(check (list string))
    "identical test-case sets" (case_set serial) (case_set par);
  Alcotest.(check int) "same fork count"
    serial.Parallel.stats.Executor.forks par.Parallel.stats.Executor.forks;
  Alcotest.(check int) "same completion count"
    serial.Parallel.stats.Executor.states_completed
    par.Parallel.stats.Executor.states_completed;
  Alcotest.(check int) "same creation count"
    serial.Parallel.stats.Executor.states_created
    par.Parallel.stats.Executor.states_created;
  (* Each path fixes all five tested bits, so the 32 witnesses must be
     distinct. *)
  let cases = case_set par in
  Alcotest.(check int) "distinct witnesses" (List.length cases)
    (List.length (List.sort_uniq compare cases))

let test_parallel_solver_isolation () =
  (* Worker solver contexts are private: a parallel run must not touch
     the process-wide default context. *)
  let before = Solver.stats.Solver.queries in
  let r = explore 2 in
  Alcotest.(check int) "default solver ctx untouched" before Solver.stats.Solver.queries;
  Alcotest.(check bool) "worker contexts did the solving" true
    (r.Parallel.solver_stats.Solver.queries > 0)

let tests =
  [
    Alcotest.test_case "jobs=1 equals Executor.run" `Quick
      test_serial_matches_executor_run;
    Alcotest.test_case "jobs=4 same path set as serial" `Quick
      test_parallel_same_path_set;
    Alcotest.test_case "worker solver contexts isolated" `Quick
      test_parallel_solver_isolation;
  ]
