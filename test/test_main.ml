let () =
  Alcotest.run "s2e"
    [
      ("dist", Test_dist.tests);
      ("fault", Test_fault.tests);
      ("expr", Test_expr.tests);
      ("prop_expr", Test_prop_expr.tests);
      ("solver", Test_solver.tests);
      ("isa_vm", Test_isa_vm.tests);
      ("cc", Test_cc.tests);
      ("core", Test_core_units.tests);
      ("engine", Test_engine.tests);
      ("parallel", Test_parallel.tests);
      ("merge", Test_merge.tests);
      ("obs", Test_obs.tests);
      ("trace", Test_trace.tests);
      ("guest", Test_guest.tests);
      ("cachesim", Test_cachesim.tests);
      ("plugins", Test_plugins.tests);
      ("extensions", Test_extensions.tests);
      ("tools", Test_tools.tests);
      ("oracle", Test_oracle.tests);
    ]
