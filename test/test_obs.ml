(* Tests for the lib/obs telemetry subsystem: domain-sharded registry
   exactness, histogram bucket placement, span self-time accounting, the
   JSONL codec, and the end-to-end guarantee that registry totals for a
   parallel exploration match the serial run exactly. *)

module Metrics = S2e_obs.Metrics
module Span = S2e_obs.Span
module Jsonl = S2e_obs.Jsonl
open S2e_cc
open S2e_core

(* --- registry ------------------------------------------------------ *)

let test_counter_merge_across_domains () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~reg "test.hits" in
  let per_domain = 100_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  List.iter Domain.join domains;
  let snap = Metrics.snapshot ~reg () in
  Alcotest.(check int)
    "4 x 100k increments merge exactly" (4 * per_domain)
    (Metrics.get_int snap "test.hits");
  (* Shards persist after their writer domain dies: one shard per spawned
     domain, each holding exactly its own share. *)
  let shards = Metrics.shard_snapshots ~reg () in
  let nonzero =
    List.filter (fun (_, s) -> Metrics.get_int s "test.hits" > 0) shards
  in
  Alcotest.(check int) "one shard per writer domain" 4 (List.length nonzero);
  List.iter
    (fun (_, s) ->
      Alcotest.(check int) "per-shard share" per_domain
        (Metrics.get_int s "test.hits"))
    nonzero

let test_snapshot_under_concurrent_increments () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~reg "test.live" in
  let per_domain = 50_000 in
  let writers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  (* Snapshots race the writers: they may be stale but never tear (a cell
     is a single word) and never crash on mid-registration shards. *)
  for _ = 1 to 200 do
    let v = Metrics.get_int (Metrics.snapshot ~reg ()) "test.live" in
    Alcotest.(check bool) "snapshot within bounds" true
      (v >= 0 && v <= 4 * per_domain)
  done;
  List.iter Domain.join writers;
  Alcotest.(check int) "post-join snapshot exact" (4 * per_domain)
    (Metrics.get_int (Metrics.snapshot ~reg ()) "test.live")

let test_gauge_merge_modes () =
  let reg = Metrics.create () in
  let gsum = Metrics.gauge ~reg ~merge:Metrics.Sum "test.live_states" in
  let gmax = Metrics.gauge ~reg ~merge:Metrics.Max "test.watermark" in
  Metrics.set gsum 3;
  Metrics.set gsum 2;
  (* Sum: last value per shard. *)
  Metrics.set gmax 7;
  Metrics.set gmax 4;
  (* Max: running max per shard. *)
  let d =
    Domain.spawn (fun () ->
        Metrics.set gsum 5;
        Metrics.set gmax 6)
  in
  Domain.join d;
  let snap = Metrics.snapshot ~reg () in
  Alcotest.(check int) "Sum gauge adds shard last-values" 7
    (Metrics.get_int snap "test.live_states");
  Alcotest.(check int) "Max gauge keeps shard maxima" 7
    (Metrics.get_int snap "test.watermark")

let test_registration_idempotent () =
  let reg = Metrics.create () in
  let a = Metrics.counter ~reg "test.same" in
  let b = Metrics.counter ~reg "test.same" in
  Metrics.incr a;
  Metrics.add b 2;
  Alcotest.(check int) "same name, same cells" 3
    (Metrics.get_int (Metrics.snapshot ~reg ()) "test.same");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metrics: \"test.same\" re-registered with a different kind")
    (fun () -> ignore (Metrics.fcounter ~reg "test.same"))

let test_histogram_buckets () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~reg ~bounds:[| 1.0; 2.0; 4.0 |] "test.lat" in
  List.iter (Metrics.observe h) [ 1.0; 1.5; 2.0; 4.0; 5.0 ];
  match Metrics.find (Metrics.snapshot ~reg ()) "test.lat" with
  | Some (Metrics.Hist { bounds; counts; sum }) ->
      Alcotest.(check int) "3 bounds" 3 (Array.length bounds);
      Alcotest.(check int) "3 + overflow buckets" 4 (Array.length counts);
      (* v <= bound places on-boundary observations in the lower bucket. *)
      Alcotest.(check (array int)) "bucket placement" [| 1; 2; 1; 1 |] counts;
      Alcotest.(check (float 1e-9)) "sum of observations" 13.5 sum
  | _ -> Alcotest.fail "histogram missing from snapshot"

let test_reset () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~reg "test.r" in
  Metrics.add c 41;
  Metrics.reset ~reg ();
  Metrics.incr c;
  Alcotest.(check int) "reset zeroes, handle survives" 1
    (Metrics.get_int (Metrics.snapshot ~reg ()) "test.r")

(* --- spans --------------------------------------------------------- *)

let spin seconds =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds do
    ()
  done

let test_span_exclusive_time () =
  let reg = Metrics.create () in
  let outer = Span.phase ~reg "outer" in
  let inner = Span.phase ~reg "inner" in
  let inclusive = ref 0. in
  Span.timed outer
    ~on_elapsed:(fun dt -> inclusive := dt)
    (fun () ->
      spin 0.02;
      Span.timed inner (fun () -> spin 0.04);
      spin 0.01);
  let snap = Metrics.snapshot ~reg () in
  let outer_s = Metrics.get_float snap "phase.outer_s" in
  let inner_s = Metrics.get_float snap "phase.inner_s" in
  Alcotest.(check bool) "inner self covers its spin" true (inner_s >= 0.035);
  Alcotest.(check bool) "outer excludes nested inner time" true
    (outer_s < inner_s);
  (* Self times partition the inclusive wall time of the outer span. *)
  Alcotest.(check bool) "self times sum to inclusive" true
    (abs_float (outer_s +. inner_s -. !inclusive) < 0.005);
  Alcotest.(check int) "enter counts" 1
    (Metrics.get_int snap "phase.outer_count")

let test_span_exception_safe () =
  let reg = Metrics.create () in
  let ph = Span.phase ~reg "boom" in
  (try Span.timed ph (fun () -> spin 0.01; failwith "boom")
   with Failure _ -> ());
  let snap = Metrics.snapshot ~reg () in
  Alcotest.(check bool) "time recorded despite raise" true
    (Metrics.get_float snap "phase.boom_s" >= 0.008);
  (* The span stack unwound: a following span is not treated as nested. *)
  let ph2 = Span.phase ~reg "after" in
  Span.timed ph2 (fun () -> spin 0.01);
  Alcotest.(check bool) "next span unaffected" true
    (Metrics.get_float (Metrics.snapshot ~reg ()) "phase.after_s" >= 0.008)

(* --- JSONL codec --------------------------------------------------- *)

let test_jsonl_roundtrip () =
  let v =
    Jsonl.Obj
      [
        ("kind", Jsonl.Str "final");
        ("seq", Jsonl.Num 17.);
        ("frac", Jsonl.Num 0.5);
        ("ok", Jsonl.Bool true);
        ("none", Jsonl.Null);
        ("esc", Jsonl.Str "a\"b\\c\nd");
        ("arr", Jsonl.Arr [ Jsonl.Num 1.; Jsonl.Num 2.5; Jsonl.Str "x" ]);
      ]
  in
  match Jsonl.parse (Jsonl.to_string v) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok v' ->
      Alcotest.(check (option (float 1e-9))) "num member" (Some 17.)
        (Jsonl.num_member "seq" v');
      Alcotest.(check (option string)) "escaped string" (Some "a\"b\\c\nd")
        (Jsonl.str_member "esc" v');
      Alcotest.(check bool) "structural equality" true (v = v')

let test_jsonl_rejects_garbage () =
  List.iter
    (fun s ->
      match Jsonl.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "{\"a\":}"; "[1,]"; "{\"a\":1} trailing"; "nul" ]

(* --- end-to-end: registry totals vs worker count ------------------- *)

let runtime =
  {|
__start:
  li sp, 0xFFFF0
  jal main
  li r1, 0x900
  sw r0, 0(r1)
  halt
|}

let workload =
  {|
int main() {
  int x = __s2e_sym_int(1);
  int acc = 0;
  for (int i = 0; i < 5; i = i + 1) {
    if ((x >> i) & 1) acc = acc + (i * 3 + 1);
  }
  if (acc > 20) return 1;
  return 0;
} |}

let make_engine () =
  let linked = Cc.link ~runtime_asm:runtime [ ("prog", workload) ] in
  let engine = Executor.create () in
  Executor.load engine
    {
      Executor.l_origin = linked.image.origin;
      l_code = linked.image.code;
      l_modules =
        List.map
          (fun (m : Cc.module_range) ->
            (m.m_name, m.m_start, m.m_code_end, m.m_end))
          linked.modules;
    };
  Executor.set_unit engine [ "prog" ];
  engine

(* Drain the workload's full execution tree with [jobs] workers and return
   the default registry's merged totals. *)
let totals jobs =
  Metrics.reset ();
  ignore
    (Parallel.explore ~jobs ~make_engine
       ~boot:(fun engine -> Executor.boot engine ~entry:0x1000 ())
       ());
  let snap = Metrics.snapshot () in
  List.map
    (fun name -> (name, Metrics.get_int snap name))
    [
      (* The jobs-independent totals: pure functions of the explored path
         set.  (sat_queries / cache hits / tb_misses are NOT in this list:
         workers have private solver and TB caches, so cold caches shift
         work between the cached and uncached counters.) *)
      "engine.instructions";
      "engine.sym_instructions";
      "engine.forks";
      "engine.states_created";
      "engine.states_completed";
      "solver.queries";
    ]

let test_registry_totals_jobs_independent () =
  (* The deterministic-exploration guarantee, observed through the
     registry: a drained frontier yields identical counter totals at any
     worker count (sharding must lose or double-count nothing). *)
  let serial = totals 1 in
  let parallel = totals 4 in
  List.iter2
    (fun (name, a) (name', b) ->
      Alcotest.(check string) "same metric" name name';
      Alcotest.(check int) (name ^ " equal across jobs") a b)
    serial parallel;
  Alcotest.(check bool) "counted real work" true
    (List.assoc "engine.instructions" serial > 0
    && List.assoc "engine.forks" serial = 31)

let tests =
  [
    Alcotest.test_case "counter merge across domains" `Quick
      test_counter_merge_across_domains;
    Alcotest.test_case "snapshot under concurrent increments" `Quick
      test_snapshot_under_concurrent_increments;
    Alcotest.test_case "gauge Sum vs Max merge" `Quick test_gauge_merge_modes;
    Alcotest.test_case "registration idempotent" `Quick
      test_registration_idempotent;
    Alcotest.test_case "histogram bucket boundaries" `Quick
      test_histogram_buckets;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "span exclusive time" `Quick test_span_exclusive_time;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
    Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "jsonl rejects garbage" `Quick test_jsonl_rejects_garbage;
    Alcotest.test_case "registry totals independent of jobs" `Quick
      test_registry_totals_jobs_independent;
  ]
