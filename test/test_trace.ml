(* Event-tracer tests: ring-overflow accounting, schedule-independence
   of the traced event multisets, the worker-chunk codec the distributed
   merge rides on, trace_event JSON validity, and the reporter's
   exception-safe final flush. *)

open S2e_cc
open S2e_core
module Obs = S2e_obs
module Trace = S2e_obs.Trace

(* Every test restores the tracer's global state (tracing off, default
   capacity, rings empty) even on failure: the registry is process-wide
   and later suites must not see leftovers. *)
let with_trace ?(capacity = 65536) f =
  Trace.set_capacity capacity;
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.set_capacity 65536)
    f

(* --- ring overflow --- *)

let t_mark = Trace.intern "test.mark"

let test_ring_overflow () =
  with_trace ~capacity:8 (fun () ->
      for i = 0 to 19 do
        Trace.instant ~a:i t_mark
      done;
      let events, dropped = Trace.drain () in
      Alcotest.(check int) "ring keeps capacity events" 8 (List.length events);
      Alcotest.(check int) "dropped = overflowed count" 12 dropped;
      (* Newest survive: the payloads must be exactly 12..19. *)
      Alcotest.(check (list int))
        "newest events kept"
        [ 12; 13; 14; 15; 16; 17; 18; 19 ]
        (List.sort compare (List.map (fun e -> e.Trace.ev_b) events));
      (* A second drain hands out nothing and counts nothing dropped. *)
      let events2, dropped2 = Trace.drain () in
      Alcotest.(check int) "drain is consuming" 0 (List.length events2);
      Alcotest.(check int) "no double-counted drops" 0 dropped2)

let test_no_drop_under_capacity () =
  with_trace ~capacity:64 (fun () ->
      for i = 0 to 9 do
        Trace.instant ~a:i t_mark
      done;
      let events, dropped = Trace.drain () in
      Alcotest.(check int) "all events kept" 10 (List.length events);
      Alcotest.(check int) "nothing dropped" 0 dropped)

(* --- schedule independence: jobs=1 vs jobs=4 --- *)

let runtime =
  {|
__start:
  li sp, 0xFFFF0
  jal main
  li r1, 0x900
  sw r0, 0(r1)
  halt
|}

let workload =
  {|
int main() {
  int x = __s2e_sym_int(1);
  int acc = 0;
  for (int i = 0; i < 5; i = i + 1) {
    if ((x >> i) & 1) acc = acc + (i * 3 + 1);
  }
  if (acc > 20) return 1;
  return 0;
} |}

let make_engine () =
  let linked = Cc.link ~runtime_asm:runtime [ ("prog", workload) ] in
  let engine = Executor.create () in
  Executor.load engine
    {
      Executor.l_origin = linked.image.origin;
      l_code = linked.image.code;
      l_modules =
        List.map
          (fun (m : Cc.module_range) ->
            (m.m_name, m.m_start, m.m_code_end, m.m_end))
          linked.modules;
    };
  Executor.set_unit engine [ "prog" ];
  engine

(* The schedule-independent view of a traced run: per-path multisets of
   masked events.  Path ids, timestamps, domains and cache hit/miss
   classification depend on scheduling, and prefix hash *values* mix
   global fresh-variable ids (run-specific), so prefixes are reduced to
   their grouping structure: per path, the multiset of node-count lists
   of queries sharing a prefix.  End statuses, the incomplete flag and
   the fork structure are kept verbatim. *)
let masked_per_path events =
  let per_path = Hashtbl.create 64 in
  let get path =
    match Hashtbl.find_opt per_path path with
    | Some r -> r
    | None ->
        let r = (ref 0, ref [], Hashtbl.create 8) in
        Hashtbl.replace per_path path r;
        r
  in
  List.iter
    (fun e ->
      (* Phase/Instant events must not create buckets: their path tag is
         just "whatever was current on the domain" (-1 on an idle
         worker), which is pure scheduling. *)
      match e.Trace.ev_code with
      | Trace.Path_start ->
          let starts, _, _ = get e.Trace.ev_path in
          incr starts
      | Trace.Path_end ->
          let _, ends, _ = get e.Trace.ev_path in
          ends := (e.ev_a, e.ev_b) :: !ends
      | Trace.Query ->
          let _, _, groups = get e.Trace.ev_path in
          Hashtbl.replace groups e.ev_a
            (e.ev_b
            :: Option.value ~default:[] (Hashtbl.find_opt groups e.ev_a))
      | Trace.Phase | Trace.Instant -> ())
    events;
  Hashtbl.fold
    (fun _ (starts, ends, groups) acc ->
      let qgroups =
        Hashtbl.fold
          (fun _ nodes acc -> List.sort compare nodes :: acc)
          groups []
        |> List.sort compare
      in
      (!starts, List.sort compare !ends, qgroups) :: acc)
    per_path []
  |> List.sort compare

(* Cross-path prefix structure, hash values masked: the multiset of
   reuse-group sizes over the whole run. *)
let prefix_group_sizes events =
  let groups = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.Trace.ev_code = Trace.Query then
        Hashtbl.replace groups e.ev_a
          (1 + Option.value ~default:0 (Hashtbl.find_opt groups e.ev_a)))
    events;
  Hashtbl.fold (fun _ n acc -> n :: acc) groups [] |> List.sort compare

let traced_explore jobs =
  Trace.reset ();
  let r =
    Parallel.explore ~jobs ~make_engine
      ~boot:(fun engine -> Executor.boot engine ~entry:0x1000 ())
      ()
  in
  let events, dropped = Trace.drain () in
  Alcotest.(check int) "ring large enough for the run" 0 dropped;
  (r, events)

let test_jobs_invariant () =
  with_trace (fun () ->
      let r1, ev1 = traced_explore 1 in
      let r4, ev4 = traced_explore 4 in
      Alcotest.(check int) "serial run drains 32 paths" 32
        r1.Parallel.stats.Executor.states_completed;
      Alcotest.(check int) "same completions"
        r1.Parallel.stats.Executor.states_completed
        r4.Parallel.stats.Executor.states_completed;
      let m1 = masked_per_path ev1 and m4 = masked_per_path ev4 in
      Alcotest.(check int) "same path count in trace" (List.length m1)
        (List.length m4);
      Alcotest.(check bool) "identical per-path event multisets" true
        (m1 = m4);
      Alcotest.(check (list int))
        "identical cross-path prefix reuse structure"
        (prefix_group_sizes ev1) (prefix_group_sizes ev4))

let test_lifecycle_matches_stats () =
  with_trace (fun () ->
      let r, events = traced_explore 1 in
      let count code =
        List.length (List.filter (fun e -> e.Trace.ev_code = code) events)
      in
      Alcotest.(check int) "one path_start per created state"
        r.Parallel.stats.Executor.states_created
        (count Trace.Path_start);
      Alcotest.(check int) "one path_end per completed state"
        r.Parallel.stats.Executor.states_completed
        (count Trace.Path_end);
      Alcotest.(check int) "one query event per solver query"
        r.Parallel.solver_stats.S2e_solver.Solver.queries
        (count Trace.Query))

(* --- worker-chunk codec (the distributed merge transport) --- *)

let test_chunk_roundtrip () =
  with_trace (fun () ->
      Trace.reset ();
      let t_a = Trace.intern "test.chunk.a" in
      Trace.path_start ~ts:1.0 ~path:7 ~parent:3 ();
      Trace.query ~ts:1.5 ~dur:0.25 ~prefix:0x1234 ~nodes:9 ~result:0 ~cache:1
        ();
      Trace.instant ~ts:2.0 ~a:42 t_a;
      Trace.path_end ~ts:3.0 ~path:7 ~status:1 ~incomplete:false ();
      let events, _ = Trace.drain () in
      let chunk = Trace.encode_chunk events ~dropped:5 in
      let decoded, dropped = Trace.decode_chunk ~pid:99 ~offset:10.0 chunk in
      Alcotest.(check int) "dropped count travels" 5 dropped;
      Alcotest.(check int) "all events decoded" (List.length events)
        (List.length decoded);
      List.iter2
        (fun (a : Trace.event) (b : Trace.event) ->
          Alcotest.(check int) "pid stamped" 99 b.ev_pid;
          Alcotest.(check (float 1e-9)) "clock offset applied"
            (a.ev_ts +. 10.0) b.ev_ts;
          Alcotest.(check (float 1e-9)) "duration preserved" a.ev_dur b.ev_dur;
          Alcotest.(check bool) "code preserved" true (a.ev_code = b.ev_code);
          Alcotest.(check int) "path preserved" a.ev_path b.ev_path;
          (* Same process: the remapped name id must resolve identically. *)
          match b.ev_code with
          | Trace.Instant ->
              Alcotest.(check string) "name survives remap"
                (Trace.name_of a.ev_a) (Trace.name_of b.ev_a)
          | _ -> Alcotest.(check int) "payload preserved" a.ev_a b.ev_a)
        events decoded)

let test_merge_deterministic_and_complete () =
  with_trace (fun () ->
      Trace.reset ();
      Trace.instant ~ts:5.0 ~a:1 t_mark;
      Trace.instant ~ts:1.0 ~a:2 t_mark;
      let w1, _ = Trace.drain () in
      let c1 = Trace.encode_chunk w1 ~dropped:0 in
      Trace.instant ~ts:3.0 ~a:3 t_mark;
      let w2, _ = Trace.drain () in
      let c2 = Trace.encode_chunk w2 ~dropped:2 in
      let merge () =
        let e1, d1 = Trace.decode_chunk ~pid:1 ~offset:0.5 c1 in
        let e2, d2 = Trace.decode_chunk ~pid:2 ~offset:(-0.5) c2 in
        let all =
          List.sort
            (fun (a : Trace.event) b -> compare a.ev_ts b.ev_ts)
            (e1 @ e2)
        in
        (all, d1 + d2)
      in
      let m1, dropped = merge () in
      let m2, _ = merge () in
      Alcotest.(check bool) "merge is deterministic" true (m1 = m2);
      Alcotest.(check int) "every worker's events present" 3 (List.length m1);
      Alcotest.(check int) "drops accumulate" 2 dropped;
      Alcotest.(check (list int))
        "timeline ordered by normalized time"
        [ 2; 3; 1 ]
        (List.map (fun (e : Trace.event) -> e.ev_b) m1))

let test_chunk_rejects_garbage () =
  Alcotest.check_raises "truncated chunk rejected"
    (Failure "Trace.decode_chunk: truncated") (fun () ->
      ignore (Trace.decode_chunk "\x01\x02\x03"))

(* --- trace_event JSON export --- *)

let test_json_valid () =
  with_trace (fun () ->
      let _, events = traced_explore 1 in
      let json = Trace.to_json ~dropped:0 events in
      let s = Obs.Jsonl.to_string json in
      match Obs.Jsonl.parse s with
      | Error msg -> Alcotest.failf "export does not parse: %s" msg
      | Ok j ->
          let evs =
            Option.bind (Obs.Jsonl.member "traceEvents" j) Obs.Jsonl.to_arr
          in
          (match evs with
          | None -> Alcotest.fail "no traceEvents array"
          | Some l ->
              Alcotest.(check int) "every event exported"
                (List.length events) (List.length l);
              List.iter
                (fun ev ->
                  let has m = Obs.Jsonl.member m ev <> None in
                  Alcotest.(check bool) "name/ph/ts/pid/tid present" true
                    (has "name" && has "ph" && has "ts" && has "pid"
                   && has "tid");
                  match Obs.Jsonl.str_member "ph" ev with
                  | Some "X" ->
                      Alcotest.(check bool) "complete events carry dur" true
                        (has "dur")
                  | Some "i" -> ()
                  | ph ->
                      Alcotest.failf "unexpected phase %s"
                        (Option.value ~default:"<none>" ph))
                l);
          (* Query prefixes export as hex strings (63-bit hashes would
             round in a JSON double). *)
          let some_query =
            List.exists
              (fun ev ->
                Obs.Jsonl.str_member "name" ev = Some "solver_query"
                &&
                match
                  Option.bind (Obs.Jsonl.member "args" ev) (fun a ->
                      Obs.Jsonl.str_member "prefix" a)
                with
                | Some p -> String.length p > 2 && String.sub p 0 2 = "0x"
                | None -> false)
              (Option.value ~default:[]
                 (Option.bind (Obs.Jsonl.member "traceEvents" j)
                    Obs.Jsonl.to_arr))
          in
          Alcotest.(check bool) "query prefix is a hex string" true some_query)

(* --- reporter: final snapshot must flush on exceptions too --- *)

let test_reporter_flushes_on_exception () =
  let path = Filename.temp_file "s2e_reporter" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      (try
         Fun.protect
           ~finally:(fun () -> close_out_noerr oc)
           (fun () ->
             Obs.Reporter.with_reporter ~interval:60.0 oc (fun () ->
                 failwith "boom"))
       with Failure _ -> ());
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let has_final =
        List.exists
          (fun line ->
            match Obs.Jsonl.parse line with
            | Ok j -> Obs.Jsonl.str_member "kind" j = Some "final"
            | Error _ -> false)
          !lines
      in
      Alcotest.(check bool) "final snapshot written despite exception" true
        has_final)

let tests =
  [
    Alcotest.test_case "ring overflow keeps newest, counts dropped" `Quick
      test_ring_overflow;
    Alcotest.test_case "no drops under capacity" `Quick
      test_no_drop_under_capacity;
    Alcotest.test_case "jobs=1 and jobs=4 trace the same events" `Quick
      test_jobs_invariant;
    Alcotest.test_case "lifecycle events match engine stats" `Quick
      test_lifecycle_matches_stats;
    Alcotest.test_case "worker chunk codec round-trips" `Quick
      test_chunk_roundtrip;
    Alcotest.test_case "merge is deterministic and worker-complete" `Quick
      test_merge_deterministic_and_complete;
    Alcotest.test_case "malformed chunk rejected" `Quick
      test_chunk_rejects_garbage;
    Alcotest.test_case "trace_event export is valid JSON" `Quick
      test_json_valid;
    Alcotest.test_case "reporter flushes final line on exception" `Quick
      test_reporter_flushes_on_exception;
  ]
