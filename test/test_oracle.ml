(* The executable ISA oracle (DESIGN.md section 9): Dbt cache property
   tests, assembler/disassembler roundtrips, deterministic replay, and
   the differential harness itself — including the "does it actually
   catch bugs" check against an intentionally perturbed interpreter. *)

open S2e_isa
open S2e_oracle
module Dbt = S2e_dbt.Dbt

(* A small straight-line program image for the Dbt property tests. *)
let program_bytes insns =
  let buf = Bytes.create (List.length insns * Insn.insn_size) in
  List.iteri (fun i insn -> Insn.encode insn buf (i * Insn.insn_size)) insns;
  buf

let sample_block =
  Insn.
    [
      Li { rd = 1; imm = 7l };
      Alui { op = Add; rd = 1; rs1 = 1; imm = 1l };
      Mov { rd = 2; rs1 = 1 };
      Halt;
    ]

let fetch_of bytes a = if a < Bytes.length bytes then Char.code (Bytes.get bytes a) else 0

let translate ?(count = ref 0) dbt bytes pc =
  Dbt.translate dbt ~fetch:(fetch_of bytes)
    ~on_translate:(fun _ _ -> incr count)
    pc

(* --- Dbt cache semantics ------------------------------------------- *)

let test_dbt_invalidate_any_addr () =
  let bytes = program_bytes sample_block in
  let span = Bytes.length bytes in
  let rng = Sm64.create 11 in
  for _ = 1 to 200 do
    let dbt = Dbt.create () in
    let tb = translate dbt bytes 0 in
    Alcotest.(check int) "block covers whole program" 4 (Array.length tb.Dbt.insns);
    Alcotest.(check int) "one cached block" 1 (snd (Dbt.stats dbt));
    (* Any address inside the block's byte range must drop it... *)
    Dbt.invalidate dbt (Sm64.int rng span);
    Alcotest.(check int) "invalidate dropped the block" 0 (snd (Dbt.stats dbt));
    (* ...and any address outside must not. *)
    let tb2 = translate dbt bytes 0 in
    ignore tb2;
    Dbt.invalidate dbt (span + Sm64.int rng 10_000);
    Alcotest.(check int) "outside write kept the block" 1 (snd (Dbt.stats dbt))
  done

let test_dbt_translate_notifications_exact () =
  let bytes = program_bytes sample_block in
  let dbt = Dbt.create () in
  let count = ref 0 in
  ignore (translate ~count dbt bytes 0);
  Alcotest.(check int) "one on_translate per insn" 4 !count;
  ignore (translate ~count dbt bytes 0);
  Alcotest.(check int) "cache hit: no re-notification" 4 !count;
  Dbt.invalidate dbt 8;
  ignore (translate ~count dbt bytes 0);
  Alcotest.(check int) "retranslation re-notifies each insn" 8 !count;
  Dbt.flush dbt;
  ignore (translate ~count dbt bytes 0);
  Alcotest.(check int) "flush forces full retranslation" 12 !count

let test_dbt_marks_survive_retranslation () =
  let bytes = program_bytes sample_block in
  let dbt = Dbt.create () in
  Dbt.mark dbt 8;
  Alcotest.(check bool) "marked" true (Dbt.is_marked dbt 8);
  ignore (translate dbt bytes 0);
  Dbt.invalidate dbt 0;
  ignore (translate dbt bytes 0);
  Alcotest.(check bool) "mark survives retranslation" true (Dbt.is_marked dbt 8);
  Alcotest.(check bool) "other addrs unmarked" false (Dbt.is_marked dbt 16);
  Dbt.unmark dbt 8;
  Alcotest.(check bool) "unmark is exact" false (Dbt.is_marked dbt 8)

let test_dbt_stats_monotone () =
  let bytes = program_bytes sample_block in
  let dbt = Dbt.create () in
  let rng = Sm64.create 3 in
  let last = ref 0 in
  for _ = 1 to 500 do
    (match Sm64.int rng 3 with
    | 0 -> ignore (translate dbt bytes 0)
    | 1 -> Dbt.invalidate dbt (Sm64.int rng 64)
    | _ -> Dbt.flush dbt);
    let total, cached = Dbt.stats dbt in
    Alcotest.(check bool) "translation count monotone" true (total >= !last);
    Alcotest.(check bool) "cached count sane" true (cached >= 0 && cached <= total);
    last := total
  done

(* --- assembler / disassembler roundtrip ---------------------------- *)

let insn = Alcotest.testable (Fmt.of_to_string Insn.to_string) ( = )

let test_asm_roundtrip () =
  (* Gen renders each program with Insn.to_string, assembles it with Asm
     and places the bytes in the pre-state, so decoding the code segment
     must give back exactly the instruction list. *)
  let g = Gen.create ~seed:1234 in
  for _ = 1 to 300 do
    let case = Gen.next g in
    let code = List.assoc Gen.code_base case.Gen.c_pre.Interp.pre_segments in
    let get i = if i < String.length code then Char.code code.[i] else 0 in
    let decoded =
      List.init
        (String.length code / Insn.insn_size)
        (fun i -> Insn.decode_with ~get (i * Insn.insn_size))
    in
    Alcotest.(check (list insn)) "asm -> bytes -> decode" case.Gen.c_insns decoded
  done

let test_decode_random_bytes_typed_error_only () =
  let rng = Sm64.create 99 in
  for _ = 1 to 20_000 do
    let b = Array.init Insn.insn_size (fun _ -> Sm64.int rng 256) in
    let get i = if i < Insn.insn_size then b.(i) else 0 in
    (* Any exception other than Invalid_instruction escapes and fails
       the test. *)
    match Insn.decode_with ~get 0 with
    | _ -> ()
    | exception Insn.Invalid_instruction _ -> ()
  done

(* --- deterministic replay ------------------------------------------ *)

let test_same_seed_same_digest () =
  let dir = Filename.get_temp_dir_name () in
  let run seed = (Oracle.run ~seed ~count:150 ~repro_dir:dir ()).Oracle.r_digest in
  let d1 = run 42 and d2 = run 42 and d3 = run 43 in
  Alcotest.(check int64) "same seed, byte-identical digest" d1 d2;
  Alcotest.(check bool) "different seed, different digest" true (d3 <> d1)

(* --- the oracle itself --------------------------------------------- *)

let test_oracle_covers_and_agrees () =
  let dir = Filename.get_temp_dir_name () in
  let r = Oracle.run ~seed:1 ~count:1500 ~repro_dir:dir () in
  Alcotest.(check (list string)) "every constructor generated" [] r.Oracle.r_missing;
  Alcotest.(check int) "no divergences" 0 (List.length r.r_divergences);
  Alcotest.(check int) "ran all generated blocks" 1500 r.r_generated

let test_generator_covers_every_class () =
  (* Stronger than the constructor check: every ALU op, every branch
     condition and every S2E sub-op must appear. *)
  let g = Gen.create ~seed:7 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 1000 do
    let case = Gen.next g in
    List.iter (fun i -> Hashtbl.replace seen (Gen.class_of i) ()) case.Gen.c_insns
  done;
  List.iter
    (fun cls ->
      Alcotest.(check bool)
        (Printf.sprintf "class %s generated" cls)
        true (Hashtbl.mem seen cls))
    (Gen.body_classes @ Gen.term_classes)

let test_perturbed_interpreter_caught () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "oracle_perturb_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () -> Interp.test_perturbation := None)
    (fun () ->
      (* Flip the low immediate bit of every li the reference interpreter
         decodes: a subtle, deterministic "miscompilation" of one insn. *)
      Interp.test_perturbation :=
        Some
          (function
          | Insn.Li { rd; imm } -> Insn.Li { rd; imm = Int32.logxor imm 1l }
          | i -> i);
      let r = Oracle.run ~seed:5 ~count:300 ~repro_dir:dir ~max_repros:4 () in
      Alcotest.(check bool)
        "perturbation detected" true
        (r.Oracle.r_divergences <> []);
      let with_file =
        List.filter_map (fun d -> d.Oracle.d_file) r.r_divergences
      in
      Alcotest.(check bool) "repro dumped" true (with_file <> []);
      let path = List.hd with_file in
      let ic = open_in path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool)
        "repro names the divergence" true
        (String.length contents > 0
        (* must contain the pre-state and the diff *)
        && contains contents "diff:"
        && contains contents "segment");
      (* The minimizer must shrink the program: a single perturbed li
         plus a terminator diverges on its own, so minimized repros
         should be far below the generated program length. *)
      List.iter
        (fun (d : Oracle.divergence) ->
          let code =
            List.assoc_opt Gen.code_base d.d_pre.Interp.pre_segments
          in
          match code with
          | Some c ->
              Alcotest.(check bool)
                "repro minimized to <= 3 insns" true
                (String.length c / Insn.insn_size <= 3)
          | None -> ())
        r.r_divergences)

(* --- corpus manifest ----------------------------------------------- *)

let test_corpus_roundtrip () =
  let g = Gen.create ~seed:21 in
  let entries =
    List.init 5 (fun i ->
        let case = Gen.next g in
        {
          Corpus.e_pc = Gen.code_base + (i * 0x100);
          e_bytes = List.assoc Gen.code_base case.Gen.c_pre.Interp.pre_segments;
        })
  in
  let path = Filename.temp_file "oracle_corpus" ".manifest" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Corpus.save path ~workload:"testwl" entries;
      let wl, loaded = Corpus.load path in
      Alcotest.(check string) "workload preserved" "testwl" wl;
      Alcotest.(check int) "entry count" (List.length entries) (List.length loaded);
      List.iter2
        (fun (a : Corpus.entry) (b : Corpus.entry) ->
          Alcotest.(check int) "pc" a.e_pc b.e_pc;
          Alcotest.(check string) "bytes" a.e_bytes b.e_bytes)
        entries loaded)

let tests =
  [
    Alcotest.test_case "Dbt: invalidate inside block drops it" `Quick
      test_dbt_invalidate_any_addr;
    Alcotest.test_case "Dbt: on_translate counts exact" `Quick
      test_dbt_translate_notifications_exact;
    Alcotest.test_case "Dbt: marks survive retranslation" `Quick
      test_dbt_marks_survive_retranslation;
    Alcotest.test_case "Dbt: stats monotone under invalidate/flush" `Quick
      test_dbt_stats_monotone;
    Alcotest.test_case "asm/pp/decode roundtrip on generated programs" `Quick
      test_asm_roundtrip;
    Alcotest.test_case "decoding random bytes raises typed errors only" `Quick
      test_decode_random_bytes_typed_error_only;
    Alcotest.test_case "same seed reproduces byte-identical runs" `Slow
      test_same_seed_same_digest;
    Alcotest.test_case "oracle: full coverage, zero divergences" `Slow
      test_oracle_covers_and_agrees;
    Alcotest.test_case "generator hits every instruction class" `Slow
      test_generator_covers_every_class;
    Alcotest.test_case "perturbed interpreter is caught with a repro" `Slow
      test_perturbed_interpreter_caught;
    Alcotest.test_case "corpus manifest save/load roundtrip" `Quick
      test_corpus_roundtrip;
  ]
