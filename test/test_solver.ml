(* Tests for the SAT core, the bit-blaster and the high-level solver. *)

open S2e_expr
open S2e_solver

let test_sat_basic () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ Sat.pos a; Sat.pos b ];
  Sat.add_clause s [ Sat.neg a ];
  (match Sat.solve s with
  | Sat.Sat ->
      assert (not (Sat.model_value s a));
      assert (Sat.model_value s b)
  | _ -> Alcotest.fail "expected sat");
  Sat.add_clause s [ Sat.neg b ];
  (match Sat.solve s with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat")

let test_sat_pigeonhole () =
  (* 3 pigeons, 2 holes: classic small unsat instance exercising learning. *)
  let s = Sat.create () in
  let v = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Sat.new_var s)) in
  for p = 0 to 2 do
    Sat.add_clause s [ Sat.pos v.(p).(0); Sat.pos v.(p).(1) ]
  done;
  for h = 0 to 1 do
    for p1 = 0 to 2 do
      for p2 = p1 + 1 to 2 do
        Sat.add_clause s [ Sat.neg v.(p1).(h); Sat.neg v.(p2).(h) ]
      done
    done
  done;
  match Sat.solve s with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "pigeonhole should be unsat"

let x32 () = Expr.fresh_var ~width:32 "x"

let test_solver_simple () =
  let x = x32 () in
  (* x + 1 = 10 *)
  let c = Expr.eq (Expr.add x (Expr.const 1L)) (Expr.const 10L) in
  match Solver.check [ c ] with
  | Solver.Sat m -> Alcotest.(check int64) "x" 9L (Expr.eval m x)
  | _ -> Alcotest.fail "expected sat"

let test_solver_unsat () =
  let x = x32 () in
  let c1 = Expr.ult x (Expr.const 5L) in
  let c2 = Expr.ult (Expr.const 10L) x in
  match Solver.check [ c1; c2 ] with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_solver_mul () =
  let x = x32 () in
  let c = Expr.eq (Expr.mul x (Expr.const 6L)) (Expr.const 42L) in
  match Solver.check [ c ] with
  | Solver.Sat m ->
      let v = Expr.eval m x in
      Alcotest.(check int64) "6x=42" 42L
        (Int64.logand (Int64.mul v 6L) 0xFFFFFFFFL)
  | _ -> Alcotest.fail "expected sat"

let test_solver_div () =
  let x = Expr.fresh_var ~width:8 "d" in
  let c = Expr.eq (Expr.udiv (Expr.const ~width:8 100L) x) (Expr.const ~width:8 7L) in
  match Solver.check [ c ] with
  | Solver.Sat m ->
      let v = Expr.eval m x in
      Alcotest.(check int64) "100/x=7" 7L (Int64.unsigned_div 100L v)
  | _ -> Alcotest.fail "expected sat"

let test_solver_signed () =
  let x = x32 () in
  let c1 = Expr.slt x (Expr.const 0L) in
  let c2 = Expr.slt (Expr.const (-10L)) x in
  match Solver.check [ c1; c2 ] with
  | Solver.Sat m ->
      let v = Expr.sext64 (Expr.eval m x) 32 in
      assert (v < 0L && v > -10L)
  | _ -> Alcotest.fail "expected sat"

let test_solver_shift () =
  let x = Expr.fresh_var ~width:8 "s" in
  (* (1 << x) = 16  ==> x = 4 *)
  let c = Expr.eq (Expr.shl (Expr.const ~width:8 1L) x) (Expr.const ~width:8 16L) in
  match Solver.check [ c ] with
  | Solver.Sat m -> Alcotest.(check int64) "x" 4L (Int64.logand (Expr.eval m x) 7L)
  | _ -> Alcotest.fail "expected sat"

let test_get_values () =
  let x = Expr.fresh_var ~width:8 "v" in
  let c = Expr.ult x (Expr.const ~width:8 3L) in
  let vs = Solver.get_values ~constraints:[ c ] ~limit:10 x in
  Alcotest.(check int) "3 values" 3 (List.length vs);
  List.iter (fun v -> assert (Int64.unsigned_compare v 3L < 0)) vs

let test_get_unique () =
  let x = x32 () in
  let c = Expr.eq x (Expr.const 77L) in
  (match Solver.get_unique_value ~constraints:[ c ] x with
  | Some 77L -> ()
  | _ -> Alcotest.fail "expected unique 77");
  let c2 = Expr.ult x (Expr.const 100L) in
  match Solver.get_unique_value ~constraints:[ c2 ] x with
  | None -> ()
  | Some _ -> Alcotest.fail "not unique"

let test_slicing () =
  (* Unrelated constraints must not affect the query result. *)
  let x = x32 () and y = x32 () in
  let cx = Expr.eq x (Expr.const 1L) in
  let cy = Expr.ult y (Expr.const 50L) in
  let sliced = Solver.slice ~seed_vars:(Expr.vars x) [ cx; cy ] in
  Alcotest.(check int) "only x constraint kept" 1 (List.length sliced)

(* Property: every model returned by the solver satisfies the constraints. *)
let prop_models_satisfy =
  QCheck2.Test.make ~count:60 ~name:"solver models satisfy constraints"
    QCheck2.Gen.(
      quad (int_bound 255) (int_bound 255) (int_bound 3) (int_bound 3))
    (fun (a, b, op1, op2) ->
      let x = Expr.fresh_var ~width:8 "qx" in
      let mk op c =
        let c = Expr.const ~width:8 (Int64.of_int c) in
        match op with
        | 0 -> Expr.ult x c
        | 1 -> Expr.ule c x
        | 2 -> Expr.eq (Expr.band x (Expr.const ~width:8 0x0fL)) (Expr.band c (Expr.const ~width:8 0x0fL))
        | _ -> Expr.ne x c
      in
      let cs = [ mk op1 a; mk op2 b ] in
      match Solver.check cs with
      | Solver.Sat m -> List.for_all (fun c -> Expr.eval m c = 1L) cs
      | Solver.Unsat ->
          (* Cross-check against brute force over the 8-bit domain. *)
          let xid = match x with Expr.Var { id; _ } -> id | _ -> assert false in
          let exists = ref false in
          for v = 0 to 255 do
            let m = Expr.Int_map.singleton xid (Int64.of_int v) in
            if List.for_all (fun c -> Expr.eval m c = 1L) cs then exists := true
          done;
          not !exists
      | Solver.Unknown -> true)

(* Property: solver agrees with brute force on arbitrary 8-bit formulas. *)
let prop_solver_vs_brute =
  QCheck2.Test.make ~count:40 ~name:"solver agrees with brute force"
    QCheck2.Gen.(triple (int_bound 255) (int_bound 7) (int_bound 255))
    (fun (k, shift, m8) ->
      let x = Expr.fresh_var ~width:8 "bx" in
      let lhs =
        Expr.bxor
          (Expr.shl x (Expr.const ~width:8 (Int64.of_int shift)))
          (Expr.const ~width:8 (Int64.of_int m8))
      in
      let c = Expr.eq lhs (Expr.const ~width:8 (Int64.of_int k)) in
      let xid = match x with Expr.Var { id; _ } -> id | _ -> assert false in
      let brute = ref false in
      for v = 0 to 255 do
        let m = Expr.Int_map.singleton xid (Int64.of_int v) in
        if Expr.eval m c = 1L then brute := true
      done;
      match Solver.check [ c ] with
      | Solver.Sat _ -> !brute
      | Solver.Unsat -> not !brute
      | Solver.Unknown -> true)

(* --- solver-context / cache soundness ------------------------------- *)

let verdict_tag = function
  | Solver.Sat _ -> "sat"
  | Solver.Unsat -> "unsat"
  | Solver.Unknown -> "unknown"

(* Randomized overlapping query sequences on one warm context: cache hits
   (model cache and unsat cache) must never flip a verdict relative to a
   cold context.  Queries deliberately repeat and share sub-conjunctions
   so the caches actually fire. *)
let test_cache_soundness () =
  let rng = Random.State.make [| 0xCAC4E; 7 |] in
  let xs = Array.init 3 (fun i -> Expr.fresh_var ~width:8 (Printf.sprintf "cs%d" i)) in
  let pool =
    (* A mix of satisfiable, contradictory and overlapping constraints. *)
    [
      Expr.ult xs.(0) (Expr.const ~width:8 10L);
      Expr.ult (Expr.const ~width:8 20L) xs.(0);
      Expr.eq xs.(1) (Expr.add xs.(0) (Expr.const ~width:8 1L));
      Expr.eq (Expr.band xs.(2) (Expr.const ~width:8 3L)) (Expr.const ~width:8 2L);
      Expr.ne xs.(2) xs.(1);
      Expr.ule xs.(1) (Expr.const ~width:8 200L);
      Expr.eq xs.(0) (Expr.const ~width:8 5L);
    ]
  in
  let pool = Array.of_list pool in
  let warm = Solver.create_ctx () in
  for _ = 1 to 60 do
    let n = 1 + Random.State.int rng 4 in
    let cs =
      List.init n (fun _ -> pool.(Random.State.int rng (Array.length pool)))
    in
    let w = Solver.check ~ctx:warm cs in
    let c = Solver.check ~ctx:(Solver.create_ctx ()) cs in
    Alcotest.(check string)
      "warm verdict = cold verdict" (verdict_tag c) (verdict_tag w);
    (* Any Sat model — cached or fresh — must actually satisfy. *)
    match w with
    | Solver.Sat m ->
        List.iter (fun cst -> Alcotest.(check int64) "model satisfies" 1L (Expr.eval m cst)) cs
    | _ -> ()
  done;
  (* The sequence above repeats queries: the warm context must have hits,
     otherwise this test exercises nothing. *)
  Alcotest.(check bool) "warm cache was exercised" true
    (warm.Solver.ctx_stats.Solver.cache_hits > 0)

(* Contexts are isolated: queries on one leave another (and the default)
   untouched, and reset/clear act per-context. *)
let test_ctx_isolation () =
  let a = Solver.create_ctx () and b = Solver.create_ctx () in
  Alcotest.(check int) "fresh ctx starts at zero" 0 a.Solver.ctx_stats.Solver.queries;
  let x = Expr.fresh_var ~width:8 "iso" in
  let c = Expr.ult x (Expr.const ~width:8 4L) in
  let default_before = Solver.stats.Solver.queries in
  (match Solver.check ~ctx:a [ c ] with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "expected sat");
  Alcotest.(check int) "ctx a counted its query" 1 a.Solver.ctx_stats.Solver.queries;
  Alcotest.(check int) "ctx b untouched" 0 b.Solver.ctx_stats.Solver.queries;
  Alcotest.(check int) "default ctx untouched" default_before Solver.stats.Solver.queries;
  Alcotest.(check bool) "ctx a cached a model" true (Solver.models a <> []);
  Alcotest.(check bool) "ctx b cache empty" true (Solver.models b = []);
  Solver.reset_stats ~ctx:a ();
  Alcotest.(check int) "reset zeroes only ctx a" 0 a.Solver.ctx_stats.Solver.queries;
  Solver.clear_caches a;
  Alcotest.(check bool) "clear_caches empties model cache" true (Solver.models a = []);
  Alcotest.(check int) "clear_caches keeps unsat cache empty too" 0
    (Hashtbl.length a.Solver.unsat_cache)

(* Concretization picks bypass the model cache, so a warm context returns
   the same value as a cold one regardless of query history. *)
let test_get_value_warm_vs_cold () =
  let x = Expr.fresh_var ~width:8 "gv" in
  let cs = [ Expr.ult x (Expr.const ~width:8 100L) ] in
  let warm = Solver.create_ctx () in
  (* Pollute the warm cache with models from different constraint sets. *)
  ignore (Solver.check ~ctx:warm [ Expr.eq x (Expr.const ~width:8 42L) ]);
  ignore (Solver.check ~ctx:warm [ Expr.ult (Expr.const ~width:8 50L) x ]);
  let vw = Solver.get_value ~ctx:warm ~constraints:cs x in
  let vc = Solver.get_value ~ctx:(Solver.create_ctx ()) ~constraints:cs x in
  (match (vw, vc) with
  | Some a, Some b -> Alcotest.(check int64) "warm pick = cold pick" b a
  | _ -> Alcotest.fail "expected values");
  let vsw = Solver.get_values ~ctx:warm ~constraints:cs ~limit:5 x in
  let vsc = Solver.get_values ~ctx:(Solver.create_ctx ()) ~constraints:cs ~limit:5 x in
  Alcotest.(check (list int64)) "get_values history-independent" vsc vsw

(* --- incremental assumption stack ----------------------------------- *)

let with_mode mode f =
  let saved = !Solver.default_mode in
  Solver.set_default_mode mode;
  Fun.protect ~finally:(fun () -> Solver.set_default_mode saved) f

let result_tag = function
  | Sat.Sat -> "sat"
  | Sat.Unsat -> "unsat"
  | Sat.Unknown -> "unknown"

(* Property: a long-lived instance driven through a random push /
   solve_assuming / pop script answers exactly like a throwaway solver
   handed the same clauses plus the stacked assumptions as units, and
   every Sat model satisfies all clauses and currently-live
   assumptions.  This is the soundness contract that lets the solver
   retain learned clauses across pops. *)
let test_sat_incremental_vs_fresh () =
  let rng = Random.State.make [| 0x51AC; 11 |] in
  for _round = 1 to 25 do
    let nvars = 5 + Random.State.int rng 7 in
    let inc = Sat.create () in
    for _ = 1 to nvars do
      ignore (Sat.new_var inc)
    done;
    let rand_lit () =
      let v = Random.State.int rng nvars in
      if Random.State.bool rng then Sat.pos v else Sat.neg v
    in
    let nclauses = 8 + Random.State.int rng 16 in
    let clauses =
      List.init nclauses (fun _ ->
          List.init (1 + Random.State.int rng 3) (fun _ -> rand_lit ()))
    in
    List.iter (Sat.add_clause inc) clauses;
    let stack = ref [] in
    for _step = 1 to 10 do
      (if !stack = [] || Random.State.bool rng then begin
         let l = rand_lit () in
         Sat.push inc;
         Sat.assume inc l;
         stack := l :: !stack
       end
       else begin
         Sat.pop inc;
         stack := List.tl !stack
       end);
      let extra = if Random.State.bool rng then [ rand_lit () ] else [] in
      let fresh = Sat.create () in
      for _ = 1 to nvars do
        ignore (Sat.new_var fresh)
      done;
      List.iter (Sat.add_clause fresh) clauses;
      List.iter (fun l -> Sat.add_clause fresh [ l ]) (!stack @ extra);
      let ri = Sat.solve_assuming inc extra in
      let rf = Sat.solve fresh in
      Alcotest.(check string)
        "incremental verdict = fresh verdict" (result_tag rf) (result_tag ri);
      match ri with
      | Sat.Sat ->
          let lit_true l =
            Sat.model_value inc (Sat.lit_var l) = Sat.lit_sign l
          in
          List.iter
            (fun c ->
              Alcotest.(check bool)
                "model satisfies" true
                (List.exists lit_true c))
            (clauses @ List.map (fun l -> [ l ]) (!stack @ extra))
      | _ -> ()
    done;
    Alcotest.(check int) "frame bookkeeping" (List.length !stack)
      (Sat.frames inc)
  done

(* A persistent bit-blast context must map structurally equal expression
   nodes to the identical SAT literal — across separate calls and across
   a push/solve/pop cycle — or prefix matching on a live instance would
   silently re-encode (and re-constrain) nothing-new terms. *)
let test_bitblast_literal_stable () =
  let sat = Sat.create () in
  let bctx = Bitblast.create sat in
  let x = Expr.fresh_var ~width:8 "bl" in
  let mk () =
    Expr.ult (Expr.add x (Expr.const ~width:8 3L)) (Expr.const ~width:8 10L)
  in
  let l1 = Bitblast.literal bctx (mk ()) in
  let l2 = Bitblast.literal bctx (mk ()) in
  Alcotest.(check int) "structurally equal nodes share a literal" l1 l2;
  Sat.push sat;
  Sat.assume sat l1;
  (match Sat.solve sat with
  | Sat.Sat -> ()
  | _ -> Alcotest.fail "expected sat under assumption");
  Sat.pop sat;
  let l3 = Bitblast.literal bctx (mk ()) in
  Alcotest.(check int) "literal stable across push/solve/pop" l1 l3;
  let other = Expr.ult x (Expr.const ~width:8 9L) in
  Alcotest.(check bool) "distinct nodes get distinct literals" true
    (Bitblast.literal bctx other <> l1)

(* Whole-engine differential: every solver mode must explore the same
   tree and emit byte-identical sorted case sets, serially and with
   domain-parallel workers (each worker gets a private instance ring, so
   jobs > 1 exercises ring isolation). *)
let explore_cases mode jobs =
  with_mode mode (fun () ->
      let r =
        S2e_core.Parallel.explore ~jobs
          ~limits:
            {
              S2e_core.Executor.max_instructions = None;
              max_seconds = Some 60.;
              max_completed = None;
            }
          ~make_engine:(Test_dist.make_engine_for Test_dist.workload_32)
          ~boot:(fun eng -> S2e_core.Executor.boot eng ~entry:0x1000 ())
          ()
      in
      List.map
        (fun s ->
          S2e_core.Parallel.test_case_to_string
            (S2e_core.Parallel.test_case s))
        r.S2e_core.Parallel.completed
      |> List.sort compare)

let test_mode_differential () =
  let fresh = explore_cases Solver.Fresh 1 in
  Alcotest.(check int) "32 paths" 32 (List.length fresh);
  Alcotest.(check (list string))
    "incremental serial = fresh" fresh
    (explore_cases Solver.Incremental 1);
  Alcotest.(check (list string))
    "incremental jobs=4 = fresh" fresh
    (explore_cases Solver.Incremental 4);
  Alcotest.(check (list string))
    "portfolio serial = fresh" fresh
    (explore_cases Solver.Portfolio 1)

let tests =
  [
    Alcotest.test_case "sat basic" `Quick test_sat_basic;
    Alcotest.test_case "sat pigeonhole (learning)" `Quick test_sat_pigeonhole;
    Alcotest.test_case "solver linear" `Quick test_solver_simple;
    Alcotest.test_case "solver unsat interval" `Quick test_solver_unsat;
    Alcotest.test_case "solver multiplication" `Quick test_solver_mul;
    Alcotest.test_case "solver division" `Quick test_solver_div;
    Alcotest.test_case "solver signed compare" `Quick test_solver_signed;
    Alcotest.test_case "solver symbolic shift" `Quick test_solver_shift;
    Alcotest.test_case "get_values enumerates" `Quick test_get_values;
    Alcotest.test_case "get_unique_value" `Quick test_get_unique;
    Alcotest.test_case "independent slicing" `Quick test_slicing;
    Alcotest.test_case "cache soundness (warm vs cold verdicts)" `Quick
      test_cache_soundness;
    Alcotest.test_case "solver context isolation" `Quick test_ctx_isolation;
    Alcotest.test_case "get_value warm vs cold" `Quick
      test_get_value_warm_vs_cold;
    Alcotest.test_case "incremental push/pop answers like fresh" `Quick
      test_sat_incremental_vs_fresh;
    Alcotest.test_case "bitblast literals stable in a context" `Quick
      test_bitblast_literal_stable;
    Alcotest.test_case "solver modes explore identical case sets" `Quick
      test_mode_differential;
    QCheck_alcotest.to_alcotest prop_models_satisfy;
    QCheck_alcotest.to_alcotest prop_solver_vs_brute;
  ]
