(* Property-based differential testing of the bitfield-theory simplifier
   (paper section 5): for randomly generated expression trees, the
   simplified expression must evaluate identically to the original under
   random concrete models.  The smart constructors get the same treatment
   for free, since generation goes through them.

   Hand-rolled seeded generation (rather than qcheck shrinking) keeps the
   trees well-width-formed: operand widths must agree, and
   extract/concat/extension nodes need coherent width bookkeeping. *)

open S2e_expr

let widths = [ 1; 8; 16; 32 ]
let trees_per_width = 500
let models_per_tree = 3
let vars_per_width = 3

(* One variable pool shared by all trees so different trees exercise
   common subexpressions; fresh ids keep them distinct from other tests. *)
let var_pool =
  List.map
    (fun w ->
      (w, Array.init vars_per_width (fun i -> Expr.fresh_var ~width:w (Printf.sprintf "p%d_%d" w i))))
    widths

let vars_of_width w = List.assoc w var_pool

let random_value rng w =
  (* Mix small values (likely to trigger special cases: 0, 1, all-ones)
     with uniform bits. *)
  match Random.State.int rng 4 with
  | 0 -> 0L
  | 1 -> 1L
  | 2 -> Expr.mask w
  | _ -> Expr.norm (Random.State.int64 rng Int64.max_int) w

let choose rng l = List.nth l (Random.State.int rng (List.length l))

let binops =
  Expr.[ Add; Sub; Mul; Udiv; Urem; And; Or; Xor; Shl; Lshr; Ashr ]

let cmpops = Expr.[ Eq; Ult; Ule; Slt; Sle ]

(* Generate a random expression of exactly [w] bits. *)
let rec gen rng w depth =
  if depth = 0 then leaf rng w
  else
    match Random.State.int rng 10 with
    | 0 -> leaf rng w
    | 1 -> Expr.unop (choose rng Expr.[ Neg; Bnot ]) (gen rng w (depth - 1))
    | 2 | 3 | 4 ->
        Expr.binop (choose rng binops) (gen rng w (depth - 1))
          (gen rng w (depth - 1))
    | 5 ->
        Expr.ite (gen rng 1 (depth - 1)) (gen rng w (depth - 1))
          (gen rng w (depth - 1))
    | 6 ->
        (* extract a w-bit field out of a wider expression *)
        let wider = List.filter (fun w' -> w' > w) widths in
        if wider = [] then leaf rng w
        else
          let wa = choose rng wider in
          let lo = Random.State.int rng (wa - w + 1) in
          Expr.extract ~hi:(lo + w - 1) ~lo (gen rng wa (depth - 1))
    | 7 ->
        (* concat two halves when w splits into supported widths *)
        let splits =
          List.filter_map
            (fun wh -> if List.mem (w - wh) widths then Some wh else None)
            widths
        in
        if splits = [] then leaf rng w
        else
          let wh = choose rng splits in
          Expr.concat
            ~high:(gen rng wh (depth - 1))
            ~low:(gen rng (w - wh) (depth - 1))
    | 8 ->
        let narrower = List.filter (fun w' -> w' < w) widths in
        if narrower = [] then leaf rng w
        else
          let wa = choose rng narrower in
          let ext = if Random.State.bool rng then Expr.zext else Expr.sext in
          ext ~width:w (gen rng wa (depth - 1))
    | _ ->
        if w = 1 then
          let wa = choose rng widths in
          Expr.cmp (choose rng cmpops) (gen rng wa (depth - 1))
            (gen rng wa (depth - 1))
        else
          Expr.binop (choose rng binops) (gen rng w (depth - 1))
            (gen rng w (depth - 1))

and leaf rng w =
  if Random.State.bool rng then Expr.const ~width:w (random_value rng w)
  else (vars_of_width w).(Random.State.int rng vars_per_width)

let random_model rng e =
  Expr.fold_vars
    (fun m id _name width -> Expr.Int_map.add id (random_value rng width) m)
    Expr.Int_map.empty e

let check_tree rng w e =
  let simplified = Simplifier.simplify e in
  for _ = 1 to models_per_tree do
    let m = random_model rng e in
    let expect = Expr.eval m e in
    let got = Expr.eval m simplified in
    if expect <> got then
      Alcotest.failf
        "simplify changed semantics (width %d):@.  original: %s@.  \
         simplified: %s@.  model: {%s}@.  original=%Ld simplified=%Ld"
        w (Expr.to_string e)
        (Expr.to_string simplified)
        (String.concat "; "
           (List.map
              (fun (id, v) -> Printf.sprintf "v%d=%Ld" id v)
              (Expr.Int_map.bindings m)))
        expect got
  done

let test_simplifier_differential () =
  let rng = Random.State.make [| 0x5E2E; 2025 |] in
  List.iter
    (fun w ->
      for _ = 1 to trees_per_width do
        let depth = 1 + Random.State.int rng 5 in
        check_tree rng w (gen rng w depth)
      done)
    widths

(* The simplifier must also be idempotent: a second pass cannot change the
   (already canonical) result's semantics, and the tree must not grow. *)
let test_simplifier_idempotent_size () =
  let rng = Random.State.make [| 77; 1234 |] in
  List.iter
    (fun w ->
      for _ = 1 to 100 do
        let e = gen rng w 4 in
        let s1 = Simplifier.simplify e in
        let s2 = Simplifier.simplify s1 in
        for _ = 1 to models_per_tree do
          let m = random_model rng e in
          Alcotest.(check int64)
            "second pass stable" (Expr.eval m s1) (Expr.eval m s2)
        done
      done)
    widths

(* ------------------------------------------------------------------ *)
(* Merge-shaped trees                                                  *)
(* ------------------------------------------------------------------ *)

(* The ite-join of sibling states rewrites every differing register or
   memory cell to [ite (guard, vA, vB)], and repeated joins nest such
   selectors — frequently over the {e same} small set of guards, since
   siblings re-merging after a loop share fork conditions.  The property
   that makes merging sound: picking a branch per the model's guard
   valuation (the unmerged path's value) must equal evaluating the
   simplified merged cell. *)
let test_merged_ite_matches_unmerged () =
  let rng = Random.State.make [| 0x3E6; 17 |] in
  List.iter
    (fun w ->
      for _ = 1 to 200 do
        (* A small guard pool so join rounds repeat conditions and the
           same-condition collapse rules actually fire. *)
        let guards = Array.init 2 (fun _ -> gen rng 1 2) in
        let rounds = 1 + Random.State.int rng 4 in
        let cells = ref [ gen rng w 2 ] in
        let merged = ref (List.hd !cells) in
        let picks = ref [] in
        for _ = 1 to rounds do
          let g = guards.(Random.State.int rng 2) in
          let v = gen rng w 2 in
          cells := v :: !cells;
          picks := g :: !picks;
          (* join round: current merged state is side A, new sibling B *)
          merged := Expr.ite g !merged v
        done;
        let simplified = Simplifier.simplify !merged in
        for _ = 1 to models_per_tree do
          let m = random_model rng !merged in
          (* Reference: replay the joins newest-first, selecting a side
             per guard — this is the value the corresponding unmerged
             path holds.  [picks] and [cells] are both newest-first;
             guard true keeps the accumulated side, false takes the
             sibling joined that round. *)
          let rec replay picks cells =
            match (picks, cells) with
            | [], [ v0 ] -> Expr.eval m v0
            | g :: ps, v :: cs ->
                if Expr.eval m g <> 0L then replay ps cs else Expr.eval m v
            | _ -> assert false
          in
          let unmerged = replay !picks !cells in
          let got = Expr.eval m simplified in
          if got <> unmerged then
            Alcotest.failf
              "merged-then-simplified diverged from unmerged (width %d):@.  \
               merged: %s@.  simplified: %s@.  unmerged=%Ld got=%Ld"
              w
              (Expr.to_string !merged)
              (Expr.to_string simplified)
              unmerged got
        done
      done)
    widths

(* The specific rewrite rules the simplifier applies to merged cells,
   checked structurally: equal arms and constant conditions fold away
   (smart constructor), and a nested ite on the same condition — or its
   negation — collapses to the reachable arm. *)
let test_ite_collapse_rules () =
  let rng = Random.State.make [| 0xC0117; 5 |] in
  let t = Expr.const ~width:1 1L and f = Expr.const ~width:1 0L in
  for _ = 1 to 200 do
    let w = choose rng widths in
    let g = gen rng 1 3 in
    let a = gen rng w 3 and b = gen rng w 3 and c = gen rng w 3 in
    (* Smart-constructor folds. *)
    Alcotest.(check bool) "equal arms" true (Expr.ite g a a == a);
    Alcotest.(check bool) "const true cond" true (Expr.ite t a b == a);
    Alcotest.(check bool) "const false cond" true (Expr.ite f a b == b);
    (* Same-condition nesting collapses to the reachable arm. *)
    let s = Simplifier.simplify in
    let equal_after x y =
      if not (Expr.equal (s x) (s y)) then
        Alcotest.failf "no collapse:@.  %s@.  vs %s@.  -> %s@.  vs %s"
          (Expr.to_string x) (Expr.to_string y)
          (Expr.to_string (s x))
          (Expr.to_string (s y))
    in
    equal_after (Expr.ite g (Expr.ite g a b) c) (Expr.ite g a c);
    equal_after (Expr.ite g c (Expr.ite g a b)) (Expr.ite g c b);
    (* ... and through the condition's negation. *)
    equal_after (Expr.ite g (Expr.ite (Expr.log_not g) a b) c) (Expr.ite g b c);
    equal_after (Expr.ite g c (Expr.ite (Expr.log_not g) a b)) (Expr.ite g c a)
  done

(* ------------------------------------------------------------------ *)
(* Hash-consing invariants                                             *)
(* ------------------------------------------------------------------ *)

(* Same-domain interning canonicity: generating the same random tree
   twice (same seed) must yield the same physical node, and structural
   equality must coincide with physical equality across a pool of
   random trees — in both directions. *)
let test_intern_equal_iff_physical () =
  let mk seed =
    let rng = Random.State.make [| seed; 0xC0; 2026 |] in
    List.concat_map
      (fun w -> List.init 60 (fun _ -> gen rng w (1 + Random.State.int rng 5)))
      widths
  in
  let a = mk 11 and b = mk 11 in
  List.iter2
    (fun x y ->
      if not (x == y) then
        Alcotest.failf "same construction not physically equal: %s"
          (Expr.to_string x))
    a b;
  (* Cross-product over a mixed pool: equal ⇔ ==. *)
  let pool = Array.of_list (a @ mk 12) in
  Array.iter
    (fun x ->
      Array.iter
        (fun y ->
          let eq = Expr.equal x y and phys = x == y in
          if eq <> phys then
            Alcotest.failf "equal(%b) <> physical(%b) for:@.  %s@.  %s" eq phys
              (Expr.to_string x) (Expr.to_string y))
        pool)
    pool

(* Cached metadata must match a from-scratch recomputation by walking the
   (private but pattern-matchable) representation. *)
let rec ref_size (e : Expr.t) =
  match e with
  | Const _ | Var _ -> 1
  | Unop { arg; _ } | Extract { arg; _ } | Zext { arg; _ } | Sext { arg; _ } ->
      1 + ref_size arg
  | Binop { lhs; rhs; _ } | Cmp { lhs; rhs; _ } -> 1 + ref_size lhs + ref_size rhs
  | Ite { cond; then_; else_; _ } ->
      1 + ref_size cond + ref_size then_ + ref_size else_
  | Concat { high; low; _ } -> 1 + ref_size high + ref_size low

let ref_vars e =
  Expr.fold_vars (fun acc id _ _ -> Expr.Int_set.add id acc) Expr.Int_set.empty e

let test_metadata_matches_reference () =
  let rng = Random.State.make [| 0xBEEF; 42 |] in
  List.iter
    (fun w ->
      for _ = 1 to 200 do
        let e = gen rng w (1 + Random.State.int rng 5) in
        Alcotest.(check int) "size matches walk" (ref_size e) (Expr.size e);
        Alcotest.(check bool)
          "vars match walk" true
          (Expr.Int_set.equal (ref_vars e) (Expr.vars e));
        (* The strong hash must respect equality: rebuilding the node from
           its own parts through Raw yields the same hash (and node). *)
        Alcotest.(check int) "hash stable" (Expr.hash e) (Expr.hash e)
      done)
    widths

(* Equal expressions must have equal hashes even when built by different
   routes (smart constructors vs Raw re-interning of the same shape). *)
let test_hash_consistent_with_equal () =
  let rng = Random.State.make [| 999; 7 |] in
  for _ = 1 to 400 do
    let w = choose rng widths in
    let e = gen rng w (1 + Random.State.int rng 4) in
    let e' = Expr.intern_expr e in
    Alcotest.(check bool) "reintern is identity locally" true (e == e');
    Alcotest.(check int) "hash equal" (Expr.hash e) (Expr.hash e')
  done

(* Memoized simplify must be extensionally identical to the memo-free
   reference path, and (being deterministic per node id) structurally
   equal to it. *)
let test_simplify_memo_differential () =
  let rng = Random.State.make [| 31337; 5 |] in
  List.iter
    (fun w ->
      for _ = 1 to 200 do
        let e = gen rng w (1 + Random.State.int rng 5) in
        let cached = Simplifier.simplify e in
        let uncached = Simplifier.simplify_uncached e in
        if not (Expr.equal cached uncached) then
          Alcotest.failf
            "memoized simplify diverged:@.  original: %s@.  memo: %s@.  \
             reference: %s"
            (Expr.to_string e) (Expr.to_string cached)
            (Expr.to_string uncached);
        (* And a repeat call must hit the memo with the identical node. *)
        Alcotest.(check bool)
          "memo hit returns same node" true
          (Simplifier.simplify e == cached);
        for _ = 1 to models_per_tree do
          let m = random_model rng e in
          Alcotest.(check int64)
            "memoized simplify preserves eval" (Expr.eval m e)
            (Expr.eval m cached)
        done
      done)
    widths

let tests =
  [
    Alcotest.test_case "simplifier differential (random trees x models)"
      `Quick test_simplifier_differential;
    Alcotest.test_case "simplifier idempotent" `Quick
      test_simplifier_idempotent_size;
    Alcotest.test_case "merged ite cells match unmerged paths" `Quick
      test_merged_ite_matches_unmerged;
    Alcotest.test_case "ite collapse rules" `Quick test_ite_collapse_rules;
    Alcotest.test_case "interning: equal iff physically equal" `Quick
      test_intern_equal_iff_physical;
    Alcotest.test_case "interning: metadata matches reference walk" `Quick
      test_metadata_matches_reference;
    Alcotest.test_case "interning: hash consistent under re-intern" `Quick
      test_hash_consistent_with_equal;
    Alcotest.test_case "simplifier memo differential" `Quick
      test_simplify_memo_differential;
  ]
