(* Differential tests for the state-merging subsystem: a merged run
   (--merge=auto/always) must terminate with exactly the same set of
   test cases as plain enumeration (--merge=off), only with fewer
   completed paths.  Case sets are compared after expanding each merged
   state's case tree back into per-leaf models ({!Parallel.test_cases}),
   so equality here is byte-level on the canonical case strings. *)

open S2e_core
module Guest = S2e_guest.Guest
module Workloads_src = S2e_guest.Workloads_src
module Controller = S2e_merge.Controller
module Policy = S2e_merge.Policy

(* The stock urlparse workload makes 8 input bytes symbolic, which is
   far too many to enumerate exhaustively (hundreds of thousands of
   paths).  Narrow the symbolic window so both modes drain within a
   test budget while still exercising the same parser code — scheme
   check, host/port/path/query classification — that the merge
   controller collapses. *)
let narrow_sym_mem ~bytes src =
  let wide = "__s2e_sym_mem(url + 8, 8, 1);" in
  let narrow = Printf.sprintf "__s2e_sym_mem(url + 8, %d, 1);" bytes in
  let wl = String.length wide in
  let rec find i =
    if i + wl > String.length src then
      invalid_arg "narrow_sym_mem: pattern not found"
    else if String.sub src i wl = wide then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub src 0 i ^ narrow
  ^ String.sub src (i + wl) (String.length src - i - wl)

let urlparse_narrow = narrow_sym_mem ~bytes:2 Workloads_src.urlparse

let build name src =
  Guest.build
    ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
    ~workload:(name, src) ()

let explore ?(jobs = 1) ?instret_sensitive ~mode (name, img) =
  let make_engine () =
    let config = Executor.default_config () in
    config.consistency <- Consistency.LC;
    let engine = Executor.create ~config () in
    Guest.load_into_engine engine img;
    Executor.set_unit engine [ "nulldrv"; name ];
    ignore (Controller.install ?instret_sensitive ~mode engine);
    engine
  in
  Parallel.explore ~jobs ~make_engine
    ~boot:(fun eng -> Executor.boot eng ~entry:img.Guest.entry ())
    ()

let case_set (r : Parallel.result) =
  List.concat_map Parallel.test_cases r.Parallel.completed
  |> List.map Parallel.test_case_to_string
  |> List.sort compare

let completed (r : Parallel.result) = List.length r.Parallel.completed

let check_drained name (r : Parallel.result) =
  Alcotest.(check int) (name ^ ": drained frontier") 0
    (List.length r.Parallel.frontier)

let test_symloop_merge_equiv () =
  let img = ("symloop", build "symloop" Workloads_src.symloop) in
  let off = explore ~mode:Policy.Off img in
  let auto = explore ~mode:Policy.Auto img in
  check_drained "off" off;
  check_drained "auto" auto;
  Alcotest.(check int) "off enumerates 32 paths" 32 (completed off);
  Alcotest.(check bool)
    (Printf.sprintf "merged run completes >=10x fewer paths (%d vs %d)"
       (completed auto) (completed off))
    true
    (completed off >= 10 * completed auto);
  Alcotest.(check (list string))
    "identical case sets" (case_set off) (case_set auto)

let test_urlparse_merge_equiv () =
  let img = ("urlparse", build "urlparse" urlparse_narrow) in
  let off = explore ~mode:Policy.Off img in
  let auto = explore ~mode:Policy.Auto img in
  check_drained "off" off;
  check_drained "auto" auto;
  Alcotest.(check bool)
    (Printf.sprintf "merged run completes >=5x fewer paths (%d vs %d)"
       (completed auto) (completed off))
    true
    (completed off >= 5 * completed auto);
  Alcotest.(check (list string))
    "identical case sets" (case_set off) (case_set auto)

let test_always_mode_equiv () =
  let img = ("symloop", build "symloop" Workloads_src.symloop) in
  let off = explore ~mode:Policy.Off img in
  let always = explore ~mode:Policy.Always img in
  check_drained "always" always;
  Alcotest.(check (list string))
    "identical case sets" (case_set off) (case_set always)

(* Merge decisions are purely structural (Policy.Auto inspects cached
   node counts, never wall-clock or solver time), so the final case set
   must not depend on how states were distributed over workers. *)
let test_parallel_determinism () =
  let img = ("urlparse", build "urlparse" urlparse_narrow) in
  let serial = explore ~jobs:1 ~mode:Policy.Auto img in
  let par = explore ~jobs:4 ~mode:Policy.Auto img in
  check_drained "jobs=4" par;
  Alcotest.(check (list string))
    "jobs=1 and jobs=4 agree" (case_set serial) (case_set par)

(* With an instruction-counting plugin active every sibling pair
   differs in instret, so every join attempt reports Unmergeable and
   the run must fall back to plain enumeration — byte-identical to
   --merge=off, same path count and all. *)
let test_instret_sensitive_fallback () =
  let img = ("symloop", build "symloop" Workloads_src.symloop) in
  let off = explore ~mode:Policy.Off img in
  let fallback = explore ~instret_sensitive:true ~mode:Policy.Auto img in
  check_drained "fallback" fallback;
  Alcotest.(check int) "same path count" (completed off) (completed fallback);
  Alcotest.(check (list string))
    "identical case sets" (case_set off) (case_set fallback)

let tests =
  [
    Alcotest.test_case "symloop: merged == enumerated, >=10x fewer paths"
      `Quick test_symloop_merge_equiv;
    Alcotest.test_case "urlparse: merged == enumerated" `Quick
      test_urlparse_merge_equiv;
    Alcotest.test_case "always mode preserves case set" `Quick
      test_always_mode_equiv;
    Alcotest.test_case "jobs=1 vs jobs=4 path-set determinism" `Quick
      test_parallel_determinism;
    Alcotest.test_case "instret-sensitive falls back to enumeration" `Quick
      test_instret_sensitive_fallback;
  ]
