(* Unit tests for the engine's data structures: symbolic memory, searchers,
   the module map, the translator cache, and the consistency-model
   taxonomy (paper Table 1). *)

open S2e_core
module Expr = S2e_expr.Expr

(* --- Symmem --- *)

let mk_mem () =
  let base = Bytes.make 4096 '\000' in
  Bytes.set base 100 '\x42';
  Symmem.create ~base

let test_symmem_base_read () =
  let m = mk_mem () in
  Alcotest.(check (option int)) "base byte" (Some 0x42) (Symmem.concrete_byte m 100);
  Alcotest.(check (option int)) "zero byte" (Some 0) (Symmem.concrete_byte m 0)

let test_symmem_overlay () =
  let m = mk_mem () in
  let m' = Symmem.write_byte m 100 (Expr.const ~width:8 0x99L) in
  (* persistent: the original is unchanged *)
  Alcotest.(check (option int)) "original" (Some 0x42) (Symmem.concrete_byte m 100);
  Alcotest.(check (option int)) "updated" (Some 0x99) (Symmem.concrete_byte m' 100);
  Alcotest.(check int) "overlay size" 1 (Symmem.overlay_size m')

let test_symmem_word_roundtrip () =
  let m = mk_mem () in
  let m = Symmem.write_word m 200 (Expr.const 0xCAFEBABEL) in
  match Expr.to_const (Symmem.read_word m 200) with
  | Some 0xCAFEBABEL -> ()
  | v ->
      Alcotest.failf "roundtrip failed: %s"
        (match v with Some v -> Int64.to_string v | None -> "symbolic")

let prop_symmem_read_after_write =
  QCheck2.Test.make ~count:200 ~name:"symmem word read-after-write"
    QCheck2.Gen.(pair (int_bound 4000) (int_bound 0xFFFFFF))
    (fun (addr, v) ->
      let m = mk_mem () in
      let m = Symmem.write_word m addr (Expr.const (Int64.of_int v)) in
      Expr.to_const (Symmem.read_word m addr) = Some (Int64.of_int v))

let prop_symmem_disjoint_writes =
  QCheck2.Test.make ~count:100 ~name:"symmem disjoint writes don't interfere"
    QCheck2.Gen.(pair (int_bound 1000) (int_bound 1000))
    (fun (a, b) ->
      let a = a * 4 and b = 4000 + (b * 4) mod 80 in
      let m = mk_mem () in
      let m = Symmem.write_word m a (Expr.const 1L) in
      let m = Symmem.write_word m b (Expr.const 2L) in
      a + 4 > b
      || Expr.to_const (Symmem.read_word m a) = Some 1L)

let test_symmem_symbolic_read () =
  (* An ITE chain over a page resolves correctly under a model. *)
  let base = Bytes.init 4096 (fun i -> Char.chr (i land 0xff)) in
  let m = Symmem.create ~base in
  let idx = Expr.fresh_var ~width:32 "idx" in
  let e, in_page = Symmem.read_byte_sym m ~page_size:32 ~anchor:64 idx in
  let id = match idx with Expr.Var { id; _ } -> id | _ -> assert false in
  (* idx = 70 -> byte 70 *)
  let model = Expr.Int_map.singleton id 70L in
  Alcotest.(check int64) "chain picks byte 70" 70L (Expr.eval model e);
  Alcotest.(check int64) "in-page holds" 1L (Expr.eval model in_page);
  let outside = Expr.Int_map.singleton id 200L in
  Alcotest.(check int64) "outside page excluded" 0L (Expr.eval outside in_page)

let test_symmem_fault () =
  let m = mk_mem () in
  (match Symmem.read_byte m 5000 with
  | exception Symmem.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault");
  match Symmem.write_word m (-4) (Expr.const 0L) with
  | exception Symmem.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault"

(* --- Searchers --- *)

let dummy_state id =
  let s =
    State.create
      ~mem:(Symmem.create ~base:(Bytes.create 16))
      ~devices:(S2e_vm.Devices.create ())
      ~pc:0x1000
  in
  ignore id;
  s

let test_searcher_dfs_lifo () =
  let s1 = dummy_state 1 and s2 = dummy_state 2 in
  let d = Searcher.dfs () in
  d.add s1;
  d.add s2;
  (match d.select () with
  | Some s -> Alcotest.(check int) "most recent first" s2.State.id s.State.id
  | None -> Alcotest.fail "empty");
  d.remove s2;
  match d.select () with
  | Some s -> Alcotest.(check int) "then older" s1.State.id s.State.id
  | None -> Alcotest.fail "empty"

let test_searcher_bfs_fifo () =
  let s1 = dummy_state 1 and s2 = dummy_state 2 in
  let b = Searcher.bfs () in
  b.add s1;
  b.add s2;
  match b.select () with
  | Some s -> Alcotest.(check int) "oldest first" s1.State.id s.State.id
  | None -> Alcotest.fail "empty"

let test_searcher_skips_dead () =
  let s1 = dummy_state 1 and s2 = dummy_state 2 in
  s1.State.status <- State.Halted;
  let d = Searcher.dfs () in
  d.add s2;
  d.add s1;
  match d.select () with
  | Some s -> Alcotest.(check int) "dead state skipped" s2.State.id s.State.id
  | None -> Alcotest.fail "empty"

let test_searcher_scored () =
  let s1 = dummy_state 1 and s2 = dummy_state 2 in
  s2.State.depth <- 9;
  let sc = Searcher.scored (fun s -> s.State.depth) in
  sc.add s1;
  sc.add s2;
  match sc.select () with
  | Some s -> Alcotest.(check int) "max score wins" s2.State.id s.State.id
  | None -> Alcotest.fail "empty"

let test_searcher_of_name () =
  (* Every published selector name resolves. *)
  List.iter
    (fun name -> ignore (Searcher.of_name name))
    Searcher.selector_names;
  Alcotest.(check bool) "scored accepted" true
    (List.mem "scored" Searcher.selector_names);
  (* maxcov is backed by scored with the shallowest-first default score. *)
  let shallow = dummy_state 1 and deep = dummy_state 2 in
  deep.State.depth <- 5;
  let mc = Searcher.of_name "maxcov" in
  mc.add deep;
  mc.add shallow;
  (match mc.select () with
  | Some s -> Alcotest.(check int) "maxcov prefers shallow" shallow.State.id s.State.id
  | None -> Alcotest.fail "empty");
  (* Unknown names raise Invalid_argument enumerating valid selectors. *)
  match Searcher.of_name "coverage-first" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      List.iter
        (fun name ->
          let contained =
            let ln = String.length name and lm = String.length msg in
            let rec scan i =
              i + ln <= lm && (String.sub msg i ln = name || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "error lists %S" name)
            true contained)
        Searcher.selector_names

(* --- Module map --- *)

let test_module_map () =
  let mm = Module_map.create () in
  Module_map.add mm ~name:"a" ~code_start:0x1000 ~code_end:0x2000 ~data_end:0x3000;
  Module_map.add mm ~name:"b" ~code_start:0x3000 ~code_end:0x4000 ~data_end:0x4000;
  (match Module_map.find mm 0x2800 with
  | Some e -> Alcotest.(check string) "data belongs to module" "a" e.name
  | None -> Alcotest.fail "not found");
  (match Module_map.find_code mm 0x2800 with
  | Some _ -> Alcotest.fail "data is not code"
  | None -> ());
  match Module_map.find_code mm 0x3800 with
  | Some e -> Alcotest.(check string) "code lookup" "b" e.name
  | None -> Alcotest.fail "not found"

(* --- DBT --- *)

let test_dbt_cache_and_marks () =
  let dbt = S2e_dbt.Dbt.create () in
  let buf = Bytes.make 64 '\000' in
  S2e_isa.Insn.encode (S2e_isa.Insn.Li { rd = 0; imm = 5l }) buf 0;
  S2e_isa.Insn.encode S2e_isa.Insn.Halt buf 8;
  let fetch i = Char.code (Bytes.get buf i) in
  let translations = ref 0 in
  let tb1 =
    S2e_dbt.Dbt.translate dbt ~fetch ~on_translate:(fun _ _ -> incr translations) 0
  in
  let tb2 =
    S2e_dbt.Dbt.translate dbt ~fetch ~on_translate:(fun _ _ -> incr translations) 0
  in
  Alcotest.(check bool) "cached" true (tb1 == tb2);
  Alcotest.(check int) "translated each insn once" 2 !translations;
  Alcotest.(check int) "block length" 2 (Array.length tb1.insns);
  S2e_dbt.Dbt.mark dbt 8;
  Alcotest.(check bool) "mark" true (S2e_dbt.Dbt.is_marked dbt 8);
  (* Self-modifying write invalidates the block. *)
  S2e_dbt.Dbt.invalidate dbt 8;
  let tb3 =
    S2e_dbt.Dbt.translate dbt ~fetch ~on_translate:(fun _ _ -> incr translations) 0
  in
  Alcotest.(check bool) "retranslated" true (tb3 != tb1)

(* --- Consistency taxonomy (paper Table 1) --- *)

let test_consistency_table () =
  let open Consistency in
  (* consistency column *)
  List.iter
    (fun (m, expected) ->
      Alcotest.(check bool) (name m ^ " consistency") expected (is_consistent m))
    [ (SC_CE, true); (SC_UE, true); (SC_SE, true); (LC, true);
      (RC_OC, false); (RC_CC, false) ];
  (* completeness column *)
  List.iter
    (fun (m, expected) ->
      Alcotest.(check bool) (name m ^ " completeness") expected (is_complete m))
    [ (SC_CE, false); (SC_UE, false); (SC_SE, true); (LC, false);
      (RC_OC, true); (RC_CC, true) ];
  (* only SC-SE forks inside the environment *)
  List.iter
    (fun m ->
      Alcotest.(check bool) (name m ^ " env fork") (m = SC_SE) (fork_in_env m))
    all;
  (* RC-CC is the only model skipping feasibility checks *)
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (name m ^ " feasibility")
        (m <> RC_CC)
        (check_feasibility m))
    all;
  (* name round-trip *)
  List.iter (fun m -> Alcotest.(check bool) "roundtrip" true (of_name (name m) = m)) all

(* --- State --- *)

let test_state_fork_isolation () =
  let s = dummy_state 0 in
  State.set_reg s 3 (Expr.const 7L);
  let child = State.fork s in
  State.set_reg child 3 (Expr.const 9L);
  Alcotest.(check bool) "parent unchanged" true
    (Expr.to_const (State.get_reg s 3) = Some 7L);
  Alcotest.(check bool) "child diverged" true
    (Expr.to_const (State.get_reg child 3) = Some 9L);
  Alcotest.(check int) "depth bumped" (s.State.depth + 1) child.State.depth;
  Alcotest.(check int) "parent recorded" s.State.id child.State.parent

let test_execution_tree () =
  (* Attach a tree to a real exploration and check its structure. *)
  let img =
    S2e_guest.Guest.build
      ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
      ~workload:("w", {|
int main() {
  int x = __s2e_sym_int(1);
  if (x > 10) { if (x > 100) return 3; return 2; }
  return 1;
}
|})
      ()
  in
  let engine = Executor.create () in
  S2e_guest.Guest.load_into_engine engine img;
  Executor.set_unit engine [ "w" ];
  let tree = Tree.attach engine in
  let s0 = Executor.boot engine ~entry:img.entry () in
  ignore (Executor.run engine s0);
  (* Three paths: each state node is one terminated path. *)
  Alcotest.(check int) "three path nodes" 3 (Tree.size tree);
  Alcotest.(check int) "two forks" 2 tree.Tree.forks;
  let all_halted =
    Hashtbl.fold
      (fun _ n acc -> acc && n.Tree.n_status = "halted")
      tree.Tree.nodes true
  in
  Alcotest.(check bool) "all paths halted" true all_halted;
  Alcotest.(check bool) "tree has depth" true (Tree.depth_below tree tree.Tree.root >= 2)

let test_zero_register () =
  let s = dummy_state 0 in
  State.set_reg s S2e_isa.Insn.reg_zero (Expr.const 99L);
  Alcotest.(check bool) "zr stays zero" true
    (Expr.to_const (State.get_reg s S2e_isa.Insn.reg_zero) = Some 0L)

let tests =
  [
    Alcotest.test_case "symmem base read" `Quick test_symmem_base_read;
    Alcotest.test_case "symmem persistent overlay" `Quick test_symmem_overlay;
    Alcotest.test_case "symmem word roundtrip" `Quick test_symmem_word_roundtrip;
    QCheck_alcotest.to_alcotest prop_symmem_read_after_write;
    QCheck_alcotest.to_alcotest prop_symmem_disjoint_writes;
    Alcotest.test_case "symmem symbolic pointer read" `Quick test_symmem_symbolic_read;
    Alcotest.test_case "symmem fault" `Quick test_symmem_fault;
    Alcotest.test_case "searcher dfs" `Quick test_searcher_dfs_lifo;
    Alcotest.test_case "searcher bfs" `Quick test_searcher_bfs_fifo;
    Alcotest.test_case "searcher skips dead" `Quick test_searcher_skips_dead;
    Alcotest.test_case "searcher scored" `Quick test_searcher_scored;
    Alcotest.test_case "searcher of_name selectors" `Quick test_searcher_of_name;
    Alcotest.test_case "module map" `Quick test_module_map;
    Alcotest.test_case "dbt cache, marks, smc invalidation" `Quick
      test_dbt_cache_and_marks;
    Alcotest.test_case "consistency taxonomy (Table 1)" `Quick test_consistency_table;
    Alcotest.test_case "state fork isolation" `Quick test_state_fork_isolation;
    Alcotest.test_case "execution tree" `Quick test_execution_tree;
    Alcotest.test_case "zero register" `Quick test_zero_register;
  ]
