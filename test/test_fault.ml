(* lib/fault tests: plan grammar, deterministic streams, fire caps, the
   guest-hardware injection hooks, the solver wall-clock watchdog, and
   the engine's graceful degradation on Unknown (follow-the-concrete).

   The injector is process-global state; every test that arms a plan
   disarms it in Fun.protect so a failure cannot leak faults into later
   suites. *)

open S2e_core
open S2e_expr
open S2e_solver
module Fault = S2e_fault.Fault
module Devices = S2e_vm.Devices
module Layout = S2e_vm.Layout

let with_plan ?seed plan f =
  Fault.install ?seed plan;
  Fun.protect ~finally:Fault.disarm f

let parse_ok s =
  match Fault.parse_plan s with
  | Ok p -> p
  | Error msg -> Alcotest.failf "parse_plan %S: %s" s msg

(* ------------------------------------------------------------------ *)
(* Plan grammar                                                        *)
(* ------------------------------------------------------------------ *)

let test_parse_plan () =
  let plan =
    parse_ok "dev.read=err:0.05,dma=drop:0.01,solver=unknown:0.02,proto=corrupt:0.03"
  in
  Alcotest.(check int) "four rules" 4 (List.length plan);
  Alcotest.(check bool) "sites in order" true
    (List.map (fun r -> r.Fault.r_site) plan
    = [ Fault.Dev_read; Fault.Dma_drop; Fault.Solver_unknown; Fault.Proto_corrupt ]);
  Alcotest.(check bool) "no caps" true
    (List.for_all (fun r -> r.Fault.r_cap = None) plan);
  (* caps, every remaining site, and whitespace-free canonical form *)
  let plan2 =
    parse_ok "irq=spurious:1.0#3,solver=latency:0.5,proto=delay:1"
  in
  Alcotest.(check bool) "cap parsed" true
    ((List.hd plan2).Fault.r_cap = Some 3);
  (* the cluster-chaos kinds added with the TCP transport *)
  let plan3 = parse_ok "proto=disconnect:0.05,proto=stall:0.01#2" in
  Alcotest.(check bool) "disconnect and stall sites" true
    (List.map (fun r -> r.Fault.r_site) plan3
    = [ Fault.Proto_disconnect; Fault.Proto_stall ]);
  Alcotest.(check bool) "disconnect/stall roundtrip" true
    (parse_ok (Fault.plan_to_string plan3) = plan3);
  Alcotest.(check int) "empty plan" 0 (List.length (parse_ok ""));
  (* canonical text form roundtrips *)
  let p = parse_ok "dev.read=err:0.25#7,proto=corrupt:0.5" in
  Alcotest.(check bool) "roundtrip" true
    (parse_ok (Fault.plan_to_string p) = p)

let test_parse_errors () =
  let bad s =
    match Fault.parse_plan s with
    | Ok _ -> Alcotest.failf "parse_plan %S: expected error" s
    | Error _ -> ()
  in
  bad "bogus=err:0.5";           (* unknown site *)
  bad "dev.read=drop:0.5";       (* kind does not belong to the site *)
  bad "dev.read=err:1.5";        (* probability out of range *)
  bad "dev.read=err:-0.1";
  bad "dev.read=err:zap";        (* unparsable probability *)
  bad "dev.read=err:0.5#0";      (* cap must be positive *)
  bad "dev.read=err:0.5#x";
  bad "dev.read";                (* missing kind/prob *)
  (* empty segments (trailing commas) are tolerated, not errors *)
  Alcotest.(check int) "trailing comma tolerated" 1
    (List.length (parse_ok "dev.read=err:0.5,"))

(* ------------------------------------------------------------------ *)
(* Determinism, frequency, caps                                        *)
(* ------------------------------------------------------------------ *)

let draws n =
  List.init n (fun _ -> Fault.(fire Dev_read))

let test_deterministic_streams () =
  let plan = parse_ok "dev.read=err:0.5" in
  let a = with_plan ~seed:42 plan (fun () -> draws 200) in
  let b = with_plan ~seed:42 plan (fun () -> draws 200) in
  Alcotest.(check bool) "same seed, same fault sequence" true (a = b);
  let c = with_plan ~seed:43 plan (fun () -> draws 200) in
  Alcotest.(check bool) "different seed, different sequence" true (a <> c);
  (* The stream behaves like a fair-ish coin: 200 draws at p=0.5 land
     well inside [60, 140] unless the generator is broken. *)
  let fired = List.length (List.filter Fun.id a) in
  Alcotest.(check bool) "frequency plausible" true (fired > 60 && fired < 140);
  (* A rule for one site never perturbs another site's stream. *)
  let mixed =
    with_plan ~seed:42 (parse_ok "dev.read=err:0.5,proto=corrupt:0.9")
      (fun () ->
        List.init 200 (fun i ->
            if i mod 2 = 0 then ignore Fault.(fire Proto_corrupt);
            Fault.(fire Dev_read)))
  in
  Alcotest.(check bool) "independent per-site streams" true (a = mixed)

let test_cap_is_exact () =
  with_plan (parse_ok "dev.read=err:1.0#3") (fun () ->
      let fired = List.length (List.filter Fun.id (draws 10)) in
      Alcotest.(check int) "fires exactly cap times" 3 fired;
      Alcotest.(check int) "count reports the cap" 3 (Fault.count Fault.Dev_read);
      Alcotest.(check bool) "counts lists the site" true
        (List.mem_assoc "dev.read" (Fault.counts ()));
      Alcotest.(check int) "total sums sites" 3 (Fault.total ()))

let test_disarmed_is_silent () =
  Fault.disarm ();
  Alcotest.(check bool) "not armed" false (Fault.armed ());
  Alcotest.(check bool) "never fires" true
    (not (List.exists Fun.id (draws 50)))

(* ------------------------------------------------------------------ *)
(* Guest-hardware hooks                                                *)
(* ------------------------------------------------------------------ *)

let test_device_read_error () =
  let d = Devices.create () in
  let status () = Devices.read_port d (Layout.port_netdev + 0) in
  let clean = status () in
  Alcotest.(check bool) "clean read is not the poison value" true
    (clean <> Devices.read_error_code);
  with_plan (parse_ok "dev.read=err:1.0") (fun () ->
      Alcotest.(check int) "faulted read returns the error code"
        Devices.read_error_code (status ()));
  Alcotest.(check int) "disarmed read is clean again" clean (status ())

let test_dma_drop () =
  let dma_actions d =
    ignore (S2e_vm.Netdev.inject_frame d.Devices.netdev (Array.make 8 0xAB));
    ignore (Devices.write_port d (Layout.port_netdev + 6) 0x4000); (* DMA_ADDR *)
    ignore (Devices.write_port d (Layout.port_netdev + 7) 8);      (* DMA_LEN *)
    Devices.write_port d (Layout.port_netdev + 1) 5                (* CMD: dma rx *)
  in
  let is_dma = function S2e_vm.Device.Dma_write _ -> true | _ -> false in
  Alcotest.(check bool) "clean DMA command yields the completion" true
    (List.exists is_dma (dma_actions (Devices.create ())));
  with_plan (parse_ok "dma=drop:1.0") (fun () ->
      Alcotest.(check bool) "dropped completion never reaches memory" false
        (List.exists is_dma (dma_actions (Devices.create ())));
      Alcotest.(check bool) "drop was counted" true
        (Fault.count Fault.Dma_drop >= 1))

let test_spurious_irq () =
  let d = Devices.create () in
  Alcotest.(check bool) "quiet tick raises nothing" true (Devices.tick d 1 = []);
  with_plan (parse_ok "irq=spurious:1.0") (fun () ->
      Alcotest.(check bool) "spurious timer irq raised" true
        (List.mem Layout.irq_timer (Devices.tick d 1)))

(* ------------------------------------------------------------------ *)
(* Solver watchdog and forced Unknown                                  *)
(* ------------------------------------------------------------------ *)

(* A query that must reach the SAT core: fresh context (cold caches) and
   a constraint evaluation cannot discharge. *)
let hard_query () =
  let x = Expr.fresh_var ~width:32 "wd" in
  Expr.eq (Expr.mul x x) (Expr.const 1369L)

let test_sat_deadline () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ Sat.pos a; Sat.pos b ];
  Sat.add_clause s [ Sat.neg a ];
  (match Sat.solve ~deadline:(Unix.gettimeofday () -. 1.) s with
  | Sat.Unknown -> ()
  | _ -> Alcotest.fail "expired deadline must yield Unknown");
  match Sat.solve ~deadline:(Unix.gettimeofday () +. 60.) s with
  | Sat.Sat -> ()
  | _ -> Alcotest.fail "generous deadline must still solve"

let test_solver_timeout_unknown () =
  let q = hard_query () in
  let ctx = Solver.create_ctx ~timeout_ms:0.0001 () in
  (match Solver.check ~ctx [ q ] with
  | Solver.Unknown -> ()
  | _ -> Alcotest.fail "micro timeout must yield Unknown");
  Alcotest.(check int) "unknown counted in ctx stats" 1
    ctx.Solver.ctx_stats.Solver.unknowns;
  let q2 = hard_query () in
  let ctx2 = Solver.create_ctx ~timeout_ms:60_000. () in
  match Solver.check ~ctx:ctx2 [ q2 ] with
  | Solver.Sat m ->
      Alcotest.(check int64) "model satisfies the query" 1L (Expr.eval m q2)
  | _ -> Alcotest.fail "generous watchdog must still solve"

let test_injected_unknown_counted () =
  with_plan (parse_ok "solver=unknown:1.0") (fun () ->
      let ctx = Solver.create_ctx () in
      (match Solver.check ~ctx [ hard_query () ] with
      | Solver.Unknown -> ()
      | _ -> Alcotest.fail "injected fault must force Unknown");
      Alcotest.(check bool) "unknowns visible in stats, not silent Unsat" true
        (ctx.Solver.ctx_stats.Solver.unknowns >= 1);
      Alcotest.(check bool) "injection counted" true
        (Fault.count Fault.Solver_unknown >= 1))

(* ------------------------------------------------------------------ *)
(* Graceful degradation (follow-the-concrete)                          *)
(* ------------------------------------------------------------------ *)

let explore_with ?timeout_ms () =
  let eng = Test_dist.make_engine_for Test_dist.workload_32 () in
  eng.Executor.solver <- Solver.create_ctx ?timeout_ms ();
  let completed = ref [] in
  Events.reg_state_end eng.Executor.events (fun s -> completed := s :: !completed);
  let s0 = Executor.boot eng ~entry:0x1000 () in
  ignore
    (Executor.run
       ~limits:
         {
           Executor.max_instructions = None;
           max_seconds = Some 60.;
           max_completed = None;
         }
       eng s0);
  (eng, List.rev !completed)

let case_set states =
  List.map
    (fun (s : State.t) -> Parallel.test_case_to_string (Parallel.test_case s))
    states
  |> List.sort compare

let test_tiny_timeout_degrades () =
  (* A watchdog so tight every SAT call expires: the engine must not
     crash or wedge — it follows the concrete branch, marks paths
     incomplete, and terminates. *)
  let eng, completed = explore_with ~timeout_ms:0.0001 () in
  Alcotest.(check bool) "run terminated with completed paths" true
    (completed <> []);
  Alcotest.(check int) "no live states left" 0 (List.length eng.Executor.live);
  Alcotest.(check bool) "at least one path marked incomplete" true
    (List.exists (fun (s : State.t) -> s.State.incomplete) completed);
  Alcotest.(check bool) "degradations counted" true
    (eng.Executor.stats.Executor.degradations >= 1);
  Alcotest.(check bool) "incomplete visible in the report string" true
    (List.exists
       (fun (s : State.t) ->
         let r = State.report_string s in
         String.length r >= 12
         && String.sub r (String.length r - 12) 12 = "[incomplete]")
       completed)

let with_mode mode f =
  let saved = !Solver.default_mode in
  Solver.set_default_mode mode;
  Fun.protect ~finally:(fun () -> Solver.set_default_mode saved) f

let test_chaos_differential_incremental_vs_fresh () =
  (* Under an armed injected-unknown plan, the incremental solver must
     degrade exactly as fresh per-query solving does.  Injection fires
     per canonical query before any mode dispatch or cache lookup, so
     the seeded stream hits the same queries in both modes: same
     [incomplete] markers, same final case set, same injection count. *)
  let run mode =
    with_mode mode (fun () ->
        let completed, fired =
          with_plan ~seed:11 (parse_ok "solver=unknown:0.05") (fun () ->
              let _, completed = explore_with () in
              (completed, Fault.count Fault.Solver_unknown))
        in
        (* Cases solved after disarm: the witness models are computed on
           a clean solver either way. *)
        let cases =
          List.map
            (fun (s : State.t) ->
              State.report_string s ^ " | "
              ^ Parallel.test_case_to_string (Parallel.test_case s))
            completed
          |> List.sort compare
        in
        (cases, fired))
  in
  let fresh_cases, fresh_fired = run Solver.Fresh in
  let inc_cases, inc_fired = run Solver.Incremental in
  Alcotest.(check bool) "plan actually fired" true (fresh_fired > 0);
  Alcotest.(check int) "identical injection count" fresh_fired inc_fired;
  Alcotest.(check bool) "some path degraded to [incomplete]" true
    (List.exists
       (fun line ->
         let tag = "[incomplete]" in
         let n = String.length tag in
         let rec has i =
           i + n <= String.length line
           && (String.sub line i n = tag || has (i + 1))
         in
         has 0)
       fresh_cases);
  Alcotest.(check (list string))
    "incremental degrades identically to fresh" fresh_cases inc_cases

let test_no_deadline_identical_to_seed () =
  (* Resilience machinery off: the path set must be byte-identical to a
     run that predates it, and a generous watchdog must change nothing. *)
  let _, baseline = explore_with () in
  let _, generous = explore_with ~timeout_ms:600_000. () in
  Alcotest.(check int) "32 paths" 32 (List.length baseline);
  Alcotest.(check (list string))
    "generous watchdog explores the identical case set" (case_set baseline)
    (case_set generous);
  Alcotest.(check bool) "no path marked incomplete" true
    (List.for_all (fun (s : State.t) -> not s.State.incomplete) baseline)

let tests =
  [
    Alcotest.test_case "fault plan grammar" `Quick test_parse_plan;
    Alcotest.test_case "fault plan rejects malformed rules" `Quick
      test_parse_errors;
    Alcotest.test_case "seeded streams are deterministic" `Quick
      test_deterministic_streams;
    Alcotest.test_case "fire cap is exact" `Quick test_cap_is_exact;
    Alcotest.test_case "disarmed injector is silent" `Quick
      test_disarmed_is_silent;
    Alcotest.test_case "device read error injection" `Quick
      test_device_read_error;
    Alcotest.test_case "DMA completion drop" `Quick test_dma_drop;
    Alcotest.test_case "spurious IRQ injection" `Quick test_spurious_irq;
    Alcotest.test_case "SAT core honors the deadline" `Quick test_sat_deadline;
    Alcotest.test_case "solver watchdog yields counted Unknown" `Quick
      test_solver_timeout_unknown;
    Alcotest.test_case "injected Unknown is counted, not silent Unsat" `Quick
      test_injected_unknown_counted;
    Alcotest.test_case "tiny solver timeout degrades, never crashes" `Quick
      test_tiny_timeout_degrades;
    Alcotest.test_case "chaos differential: incremental degrades like fresh"
      `Quick test_chaos_differential_incremental_vs_fresh;
    Alcotest.test_case "no deadline is byte-identical to seed behavior" `Quick
      test_no_deadline_identical_to_seed;
  ]
