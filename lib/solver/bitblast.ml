(** Tseitin bit-blasting of {!S2e_expr.Expr} bitvector expressions to CNF.

    Each bitvector expression is lowered to a vector of SAT literals, one
    per bit (index 0 = least-significant).  Gates allocate fresh SAT
    variables and emit their defining clauses into the underlying
    {!Sat.t} instance. *)

open S2e_expr

(* The per-query memo keeps structural semantics (so a query mixing
   same-shape expressions of different provenance — a stolen state's
   constraints next to locally built ones — still blasts each shape
   once, which keeps the CNF and hence the found model a pure function
   of the constraint structure), but both hashing and equality are O(1)
   in the interned common case: the cached node hash replaces the
   tree-walking polymorphic [Hashtbl.hash], and [Expr.equal] starts
   with a pointer comparison. *)
module Expr_tbl = Hashtbl.Make (struct
  type t = Expr.t

  let hash e = Expr.hash e land max_int
  let equal = Expr.equal
end)

type ctx = {
  sat : Sat.t;
  true_lit : Sat.lit;
  false_lit : Sat.lit;
  (* Expression variable id -> per-bit SAT literals. *)
  var_bits : (int, Sat.lit array) Hashtbl.t;
  (* Memoization of already-blasted sub-expressions (structural). *)
  cache : Sat.lit array Expr_tbl.t;
  (* Remember variable widths so models can be extracted. *)
  var_width : (int, int) Hashtbl.t;
}

let create sat =
  let t = Sat.new_var sat in
  Sat.add_clause sat [ Sat.pos t ];
  {
    sat;
    true_lit = Sat.pos t;
    false_lit = Sat.neg t;
    var_bits = Hashtbl.create 64;
    cache = Expr_tbl.create 256;
    var_width = Hashtbl.create 64;
  }

let lit_of_bool ctx b = if b then ctx.true_lit else ctx.false_lit

let fresh ctx = Sat.pos (Sat.new_var ctx.sat)

(* --- gates ----------------------------------------------------------- *)

let gate_and ctx a b =
  if a = ctx.false_lit || b = ctx.false_lit then ctx.false_lit
  else if a = ctx.true_lit then b
  else if b = ctx.true_lit then a
  else if a = b then a
  else if a = Sat.lit_neg b then ctx.false_lit
  else begin
    let o = fresh ctx in
    Sat.add_clause ctx.sat [ Sat.lit_neg o; a ];
    Sat.add_clause ctx.sat [ Sat.lit_neg o; b ];
    Sat.add_clause ctx.sat [ o; Sat.lit_neg a; Sat.lit_neg b ];
    o
  end

let gate_or ctx a b = Sat.lit_neg (gate_and ctx (Sat.lit_neg a) (Sat.lit_neg b))

let gate_xor ctx a b =
  if a = ctx.false_lit then b
  else if b = ctx.false_lit then a
  else if a = ctx.true_lit then Sat.lit_neg b
  else if b = ctx.true_lit then Sat.lit_neg a
  else if a = b then ctx.false_lit
  else if a = Sat.lit_neg b then ctx.true_lit
  else begin
    let o = fresh ctx in
    Sat.add_clause ctx.sat [ Sat.lit_neg o; a; b ];
    Sat.add_clause ctx.sat [ Sat.lit_neg o; Sat.lit_neg a; Sat.lit_neg b ];
    Sat.add_clause ctx.sat [ o; Sat.lit_neg a; b ];
    Sat.add_clause ctx.sat [ o; a; Sat.lit_neg b ];
    o
  end

(* o = if c then a else b *)
let gate_ite ctx c a b =
  if c = ctx.true_lit then a
  else if c = ctx.false_lit then b
  else if a = b then a
  else begin
    let o = fresh ctx in
    Sat.add_clause ctx.sat [ Sat.lit_neg o; Sat.lit_neg c; a ];
    Sat.add_clause ctx.sat [ Sat.lit_neg o; c; b ];
    Sat.add_clause ctx.sat [ o; Sat.lit_neg c; Sat.lit_neg a ];
    Sat.add_clause ctx.sat [ o; c; Sat.lit_neg b ];
    o
  end

let gate_maj ctx a b c =
  gate_or ctx (gate_and ctx a b) (gate_or ctx (gate_and ctx a c) (gate_and ctx b c))

(* --- arithmetic circuits --------------------------------------------- *)

let adder ctx ?(carry_in = None) a b =
  let w = Array.length a in
  let out = Array.make w ctx.false_lit in
  let carry = ref (match carry_in with Some c -> c | None -> ctx.false_lit) in
  for i = 0 to w - 1 do
    let s = gate_xor ctx (gate_xor ctx a.(i) b.(i)) !carry in
    let c = gate_maj ctx a.(i) b.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  (out, !carry)

let negate_bits a = Array.map Sat.lit_neg a

let subtractor ctx a b =
  (* a - b = a + ~b + 1; final carry = 1 iff no borrow (a >= b unsigned). *)
  adder ctx ~carry_in:(Some ctx.true_lit) a (negate_bits b)

let mux_vec ctx c a b = Array.init (Array.length a) (fun i -> gate_ite ctx c a.(i) b.(i))

let const_bits ctx w v =
  Array.init w (fun i ->
      lit_of_bool ctx (Int64.logand (Int64.shift_right_logical v i) 1L = 1L))

let multiplier ctx a b =
  let w = Array.length a in
  let acc = ref (const_bits ctx w 0L) in
  for i = 0 to w - 1 do
    (* partial product: (a << i) masked by b.(i) *)
    let shifted =
      Array.init w (fun j -> if j < i then ctx.false_lit else a.(j - i))
    in
    let masked = Array.map (fun l -> gate_and ctx b.(i) l) shifted in
    let sum, _ = adder ctx !acc masked in
    acc := sum
  done;
  !acc

(* Restoring division: computes quotient and remainder.  With b = 0 this
   naturally yields q = all-ones and r = a, matching the SMT-LIB semantics
   used by {!Expr.eval_binop}. *)
let divider ctx a b =
  let w = Array.length a in
  (* Remainder register is w+1 bits to hold the shifted-in bit safely. *)
  let bw = Array.append b [| ctx.false_lit |] in
  let r = ref (const_bits ctx (w + 1) 0L) in
  let q = Array.make w ctx.false_lit in
  for i = w - 1 downto 0 do
    (* r = (r << 1) | a_i *)
    let shifted = Array.init (w + 1) (fun j -> if j = 0 then a.(i) else !r.(j - 1)) in
    let diff, no_borrow = subtractor ctx shifted bw in
    q.(i) <- no_borrow;
    r := mux_vec ctx no_borrow diff shifted
  done;
  (q, Array.sub !r 0 w)

let barrel_shift ctx dir a amount =
  (* [amount] is taken modulo the width (widths are powers of two). *)
  let w = Array.length a in
  let stages = int_of_float (ceil (log (float_of_int w) /. log 2.)) in
  let res = ref a in
  for s = 0 to stages - 1 do
    let k = 1 lsl s in
    let ctrl = amount.(s) in
    let shifted =
      match dir with
      | `Left -> Array.init w (fun i -> if i < k then ctx.false_lit else !res.(i - k))
      | `Lshr -> Array.init w (fun i -> if i + k >= w then ctx.false_lit else !res.(i + k))
      | `Ashr ->
          let sign = a.(w - 1) in
          Array.init w (fun i -> if i + k >= w then sign else !res.(i + k))
    in
    res := mux_vec ctx ctrl shifted !res
  done;
  !res

let eq_bits ctx a b =
  let w = Array.length a in
  let acc = ref ctx.true_lit in
  for i = 0 to w - 1 do
    acc := gate_and ctx !acc (Sat.lit_neg (gate_xor ctx a.(i) b.(i)))
  done;
  !acc

let ult_bits ctx a b =
  (* a < b unsigned iff subtraction a - b borrows. *)
  let _, no_borrow = subtractor ctx a b in
  Sat.lit_neg no_borrow

let slt_bits ctx a b =
  let w = Array.length a in
  let sa = a.(w - 1) and sb = b.(w - 1) in
  (* signs differ: a < b iff a negative; same sign: unsigned compare. *)
  gate_ite ctx (gate_xor ctx sa sb) sa (ult_bits ctx a b)

(* --- expression lowering --------------------------------------------- *)

let rec blast ctx (e : Expr.t) : Sat.lit array =
  match Expr_tbl.find_opt ctx.cache e with
  | Some bits -> bits
  | None ->
      let bits = blast_uncached ctx e in
      Expr_tbl.replace ctx.cache e bits;
      bits

and blast_uncached ctx e =
  let w = Expr.width e in
  match e with
  | Const { value; _ } -> const_bits ctx w value
  | Var { id; width; _ } -> (
      match Hashtbl.find_opt ctx.var_bits id with
      | Some bits -> bits
      | None ->
          let bits = Array.init width (fun _ -> fresh ctx) in
          Hashtbl.replace ctx.var_bits id bits;
          Hashtbl.replace ctx.var_width id width;
          bits)
  | Unop { op = Bnot; arg; _ } -> negate_bits (blast ctx arg)
  | Unop { op = Neg; arg; _ } ->
      let a = negate_bits (blast ctx arg) in
      let one = const_bits ctx w 1L in
      fst (adder ctx a one)
  | Binop { op; lhs; rhs; _ } -> (
      let a = blast ctx lhs and b = blast ctx rhs in
      match op with
      | Add -> fst (adder ctx a b)
      | Sub -> fst (subtractor ctx a b)
      | Mul -> multiplier ctx a b
      | Udiv -> fst (divider ctx a b)
      | Urem -> snd (divider ctx a b)
      | And -> Array.init w (fun i -> gate_and ctx a.(i) b.(i))
      | Or -> Array.init w (fun i -> gate_or ctx a.(i) b.(i))
      | Xor -> Array.init w (fun i -> gate_xor ctx a.(i) b.(i))
      | Shl -> barrel_shift ctx `Left a b
      | Lshr -> barrel_shift ctx `Lshr a b
      | Ashr -> barrel_shift ctx `Ashr a b)
  | Cmp { op; lhs; rhs; _ } -> (
      let a = blast ctx lhs and b = blast ctx rhs in
      match op with
      | Eq -> [| eq_bits ctx a b |]
      | Ult -> [| ult_bits ctx a b |]
      | Ule -> [| Sat.lit_neg (ult_bits ctx b a) |]
      | Slt -> [| slt_bits ctx a b |]
      | Sle -> [| Sat.lit_neg (slt_bits ctx b a) |])
  | Ite { cond; then_; else_; _ } ->
      let c = (blast ctx cond).(0) in
      mux_vec ctx c (blast ctx then_) (blast ctx else_)
  | Extract { hi = _; lo; arg; _ } ->
      let a = blast ctx arg in
      Array.sub a lo w
  | Concat { high; low; _ } -> Array.append (blast ctx low) (blast ctx high)
  | Zext { arg; _ } ->
      let a = blast ctx arg in
      Array.init w (fun i -> if i < Array.length a then a.(i) else ctx.false_lit)
  | Sext { arg; _ } ->
      let a = blast ctx arg in
      let aw = Array.length a in
      Array.init w (fun i -> if i < aw then a.(i) else a.(aw - 1))

(** Assert a width-1 expression to be true. *)
let assert_true ctx e =
  assert (Expr.width e = 1);
  let bits = blast ctx e in
  Sat.add_clause ctx.sat [ bits.(0) ]

(** The SAT literal equivalent to a width-1 expression: the Tseitin
    encoding is (re)used from the per-context persistent CNF map, so the
    same interned node yields the same literal for the context's lifetime.
    Asserting the literal as a {!Sat.assume} probe instead of a unit
    clause is what makes constraints retractable. *)
let literal ctx e =
  assert (Expr.width e = 1);
  (blast ctx e).(0)

(** Whether [e] has already been lowered on this context — O(1) via the
    interned hash.  The solver's instance ring uses this to judge whether
    recycling a live instance would actually reuse encodings. *)
let cached ctx e = Expr_tbl.mem ctx.cache e

(** Extract a model for all blasted expression variables after a
    satisfiable {!Sat.solve}. *)
let model ctx : Expr.model =
  Hashtbl.fold
    (fun id bits acc ->
      let v = ref 0L in
      Array.iteri
        (fun i l ->
          if Sat.model_value ctx.sat (Sat.lit_var l) = Sat.lit_sign l then
            v := Int64.logor !v (Int64.shift_left 1L i))
        bits;
      Expr.Int_map.add id !v acc)
    ctx.var_bits Expr.Int_map.empty
