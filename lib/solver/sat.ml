(** A CDCL SAT solver (two-watched-literal propagation, first-UIP clause
    learning, VSIDS-style activities, geometric restarts) with an
    incremental assumption-stack interface.

    Variables are integers starting at 0.  A literal is [2*v] for the
    positive and [2*v+1] for the negative polarity.  This is the backend the
    bit-blaster ({!Bitblast}) targets; it plays the role STP's SAT core plays
    in the paper's prototype.

    Incremental use: clauses added with {!add_clause} are permanent, but
    literals asserted through the assumption stack ({!push}/{!assume}/
    {!pop}) are retractable — {!solve} decides them as the first decision
    levels of the search, MiniSat-style, so popping a frame is O(1) and
    never deletes a clause.  Because every learned clause is derived by
    resolution from the permanent clause set alone (assumptions enter
    learned clauses as ordinary literals, never as resolved-away premises),
    all learned clauses remain valid across pops: retention is level-0-safe
    by construction.  Growth is bounded by an activity-ordered learned-
    clause database with geometric reduction. *)

type lit = int

let pos v : lit = v * 2
let neg v : lit = (v * 2) + 1
let lit_var (l : lit) = l / 2
let lit_neg (l : lit) = l lxor 1
let lit_sign (l : lit) = l land 1 = 0 (* true when positive *)

type clause = {
  mutable lits : lit array;
  mutable learned : bool;
  mutable act : float; (* clause activity, learned clauses only *)
}

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learned : int; (* learned clauses ever created (excluding learned units) *)
  learned_kept : int; (* learned clauses currently live (post-reduction) *)
}

type t = {
  mutable nvars : int;
  mutable clauses : clause array;
  mutable nclauses : int;
  (* watches.(l) = indices of clauses watching literal l *)
  mutable watches : int list array;
  (* assignment: 0 = unassigned, 1 = true, 2 = false *)
  mutable assign : Bytes.t;
  mutable level : int array;
  mutable reason : int array; (* clause index or -1 *)
  mutable trail : int array;  (* literals, in assignment order *)
  mutable trail_len : int;
  mutable trail_lim : int array; (* trail length at each decision level *)
  mutable trail_lim_len : int;
  mutable qhead : int;
  mutable activity : float array;
  mutable var_inc : float;
  mutable polarity : Bytes.t; (* saved phase: 1 = last true *)
  (* Assumption stack: retractable asserted literals, oldest first.
     [frame_lim] holds the assumption count at each {!push}. *)
  mutable assumptions : lit array;
  mutable n_assumptions : int;
  mutable frame_lim : int array;
  mutable n_frames : int;
  (* Learned-clause database bound: when the live learned count passes
     [learn_limit], the lowest-activity half is dropped and the limit
     grows geometrically. *)
  mutable cla_inc : float;
  mutable learn_limit : int;
  mutable n_learned_live : int;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learned_total : int;
  mutable unsat : bool;
}

let create () =
  {
    nvars = 0;
    clauses = Array.make 64 { lits = [||]; learned = false; act = 0. };
    nclauses = 0;
    watches = Array.make 16 [];
    assign = Bytes.make 8 '\000';
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    trail = Array.make 8 0;
    trail_len = 0;
    trail_lim = Array.make 8 0;
    trail_lim_len = 0;
    qhead = 0;
    activity = Array.make 8 0.0;
    var_inc = 1.0;
    polarity = Bytes.make 8 '\000';
    assumptions = Array.make 8 0;
    n_assumptions = 0;
    frame_lim = Array.make 8 0;
    n_frames = 0;
    cla_inc = 1.0;
    learn_limit = 2000;
    n_learned_live = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learned_total = 0;
    unsat = false;
  }

let grow_array a n default =
  if Array.length a >= n then a
  else begin
    let a' = Array.make (max n (2 * Array.length a)) default in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

let grow_bytes b n =
  if Bytes.length b >= n then b
  else begin
    let b' = Bytes.make (max n (2 * Bytes.length b)) '\000' in
    Bytes.blit b 0 b' 0 (Bytes.length b);
    b'
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assign <- grow_bytes s.assign s.nvars;
  s.polarity <- grow_bytes s.polarity s.nvars;
  s.level <- grow_array s.level s.nvars 0;
  s.reason <- grow_array s.reason s.nvars (-1);
  s.trail <- grow_array s.trail s.nvars 0;
  s.activity <- grow_array s.activity s.nvars 0.0;
  s.watches <- grow_array s.watches (2 * s.nvars) [];
  v

(* Value of a literal: 0 unassigned, 1 true, 2 false. *)
let lit_value s (l : lit) =
  let v = Char.code (Bytes.get s.assign (lit_var l)) in
  if v = 0 then 0 else if lit_sign l then v else 3 - v

let decision_level s = s.trail_lim_len

let enqueue s (l : lit) reason =
  let v = lit_var l in
  Bytes.set s.assign v (Char.chr (if lit_sign l then 1 else 2));
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay s = s.var_inc <- s.var_inc /. 0.95

let cla_bump s ci =
  let c = s.clauses.(ci) in
  if c.learned then begin
    c.act <- c.act +. s.cla_inc;
    if c.act > 1e20 then begin
      for i = 0 to s.nclauses - 1 do
        let d = s.clauses.(i) in
        if d.learned then d.act <- d.act *. 1e-20
      done;
      s.cla_inc <- s.cla_inc *. 1e-20
    end
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

let backtrack s target_level =
  if decision_level s > target_level then begin
    let bound = s.trail_lim.(target_level) in
    for i = s.trail_len - 1 downto bound do
      let l = s.trail.(i) in
      let v = lit_var l in
      Bytes.set s.polarity v (if lit_sign l then '\001' else '\000');
      Bytes.set s.assign v '\000';
      s.reason.(v) <- -1
    done;
    s.trail_len <- bound;
    s.qhead <- bound;
    s.trail_lim_len <- target_level
  end

let add_clause_internal s lits learned =
  let c = { lits; learned; act = 0. } in
  if s.nclauses >= Array.length s.clauses then
    s.clauses <- grow_array s.clauses (s.nclauses + 1) c;
  s.clauses.(s.nclauses) <- c;
  let idx = s.nclauses in
  s.nclauses <- s.nclauses + 1;
  if learned then begin
    s.learned_total <- s.learned_total + 1;
    s.n_learned_live <- s.n_learned_live + 1
  end;
  if Array.length lits >= 2 then begin
    s.watches.(lits.(0)) <- idx :: s.watches.(lits.(0));
    s.watches.(lits.(1)) <- idx :: s.watches.(lits.(1))
  end;
  idx

(** Add a problem clause.  Performs top-level simplification: satisfied
    clauses are dropped, false literals removed.  The solver backtracks to
    decision level 0 first, so clauses can be added between incremental
    solves (any model from the previous solve must be read before). *)
let add_clause s lits =
  if not s.unsat then begin
    backtrack s 0;
    let lits =
      List.sort_uniq compare lits
      |> List.filter (fun l -> lit_value s l <> 2)
    in
    let tautology =
      List.exists (fun l -> List.mem (lit_neg l) lits) lits
      || List.exists (fun l -> lit_value s l = 1) lits
    in
    if not tautology then
      match lits with
      | [] -> s.unsat <- true
      | [ l ] -> if lit_value s l = 0 then enqueue s l (-1)
      | lits -> ignore (add_clause_internal s (Array.of_list lits) false)
  end

(* ------------------------------------------------------------------ *)
(* Assumption stack                                                    *)
(* ------------------------------------------------------------------ *)

(** Open a new assumption frame (a retractable checkpoint). *)
let push s =
  s.frame_lim <- grow_array s.frame_lim (s.n_frames + 1) 0;
  s.frame_lim.(s.n_frames) <- s.n_assumptions;
  s.n_frames <- s.n_frames + 1

(** Assert [l] within the current top frame: it holds in every subsequent
    {!solve} until the frame is popped. *)
let assume s l =
  s.assumptions <- grow_array s.assumptions (s.n_assumptions + 1) 0;
  s.assumptions.(s.n_assumptions) <- l;
  s.n_assumptions <- s.n_assumptions + 1

(** Retract the top assumption frame.  O(1): assumptions are search-time
    decisions, not clauses, so nothing is deleted — and every learned
    clause remains valid (it is implied by the permanent clause set). *)
let pop s =
  if s.n_frames = 0 then invalid_arg "Sat.pop: empty frame stack";
  s.n_frames <- s.n_frames - 1;
  s.n_assumptions <- s.frame_lim.(s.n_frames);
  (* Assumption-level assignments are stale now. *)
  backtrack s 0

let frames s = s.n_frames

(* ------------------------------------------------------------------ *)
(* Propagation, analysis, search                                       *)
(* ------------------------------------------------------------------ *)

(* Propagate all enqueued assignments.  Returns the index of a conflicting
   clause, or -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict = -1 && s.qhead < s.trail_len do
    let l = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let falsified = lit_neg l in
    let ws = s.watches.(falsified) in
    s.watches.(falsified) <- [];
    let rec go = function
      | [] -> ()
      | ci :: rest -> (
          let c = s.clauses.(ci) in
          let lits = c.lits in
          (* Ensure the falsified literal is at position 1. *)
          if lits.(0) = falsified then begin
            lits.(0) <- lits.(1);
            lits.(1) <- falsified
          end;
          if lit_value s lits.(0) = 1 then begin
            (* Clause already satisfied; keep the watch. *)
            s.watches.(falsified) <- ci :: s.watches.(falsified);
            go rest
          end
          else begin
            (* Look for a new watch. *)
            let n = Array.length lits in
            let rec find i =
              if i >= n then -1
              else if lit_value s lits.(i) <> 2 then i
              else find (i + 1)
            in
            let i = find 2 in
            if i >= 0 then begin
              lits.(1) <- lits.(i);
              lits.(i) <- falsified;
              s.watches.(lits.(1)) <- ci :: s.watches.(lits.(1));
              go rest
            end
            else begin
              s.watches.(falsified) <- ci :: s.watches.(falsified);
              if lit_value s lits.(0) = 2 then begin
                (* Conflict: restore remaining watches and stop. *)
                conflict := ci;
                List.iter
                  (fun cj ->
                    s.watches.(falsified) <- cj :: s.watches.(falsified))
                  rest
              end
              else begin
                enqueue s lits.(0) ci;
                go rest
              end
            end
          end)
    in
    go ws
  done;
  !conflict

(* First-UIP conflict analysis.  Returns (learned clause, backtrack level). *)
let analyze s conflict =
  let seen = Bytes.make s.nvars '\000' in
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let idx = ref (s.trail_len - 1) in
  let clause = ref conflict in
  let continue = ref true in
  while !continue do
    cla_bump s !clause;
    let lits = s.clauses.(!clause).lits in
    let start = if !p = -1 then 0 else 1 in
    for i = start to Array.length lits - 1 do
      let q = lits.(i) in
      let v = lit_var q in
      if Bytes.get seen v = '\000' && s.level.(v) > 0 then begin
        Bytes.set seen v '\001';
        bump s v;
        if s.level.(v) >= decision_level s then incr counter
        else learned := q :: !learned
      end
    done;
    (* Select next literal to expand: most recent seen literal on trail. *)
    let rec next () =
      let l = s.trail.(!idx) in
      decr idx;
      if Bytes.get seen (lit_var l) = '\001' then l else next ()
    in
    let l = next () in
    decr counter;
    if !counter = 0 then begin
      p := lit_neg l;
      continue := false
    end
    else begin
      clause := s.reason.(lit_var l);
      (* Put the resolved literal at front position convention. *)
      let lits = s.clauses.(!clause).lits in
      if lits.(0) <> l then begin
        let rec find i = if lits.(i) = l then i else find (i + 1) in
        let i = find 0 in
        lits.(i) <- lits.(0);
        lits.(0) <- l
      end
    end
  done;
  let learned = !p :: !learned in
  (* Backtrack level: second-highest level in the learned clause. *)
  let blevel =
    List.fold_left
      (fun acc l ->
        let v = lit_var l in
        if l <> !p && s.level.(v) > acc then s.level.(v) else acc)
      0 learned
  in
  (learned, blevel)

(* ------------------------------------------------------------------ *)
(* Learned-clause database reduction                                   *)
(* ------------------------------------------------------------------ *)

(* Is clause [ci] the reason of a current assignment?  The propagated
   literal sits at position 0 by the enqueue/analyze conventions. *)
let locked s ci =
  let lits = s.clauses.(ci).lits in
  Array.length lits > 0
  && lit_value s lits.(0) = 1
  && s.reason.(lit_var lits.(0)) = ci

(* Drop the lowest-activity half of the removable learned clauses
   (non-binary, not locked as a reason).  Must run at decision level 0.
   Clause indices shift, so watches are rebuilt and reasons remapped;
   [qhead] rewinds so the rebuilt watch lists re-establish the propagation
   invariant over the level-0 trail.  Deterministic: the survivor set is a
   pure function of the clause database (ties break on clause index). *)
let reduce_db s =
  let removable = ref [] in
  for ci = 0 to s.nclauses - 1 do
    let c = s.clauses.(ci) in
    if c.learned && Array.length c.lits > 2 && not (locked s ci) then
      removable := (c.act, ci) :: !removable
  done;
  let removable = Array.of_list !removable in
  Array.sort compare removable;
  let ndrop = Array.length removable / 2 in
  if ndrop > 0 then begin
    let drop = Bytes.make s.nclauses '\000' in
    for i = 0 to ndrop - 1 do
      Bytes.set drop (snd removable.(i)) '\001'
    done;
    let map = Array.make s.nclauses (-1) in
    let w = ref 0 in
    for ci = 0 to s.nclauses - 1 do
      if Bytes.get drop ci = '\000' then begin
        map.(ci) <- !w;
        s.clauses.(!w) <- s.clauses.(ci);
        incr w
      end
    done;
    s.nclauses <- !w;
    s.n_learned_live <- s.n_learned_live - ndrop;
    (* Rebuild the watch lists over the surviving clauses, preferring
       non-false watch positions so the two-watch invariant holds at
       level 0. *)
    Array.fill s.watches 0 (Array.length s.watches) [];
    for ci = 0 to s.nclauses - 1 do
      let lits = s.clauses.(ci).lits in
      if Array.length lits >= 2 then begin
        let n = Array.length lits in
        let swap i j =
          let t = lits.(i) in
          lits.(i) <- lits.(j);
          lits.(j) <- t
        in
        let best = ref 0 in
        for i = 1 to n - 1 do
          if lit_value s lits.(i) <> 2 && lit_value s lits.(!best) = 2 then
            best := i
        done;
        swap 0 !best;
        let best = ref 1 in
        for i = 2 to n - 1 do
          if lit_value s lits.(i) <> 2 && lit_value s lits.(!best) = 2 then
            best := i
        done;
        swap 1 !best;
        s.watches.(lits.(0)) <- ci :: s.watches.(lits.(0));
        s.watches.(lits.(1)) <- ci :: s.watches.(lits.(1))
      end
    done;
    (* Kept clauses changed index: remap the reasons of the (level-0)
       trail.  Locked clauses were kept, so the map is always defined. *)
    for i = 0 to s.trail_len - 1 do
      let v = lit_var s.trail.(i) in
      if s.reason.(v) >= 0 then s.reason.(v) <- map.(s.reason.(v))
    done;
    (* Re-run propagation over the whole trail against the new watches. *)
    s.qhead <- 0
  end;
  s.learn_limit <- s.learn_limit + (s.learn_limit / 5)

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

(* Pick the unassigned variable with the highest activity. *)
let pick_branch s =
  let best = ref (-1) in
  let best_act = ref (-1.0) in
  for v = 0 to s.nvars - 1 do
    if Bytes.get s.assign v = '\000' && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

type result = Sat | Unsat | Unknown

(* The search loop, parameterized by the literals assumed for this call:
   the persistent assumption stack followed by the caller's extra probes.
   Assumptions are decided in order as the first decision levels; a
   falsified assumption means Unsat under the current assumptions without
   poisoning the instance (s.unsat stays false).  With no assumptions this
   is the classic restart loop, bit-for-bit. *)
let solve_gen ?max_conflicts ?deadline s extra =
  if s.unsat then Unsat
  else if
    match deadline with Some d -> Unix.gettimeofday () >= d | None -> false
  then Unknown
  else begin
    backtrack s 0;
    let n_assumed = s.n_assumptions + List.length extra in
    let assumed i =
      if i < s.n_assumptions then s.assumptions.(i)
      else List.nth extra (i - s.n_assumptions)
    in
    let result = ref None in
    let restart_limit = ref 100 in
    let conflicts_here = ref 0 in
    let iters = ref 0 in
    while !result = None do
      (match deadline with
      | Some d ->
          incr iters;
          if !iters land 63 = 0 && Unix.gettimeofday () >= d then
            result := Some Unknown
      | None -> ());
      let conflict = propagate s in
      if conflict >= 0 then begin
        s.conflicts <- s.conflicts + 1;
        incr conflicts_here;
        (match max_conflicts with
        | Some m when s.conflicts > m -> result := Some Unknown
        | _ -> ());
        if decision_level s = 0 then begin
          s.unsat <- true;
          result := Some Unsat
        end
        else if !result = None then begin
          let learned, blevel = analyze s conflict in
          backtrack s blevel;
          decay s;
          cla_decay s;
          (match learned with
          | [ l ] -> enqueue s l (-1)
          | l :: _ ->
              let idx = add_clause_internal s (Array.of_list learned) true in
              enqueue s l idx
          | [] -> assert false);
          (* Conflict analysis may have backtracked into (or below) the
             assumption levels; the decision loop re-assumes from there.
             If the asserting literal now contradicts a pending
             assumption, the re-assume below detects it as Unsat. *)
          if s.n_learned_live >= s.learn_limit && decision_level s = 0 then
            reduce_db s
        end
      end
      else if decision_level s < n_assumed then begin
        (* Decide the next assumption. *)
        let l = assumed (decision_level s) in
        match lit_value s l with
        | 2 ->
            (* Falsified under the permanent clauses plus the assumptions
               already decided: unsatisfiable under assumptions only. *)
            result := Some Unsat
        | v ->
            s.trail_lim <- grow_array s.trail_lim (s.trail_lim_len + 1) 0;
            s.trail_lim.(s.trail_lim_len) <- s.trail_len;
            s.trail_lim_len <- s.trail_lim_len + 1;
            if v = 0 then enqueue s l (-1)
      end
      else if !conflicts_here > !restart_limit then begin
        conflicts_here := 0;
        restart_limit := !restart_limit * 3 / 2;
        s.restarts <- s.restarts + 1;
        backtrack s 0
      end
      else begin
        let v = pick_branch s in
        if v < 0 then result := Some Sat
        else begin
          s.decisions <- s.decisions + 1;
          s.trail_lim <- grow_array s.trail_lim (s.trail_lim_len + 1) 0;
          s.trail_lim.(s.trail_lim_len) <- s.trail_len;
          s.trail_lim_len <- s.trail_lim_len + 1;
          let phase = Bytes.get s.polarity v = '\001' in
          enqueue s (if phase then pos v else neg v) (-1)
        end
      end
    done;
    match !result with
    | Some Unsat when decision_level s > 0 || s.n_assumptions > 0 ->
        (* Unsat under assumptions: leave the instance reusable. *)
        backtrack s 0;
        Unsat
    | Some r -> r
    | None -> assert false
  end

(** Solve the permanent clause set under the stacked assumptions.  On [Sat]
    the model can be read with {!model_value}.  [max_conflicts] bounds the
    search ([None] = no bound); [deadline] is an absolute
    [Unix.gettimeofday] cutoff past which the search gives up with
    [Unknown] (checked on entry and every few dozen loop iterations, so
    even a tiny budget fires promptly). *)
let solve ?max_conflicts ?deadline s = solve_gen ?max_conflicts ?deadline s []

(** {!solve} with extra assumption literals for this call only — the
    incremental probe: the stacked frames stay asserted, [extra] is
    retracted automatically when the call returns. *)
let solve_assuming ?max_conflicts ?deadline s extra =
  solve_gen ?max_conflicts ?deadline s extra

(** Value of variable [v] in the model found by the last successful
    {!solve}.  Unassigned variables default to false. *)
let model_value s v =
  v < s.nvars && Bytes.get s.assign v = '\001'

(** Overwrite the saved phases from a seeded xorshift stream: gives
    portfolio instances distinct early search trajectories over the same
    clauses.  Deterministic in [seed]. *)
let perturb s seed =
  let x = ref (seed lor 1) in
  for v = 0 to s.nvars - 1 do
    x := !x lxor (!x lsl 13);
    x := !x lxor (!x lsr 7);
    x := !x lxor (!x lsl 17);
    Bytes.set s.polarity v (if !x land 1 = 1 then '\001' else '\000')
  done

(* Rough memory footprint proxy: callers retire instances that grow past
   their budget. *)
let size s = s.nclauses

let stats s =
  {
    conflicts = s.conflicts;
    decisions = s.decisions;
    propagations = s.propagations;
    restarts = s.restarts;
    learned = s.learned_total;
    learned_kept = s.n_learned_live;
  }
