(** High-level constraint solver used by the symbolic execution engine.

    Sits above {!Bitblast}/{!Sat} and adds the optimizations KLEE/STP give
    the S2E prototype: independent-constraint slicing (only the constraints
    sharing variables with the query are sent to the SAT core), a
    counterexample/model cache (recent models are re-tried by evaluation
    before any SAT call), an unsatisfiable-set cache, and statistics that
    the Fig. 9 benchmarks report (per-query time, total solver time, query
    counts).

    All mutable solver state — the two caches, the statistics and the
    conflict budget — lives in an explicit {!ctx} record so that parallel
    workers can each own a private solver context ({!S2e_core.Parallel}).
    The module-level [stats]/[model_cache]/[max_conflicts]/[reset_stats]
    bindings are thin views of {!default_ctx}, kept so single-threaded
    callers and the existing benchmarks compile unchanged. *)

open S2e_expr
module Obs = S2e_obs

type result = Sat of Expr.model | Unsat | Unknown

(* Process-wide telemetry (lib/obs).  [ctx_stats] stays the per-context
   view parallel workers aggregate; the registry is the merged live view
   the run-stats reporter streams.  Both are fed from the same sites, so
   they cannot drift. *)
let m_queries = Obs.Metrics.counter "solver.queries"
let m_sat_queries = Obs.Metrics.counter "solver.sat_queries"
let m_cache_hits = Obs.Metrics.counter "solver.cache_hits"
let m_unknowns = Obs.Metrics.counter "solver.unknowns"
let m_timeouts = Obs.Metrics.counter "solver.timeouts"

let m_query_hist =
  Obs.Metrics.histogram
    ~bounds:[| 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0 |]
    "solver.query_s"

let solver_phase = Obs.Span.phase "solver"

type stats = {
  mutable queries : int;
  mutable sat_queries : int; (* queries that reached the SAT core *)
  mutable cache_hits : int;
  mutable unknowns : int; (* queries answered Unknown (budget/deadline/fault) *)
  mutable total_time : float;
  mutable max_time : float;
  mutable prefix_reused : int;
      (* queries whose constraint prefix (assumption stack below the query
         condition) this context had already seen *)
  mutable prefix_reused_time : float;
}

(** One solver context: caches + statistics + budget.  Contexts are not
    thread-safe; each domain must use its own. *)
(* Recent models in a fixed-capacity ring, most recent first.  Evaluating
   a candidate model against the constraints is far cheaper than a SAT
   call and hits often because consecutive queries along a path share
   most constraints.  A ring keeps push O(1) with zero allocation, where
   the previous list rebuild copied all [model_cache_limit] cells per
   remembered model. *)
let model_cache_limit = 24

type model_ring = {
  slots : Expr.model array;
  mutable len : int;
  mutable head : int; (* index of the most recent entry; -1 when empty *)
}

let new_ring () =
  { slots = Array.make model_cache_limit Expr.Int_map.empty; len = 0; head = -1 }

let ring_push r m =
  r.head <- (r.head + 1) mod model_cache_limit;
  r.slots.(r.head) <- m;
  if r.len < model_cache_limit then r.len <- r.len + 1

let ring_clear r =
  Array.fill r.slots 0 model_cache_limit Expr.Int_map.empty;
  r.len <- 0;
  r.head <- -1

(* Most-recent-first scan, mirroring the old list's lookup order. *)
let ring_find r p =
  let cap = model_cache_limit in
  let rec go i =
    if i >= r.len then None
    else
      let m = r.slots.((r.head - i + cap) mod cap) in
      if p m then Some m else go (i + 1)
  in
  go 0

let ring_to_list r =
  let cap = model_cache_limit in
  List.init r.len (fun i -> r.slots.((r.head - i + cap) mod cap))

type ctx = {
  ctx_stats : stats;
  model_cache : model_ring;
  (* Unsatisfiable-set cache: loops whose infeasible side is re-queried
     every iteration would otherwise pay a full SAT call each time.  Keyed
     by the interned expressions' cached hashes, verified by structural
     equality (physical in the common case). *)
  unsat_cache : (int, Expr.t list list) Hashtbl.t;
  (* Constraint-prefix hashes already queried at least once in this
     context: the measurement base for the prefix-reuse share an
     assumption-stack (incremental) solver could exploit. *)
  seen_prefixes : (int, unit) Hashtbl.t;
  max_conflicts : int ref;
  timeout_ms : float option ref; (* wall-clock watchdog per SAT-core call *)
}

let new_stats () =
  {
    queries = 0;
    sat_queries = 0;
    cache_hits = 0;
    unknowns = 0;
    total_time = 0.;
    max_time = 0.;
    prefix_reused = 0;
    prefix_reused_time = 0.;
  }

(* Watchdog inherited by contexts created after it is set: parallel and
   distributed workers call [create_ctx ()] internally, so a CLI-level
   [--solver-timeout-ms] must flow to them without threading a parameter
   through every scheduler. *)
let default_timeout_ms : float option ref = ref None

let create_ctx ?(max_conflicts = 200_000) ?timeout_ms () =
  {
    ctx_stats = new_stats ();
    model_cache = new_ring ();
    unsat_cache = Hashtbl.create 256;
    seen_prefixes = Hashtbl.create 256;
    max_conflicts = ref max_conflicts;
    timeout_ms =
      ref (match timeout_ms with Some _ as t -> t | None -> !default_timeout_ms);
  }

let default_ctx = create_ctx ()

(* Legacy module-level views over the default context. *)
let stats = default_ctx.ctx_stats
let max_conflicts = default_ctx.max_conflicts

let models ctx = ring_to_list ctx.model_cache
let latest_model ctx = ring_find ctx.model_cache (fun _ -> true)

(* [default_ctx] predates any CLI flag parsing, so changing the default
   watchdog must also retrofit it. *)
let set_default_timeout_ms t =
  default_timeout_ms := t;
  default_ctx.timeout_ms := t

let reset_stats ?(ctx = default_ctx) () =
  let st = ctx.ctx_stats in
  st.queries <- 0;
  st.sat_queries <- 0;
  st.cache_hits <- 0;
  st.unknowns <- 0;
  st.total_time <- 0.;
  st.max_time <- 0.;
  st.prefix_reused <- 0;
  st.prefix_reused_time <- 0.

let clear_caches ctx =
  ring_clear ctx.model_cache;
  Hashtbl.reset ctx.unsat_cache;
  Hashtbl.reset ctx.seen_prefixes

let merge_stats ~into src =
  into.queries <- into.queries + src.queries;
  into.sat_queries <- into.sat_queries + src.sat_queries;
  into.cache_hits <- into.cache_hits + src.cache_hits;
  into.unknowns <- into.unknowns + src.unknowns;
  into.total_time <- into.total_time +. src.total_time;
  if src.max_time > into.max_time then into.max_time <- src.max_time;
  into.prefix_reused <- into.prefix_reused + src.prefix_reused;
  into.prefix_reused_time <- into.prefix_reused_time +. src.prefix_reused_time

let remember_model ctx m = ring_push ctx.model_cache m

let satisfies m constraints =
  List.for_all (fun c -> Expr.eval m c = 1L) constraints

(* Order-dependent mix of the interned per-node hashes: O(1) per
   constraint where the old [Hashtbl.hash] walked (a depth-limited slice
   of) each tree, and collision-resistant where depth limiting made deep
   distinct trees collide systematically. *)
let mix h k =
  let h = (h lxor k) * 0x27d4eb2f165667c5 in
  h lxor (h lsr 29)

let constraints_key constraints =
  List.fold_left (fun acc c -> mix acc (Expr.hash c)) 17 constraints

let unsat_cached ctx constraints =
  let key = constraints_key constraints in
  match Hashtbl.find_opt ctx.unsat_cache key with
  | None -> false
  | Some entries ->
      List.exists (fun cs -> List.equal Expr.equal cs constraints) entries

(* The per-key entry list is capped, and so is the key population: past
   [unsat_cache_keys] distinct keys the table is reset outright.  Long
   runs previously grew it without bound; brief amnesia is cheaper than
   an eviction policy for what is purely an optimization. *)
let unsat_cache_keys = 1024

let remember_unsat ctx constraints =
  let key = constraints_key constraints in
  if
    Hashtbl.length ctx.unsat_cache >= unsat_cache_keys
    && not (Hashtbl.mem ctx.unsat_cache key)
  then Hashtbl.reset ctx.unsat_cache;
  let entries = Option.value ~default:[] (Hashtbl.find_opt ctx.unsat_cache key) in
  if List.length entries < 8 then
    Hashtbl.replace ctx.unsat_cache key (constraints :: entries)

(* ------------------------------------------------------------------ *)
(* Independent-constraint slicing                                      *)
(* ------------------------------------------------------------------ *)

(* Keep only constraints transitively sharing variables with [seed_vars].
   Constraints mentioning no seed variable cannot affect satisfiability of
   the query (they are satisfiable on their own by path construction).
   [Expr.vars] reads the variable set cached in each interned node, so a
   slice costs set operations only — no tree walks. *)
let slice ~seed_vars constraints =
  let remaining = ref (List.map (fun c -> (c, Expr.vars c)) constraints) in
  let relevant = ref [] in
  let frontier = ref seed_vars in
  let changed = ref true in
  while !changed do
    changed := false;
    let keep, rest =
      List.partition
        (fun (_, vs) -> not (Expr.Int_set.disjoint vs !frontier))
        !remaining
    in
    if keep <> [] then begin
      changed := true;
      List.iter
        (fun (c, vs) ->
          relevant := c :: !relevant;
          frontier := Expr.Int_set.union !frontier vs)
        keep;
      remaining := rest
    end
  done;
  !relevant

(* ------------------------------------------------------------------ *)
(* Core check                                                          *)
(* ------------------------------------------------------------------ *)

let run_sat ctx constraints =
  ctx.ctx_stats.sat_queries <- ctx.ctx_stats.sat_queries + 1;
  Obs.Metrics.incr m_sat_queries;
  if S2e_fault.Fault.(fire Solver_latency) then Unix.sleepf 0.005;
  if S2e_fault.Fault.(fire Solver_unknown) then Unknown
  else begin
    (* Watchdog budget starts before bitblasting so a pathological
       encoding cannot starve the deadline check. *)
    let deadline =
      Option.map
        (fun ms -> Unix.gettimeofday () +. (ms /. 1000.))
        !(ctx.timeout_ms)
    in
    let sat = Sat.create () in
    let bctx = Bitblast.create sat in
    List.iter (Bitblast.assert_true bctx) constraints;
    match Sat.solve ~max_conflicts:!(ctx.max_conflicts) ?deadline sat with
    | Sat.Sat ->
        let m = Bitblast.model bctx in
        remember_model ctx m;
        Sat m
    | Sat.Unsat -> Unsat
    | Sat.Unknown ->
        (match deadline with
        | Some d when Unix.gettimeofday () >= d -> Obs.Metrics.incr m_timeouts
        | _ -> ());
        Unknown
  end

(* Bound on the remembered-prefix population, same amnesia policy as the
   unsat cache: reuse attribution is a measurement, not a correctness
   concern. *)
let seen_prefix_keys = 8192

(* [use_model_cache:false] makes the returned model a pure function of the
   constraint set (the SAT core is deterministic), independent of any
   queries the context answered before.  Value-picking paths (concretize,
   get_value) rely on this so that serial and parallel exploration pin the
   same concrete values and hence explore the same path set.

   Each query runs inside a "solver" phase span: the span feeds the
   registry's exclusive-time breakdown, and its single pair of clock
   readings also feeds the per-context totals, the latency histogram, the
   prefix-reuse attribution and the per-query trace event through
   [on_elapsed]. *)
let check_ctx ~use_model_cache ctx constraints =
  let st = ctx.ctx_stats in
  st.queries <- st.queries + 1;
  Obs.Metrics.incr m_queries;
  (* Attribution facts for this query, filled in by the canonicalization
     below and consumed once the span closes. *)
  let q_prefix = ref 0 in
  let q_nodes = ref 0 in
  let q_cache = ref 0 (* 0 miss / 1 model hit / 2 unsat hit *) in
  let q_reused = ref false in
  let q_result = ref 2 (* 0 sat / 1 unsat / 2 unknown *) in
  Obs.Span.timed solver_phase
    ~on_elapsed:(fun dt ->
      st.total_time <- st.total_time +. dt;
      if dt > st.max_time then st.max_time <- dt;
      Obs.Metrics.observe m_query_hist dt;
      if !q_reused then begin
        st.prefix_reused <- st.prefix_reused + 1;
        st.prefix_reused_time <- st.prefix_reused_time +. dt
      end;
      if Obs.Trace.enabled () then
        Obs.Trace.query ~dur:dt ~prefix:!q_prefix ~nodes:!q_nodes
          ~result:!q_result ~cache:!q_cache ())
    (fun () ->
      let constraints = List.map Simplifier.simplify constraints in
      if List.exists (fun c -> Expr.equal c Expr.bool_f) constraints then begin
        q_result := 1;
        Unsat
      end
      else
        let constraints =
          List.filter (fun c -> not (Expr.equal c Expr.bool_t)) constraints
        in
        if constraints = [] then begin
          q_result := 0;
          Sat Expr.Int_map.empty
        end
        else begin
          (* The canonical list's head is the query-specific condition
             ([check_with] conses it onto the slice); the tail is the
             inherited assumption stack — the prefix an incremental solver
             could keep pushed across sibling queries. *)
          (match constraints with
          | _ :: tl -> q_prefix := constraints_key tl
          | [] -> ());
          q_nodes :=
            List.fold_left (fun acc c -> acc + Expr.size c) 0 constraints;
          q_reused := Hashtbl.mem ctx.seen_prefixes !q_prefix;
          if not !q_reused then begin
            if Hashtbl.length ctx.seen_prefixes >= seen_prefix_keys then
              Hashtbl.reset ctx.seen_prefixes;
            Hashtbl.add ctx.seen_prefixes !q_prefix ()
          end;
          let cached_model =
            if use_model_cache then
              ring_find ctx.model_cache (fun m -> satisfies m constraints)
            else None
          in
          match cached_model with
          | Some m ->
              st.cache_hits <- st.cache_hits + 1;
              Obs.Metrics.incr m_cache_hits;
              q_cache := 1;
              q_result := 0;
              Sat m
          | None ->
              if unsat_cached ctx constraints then begin
                st.cache_hits <- st.cache_hits + 1;
                Obs.Metrics.incr m_cache_hits;
                q_cache := 2;
                q_result := 1;
                Unsat
              end
              else begin
                let r = run_sat ctx constraints in
                (match r with
                | Unsat ->
                    q_result := 1;
                    remember_unsat ctx constraints
                | Unknown ->
                    (* Never silently fold Unknown into Unsat: the
                       value-picking callers below still return [None],
                       but the miss is now visible in run stats. *)
                    st.unknowns <- st.unknowns + 1;
                    Obs.Metrics.incr m_unknowns
                | Sat _ -> q_result := 0);
                r
              end
        end)

(** Is the conjunction of [constraints] satisfiable?  Returns a model on
    success. *)
let check ?(ctx = default_ctx) constraints =
  check_ctx ~use_model_cache:true ctx constraints

(** Satisfiability of [constraints ∧ cond]: used to decide branch
    feasibility.  The constraint set is sliced around [cond]'s variables. *)
let check_with ?(ctx = default_ctx) ~constraints cond =
  let sliced = slice ~seed_vars:(Expr.vars cond) constraints in
  check ~ctx (cond :: sliced)

(** A concrete value for [e] consistent with [constraints], if any.  The
    model cache is bypassed so the pick depends only on the constraint set,
    not on the context's history (see {!check_ctx}). *)
let get_value ?(ctx = default_ctx) ~constraints e =
  match Expr.to_const e with
  | Some v -> Some v
  | None -> (
      let sliced = slice ~seed_vars:(Expr.vars e) constraints in
      match check_ctx ~use_model_cache:false ctx sliced with
      | Sat m -> Some (Expr.eval m e)
      | Unsat | Unknown -> None)

(** Must [e] evaluate to a single value under [constraints]?  Returns that
    value when it is unique. *)
let get_unique_value ?(ctx = default_ctx) ~constraints e =
  match Expr.to_const e with
  | Some v -> Some v
  | None -> (
      match get_value ~ctx ~constraints e with
      | None -> None
      | Some v ->
          let differs = Expr.ne e (Expr.const ~width:(Expr.width e) v) in
          (match check_with ~ctx ~constraints differs with
          | Unsat -> Some v
          | Sat _ | Unknown -> None))

(** Up to [limit] distinct concrete values for [e] under [constraints].
    Deterministic: enumeration bypasses the model cache. *)
let get_values ?(ctx = default_ctx) ~constraints ~limit e =
  (* The slice depends only on [e]'s variables and the constraint set,
     both loop-invariant: blocking constraints added during enumeration
     mention only variables of [e], which are in the seed already. *)
  let sliced = slice ~seed_vars:(Expr.vars e) constraints in
  let rec go acc extra n =
    if n = 0 then List.rev acc
    else
      match check_ctx ~use_model_cache:false ctx (extra @ sliced) with
      | Sat m ->
          let v = Expr.eval m e in
          let block = Expr.ne e (Expr.const ~width:(Expr.width e) v) in
          go (v :: acc) (block :: extra) (n - 1)
      | Unsat | Unknown -> List.rev acc
  in
  go [] [] limit
