(** High-level constraint solver used by the symbolic execution engine.

    Sits above {!Bitblast}/{!Sat} and adds the optimizations KLEE/STP give
    the S2E prototype: independent-constraint slicing (only the constraints
    sharing variables with the query are sent to the SAT core), a
    counterexample/model cache (recent models are re-tried by evaluation
    before any SAT call), an unsatisfiable-set cache, and statistics that
    the Fig. 9 benchmarks report (per-query time, total solver time, query
    counts).

    All mutable solver state — the two caches, the statistics and the
    conflict budget — lives in an explicit {!ctx} record so that parallel
    workers can each own a private solver context ({!S2e_core.Parallel}).
    The module-level [stats]/[model_cache]/[max_conflicts]/[reset_stats]
    bindings are thin views of {!default_ctx}, kept so single-threaded
    callers and the existing benchmarks compile unchanged. *)

open S2e_expr
module Obs = S2e_obs

type result = Sat of Expr.model | Unsat | Unknown

(** SAT-core strategy for verdict queries (branch feasibility, case-tree
    pruning, assertion checks):

    - [Incremental] (default): a small ring of live SAT instances keyed on
      constraint-prefix hashes.  A query whose prefix matches a live
      instance pops back to the common ancestor assumption level and
      asserts only the suffix, keeping the variable table, Tseitin
      encodings and learned clauses alive across queries.
    - [Fresh]: one cold SAT instance per query — the escape hatch and the
      differential baseline.
    - [Portfolio]: two cold instances with different branching seeds
      racing in alternating conflict slices under the watchdog; first
      answer wins.

    Value-producing queries (test-case models, [get_value] picks) always
    run on a cold instance in every mode: the values the engine pins must
    be a pure function of the constraint set, never of solver history, or
    serial/parallel/incremental runs would explore different paths. *)
type mode = Fresh | Incremental | Portfolio

let mode_name = function
  | Fresh -> "fresh"
  | Incremental -> "incremental"
  | Portfolio -> "portfolio"

let mode_of_string = function
  | "fresh" -> Some Fresh
  | "incremental" -> Some Incremental
  | "portfolio" -> Some Portfolio
  | _ -> None

(* Process-wide telemetry (lib/obs).  [ctx_stats] stays the per-context
   view parallel workers aggregate; the registry is the merged live view
   the run-stats reporter streams.  Both are fed from the same sites, so
   they cannot drift. *)
let m_queries = Obs.Metrics.counter "solver.queries"
let m_sat_queries = Obs.Metrics.counter "solver.sat_queries"
let m_cache_hits = Obs.Metrics.counter "solver.cache_hits"
let m_unknowns = Obs.Metrics.counter "solver.unknowns"
let m_timeouts = Obs.Metrics.counter "solver.timeouts"
let m_inc_hits = Obs.Metrics.counter "solver.inc_hits"
let m_inc_partials = Obs.Metrics.counter "solver.inc_partials"

let m_query_hist =
  Obs.Metrics.histogram
    ~bounds:[| 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0 |]
    "solver.query_s"

let solver_phase = Obs.Span.phase "solver"

type stats = {
  mutable queries : int;
  mutable sat_queries : int; (* queries that reached the SAT core *)
  mutable cache_hits : int;
  mutable unknowns : int; (* queries answered Unknown (budget/deadline/fault) *)
  mutable total_time : float;
  mutable max_time : float;
  mutable prefix_reused : int;
      (* queries whose constraint prefix (assumption stack below the query
         condition) this context had already seen *)
  mutable prefix_reused_time : float;
  (* Realized incremental reuse (vs [prefix_reused]'s opportunity): *)
  mutable inc_hits : int; (* probes on an instance matching the whole prefix *)
  mutable inc_partials : int; (* popped to a common ancestor, suffix asserted *)
  (* SAT-core clause learning, aggregated over this context's instances: *)
  mutable sat_learned : int; (* learned clauses ever created *)
  mutable sat_kept : int; (* learned clauses live across queries (reuse pool) *)
}

(** One solver context: caches + statistics + budget.  Contexts are not
    thread-safe; each domain must use its own. *)
(* Recent models in a fixed-capacity ring, most recent first.  Evaluating
   a candidate model against the constraints is far cheaper than a SAT
   call and hits often because consecutive queries along a path share
   most constraints.  A ring keeps push O(1) with zero allocation, where
   the previous list rebuild copied all [model_cache_limit] cells per
   remembered model. *)
let model_cache_limit = 24

type model_ring = {
  slots : Expr.model array;
  mutable len : int;
  mutable head : int; (* index of the most recent entry; -1 when empty *)
}

let new_ring () =
  { slots = Array.make model_cache_limit Expr.Int_map.empty; len = 0; head = -1 }

let ring_push r m =
  r.head <- (r.head + 1) mod model_cache_limit;
  r.slots.(r.head) <- m;
  if r.len < model_cache_limit then r.len <- r.len + 1

let ring_clear r =
  Array.fill r.slots 0 model_cache_limit Expr.Int_map.empty;
  r.len <- 0;
  r.head <- -1

(* Most-recent-first scan, mirroring the old list's lookup order. *)
let ring_find r p =
  let cap = model_cache_limit in
  let rec go i =
    if i >= r.len then None
    else
      let m = r.slots.((r.head - i + cap) mod cap) in
      if p m then Some m else go (i + 1)
  in
  go 0

let ring_to_list r =
  let cap = model_cache_limit in
  List.init r.len (fun i -> r.slots.((r.head - i + cap) mod cap))

(* One live SAT instance of the incremental ring.  [istack] is the
   constraint stack currently asserted, oldest-first; entry [i] is one
   {!Sat.push}ed frame holding one {!Sat.assume}d literal, so popping back
   to a common ancestor is [ilen - k] O(1) pops.  The {!Bitblast.ctx} is
   the per-instance persistent CNF map: every interned expression node
   bitblasts once per instance, not once per query. *)
type instance = {
  isat : Sat.t;
  ibctx : Bitblast.ctx;
  mutable istack : Expr.t array;
  mutable ilen : int;
  mutable itick : int; (* LRU clock *)
  mutable ilearned : int; (* Sat learned-total last folded into ctx stats *)
}

(* Ring capacity: sibling probes and parent/child chains need very few
   concurrently-live families; a small ring bounds memory while covering
   the interleaving the scheduler produces. *)
let inst_ring_cap = 4

(* Retire an instance once its clause database (problem + surviving
   learned clauses) outgrows this — the memory bound of the ring. *)
let inst_retire_clauses = 300_000

type ctx = {
  ctx_stats : stats;
  model_cache : model_ring;
  (* Unsatisfiable-set cache: loops whose infeasible side is re-queried
     every iteration would otherwise pay a full SAT call each time.  Keyed
     by the interned expressions' cached hashes, verified by structural
     equality (physical in the common case). *)
  unsat_cache : (int, Expr.t list list) Hashtbl.t;
  (* Constraint-prefix hashes already queried at least once in this
     context: the measurement base for the prefix-reuse share an
     assumption-stack (incremental) solver could exploit. *)
  seen_prefixes : (int, unit) Hashtbl.t;
  max_conflicts : int ref;
  timeout_ms : float option ref; (* wall-clock watchdog per SAT-core call *)
  mode : mode ref;
  insts : instance option array; (* the incremental instance ring *)
  mutable inst_tick : int;
}

let new_stats () =
  {
    queries = 0;
    sat_queries = 0;
    cache_hits = 0;
    unknowns = 0;
    total_time = 0.;
    max_time = 0.;
    prefix_reused = 0;
    prefix_reused_time = 0.;
    inc_hits = 0;
    inc_partials = 0;
    sat_learned = 0;
    sat_kept = 0;
  }

(* Watchdog inherited by contexts created after it is set: parallel and
   distributed workers call [create_ctx ()] internally, so a CLI-level
   [--solver-timeout-ms] must flow to them without threading a parameter
   through every scheduler. *)
let default_timeout_ms : float option ref = ref None

(* Same inheritance story as the watchdog: contexts created by parallel /
   distributed workers pick up the CLI-selected solver mode without a
   parameter thread. *)
let default_mode : mode ref = ref Incremental

let create_ctx ?(max_conflicts = 200_000) ?timeout_ms ?mode () =
  {
    ctx_stats = new_stats ();
    model_cache = new_ring ();
    unsat_cache = Hashtbl.create 256;
    seen_prefixes = Hashtbl.create 256;
    max_conflicts = ref max_conflicts;
    timeout_ms =
      ref (match timeout_ms with Some _ as t -> t | None -> !default_timeout_ms);
    mode = ref (match mode with Some m -> m | None -> !default_mode);
    insts = Array.make inst_ring_cap None;
    inst_tick = 0;
  }

let default_ctx = create_ctx ()

(* Legacy module-level views over the default context. *)
let stats = default_ctx.ctx_stats
let max_conflicts = default_ctx.max_conflicts

let models ctx = ring_to_list ctx.model_cache
let latest_model ctx = ring_find ctx.model_cache (fun _ -> true)

(* [default_ctx] predates any CLI flag parsing, so changing the default
   watchdog must also retrofit it. *)
let set_default_timeout_ms t =
  default_timeout_ms := t;
  default_ctx.timeout_ms := t

(* [default_ctx] likewise predates CLI parsing. *)
let set_default_mode m =
  default_mode := m;
  default_ctx.mode := m

let reset_stats ?(ctx = default_ctx) () =
  let st = ctx.ctx_stats in
  st.queries <- 0;
  st.sat_queries <- 0;
  st.cache_hits <- 0;
  st.unknowns <- 0;
  st.total_time <- 0.;
  st.max_time <- 0.;
  st.prefix_reused <- 0;
  st.prefix_reused_time <- 0.;
  st.inc_hits <- 0;
  st.inc_partials <- 0;
  st.sat_learned <- 0;
  st.sat_kept <- 0

let clear_caches ctx =
  ring_clear ctx.model_cache;
  Hashtbl.reset ctx.unsat_cache;
  Hashtbl.reset ctx.seen_prefixes;
  Array.fill ctx.insts 0 inst_ring_cap None

let merge_stats ~into src =
  into.queries <- into.queries + src.queries;
  into.sat_queries <- into.sat_queries + src.sat_queries;
  into.cache_hits <- into.cache_hits + src.cache_hits;
  into.unknowns <- into.unknowns + src.unknowns;
  into.total_time <- into.total_time +. src.total_time;
  if src.max_time > into.max_time then into.max_time <- src.max_time;
  into.prefix_reused <- into.prefix_reused + src.prefix_reused;
  into.prefix_reused_time <- into.prefix_reused_time +. src.prefix_reused_time;
  into.inc_hits <- into.inc_hits + src.inc_hits;
  into.inc_partials <- into.inc_partials + src.inc_partials;
  into.sat_learned <- into.sat_learned + src.sat_learned;
  into.sat_kept <- into.sat_kept + src.sat_kept

let remember_model ctx m = ring_push ctx.model_cache m

let satisfies m constraints =
  List.for_all (fun c -> Expr.eval m c = 1L) constraints

(* Order-dependent mix of the interned per-node hashes: O(1) per
   constraint where the old [Hashtbl.hash] walked (a depth-limited slice
   of) each tree, and collision-resistant where depth limiting made deep
   distinct trees collide systematically. *)
let mix h k =
  let h = (h lxor k) * 0x27d4eb2f165667c5 in
  h lxor (h lsr 29)

let constraints_key constraints =
  List.fold_left (fun acc c -> mix acc (Expr.hash c)) 17 constraints

let unsat_cached ctx constraints =
  let key = constraints_key constraints in
  match Hashtbl.find_opt ctx.unsat_cache key with
  | None -> false
  | Some entries ->
      List.exists (fun cs -> List.equal Expr.equal cs constraints) entries

(* The per-key entry list is capped, and so is the key population: past
   [unsat_cache_keys] distinct keys the table is reset outright.  Long
   runs previously grew it without bound; brief amnesia is cheaper than
   an eviction policy for what is purely an optimization. *)
let unsat_cache_keys = 1024

let remember_unsat ctx constraints =
  let key = constraints_key constraints in
  if
    Hashtbl.length ctx.unsat_cache >= unsat_cache_keys
    && not (Hashtbl.mem ctx.unsat_cache key)
  then Hashtbl.reset ctx.unsat_cache;
  let entries = Option.value ~default:[] (Hashtbl.find_opt ctx.unsat_cache key) in
  if List.length entries < 8 then
    Hashtbl.replace ctx.unsat_cache key (constraints :: entries)

(* ------------------------------------------------------------------ *)
(* Independent-constraint slicing                                      *)
(* ------------------------------------------------------------------ *)

(* Keep only constraints transitively sharing variables with [seed_vars].
   Constraints mentioning no seed variable cannot affect satisfiability of
   the query (they are satisfiable on their own by path construction).
   [Expr.vars] reads the variable set cached in each interned node, so a
   slice costs set operations only — no tree walks. *)
let slice ~seed_vars constraints =
  let remaining = ref (List.map (fun c -> (c, Expr.vars c)) constraints) in
  let relevant = ref [] in
  let frontier = ref seed_vars in
  let changed = ref true in
  while !changed do
    changed := false;
    let keep, rest =
      List.partition
        (fun (_, vs) -> not (Expr.Int_set.disjoint vs !frontier))
        !remaining
    in
    if keep <> [] then begin
      changed := true;
      List.iter
        (fun (c, vs) ->
          relevant := c :: !relevant;
          frontier := Expr.Int_set.union !frontier vs)
        keep;
      remaining := rest
    end
  done;
  !relevant

(* ------------------------------------------------------------------ *)
(* Core check                                                          *)
(* ------------------------------------------------------------------ *)

(* Watchdog budget starts before bitblasting so a pathological encoding
   cannot starve the deadline check. *)
let query_deadline ctx =
  Option.map
    (fun ms -> Unix.gettimeofday () +. (ms /. 1000.))
    !(ctx.timeout_ms)

let note_unknown deadline =
  match deadline with
  | Some d when Unix.gettimeofday () >= d -> Obs.Metrics.incr m_timeouts
  | _ -> ()

(* Fold an instance's SAT-core learning counters into the context stats.
   [learned] accumulates as a delta (monotone per instance); [kept] is the
   current live pool summed over the ring. *)
let note_sat_stats ctx inst =
  let sst = Sat.stats inst.isat in
  let st = ctx.ctx_stats in
  st.sat_learned <- st.sat_learned + sst.Sat.learned - inst.ilearned;
  inst.ilearned <- sst.Sat.learned;
  st.sat_kept <-
    Array.fold_left
      (fun acc -> function
        | None -> acc
        | Some i -> acc + (Sat.stats i.isat).Sat.learned_kept)
      0 ctx.insts

(* One cold SAT instance per query: the [Fresh] strategy, and the only
   strategy value-producing (pristine) queries ever use — the model found
   is a pure function of the constraint set. *)
let run_sat ctx constraints =
  ctx.ctx_stats.sat_queries <- ctx.ctx_stats.sat_queries + 1;
  Obs.Metrics.incr m_sat_queries;
  let deadline = query_deadline ctx in
  let sat = Sat.create () in
  let bctx = Bitblast.create sat in
  List.iter (Bitblast.assert_true bctx) constraints;
  let r = Sat.solve ~max_conflicts:!(ctx.max_conflicts) ?deadline sat in
  let st = Sat.stats sat in
  ctx.ctx_stats.sat_learned <- ctx.ctx_stats.sat_learned + st.Sat.learned;
  match r with
  | Sat.Sat ->
      let m = Bitblast.model bctx in
      remember_model ctx m;
      Sat m
  | Sat.Unsat -> Unsat
  | Sat.Unknown ->
      note_unknown deadline;
      Unknown

(* The [Incremental] strategy.  The canonical constraint list's head is
   the query-specific condition; the tail (reversed to oldest-first, so
   shared parent path conditions align at the bottom) is matched against
   the ring's live assumption stacks.  The best-overlap instance pops back
   to the common ancestor frame and asserts only the suffix; the head is
   probed as a per-call assumption, so sibling feasibility pairs (c, ¬c)
   are two probes on one instance and learned clauses carry across every
   query the instance serves. *)
let run_incremental ctx ~q_inc constraints =
  ctx.ctx_stats.sat_queries <- ctx.ctx_stats.sat_queries + 1;
  Obs.Metrics.incr m_sat_queries;
  let probe, base =
    match constraints with
    | p :: tl -> (p, Array.of_list (List.rev tl))
    | [] -> assert false (* check_ctx answers [] without a SAT call *)
  in
  let nbase = Array.length base in
  let overlap inst =
    let n = min inst.ilen nbase in
    let k = ref 0 in
    while !k < n && Expr.equal inst.istack.(!k) base.(!k) do incr k done;
    !k
  in
  let best = ref None in
  Array.iter
    (function
      | None -> ()
      | Some inst ->
          let k = overlap inst in
          let better =
            match !best with
            | None -> true
            | Some (_, bk, btick) -> k > bk || (k = bk && inst.itick > btick)
          in
          if better then best := Some (inst, k, inst.itick))
    ctx.insts;
  let inst, k, created =
    match !best with
    | Some (inst, k, _) when k > 0 || nbase = 0 -> (inst, k, false)
    | _ -> (
        (* No shared prefix anywhere.  Open a new instance only while the
           ring has a free slot; once full, recycle the least recently
           used instance popped back to level 0 instead of evicting it —
           its bit-blast cache still maps the workload's shared subterms
           (no re-encoding) and its learned clauses remain sound, being
           implied by the permanent gate clauses alone. *)
        let free = ref (-1) and lru = ref 0 in
        for i = inst_ring_cap - 1 downto 0 do
          match ctx.insts.(i) with
          | None -> free := i
          | Some inst -> (
              match ctx.insts.(!lru) with
              | Some cur when inst.itick < cur.itick -> lru := i
              | _ -> ())
        done;
        let fresh_in slot =
          let sat = Sat.create () in
          let inst =
            {
              isat = sat;
              ibctx = Bitblast.create sat;
              istack = Array.make (max 8 nbase) Expr.bool_t;
              ilen = 0;
              itick = 0;
              ilearned = 0;
            }
          in
          ctx.insts.(slot) <- Some inst;
          (inst, 0, true)
        in
        if !free >= 0 then fresh_in !free
        else
          match ctx.insts.(!lru) with
          | Some inst ->
              (* Recycling only pays when the instance's CNF map already
                 covers most of this query's encodings.  An instance grown
                 on a different workload (a long-lived process crossing
                 guest images) is pure dead weight — every solve must
                 still assign all its variables — so replace it instead,
                 which also bounds the ring's memory. *)
              let known = ref 0 in
              for i = 0 to nbase - 1 do
                if Bitblast.cached inst.ibctx base.(i) then incr known
              done;
              if 2 * !known >= nbase then (inst, 0, false)
              else fresh_in !lru
          | None -> assert false (* full ring: every slot is Some *))
  in
  ctx.inst_tick <- ctx.inst_tick + 1;
  inst.itick <- ctx.inst_tick;
  (* Pop back to the common ancestor, assert the suffix — one retractable
     frame per constraint, so any later query can land between them. *)
  while inst.ilen > k do
    Sat.pop inst.isat;
    inst.ilen <- inst.ilen - 1
  done;
  if Array.length inst.istack < nbase then begin
    let a = Array.make (max nbase (2 * Array.length inst.istack)) Expr.bool_t in
    Array.blit inst.istack 0 a 0 inst.ilen;
    inst.istack <- a
  end;
  for i = k to nbase - 1 do
    Sat.push inst.isat;
    Sat.assume inst.isat (Bitblast.literal inst.ibctx base.(i));
    inst.istack.(i) <- base.(i)
  done;
  inst.ilen <- nbase;
  (* Realized reuse means a nonempty shared prefix survived the pop; a
     new instance or a level-0 recycle reuses gates at best, so it stays
     classified fresh. *)
  let st = ctx.ctx_stats in
  if created || k = 0 then q_inc := 0
  else if k = nbase then begin
    q_inc := 2;
    st.inc_hits <- st.inc_hits + 1;
    Obs.Metrics.incr m_inc_hits
  end
  else begin
    q_inc := 1;
    st.inc_partials <- st.inc_partials + 1;
    Obs.Metrics.incr m_inc_partials
  end;
  let deadline = query_deadline ctx in
  let plit = Bitblast.literal inst.ibctx probe in
  (* The conflict budget is per query: the bound Sat.solve takes is an
     absolute counter, so offset it by the instance's lifetime total. *)
  let budget = (Sat.stats inst.isat).Sat.conflicts + !(ctx.max_conflicts) in
  let r = Sat.solve_assuming ~max_conflicts:budget ?deadline inst.isat [ plit ] in
  let result =
    match r with
    | Sat.Sat ->
        (* The persistent context has blasted every query this instance
           ever served; restrict the model to this query's variables so
           callers see the same domain a fresh per-query context gives. *)
        let vs =
          List.fold_left
            (fun acc c -> Expr.Int_set.union acc (Expr.vars c))
            Expr.Int_set.empty constraints
        in
        let m =
          Expr.Int_map.filter
            (fun v _ -> Expr.Int_set.mem v vs)
            (Bitblast.model inst.ibctx)
        in
        remember_model ctx m;
        Sat m
    | Sat.Unsat -> Unsat
    | Sat.Unknown ->
        note_unknown deadline;
        Unknown
  in
  note_sat_stats ctx inst;
  (* Bound the ring's memory: retire instances whose clause database
     (problem + surviving learned clauses) has outgrown the budget. *)
  if Sat.size inst.isat > inst_retire_clauses then
    Array.iteri
      (fun i -> function
        | Some other when other == inst -> ctx.insts.(i) <- None
        | _ -> ())
      ctx.insts;
  result

(* The [Portfolio] strategy: two cold instances over the same encoding
   with different branching seeds (saved-phase perturbation), racing in
   alternating geometrically-growing conflict slices under the watchdog;
   first definite answer wins.  The second instance is built lazily —
   easy queries never pay for it.  Deterministic: slice schedule and
   seeds are fixed, and both instances decide the same formula. *)
let run_portfolio ctx constraints =
  ctx.ctx_stats.sat_queries <- ctx.ctx_stats.sat_queries + 1;
  Obs.Metrics.incr m_sat_queries;
  let deadline = query_deadline ctx in
  let build seed =
    let sat = Sat.create () in
    let bctx = Bitblast.create sat in
    List.iter (Bitblast.assert_true bctx) constraints;
    if seed <> 0 then Sat.perturb sat seed;
    (sat, bctx)
  in
  let a = build 0 in
  let note_learned sat =
    let st = Sat.stats sat in
    ctx.ctx_stats.sat_learned <- ctx.ctx_stats.sat_learned + st.Sat.learned
  in
  let rec race (sat, bctx) other slice =
    let c0 = (Sat.stats sat).Sat.conflicts in
    match Sat.solve ~max_conflicts:(c0 + slice) ?deadline sat with
    | Sat.Sat ->
        note_learned sat;
        let m = Bitblast.model bctx in
        remember_model ctx m;
        Sat m
    | Sat.Unsat ->
        note_learned sat;
        Unsat
    | Sat.Unknown ->
        let spent =
          (Sat.stats sat).Sat.conflicts
          + match other with
            | Some (o, _) -> (Sat.stats o).Sat.conflicts
            | None -> 0
        in
        let out_of_time =
          match deadline with
          | Some d -> Unix.gettimeofday () >= d
          | None -> false
        in
        if spent >= !(ctx.max_conflicts) || out_of_time then begin
          note_learned sat;
          (match other with Some (o, _) -> note_learned o | None -> ());
          note_unknown deadline;
          Unknown
        end
        else
          let other = match other with Some o -> o | None -> build 1 in
          race other (Some (sat, bctx)) (slice * 2)
  in
  race a None 2048

(* Bound on the remembered-prefix population, same amnesia policy as the
   unsat cache: reuse attribution is a measurement, not a correctness
   concern. *)
let seen_prefix_keys = 8192

(* [use_model_cache:false] makes the returned model a pure function of the
   constraint set (the SAT core is deterministic), independent of any
   queries the context answered before.  Value-picking paths (concretize,
   get_value) rely on this so that serial and parallel exploration pin the
   same concrete values and hence explore the same path set.

   Each query runs inside a "solver" phase span: the span feeds the
   registry's exclusive-time breakdown, and its single pair of clock
   readings also feeds the per-context totals, the latency histogram, the
   prefix-reuse attribution and the per-query trace event through
   [on_elapsed]. *)
let check_ctx ~use_model_cache ctx constraints =
  let st = ctx.ctx_stats in
  st.queries <- st.queries + 1;
  Obs.Metrics.incr m_queries;
  (* Attribution facts for this query, filled in by the canonicalization
     below and consumed once the span closes. *)
  let q_prefix = ref 0 in
  let q_nodes = ref 0 in
  let q_cache = ref 0 (* 0 miss / 1 model hit / 2 unsat hit *) in
  let q_reused = ref false in
  let q_inc = ref 0 (* 0 fresh / 1 partial prefix hit / 2 full hit *) in
  let q_result = ref 2 (* 0 sat / 1 unsat / 2 unknown *) in
  Obs.Span.timed solver_phase
    ~on_elapsed:(fun dt ->
      st.total_time <- st.total_time +. dt;
      if dt > st.max_time then st.max_time <- dt;
      Obs.Metrics.observe m_query_hist dt;
      if !q_reused then begin
        st.prefix_reused <- st.prefix_reused + 1;
        st.prefix_reused_time <- st.prefix_reused_time +. dt
      end;
      if Obs.Trace.enabled () then
        Obs.Trace.query ~inc:!q_inc ~dur:dt ~prefix:!q_prefix ~nodes:!q_nodes
          ~result:!q_result ~cache:!q_cache ())
    (fun () ->
      let constraints = List.map Simplifier.simplify constraints in
      if List.exists (fun c -> Expr.equal c Expr.bool_f) constraints then begin
        q_result := 1;
        Unsat
      end
      else
        let constraints =
          List.filter (fun c -> not (Expr.equal c Expr.bool_t)) constraints
        in
        if constraints = [] then begin
          q_result := 0;
          Sat Expr.Int_map.empty
        end
        else begin
          (* The canonical list's head is the query-specific condition
             ([check_with] conses it onto the slice); the tail is the
             inherited assumption stack — the prefix an incremental solver
             could keep pushed across sibling queries. *)
          (match constraints with
          | _ :: tl -> q_prefix := constraints_key tl
          | [] -> ());
          q_nodes :=
            List.fold_left (fun acc c -> acc + Expr.size c) 0 constraints;
          q_reused := Hashtbl.mem ctx.seen_prefixes !q_prefix;
          if not !q_reused then begin
            if Hashtbl.length ctx.seen_prefixes >= seen_prefix_keys then
              Hashtbl.reset ctx.seen_prefixes;
            Hashtbl.add ctx.seen_prefixes !q_prefix ()
          end;
          (* Fault injection fires per canonical query, before any cache
             lookup: cache-hit patterns are solver-history-dependent and
             differ across modes, so firing deeper (per SAT-core call, as
             before) would desynchronize the seeded fault stream between
             incremental and fresh runs and break their differential. *)
          if S2e_fault.Fault.(fire Solver_latency) then Unix.sleepf 0.005;
          if S2e_fault.Fault.(fire Solver_unknown) then begin
            st.unknowns <- st.unknowns + 1;
            Obs.Metrics.incr m_unknowns;
            Unknown
          end
          else
          let cached_model =
            if use_model_cache then
              ring_find ctx.model_cache (fun m -> satisfies m constraints)
            else None
          in
          match cached_model with
          | Some m ->
              st.cache_hits <- st.cache_hits + 1;
              Obs.Metrics.incr m_cache_hits;
              q_cache := 1;
              q_result := 0;
              Sat m
          | None ->
              if unsat_cached ctx constraints then begin
                st.cache_hits <- st.cache_hits + 1;
                Obs.Metrics.incr m_cache_hits;
                q_cache := 2;
                q_result := 1;
                Unsat
              end
              else begin
                let r =
                  (* Pristine (value-producing) queries always solve cold;
                     verdict queries go through the configured strategy. *)
                  if not use_model_cache then run_sat ctx constraints
                  else
                    match !(ctx.mode) with
                    | Fresh -> run_sat ctx constraints
                    | Incremental -> run_incremental ctx ~q_inc constraints
                    | Portfolio -> run_portfolio ctx constraints
                in
                (match r with
                | Unsat ->
                    q_result := 1;
                    remember_unsat ctx constraints
                | Unknown ->
                    (* Never silently fold Unknown into Unsat: the
                       value-picking callers below still return [None],
                       but the miss is now visible in run stats. *)
                    st.unknowns <- st.unknowns + 1;
                    Obs.Metrics.incr m_unknowns
                | Sat _ -> q_result := 0);
                r
              end
        end)

(** Is the conjunction of [constraints] satisfiable?  Returns a model on
    success. *)
let check ?(ctx = default_ctx) constraints =
  check_ctx ~use_model_cache:true ctx constraints

(** Satisfiability of [constraints ∧ cond]: used to decide branch
    feasibility.  The constraint set is sliced around [cond]'s variables. *)
let check_with ?(ctx = default_ctx) ~constraints cond =
  let sliced = slice ~seed_vars:(Expr.vars cond) constraints in
  check ~ctx (cond :: sliced)

(** A model of [constraints] that is a pure function of the constraint
    set: bypasses the model cache and solves on a cold SAT instance in
    every mode.  Test-case extraction uses this so that case bytes are
    identical across serial / parallel / incremental / fresh runs. *)
let check_model ?(ctx = default_ctx) constraints =
  check_ctx ~use_model_cache:false ctx constraints

(** Feasibility of both sides of a fork in one shared-prefix query pair:
    [cond] and [¬cond] are sliced once (their variable sets coincide up to
    negation) and probed against the same canonical prefix, which in
    incremental mode means two assumption probes on one live SAT instance
    — the second probe reuses the first's encoding and learned clauses. *)
let check_branch ?(ctx = default_ctx) ~constraints cond =
  let neg = Expr.log_not cond in
  let seed_vars = Expr.Int_set.union (Expr.vars cond) (Expr.vars neg) in
  let sliced = slice ~seed_vars constraints in
  let taken = check ~ctx (cond :: sliced) in
  let fall = check ~ctx (neg :: sliced) in
  (taken, fall)

(** A concrete value for [e] consistent with [constraints], if any.  The
    model cache is bypassed so the pick depends only on the constraint set,
    not on the context's history (see {!check_ctx}). *)
let get_value ?(ctx = default_ctx) ~constraints e =
  match Expr.to_const e with
  | Some v -> Some v
  | None -> (
      let sliced = slice ~seed_vars:(Expr.vars e) constraints in
      match check_ctx ~use_model_cache:false ctx sliced with
      | Sat m -> Some (Expr.eval m e)
      | Unsat | Unknown -> None)

(** Must [e] evaluate to a single value under [constraints]?  Returns that
    value when it is unique. *)
let get_unique_value ?(ctx = default_ctx) ~constraints e =
  match Expr.to_const e with
  | Some v -> Some v
  | None -> (
      match get_value ~ctx ~constraints e with
      | None -> None
      | Some v ->
          let differs = Expr.ne e (Expr.const ~width:(Expr.width e) v) in
          (match check_with ~ctx ~constraints differs with
          | Unsat -> Some v
          | Sat _ | Unknown -> None))

(** Up to [limit] distinct concrete values for [e] under [constraints].
    Deterministic: enumeration bypasses the model cache. *)
let get_values ?(ctx = default_ctx) ~constraints ~limit e =
  (* The slice depends only on [e]'s variables and the constraint set,
     both loop-invariant: blocking constraints added during enumeration
     mention only variables of [e], which are in the seed already. *)
  let sliced = slice ~seed_vars:(Expr.vars e) constraints in
  let rec go acc extra n =
    if n = 0 then List.rev acc
    else
      match check_ctx ~use_model_cache:false ctx (extra @ sliced) with
      | Sat m ->
          let v = Expr.eval m e in
          let block = Expr.ne e (Expr.const ~width:(Expr.width e) v) in
          go (v :: acc) (block :: extra) (n - 1)
      | Unsat | Unknown -> List.rev acc
  in
  go [] [] limit
