(** High-level constraint solver used by the symbolic execution engine.

    Sits above {!Bitblast}/{!Sat} and adds the optimizations KLEE/STP give
    the paper's prototype: independent-constraint slicing, a model cache
    (recent satisfying assignments re-tried by evaluation before any SAT
    call), an unsatisfiable-set cache, and statistics for the Fig. 9
    benchmarks.

    All mutable solver state lives in an explicit {!ctx}; every query
    function takes an optional [?ctx] defaulting to {!default_ctx}, so
    legacy single-threaded callers are unaffected while parallel workers
    ({!S2e_core.Parallel}) thread a private context each. *)

open S2e_expr

type result = Sat of Expr.model | Unsat | Unknown

type stats = {
  mutable queries : int;
  mutable sat_queries : int; (** queries that reached the SAT core *)
  mutable cache_hits : int;
  mutable unknowns : int;
      (** queries answered [Unknown] — conflict budget or wall-clock
          watchdog exhausted, or an injected solver fault.  Counted
          separately so value-picking callers returning [None] on
          [Unknown] never silently masquerade as unsatisfiable. *)
  mutable total_time : float;
  mutable max_time : float;
  mutable prefix_reused : int;
      (** queries whose constraint prefix — the assumption stack below the
          query-specific condition, hashed with the interned per-node
          hashes — this context had already seen.  The share of
          [total_time] spent in such queries bounds what an incremental
          (assumption-stack) solver could save. *)
  mutable prefix_reused_time : float;
}

type model_ring
(** Bounded ring of recently found models, most recent first.  Inspect
    through {!models} / {!latest_model}; drop through {!clear_caches}. *)

type ctx = {
  ctx_stats : stats;
  model_cache : model_ring;
  unsat_cache : (int, Expr.t list list) Hashtbl.t;
      (** Keyed by a mix of the constraints' interned hashes; both the
          per-key entry list and the key population are bounded. *)
  seen_prefixes : (int, unit) Hashtbl.t;
      (** Constraint-prefix hashes this context has queried before; feeds
          [stats.prefix_reused].  Bounded like the unsat cache. *)
  max_conflicts : int ref;
      (** SAT-core conflict budget per query; exceeding it yields
          [Unknown]. *)
  timeout_ms : float option ref;
      (** Wall-clock watchdog per SAT-core call ([--solver-timeout-ms]);
          exceeding it yields [Unknown]. *)
}
(** One solver context: caches + statistics + budgets.  A context is
    single-threaded; concurrent domains must each own one. *)

val create_ctx : ?max_conflicts:int -> ?timeout_ms:float -> unit -> ctx
(** A fresh context with empty caches and zeroed statistics.
    [timeout_ms] defaults to {!default_timeout_ms}'s current value. *)

val default_timeout_ms : float option ref
(** Watchdog inherited by every context {!create_ctx} makes afterwards
    (parallel/distributed workers create contexts internally).  Set it
    through {!set_default_timeout_ms}. *)

val set_default_timeout_ms : float option -> unit
(** Set {!default_timeout_ms} and retrofit {!default_ctx}. *)

val default_ctx : ctx
(** The context used when [?ctx] is omitted — the process-wide solver
    state legacy callers share. *)

val new_stats : unit -> stats

val reset_stats : ?ctx:ctx -> unit -> unit
(** Zero the context's statistics (default: {!default_ctx}'s). *)

val clear_caches : ctx -> unit
(** Drop the model and unsat caches (statistics are untouched). *)

val merge_stats : into:stats -> stats -> unit
(** Accumulate [src] into [into]: sums counters and times, maxes
    [max_time].  Used to fold per-worker statistics into an aggregate. *)

val stats : stats
(** = [default_ctx.ctx_stats]. *)

val models : ctx -> Expr.model list
(** The context's cached models, most recent first.  Used by the cache
    ablation and tests. *)

val latest_model : ctx -> Expr.model option
(** The most recently found model, if any — what graceful degradation
    concretizes with when a fork-point query times out. *)

val max_conflicts : int ref
(** = [default_ctx.max_conflicts]. *)

val slice : seed_vars:Expr.Int_set.t -> Expr.t list -> Expr.t list
(** Keep only constraints transitively sharing variables with
    [seed_vars]. *)

val check : ?ctx:ctx -> Expr.t list -> result
(** Is the conjunction satisfiable?  Returns a model on success. *)

val check_with : ?ctx:ctx -> constraints:Expr.t list -> Expr.t -> result
(** Satisfiability of [constraints ∧ cond], slicing [constraints] around
    [cond]'s variables: the branch-feasibility query. *)

val get_value : ?ctx:ctx -> constraints:Expr.t list -> Expr.t -> int64 option
(** A concrete value for the expression consistent with the constraints.
    The pick is a pure function of the constraint set (the model cache is
    bypassed), so serial and parallel exploration concretize
    identically. *)

val get_unique_value :
  ?ctx:ctx -> constraints:Expr.t list -> Expr.t -> int64 option
(** The expression's value when the constraints determine it uniquely. *)

val get_values :
  ?ctx:ctx -> constraints:Expr.t list -> limit:int -> Expr.t -> int64 list
(** Up to [limit] distinct feasible values, deterministically
    enumerated. *)
