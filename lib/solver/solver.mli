(** High-level constraint solver used by the symbolic execution engine.

    Sits above {!Bitblast}/{!Sat} and adds the optimizations KLEE/STP give
    the paper's prototype: independent-constraint slicing, a model cache
    (recent satisfying assignments re-tried by evaluation before any SAT
    call), an unsatisfiable-set cache, and statistics for the Fig. 9
    benchmarks.

    All mutable solver state lives in an explicit {!ctx}; every query
    function takes an optional [?ctx] defaulting to {!default_ctx}, so
    legacy single-threaded callers are unaffected while parallel workers
    ({!S2e_core.Parallel}) thread a private context each. *)

open S2e_expr

type result = Sat of Expr.model | Unsat | Unknown

(** SAT-core strategy for verdict queries ([--solver=...]):
    [Incremental] keeps a small ring of live SAT instances keyed on
    constraint-prefix hashes — a query whose prefix matches a live
    instance pops back to the common ancestor assumption level and asserts
    only the suffix, reusing the variable table, Tseitin encodings and
    learned clauses.  [Fresh] solves every query on a cold instance (the
    escape hatch and differential baseline).  [Portfolio] races two cold
    instances with different branching seeds in alternating conflict
    slices under the watchdog.

    Value-producing queries ({!get_value}, {!check_model}) solve cold in
    every mode, so the concrete values the engine pins — and hence the
    explored path set and emitted test cases — are mode-independent. *)
type mode = Fresh | Incremental | Portfolio

val mode_name : mode -> string
val mode_of_string : string -> mode option

type stats = {
  mutable queries : int;
  mutable sat_queries : int; (** queries that reached the SAT core *)
  mutable cache_hits : int;
  mutable unknowns : int;
      (** queries answered [Unknown] — conflict budget or wall-clock
          watchdog exhausted, or an injected solver fault.  Counted
          separately so value-picking callers returning [None] on
          [Unknown] never silently masquerade as unsatisfiable. *)
  mutable total_time : float;
  mutable max_time : float;
  mutable prefix_reused : int;
      (** queries whose constraint prefix — the assumption stack below the
          query-specific condition, hashed with the interned per-node
          hashes — this context had already seen.  The share of
          [total_time] spent in such queries bounds what an incremental
          (assumption-stack) solver could save. *)
  mutable prefix_reused_time : float;
  mutable inc_hits : int;
      (** realized incremental reuse: probes answered on a live instance
          whose assumption stack matched the query's whole prefix *)
  mutable inc_partials : int;
      (** probes that popped a live instance to a common ancestor and
          asserted only a suffix *)
  mutable sat_learned : int;
      (** SAT-core learned clauses created, summed over instances *)
  mutable sat_kept : int;
      (** learned clauses currently live in the instance ring — the pool
          future prefix-matching queries reuse *)
}

type model_ring
(** Bounded ring of recently found models, most recent first.  Inspect
    through {!models} / {!latest_model}; drop through {!clear_caches}. *)

type instance
(** A live SAT instance of the incremental ring: a persistent
    {!Sat.t}/{!Bitblast.ctx} pair plus the constraint stack currently
    asserted as retractable assumption frames. *)

type ctx = {
  ctx_stats : stats;
  model_cache : model_ring;
  unsat_cache : (int, Expr.t list list) Hashtbl.t;
      (** Keyed by a mix of the constraints' interned hashes; both the
          per-key entry list and the key population are bounded. *)
  seen_prefixes : (int, unit) Hashtbl.t;
      (** Constraint-prefix hashes this context has queried before; feeds
          [stats.prefix_reused].  Bounded like the unsat cache. *)
  max_conflicts : int ref;
      (** SAT-core conflict budget per query; exceeding it yields
          [Unknown]. *)
  timeout_ms : float option ref;
      (** Wall-clock watchdog per SAT-core call ([--solver-timeout-ms]);
          exceeding it yields [Unknown]. *)
  mode : mode ref;  (** SAT-core strategy for verdict queries *)
  insts : instance option array;
      (** The incremental instance ring (LRU, bounded size and per-instance
          clause budget).  Empty in [Fresh]/[Portfolio] modes. *)
  mutable inst_tick : int;
}
(** One solver context: caches + statistics + budgets.  A context is
    single-threaded; concurrent domains must each own one. *)

val create_ctx :
  ?max_conflicts:int -> ?timeout_ms:float -> ?mode:mode -> unit -> ctx
(** A fresh context with empty caches and zeroed statistics.
    [timeout_ms] defaults to {!default_timeout_ms}'s current value and
    [mode] to {!default_mode}'s. *)

val default_timeout_ms : float option ref
(** Watchdog inherited by every context {!create_ctx} makes afterwards
    (parallel/distributed workers create contexts internally).  Set it
    through {!set_default_timeout_ms}. *)

val set_default_timeout_ms : float option -> unit
(** Set {!default_timeout_ms} and retrofit {!default_ctx}. *)

val default_mode : mode ref
(** Strategy inherited by contexts created afterwards ([--solver=...]).
    Defaults to [Incremental].  Set through {!set_default_mode}. *)

val set_default_mode : mode -> unit
(** Set {!default_mode} and retrofit {!default_ctx}. *)

val default_ctx : ctx
(** The context used when [?ctx] is omitted — the process-wide solver
    state legacy callers share. *)

val new_stats : unit -> stats

val reset_stats : ?ctx:ctx -> unit -> unit
(** Zero the context's statistics (default: {!default_ctx}'s). *)

val clear_caches : ctx -> unit
(** Drop the model and unsat caches (statistics are untouched). *)

val merge_stats : into:stats -> stats -> unit
(** Accumulate [src] into [into]: sums counters and times, maxes
    [max_time].  Used to fold per-worker statistics into an aggregate. *)

val stats : stats
(** = [default_ctx.ctx_stats]. *)

val models : ctx -> Expr.model list
(** The context's cached models, most recent first.  Used by the cache
    ablation and tests. *)

val latest_model : ctx -> Expr.model option
(** The most recently found model, if any — what graceful degradation
    concretizes with when a fork-point query times out. *)

val max_conflicts : int ref
(** = [default_ctx.max_conflicts]. *)

val slice : seed_vars:Expr.Int_set.t -> Expr.t list -> Expr.t list
(** Keep only constraints transitively sharing variables with
    [seed_vars]. *)

val check : ?ctx:ctx -> Expr.t list -> result
(** Is the conjunction satisfiable?  Returns a model on success. *)

val check_with : ?ctx:ctx -> constraints:Expr.t list -> Expr.t -> result
(** Satisfiability of [constraints ∧ cond], slicing [constraints] around
    [cond]'s variables: the branch-feasibility query. *)

val check_model : ?ctx:ctx -> Expr.t list -> result
(** Like {!check} but pristine: bypasses the model cache and solves on a
    cold SAT instance in every {!mode}, so the returned model is a pure
    function of the constraint set.  Test-case extraction
    ({!S2e_core.Parallel.model_of}) uses this to keep case bytes identical
    across serial / parallel / incremental / fresh runs. *)

val check_branch :
  ?ctx:ctx -> constraints:Expr.t list -> Expr.t -> result * result
(** Feasibility of both sides of a fork: [(check (cond ∧ C), check (¬cond
    ∧ C))] over a single shared slice.  In incremental mode the two probes
    land on the same live SAT instance — the second reuses the first's
    encoding and learned clauses. *)

val get_value : ?ctx:ctx -> constraints:Expr.t list -> Expr.t -> int64 option
(** A concrete value for the expression consistent with the constraints.
    The pick is a pure function of the constraint set (the model cache is
    bypassed), so serial and parallel exploration concretize
    identically. *)

val get_unique_value :
  ?ctx:ctx -> constraints:Expr.t list -> Expr.t -> int64 option
(** The expression's value when the constraints determine it uniquely. *)

val get_values :
  ?ctx:ctx -> constraints:Expr.t list -> limit:int -> Expr.t -> int64 list
(** Up to [limit] distinct feasible values, deterministically
    enumerated. *)
