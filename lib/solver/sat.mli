(** A CDCL SAT solver: two-watched-literal propagation, first-UIP clause
    learning, activity-based decisions and geometric restarts — with an
    incremental assumption-stack interface that keeps the variable table,
    watched-literal structures, and learned clauses alive across queries.
    The backend of {!Bitblast}, playing the role STP's SAT core plays in
    the paper's prototype. *)

type lit = int

val pos : int -> lit
(** Positive literal of a variable. *)

val neg : int -> lit
(** Negative literal of a variable. *)

val lit_var : lit -> int
val lit_neg : lit -> lit
val lit_sign : lit -> bool
(** [true] for positive literals. *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its index. *)

val add_clause : t -> lit list -> unit
(** Add a permanent problem clause (at decision level 0).  Tautologies are
    dropped; an empty clause makes the instance unsatisfiable.  Safe to
    call between incremental solves. *)

val push : t -> unit
(** Open a retractable assumption frame — a decision-level checkpoint. *)

val assume : t -> lit -> unit
(** Assert a literal within the current top frame: it holds in every
    subsequent {!solve} until the frame is {!pop}ped.  Unlike
    [add_clause [l]], the assertion is a search-time decision, not a
    clause, so it can be retracted in O(1). *)

val pop : t -> unit
(** Retract the top assumption frame.  Learned clauses are retained: every
    clause learned under assumptions is implied by the permanent clause set
    alone (assumption literals enter learned clauses as ordinary literals,
    never as resolved-away premises), so retention is sound at level 0.
    @raise Invalid_argument if no frame is open. *)

val frames : t -> int
(** Number of open assumption frames. *)

type result = Sat | Unsat | Unknown

val solve : ?max_conflicts:int -> ?deadline:float -> t -> result
(** Solve the permanent clause set under the stacked assumptions.
    [Unsat] under a non-empty assumption stack does not poison the
    instance — popping back and solving again works.  [Unknown] is
    returned when the conflict budget is exhausted or the wall-clock
    [deadline] (an absolute [Unix.gettimeofday] value) passes — the
    solver watchdog. *)

val solve_assuming :
  ?max_conflicts:int -> ?deadline:float -> t -> lit list -> result
(** {!solve} with extra assumption literals for this call only: the probe
    literals are retracted automatically when the call returns, without
    touching the frame stack. *)

val model_value : t -> int -> bool
(** Value of a variable in the model found by the last successful
    {!solve}. *)

val perturb : t -> int -> unit
(** Overwrite the saved phase of every current variable from a stream
    seeded by the argument — gives portfolio instances distinct early
    search trajectories over identical clauses.  Deterministic. *)

val size : t -> int
(** Current clause count — a memory-footprint proxy for retiring
    long-lived incremental instances. *)

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learned : int;  (** learned clauses ever created (excluding units) *)
  learned_kept : int;
      (** learned clauses currently live, i.e. surviving reduction/pops *)
}

val stats : t -> stats
