(** A CDCL SAT solver: two-watched-literal propagation, first-UIP clause
    learning, activity-based decisions and geometric restarts.  The backend
    of {!Bitblast}, playing the role STP's SAT core plays in the paper's
    prototype. *)

type lit = int

val pos : int -> lit
(** Positive literal of a variable. *)

val neg : int -> lit
(** Negative literal of a variable. *)

val lit_var : lit -> int
val lit_neg : lit -> lit
val lit_sign : lit -> bool
(** [true] for positive literals. *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its index. *)

val add_clause : t -> lit list -> unit
(** Add a problem clause (at decision level 0).  Tautologies are dropped;
    an empty clause makes the instance unsatisfiable. *)

type result = Sat | Unsat | Unknown

val solve : ?max_conflicts:int -> ?deadline:float -> t -> result
(** Solve the current clause set.  [Unknown] is returned when the conflict
    budget is exhausted or the wall-clock [deadline] (an absolute
    [Unix.gettimeofday] value) passes — the solver watchdog. *)

val model_value : t -> int -> bool
(** Value of a variable in the model found by the last successful
    {!solve}. *)

val stats : t -> int * int * int
(** (conflicts, decisions, propagations). *)
