(** PerformanceProfile: the heart of PROFS (paper section 6.1.3).

    Counts instructions along each path and simulates a configurable cache
    hierarchy plus TLB and page-fault model for every fetch and data
    access.  The per-path simulator state is cloned on fork so each path's
    counts reflect exactly its own history — the multi-path profiling no
    sampling profiler can do.

    Per-path instruction counts come straight from the engine's own
    [State.instret] (forks inherit it, so it is exactly the path's executed
    instructions); the plugin used to keep a private duplicate.  Aggregate
    counts (instructions/sec, forks, solver share) live in the lib/obs
    metrics registry, not here. *)

open S2e_core
module Hierarchy = S2e_cachesim.Hierarchy

type pstate = {
  hier : Hierarchy.t;
  mutable reads : int;
  mutable writes : int;
}

type report = {
  r_path : int;
  r_status : string;
  r_instructions : int;
  r_reads : int;
  r_writes : int;
  r_totals : Hierarchy.totals;
}

type t = {
  engine : Executor.t;
  per_path : (int, pstate) Hashtbl.t;
  mutable reports : report list;
  (* "best case" search support: kill paths exceeding the current minimum *)
  mutable min_bound : int option;
  mutable track_min : bool;
}

let pstate t (s : State.t) =
  match Hashtbl.find_opt t.per_path s.State.id with
  | Some p -> p
  | None ->
      let p = { hier = Hierarchy.create (); reads = 0; writes = 0 } in
      Hashtbl.replace t.per_path s.State.id p;
      p

let attach engine =
  let t =
    {
      engine;
      per_path = Hashtbl.create 64;
      reports = [];
      min_bound = None;
      track_min = false;
    }
  in
  Events.reg_before_instr engine.Executor.events (fun s addr _ ->
      let p = pstate t s in
      Hierarchy.fetch p.hier addr;
      (* Best-case-input search: abandon paths that already exceed the
         best bound seen so far (paper's modified PerformanceProfile +
         PathKiller combination). *)
      match t.min_bound with
      | Some m when t.track_min && s.State.instret > m ->
          Executor.kill_state engine s "exceeds best-case bound"
      | _ -> ());
  Events.reg_memory_access engine.Executor.events (fun ma ->
      let s = ma.Events.ma_state in
      let p = pstate t s in
      if ma.ma_is_write then p.writes <- p.writes + 1
      else p.reads <- p.reads + 1;
      Hierarchy.data p.hier ma.ma_concrete_addr);
  Events.reg_fork engine.Executor.events (fun parent child _ ->
      match Hashtbl.find_opt t.per_path parent.State.id with
      | Some p ->
          Hashtbl.replace t.per_path child.State.id
            { hier = Hierarchy.clone p.hier; reads = p.reads; writes = p.writes }
      | None -> ());
  Events.reg_state_end engine.Executor.events (fun s ->
      (match Hashtbl.find_opt t.per_path s.State.id with
      | Some p ->
          (if t.track_min && s.State.status = State.Halted then
             match t.min_bound with
             | None -> t.min_bound <- Some s.State.instret
             | Some m ->
                 if s.State.instret < m then t.min_bound <- Some s.State.instret);
          t.reports <-
            {
              r_path = s.State.id;
              r_status = State.status_string s.State.status;
              r_instructions = s.State.instret;
              r_reads = p.reads;
              r_writes = p.writes;
              r_totals = Hierarchy.totals p.hier;
            }
            :: t.reports
      | None -> ());
      Hashtbl.remove t.per_path s.State.id)
  |> fun () -> t

(** Enable best-case-input search mode. *)
let track_best_case t = t.track_min <- true

let reports t = List.rev t.reports

(** Reports for paths that completed normally. *)
let completed_reports t =
  List.filter (fun r -> r.r_status = "halted") (reports t)

let envelope t =
  match completed_reports t with
  | [] -> None
  | r :: rest ->
      Some
        (List.fold_left
           (fun (lo, hi) r ->
             (min lo r.r_instructions, max hi r.r_instructions))
           (r.r_instructions, r.r_instructions)
           rest)
