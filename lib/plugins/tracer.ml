(** ExecutionTracer: selectively records the instructions executed along
    each path, with memory accesses, register values and hardware I/O
    (paper section 4.1).  REV+ feeds these traces to its offline CFG
    recovery.

    Every recorded event is also forwarded to {!S2e_obs.Trace} (as
    path-tagged instants, when tracing is enabled) so plugin activity
    lands on the same merged timeline as the engine's own events; the
    per-path event lists below remain only for the offline consumers
    ([finished_traces], [touched_addrs]). *)

open S2e_core
module Expr = S2e_expr.Expr
module Obs = S2e_obs

let t_insn = Obs.Trace.intern "tracer.insn"
let t_mem_r = Obs.Trace.intern "tracer.mem.read"
let t_mem_w = Obs.Trace.intern "tracer.mem.write"
let t_io_r = Obs.Trace.intern "tracer.io.read"
let t_io_w = Obs.Trace.intern "tracer.io.write"
let t_irq = Obs.Trace.intern "tracer.irq"

type event =
  | T_insn of { addr : int; insn : S2e_isa.Insn.t }
  | T_mem of { addr : int; value : Expr.t; is_write : bool; size : int }
  | T_io of { port : int; value : Expr.t; is_write : bool }
  | T_irq of int

type trace = {
  path_id : int;
  mutable events : event list; (* newest first *)
  (* Length of [events], maintained incrementally: the cap check in
     [record] runs per event, and [List.length] there would make tracing
     O(n²) in the trace length. *)
  mutable count : int;
}

type t = {
  traces : (int, trace) Hashtbl.t;    (* per live path *)
  mutable finished : trace list;
  mutable trace_mem : bool;
  mutable only_range : (int * int) option; (* restrict instruction tracing *)
  mutable max_events : int;
}

let get_trace t id =
  match Hashtbl.find_opt t.traces id with
  | Some tr -> tr
  | None ->
      let tr = { path_id = id; events = []; count = 0 } in
      Hashtbl.replace t.traces id tr;
      tr

(* The Obs.Trace ring bounds itself, so forwarding ignores [max_events]
   (which only caps the in-memory per-path history). *)
let forward id ev =
  if Obs.Trace.enabled () then
    match ev with
    | T_insn { addr; _ } -> Obs.Trace.instant ~path:id ~a:addr t_insn
    | T_mem { addr; is_write; size; _ } ->
        Obs.Trace.instant ~path:id ~a:addr ~b:size
          (if is_write then t_mem_w else t_mem_r)
    | T_io { port; is_write; _ } ->
        Obs.Trace.instant ~path:id ~a:port (if is_write then t_io_w else t_io_r)
    | T_irq irq -> Obs.Trace.instant ~path:id ~a:irq t_irq

let record t id ev =
  forward id ev;
  let tr = get_trace t id in
  if tr.count < t.max_events then begin
    tr.events <- ev :: tr.events;
    tr.count <- tr.count + 1
  end

let attach ?(trace_mem = false) ?only_range engine =
  let t =
    {
      traces = Hashtbl.create 64;
      finished = [];
      trace_mem;
      only_range;
      max_events = 200_000;
    }
  in
  let in_range addr =
    match t.only_range with None -> true | Some (lo, hi) -> addr >= lo && addr < hi
  in
  Events.reg_before_instr engine.Executor.events (fun s addr insn ->
      if in_range addr then record t s.State.id (T_insn { addr; insn }));
  if trace_mem then
    Events.reg_memory_access engine.Executor.events (fun ma ->
        if in_range ma.Events.ma_state.State.pc then
          record t ma.ma_state.State.id
            (T_mem
               {
                 addr = ma.ma_concrete_addr;
                 value = ma.ma_value;
                 is_write = ma.ma_is_write;
                 size = ma.ma_size;
               }));
  Events.reg_interrupt engine.Executor.events (fun s irq ->
      record t s.State.id (T_irq irq));
  Events.reg_fork engine.Executor.events (fun parent child _cond ->
      (* The child inherits the parent's history. *)
      let ptr = get_trace t parent.State.id in
      Hashtbl.replace t.traces child.State.id
        { path_id = child.State.id; events = ptr.events; count = ptr.count });
  Events.reg_state_end engine.Executor.events (fun s ->
      match Hashtbl.find_opt t.traces s.State.id with
      | Some tr ->
          t.finished <- tr :: t.finished;
          Hashtbl.remove t.traces s.State.id
      | None -> ());
  t

(** All completed traces, oldest first; events within a trace oldest
    first. *)
let finished_traces t =
  List.rev_map (fun tr -> { tr with events = List.rev tr.events }) t.finished

(** Addresses of instructions observed across all finished traces. *)
let touched_addrs t =
  let set = Hashtbl.create 1024 in
  List.iter
    (fun tr ->
      List.iter
        (function T_insn { addr; _ } -> Hashtbl.replace set addr () | _ -> ())
        tr.events)
    t.finished;
  set
