(** Guest workload programs: the driver exerciser (DDT+/REV+ harness), the
    Apache-style URL parser and the ping client (PROFS targets, section
    6.1.3), and the Mua scripting-language interpreter (the Lua analogue of
    section 6.3). *)

(* Calls every driver entry point in sequence, like the in-guest script the
   paper uses ("we use a script in the guest OS to call the entry points of
   the drivers"). *)
let exerciser =
  {|
int main() {
  __sti();
  char buf[32];
  char rx[48];
  for (int i = 0; i < 16; i = i + 1) buf[i] = 'A' + i;
  driver_send(buf, 16);
  driver_recv(rx, 48);
  driver_query(1);
  driver_query(2);
  driver_query(3);
  driver_set(3, 1);
  driver_send(buf, 8);
  driver_recv(rx, 48);
  driver_unload();
  return 0;
}
|}

(* Apache-style URL parser.  Instruction counts grow by a fixed amount per
   '/'-separated path segment, reproducing the paper's per-'/'-character
   observation. *)
let urlparse =
  {|
int is_alnum(int c) {
  if (c >= 'a' && c <= 'z') return 1;
  if (c >= 'A' && c <= 'Z') return 1;
  if (c >= '0' && c <= '9') return 1;
  return 0;
}

int is_host_char(int c) {
  if (is_alnum(c)) return 1;
  if (c == '.' || c == '-') return 1;
  return 0;
}

int is_path_char(int c) {
  if (is_alnum(c)) return 1;
  if (c == '.' || c == '-' || c == '_' || c == '~' || c == '%') return 1;
  return 0;
}

int url_segments = 0;
int url_port = 0;
int url_has_query = 0;

// Returns 0 when the URL is well-formed, a negative error code otherwise.
int parse_url(char *url) {
  url_segments = 0;
  url_port = 80;
  url_has_query = 0;
  // scheme
  char scheme[8];
  scheme[0] = 'h'; scheme[1] = 't'; scheme[2] = 't'; scheme[3] = 'p';
  for (int k = 0; k < 4; k = k + 1) {
    if (url[k] != scheme[k]) return 0 - 1;
  }
  if (url[4] != ':' || url[5] != '/' || url[6] != '/') return 0 - 1;
  int i = 7;
  // host
  int host_len = 0;
  while (url[i] && url[i] != '/' && url[i] != ':' && url[i] != '?') {
    if (!is_host_char(url[i])) return 0 - 2;
    host_len = host_len + 1;
    i = i + 1;
  }
  if (host_len == 0) return 0 - 2;
  // optional port
  if (url[i] == ':') {
    i = i + 1;
    int port = 0;
    int digits = 0;
    while (url[i] >= '0' && url[i] <= '9') {
      port = port * 10 + (url[i] - '0');
      digits = digits + 1;
      i = i + 1;
    }
    if (digits == 0 || port > 65535) return 0 - 3;
    url_port = port;
  }
  // path: each '/' opens a segment that is scanned and normalized
  while (url[i] == '/') {
    i = i + 1;
    url_segments = url_segments + 1;
    int seg_len = 0;
    int dots = 0;
    while (url[i] && url[i] != '/' && url[i] != '?') {
      if (!is_path_char(url[i])) return 0 - 4;
      if (url[i] == '.') dots = dots + 1;
      seg_len = seg_len + 1;
      i = i + 1;
    }
    if (dots == seg_len && seg_len > 2) return 0 - 5;  // "..." traversal
  }
  // query
  if (url[i] == '?') {
    url_has_query = 1;
    i = i + 1;
    while (url[i]) {
      if (!is_path_char(url[i]) && url[i] != '=' && url[i] != '&') return 0 - 6;
      i = i + 1;
    }
  }
  if (url[i]) return 0 - 7;
  return 0;
}

int main() {
  char url[20];
  kmemset(url, 0, 20);
  kmemcpy(url, "http://h/abc", 12);
  __s2e_sym_mem(url + 8, 8, 1);
  url[16] = 0;
  return parse_url(url);
}
|}

(* The ping client.  [buggy = true] keeps the record-route option-parsing
   infinite loop the paper found; the patched version breaks out of the
   loop as the real fix did. *)
let ping ~buggy =
  let rr_short_case =
    if buggy then "continue;" (* off not advanced: infinite loop *)
    else "break;"
  in
  Printf.sprintf
    {|
const int ICMP_LEN = 28;

int ping_sum = 0;

// Parse an ICMP echo reply inside an IPv4 packet (with options).
int icmp_parse(char *p, int len) {
  if (len < 20) return 0 - 1;
  int ver = (p[0] >> 4) & 0xF;
  if (ver != 4) return 0 - 2;
  int hlen = (p[0] & 0xF) * 4;
  if (hlen < 20 || hlen > len) return 0 - 3;
  // walk IP options
  int off = 20;
  while (off < hlen) {
    int opt = p[off];
    if (opt == 0) break;                 // end of option list
    if (opt == 1) { off = off + 1; continue; } // NOP
    if (off + 1 >= hlen) return 0 - 4;
    int optlen = p[off + 1];
    if (opt == 7) {
      // record route: needs at least 3 header bytes + one address
      if (optlen < 4) {
        %s
      }
      int naddr = (optlen - 3) / 4;
      int acc = 0;
      for (int i = 0; i < naddr; i = i + 1) {
        if (off + 3 + i * 4 < len) acc = acc + p[off + 3 + i * 4];
      }
      ping_sum = ping_sum + acc;
      off = off + optlen;
    } else {
      if (optlen < 2) return 0 - 5;
      off = off + optlen;
    }
  }
  if (hlen + 8 > len) return 0 - 6;
  // ICMP type/code: echo reply is 0/0
  if (p[hlen] != 0) return 0 - 7;
  if (p[hlen + 1] != 0) return 0 - 8;
  // checksum-ish accumulation over the payload
  int sum = 0;
  for (int i = hlen; i < len; i = i + 1) sum = sum + p[i];
  return sum & 0xFFFF;
}

int main() {
  char pkt[32];
  kmemset(pkt, 0, 32);
  pkt[0] = 0x45;         // v4, hlen 20
  pkt[20] = 8;           // echo request
  net_send(pkt, ICMP_LEN);
  char reply[40];
  kmemset(reply, 0, 40);
  int n = net_poll(reply, 40);
  if (n < ICMP_LEN) n = ICMP_LEN;
  if (n > 36) n = 36;
  __s2e_sym_mem(reply, 28, 3);
  return icmp_parse(reply, n);
}
|}
    rr_short_case

(* Mua: a tiny scripting language with a lexer, a recursive-descent parser
   producing stack-machine bytecode, and an interpreter loop.  The paper's
   Lua experiment separates the parser (concrete domain) from the
   interpreter (symbolic domain); the well-known globals [mua_code] and
   [mua_code_len] let the harness inject symbolic opcodes after parsing,
   exactly like the paper inserts "suitably constrained symbolic Lua
   opcodes after the parser stage". *)
let mua =
  {|
const int OP_PUSH = 1;   // push next byte as literal
const int OP_LOAD = 2;   // push variable (next byte = index)
const int OP_STORE = 3;  // pop into variable
const int OP_ADD = 4;
const int OP_SUB = 5;
const int OP_MUL = 6;
const int OP_DIV = 7;
const int OP_LT  = 8;
const int OP_JZ  = 9;    // pop; jump to next byte if zero
const int OP_JMP = 10;
const int OP_PRINT = 11;
const int OP_HALT = 12;

char mua_src[48];
char mua_code[96];
int mua_code_len = 0;
int mua_pos = 0;
int mua_err = 0;

int mua_emit(int b) {
  if (mua_code_len >= 96) { mua_err = 1; return 0 - 1; }
  mua_code[mua_code_len] = b;
  mua_code_len = mua_code_len + 1;
  return mua_code_len - 1;
}

int mua_peek() { return mua_src[mua_pos]; }
int mua_next() { int c = mua_src[mua_pos]; if (c) mua_pos = mua_pos + 1; return c; }
int mua_skip_ws() {
  while (mua_peek() == ' ') mua_pos = mua_pos + 1;
  return 0;
}

int mua_factor() {
  mua_skip_ws();
  int c = mua_peek();
  if (c >= '0' && c <= '9') {
    int v = 0;
    while (mua_peek() >= '0' && mua_peek() <= '9') v = v * 10 + (mua_next() - '0');
    if (v > 255) { mua_err = 1; return 0 - 1; }
    mua_emit(OP_PUSH);
    mua_emit(v);
    return 0;
  }
  if (c >= 'a' && c <= 'z' && c != 'p' && c != 'w') {
    mua_next();
    mua_emit(OP_LOAD);
    mua_emit(c - 'a');
    return 0;
  }
  if (c == '(') {
    mua_next();
    mua_expr();
    mua_skip_ws();
    if (mua_next() != ')') { mua_err = 1; return 0 - 1; }
    return 0;
  }
  mua_err = 1;
  return 0 - 1;
}

int mua_term() {
  mua_factor();
  mua_skip_ws();
  while (mua_peek() == '*' || mua_peek() == '/') {
    int op = mua_next();
    mua_factor();
    if (op == '*') mua_emit(OP_MUL);
    else mua_emit(OP_DIV);
    mua_skip_ws();
  }
  return 0;
}

int mua_expr() {
  mua_term();
  mua_skip_ws();
  while (mua_peek() == '+' || mua_peek() == '-' || mua_peek() == '<') {
    int op = mua_next();
    mua_term();
    if (op == '+') mua_emit(OP_ADD);
    else if (op == '-') mua_emit(OP_SUB);
    else mua_emit(OP_LT);
    mua_skip_ws();
  }
  return 0;
}

// stmt: 'p' expr ';' | 'w' expr '{' block '}' | var '=' expr ';'
int mua_stmt() {
  mua_skip_ws();
  int c = mua_peek();
  if (c == 'p') {
    mua_next();
    mua_expr();
    mua_emit(OP_PRINT);
    mua_skip_ws();
    if (mua_next() != ';') { mua_err = 1; return 0 - 1; }
    return 0;
  }
  if (c == 'w') {
    mua_next();
    int top = mua_code_len;
    mua_expr();
    mua_emit(OP_JZ);
    int patch = mua_emit(0);
    mua_skip_ws();
    if (mua_next() != '{') { mua_err = 1; return 0 - 1; }
    mua_block();
    mua_skip_ws();
    if (mua_next() != '}') { mua_err = 1; return 0 - 1; }
    mua_emit(OP_JMP);
    mua_emit(top);
    mua_code[patch] = mua_code_len;
    return 0;
  }
  if (c >= 'a' && c <= 'z') {
    mua_next();
    mua_skip_ws();
    if (mua_next() != '=') { mua_err = 1; return 0 - 1; }
    mua_expr();
    mua_emit(OP_STORE);
    mua_emit(c - 'a');
    mua_skip_ws();
    if (mua_next() != ';') { mua_err = 1; return 0 - 1; }
    return 0;
  }
  mua_err = 1;
  return 0 - 1;
}

int mua_block() {
  mua_skip_ws();
  while (!mua_err && mua_peek() && mua_peek() != '}') {
    mua_stmt();
    mua_skip_ws();
  }
  return 0;
}

int mua_compile() {
  mua_pos = 0;
  mua_code_len = 0;
  mua_err = 0;
  mua_block();
  mua_emit(OP_HALT);
  if (mua_err) return 0 - 1;
  return mua_code_len;
}

int mua_out = 0;

// The interpreter: a bytecode dispatch loop over a small stack machine.
// This is the "unit" of the Lua experiment.
int mua_interp() {
  int stack[16];
  int vars[26];
  int sp = 0;
  int pc = 0;
  int steps = 0;
  for (int i = 0; i < 26; i = i + 1) vars[i] = 0;
  while (steps < 500) {
    steps = steps + 1;
    if (pc < 0 || pc >= 96) return 0 - 1;
    int op = mua_code[pc];
    pc = pc + 1;
    if (op == OP_HALT) return mua_out;
    if (op == OP_PUSH) {
      if (sp >= 16) return 0 - 2;
      stack[sp] = mua_code[pc];
      pc = pc + 1;
      sp = sp + 1;
    } else if (op == OP_LOAD) {
      int idx = mua_code[pc];
      pc = pc + 1;
      if (idx >= 26) return 0 - 3;
      if (sp >= 16) return 0 - 2;
      stack[sp] = vars[idx];
      sp = sp + 1;
    } else if (op == OP_STORE) {
      int idx = mua_code[pc];
      pc = pc + 1;
      if (idx >= 26) return 0 - 3;
      if (sp < 1) return 0 - 4;
      sp = sp - 1;
      vars[idx] = stack[sp];
    } else if (op == OP_ADD || op == OP_SUB || op == OP_MUL || op == OP_DIV
               || op == OP_LT) {
      if (sp < 2) return 0 - 4;
      int b = stack[sp - 1];
      int a = stack[sp - 2];
      sp = sp - 1;
      int r = 0;
      if (op == OP_ADD) r = a + b;
      if (op == OP_SUB) r = a - b;
      if (op == OP_MUL) r = a * b;
      if (op == OP_DIV) { if (b == 0) return 0 - 5; r = a / b; }
      if (op == OP_LT) { if (a < b) r = 1; else r = 0; }
      stack[sp - 1] = r;
    } else if (op == OP_JZ) {
      int target = mua_code[pc];
      pc = pc + 1;
      if (sp < 1) return 0 - 4;
      sp = sp - 1;
      if (stack[sp] == 0) pc = target;
    } else if (op == OP_JMP) {
      pc = mua_code[pc];
    } else if (op == OP_PRINT) {
      if (sp < 1) return 0 - 4;
      sp = sp - 1;
      mua_out = stack[sp];
      kputint(mua_out);
      __out(0, 10);
    } else {
      return 0 - 6;                 // illegal opcode
    }
  }
  return 0 - 7;                     // step budget exhausted
}

int main() {
  kmemset(mua_src, 0, 48);
  kmemcpy(mua_src, "a=2;w a<6{a=a*2;}p a;", 21);
  int mode = reg_query_int("MuaSym", 0);
  if (mode == 1) {
    // SC-SE style: the program text itself is symbolic.
    __s2e_sym_mem(mua_src, 8, 4);
  }
  int n = mua_compile();
  if (n < 0) return 0 - 1;
  return mua_interp();
}
|}

(* Tiny 32-path symbolic loop: one symbolic byte, five tested bits.  Small
   enough to drain in well under a second, so differential smoke tests
   (--jobs N vs --procs N) can compare complete path sets. *)
let symloop =
  {|
int main() {
  char v[1];
  __s2e_sym_mem(v, 1, 1);
  int x = v[0];
  int acc = 0;
  for (int i = 0; i < 5; i = i + 1) {
    if ((x >> i) & 1) acc = acc + (i * 3 + 1);
  }
  if (acc > 20) return 1;
  return 0;
}
|}
