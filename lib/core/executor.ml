(** The selective symbolic execution engine (paper sections 2 and 5).

    Executes guest code over {!State.t}s whose registers and memory hold
    {!S2e_expr.Expr.t} values.  Instructions whose operands are concrete
    fold to constants through the expression smart constructors, so
    concrete-mode execution runs "natively" (modulo the engine's
    bookkeeping — which is precisely the concrete-mode overhead the paper
    measures in section 6.2).  When a branch condition is symbolic and the
    program counter is inside the unit, execution forks; outside the unit
    the active {!Consistency} model decides between forking, concretizing
    and aborting.  Symbolic⇄concrete conversions are lazy: values flow
    through the environment unconcretized until something actually branches
    on them or they reach a device. *)

open S2e_expr
open S2e_isa
module Vm = S2e_vm
module Dbt = S2e_dbt.Dbt
module Solver = S2e_solver.Solver
module Obs = S2e_obs

(* Telemetry (lib/obs).  The per-engine [stats] record below stays the
   per-worker view {!Parallel} aggregates; these registry metrics are the
   domain-sharded process-wide view the run-stats reporter streams.  Both
   are incremented at the same sites so totals cannot drift. *)
let m_instructions = Obs.Metrics.counter "engine.instructions"
let m_sym_instructions = Obs.Metrics.counter "engine.sym_instructions"
let m_forks = Obs.Metrics.counter "engine.forks"
let m_states_created = Obs.Metrics.counter "engine.states_created"
let m_states_completed = Obs.Metrics.counter "engine.states_completed"
let m_concretizations = Obs.Metrics.counter "engine.concretizations"
let m_aborts = Obs.Metrics.counter "engine.aborts"
let m_degradations = Obs.Metrics.counter "engine.degradations"
let m_incomplete = Obs.Metrics.counter "engine.incomplete_paths"
let m_live = Obs.Metrics.gauge ~merge:Obs.Metrics.Sum "engine.live_states"
let m_max_live = Obs.Metrics.gauge ~merge:Obs.Metrics.Max "engine.max_live_states"

let m_max_constraints =
  Obs.Metrics.gauge ~merge:Obs.Metrics.Max "engine.max_constraint_set"

let execute_phase = Obs.Span.phase "execute"
let fork_phase = Obs.Span.phase "fork"
let concretize_phase = Obs.Span.phase "concretize"

type config = {
  mutable consistency : Consistency.t;
  mutable page_size : int; (* solver page split for symbolic pointers *)
  mutable max_fork_depth : int;
  mutable use_simplifier : bool; (* ablation: bitfield simplifier on/off *)
  mutable lazy_concretization : bool; (* ablation: eager concretize at boundary *)
  mutable timer_divisor : int; (* virtual-clock slowdown in symbolic mode *)
  mutable symbolic_hardware_ports : (int * int) list; (* [lo, hi) ranges *)
  mutable max_states : int;
}

let default_config () =
  {
    consistency = Consistency.LC;
    page_size = 128;
    max_fork_depth = 64;
    use_simplifier = true;
    lazy_concretization = true;
    timer_divisor = 8;
    symbolic_hardware_ports = [];
    max_states = 8192;
  }

type stats = {
  mutable states_created : int;
  mutable states_completed : int;
  mutable max_live_states : int;
  mutable forks : int;
  mutable concrete_instret : int;
  mutable sym_instret : int;
  mutable footprint_watermark : int; (* sum of live state footprints, max *)
  mutable concretizations : int;
  mutable aborts : int;
  mutable degradations : int; (* forks degraded to one path on solver Unknown *)
}

let new_stats () =
  {
    states_created = 0;
    states_completed = 0;
    max_live_states = 0;
    forks = 0;
    concrete_instret = 0;
    sym_instret = 0;
    footprint_watermark = 0;
    concretizations = 0;
    aborts = 0;
    degradations = 0;
  }

(** Fold [src] into [into]: counters add, high watermarks take the max.
    The single aggregation used by {!Parallel} (across domain workers) and
    [Dist] (across worker processes), so the two schedulers cannot drift. *)
let merge_stats ~(into : stats) (src : stats) =
  into.states_created <- into.states_created + src.states_created;
  into.states_completed <- into.states_completed + src.states_completed;
  into.forks <- into.forks + src.forks;
  into.concrete_instret <- into.concrete_instret + src.concrete_instret;
  into.sym_instret <- into.sym_instret + src.sym_instret;
  into.concretizations <- into.concretizations + src.concretizations;
  into.aborts <- into.aborts + src.aborts;
  into.degradations <- into.degradations + src.degradations;
  if src.max_live_states > into.max_live_states then
    into.max_live_states <- src.max_live_states;
  if src.footprint_watermark > into.footprint_watermark then
    into.footprint_watermark <- src.footprint_watermark

type t = {
  config : config;
  events : Events.t;
  dbt : Dbt.t;
  modules : Module_map.t;
  mutable unit_ranges : (int * int) list; (* code ranges of the unit *)
  mutable searcher : Searcher.t;
  stats : stats;
  (* Solver context this engine threads through every query.  Defaults to
     the process-wide [Solver.default_ctx]; parallel workers install a
     private context each so caches and statistics never race. *)
  mutable solver : Solver.ctx;
  mutable live : State.t list;
  mutable base_mem : Bytes.t;
  (* LC interface annotations, keyed by environment function address. *)
  annotations : (int, t -> State.t -> unit) Hashtbl.t;
  mutable var_tags : (int * string) list; (* symbolic variable provenance *)
  mutable quiesce : unit -> unit;
      (* Release any deferred scheduling state (e.g. states parked at
         merge points) back into the searcher so [live] is
         self-describing.  Installed by the merge controller; called
         before snapshotting the frontier for another process. *)
}

let create ?(config = default_config ()) ?(solver = Solver.default_ctx) () =
  {
    config;
    events = Events.create ();
    dbt = Dbt.create ();
    modules = Module_map.create ();
    unit_ranges = [];
    searcher = Searcher.dfs ();
    stats = new_stats ();
    solver;
    live = [];
    base_mem = Bytes.create 0;
    annotations = Hashtbl.create 16;
    var_tags = [];
    quiesce = (fun () -> ());
  }

(** A view of a linked guest image: origin, raw code bytes, and module
    ranges [(name, code_start, code_end, data_end)].  Kept structural so the
    engine does not depend on the compiler. *)
type image_view = {
  l_origin : int;
  l_code : Bytes.t;
  l_modules : (string * int * int * int) list;
}

(** Load a linked guest image, registering its modules. *)
let load t (linked : image_view) =
  let mem = Bytes.make Vm.Layout.ram_size '\000' in
  Bytes.blit linked.l_code 0 mem linked.l_origin (Bytes.length linked.l_code);
  t.base_mem <- mem;
  List.iter
    (fun (name, code_start, code_end, data_end) ->
      Module_map.add t.modules ~name ~code_start ~code_end ~data_end)
    linked.l_modules

(** Declare which modules form the unit (multi-path domain): the
    CodeSelector configuration. *)
let set_unit t names =
  t.unit_ranges <-
    List.filter_map
      (fun name ->
        match Module_map.entry t.modules name with
        | Some e -> Some (e.code_start, e.code_end)
        | None -> None)
      names

let add_unit_range t lo hi = t.unit_ranges <- (lo, hi) :: t.unit_ranges

let in_unit t pc = List.exists (fun (lo, hi) -> pc >= lo && pc < hi) t.unit_ranges

let annotate t ~callee f = Hashtbl.replace t.annotations callee f

(** Create the initial execution state at the image entry point. *)
let boot t ?card_id ~entry () =
  let mem = Symmem.create ~base:(Bytes.copy t.base_mem) in
  let devices = Vm.Devices.create ?card_id () in
  let s = State.create ~mem ~devices ~pc:entry in
  t.stats.states_created <- t.stats.states_created + 1;
  Obs.Metrics.incr m_states_created;
  if Obs.Trace.enabled () then Obs.Trace.path_start ~path:s.id ~parent:(-1) ();
  s

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

exception Path_end (* current state stopped executing; scheduler takes over *)

let simplify t e = if t.config.use_simplifier then Simplifier.simplify e else e

let fresh_sym t name width =
  let v = Expr.fresh_var ~width name in
  (match v with
  | Expr.Var { id; _ } -> t.var_tags <- (id, name) :: t.var_tags
  | _ -> ());
  v

(* Numeric status code for the trace stream (see {!Obs.Trace.path_end}). *)
let trace_status = function
  | State.Active -> 0
  | State.Halted -> 1
  | State.Killed _ -> 2
  | State.Faulted _ -> 3
  | State.Aborted _ -> 4

let trace_path_end (s : State.t) =
  if Obs.Trace.enabled () then
    Obs.Trace.path_end ~path:s.id ~status:(trace_status s.status)
      ~incomplete:s.incomplete ()

let end_state t (s : State.t) status =
  s.status <- status;
  trace_path_end s;
  t.stats.states_completed <- t.stats.states_completed + 1;
  Obs.Metrics.incr m_states_completed;
  if s.incomplete then Obs.Metrics.incr m_incomplete;
  (match status with
  | State.Aborted _ ->
      t.stats.aborts <- t.stats.aborts + 1;
      Obs.Metrics.incr m_aborts
  | _ -> ());
  Events.state_end t.events s;
  t.searcher.remove s;
  t.live <- List.filter (fun s' -> s'.State.id <> s.State.id) t.live;
  Obs.Metrics.set m_live (List.length t.live);
  raise Path_end

let report_bug t (s : State.t) kind message =
  Events.bug t.events
    { bug_state = s; bug_kind = kind; bug_message = message; bug_pc = s.pc }

(* Concretize [e] in [s]: pick a feasible value, add the (soft) constraint
   pinning it, and return the concrete value.  This is the symbolic→concrete
   conversion of section 2.2. *)
let concretize t (s : State.t) e =
  match Expr.to_const e with
  | Some v -> v
  | None ->
      t.stats.concretizations <- t.stats.concretizations + 1;
      Obs.Metrics.incr m_concretizations;
      Obs.Span.timed concretize_phase (fun () ->
          match Solver.get_value ~ctx:t.solver ~constraints:s.constraints e with
          | Some v ->
              State.add_constraint s
                (Expr.eq e (Expr.const ~width:(Expr.width e) v));
              s.soft_constraints <- s.soft_constraints + 1;
              v
          | None -> end_state t s (State.Aborted "infeasible concretization"))

let concrete_addr t s e = Int64.to_int (concretize t s e) land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let mem_fault t s msg =
  report_bug t s "memory" msg;
  end_state t s (State.Faulted msg)

let do_read t (s : State.t) addr_e size =
  let read_concrete a =
    try if size = 1 then Expr.zext ~width:32 (Symmem.read_byte s.mem a)
      else Symmem.read_word s.mem a
    with Symmem.Fault m -> mem_fault t s m
  in
  match Expr.to_const addr_e with
  | Some a ->
      let a = Int64.to_int a in
      let v = read_concrete a in
      Events.memory_access t.events
        { ma_state = s; ma_addr = addr_e; ma_concrete_addr = a; ma_value = v;
          ma_is_write = false; ma_size = size;
          ma_pre_constraints = s.constraints };
      v
  | None ->
      (* Symbolic pointer. *)
      if
        (not (in_unit t s.pc))
        && t.config.consistency = Consistency.LC
        && Solver.get_unique_value ~ctx:t.solver ~constraints:s.constraints addr_e = None
      then
        end_state t s
          (State.Aborted "LC: symbolic address dereferenced in environment")
      else begin
        let pre_constraints = s.constraints in
        let anchor = concrete_addr t s addr_e in
        if anchor < 0 || anchor + size > Vm.Layout.ram_size then
          mem_fault t s (Printf.sprintf "symbolic pointer out of range: 0x%x" anchor)
        else begin
          (* Replace the just-added equality soft constraint with the weaker
             page constraint: the paper passes whole solver pages to the
             constraint solver rather than pinning the address. *)
          s.constraints <- pre_constraints;
          let v, in_page =
            try
              if size = 1 then
                let e, c =
                  Symmem.read_byte_sym s.mem ~page_size:t.config.page_size ~anchor addr_e
                in
                (Expr.zext ~width:32 e, c)
              else
                Symmem.read_word_sym s.mem ~page_size:t.config.page_size ~anchor addr_e
            with Symmem.Fault m -> mem_fault t s m
          in
          let v = simplify t v in
          Events.memory_access t.events
            { ma_state = s; ma_addr = addr_e; ma_concrete_addr = anchor;
              ma_value = v; ma_is_write = false; ma_size = size;
              ma_pre_constraints = pre_constraints };
          State.add_constraint s in_page;
          v
        end
      end

let do_write t (s : State.t) addr_e v size =
  let pre_constraints = s.constraints in
  let a =
    match Expr.to_const addr_e with
    | Some a -> Int64.to_int a
    | None ->
        if
          (not (in_unit t s.pc))
          && t.config.consistency = Consistency.LC
          && Solver.get_unique_value ~ctx:t.solver ~constraints:s.constraints addr_e = None
        then
          end_state t s
            (State.Aborted "LC: symbolic address written in environment")
        else concrete_addr t s addr_e
  in
  (try
     if size = 1 then s.mem <- Symmem.write_byte s.mem a (Expr.extract ~hi:7 ~lo:0 v)
     else s.mem <- Symmem.write_word s.mem a v
   with Symmem.Fault m -> mem_fault t s m);
  Dbt.invalidate t.dbt a;
  Events.memory_access t.events
    { ma_state = s; ma_addr = addr_e; ma_concrete_addr = a; ma_value = v;
      ma_is_write = true; ma_size = size; ma_pre_constraints = pre_constraints }

(* ------------------------------------------------------------------ *)
(* Forking and branches                                                *)
(* ------------------------------------------------------------------ *)

let do_fork t (s : State.t) cond ~taken_pc ~fall_pc =
  Obs.Span.timed fork_phase (fun () ->
      (* Parent takes the branch; child takes the fall-through. *)
      let child = State.fork s in
      t.stats.states_created <- t.stats.states_created + 1;
      t.stats.forks <- t.stats.forks + 1;
      Obs.Metrics.incr m_states_created;
      Obs.Metrics.incr m_forks;
      State.add_constraint s cond;
      State.add_constraint child (Expr.log_not cond);
      s.pc <- taken_pc;
      child.pc <- fall_pc;
      t.live <- child :: t.live;
      let live_count = List.length t.live in
      if live_count > t.stats.max_live_states then
        t.stats.max_live_states <- live_count;
      Obs.Metrics.set m_live live_count;
      Obs.Metrics.set m_max_live live_count;
      if Obs.Trace.enabled () then
        Obs.Trace.path_start ~path:child.id ~parent:s.id ();
      Events.fork t.events s child cond;
      t.searcher.add child;
      child)

(* Graceful degradation on solver Unknown at a fork (watchdog timeout,
   conflict-budget exhaustion or an injected solver fault): instead of
   forking both ways blind — which explodes paths exactly when queries
   get hard — commit to one side, mark the path incomplete, and account
   for the degradation.  [add]/[pc] are the chosen side's constraint and
   target. *)
let degrade_to t (s : State.t) ~add ~pc =
  t.stats.degradations <- t.stats.degradations + 1;
  Obs.Metrics.incr m_degradations;
  s.incomplete <- true;
  State.add_constraint s add;
  s.pc <- pc

(* Neither side is known infeasible but at least one is Unknown: follow
   the branch the way the all-zeros model takes it (follow-the-concrete,
   in the spirit of the paper's consistency-model concretizations).  The
   pick is deliberately history-free — the previous heuristic read the
   context's model cache, whose contents depend on the solver strategy, so
   fresh and incremental runs could degrade down different sides and the
   chaos differential (same case set under an injected fault plan) would
   not hold. *)
let degrade_concrete t (s : State.t) cond ~taken_pc ~fall_pc =
  if Expr.eval Expr.Int_map.empty cond = 1L then
    degrade_to t s ~add:cond ~pc:taken_pc
  else degrade_to t s ~add:(Expr.log_not cond) ~pc:fall_pc

(* Decide a branch with a symbolic condition. *)
let symbolic_branch t (s : State.t) cond ~taken_pc ~fall_pc =
  let model = t.config.consistency in
  let unit_here = in_unit t s.pc in
  let multipath = unit_here && s.multipath && model <> Consistency.SC_CE in
  if multipath then begin
    if not (Consistency.check_feasibility model) then begin
      (* RC-CC: follow both CFG edges, no solver, no constraints. *)
      if s.depth < t.config.max_fork_depth && List.length t.live < t.config.max_states
      then begin
        let child = State.fork s in
        t.stats.states_created <- t.stats.states_created + 1;
        t.stats.forks <- t.stats.forks + 1;
        Obs.Metrics.incr m_states_created;
        Obs.Metrics.incr m_forks;
        s.pc <- taken_pc;
        child.pc <- fall_pc;
        t.live <- child :: t.live;
        Obs.Metrics.set m_live (List.length t.live);
        if Obs.Trace.enabled () then
          Obs.Trace.path_start ~path:child.id ~parent:s.id ();
        Events.fork t.events s child cond;
        t.searcher.add child
      end
      else s.pc <- taken_pc
    end
    else begin
      (* One shared-prefix query pair: in incremental solver mode the two
         probes land on the same live SAT instance. *)
      let feas_true, feas_false =
        Solver.check_branch ~ctx:t.solver ~constraints:s.constraints cond
      in
      match feas_true, feas_false with
      | Solver.Sat _, Solver.Unsat ->
          State.add_constraint s cond;
          s.pc <- taken_pc
      | Solver.Unsat, Solver.Sat _ ->
          State.add_constraint s (Expr.log_not cond);
          s.pc <- fall_pc
      | Solver.Unsat, Solver.Unsat ->
          end_state t s (State.Aborted "infeasible path")
      | Solver.Unknown, Solver.Unsat ->
          (* Only one side can possibly be feasible; follow it, but its
             feasibility was never proven. *)
          degrade_to t s ~add:cond ~pc:taken_pc
      | Solver.Unsat, Solver.Unknown ->
          degrade_to t s ~add:(Expr.log_not cond) ~pc:fall_pc
      | (Solver.Unknown, _ | _, Solver.Unknown) ->
          degrade_concrete t s cond ~taken_pc ~fall_pc
      | Solver.Sat _, Solver.Sat _ ->
          if s.depth < t.config.max_fork_depth
             && List.length t.live < t.config.max_states
          then ignore (do_fork t s cond ~taken_pc ~fall_pc)
          else begin
            (* Depth/state budget exhausted: follow one feasible side. *)
            State.add_constraint s cond;
            s.pc <- taken_pc
          end
    end
  end
  else begin
    match if unit_here then Consistency.Concretize else Consistency.env_branch model with
    | Consistency.Follow_symbolic ->
        (* SC-SE in the environment: fork there too. *)
        let feas_true, feas_false =
          Solver.check_branch ~ctx:t.solver ~constraints:s.constraints cond
        in
        (match feas_true, feas_false with
        | Solver.Sat _, Solver.Unsat ->
            State.add_constraint s cond;
            s.pc <- taken_pc
        | Solver.Unknown, Solver.Unsat ->
            degrade_to t s ~add:cond ~pc:taken_pc
        | Solver.Unsat, Solver.Unknown ->
            degrade_to t s ~add:(Expr.log_not cond) ~pc:fall_pc
        | Solver.Unsat, _ ->
            State.add_constraint s (Expr.log_not cond);
            s.pc <- fall_pc
        | (Solver.Unknown, _ | _, Solver.Unknown) ->
            degrade_concrete t s cond ~taken_pc ~fall_pc
        | Solver.Sat _, Solver.Sat _ ->
            if s.depth < t.config.max_fork_depth
               && List.length t.live < t.config.max_states
            then ignore (do_fork t s cond ~taken_pc ~fall_pc)
            else begin
              State.add_constraint s cond;
              s.pc <- taken_pc
            end)
    | Consistency.Abort -> (
        (* LC: a branch on symbolic data in the environment is only an
           inconsistency when the data is genuinely undetermined — values
           pinned by earlier constraints (e.g. a null-checked pointer) are
           followed like concrete ones. *)
        let feas_true, feas_false =
          Solver.check_branch ~ctx:t.solver ~constraints:s.constraints cond
        in
        match feas_true, feas_false with
        | (Solver.Sat _ | Solver.Unknown), Solver.Unsat ->
            State.add_constraint s cond;
            s.pc <- taken_pc
        | Solver.Unsat, (Solver.Sat _ | Solver.Unknown) ->
            State.add_constraint s (Expr.log_not cond);
            s.pc <- fall_pc
        | Solver.Unsat, Solver.Unsat ->
            end_state t s (State.Aborted "infeasible path")
        | _, _ ->
            end_state t s
              (State.Aborted "LC: environment branched on symbolic data"))
    | Consistency.Concretize ->
        let v = concretize t s cond in
        s.pc <- (if v = 1L then taken_pc else fall_pc)
  end

(* ------------------------------------------------------------------ *)
(* Unit/environment boundary                                           *)
(* ------------------------------------------------------------------ *)

let on_call t (s : State.t) ~target ~return_addr ~via_syscall =
  let from_unit = in_unit t s.pc in
  let to_unit = in_unit t target in
  if from_unit && not to_unit then begin
    (* Unit calls into the environment. *)
    if
      Consistency.concretize_at_call t.config.consistency
      || not t.config.lazy_concretization
    then
      (* SC-UE (or the eager-concretization ablation): arguments become
         concrete before the black-box environment sees them. *)
      for r = 0 to 5 do
        let v = State.get_reg s r in
        if not (Expr.is_const v) then begin
          let c = concretize t s v in
          State.set_reg s r (Expr.const c)
        end
      done;
    s.env_frames <-
      { callee = target; return_addr; via_syscall } :: s.env_frames
  end

let apply_return_policy t (s : State.t) (frame : State.env_frame) =
  Events.env_return t.events
    { er_state = s; er_callee = frame.callee; er_via_syscall = frame.via_syscall };
  match Consistency.env_return t.config.consistency with
  | Consistency.Keep -> ()
  | Consistency.Contract -> (
      match Hashtbl.find_opt t.annotations frame.callee with
      | Some f -> f t s
      | None -> () (* unannotated: fall back to the strict behaviour *))
  | Consistency.Unconstrained ->
      (* RC-OC: the environment's result could be anything. *)
      (match Hashtbl.find_opt t.annotations frame.callee with
      | Some f -> f t s
      | None -> State.set_reg s 0 (fresh_sym t "env_ret" 32))

let check_env_return t (s : State.t) =
  match s.env_frames with
  | frame :: rest when s.pc = frame.return_addr ->
      s.env_frames <- rest;
      if in_unit t s.pc then apply_return_policy t s frame
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Instruction semantics                                               *)
(* ------------------------------------------------------------------ *)

let to_expr32 imm = Expr.const (Int64.of_int32 imm)

let alu_expr op a b =
  match op with
  | Insn.Add -> Expr.add a b
  | Insn.Sub -> Expr.sub a b
  | Insn.Mul -> Expr.mul a b
  | Insn.Divu -> Expr.udiv a b
  | Insn.Remu -> Expr.urem a b
  | Insn.And -> Expr.band a b
  | Insn.Or -> Expr.bor a b
  | Insn.Xor -> Expr.bxor a b
  | Insn.Shl -> Expr.shl a (Expr.band b (Expr.const 31L))
  | Insn.Shr -> Expr.lshr a (Expr.band b (Expr.const 31L))
  | Insn.Sar -> Expr.ashr a (Expr.band b (Expr.const 31L))
  | Insn.Slt -> Expr.zext ~width:32 (Expr.slt a b)
  | Insn.Sltu -> Expr.zext ~width:32 (Expr.ult a b)
  | Insn.Seq -> Expr.zext ~width:32 (Expr.eq a b)

let branch_cond cond a b =
  match cond with
  | Insn.Beq -> Expr.eq a b
  | Insn.Bne -> Expr.log_not (Expr.eq a b)
  | Insn.Blt -> Expr.slt a b
  | Insn.Bge -> Expr.log_not (Expr.slt a b)
  | Insn.Bltu -> Expr.ult a b
  | Insn.Bgeu -> Expr.log_not (Expr.ult a b)

let is_symbolic e = not (Expr.is_const e)

let apply_device_actions t (s : State.t) actions =
  List.iter
    (fun action ->
      match action with
      | Vm.Device.Dma_write { addr; data } ->
          s.mem <- Symmem.blit_concrete s.mem addr data;
          Array.iteri (fun i _ -> Dbt.invalidate t.dbt (addr + i)) data
      | Vm.Device.Raise_irq irq -> s.pending_irqs <- s.pending_irqs @ [ irq ])
    actions

let read32c t (s : State.t) addr =
  match Expr.to_const (Symmem.read_word s.mem addr) with
  | Some v -> Int64.to_int v
  | None -> end_state t s (State.Faulted "symbolic value in vector table")

let do_port_read t (s : State.t) port =
  let default = Vm.Devices.read_port s.devices port in
  let in_sym_range =
    List.exists (fun (lo, hi) -> port >= lo && port < hi)
      t.config.symbolic_hardware_ports
  in
  let initial =
    if
      in_sym_range
      && Consistency.symbolic_hardware t.config.consistency
      && in_unit t s.pc && s.multipath
    then fresh_sym t (Printf.sprintf "hw_port_%x" port) 32
    else if in_sym_range && Consistency.concretized_hardware t.config.consistency
            && in_unit t s.pc then begin
      (* SC-UE: a symbolic hardware value blindly pinned to some concrete
         value (the solver's arbitrary pick), losing the paths other values
         would enable. *)
      let v = fresh_sym t (Printf.sprintf "hw_port_%x" port) 32 in
      Expr.const (concretize t s v)
    end
    else Expr.const (Int64.of_int default)
  in
  let pr = { Events.pr_state = s; pr_port = port; pr_value = initial } in
  Events.port_read t.events pr;
  pr.pr_value

(* Execute one instruction.  Updates [s.pc]. *)
let exec_insn t (s : State.t) addr insn =
  let next = addr + Insn.insn_size in
  let reg = State.get_reg s in
  let setr = State.set_reg s in
  let mark_sym cond = if cond then s.sym_instret <- s.sym_instret + 1 in
  s.instret <- s.instret + 1;
  match insn with
  | Insn.Alu { op; rd; rs1; rs2 } ->
      let a = reg rs1 and b = reg rs2 in
      mark_sym (is_symbolic a || is_symbolic b);
      setr rd (alu_expr op a b);
      s.pc <- next
  | Insn.Alui { op; rd; rs1; imm } ->
      let a = reg rs1 in
      mark_sym (is_symbolic a);
      setr rd (alu_expr op a (to_expr32 imm));
      s.pc <- next
  | Insn.Li { rd; imm } ->
      setr rd (to_expr32 imm);
      s.pc <- next
  | Insn.Mov { rd; rs1 } ->
      setr rd (reg rs1);
      s.pc <- next
  | Insn.Lw { rd; base; off } ->
      let addr_e = Expr.add (reg base) (to_expr32 off) in
      mark_sym (is_symbolic addr_e);
      setr rd (do_read t s addr_e 4);
      s.pc <- next
  | Insn.Lb { rd; base; off } ->
      let addr_e = Expr.add (reg base) (to_expr32 off) in
      mark_sym (is_symbolic addr_e);
      setr rd (do_read t s addr_e 1);
      s.pc <- next
  | Insn.Sw { src; base; off } ->
      let addr_e = Expr.add (reg base) (to_expr32 off) in
      mark_sym (is_symbolic addr_e || is_symbolic (reg src));
      do_write t s addr_e (reg src) 4;
      s.pc <- next
  | Insn.Sb { src; base; off } ->
      let addr_e = Expr.add (reg base) (to_expr32 off) in
      mark_sym (is_symbolic addr_e || is_symbolic (reg src));
      do_write t s addr_e (reg src) 1;
      s.pc <- next
  | Insn.Jmp { target } -> s.pc <- Int32.to_int target land 0xFFFFFFFF
  | Insn.Jr { rs1 } ->
      let target = reg rs1 in
      mark_sym (is_symbolic target);
      let dst = concrete_addr t s target in
      (* shadow call stack: a jump back to the innermost pending return
         address is a return *)
      (match s.ret_stack with
      | r :: rest when r = dst -> s.ret_stack <- rest
      | _ -> ());
      s.pc <- dst
  | Insn.Jal { target } ->
      let target = Int32.to_int target land 0xFFFFFFFF in
      setr Insn.reg_lr (Expr.const (Int64.of_int next));
      s.ret_stack <- next :: s.ret_stack;
      on_call t s ~target ~return_addr:next ~via_syscall:false;
      s.pc <- target
  | Insn.Jalr { rs1 } ->
      let target = concrete_addr t s (reg rs1) in
      setr Insn.reg_lr (Expr.const (Int64.of_int next));
      s.ret_stack <- next :: s.ret_stack;
      on_call t s ~target ~return_addr:next ~via_syscall:false;
      s.pc <- target
  | Insn.Branch { cond; rs1; rs2; target } ->
      let a = reg rs1 and b = reg rs2 in
      let c = simplify t (branch_cond cond a b) in
      let taken_pc = Int32.to_int target land 0xFFFFFFFF in
      (match Expr.to_const c with
      | Some 1L -> s.pc <- taken_pc
      | Some _ -> s.pc <- next
      | None ->
          mark_sym true;
          symbolic_branch t s c ~taken_pc ~fall_pc:next)
  | Insn.In { rd; port; port_off } ->
      let p =
        Int64.to_int (concretize t s (Expr.add (reg port) (to_expr32 port_off)))
      in
      let v =
        if p = 0x0f then Expr.const (Int64.of_int s.last_irq)
        else do_port_read t s p
      in
      mark_sym (is_symbolic v);
      setr rd v;
      s.pc <- next
  | Insn.Out { src; port; port_off } ->
      let p =
        Int64.to_int (concretize t s (Expr.add (reg port) (to_expr32 port_off)))
      in
      (* Analyzers see the un-concretized value: symbolic provenance is how
         the privacy analyzer spots secrets leaving the system. *)
      Events.port_write t.events
        { pw_state = s; pw_port = p; pw_value = reg src };
      let v = Int64.to_int (concretize t s (reg src)) in
      apply_device_actions t s (Vm.Devices.write_port s.devices p v);
      s.pc <- next
  | Insn.Syscall ->
      Events.syscall t.events s;
      s.sepc <- next;
      let target = read32c t s Vm.Layout.vec_syscall in
      on_call t s ~target ~return_addr:next ~via_syscall:true;
      s.pc <- target
  | Insn.Sysret -> s.pc <- s.sepc
  | Insn.Iret ->
      s.pc <- s.iepc;
      s.in_irq <- false;
      s.irq_enabled <- true
  | Insn.Halt -> end_state t s State.Halted
  | Insn.Cli ->
      s.irq_enabled <- false;
      s.pc <- next
  | Insn.Sti ->
      s.irq_enabled <- true;
      s.pc <- next
  | Insn.Nop -> s.pc <- next
  | Insn.S2e { op; rs1; rs2; imm } ->
      (match op with
      | Insn.Sym_reg ->
          (* Under SC-CE the guest's request for symbolic data is ignored:
             the sample input stays concrete. *)
          if t.config.consistency <> Consistency.SC_CE then
            setr rs1 (fresh_sym t (Printf.sprintf "sym%ld" imm) 32)
      | Insn.Sym_mem ->
          if t.config.consistency <> Consistency.SC_CE then begin
            let base = concrete_addr t s (reg rs1) in
            let len = Int64.to_int (concretize t s (reg rs2)) in
            for i = 0 to len - 1 do
              s.mem <-
                Symmem.write_byte s.mem (base + i)
                  (fresh_sym t (Printf.sprintf "sym%ld_%d" imm i) 8)
            done
          end
      | Insn.Enable_mp -> s.multipath <- true
      | Insn.Disable_mp -> s.multipath <- false
      | Insn.Print -> Events.print t.events s (reg rs1)
      | Insn.Kill_path ->
          end_state t s (State.Killed (Printf.sprintf "guest kill (%ld)" imm))
      | Insn.Assert_op -> (
          let c = Expr.ne (reg rs1) (Expr.const 0L) in
          match Expr.to_const c with
          | Some 1L -> ()
          | Some _ ->
              report_bug t s "assertion"
                (Printf.sprintf "assertion failed at 0x%x (tag %ld)" addr imm);
              end_state t s (State.Faulted "assertion failed")
          | None -> (
              match Solver.check_with ~ctx:t.solver ~constraints:s.constraints (Expr.log_not c) with
              | Solver.Sat _ ->
                  report_bug t s "assertion"
                    (Printf.sprintf
                       "assertion can fail at 0x%x (tag %ld) for some inputs"
                       addr imm);
                  (* Continue down the passing side if it exists. *)
                  (match Solver.check_with ~ctx:t.solver ~constraints:s.constraints c with
                  | Solver.Sat _ | Solver.Unknown -> State.add_constraint s c
                  | Solver.Unsat ->
                      end_state t s (State.Faulted "assertion always fails"))
              | Solver.Unsat | Solver.Unknown -> State.add_constraint s c))
      | Insn.Concretize ->
          let v = concretize t s (reg rs1) in
          setr rs1 (Expr.const v)
      | Insn.Disable_irq -> s.irqs_suppressed <- true
      | Insn.Enable_irq -> s.irqs_suppressed <- false);
      s.pc <- next

(* ------------------------------------------------------------------ *)
(* The main loop                                                       *)
(* ------------------------------------------------------------------ *)

let fetch_byte t (s : State.t) addr =
  match Symmem.concrete_byte s.mem addr with
  | Some b -> b
  | None -> end_state t s (State.Faulted "executing symbolic code")

(* Execute one translation block of [s].  The whole block runs inside an
   "execute" phase span; translate/solver/fork/concretize spans nested
   under it subtract themselves, so the span records pure guest-execution
   self time. *)
let exec_tb_body t (s : State.t) =
  Obs.Trace.set_current_path s.id;
  check_env_return t s;
  (* Interrupt delivery between blocks. *)
  (match s.pending_irqs with
  | irq :: rest when s.irq_enabled && (not s.in_irq) && not s.irqs_suppressed ->
      s.pending_irqs <- rest;
      s.last_irq <- irq;
      s.iepc <- s.pc;
      s.in_irq <- true;
      s.irq_enabled <- false;
      Events.interrupt t.events s irq;
      s.pc <- read32c t s Vm.Layout.vec_irq
  | _ -> ());
  let tb =
    Dbt.translate t.dbt
      ~fetch:(fun a -> fetch_byte t s a)
      ~on_translate:(fun a i -> Events.instr_translate t.events a i)
      s.pc
  in
  tb.exec_count <- tb.exec_count + 1;
  let sym_before = s.sym_instret in
  let n = Array.length tb.insns in
  let rec go i =
    if i < n && s.status = State.Active then begin
      let addr, insn = tb.insns.(i) in
      if s.pc <> addr then () (* control left the block (e.g. fork child) *)
      else begin
        Events.before_instr t.events s addr insn;
        if Dbt.is_marked t.dbt addr then Events.instr_execute t.events s addr insn;
        exec_insn t s addr insn;
        go (i + 1)
      end
    end
  in
  (try go 0 with Path_end -> ());
  let executed = (s.sym_instret - sym_before, n) in
  ignore executed;
  (* Advance virtual time: slower when the block touched symbolic data. *)
  let ticks =
    if s.sym_instret > sym_before then max 1 (n / t.config.timer_divisor) else n
  in
  t.stats.concrete_instret <- t.stats.concrete_instret + n;
  t.stats.sym_instret <- t.stats.sym_instret + (s.sym_instret - sym_before);
  Obs.Metrics.add m_instructions n;
  Obs.Metrics.add m_sym_instructions (s.sym_instret - sym_before);
  Obs.Metrics.set m_max_constraints (List.length s.constraints);
  s.virtual_time <- Int64.add s.virtual_time (Int64.of_int ticks);
  if s.status = State.Active && not s.irqs_suppressed then begin
    let irqs = Vm.Devices.tick s.devices ticks in
    List.iter (fun irq -> s.pending_irqs <- s.pending_irqs @ [ irq ]) irqs
  end

let exec_tb t (s : State.t) =
  Obs.Span.timed execute_phase (fun () -> exec_tb_body t s)

(** Execute one translation block of [s], absorbing path termination.
    Building block for external schedulers ({!Parallel}). *)
let exec_block t s = try exec_tb t s with Path_end -> ()

(** Adopt [s] into this engine's frontier: used when a parallel worker
    receives a state forked (or booted) by another engine. *)
let adopt t (s : State.t) =
  t.live <- s :: t.live;
  let live_count = List.length t.live in
  if live_count > t.stats.max_live_states then t.stats.max_live_states <- live_count;
  Obs.Metrics.set m_live live_count;
  Obs.Metrics.set m_max_live live_count;
  t.searcher.add s

(** Remove [s] from this engine's frontier without terminating it: the
    donation half of work stealing. *)
let disown t (s : State.t) =
  t.searcher.remove s;
  t.live <- List.filter (fun s' -> s'.State.id <> s.State.id) t.live;
  Obs.Metrics.set m_live (List.length t.live)

type run_limits = {
  max_instructions : int option;
  max_seconds : float option;
  max_completed : int option;
}

let no_limits = { max_instructions = None; max_seconds = None; max_completed = None }

(* Drive the searcher until it drains or a limit fires. *)
let run_loop ~(limits : run_limits) t =
  let started = Unix.gettimeofday () in
  let over_budget () =
    (match limits.max_instructions with
    | Some m -> t.stats.concrete_instret > m
    | None -> false)
    || (match limits.max_seconds with
       | Some sec -> Unix.gettimeofday () -. started > sec
       | None -> false)
    ||
    match limits.max_completed with
    | Some m -> t.stats.states_completed >= m
    | None -> false
  in
  let rec loop () =
    if not (over_budget ()) then
      match t.searcher.select () with
      | None -> ()
      | Some s ->
          (try exec_tb t s with Path_end -> ());
          (* Track footprint high watermark occasionally. *)
          if t.stats.forks land 15 = 0 then begin
            let fp = List.fold_left (fun acc s -> acc + State.footprint s) 0 t.live in
            if fp > t.stats.footprint_watermark then
              t.stats.footprint_watermark <- fp
          end;
          loop ()
  in
  loop ()

(** Explore from [initial] until the searcher drains or a limit is hit.
    Returns the number of completed paths. *)
let run ?(limits = no_limits) t initial =
  t.live <- [ initial ];
  t.searcher.add initial;
  run_loop ~limits t;
  t.stats.states_completed

(** {!run} generalized to a whole frontier of already-created (forked,
    or decoded from another process) states.  States left in [t.live]
    afterwards are the unexplored remainder when a limit fired. *)
let run_frontier ?(limits = no_limits) t states =
  List.iter (adopt t) states;
  run_loop ~limits t;
  t.stats.states_completed

(** Fork [s] on behalf of a plugin (e.g. to inject alternative concrete
    values at an interface, DDT-style).  The child starts at the same pc;
    the caller is expected to modify its registers or memory afterwards.
    Fork events fire with a [true] condition. *)
let plugin_fork t (s : State.t) =
  let child = State.fork s in
  t.stats.states_created <- t.stats.states_created + 1;
  t.stats.forks <- t.stats.forks + 1;
  Obs.Metrics.incr m_states_created;
  Obs.Metrics.incr m_forks;
  t.live <- child :: t.live;
  let live_count = List.length t.live in
  if live_count > t.stats.max_live_states then t.stats.max_live_states <- live_count;
  Obs.Metrics.set m_live live_count;
  Obs.Metrics.set m_max_live live_count;
  if Obs.Trace.enabled () then
    Obs.Trace.path_start ~path:child.id ~parent:s.id ();
  Events.fork t.events s child Expr.bool_t;
  t.searcher.add child;
  child

(** Kill every live path except [keep] (PathKiller support). *)
let kill_others t keep reason =
  List.iter
    (fun (s : State.t) ->
      if s.id <> keep.State.id && State.is_active s then begin
        s.status <- State.Killed reason;
        trace_path_end s;
        t.stats.states_completed <- t.stats.states_completed + 1;
        Obs.Metrics.incr m_states_completed;
        Events.state_end t.events s;
        t.searcher.remove s
      end)
    t.live;
  t.live <- List.filter State.is_active t.live;
  Obs.Metrics.set m_live (List.length t.live)

let kill_state t (s : State.t) reason =
  if State.is_active s then begin
    s.status <- State.Killed reason;
    trace_path_end s;
    t.stats.states_completed <- t.stats.states_completed + 1;
    Obs.Metrics.incr m_states_completed;
    Events.state_end t.events s;
    t.searcher.remove s;
    t.live <- List.filter State.is_active t.live;
    Obs.Metrics.set m_live (List.length t.live)
  end
