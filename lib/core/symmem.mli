(** Copy-on-write symbolic memory: an immutable concrete base image shared
    by all paths plus a persistent per-path overlay of symbolic bytes —
    the shared machine-state representation at the heart of the paper's
    prototype (section 5).  All update operations are persistent: they
    return a new memory sharing structure with the old one. *)

open S2e_expr

type t

exception Fault of string
(** Raised on out-of-range accesses. *)

val create : base:Bytes.t -> t
(** The base image must not be mutated afterwards. *)

val overlay_size : t -> int
(** Number of privately written bytes: a per-path footprint proxy. *)

val base : t -> Bytes.t
(** The shared concrete base image (do not mutate). *)

val fold_overlay : (int -> Expr.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over overlay entries in increasing address order; used by the
    distribution codec to serialize the copy-on-write layer. *)

val map_overlay : (Expr.t -> Expr.t) -> t -> t
(** Rewrite every overlay expression in place (structurally persistent);
    used to re-intern a state adopted from another domain. *)

val of_overlay : base:Bytes.t -> (int * Expr.t) list -> t
(** Rebuild a memory from a base image plus decoded overlay entries. *)

val read_byte : t -> int -> Expr.t
(** Width-8 expression. *)

val write_byte : t -> int -> Expr.t -> t

val read_word : t -> int -> Expr.t
(** Little-endian 32-bit read; adjacent concrete bytes re-fuse into a
    constant. *)

val write_word : t -> int -> Expr.t -> t

val concrete_byte : t -> int -> int option
(** [None] when the byte is symbolic. *)

val read_byte_sym :
  t -> page_size:int -> anchor:int -> Expr.t -> Expr.t * Expr.t
(** Symbolic-pointer read: an if-then-else chain over the solver page
    containing [anchor].  Returns (value, page-bounds constraint); the
    caller must add the constraint to the path.  [page_size] is the
    paper's configurable solver-page split (section 5). *)

val read_word_sym :
  t -> page_size:int -> anchor:int -> Expr.t -> Expr.t * Expr.t

val blit_concrete : t -> int -> int array -> t
(** Copy a concrete buffer in (device DMA, image patching). *)

val read_cstring : ?max_len:int -> t -> int -> string
(** NUL-terminated concrete string; stops at symbolic bytes. *)
