(** Path-selection strategies (the paper's priority-based selectors:
    DepthFirst, BreadthFirst, Random, plus a generic scored searcher that
    MaxCoverage builds on). *)

module Obs = S2e_obs

type t = {
  add : State.t -> unit;
  remove : State.t -> unit;
  select : unit -> State.t option;
  size : unit -> int;
}

(* Scheduling telemetry: adds = states entering a frontier (initial state,
   forks, steals); selects = scheduling decisions that yielded a state.
   Shared by every selector so strategies are comparable. *)
let m_adds = Obs.Metrics.counter "searcher.adds"
let m_selects = Obs.Metrics.counter "searcher.selects"

let instrument t =
  {
    t with
    add =
      (fun s ->
        Obs.Metrics.incr m_adds;
        t.add s);
    select =
      (fun () ->
        match t.select () with
        | Some _ as r ->
            Obs.Metrics.incr m_selects;
            r
        | None -> None);
  }

let filter_live states = List.filter State.is_active states

let dfs () =
  let stack = ref [] in
  instrument
  {
    add = (fun s -> stack := s :: !stack);
    remove = (fun s -> stack := List.filter (fun s' -> s'.State.id <> s.State.id) !stack);
    select =
      (fun () ->
        stack := filter_live !stack;
        match !stack with [] -> None | s :: _ -> Some s);
    size = (fun () -> List.length (filter_live !stack));
  }

let bfs () =
  let queue = Queue.create () in
  let live = Hashtbl.create 64 in
  instrument
  {
    add =
      (fun s ->
        Queue.push s queue;
        Hashtbl.replace live s.State.id ());
    remove = (fun s -> Hashtbl.remove live s.State.id);
    select =
      (fun () ->
        let rec go () =
          match Queue.peek_opt queue with
          | None -> None
          | Some s when State.is_active s && Hashtbl.mem live s.State.id -> Some s
          | Some _ ->
              ignore (Queue.pop queue);
              go ()
        in
        go ());
    size =
      (fun () ->
        Queue.fold (fun n s -> if State.is_active s then n + 1 else n) 0 queue);
  }

let random ?(seed = 42) () =
  let rng = Random.State.make [| seed |] in
  let states = ref [] in
  instrument
  {
    add = (fun s -> states := s :: !states);
    remove = (fun s -> states := List.filter (fun s' -> s'.State.id <> s.State.id) !states);
    select =
      (fun () ->
        states := filter_live !states;
        match !states with
        | [] -> None
        | l -> Some (List.nth l (Random.State.int rng (List.length l))));
    size = (fun () -> List.length (filter_live !states));
  }

(** Pick the live state maximizing [score] (recomputed at each selection,
    so scores may depend on global analysis state such as coverage). *)
let scored score =
  let states = ref [] in
  instrument
  {
    add = (fun s -> states := s :: !states);
    remove = (fun s -> states := List.filter (fun s' -> s'.State.id <> s.State.id) !states);
    select =
      (fun () ->
        states := filter_live !states;
        match !states with
        | [] -> None
        | first :: rest ->
            Some
              (List.fold_left
                 (fun best s -> if score s > score best then s else best)
                 first rest));
    size = (fun () -> List.length (filter_live !states));
  }

(* Default score for the coverage-seeking selector: prefer shallow states,
   breaking ties toward the path that has executed the fewest instructions.
   Without global coverage feedback this approximates MaxCoverage's "get
   out of explored neighbourhoods" bias (paper section 4.1). *)
let maxcov_score (s : State.t) = -((s.depth * 1_000_000) + s.instret)

let selector_names = [ "dfs"; "bfs"; "random"; "scored"; "maxcov" ]

let of_name = function
  | "dfs" -> dfs ()
  | "bfs" -> bfs ()
  | "random" -> random ()
  | "scored" | "maxcov" -> scored maxcov_score
  | s ->
      invalid_arg
        (Printf.sprintf "unknown searcher %S (valid selectors: %s)" s
           (String.concat ", " selector_names))
