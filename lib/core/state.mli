(** ExecState: the complete virtual machine state of one execution path
    (paper section 4.2).

    Forking copies the register file, clones device state, and shares
    memory structurally through {!Symmem}'s persistent overlay — the
    copy-on-write behaviour the paper relies on to keep thousands of live
    paths affordable.  Fields are exposed because plugins read and write
    the state directly (the paper's ExecState gives plugins read/write
    access to the whole VM state). *)

open S2e_expr

type status =
  | Active
  | Halted                  (** guest executed HALT *)
  | Killed of string        (** selector/analyzer terminated the path *)
  | Faulted of string       (** guest fault (bad memory, invalid opcode) *)
  | Aborted of string       (** consistency-model abort (e.g. LC violation) *)

(** A pending call into the environment, used to apply return policies. *)
type env_frame = {
  callee : int;
  return_addr : int;
  via_syscall : bool;
}

(** How a merged state's single path condition re-expands into the set of
    enumerated paths it stands for: each [Case_split] remembers the
    disjunction a join added plus the two constraint suffixes it replaced,
    so test-case extraction can reconstruct the exact enumerated paths. *)
type case_tree =
  | Case_leaf
  | Case_split of {
      disj : Expr.t;
      base_len : int;
      a_suffix : Expr.t list;
      b_suffix : Expr.t list;
      a_tree : case_tree;
      b_tree : case_tree;
    }

type t = {
  id : int;
  mutable parent : int;
  mutable pc : int;
  mutable regs : Expr.t array;
  mutable mem : Symmem.t;
  mutable constraints : Expr.t list;
  mutable soft_constraints : int;
  mutable devices : S2e_vm.Devices.t;
  mutable irq_enabled : bool;
  mutable in_irq : bool;
  mutable iepc : int;
  mutable sepc : int;
  mutable last_irq : int;
  mutable pending_irqs : int list;
  mutable irqs_suppressed : bool;
  mutable status : status;
  mutable multipath : bool;
  mutable incomplete : bool;
      (** a solver [Unknown] degraded a fork on this path: the path is
          valid, but sibling paths may have been dropped *)
  mutable instret : int;
  mutable sym_instret : int;
  mutable depth : int;
  mutable virtual_time : int64;
  mutable env_frames : env_frame list;
  mutable ret_stack : int list;
      (** shadow call stack of unit return addresses, maintained by the
          executor on JAL/JALR/JR; lets merge points that post-dominate a
          whole function rendezvous at the caller's return site *)
  mutable rendezvous : (int * int * int) list;
      (** pending merge rendezvous as [(merge_id, pc, ret-stack depth)],
          innermost first; empty unless a merge controller is installed *)
  mutable cases : case_tree;
}

val create : mem:Symmem.t -> devices:S2e_vm.Devices.t -> pc:int -> t

val bump_id_counter : int -> unit
(** Raise the state-id counter to at least the given value.  Used when
    adopting states serialized by another process so locally forked ids
    never collide with decoded ones. *)

val fork : t -> t
(** Copy for the other side of a branch: registers copied, devices cloned,
    memory and constraints shared structurally. *)

val get_reg : t -> int -> Expr.t
(** The zero register always reads 0. *)

val set_reg : t -> int -> Expr.t -> unit
(** Writes to the zero register are ignored. *)

val add_constraint : t -> Expr.t -> unit

val map_case_tree : (Expr.t -> Expr.t) -> case_tree -> case_tree

val reintern : t -> unit
(** Re-intern the state's registers, constraints and memory overlay into
    the current domain's hash-cons table (structure-preserving, sharing
    kept).  Call after adopting a state produced by another domain. *)

val footprint : t -> int
(** Estimated state size in words (registers + private memory overlay +
    constraints): the Fig. 8 memory metric. *)

val eval_regs : Expr.model -> t -> int array
(** The register file evaluated concretely under a solver model (the zero
    register reads 0; variables absent from the model read 0): the
    concrete machine the engine claims this path can reach.  Used by the
    differential oracle's symbolic-concretized driver. *)

val eval_window : Expr.model -> t -> addr:int -> len:int -> string option
(** A memory window evaluated concretely under a solver model, or [None]
    when the window leaves RAM. *)

val is_active : t -> bool
val status_string : status -> string

val report_string : t -> string
(** {!status_string} plus an [" [incomplete]"] suffix when a degraded
    fork may have dropped sibling paths. *)
