(** Copy-on-write symbolic memory.

    The paper's central implementation trick (section 5) is a machine-state
    representation shared between the concrete and symbolic domains, with
    aggressive copy-on-write so forked paths stay cheap.  We realise it as
    an immutable concrete base image (shared by every path) plus a
    persistent map overlay of symbolic (or concretely updated) bytes.
    Forking a state shares both structurally; writes copy O(log n) nodes.

    Reads from a {e symbolic pointer} are lowered to an if-then-else chain
    over one solver page, whose size is configurable — this directly
    reproduces the paper's page-splitting optimization and its section 6.2
    page-size experiment. *)

open S2e_expr
module Int_map = Map.Make (Int)

type t = {
  base : Bytes.t; (* immutable after construction; shared by all states *)
  overlay : Expr.t Int_map.t;
  size : int;
}

exception Fault of string

let create ~base = { base; overlay = Int_map.empty; size = Bytes.length base }

let fault fmt = Fmt.kstr (fun m -> raise (Fault m)) fmt

let check t addr =
  if addr < 0 || addr >= t.size then fault "memory access out of range: 0x%x" addr

(** Number of overlay entries: a proxy for per-state memory footprint,
    reported by the Fig. 8 benchmark. *)
let overlay_size t = Int_map.cardinal t.overlay

let base t = t.base

(** Fold over overlay entries in increasing address order (serialization). *)
let fold_overlay f t acc = Int_map.fold f t.overlay acc

(** Rewrite every overlay expression (e.g. re-interning a state adopted
    from another domain).  The base image is untouched. *)
let map_overlay f t = { t with overlay = Int_map.map f t.overlay }

(** Rebuild a memory from a base image and a decoded overlay list. *)
let of_overlay ~base entries =
  {
    base;
    overlay =
      List.fold_left (fun m (a, e) -> Int_map.add a e m) Int_map.empty entries;
    size = Bytes.length base;
  }

let read_byte t addr =
  check t addr;
  match Int_map.find_opt addr t.overlay with
  | Some e -> e
  | None -> Expr.const ~width:8 (Int64.of_int (Char.code (Bytes.get t.base addr)))

let write_byte t addr v =
  check t addr;
  assert (Expr.width v = 8);
  { t with overlay = Int_map.add addr v t.overlay }

let read_word t addr =
  check t addr;
  check t (addr + 3);
  let b0 = read_byte t addr
  and b1 = read_byte t (addr + 1)
  and b2 = read_byte t (addr + 2)
  and b3 = read_byte t (addr + 3) in
  Expr.concat
    ~high:(Expr.concat ~high:b3 ~low:b2)
    ~low:(Expr.concat ~high:b1 ~low:b0)

let write_word t addr v =
  check t addr;
  check t (addr + 3);
  assert (Expr.width v = 32);
  let byte i = Expr.extract ~hi:((8 * i) + 7) ~lo:(8 * i) v in
  let t = write_byte t addr (byte 0) in
  let t = write_byte t (addr + 1) (byte 1) in
  let t = write_byte t (addr + 2) (byte 2) in
  write_byte t (addr + 3) (byte 3)

(** Fully concrete view of a byte (for device DMA, tracing, etc.):
    [None] when the byte is symbolic. *)
let concrete_byte t addr =
  match Expr.to_const (read_byte t addr) with
  | Some v -> Some (Int64.to_int v)
  | None -> None

(** Read a symbolic-pointer byte: builds an ITE chain over the solver page
    containing [anchor] (a concrete value the address can take), and returns
    it together with the page-bounds constraint that must be added to the
    path. *)
let read_byte_sym t ~page_size ~anchor addr_expr =
  let page = anchor / page_size * page_size in
  let page_end = min t.size (page + page_size) in
  let in_page =
    Expr.log_and
      (Expr.ule (Expr.const (Int64.of_int page)) addr_expr)
      (Expr.ult addr_expr (Expr.const (Int64.of_int page_end)))
  in
  (* Fold from the anchor's byte as default so the chain is never empty. *)
  let result = ref (read_byte t anchor) in
  for a = page_end - 1 downto page do
    if a <> anchor then
      result :=
        Expr.ite
          (Expr.eq addr_expr (Expr.const (Int64.of_int a)))
          (read_byte t a) !result
  done;
  (!result, in_page)

let read_word_sym t ~page_size ~anchor addr_expr =
  let byte i =
    let e, _ =
      read_byte_sym t ~page_size ~anchor:(anchor + i)
        (Expr.add addr_expr (Expr.const (Int64.of_int i)))
    in
    e
  in
  let page = anchor / page_size * page_size in
  let page_end = min t.size (page + page_size) in
  let in_page =
    Expr.log_and
      (Expr.ule (Expr.const (Int64.of_int page)) addr_expr)
      (Expr.ult
         (Expr.add addr_expr (Expr.const 3L))
         (Expr.const (Int64.of_int page_end)))
  in
  let w =
    Expr.concat
      ~high:(Expr.concat ~high:(byte 3) ~low:(byte 2))
      ~low:(Expr.concat ~high:(byte 1) ~low:(byte 0))
  in
  (w, in_page)

(** Copy a concrete buffer into memory (DMA, image patching). *)
let blit_concrete t addr data =
  Array.to_seq data
  |> Seq.fold_lefti
       (fun t i b ->
         write_byte t (addr + i) (Expr.const ~width:8 (Int64.of_int (b land 0xff))))
       t

(** Read a NUL-terminated concrete string (fails on symbolic bytes). *)
let read_cstring ?(max_len = 256) t addr =
  let buf = Buffer.create 16 in
  let rec go a n =
    if n >= max_len then Buffer.contents buf
    else
      match concrete_byte t a with
      | Some 0 | None -> Buffer.contents buf
      | Some c ->
          Buffer.add_char buf (Char.chr c);
          go (a + 1) (n + 1)
  in
  go addr 0
