(** Parallel multi-path exploration over OCaml 5 domains (paper section 3:
    selective symbolic execution is embarrassingly parallel across
    execution-tree subtrees; section 6: "runs as fast as the hardware
    allows").

    Each worker owns a private {!Executor.t} — and therefore a private
    {!Searcher.t}, translation-block cache, event bus and
    {!S2e_solver.Solver.ctx} — so the hot path (decode, expression
    construction, SAT solving) runs with zero shared-state contention.
    The only synchronization is a mutex-protected steal pool of states:

    - A worker whose frontier grows donates states at fork points while
      any peer is starving (the pool holds fewer states than there are
      idle workers).  Donated states come from the oldest end of the
      victim's frontier, i.e. the fork points closest to the root, which
      head the richest unexplored subtrees.
    - An idle worker steals from the pool; execution states are
      self-contained (registers, copy-on-write memory overlay, devices,
      constraints), so adoption is O(1).

    Determinism: with [jobs = 1] exploration is bit-for-bit the serial
    {!Executor.run}.  With [jobs = N] the *set* of terminated paths (and
    the fork/termination totals) matches serial exploration, because every
    per-path decision — branch feasibility, concretization picks, symbolic
    pointer anchoring — is a pure function of the path's own constraint
    set: solver contexts cache only answers, never influence them
    ({!S2e_solver.Solver.get_value} bypasses the model cache).  Only
    scheduling order, and order-dependent aggregates like the live-state
    high watermark, may differ. *)

module Solver = S2e_solver.Solver
module Obs = S2e_obs
open S2e_expr

(* Scheduler telemetry.  Steals land in the thief's own registry shard, so
   {!S2e_obs.Metrics.shard_snapshots} gives a per-worker steal count for
   free; "steal" span time is the scheduler-overhead column of a Table-5
   style breakdown (lock waits + idle blocking on the pool). *)
let m_steals = Obs.Metrics.counter "parallel.steals"
let m_donations = Obs.Metrics.counter "parallel.donations"
let m_workers = Obs.Metrics.gauge ~merge:Obs.Metrics.Max "parallel.workers"
let steal_phase = Obs.Span.phase "steal"

type result = {
  jobs : int;
  completed : State.t list;  (** terminated states from every worker *)
  frontier : State.t list;   (** states still live when a limit fired *)
  stats : Executor.stats;    (** aggregated over workers *)
  solver_stats : Solver.stats;  (** aggregated over worker contexts *)
  steals : int;              (** states adopted from the steal pool *)
  wall_seconds : float;
}

(* ------------------------------------------------------------------ *)
(* Shared scheduler state                                              *)
(* ------------------------------------------------------------------ *)

type shared = {
  m : Mutex.t;
  cv : Condition.t;
  pool : State.t Queue.t;       (* stealable frontier states *)
  mutable outstanding : int;    (* live states anywhere in the system *)
  mutable idle : int;           (* workers blocked on [cv] *)
  stop : bool Atomic.t;         (* a budget limit fired *)
  mutable steals : int;
  mutable max_live : int;       (* high watermark of [outstanding] *)
  completed : int Atomic.t;     (* global completed-path count *)
  instret : int Atomic.t;       (* global executed-instruction count *)
}

let make_shared () =
  {
    m = Mutex.create ();
    cv = Condition.create ();
    pool = Queue.create ();
    outstanding = 0;
    idle = 0;
    stop = Atomic.make false;
    steals = 0;
    max_live = 0;
    completed = Atomic.make 0;
    instret = Atomic.make 0;
  }

let over_budget (limits : Executor.run_limits) shared ~started =
  (match limits.max_instructions with
  | Some m -> Atomic.get shared.instret > m
  | None -> false)
  || (match limits.max_seconds with
     | Some sec -> Unix.gettimeofday () -. started > sec
     | None -> false)
  ||
  match limits.max_completed with
  | Some m -> Atomic.get shared.completed >= m
  | None -> false

(* ------------------------------------------------------------------ *)
(* Worker                                                              *)
(* ------------------------------------------------------------------ *)

(* Fork/termination events are buffered during a translation block and
   folded into the shared scheduler state between blocks: the event fires
   before the child is registered with the victim's searcher, so donating
   in the handler itself would race with the executor's own bookkeeping. *)
type worker = {
  eng : Executor.t;
  mutable forked : State.t list;       (* children born this block *)
  mutable ended : State.t list;        (* states terminated this block *)
  mutable merges : int;                (* states absorbed by an ite-join *)
  mutable terminated : State.t list;   (* all terminations, for the result *)
}

let make_worker eng =
  let w = { eng; forked = []; ended = []; merges = 0; terminated = [] } in
  Events.reg_fork eng.Executor.events (fun _parent child _cond ->
      w.forked <- child :: w.forked);
  Events.reg_state_end eng.Executor.events (fun s -> w.ended <- s :: w.ended);
  (* A merged-away state leaves the system without terminating: it is no
     longer outstanding, but it is not a completed path either. *)
  Events.reg_state_merge eng.Executor.events (fun _absorbed _survivor ->
      w.merges <- w.merges + 1);
  w

(* Fold the block's fork/termination deltas into the scheduler and donate
   frontier states while peers are starving.  Returns with [shared.m]
   unlocked. *)
let sync_after_block shared w =
  let forks = List.length w.forked in
  let ends = List.length w.ended in
  let merges = w.merges in
  w.forked <- [];
  w.terminated <- List.rev_append w.ended w.terminated;
  w.ended <- [];
  w.merges <- 0;
  if ends > 0 then ignore (Atomic.fetch_and_add shared.completed ends);
  Mutex.lock shared.m;
  shared.outstanding <- shared.outstanding + forks - ends - merges;
  if shared.outstanding > shared.max_live then
    shared.max_live <- shared.outstanding;
  if shared.outstanding = 0 then Condition.broadcast shared.cv
  else begin
    (* Donate from the oldest end of our frontier (fork points nearest the
       root) while the pool cannot feed every idle worker. *)
    let rec donate () =
      if
        shared.idle > Queue.length shared.pool
        && List.length w.eng.Executor.live > 1
      then begin
        (* States holding a rendezvous are steal-exempt: their merge ids
           are engine-local, and keeping carriers home keeps merging
           per-worker-local (a sibling pair split across workers would
           never meet). *)
        match
          List.find_opt
            (fun (s : State.t) -> s.State.rendezvous = [])
            (List.rev w.eng.Executor.live)
        with
        | None -> ()
        | Some victim ->
            Executor.disown w.eng victim;
            Queue.push victim shared.pool;
            Obs.Metrics.incr m_donations;
            Condition.signal shared.cv;
            donate ()
      end
    in
    donate ()
  end;
  Mutex.unlock shared.m

(* Blocking steal: take a state from the pool, or wait until either work
   appears, the system drains, or a budget limit fires. *)
let steal shared =
  Obs.Span.timed steal_phase (fun () ->
      Mutex.lock shared.m;
      let rec go () =
        if Atomic.get shared.stop then None
        else
          match Queue.take_opt shared.pool with
          | Some s ->
              shared.steals <- shared.steals + 1;
              Obs.Metrics.incr m_steals;
              Some s
          | None ->
              if shared.outstanding = 0 then None
              else begin
                shared.idle <- shared.idle + 1;
                Condition.wait shared.cv shared.m;
                shared.idle <- shared.idle - 1;
                go ()
              end
      in
      let r = go () in
      Mutex.unlock shared.m;
      r)

let request_stop shared =
  Atomic.set shared.stop true;
  Mutex.lock shared.m;
  Condition.broadcast shared.cv;
  Mutex.unlock shared.m

let worker_loop shared (limits : Executor.run_limits) ~started w =
  let eng = w.eng in
  let rec loop () =
    if over_budget limits shared ~started then request_stop shared;
    if not (Atomic.get shared.stop) then
      match eng.Executor.searcher.Searcher.select () with
      | Some s ->
          let i0 = eng.Executor.stats.concrete_instret in
          Executor.exec_block eng s;
          ignore
            (Atomic.fetch_and_add shared.instret
               (eng.Executor.stats.concrete_instret - i0));
          sync_after_block shared w;
          loop ()
      | None -> (
          match steal shared with
          | Some s ->
              (* The stolen state's expressions were interned by the
                 victim's domain; fold them into this domain's table so
                 the physical-equality fast paths apply here too. *)
              State.reintern s;
              Executor.adopt eng s;
              loop ()
          | None -> ())
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let make_engines ~jobs make_engine =
  List.init jobs (fun _ ->
      let eng = make_engine () in
      eng.Executor.solver <- Solver.create_ctx ();
      eng)

(* Explore all of [states] on [engines], returning completed paths plus
   whatever was still live when a limit fired. *)
let explore_states ~jobs ~limits engines states =
  Obs.Metrics.set m_workers jobs;
  let started = Unix.gettimeofday () in
  let finish ~completed ~frontier ~steals ~max_live =
    let stats = Executor.new_stats () in
    List.iter
      (fun eng -> Executor.merge_stats ~into:stats eng.Executor.stats)
      engines;
    if max_live > stats.max_live_states then stats.max_live_states <- max_live;
    let solver_stats = Solver.new_stats () in
    List.iter
      (fun eng ->
        Solver.merge_stats ~into:solver_stats eng.Executor.solver.Solver.ctx_stats)
      engines;
    {
      jobs;
      completed;
      frontier;
      stats;
      solver_stats;
      steals;
      wall_seconds = Unix.gettimeofday () -. started;
    }
  in
  match engines with
  | [ eng ] ->
      (* Single worker: exactly the serial engine loop. *)
      let terminated = ref [] in
      Events.reg_state_end eng.Executor.events (fun s ->
          terminated := s :: !terminated);
      ignore (Executor.run_frontier ~limits eng states);
      finish ~completed:(List.rev !terminated) ~frontier:eng.Executor.live
        ~steals:0 ~max_live:eng.Executor.stats.max_live_states
  | _ :: _ ->
      let shared = make_shared () in
      let workers = List.map make_worker engines in
      let engine_arr = Array.of_list engines in
      List.iteri
        (fun i s -> Executor.adopt engine_arr.(i mod jobs) s)
        states;
      let n = List.length states in
      shared.outstanding <- n;
      shared.max_live <- n;
      let domains =
        List.map
          (fun w -> Domain.spawn (fun () -> worker_loop shared limits ~started w))
          workers
      in
      List.iter Domain.join domains;
      let completed =
        List.concat_map (fun w -> List.rev w.terminated) workers
      in
      let frontier =
        List.concat_map (fun eng -> eng.Executor.live) engines
        @ Queue.fold (fun acc s -> s :: acc) [] shared.pool
      in
      finish ~completed ~frontier ~steals:shared.steals
        ~max_live:shared.max_live
  | [] -> assert false

(** Explore the execution tree rooted at [boot worker0_engine] with [jobs]
    workers.  [make_engine] is called once per worker and must return a
    fully configured engine (image loaded, unit set, plugins attached);
    each engine is given a private solver context.  [boot] produces the
    initial state from the first worker's engine. *)
let explore ?(jobs = 1) ?(limits = Executor.no_limits)
    ~(make_engine : unit -> Executor.t) ~(boot : Executor.t -> State.t) () =
  if jobs < 1 then invalid_arg "Parallel.explore: jobs must be >= 1";
  let engines = make_engines ~jobs make_engine in
  let s0 = boot (List.hd engines) in
  explore_states ~jobs ~limits engines [ s0 ]

(** Explore a frontier of already-created states — the distributed
    workers' entry point: states decoded from a coordinator snapshot are
    resumed exactly where the fork point left them. *)
let explore_frontier ?(jobs = 1) ?(limits = Executor.no_limits)
    ~(make_engine : unit -> Executor.t) states =
  if jobs < 1 then invalid_arg "Parallel.explore_frontier: jobs must be >= 1";
  let engines = make_engines ~jobs make_engine in
  explore_states ~jobs ~limits engines states

(* ------------------------------------------------------------------ *)
(* Canonical test cases                                                *)
(* ------------------------------------------------------------------ *)

(** The concrete input assignment characterizing a terminated path: every
    named symbolic variable occurring in the path constraints, bound to
    the deterministic model the SAT core produces for that constraint set.
    Independent of worker count, scheduling and solver-cache history, so
    sorted test-case lists compare equal between serial and parallel
    runs. *)
let model_of ?ctx constraints =
  let ctx = match ctx with Some c -> c | None -> Solver.create_ctx () in
  let vars =
    List.fold_left
      (fun acc c ->
        Expr.fold_vars
          (fun acc id name width ->
            if List.mem_assoc id acc then acc else (id, (name, width)) :: acc)
          acc c)
      [] constraints
  in
  (* Pristine check: the model must be a pure function of the constraint
     set, never of the context's cache or live-instance history, or case
     bytes would differ between solver modes and worker schedules. *)
  match Solver.check_model ~ctx constraints with
  | Solver.Sat m ->
      Some
        (vars
        |> List.map (fun (id, (name, width)) ->
               let v =
                 match Expr.Int_map.find_opt id m with
                 | Some v -> Expr.norm v width
                 | None -> 0L
               in
               (name, v))
        |> List.sort compare)
  | Solver.Unsat | Solver.Unknown -> None

let test_case (s : State.t) =
  Obs.Trace.set_current_path s.State.id;
  match model_of s.State.constraints with Some tc -> tc | None -> []

(* Expand a merged state's case tree back into the constraint lists of
   the enumerated paths it subsumes.  Each [Case_split] recorded the
   exact list slot its disjunction occupies — [base_len] constraints from
   the bottom — so substitution is positional: replace the disjunction
   with either side's original suffix and recurse into that side's
   subtree.  The invariant survives nesting because a side's inner splits
   sit inside the suffix being substituted, at the same distance from the
   shared bottom.

   Pruning is load-bearing, not an optimisation: when a merged state
   forks and the copies later re-merge, both sides of the new split carry
   the inherited splits, so the raw tree is a cross-product of suffix
   choices — exponentially more combinations than enumerated paths, and
   almost all of them unsat.  Substituting one side keeps every deeper
   disjunction in place, and a disjunction is weaker than either of its
   refinements, so an Unsat partial assignment soundly kills the whole
   subtree.  The walk then visits O(real paths x tree depth) nodes
   instead of the full product. *)
let rec expand_cases ~ctx constraints (tree : State.case_tree) =
  match tree with
  | State.Case_leaf -> [ constraints ]
  | State.Case_split { disj; base_len; a_suffix; b_suffix; a_tree; b_tree } ->
      let len = List.length constraints in
      let split_at = len - 1 - base_len in
      let rec cut i above = function
        | d :: below when i = 0 ->
            if not (Expr.equal d disj) then
              invalid_arg "Parallel.test_cases: case tree out of sync";
            (List.rev above, below)
        | c :: rest -> cut (i - 1) (c :: above) rest
        | [] -> invalid_arg "Parallel.test_cases: case tree out of sync"
      in
      let above, below = cut split_at [] constraints in
      let side suffix subtree =
        let c = above @ suffix @ below in
        match Solver.check ~ctx c with
        | Solver.Unsat -> []
        | Solver.Sat _ | Solver.Unknown -> expand_cases ~ctx c subtree
      in
      side a_suffix a_tree @ side b_suffix b_tree

(** All test cases a terminated state stands for.  A state that was never
    merged yields exactly [[test_case s]]; a merged state expands its
    case tree into the enumerated paths' constraint lists and solves each
    one, dropping unsatisfiable combinations (suffix pairs that never
    coexisted on a real path).  Sorted case lists therefore compare equal
    between [--merge] and plain enumeration. *)
let test_cases ?ctx (s : State.t) =
  match s.State.cases with
  | State.Case_leaf -> [ test_case s ]
  | tree ->
      Obs.Trace.set_current_path s.State.id;
      (* One shared context across the expansion: sibling leaves differ
         only in the substituted suffixes, so in incremental mode their
         pruning queries are assumption probes on the same live SAT
         instance.  Callers with a long-lived context (the dist workers'
         per-slice loop) pass it in, batching the expansions of every
         state between heartbeats onto the same instance ring; the
         verdicts and case bytes are context-history-independent, so
         sharing is safe. *)
      let ctx = match ctx with Some c -> c | None -> Solver.create_ctx () in
      expand_cases ~ctx s.State.constraints tree
      |> List.filter_map (model_of ~ctx)

let test_case_to_string tc =
  String.concat ","
    (List.map (fun (name, v) -> Printf.sprintf "%s=%Ld" name v) tc)
