(** The publish/subscribe event bus plugins attach to (paper section 4.2,
    Table 2).

    Core events correspond to the lowest level of abstraction of execution:
    instruction translation and execution, memory accesses, forks,
    interrupts — plus hardware-access and lifecycle events that the stock
    plugins need.  Handlers run in subscription order. *)

open S2e_expr

type mem_access = {
  ma_state : State.t;
  ma_addr : Expr.t;
  ma_concrete_addr : int; (* resolved address the access used *)
  ma_value : Expr.t;
  ma_is_write : bool;
  ma_size : int; (* bytes *)
  (* Path constraints before the engine pinned the (symbolic) address:
     bounds checkers must reason against these, not the post-resolution
     set. *)
  ma_pre_constraints : Expr.t list;
}

(* Port reads are a filter event: a handler may supply a replacement value
   (symbolic hardware). *)
type port_read = {
  pr_state : State.t;
  pr_port : int;
  mutable pr_value : Expr.t;
}

type bug = {
  bug_state : State.t;
  bug_kind : string;      (* "assertion", "memory", "bugcheck", ... *)
  bug_message : string;
  bug_pc : int;
}

(* Return from an environment call back into the unit: handlers implement
   LC annotations / RC-OC unconstrained returns by rewriting r0 or memory. *)
type env_return = {
  er_state : State.t;
  er_callee : int;
  er_via_syscall : bool;
}

type port_write = {
  pw_state : State.t;
  pw_port : int;
  pw_value : Expr.t; (* the value before concretization: taint analyzers
                        inspect its symbolic provenance *)
}

type t = {
  mutable on_instr_translate : (int -> S2e_isa.Insn.t -> unit) list;
  mutable on_instr_execute : (State.t -> int -> S2e_isa.Insn.t -> unit) list;
  mutable on_before_instr : (State.t -> int -> S2e_isa.Insn.t -> unit) list;
  mutable on_fork : (State.t -> State.t -> Expr.t -> unit) list;
  mutable on_memory_access : (mem_access -> unit) list;
  mutable on_port_read : (port_read -> unit) list;
  mutable on_port_write : (port_write -> unit) list;
  mutable on_interrupt : (State.t -> int -> unit) list;
  mutable on_syscall : (State.t -> unit) list;
  mutable on_env_return : (env_return -> unit) list;
  mutable on_state_end : (State.t -> unit) list;
  mutable on_state_merge : (State.t -> State.t -> unit) list;
      (* (absorbed, survivor): the absorbed state was folded into the
         survivor by an ite-join and leaves the frontier without
         terminating — it fires neither fork nor state_end *)
  mutable on_bug : (bug -> unit) list;
  mutable on_print : (State.t -> Expr.t -> unit) list;
}

let create () =
  {
    on_instr_translate = [];
    on_instr_execute = [];
    on_before_instr = [];
    on_fork = [];
    on_memory_access = [];
    on_port_read = [];
    on_port_write = [];
    on_interrupt = [];
    on_syscall = [];
    on_env_return = [];
    on_state_end = [];
    on_state_merge = [];
    on_bug = [];
    on_print = [];
  }

(* Subscription (append so handlers run in registration order). *)
let reg_instr_translate t f = t.on_instr_translate <- t.on_instr_translate @ [ f ]
let reg_instr_execute t f = t.on_instr_execute <- t.on_instr_execute @ [ f ]
let reg_before_instr t f = t.on_before_instr <- t.on_before_instr @ [ f ]
let reg_fork t f = t.on_fork <- t.on_fork @ [ f ]
let reg_memory_access t f = t.on_memory_access <- t.on_memory_access @ [ f ]
let reg_port_read t f = t.on_port_read <- t.on_port_read @ [ f ]
let reg_port_write t f = t.on_port_write <- t.on_port_write @ [ f ]
let reg_interrupt t f = t.on_interrupt <- t.on_interrupt @ [ f ]
let reg_syscall t f = t.on_syscall <- t.on_syscall @ [ f ]
let reg_env_return t f = t.on_env_return <- t.on_env_return @ [ f ]
let reg_state_end t f = t.on_state_end <- t.on_state_end @ [ f ]
let reg_state_merge t f = t.on_state_merge <- t.on_state_merge @ [ f ]
let reg_bug t f = t.on_bug <- t.on_bug @ [ f ]
let reg_print t f = t.on_print <- t.on_print @ [ f ]

(* Emission. *)
let instr_translate t addr insn = List.iter (fun f -> f addr insn) t.on_instr_translate
let instr_execute t s addr insn = List.iter (fun f -> f s addr insn) t.on_instr_execute
let before_instr t s addr insn = List.iter (fun f -> f s addr insn) t.on_before_instr
let fork t parent child cond = List.iter (fun f -> f parent child cond) t.on_fork
let memory_access t ma = List.iter (fun f -> f ma) t.on_memory_access
let port_read t pr = List.iter (fun f -> f pr) t.on_port_read
let port_write t pw = List.iter (fun f -> f pw) t.on_port_write
let interrupt t s irq = List.iter (fun f -> f s irq) t.on_interrupt
let syscall t s = List.iter (fun f -> f s) t.on_syscall
let env_return t er = List.iter (fun f -> f er) t.on_env_return
let state_end t s = List.iter (fun f -> f s) t.on_state_end
let state_merge t ~absorbed ~survivor =
  List.iter (fun f -> f absorbed survivor) t.on_state_merge
let bug t b = List.iter (fun f -> f b) t.on_bug
let print t s v = List.iter (fun f -> f s v) t.on_print
