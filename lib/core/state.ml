(** ExecState: the complete virtual machine state of one execution path
    (paper section 4.2).

    Forking copies registers (a small array), clones device state, and
    shares memory structurally through {!Symmem}'s persistent overlay —
    the copy-on-write behaviour the paper relies on to keep thousands of
    live paths affordable. *)

open S2e_expr

type status =
  | Active
  | Halted                  (* guest executed HALT *)
  | Killed of string        (* selector/analyzer terminated the path *)
  | Faulted of string       (* guest fault (bad memory, invalid opcode) *)
  | Aborted of string       (* consistency-model abort (e.g. LC violation) *)

(* A pending call into the environment, used to apply return policies. *)
type env_frame = {
  callee : int;           (* environment function entry address *)
  return_addr : int;      (* unit address execution will come back to *)
  via_syscall : bool;
}

(* How a merged state's single path condition re-expands into the set of
   enumerated paths it stands for.  A [Case_split] remembers the disjunction
   a join added to the constraint list plus the two original constraint
   suffixes it replaced; substituting a suffix back for the disjunction
   reconstructs the exact constraint list the corresponding enumerated path
   would have carried, so test-case extraction is byte-identical. *)
type case_tree =
  | Case_leaf
  | Case_split of {
      disj : Expr.t;            (* or-of-guards constraint the join added *)
      base_len : int;           (* constraints below the disjunction, i.e.
                                   the disjunction's position from the
                                   bottom of the (oldest-last) list *)
      a_suffix : Expr.t list;   (* newest-first constraints of side A *)
      b_suffix : Expr.t list;   (* newest-first constraints of side B *)
      a_tree : case_tree;
      b_tree : case_tree;
    }

type t = {
  id : int;
  mutable parent : int;
  mutable pc : int;
  mutable regs : Expr.t array;
  mutable mem : Symmem.t;
  mutable constraints : Expr.t list;
  mutable soft_constraints : int; (* count of concretization-induced constraints *)
  mutable devices : S2e_vm.Devices.t;
  (* interrupt/syscall plumbing, mirroring the concrete Machine *)
  mutable irq_enabled : bool;
  mutable in_irq : bool;
  mutable iepc : int;
  mutable sepc : int;
  mutable last_irq : int;
  mutable pending_irqs : int list;
  mutable irqs_suppressed : bool; (* s2e opcode: disable interrupts for path *)
  mutable status : status;
  mutable multipath : bool; (* toggled by S2ENA / S2DIS opcodes *)
  mutable incomplete : bool;
      (* a solver Unknown degraded a fork on this path: the path itself is
         valid, but sibling paths may have been silently dropped *)
  mutable instret : int;
  mutable sym_instret : int;   (* instructions that touched symbolic data *)
  mutable depth : int;         (* fork depth *)
  mutable virtual_time : int64;
  mutable env_frames : env_frame list;
  (* Symbolic data the unit wrote into environment-visible places (LC
     propagation tracking) is approximated by noting that any symbolic
     branch in the environment aborts; no extra state needed. *)
  mutable ret_stack : int list;
      (* shadow call stack of unit return addresses (pushed on JAL/JALR,
         popped when JR lr targets the top); merge points that post-dominate
         a whole function rendezvous at the caller's return site, and the
         stack depth disambiguates recursive invocations *)
  mutable rendezvous : (int * int * int) list;
      (* pending merge rendezvous as (merge_id, pc, ret-stack depth),
         innermost first; empty unless a merge controller is installed *)
  mutable cases : case_tree;
}

(* Atomic so states can be forked concurrently by parallel exploration
   workers without id collisions. *)
let counter = Atomic.make 0

(* Raise the counter to at least [n] so states decoded from another
   process never collide with locally forked ones. *)
let rec bump_id_counter n =
  let cur = Atomic.get counter in
  if cur < n && not (Atomic.compare_and_set counter cur n) then
    bump_id_counter n

let create ~mem ~devices ~pc =
  {
    id = Atomic.fetch_and_add counter 1 + 1;
    parent = 0;
    pc;
    regs = Array.make S2e_isa.Insn.num_regs (Expr.const 0L);
    mem;
    constraints = [];
    soft_constraints = 0;
    devices;
    irq_enabled = false;
    in_irq = false;
    iepc = 0;
    sepc = 0;
    last_irq = 0;
    pending_irqs = [];
    irqs_suppressed = false;
    status = Active;
    multipath = true;
    incomplete = false;
    instret = 0;
    sym_instret = 0;
    depth = 0;
    virtual_time = 0L;
    env_frames = [];
    ret_stack = [];
    rendezvous = [];
    cases = Case_leaf;
  }

(** Fork a copy for the other side of a branch. *)
let fork t =
  {
    t with
    id = Atomic.fetch_and_add counter 1 + 1;
    parent = t.id;
    regs = Array.copy t.regs;
    devices = S2e_vm.Devices.clone t.devices;
    depth = t.depth + 1;
    (* mem and constraints are persistent; shared structurally *)
  }

let get_reg t r =
  if r = S2e_isa.Insn.reg_zero then Expr.const 0L else t.regs.(r)

let set_reg t r v = if r <> S2e_isa.Insn.reg_zero then t.regs.(r) <- v

let add_constraint t c =
  if not (Expr.equal c Expr.bool_t) then t.constraints <- c :: t.constraints

(** Re-intern every expression the state holds (registers, constraints,
    memory overlay) into the current domain's hash-cons table.  Called
    when a worker adopts a state built by another domain: afterwards the
    state's expressions are physically canonical locally, so equality
    checks, cache keys and memo hits are O(1) again.  One shared interner
    preserves sharing across the three stores; all rewrites are
    structure-preserving, so solver-visible behaviour is unchanged. *)
let rec map_case_tree f = function
  | Case_leaf -> Case_leaf
  | Case_split { disj; base_len; a_suffix; b_suffix; a_tree; b_tree } ->
      Case_split
        {
          disj = f disj;
          base_len;
          a_suffix = List.map f a_suffix;
          b_suffix = List.map f b_suffix;
          a_tree = map_case_tree f a_tree;
          b_tree = map_case_tree f b_tree;
        }

let reintern t =
  let intern = Expr.interner () in
  t.regs <- Array.map intern t.regs;
  t.constraints <- List.map intern t.constraints;
  t.mem <- Symmem.map_overlay intern t.mem;
  t.cases <- map_case_tree intern t.cases

(** Estimated state footprint in "words" (registers + private memory
    overlay + constraints): the quantity the Fig. 8 memory benchmark
    reports a high-watermark of. *)
let footprint t =
  Array.length t.regs
  + Symmem.overlay_size t.mem
  + List.fold_left (fun acc c -> acc + Expr.size c) 0 t.constraints

(* Concrete snapshot helpers for the differential oracle: evaluate the
   state's registers / a memory window under a solver model, yielding the
   concrete machine the symbolic engine claims this path can reach.
   Variables absent from the model read as 0, matching [Expr.eval]. *)

let eval_regs model t =
  Array.init (Array.length t.regs) (fun r ->
      if r = S2e_isa.Insn.reg_zero then 0
      else Int64.to_int (Expr.eval model t.regs.(r)) land 0xFFFFFFFF)

let eval_window model t ~addr ~len =
  let size = Bytes.length (Symmem.base t.mem) in
  if addr < 0 || len <= 0 || addr + len > size then None
  else
    Some
      (String.init len (fun i ->
           Char.chr
             (Int64.to_int (Expr.eval model (Symmem.read_byte t.mem (addr + i)))
             land 0xff)))

let is_active t = t.status = Active

let status_string = function
  | Active -> "active"
  | Halted -> "halted"
  | Killed r -> "killed: " ^ r
  | Faulted r -> "faulted: " ^ r
  | Aborted r -> "aborted: " ^ r

(** Reporting form of a path's outcome: the status, plus an
    [incomplete] marker when a degraded fork may have dropped siblings. *)
let report_string t =
  status_string t.status ^ if t.incomplete then " [incomplete]" else ""
