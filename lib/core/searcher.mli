(** Path-selection strategies: the paper's priority-based selectors
    (section 4.1).  A searcher owns the set of runnable states; the
    executor asks it which path to step next. *)

type t = {
  add : State.t -> unit;
  remove : State.t -> unit;
  select : unit -> State.t option; (** next live state, or [None] when drained *)
  size : unit -> int;              (** live states currently held *)
}

val dfs : unit -> t
(** Depth-first: most recently added live state first. *)

val bfs : unit -> t
(** Breadth-first: oldest live state first. *)

val random : ?seed:int -> unit -> t
(** Uniformly random among live states (deterministic per seed). *)

val scored : (State.t -> int) -> t
(** Pick the live state maximizing the score, recomputed per selection —
    the building block of the MaxCoverage selector. *)

val selector_names : string list
(** Every name {!of_name} accepts. *)

val of_name : string -> t
(** "dfs" | "bfs" | "random" | "scored" | "maxcov" ("maxcov" is an alias
    for "scored" with the default coverage-seeking score: shallowest state
    first, fewest-executed-instructions tiebreak).
    @raise Invalid_argument on any other name, listing the valid
    selectors. *)
