(** Parallel multi-path exploration over OCaml 5 domains.

    The live-state frontier is partitioned across [jobs] workers.  Each
    worker owns a private {!Executor.t} — hence a private {!Searcher.t},
    translation cache, event bus and {!S2e_solver.Solver.ctx} — and the
    workers cooperate through a single mutex-protected steal pool: a
    worker donates frontier states at fork points while peers are idle
    (oldest fork points first, the richest unexplored subtrees), and an
    idle worker adopts a pooled state in O(1).

    Guarantees: [jobs = 1] is bit-for-bit the serial {!Executor.run};
    [jobs = N] terminates with the same *set* of completed paths and the
    same fork/termination totals as serial exploration (scheduling order
    and order-dependent aggregates such as the live-state high watermark
    may differ).  See {!test_case} for the canonical per-path witness
    used to compare runs. *)

type result = {
  jobs : int;
  completed : State.t list;  (** terminated states from every worker *)
  frontier : State.t list;
      (** states still live when a limit fired; empty on a drained run *)
  stats : Executor.stats;  (** aggregated over workers *)
  solver_stats : S2e_solver.Solver.stats;  (** aggregated worker contexts *)
  steals : int;  (** states adopted from the steal pool *)
  wall_seconds : float;
}

val explore :
  ?jobs:int ->
  ?limits:Executor.run_limits ->
  make_engine:(unit -> Executor.t) ->
  boot:(Executor.t -> State.t) ->
  unit ->
  result
(** [explore ~jobs ~make_engine ~boot ()] runs [make_engine] once per
    worker (each returned engine must be fully configured: image loaded,
    unit declared, plugins attached; it is then given a private solver
    context), boots the initial state from the first worker's engine via
    [boot], and explores until the frontier drains or a limit fires.
    @raise Invalid_argument if [jobs < 1]. *)

val explore_frontier :
  ?jobs:int ->
  ?limits:Executor.run_limits ->
  make_engine:(unit -> Executor.t) ->
  State.t list ->
  result
(** {!explore} over a frontier of already-created states instead of a
    fresh boot — the resumption primitive distributed workers use on
    states decoded from a coordinator snapshot.  The result's [frontier]
    holds whatever was still live when a limit fired, so exploration can
    be sliced: run with a small [max_seconds], service control messages,
    resume on [frontier].
    @raise Invalid_argument if [jobs < 1]. *)

val test_case : State.t -> (string * int64) list
(** Canonical concrete input assignment for a terminated path: every
    named symbolic variable in the path constraints bound under the
    deterministic cold-context model, sorted.  Equal across serial and
    parallel explorations of the same tree. *)

val test_cases :
  ?ctx:S2e_solver.Solver.ctx -> State.t -> (string * int64) list list
(** All test cases a terminated state stands for.  A never-merged state
    yields exactly [[test_case s]].  A state produced by [--merge]
    ite-joins expands its case tree — each join recorded both sides'
    original constraint suffixes — back into the enumerated paths'
    constraint lists and solves each, dropping unsatisfiable
    combinations, so sorted case lists compare equal between merged and
    enumerated exploration.  [ctx] (default: a private throwaway context)
    lets a long-lived caller batch many expansions onto one incremental
    instance ring; cases are context-history-independent either way. *)

val test_case_to_string : (string * int64) list -> string
(** ["name=value,..."] rendering of {!test_case}. *)
