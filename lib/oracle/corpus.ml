(** Block corpus: capture, persist and reload the translation blocks a
    real guest workload produces.

    Capture hooks {!S2e_core.Events.reg_instr_translate} — the per-insn
    stream {!S2e_dbt.Dbt.translate} emits — and reassembles it into
    blocks (contiguous pcs, cut at terminators and at the 32-insn block
    cap), deduplicated by [(pc, bytes)] so retranslation after cache
    invalidation does not inflate the corpus.  The same engine run also
    samples symbolic states: whenever the path has constraints and the
    solver holds a model, the state is concretized through that model
    into a standalone {!Interp.pre} — driver (3) of the oracle.

    Replayed corpus entries get a synthesized pre-state (block bytes as
    the only code segment, seeded random registers): the differential
    property under test is "DBT ≡ reference interpreter on this exact
    pre-state", not "replay ≡ original run", so fresh registers and
    devices are sound — and better, since they exercise each block under
    inputs the workload never produced.

    Manifest format (one block per line, stable across runs):
    {v
    # s2e-oracle corpus v1 <workload> <count>
    <pc-hex>:<bytes-hex>
    v} *)

open S2e_isa
open S2e_core
module Vm = S2e_vm
module Guest = S2e_guest.Guest
module Solver = S2e_solver.Solver

type entry = { e_pc : int; e_bytes : string }

let insns_of_entry e =
  let get i =
    if i < String.length e.e_bytes then Char.code e.e_bytes.[i] else 0
  in
  let n = String.length e.e_bytes / Insn.insn_size in
  match List.init n (fun i -> Insn.decode_with ~get (i * Insn.insn_size)) with
  | insns -> Some insns
  | exception Insn.Invalid_instruction _ -> None

(* ------------------------------------------------------------------ *)
(* Collector                                                          *)
(* ------------------------------------------------------------------ *)

(** Attach a block collector to [engine]'s translate stream.  Returns a
    finalizer that flushes the in-flight block and yields all captured
    entries in first-seen order. *)
let collector (engine : Executor.t) =
  let seen = Hashtbl.create 256 in
  let entries = ref [] in
  let cur = ref [] (* reversed *) in
  let cur_start = ref 0 in
  let cur_next = ref (-1) in
  let flush () =
    match List.rev !cur with
    | [] -> ()
    | insns ->
        let buf = Bytes.create (List.length insns * Insn.insn_size) in
        List.iteri (fun i insn -> Insn.encode insn buf (i * Insn.insn_size)) insns;
        let e = { e_pc = !cur_start; e_bytes = Bytes.to_string buf } in
        if not (Hashtbl.mem seen (e.e_pc, e.e_bytes)) then begin
          Hashtbl.add seen (e.e_pc, e.e_bytes) ();
          entries := e :: !entries
        end;
        cur := [];
        cur_next := -1
  in
  Events.reg_instr_translate engine.Executor.events (fun pc insn ->
      if pc <> !cur_next then begin
        flush ();
        cur_start := pc
      end;
      cur := insn :: !cur;
      cur_next := pc + Insn.insn_size;
      if Insn.is_block_terminator insn || List.length !cur >= 32 then flush ());
  fun () ->
    flush ();
    List.rev !entries

(* ------------------------------------------------------------------ *)
(* Manifest                                                           *)
(* ------------------------------------------------------------------ *)

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  if String.length h mod 2 <> 0 then failwith "odd-length hex"
  else
    String.init (String.length h / 2) (fun i ->
        Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

let save path ~workload entries =
  let oc = open_out path in
  Printf.fprintf oc "# s2e-oracle corpus v1 %s %d\n" workload
    (List.length entries);
  List.iter
    (fun e -> Printf.fprintf oc "%x:%s\n" e.e_pc (hex_of_string e.e_bytes))
    entries;
  close_out oc

(** [load path] returns [(workload, entries)].  Raises [Failure] on a
    malformed manifest. *)
let load path =
  let ic = open_in path in
  let workload = ref "?" in
  let entries = ref [] in
  (try
     let header = input_line ic in
     (match String.split_on_char ' ' header with
     | "#" :: "s2e-oracle" :: "corpus" :: "v1" :: wl :: _ -> workload := wl
     | _ -> failwith (path ^ ": not an s2e-oracle corpus manifest"));
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match String.index_opt line ':' with
         | Some i ->
             let pc = int_of_string ("0x" ^ String.sub line 0 i) in
             let bytes =
               string_of_hex
                 (String.sub line (i + 1) (String.length line - i - 1))
             in
             entries := { e_pc = pc; e_bytes = bytes } :: !entries
         | None -> failwith (path ^ ": malformed corpus line: " ^ line)
     done
   with End_of_file -> ());
  close_in ic;
  (!workload, List.rev !entries)

(* ------------------------------------------------------------------ *)
(* Capture                                                            *)
(* ------------------------------------------------------------------ *)

let workload_src = function
  | "exerciser" -> Some ("exerciser", S2e_guest.Workloads_src.exerciser)
  | "urlparse" -> Some ("urlparse", S2e_guest.Workloads_src.urlparse)
  | "ping" -> Some ("ping", S2e_guest.Workloads_src.ping ~buggy:false)
  | "ping-buggy" -> Some ("ping", S2e_guest.Workloads_src.ping ~buggy:true)
  | "mua" -> Some ("mua", S2e_guest.Workloads_src.mua)
  | "symloop" -> Some ("symloop", S2e_guest.Workloads_src.symloop)
  | _ -> None

type capture_result = {
  cap_workload : string;
  cap_entries : entry list;
  cap_sym : Interp.pre list;  (** model-concretized symbolic states *)
}

(* Concretize a symbolic state through [model] into a standalone
   pre-state: registers, the interrupt vectors, a code window at pc and
   a 64-byte data window around each register value that points into
   RAM.  Anything not captured reads as zero on both sides of the
   differential run, which keeps the comparison sound. *)
let sym_pre_of_state model (s : State.t) =
  let ram = Vm.Layout.ram_size in
  if s.pc < 0 || s.pc >= ram then None
  else
    let regs = State.eval_regs model s in
    let window addr len =
      if addr < 0 || addr >= ram then None
      else
        let len = min len (ram - addr) in
        match State.eval_window model s ~addr ~len with
        | Some bytes -> Some (addr, bytes)
        | None -> None
    in
    let code = window s.pc (32 * Insn.insn_size) in
    let vecs = window 0 16 in
    let reg_windows =
      Array.to_list regs
      |> List.sort_uniq compare
      |> List.filter_map (fun v -> window (v land lnot 3) 64)
    in
    match code with
    | None -> None
    | Some _ ->
        let segments =
          List.filter_map Fun.id [ vecs ] @ reg_windows
          @ List.filter_map Fun.id [ code ]
        in
        Some
          {
            Interp.pre_pc = s.pc;
            pre_regs = regs;
            pre_segments = segments;
            pre_frame = None;
            pre_card_id = 1;
            pre_label = Printf.sprintf "sym@0x%x" s.pc;
          }

(** Run [workload] under the LC engine (same configuration as
    [s2e_cli explore]) for [seconds], capturing every translated block
    and up to [max_sym] concretized symbolic states. *)
let capture ?(driver = "nulldrv") ?(seconds = 5.0) ?(max_sym = 64) ~workload ()
    =
  let wl =
    match workload_src workload with
    | Some wl -> wl
    | None -> invalid_arg ("unknown workload " ^ workload)
  in
  let driver_src =
    if driver = "nulldrv" then S2e_guest.Drivers_src.nulldrv
    else List.assoc driver Guest.drivers
  in
  let img = Guest.build ~driver:(driver, driver_src) ~workload:wl () in
  let config = Executor.default_config () in
  config.consistency <- Consistency.LC;
  config.symbolic_hardware_ports <-
    [ (Vm.Layout.port_netdev, Vm.Layout.port_netdev + 16) ];
  let engine = Executor.create ~config () in
  Guest.load_into_engine engine img;
  Executor.set_unit engine [ driver; fst wl ];
  let finalize = collector engine in
  let sym = ref [] in
  let sym_seen = Hashtbl.create 64 in
  let n_sym = ref 0 in
  let probe = ref 0 in
  Events.reg_before_instr engine.Executor.events (fun s pc _insn ->
      (* Sampling every before-instr would dominate the run; probe a
         sparse, deterministic subsequence instead. *)
      incr probe;
      if !n_sym < max_sym && !probe mod 251 = 0 && s.State.constraints <> []
      then
        match Solver.latest_model engine.Executor.solver with
        | None -> ()
        | Some model -> (
            let key = (pc, Hashtbl.hash (State.eval_regs model s)) in
            if not (Hashtbl.mem sym_seen key) then
              match sym_pre_of_state model s with
              | Some pre ->
                  Hashtbl.add sym_seen key ();
                  incr n_sym;
                  sym := pre :: !sym
              | None -> ()));
  let s0 = Executor.boot engine ~entry:img.Guest.entry () in
  ignore
    (Executor.run
       ~limits:
         {
           Executor.max_instructions = None;
           max_seconds = Some seconds;
           max_completed = None;
         }
       engine s0);
  {
    cap_workload = workload;
    cap_entries = finalize ();
    cap_sym = List.rev !sym;
  }
