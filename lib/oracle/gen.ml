(** Coverage-guided generator of random-but-valid instruction blocks.

    Every instruction class (each ALU op, each branch condition, each S2E
    sub-op, and every other constructor) and every operand value class
    has a counter in a {e private} {!S2e_obs.Metrics} registry; classes
    are picked with weight [1 / (1 + count)], so rare encodings get hit
    quickly and corpus feedback (via {!note_insn}) steers generation away
    from what workload capture already covered.  A private registry
    rather than the process-wide one keeps the guidance — and therefore
    the whole run — a pure function of the seed.

    Programs are rendered to assembler text and assembled through
    {!S2e_isa.Asm}, so the generator also exercises the assembler/
    disassembler path the roundtrip property test checks. *)

open S2e_isa
module Obs = S2e_obs

let code_base = 0x2000
let window_base = 0x10000
let window_size = 0x1000

type case = { c_pre : Interp.pre; c_insns : Insn.t list }

let alu_ops =
  Insn.[ Add; Sub; Mul; Divu; Remu; And; Or; Xor; Shl; Shr; Sar; Slt; Sltu; Seq ]

let branch_conds = Insn.[ Beq; Bne; Blt; Bge; Bltu; Bgeu ]

let s2e_ops =
  Insn.[ Sym_reg; Sym_mem; Enable_mp; Disable_mp; Print; Kill_path;
         Assert_op; Concretize; Disable_irq; Enable_irq ]

(* Straight-line (body) classes and block-terminator classes.  Class
   names match {!class_of} below so corpus feedback lands on the same
   counters generation draws from. *)
let body_classes =
  List.map (fun op -> "alu." ^ Insn.alu_name op) alu_ops
  @ List.map (fun op -> "alui." ^ Insn.alu_name op) alu_ops
  @ [ "li"; "mov"; "lw"; "lb"; "sw"; "sb"; "in"; "out"; "cli"; "sti"; "nop" ]
  @ List.map Insn.s2e_name s2e_ops

let term_classes =
  [ "jmp"; "jr"; "jal"; "jalr" ]
  @ List.map Insn.branch_name branch_conds
  @ [ "syscall"; "sysret"; "iret"; "halt" ]

let class_of (i : Insn.t) =
  match i with
  | Alu { op; _ } -> "alu." ^ Insn.alu_name op
  | Alui { op; _ } -> "alui." ^ Insn.alu_name op
  | Li _ -> "li"
  | Mov _ -> "mov"
  | Lw _ -> "lw"
  | Lb _ -> "lb"
  | Sw _ -> "sw"
  | Sb _ -> "sb"
  | Jmp _ -> "jmp"
  | Jr _ -> "jr"
  | Jal _ -> "jal"
  | Jalr _ -> "jalr"
  | Branch { cond; _ } -> Insn.branch_name cond
  | In _ -> "in"
  | Out _ -> "out"
  | Syscall -> "syscall"
  | Sysret -> "sysret"
  | Iret -> "iret"
  | Halt -> "halt"
  | Cli -> "cli"
  | Sti -> "sti"
  | Nop -> "nop"
  | S2e { op; _ } -> Insn.s2e_name op

let constructor_of (i : Insn.t) =
  match i with
  | Alu _ -> "Alu" | Alui _ -> "Alui" | Li _ -> "Li" | Mov _ -> "Mov"
  | Lw _ -> "Lw" | Lb _ -> "Lb" | Sw _ -> "Sw" | Sb _ -> "Sb"
  | Jmp _ -> "Jmp" | Jr _ -> "Jr" | Jal _ -> "Jal" | Jalr _ -> "Jalr"
  | Branch _ -> "Branch" | In _ -> "In" | Out _ -> "Out"
  | Syscall -> "Syscall" | Sysret -> "Sysret" | Iret -> "Iret"
  | Halt -> "Halt" | Cli -> "Cli" | Sti -> "Sti" | Nop -> "Nop"
  | S2e _ -> "S2e"

let all_constructors =
  [ "Alu"; "Alui"; "Li"; "Mov"; "Lw"; "Lb"; "Sw"; "Sb"; "Jmp"; "Jr"; "Jal";
    "Jalr"; "Branch"; "In"; "Out"; "Syscall"; "Sysret"; "Iret"; "Halt";
    "Cli"; "Sti"; "Nop"; "S2e" ]

(* Operand value classes (immediates and initial register values). *)
let opnd_classes =
  [ "zero"; "one"; "minus1"; "small"; "boundary"; "window"; "rand" ]

type t = {
  rng : Sm64.t;
  reg : Obs.Metrics.t;
  insn_counters : (string * Obs.Metrics.counter) list;
  opnd_counters : (string * Obs.Metrics.counter) list;
  (* Refreshed once per generated program (in {!next}), not per pick:
     snapshotting the registry is the expensive step, and weights a few
     increments stale guide just as well. *)
  mutable snap : Obs.Metrics.snapshot;
  mutable card : int;
}

let create ~seed =
  let reg = Obs.Metrics.create () in
  let mk prefix names =
    List.map (fun n -> (n, Obs.Metrics.counter ~reg (prefix ^ n))) names
  in
  {
    rng = Sm64.create seed;
    reg;
    insn_counters = mk "oracle.gen.insn." (body_classes @ term_classes);
    opnd_counters = mk "oracle.gen.opnd." opnd_classes;
    snap = Obs.Metrics.snapshot ~reg ();
    card = 1;
  }

let bump counters name =
  match List.assoc_opt name counters with
  | Some c -> Obs.Metrics.incr c
  | None -> ()

(** Corpus feedback: account a captured instruction so generation biases
    toward classes rare across {e both} sources. *)
let note_insn t insn = bump t.insn_counters (class_of insn)

(* Pick among [names] with weight 1/(1+count): unhit classes dominate. *)
let pick_guided t counters names =
  let snap = t.snap in
  let prefix =
    if counters == t.insn_counters then "oracle.gen.insn." else "oracle.gen.opnd."
  in
  let weights =
    List.map
      (fun n -> 1.0 /. float_of_int (1 + Obs.Metrics.get_int snap (prefix ^ n)))
      names
  in
  let total = List.fold_left ( +. ) 0.0 weights in
  let u = Sm64.float t.rng *. total in
  let rec scan names weights acc =
    match (names, weights) with
    | [ n ], _ -> n
    | n :: ns, w :: ws -> if u < acc +. w then n else scan ns ws (acc +. w)
    | _ -> assert false
  in
  let chosen = scan names weights 0.0 in
  bump counters chosen;
  chosen

let reg_any t = Sm64.int t.rng Insn.num_regs

(* An operand value by guided class.  [window] biases toward in-RAM data
   addresses so loads and stores mostly land; [boundary] includes
   near-end-of-RAM values so the fault path is exercised too. *)
let opnd_value t =
  match pick_guided t t.opnd_counters opnd_classes with
  | "zero" -> 0
  | "one" -> 1
  | "minus1" -> 0xFFFFFFFF
  | "small" -> Sm64.int t.rng 128
  | "boundary" ->
      let b =
        [| 0x7FFFFFFF; 0x80000000; 0xFFFFFFFE; S2e_vm.Layout.ram_size - 2;
           S2e_vm.Layout.ram_size; S2e_vm.Layout.ram_size - 8 |]
      in
      b.(Sm64.int t.rng (Array.length b))
  | "window" -> window_base + Sm64.int t.rng window_size
  | _ -> Int64.to_int (Int64.logand (Sm64.next t.rng) 0xFFFFFFFFL)

let imm32 t = Int32.of_int (opnd_value t)

let mem_off t =
  (* Mostly small offsets so window-based addressing stays in RAM. *)
  if Sm64.int t.rng 4 < 3 then Int32.of_int (Sm64.int t.rng 64) else imm32 t

let port_off t =
  let open S2e_vm.Layout in
  let choices =
    [| port_console; port_console + 1; 0x0f; port_timer; port_timer + 1;
       port_netdev; port_netdev + 1; port_netdev + 2; port_netdev + 3;
       port_netdev + 5; port_netdev + 6; port_netdev + 7; port_netdev + 8 |]
  in
  if Sm64.int t.rng 8 < 7 then
    Int32.of_int choices.(Sm64.int t.rng (Array.length choices))
  else Int32.of_int (Sm64.int t.rng 0x100)

let jump_target t =
  match Sm64.int t.rng 4 with
  | 0 -> Int32.of_int (code_base + (Insn.insn_size * Sm64.int t.rng 40))
  | 1 -> Int32.of_int (window_base + (4 * Sm64.int t.rng 64))
  | 2 -> Int32.of_int (Sm64.int t.rng S2e_vm.Layout.ram_size)
  | _ -> imm32 t

let body_insn t cls : Insn.t =
  let r () = reg_any t in
  match String.split_on_char '.' cls with
  | [ "alu"; name ] ->
      let op = List.assoc name (List.map (fun o -> (Insn.alu_name o, o)) alu_ops) in
      Alu { op; rd = r (); rs1 = r (); rs2 = r () }
  | [ "alui"; name ] ->
      let op = List.assoc name (List.map (fun o -> (Insn.alu_name o, o)) alu_ops) in
      Alui { op; rd = r (); rs1 = r (); imm = imm32 t }
  | [ "s2e"; name ] ->
      let op =
        List.assoc ("s2e." ^ name)
          (List.map (fun o -> (Insn.s2e_name o, o)) s2e_ops)
      in
      S2e { op; rs1 = r (); rs2 = r (); imm = Int32.of_int (Sm64.int t.rng 256) }
  | _ -> (
      match cls with
      | "li" -> Li { rd = r (); imm = imm32 t }
      | "mov" -> Mov { rd = r (); rs1 = r () }
      | "lw" -> Lw { rd = r (); base = r (); off = mem_off t }
      | "lb" -> Lb { rd = r (); base = r (); off = mem_off t }
      | "sw" -> Sw { src = r (); base = r (); off = mem_off t }
      | "sb" -> Sb { src = r (); base = r (); off = mem_off t }
      | "in" ->
          let port = if Sm64.int t.rng 4 = 0 then r () else Insn.reg_zero in
          In { rd = r (); port; port_off = port_off t }
      | "out" ->
          let port = if Sm64.int t.rng 4 = 0 then r () else Insn.reg_zero in
          Out { src = r (); port; port_off = port_off t }
      | "cli" -> Cli
      | "sti" -> Sti
      | _ -> Nop)

let term_insn t cls : Insn.t =
  let r () = reg_any t in
  match cls with
  | "jmp" -> Jmp { target = jump_target t }
  | "jr" -> Jr { rs1 = r () }
  | "jal" -> Jal { target = jump_target t }
  | "jalr" -> Jalr { rs1 = r () }
  | "syscall" -> Syscall
  | "sysret" -> Sysret
  | "iret" -> Iret
  | "halt" -> Halt
  | cls ->
      let cond =
        List.assoc cls (List.map (fun c -> (Insn.branch_name c, c)) branch_conds)
      in
      Branch { cond; rs1 = r (); rs2 = r (); target = jump_target t }

(* A canned netdev DMA dance: program the DMA address and length, then
   fire the DMA-rx command.  This is the only realistic way random
   programs reach the device-DMA path (and its memory-fault contract). *)
let dma_dance t : Insn.t list =
  let open S2e_vm.Layout in
  let ra = Sm64.int t.rng 12 in
  let addr =
    if Sm64.int t.rng 4 = 0 then ram_size - 4 else window_base + Sm64.int t.rng 256
  in
  let reg_port off = Int32.of_int (port_netdev + off) in
  [ Li { rd = ra; imm = Int32.of_int addr };
    Out { src = ra; port = Insn.reg_zero; port_off = reg_port 6 };
    Li { rd = ra; imm = Int32.of_int (Sm64.int t.rng 64) };
    Out { src = ra; port = Insn.reg_zero; port_off = reg_port 7 };
    Li { rd = ra; imm = 5l };
    Out { src = ra; port = Insn.reg_zero; port_off = reg_port 1 } ]

(** Initial register file: r0–r14 biased toward window addresses and
    boundary values, r15 pinned to zero. *)
let init_regs t =
  Array.init Insn.num_regs (fun r ->
      if r = Insn.reg_zero then 0
      else if Sm64.int t.rng 2 = 0 then window_base + Sm64.int t.rng window_size
      else opnd_value t)

let frame t =
  if Sm64.int t.rng 3 = 0 then
    Some (Array.init (Sm64.int t.rng 64) (fun _ -> Sm64.int t.rng 256))
  else None

let card_id t =
  t.card <- 1 + Sm64.int t.rng 2;
  t.card

(** Generate one program: instruction list, assembled into the code
    segment at {!code_base}, plus a full pre-state. *)
let next t : case =
  t.snap <- Obs.Metrics.snapshot ~reg:t.reg ();
  let shape = Sm64.float t.rng in
  let insns =
    if shape < 0.08 then
      (* Terminator-free over-length body: exercises max_block truncation. *)
      List.init 36 (fun _ ->
          body_insn t (pick_guided t t.insn_counters body_classes))
    else if shape < 0.14 then
      (* Short terminator-free body: the block runs into the zero bytes
         after the code and must fault at translation time, executing
         nothing on either side. *)
      List.init (1 + Sm64.int t.rng 4) (fun _ ->
          body_insn t (pick_guided t t.insn_counters body_classes))
    else begin
      let n_body = Sm64.int t.rng 20 in
      let body =
        List.init n_body (fun _ ->
            body_insn t (pick_guided t t.insn_counters body_classes))
      in
      let body =
        if Sm64.int t.rng 7 = 0 then begin
          let dance = dma_dance t in
          List.iter (note_insn t) dance;
          dance @ body
        end
        else body
      in
      body @ [ term_insn t (pick_guided t t.insn_counters term_classes) ]
    end
  in
  let text = String.concat "\n" (List.map Insn.to_string insns) in
  let img = Asm.assemble ~origin:code_base text in
  let pre =
    {
      Interp.pre_pc = code_base;
      pre_regs = init_regs t;
      pre_segments = [ (code_base, Bytes.to_string img.Asm.code) ];
      pre_frame = frame t;
      pre_card_id = card_id t;
      pre_label = "generated";
    }
  in
  { c_pre = pre; c_insns = insns }
