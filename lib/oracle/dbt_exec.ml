(** The DBT fast path of the differential harness: the production
    {!S2e_core.Executor} run fully concretely.

    The engine is configured with SC-CE consistency, under which
    [s2e.symreg] / [s2e.symmem] are inert, so a run never creates a
    symbolic value and never queries the solver: every expression folds
    to a constant through the smart constructors, and execution flows
    through exactly the translator, expression folder and copy-on-write
    memory the symbolic engine uses — the code under test.

    One engine (and thus one translation cache) is reused across runs;
    callers that place different code at the same pc must {!flush}
    between runs.  Each run gets a fresh state, fresh devices and a fresh
    copy-on-write memory over a shared all-zero base, mirroring
    {!Interp.pre} exactly. *)

open S2e_expr
open S2e_core
module Vm = S2e_vm
module Dbt = S2e_dbt.Dbt

type t = { engine : Executor.t; zero_base : Bytes.t }

let create () =
  let config = Executor.default_config () in
  config.consistency <- Consistency.SC_CE;
  let engine = Executor.create ~config () in
  { engine; zero_base = Bytes.make Vm.Layout.ram_size '\000' }

let flush t = Dbt.flush t.engine.Executor.dbt
let dbt t = t.engine.Executor.dbt

let state_of_pre t (pre : Interp.pre) =
  let mem =
    List.fold_left
      (fun m (addr, s) ->
        Symmem.blit_concrete m addr
          (Array.init (String.length s) (fun i -> Char.code s.[i])))
      (Symmem.create ~base:t.zero_base)
      pre.Interp.pre_segments
  in
  let devices = Vm.Devices.create ~card_id:pre.pre_card_id () in
  (match pre.pre_frame with
  | Some f -> ignore (Vm.Netdev.inject_frame devices.netdev f)
  | None -> ());
  let s = State.create ~mem ~devices ~pc:pre.pre_pc in
  Array.iteri
    (fun r v -> State.set_reg s r (Expr.const (Int64.of_int v)))
    pre.pre_regs;
  s

(* -1 is unrepresentable on the reference side, so any symbolic residue
   (impossible under SC-CE, and exactly what the oracle must catch if it
   ever happens) surfaces as a register/memory divergence. *)
let concrete_or_sentinel e =
  match Expr.to_const e with
  | Some v -> Int64.to_int v land 0xFFFFFFFF
  | None -> -1

let post_of_state (s : State.t) : Interp.post =
  let kind, detail =
    match s.status with
    | State.Active -> (Interp.Exited, "")
    | State.Halted -> (Interp.Halted, "halt")
    | State.Killed d -> (Interp.Killed, d)
    | State.Faulted d -> (Interp.Faulted, d)
    | State.Aborted d -> (Interp.Faulted, "aborted: " ^ d)
  in
  let regs =
    Array.init S2e_isa.Insn.num_regs (fun r ->
        concrete_or_sentinel (State.get_reg s r))
  in
  let p_mem =
    Symmem.fold_overlay
      (fun addr e acc ->
        let v =
          match Expr.to_const e with
          | Some v -> Int64.to_int v land 0xff
          | None -> -1
        in
        (addr, v) :: acc)
      s.mem []
    |> List.rev
  in
  {
    Interp.p_kind = kind;
    p_detail = detail;
    p_pc = s.pc;
    p_regs = regs;
    p_instret = s.instret;
    p_mem;
    p_irq_enabled = s.irq_enabled;
    p_in_irq = s.in_irq;
    p_iepc = s.iepc;
    p_sepc = s.sepc;
    p_last_irq = s.last_irq;
    p_pending_irqs = s.pending_irqs;
    p_irqs_suppressed = s.irqs_suppressed;
  }

(** Execute exactly one translation block of [pre] through the engine and
    return the comparable post-state.  Exceptions escaping the engine
    (memory fault inside a device DMA, invalid instruction at translation
    time) are part of the fault contract and map to [Faulted]. *)
let run t (pre : Interp.pre) : Interp.post =
  let s = state_of_pre t pre in
  (try Executor.exec_block t.engine s
   with
  | Symmem.Fault m -> s.status <- State.Faulted m
  | S2e_isa.Insn.Invalid_instruction op ->
      s.status <- State.Faulted (Printf.sprintf "invalid opcode 0x%x" op));
  post_of_state s
