(** Deliberately naive reference interpreter for the guest ISA: the
    oracle half of the differential harness.

    Straight structural recursion over {!S2e_isa.Insn.t} with mutable
    byte-array memory — no translation, no caching, no expression layer.
    It implements the {e engine's} block-execution contract (not the
    step-at-a-time {!S2e_vm.Machine} contract), so its post-state is
    directly comparable with the DBT fast path run under SC-CE:

    - {b Block formation is part of the contract.}  The DBT decodes a
      whole block at translation time (up to [max_block] instructions,
      stopping at the first terminator) before executing any of it.  The
      interpreter does the same: an invalid instruction anywhere in the
      block faults the run {e before} the first instruction executes, and
      stores into the current block's own bytes do not affect the
      already-decoded instructions.
    - Path-ending instructions ([halt], [s2e.kill], a failed assertion, a
      memory fault) leave [pc] at the instruction itself, like the
      engine's [end_state].
    - Device time advances once per block, by the block's full decoded
      length, and only when the block completed normally and interrupts
      are not suppressed — exactly the engine's tick placement.
    - S2E opcodes behave as under SC-CE: [symreg]/[symmem] are inert, the
      sample input stays concrete.

    The shared specification between the two sides is {!Insn.decode} and
    the device complement; everything else (ALU, memory, control flow,
    interrupt plumbing) is implemented independently, which is what makes
    the differential comparison meaningful for the translator, the
    expression folder and the copy-on-write memory. *)

open S2e_isa
module Vm = S2e_vm

(* Test-only hook: perturb each decoded instruction before the reference
   executes it.  Lets the test suite prove the harness actually catches a
   wrong interpreter (and exercise the divergence minimizer) without
   shipping a broken semantics. *)
let test_perturbation : (Insn.t -> Insn.t) option ref = ref None

type end_kind = Exited | Halted | Killed | Faulted

let kind_name = function
  | Exited -> "exited"
  | Halted -> "halted"
  | Killed -> "killed"
  | Faulted -> "faulted"

(** Pre-state of one differential run.  Both sides start from all-zero
    RAM with [pre_segments] blitted over it in order, a fresh device
    complement, interrupts disabled, and empty pending-IRQ queue — the
    reset state of {!S2e_core.State.create}. *)
type pre = {
  pre_pc : int;
  pre_regs : int array;               (* 16 values in [0, 2^32) *)
  pre_segments : (int * string) list; (* applied over zeroed RAM, in order *)
  pre_frame : int array option;       (* frame queued in the NIC before the run *)
  pre_card_id : int;
  pre_label : string;                 (* provenance, for repro dumps *)
}

(** Complete comparable post-state of one block execution.  [p_mem] lists
    every byte that may differ from the all-zero background (the side's
    write-set plus the pre-state segments), ascending; comparison takes
    the union of both sides' lists with default 0.  [p_detail] is
    informational only. *)
type post = {
  p_kind : end_kind;
  p_detail : string;
  p_pc : int;
  p_regs : int array;
  p_instret : int;
  p_mem : (int * int) list;
  p_irq_enabled : bool;
  p_in_irq : bool;
  p_iepc : int;
  p_sepc : int;
  p_last_irq : int;
  p_pending_irqs : int list;
  p_irqs_suppressed : bool;
}

exception Guest_fault of string
exception Path_done of end_kind * string

type t = { ram : Bytes.t }
(* Reusable scratch RAM: zeroed outside the run's write-set, restored
   after every run (segments and dirty bytes re-zeroed). *)

let create () = { ram = Bytes.make Vm.Layout.ram_size '\000' }

let mask32 v = v land 0xFFFFFFFF
let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let alu_eval op a b =
  match op with
  | Insn.Add -> a + b
  | Insn.Sub -> a - b
  | Insn.Mul -> a * b
  | Insn.Divu -> if b = 0 then 0xFFFFFFFF else a / b
  | Insn.Remu -> if b = 0 then a else a mod b
  | Insn.And -> a land b
  | Insn.Or -> a lor b
  | Insn.Xor -> a lxor b
  | Insn.Shl -> a lsl (b land 31)
  | Insn.Shr -> a lsr (b land 31)
  | Insn.Sar -> to_signed a asr (b land 31)
  | Insn.Slt -> if to_signed a < to_signed b then 1 else 0
  | Insn.Sltu -> if a < b then 1 else 0
  | Insn.Seq -> if a = b then 1 else 0

let branch_taken cond a b =
  match cond with
  | Insn.Beq -> a = b
  | Insn.Bne -> a <> b
  | Insn.Blt -> to_signed a < to_signed b
  | Insn.Bge -> to_signed a >= to_signed b
  | Insn.Bltu -> a < b
  | Insn.Bgeu -> a >= b

(* Special machine port handled outside the device complement (the IRQ
   cause register), mirrored from Machine/Executor. *)
let port_irq_cause = 0x0f

(** Run the block at [pre.pre_pc] to completion and return the
    post-state.  [max_block] must equal the DBT's block cap. *)
let run t ?(max_block = 32) (pre : pre) : post =
  let ram = t.ram in
  let size = Bytes.length ram in
  List.iter
    (fun (addr, s) ->
      assert (addr >= 0 && addr + String.length s <= size);
      Bytes.blit_string s 0 ram addr (String.length s))
    pre.pre_segments;
  let dirty = ref [] in
  let regs = Array.copy pre.pre_regs in
  regs.(Insn.reg_zero) <- 0;
  let devices = Vm.Devices.create ~card_id:pre.pre_card_id () in
  (match pre.pre_frame with
  | Some f -> ignore (Vm.Netdev.inject_frame devices.netdev f)
  | None -> ());
  let pc = ref pre.pre_pc in
  let irq_enabled = ref false and in_irq = ref false in
  let iepc = ref 0 and sepc = ref 0 and last_irq = ref 0 in
  let pending = ref [] and suppressed = ref false in
  let instret = ref 0 in

  let check addr len =
    if addr < 0 || addr + len > size then
      raise (Guest_fault (Printf.sprintf "memory access out of range: 0x%x" addr))
  in
  let read8 addr =
    check addr 1;
    Char.code (Bytes.get ram addr)
  in
  let write8 addr v =
    check addr 1;
    Bytes.set ram addr (Char.chr (v land 0xff));
    dirty := addr :: !dirty
  in
  let read32 addr =
    check addr 4;
    Int32.to_int (Bytes.get_int32_le ram addr) land 0xFFFFFFFF
  in
  let write32 addr v =
    (* All-or-nothing like Symmem.write_word: bounds-check the whole word
       before any byte lands. *)
    check addr 4;
    Bytes.set_int32_le ram addr (Int32.of_int (mask32 v));
    dirty := addr :: (addr + 1) :: (addr + 2) :: (addr + 3) :: !dirty
  in
  let get_reg r = if r = Insn.reg_zero then 0 else regs.(r) in
  let set_reg r v = if r <> Insn.reg_zero then regs.(r) <- mask32 v in
  let apply_actions actions =
    List.iter
      (fun action ->
        match action with
        | Vm.Device.Dma_write { addr; data } ->
            Array.iteri (fun i b -> write8 (addr + i) b) data
        | Vm.Device.Raise_irq irq -> pending := !pending @ [ irq ])
      actions
  in

  (* Interrupt delivery happens between blocks (engine contract), before
     the block is even formed. *)
  (match !pending with
  | irq :: rest when !irq_enabled && (not !in_irq) && not !suppressed ->
      pending := rest;
      last_irq := irq;
      iepc := !pc;
      in_irq := true;
      irq_enabled := false;
      pc := read32 Vm.Layout.vec_irq
  | _ -> ());

  let perturb = match !test_perturbation with Some f -> f | None -> Fun.id in

  (* Translation-time decode of the whole block: an undecodable or
     unfetchable instruction faults before anything executes. *)
  let decode_block pc0 =
    let get a =
      if a < 0 || a >= size then
        raise (Guest_fault (Printf.sprintf "memory access out of range: 0x%x" a))
      else Char.code (Bytes.get ram a)
    in
    let rec go addr acc n =
      let insn =
        try Insn.decode_with ~get addr
        with Insn.Invalid_instruction op ->
          raise (Guest_fault (Printf.sprintf "invalid opcode 0x%x at 0x%x" op addr))
      in
      let acc = (addr, perturb insn) :: acc in
      if Insn.is_block_terminator insn || n + 1 >= max_block then List.rev acc
      else go (addr + Insn.insn_size) acc (n + 1)
    in
    go pc0 [] 0
  in

  let exec_insn addr insn =
    let next = addr + Insn.insn_size in
    instret := !instret + 1;
    match insn with
    | Insn.Alu { op; rd; rs1; rs2 } ->
        set_reg rd (alu_eval op (get_reg rs1) (get_reg rs2));
        pc := next
    | Insn.Alui { op; rd; rs1; imm } ->
        set_reg rd (alu_eval op (get_reg rs1) (mask32 (Int32.to_int imm)));
        pc := next
    | Insn.Li { rd; imm } ->
        set_reg rd (mask32 (Int32.to_int imm));
        pc := next
    | Insn.Mov { rd; rs1 } ->
        set_reg rd (get_reg rs1);
        pc := next
    | Insn.Lw { rd; base; off } ->
        set_reg rd (read32 (mask32 (get_reg base + Int32.to_int off)));
        pc := next
    | Insn.Lb { rd; base; off } ->
        set_reg rd (read8 (mask32 (get_reg base + Int32.to_int off)));
        pc := next
    | Insn.Sw { src; base; off } ->
        write32 (mask32 (get_reg base + Int32.to_int off)) (get_reg src);
        pc := next
    | Insn.Sb { src; base; off } ->
        write8 (mask32 (get_reg base + Int32.to_int off)) (get_reg src);
        pc := next
    | Insn.Jmp { target } -> pc := Int32.to_int target land 0xFFFFFFFF
    | Insn.Jr { rs1 } -> pc := get_reg rs1
    | Insn.Jal { target } ->
        set_reg Insn.reg_lr next;
        pc := Int32.to_int target land 0xFFFFFFFF
    | Insn.Jalr { rs1 } ->
        (* Read before writing lr, so `jalr lr` targets the old value. *)
        let target = get_reg rs1 in
        set_reg Insn.reg_lr next;
        pc := target
    | Insn.Branch { cond; rs1; rs2; target } ->
        if branch_taken cond (get_reg rs1) (get_reg rs2) then
          pc := Int32.to_int target land 0xFFFFFFFF
        else pc := next
    | Insn.In { rd; port; port_off } ->
        let p = mask32 (get_reg port + Int32.to_int port_off) in
        let v =
          if p = port_irq_cause then !last_irq else Vm.Devices.read_port devices p
        in
        set_reg rd v;
        pc := next
    | Insn.Out { src; port; port_off } ->
        let p = mask32 (get_reg port + Int32.to_int port_off) in
        apply_actions (Vm.Devices.write_port devices p (get_reg src));
        pc := next
    | Insn.Syscall ->
        sepc := next;
        pc := read32 Vm.Layout.vec_syscall
    | Insn.Sysret -> pc := !sepc
    | Insn.Iret ->
        pc := !iepc;
        in_irq := false;
        irq_enabled := true
    | Insn.Halt -> raise (Path_done (Halted, "halt"))
    | Insn.Cli ->
        irq_enabled := false;
        pc := next
    | Insn.Sti ->
        irq_enabled := true;
        pc := next
    | Insn.Nop -> pc := next
    | Insn.S2e { op; rs1; imm; _ } ->
        (match op with
        | Insn.Kill_path ->
            raise (Path_done (Killed, Printf.sprintf "guest kill (%ld)" imm))
        | Insn.Assert_op when get_reg rs1 = 0 ->
            raise (Path_done (Faulted, "assertion failed"))
        | Insn.Disable_irq -> suppressed := true
        | Insn.Enable_irq -> suppressed := false
        (* Sym_reg / Sym_mem are inert under SC-CE; Enable_mp /
           Disable_mp / Print / Concretize have no concrete effect. *)
        | _ -> ());
        pc := next
  in

  let kind = ref Exited and detail = ref "" in
  let block_len = ref 0 in
  (try
     let insns = Array.of_list (decode_block !pc) in
     let n = Array.length insns in
     block_len := n;
     let i = ref 0 in
     while !i < n do
       let addr, insn = insns.(!i) in
       if !pc <> addr then i := n (* control left the block *)
       else begin
         exec_insn addr insn;
         incr i
       end
     done
   with
  | Path_done (k, d) ->
      kind := k;
      detail := d
  | Guest_fault m ->
      kind := Faulted;
      detail := m);

  (* Block-granularity device tick, like the engine: the full decoded
     block length, only on normal completion, skipped while suppressed.
     The symbolic-mode timer divisor never applies on the oracle side
     (the run is fully concrete). *)
  if !kind = Exited && not !suppressed then begin
    let irqs = Vm.Devices.tick devices !block_len in
    List.iter (fun irq -> pending := !pending @ [ irq ]) irqs
  end;

  (* Post-state: every byte that may differ from the zero background is a
     segment byte or a dirty byte. *)
  let module IS = Set.Make (Int) in
  let addrs =
    List.fold_left
      (fun acc (a, s) ->
        let acc = ref acc in
        for i = a to a + String.length s - 1 do
          acc := IS.add i !acc
        done;
        !acc)
      (IS.of_list !dirty) pre.pre_segments
  in
  let p_mem =
    IS.fold (fun a acc -> (a, Char.code (Bytes.get ram a)) :: acc) addrs []
    |> List.rev
  in
  let post =
    {
      p_kind = !kind;
      p_detail = !detail;
      p_pc = !pc;
      p_regs = Array.copy regs;
      p_instret = !instret;
      p_mem;
      p_irq_enabled = !irq_enabled;
      p_in_irq = !in_irq;
      p_iepc = !iepc;
      p_sepc = !sepc;
      p_last_irq = !last_irq;
      p_pending_irqs = !pending;
      p_irqs_suppressed = !suppressed;
    }
  in
  (* Restore the scratch RAM to all-zero for the next run. *)
  IS.iter (fun a -> Bytes.set ram a '\000') addrs;
  post

(** Differences between a reference post-state and a DBT post-state, as
    human-readable one-liners; empty means the sides agree.  When both
    sides faulted, memory is not compared: the engine's persistent memory
    drops a partially applied DMA wholesale while the mutable reference
    keeps the prefix — both are correct post-fault states, and the fault
    kind, pc, registers and counters are still compared exactly. *)
let diff (a : post) (b : post) : string list =
  let d = ref [] in
  let add fmt = Fmt.kstr (fun s -> d := s :: !d) fmt in
  if a.p_kind <> b.p_kind then
    add "status: ref %s (%s) vs dbt %s (%s)" (kind_name a.p_kind) a.p_detail
      (kind_name b.p_kind) b.p_detail;
  if a.p_pc <> b.p_pc then add "pc: ref 0x%x vs dbt 0x%x" a.p_pc b.p_pc;
  if a.p_instret <> b.p_instret then
    add "instret: ref %d vs dbt %d" a.p_instret b.p_instret;
  Array.iteri
    (fun r va ->
      let vb = b.p_regs.(r) in
      if va <> vb then
        add "reg %s: ref 0x%x vs dbt 0x%x" (Insn.reg_name r) va vb)
    a.p_regs;
  if not (a.p_kind = Faulted && b.p_kind = Faulted) then begin
    let module IM = Map.Make (Int) in
    let to_map l = IM.of_seq (List.to_seq l) in
    let ma = to_map a.p_mem and mb = to_map b.p_mem in
    let get m k = match IM.find_opt k m with Some v -> v | None -> 0 in
    IM.iter
      (fun k va -> if va <> get mb k then
          add "mem[0x%x]: ref 0x%02x vs dbt 0x%02x" k va (get mb k))
      ma;
    IM.iter
      (fun k vb -> if not (IM.mem k ma) && vb <> 0 then
          add "mem[0x%x]: ref 0x00 vs dbt 0x%02x" k vb)
      mb
  end;
  if a.p_irq_enabled <> b.p_irq_enabled then
    add "irq_enabled: ref %b vs dbt %b" a.p_irq_enabled b.p_irq_enabled;
  if a.p_in_irq <> b.p_in_irq then add "in_irq: ref %b vs dbt %b" a.p_in_irq b.p_in_irq;
  if a.p_iepc <> b.p_iepc then add "iepc: ref 0x%x vs dbt 0x%x" a.p_iepc b.p_iepc;
  if a.p_sepc <> b.p_sepc then add "sepc: ref 0x%x vs dbt 0x%x" a.p_sepc b.p_sepc;
  if a.p_last_irq <> b.p_last_irq then
    add "last_irq: ref %d vs dbt %d" a.p_last_irq b.p_last_irq;
  if a.p_pending_irqs <> b.p_pending_irqs then
    add "pending_irqs: ref [%s] vs dbt [%s]"
      (String.concat ";" (List.map string_of_int a.p_pending_irqs))
      (String.concat ";" (List.map string_of_int b.p_pending_irqs));
  if a.p_irqs_suppressed <> b.p_irqs_suppressed then
    add "irqs_suppressed: ref %b vs dbt %b" a.p_irqs_suppressed b.p_irqs_suppressed;
  List.rev !d

(** Fold a post-state into a run digest (order-sensitive, deterministic). *)
let fold_post acc (p : post) =
  let acc = Sm64.fold_int acc (match p.p_kind with
    | Exited -> 0 | Halted -> 1 | Killed -> 2 | Faulted -> 3)
  in
  let acc = Sm64.fold_int acc p.p_pc in
  let acc = Sm64.fold_int acc p.p_instret in
  let acc = Array.fold_left Sm64.fold_int acc p.p_regs in
  let acc =
    List.fold_left (fun a (k, v) -> Sm64.fold_int (Sm64.fold_int a k) v) acc p.p_mem
  in
  let acc = Sm64.fold_int acc (if p.p_irq_enabled then 1 else 0) in
  let acc = Sm64.fold_int acc (if p.p_in_irq then 1 else 0) in
  let acc = Sm64.fold_int acc p.p_iepc in
  let acc = Sm64.fold_int acc p.p_sepc in
  let acc = Sm64.fold_int acc p.p_last_irq in
  let acc = List.fold_left Sm64.fold_int acc p.p_pending_irqs in
  Sm64.fold_int acc (if p.p_irqs_suppressed then 1 else 0)
