(** The differential harness: run pre-states through both the DBT fast
    path ({!Dbt_exec}) and the reference interpreter ({!Interp}),
    compare complete post-states, and on divergence dump a minimized
    repro.

    Three case sources, in order: captured workload blocks
    ({!Corpus.entry}, replayed under synthesized pre-states), symbolic
    states concretized through solver models, and coverage-guided
    generated programs ({!Gen}).  Corpus instructions are fed back into
    the generator's histograms first, so generation spends its budget on
    encodings the workloads did not already cover.

    Every case is executed through the engine twice — once cold (cache
    flushed, exercises the translator) and once hot (exercises cache
    lookup and block reuse) — and both posts must match the reference.

    The whole run is a pure function of [seed] (plus the corpus/sym
    inputs): a splitmix64 digest over every pre and post is exposed in
    the report and asserted byte-identical across same-seed runs. *)

open S2e_isa

type source = Generated | From_corpus | Sym_state

let source_name = function
  | Generated -> "generated"
  | From_corpus -> "corpus"
  | Sym_state -> "sym"

type divergence = {
  d_source : source;
  d_label : string;
  d_pre : Interp.pre;     (* minimized *)
  d_diff : string list;   (* diff of the minimized pre *)
  d_phase : string;       (* "cold", "hot" or "cold+hot" *)
  d_file : string option; (* repro path, if written *)
}

type report = {
  r_blocks : int;  (** differential runs executed (all sources) *)
  r_generated : int;
  r_corpus : int;
  r_sym : int;
  r_divergences : divergence list;
  r_digest : int64;
  r_coverage : (string * int) list;
      (** [Insn.t] constructor -> occurrences in generated programs *)
  r_missing : string list;  (** constructors never generated *)
}

let bytes_of_insns insns =
  let buf = Bytes.create (List.length insns * Insn.insn_size) in
  List.iteri (fun i insn -> Insn.encode insn buf (i * Insn.insn_size)) insns;
  Bytes.to_string buf

let decode_segment bytes =
  let get i = if i < String.length bytes then Char.code bytes.[i] else 0 in
  let n = String.length bytes / Insn.insn_size in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match Insn.decode_with ~get (i * Insn.insn_size) with
      | insn -> go (i + 1) (insn :: acc)
      | exception Insn.Invalid_instruction _ -> List.rev acc
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Minimization                                                       *)
(* ------------------------------------------------------------------ *)

(* Greedy shrink under a re-run budget: drop instructions one at a time
   (cases that carry their program, where the code segment is exactly
   the re-encoded instruction list), then zero registers, drop the
   injected frame, and drop non-code segments (symbolic cases).  Each
   mutation is kept only if the case still diverges. *)
let minimize ~diverges ?insns (pre : Interp.pre) =
  let budget = ref 128 in
  let try_case p =
    !budget > 0
    && begin
         decr budget;
         diverges p
       end
  in
  let pre = ref pre in
  let rebuild p program =
    let bytes = bytes_of_insns program in
    {
      p with
      Interp.pre_segments =
        List.map
          (fun (a, b) -> if a = p.Interp.pre_pc then (a, bytes) else (a, b))
          p.Interp.pre_segments;
    }
  in
  (match insns with
  | Some program
    when List.exists (fun (a, _) -> a = !pre.Interp.pre_pc) !pre.pre_segments
    ->
      (* Truncation first: [first i insns; halt] keeps the block well
         terminated, which plain dropping cannot do for terminator-free
         programs (below 32 insns they run into the zero bytes after the
         code and the whole block decode-faults, hiding the divergence). *)
      let truncate_pass prog =
        let n = List.length prog in
        let rec go i =
          if i >= n then prog
          else
            let cand =
              List.filteri (fun j _ -> j < i) prog @ [ Insn.Halt ]
            in
            if try_case (rebuild !pre cand) then cand else go (i + 1)
        in
        go 1
      in
      let rec drop_pass prog i =
        if !budget <= 0 || i >= List.length prog then prog
        else
          let cand = List.filteri (fun j _ -> j <> i) prog in
          if cand <> [] && try_case (rebuild !pre cand) then drop_pass cand i
          else drop_pass prog (i + 1)
      in
      pre := rebuild !pre (drop_pass (truncate_pass program) 0)
  | _ -> ());
  Array.iteri
    (fun r v ->
      if r <> Insn.reg_zero && v <> 0 && !budget > 0 then begin
        let regs = Array.copy !pre.Interp.pre_regs in
        regs.(r) <- 0;
        let cand = { !pre with Interp.pre_regs = regs } in
        if try_case cand then pre := cand
      end)
    !pre.Interp.pre_regs;
  (match !pre.Interp.pre_frame with
  | Some _ when !budget > 0 ->
      let cand = { !pre with Interp.pre_frame = None } in
      if try_case cand then pre := cand
  | _ -> ());
  List.iter
    (fun (a, _) ->
      if a <> !pre.Interp.pre_pc && !budget > 0 then begin
        let cand =
          {
            !pre with
            Interp.pre_segments =
              List.filter (fun (a', _) -> a' <> a) !pre.Interp.pre_segments;
          }
        in
        if try_case cand then pre := cand
      end)
    !pre.Interp.pre_segments;
  !pre

(* ------------------------------------------------------------------ *)

let pp_pre ppf (pre : Interp.pre) =
  Format.fprintf ppf "label: %s@.pc: 0x%x@.card: %d@." pre.pre_label
    pre.pre_pc pre.pre_card_id;
  Format.fprintf ppf "regs:";
  Array.iteri
    (fun r v -> Format.fprintf ppf " %s=0x%x" (Insn.reg_name r) v)
    pre.pre_regs;
  Format.fprintf ppf "@.";
  (match pre.pre_frame with
  | None -> Format.fprintf ppf "frame: -@."
  | Some f ->
      Format.fprintf ppf "frame:";
      Array.iter (fun b -> Format.fprintf ppf " %02x" b) f;
      Format.fprintf ppf "@.");
  List.iter
    (fun (addr, bytes) ->
      Format.fprintf ppf "segment 0x%x " addr;
      String.iter (fun c -> Format.fprintf ppf "%02x" (Char.code c)) bytes;
      Format.fprintf ppf "@.";
      if addr = pre.pre_pc then
        List.iteri
          (fun i insn ->
            Format.fprintf ppf "  ; 0x%x  %s@."
              (addr + (i * Insn.insn_size))
              (Insn.to_string insn))
          (decode_segment bytes))
    pre.pre_segments

let write_repro ~dir ~index ~phase (pre : Interp.pre) diff =
  let path = Filename.concat dir (Printf.sprintf "oracle_divergence_%d.txt" index) in
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  Format.fprintf ppf "# s2e-oracle divergence repro (phase: %s)@.%a" phase
    pp_pre pre;
  Format.fprintf ppf "diff:@.";
  List.iter (fun d -> Format.fprintf ppf "  %s@." d) diff;
  Format.pp_print_flush ppf ();
  close_out oc;
  path

(* ------------------------------------------------------------------ *)

let run ?(seed = 1) ?(count = 1000) ?(corpus = []) ?(sym = [])
    ?(repro_dir = ".") ?(max_repros = 8) ?(log = ignore) () =
  if S2e_fault.Fault.armed () then
    failwith
      "oracle: deterministic fault injection is armed; the injected faults \
       would desynchronize the two sides";
  let g = Gen.create ~seed in
  List.iter
    (fun (e : Corpus.entry) ->
      match Corpus.insns_of_entry e with
      | Some insns -> List.iter (Gen.note_insn g) insns
      | None -> ())
    corpus;
  let it = Interp.create () in
  let dx = Dbt_exec.create () in
  let digest = ref (Sm64.mix64 (Int64.of_int seed)) in
  let divergences = ref [] in
  let blocks = ref 0 in
  let n_gen = ref 0 and n_corpus = ref 0 and n_sym = ref 0 in
  let cov = Hashtbl.create 32 in
  let fold_pre (pre : Interp.pre) =
    digest := Sm64.fold_string !digest pre.pre_label;
    digest := Sm64.fold_int !digest pre.pre_pc;
    Array.iter (fun v -> digest := Sm64.fold_int !digest v) pre.pre_regs
  in
  let both pre =
    let r = Interp.run it pre in
    Dbt_exec.flush dx;
    let cold = Dbt_exec.run dx pre in
    let hot = Dbt_exec.run dx pre in
    (r, cold, hot)
  in
  let diverges pre =
    let r, cold, hot = both pre in
    Interp.diff r cold <> [] || Interp.diff r hot <> []
  in
  let check ~source ?insns pre =
    incr blocks;
    fold_pre pre;
    let r, cold, hot = both pre in
    digest := Interp.fold_post !digest r;
    digest := Interp.fold_post !digest cold;
    digest := Interp.fold_post !digest hot;
    let dc = Interp.diff r cold and dh = Interp.diff r hot in
    if dc <> [] || dh <> [] then begin
      let phase =
        match (dc, dh) with
        | _ :: _, [] -> "cold"
        | [], _ :: _ -> "hot"
        | _ -> "cold+hot"
      in
      let min_pre = minimize ~diverges ?insns pre in
      let r', cold', hot' = both min_pre in
      let diff =
        match Interp.diff r' cold' with [] -> Interp.diff r' hot' | d -> d
      in
      (* Fall back to the unminimized diff if shrinking somehow lost the
         divergence (budget exhausted mid-step). *)
      let min_pre, diff =
        if diff = [] then (pre, if dc <> [] then dc else dh)
        else (min_pre, diff)
      in
      let index = List.length !divergences in
      let file =
        if index < max_repros then
          Some (write_repro ~dir:repro_dir ~index ~phase min_pre diff)
        else None
      in
      log
        (Printf.sprintf "DIVERGENCE [%s/%s] %s%s" (source_name source)
           phase
           (String.concat "; " diff)
           (match file with Some f -> " -> " ^ f | None -> ""));
      divergences :=
        {
          d_source = source;
          d_label = pre.pre_label;
          d_pre = min_pre;
          d_diff = diff;
          d_phase = phase;
          d_file = file;
        }
        :: !divergences
    end
  in
  (* 1. captured workload blocks *)
  List.iter
    (fun (e : Corpus.entry) ->
      if e.Corpus.e_pc >= 0 && e.e_pc + String.length e.e_bytes <= S2e_vm.Layout.ram_size
      then begin
        incr n_corpus;
        let pre =
          {
            Interp.pre_pc = e.e_pc;
            pre_regs = Gen.init_regs g;
            pre_segments = [ (e.e_pc, e.e_bytes) ];
            pre_frame = Gen.frame g;
            pre_card_id = Gen.card_id g;
            pre_label = Printf.sprintf "corpus@0x%x" e.e_pc;
          }
        in
        check ~source:From_corpus ?insns:(Corpus.insns_of_entry e) pre
      end)
    corpus;
  (* 2. solver-model concretized symbolic states *)
  List.iter
    (fun pre ->
      incr n_sym;
      check ~source:Sym_state pre)
    sym;
  (* 3. coverage-guided generated programs *)
  for _ = 1 to count do
    incr n_gen;
    let case = Gen.next g in
    List.iter
      (fun insn ->
        let c = Gen.constructor_of insn in
        Hashtbl.replace cov c (1 + Option.value ~default:0 (Hashtbl.find_opt cov c)))
      case.Gen.c_insns;
    check ~source:Generated ~insns:case.c_insns case.c_pre
  done;
  let coverage =
    List.map
      (fun c -> (c, Option.value ~default:0 (Hashtbl.find_opt cov c)))
      Gen.all_constructors
  in
  let missing =
    List.filter_map (fun (c, n) -> if n = 0 then Some c else None) coverage
  in
  {
    r_blocks = !blocks;
    r_generated = !n_gen;
    r_corpus = !n_corpus;
    r_sym = !n_sym;
    r_divergences = List.rev !divergences;
    r_digest = !digest;
    r_coverage = coverage;
    r_missing = missing;
  }
