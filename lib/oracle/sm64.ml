(** Seeded splitmix64 stream: the oracle's only randomness source (same
    mixing discipline as {!S2e_fault.Fault}'s per-site streams), so
    [s2e_cli oracle --seed N] reproduces byte-identical runs. *)

type t = { mutable state : int64 }

let golden = 0x9e3779b97f4a7c15L

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden;
  mix64 t.state

(** Uniform int in [0, n). *)
let int t n =
  if n <= 0 then invalid_arg "Sm64.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let bool t = Int64.logand (next t) 1L = 1L

(** Uniform float in [0, 1). *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.

(** Order-sensitive digest step: fold [x] into accumulator [acc].  Used
    for the run journal digest the determinism test compares. *)
let fold_digest acc x = mix64 (Int64.add (Int64.mul acc 0x100000001b3L) x)

let fold_int acc x = fold_digest acc (Int64.of_int x)

let fold_string acc s =
  String.fold_left (fun a c -> fold_int a (Char.code c)) (fold_int acc (String.length s)) s
