(** Console device: one output port; reads return a ready status. *)

(* Exposed so the distribution codec can snapshot/restore device state. *)
type t = { mutable out : string }

val create : unit -> t
val clone : t -> t
val read_port : t -> int -> int
val write_port : t -> int -> int -> Device.action list

val output : t -> string
(** Everything the guest has printed so far. *)
