(** The machine's device complement, dispatched by port number.  This record
    is part of every execution state and must be cloned on fork.

    The fault plan's guest-hardware boundary lives here: an armed
    [dev.read] rule makes a port read return a device error code, a
    [dma] rule drops DMA completion writes, and an [irq.spurious] rule
    raises a timer interrupt the timer never requested — the misbehaving
    hardware the paper's in-vivo driver testing is about. *)

module Fault = S2e_fault.Fault

(* What a guest driver reads from a device register when the hardware
   errors out: an all-ones-ish poison value, distinguishable from any
   status the devices legitimately produce. *)
let read_error_code = 0xEE

type t = { console : Console.t; timer : Timer.t; netdev : Netdev.t }

let create ?card_id () =
  { console = Console.create (); timer = Timer.create (); netdev = Netdev.create ?card_id () }

let clone t =
  {
    console = Console.clone t.console;
    timer = Timer.clone t.timer;
    netdev = Netdev.clone t.netdev;
  }

(* Decompose an absolute port number into (device, offset). *)
let read_port t port =
  if Fault.(fire Dev_read) then read_error_code
  else if port >= Layout.port_netdev then Netdev.read_port t.netdev (port - Layout.port_netdev)
  else if port >= Layout.port_timer then Timer.read_port t.timer (port - Layout.port_timer)
  else Console.read_port t.console (port - Layout.port_console)

let write_port t port v : Device.action list =
  let actions =
    if port >= Layout.port_netdev then Netdev.write_port t.netdev (port - Layout.port_netdev) v
    else if port >= Layout.port_timer then Timer.write_port t.timer (port - Layout.port_timer) v
    else Console.write_port t.console (port - Layout.port_console) v
  in
  (* Drop DMA completions, not writes in general: the command register
     write succeeds, the promised memory transfer silently never lands.
     Probe the fault stream only when there is a completion to lose, so
     an unrelated plan leaves per-site draw sequences untouched. *)
  if List.exists (function Device.Dma_write _ -> true | _ -> false) actions
     && Fault.(fire Dma_drop)
  then List.filter (function Device.Dma_write _ -> false | _ -> true) actions
  else actions

(** Advance device time by [n] instruction ticks; returns pending IRQ
    numbers. *)
let tick t n =
  let irqs = if Timer.tick t.timer n then [ Layout.irq_timer ] else [] in
  (* A spurious interrupt: the line the guest is wired to asserts with
     no device state behind it.  Robust guests re-check device status
     and dismiss it; fragile ones act on stale assumptions. *)
  if Fault.(fire Irq_spurious) then Layout.irq_timer :: irqs else irqs
