(** Timer device: raises the timer IRQ every [interval] ticks once
    enabled.  One tick is one executed guest instruction; the engine slows
    this virtual clock while running symbolically (paper section 5). *)

(* Exposed so the distribution codec can snapshot/restore device state. *)
type t = {
  mutable enabled : bool;
  mutable interval : int;
  mutable countdown : int;
  mutable fired : int;
}

val create : unit -> t
val clone : t -> t

val read_port : t -> int -> int
(** 0 = enabled flag, 1 = interval, 2 = number of firings. *)

val write_port : t -> int -> int -> Device.action list
(** 0 = enable/disable, 1 = interval. *)

val tick : t -> int -> bool
(** Advance by ticks; [true] when the IRQ line should be raised. *)
