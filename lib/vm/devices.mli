(** The machine's device complement, dispatched by port number.  This
    record is part of every execution state and must be cloned on fork
    (the analogue of QEMU's per-snapshot virtual device state). *)

type t = { console : Console.t; timer : Timer.t; netdev : Netdev.t }

val read_error_code : int
(** The poison value a port read returns when the fault plan's
    [dev.read] rule fires (misbehaving hardware, paper section 6.1). *)

val create : ?card_id:int -> unit -> t
val clone : t -> t

val read_port : t -> int -> int
val write_port : t -> int -> int -> Device.action list

val tick : t -> int -> int list
(** Advance device time by instruction ticks; returns pending IRQ
    numbers. *)
