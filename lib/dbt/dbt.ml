(** Dynamic binary translator.

    Guest machine code is translated on demand into {e translation blocks}
    (TBs): straight-line sequences of decoded instructions ending at the
    first control transfer.  Blocks are cached so each instruction is
    decoded once but may execute millions of times — this is what makes the
    paper's onInstrTranslation / onInstrExecution event split cheap
    (section 4.2).  Writes into already-translated code invalidate the
    affected blocks, which is how self-modifying guests stay correct. *)

open S2e_isa
module Obs = S2e_obs

(* TB-cache telemetry: hit/miss rates are the translation-cost half of
   the paper's overhead story (section 6.2), and invalidations count
   self-modifying-code churn. *)
let m_tb_hits = Obs.Metrics.counter "dbt.tb_hits"
let m_tb_misses = Obs.Metrics.counter "dbt.tb_misses"
let m_tb_invalidations = Obs.Metrics.counter "dbt.tb_invalidations"
let translate_phase = Obs.Span.phase "translate"
let t_invalidate = Obs.Trace.intern "tb.invalidate"

type tb = {
  tb_start : int;
  insns : (int * Insn.t) array; (* (address, instruction) *)
  mutable exec_count : int;
}

type t = {
  cache : (int, tb) Hashtbl.t;
  (* Set of instruction addresses plugins marked during translation. *)
  marks : (int, unit) Hashtbl.t;
  (* Forced block boundaries: translation never extends past a cut
     address, so a cut address always starts its own block.  Merge
     points are cut so states stop there between blocks. *)
  cuts : (int, unit) Hashtbl.t;
  mutable translations : int;
  mutable max_block : int;
  (* Invalidation: translated address ranges, coarse-grained. *)
  mutable translated_ranges : (int * int) list;
}

let create ?(max_block = 32) () =
  {
    cache = Hashtbl.create 512;
    marks = Hashtbl.create 64;
    cuts = Hashtbl.create 64;
    translations = 0;
    max_block;
    translated_ranges = [];
  }

(** Mark [addr] for execution notification (called by plugins from an
    onInstrTranslation handler). *)
let mark t addr = Hashtbl.replace t.marks addr ()
let unmark t addr = Hashtbl.remove t.marks addr
let is_marked t addr = Hashtbl.mem t.marks addr

(** Translate the block starting at [pc].  [fetch] reads one guest byte;
    [on_translate] is invoked once per freshly decoded instruction. *)
let translate t ~fetch ~on_translate pc =
  match Hashtbl.find_opt t.cache pc with
  | Some tb ->
      Obs.Metrics.incr m_tb_hits;
      tb
  | None ->
      t.translations <- t.translations + 1;
      Obs.Metrics.incr m_tb_misses;
      Obs.Span.timed translate_phase (fun () ->
          let rec go addr acc n =
            let insn = Insn.decode_with ~get:fetch addr in
            on_translate addr insn;
            let acc = (addr, insn) :: acc in
            if
              Insn.is_block_terminator insn
              || n + 1 >= t.max_block
              || Hashtbl.mem t.cuts (addr + Insn.insn_size)
            then List.rev acc
            else go (addr + Insn.insn_size) acc (n + 1)
          in
          let insns = Array.of_list (go pc [] 0) in
          let tb = { tb_start = pc; insns; exec_count = 0 } in
          Hashtbl.replace t.cache pc tb;
          let last, _ = insns.(Array.length insns - 1) in
          t.translated_ranges <-
            (pc, last + Insn.insn_size) :: t.translated_ranges;
          tb)

(** Invalidate any block covering [addr] (a guest write hit translated
    code). *)
let invalidate t addr =
  let hit = List.exists (fun (lo, hi) -> addr >= lo && addr < hi) t.translated_ranges in
  if hit then begin
    (* Coarse but correct: drop every cached block overlapping the write. *)
    let victims =
      Hashtbl.fold
        (fun start tb acc ->
          let stop = start + (Array.length tb.insns * Insn.insn_size) in
          if addr >= start && addr < stop then start :: acc else acc)
        t.cache []
    in
    Obs.Metrics.add m_tb_invalidations (List.length victims);
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~a:addr ~b:(List.length victims) t_invalidate;
    List.iter (Hashtbl.remove t.cache) victims;
    t.translated_ranges <-
      List.filter
        (fun (lo, hi) -> not (addr >= lo && addr < hi))
        t.translated_ranges
  end

(** Drop every cached block.  The cumulative translation count is kept
    (it is monotone by contract); only the cache and its range index are
    cleared.  Used by the differential oracle, which reuses one
    translator across runs that place different code at the same pc. *)
let flush t =
  Hashtbl.reset t.cache;
  t.translated_ranges <- []

(** Force a block boundary before [addr]: no block extends past it, so
    [addr] always starts its own block and execution pauses there between
    blocks.  Any cached block already spanning [addr] is dropped. *)
let cut t addr =
  if not (Hashtbl.mem t.cuts addr) then begin
    Hashtbl.replace t.cuts addr ();
    invalidate t addr
  end

let stats t = (t.translations, Hashtbl.length t.cache)
