(** Dynamic binary translator: on-demand translation of guest code into
    cached straight-line translation blocks, with per-instruction marking
    (the cheap onInstrTranslation / onInstrExecution split of paper
    section 4.2) and invalidation on writes into translated code. *)

open S2e_isa

type tb = {
  tb_start : int;
  insns : (int * Insn.t) array; (** (address, instruction) pairs *)
  mutable exec_count : int;
}

type t

val create : ?max_block:int -> unit -> t

val mark : t -> int -> unit
(** Request an onInstrExecution notification for this address. *)

val unmark : t -> int -> unit
val is_marked : t -> int -> bool

val translate :
  t -> fetch:(int -> int) -> on_translate:(int -> Insn.t -> unit) -> int -> tb
(** Translation block starting at the given pc; cached, so [on_translate]
    fires once per instruction per (re-)translation. *)

val invalidate : t -> int -> unit
(** A guest write hit this address: drop any block covering it. *)

val cut : t -> int -> unit
(** Force a permanent block boundary before this address: no translation
    block extends past it, so the address always starts its own block and
    execution pauses there between blocks.  Cached blocks already spanning
    the address are dropped.  Used to make merge points schedulable. *)

val flush : t -> unit
(** Drop every cached block.  The cumulative translation count is
    preserved; [stats] stays monotone across a flush. *)

val stats : t -> int * int
(** (total translations, blocks currently cached). *)
