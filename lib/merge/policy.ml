(** Merge policy: when is an ite-join predicted profitable?

    Merging trades path count against expression size: the joined state
    carries every differing cell as an ite whose guards ride into each
    later solver query, while enumeration pays the solver for both
    suffixes separately.  The [Auto] gate must also keep a determinism
    contract — the differential suite compares jobs=1 against jobs=4
    path sets — so the {e decision} is purely structural: predicted ite
    blow-up (from the hash-cons O(1) node counts, computed in
    {!Join.attempt}) against a fixed node budget.  Nothing
    timing-dependent feeds the decision.

    Solver-time attribution (the per-prefix reuse statistics) feeds only
    the {e reported} benefit score attached to [merge] trace instants and
    metrics, where wall-clock noise is harmless. *)

type mode = Off | Auto | Always

let mode_names = [ "off"; "auto"; "always" ]

let mode_of_string = function
  | "off" -> Ok Off
  | "auto" -> Ok Auto
  | "always" -> Ok Always
  | s ->
      Error
        (Printf.sprintf "unknown merge mode %S (valid: %s)" s
           (String.concat ", " mode_names))

let mode_to_string = function Off -> "off" | Auto -> "auto" | Always -> "always"

(* Default [Auto] node budget.  Generous on purpose: the point of the
   gate is to refuse pathological joins (thousands of differing cells
   with large arms), not to second-guess ordinary diamonds and loop
   exits. *)
let default_budget = 16384

let budget mode ~cost_budget =
  match mode with
  | Off -> invalid_arg "Policy.budget: mode is off"
  | Always -> None
  | Auto -> Some cost_budget

(** Reported benefit score (microseconds-ish, minus the structural
    cost): the solver time the join is predicted to save, estimated as
    the average query cost times the number of constraints the two
    suffixes would keep re-asserting downstream, discounted by the share
    of solver time the prefix cache already eliminates (PR 7's
    attribution: reused-prefix queries are the cheap ones, so only the
    fresh share is really saved). *)
let benefit_score ~(solver : S2e_solver.Solver.stats) ~suffix_len ~cost =
  let avg_us =
    if solver.queries = 0 then 0.
    else solver.total_time /. float_of_int solver.queries *. 1e6
  in
  let fresh_share =
    if solver.total_time <= 0. then 1.
    else
      Float.max 0. (1. -. (solver.prefix_reused_time /. solver.total_time))
  in
  int_of_float (avg_us *. fresh_share *. float_of_int suffix_len) - cost
