(** Merge policy: benefit-gated ite-joins ([--merge=always|auto|off]).

    The [Auto] decision is purely structural (predicted ite node blow-up
    against a fixed budget) so merged exploration stays deterministic
    across worker counts; solver-time attribution feeds only the
    {e reported} benefit score. *)

type mode = Off | Auto | Always

val mode_names : string list
val mode_of_string : string -> (mode, string) result
val mode_to_string : mode -> string

val default_budget : int
(** Default [Auto] node budget for a single join. *)

val budget : mode -> cost_budget:int -> int option
(** The node budget {!Join.attempt} should enforce: [None] for [Always]
    (merge unconditionally), [Some cost_budget] for [Auto].
    @raise Invalid_argument on [Off]. *)

val benefit_score :
  solver:S2e_solver.Solver.stats -> suffix_len:int -> cost:int -> int
(** Reported (not decision-making) benefit estimate for a completed or
    rejected join, fed by the per-prefix solver-time attribution. *)
