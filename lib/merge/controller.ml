(** The merge controller: wires merge points, joins and policy into one
    engine.

    {b Rendezvous protocol.}  When a fork fires, the controller derives a
    rendezvous — the nearest common post-dominator of the two successor
    pcs ({!Mergepoint}), or the caller's return site when the sides only
    re-converge at function exit — and pushes a [(merge_id, pc, depth)]
    record onto both siblings' rendezvous stacks (shared structurally by
    further forks).  A table entry counts {e outstanding} arrivals: 2 at
    the fork, +1 whenever a carrier forks again (the child inherits the
    stack), −1 when a carrier terminates.  The merge point's pc is
    {!Dbt.cut} so translation blocks end there and carriers return to the
    scheduler exactly at the rendezvous.

    At selection time a state whose topmost rendezvous matches its pc and
    call depth {e arrives}: the first arriver parks (leaves the searcher
    but stays live); later arrivers are ite-joined into it pairwise
    ({!Join.attempt}), and the merged state keeps waiting until the
    entry's outstanding count drains, then resumes.  An unmergeable or
    cost-rejected pair abandons the rendezvous and both sides resume
    enumeration — the fallback is always plain enumeration, never a
    wrong merge.

    {b No deadlocks.}  Merge ids grow monotonically and a state's stack
    is pushed in id order, so a parked state can only be waiting for
    states parked on strictly newer entries; the newest parked entry's
    remaining arrivals are therefore runnable or dead, and every
    termination path fires [state_end], which releases waiters.  A
    drained searcher with parked states left (possible only if that
    accounting ever leaks) force-releases them rather than hanging.

    {b Parallel/dist.}  Carriers are steal-exempt ({!Parallel} skips
    states with a non-empty rendezvous stack when donating), so merging
    is per-worker-local.  {!flush} — installed as the engine's [quiesce]
    hook — releases parked states and strips rendezvous stacks before a
    frontier is snapshotted for another process. *)

module Executor = S2e_core.Executor
module State = S2e_core.State
module Searcher = S2e_core.Searcher
module Events = S2e_core.Events
module Consistency = S2e_core.Consistency
module Expr = S2e_expr.Expr
module Simplifier = S2e_expr.Simplifier
module Solver = S2e_solver.Solver
module Dbt = S2e_dbt.Dbt
module Obs = S2e_obs

let m_merges = Obs.Metrics.counter "merge.merges"
let m_rejected = Obs.Metrics.counter "merge.rejected_cost"
let m_parked = Obs.Metrics.counter "merge.parked"
let m_released = Obs.Metrics.counter "merge.released"
let m_forced = Obs.Metrics.counter "merge.released_forced"
let m_no_point = Obs.Metrics.counter "merge.no_point"
let m_carrier_aborts = Obs.Metrics.counter "merge.carrier_aborts"
let m_live = Obs.Metrics.gauge ~merge:Obs.Metrics.Sum "engine.live_states"
let t_merge = Obs.Trace.intern "merge"
let t_reject = Obs.Trace.intern "merge.reject"

let m_unmergeable r =
  (* Registration is idempotent and this path is cold (a failed join). *)
  Obs.Metrics.counter ("merge.unmergeable." ^ Join.reason_label r)

type entry = {
  e_pc : int;
  e_depth : int;
  e_base_len : int;
  mutable e_waiting : State.t option; (* parked first-arriver / partial merge *)
  mutable e_outstanding : int;        (* carriers yet to arrive (parked excluded) *)
}

type t = {
  eng : Executor.t;
  budget : int option;
  instret_sensitive : bool;
  mp : Mergepoint.t;
  table : (int, entry) Hashtbl.t;
  mutable inner : Searcher.t; (* the wrapped selection strategy *)
  mutable next_id : int;
  mutable parked : int;
}

let pop_id (s : State.t) id =
  s.rendezvous <- List.filter (fun (i, _, _) -> i <> id) s.rendezvous

let clear_waiting ctl (e : entry) =
  match e.e_waiting with
  | None -> None
  | Some w ->
      e.e_waiting <- None;
      ctl.parked <- ctl.parked - 1;
      Some w

(* Release the parked state (if any) back into the searcher and drop the
   entry when no arrivals remain. *)
let release_entry ctl id e =
  (match clear_waiting ctl e with
  | Some w ->
      pop_id w id;
      ctl.inner.Searcher.add w
  | None -> ());
  if e.e_outstanding <= 0 then Hashtbl.remove ctl.table id

(* One expected arrival will never come (carrier died or was absorbed). *)
let arrival_lost ctl id =
  match Hashtbl.find_opt ctl.table id with
  | None -> ()
  | Some e ->
      e.e_outstanding <- e.e_outstanding - 1;
      if e.e_outstanding <= 0 then begin
        if e.e_waiting <> None then Obs.Metrics.incr m_released;
        release_entry ctl id e
      end

(* The fork's rendezvous: the post-dominator join of the two successor
   pcs, else the caller's return site one frame up. *)
let rendezvous_target ctl (parent : State.t) (child : State.t) =
  match
    Mergepoint.join_point ctl.mp ~modules:ctl.eng.Executor.modules
      ~code:ctl.eng.Executor.base_mem ~a:parent.pc ~b:child.pc
  with
  | Some pc -> Some (pc, List.length parent.ret_stack)
  | None -> (
      match parent.ret_stack with
      | ra :: _ -> Some (ra, List.length parent.ret_stack - 1)
      | [] -> None)

let on_fork ctl (parent : State.t) (child : State.t) cond =
  (* The child inherits every pending rendezvous: one more expected
     arrival each.  This must run even for constraint-less plugin forks,
     whose children carry the stack too. *)
  List.iter
    (fun (id, _, _) ->
      match Hashtbl.find_opt ctl.table id with
      | Some e -> e.e_outstanding <- e.e_outstanding + 1
      | None -> ())
    parent.rendezvous;
  if not (Expr.equal cond Expr.bool_t) then
    match rendezvous_target ctl parent child with
    | None -> Obs.Metrics.incr m_no_point
    | Some (pc, depth) ->
        (* Parent constraints are [cond :: base] at this point. *)
        let base_len = List.length parent.constraints - 1 in
        let id = ctl.next_id in
        ctl.next_id <- id + 1;
        Hashtbl.replace ctl.table id
          {
            e_pc = pc;
            e_depth = depth;
            e_base_len = base_len;
            e_waiting = None;
            e_outstanding = 2;
          };
        Dbt.cut ctl.eng.Executor.dbt pc;
        let rv = (id, pc, depth) in
        parent.rendezvous <- rv :: parent.rendezvous;
        child.rendezvous <- rv :: child.rendezvous

let on_state_end ctl (s : State.t) =
  (* A carrier that aborts (e.g. an LC environment hazard) takes every
     path it carries with it: the cases it would have expanded to are
     reported with the aborted status instead of the per-path outcome
     enumeration would have produced.  Surface that loss in the stats —
     it bounds how far merged case sets can diverge from enumerated
     ones (see DESIGN.md §10). *)
  (match s.status with
  | State.Aborted _ when s.State.cases <> State.Case_leaf ->
      Obs.Metrics.incr m_carrier_aborts
  | _ -> ());
  match s.rendezvous with
  | [] -> ()
  | (top_id, _, _) :: rest ->
      (* A parked state can die (PathKiller, kill_others).  Its arrival
         at the top entry was already counted, so only detach it there;
         the remaining ids lose a future arrival each. *)
      let was_parked =
        match Hashtbl.find_opt ctl.table top_id with
        | Some e when (match e.e_waiting with Some w -> w == s | None -> false)
          ->
            ignore (clear_waiting ctl e);
            if e.e_outstanding <= 0 then Hashtbl.remove ctl.table top_id;
            true
        | _ -> false
      in
      let lost = if was_parked then rest else s.rendezvous in
      s.rendezvous <- [];
      List.iter (fun (id, _, _) -> arrival_lost ctl id) lost

(* Fold the absorbed side [w] out of the engine: it leaves the frontier
   without terminating.  Its future arrivals at outer entries are now
   covered by the surviving merged state, so they are "lost" here. *)
let consume ctl (w : State.t) survivor =
  (match w.rendezvous with
  | _ :: rest -> List.iter (fun (id, _, _) -> arrival_lost ctl id) rest
  | [] -> ());
  w.rendezvous <- [];
  let eng = ctl.eng in
  eng.Executor.live <-
    List.filter (fun s' -> s'.State.id <> w.State.id) eng.Executor.live;
  Obs.Metrics.set m_live (List.length eng.Executor.live);
  Events.state_merge eng.Executor.events ~absorbed:w ~survivor

(* Abandon a rendezvous pair-wise: both sides resume enumeration.  The
   entry stays while more arrivals are outstanding — a later pair may
   still merge. *)
let abandon ctl id e (s : State.t) =
  (match clear_waiting ctl e with
  | Some w ->
      pop_id w id;
      ctl.inner.Searcher.add w
  | None -> ());
  pop_id s id;
  if e.e_outstanding <= 0 then Hashtbl.remove ctl.table id

let matches (s : State.t) =
  match s.rendezvous with
  | (_, pc, depth) :: _ -> s.pc = pc && List.length s.ret_stack = depth
  | [] -> false

(* Process [s]'s arrival(s) at its topmost rendezvous.  Returns [Some s]
   when the state should run now, [None] when it parked. *)
let rec handle_arrival ctl (s : State.t) =
  if not (State.is_active s && matches s) then Some s
  else
    match s.rendezvous with
    | [] -> Some s
    | (id, _, _) :: _ -> (
        match Hashtbl.find_opt ctl.table id with
        | None ->
            (* Stale id (table flushed): plain enumeration. *)
            pop_id s id;
            handle_arrival ctl s
        | Some e -> (
            e.e_outstanding <- e.e_outstanding - 1;
            match e.e_waiting with
            | None ->
                if e.e_outstanding <= 0 then begin
                  (* Sole survivor: nothing to merge with. *)
                  Hashtbl.remove ctl.table id;
                  pop_id s id;
                  Obs.Metrics.incr m_released;
                  handle_arrival ctl s
                end
                else begin
                  e.e_waiting <- Some s;
                  ctl.parked <- ctl.parked + 1;
                  Obs.Metrics.incr m_parked;
                  ctl.inner.Searcher.remove s;
                  None
                end
            | Some w -> (
                let suffix_len =
                  List.length w.constraints + List.length s.constraints
                  - (2 * e.e_base_len)
                in
                let simplify =
                  if ctl.eng.Executor.config.use_simplifier then
                    Simplifier.simplify
                  else Fun.id
                in
                match
                  Join.attempt ~simplify ~budget:ctl.budget
                    ~instret_sensitive:ctl.instret_sensitive
                    ~base_len:e.e_base_len ~a:w ~b:s
                with
                | Ok cost ->
                    ignore (clear_waiting ctl e);
                    consume ctl w s;
                    Obs.Metrics.incr m_merges;
                    if Obs.Trace.enabled () then
                      Obs.Trace.instant ~path:s.id
                        ~a:
                          (Policy.benefit_score
                             ~solver:ctl.eng.Executor.solver.Solver.ctx_stats
                             ~suffix_len ~cost)
                        ~b:cost t_merge;
                    if e.e_outstanding <= 0 then begin
                      Hashtbl.remove ctl.table id;
                      pop_id s id;
                      handle_arrival ctl s
                    end
                    else begin
                      (* Keep waiting for the remaining arrivals. *)
                      e.e_waiting <- Some s;
                      ctl.parked <- ctl.parked + 1;
                      ctl.inner.Searcher.remove s;
                      None
                    end
                | Error (Join.Rejected cost) ->
                    Obs.Metrics.incr m_rejected;
                    if Obs.Trace.enabled () then
                      Obs.Trace.instant ~path:s.id
                        ~a:
                          (Policy.benefit_score
                             ~solver:ctl.eng.Executor.solver.Solver.ctx_stats
                             ~suffix_len ~cost)
                        ~b:cost t_reject;
                    abandon ctl id e s;
                    handle_arrival ctl s
                | Error (Join.Unmergeable r) ->
                    Obs.Metrics.incr (m_unmergeable r);
                    abandon ctl id e s;
                    handle_arrival ctl s)))

(* Defensive: reinsert every parked state (used at quiescence and by
   {!flush}). *)
let release_all ctl =
  let ids = Hashtbl.fold (fun id e acc -> (id, e) :: acc) ctl.table [] in
  List.iter (fun (id, e) -> release_entry ctl id e) ids

let flush ctl =
  release_all ctl;
  List.iter (fun (s : State.t) -> s.rendezvous <- []) ctl.eng.Executor.live;
  Hashtbl.reset ctl.table

let wrap ctl (inner : Searcher.t) =
  let rec select () =
    match inner.Searcher.select () with
    | Some s -> (
        match handle_arrival ctl s with
        | Some s' -> Some s'
        | None -> select ())
    | None ->
        if ctl.parked > 0 then begin
          (* The searcher drained with states still parked.  Exact
             accounting should have released them (see the deadlock
             argument above); recover rather than hang. *)
          Obs.Metrics.add m_forced ctl.parked;
          release_all ctl;
          select ()
        end
        else None
  in
  {
    inner with
    Searcher.select;
    size = (fun () -> inner.Searcher.size () + ctl.parked);
  }

(** Install a merge controller on [eng], wrapping its current searcher —
    call after the searcher is configured.  No-op for [Off] and for
    consistency models that never add path constraints (RC-CC), where
    there is nothing to disjoin. *)
let install ?(instret_sensitive = false) ?(cost_budget = Policy.default_budget)
    ~mode (eng : Executor.t) =
  match mode with
  | Policy.Off -> None
  | _ when not (Consistency.check_feasibility eng.Executor.config.consistency)
    ->
      None
  | _ ->
      let ctl =
        {
          eng;
          budget = Policy.budget mode ~cost_budget;
          instret_sensitive;
          mp = Mergepoint.create ();
          table = Hashtbl.create 64;
          inner = eng.Executor.searcher;
          next_id = 1;
          parked = 0;
        }
      in
      eng.Executor.searcher <- wrap ctl ctl.inner;
      Events.reg_fork eng.Executor.events (on_fork ctl);
      Events.reg_state_end eng.Executor.events (on_state_end ctl);
      eng.Executor.quiesce <- (fun () -> flush ctl);
      Some ctl
