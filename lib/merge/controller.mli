(** Merge controller: parks sibling states at post-dominator merge
    points and ite-joins them ({!Join}), with merge-aware scheduling
    layered over the engine's searcher. *)

type t

val install :
  ?instret_sensitive:bool ->
  ?cost_budget:int ->
  mode:Policy.mode ->
  S2e_core.Executor.t ->
  t option
(** Install a merge controller on the engine, wrapping its current
    searcher — call {e after} the searcher is configured.  Returns
    [None] (and leaves the engine untouched) for [Policy.Off] and for
    consistency models that never add path constraints (RC-CC), where
    there is nothing to disjoin.  [instret_sensitive] marks
    instruction-counting plugins as active, making differing [instret]
    unmergeable. *)

val flush : t -> unit
(** Release every parked state back into the searcher and strip all
    rendezvous records — also installed as the engine's [quiesce] hook.
    Call before snapshotting the frontier for another process
    (checkpointing, work donation across engines): rendezvous ids are
    engine-local. *)
