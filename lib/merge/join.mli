(** Ite-join of two sibling states: path conditions disjoined, every
    differing register and symbolic-memory byte rebuilt as
    [ite(guard_a, v_a, v_b)] through the interning smart constructors. *)

type reason =
  | Status
  | Pc
  | Multipath
  | Irq_state
  | Env_frames
  | Call_stack
  | Incomplete
  | Instret
  | Pending_dma
  | Device_state

val reason_label : reason -> string
(** Stable snake_case label, used as the [merge.unmergeable.<reason>]
    metric suffix. *)

type failure =
  | Unmergeable of reason
  | Rejected of int  (** predicted ite blow-up cost exceeded the budget *)

val attempt :
  simplify:(S2e_expr.Expr.t -> S2e_expr.Expr.t) ->
  budget:int option ->
  instret_sensitive:bool ->
  base_len:int ->
  a:S2e_core.State.t ->
  b:S2e_core.State.t ->
  (int, failure) result
(** [attempt ~simplify ~budget ~instret_sensitive ~base_len ~a ~b] folds
    the parked state [a] into the arriving state [b], mutating [b] into
    the merged state and recording the join in [b]'s case tree so
    test-case extraction reconstructs the exact enumerated paths.
    [base_len] is the length of the constraint tail the siblings share
    (everything below the fork).  [budget] caps the predicted ite
    blow-up in expression nodes ([None] merges unconditionally).  On
    [Ok cost] the caller must discard [a]; on [Error _] neither state
    was modified. *)
