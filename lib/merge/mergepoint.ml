(** Merge-point detection: intra-module post-dominators over the guest
    block CFG.

    Two sibling states created by a fork re-converge — if they both
    survive — at the immediate post-dominator of the forking branch,
    which for a two-successor branch is the nearest common post-dominator
    of its successors.  The CFG is {e call-skipping}: JAL/JALR/SYSCALL
    edges go to the call's return site, not into the callee, so a merge
    point never sits inside another function (calls complete or the path
    dies; either way the rendezvous accounting in {!Controller} stays
    exact).  JR/SYSRET/IRET/HALT leave the function or the machine and
    edge to a virtual EXIT node; a branch whose sides only re-converge at
    EXIT has no intra-procedural merge point and the controller falls
    back to the caller's return site.

    Post-dominance here only decides {e where merging is attempted}; it
    is not load-bearing for soundness.  A path that never reaches the
    chosen point terminates instead, and its death releases the waiting
    sibling, so an imprecise CFG (computed jump targets, data in a code
    range) degrades to plain enumeration rather than to wrong answers. *)

module Insn = S2e_isa.Insn
module Module_map = S2e_core.Module_map

(* Per-module analysis: [ipdom.(slot)] is the immediate post-dominator of
   instruction slot [slot], or [n] (the virtual EXIT node) when the slot
   only post-dominates to function exit. *)
type info = {
  i_start : int; (* module code_start *)
  i_n : int;     (* instruction slots; EXIT is node [i_n] *)
  i_ipdom : int array;
}

type t = { cache : (string, info option) Hashtbl.t }

let create () = { cache = Hashtbl.create 8 }

(* Modules bigger than this are left unanalyzed (quadratic-ish set
   data-flow); forks inside them fall back to return-site rendezvous. *)
let max_slots = 16384

module IS = Set.Make (Int)

let successors ~code (m : Module_map.entry) ~n slot =
  let addr = m.code_start + (slot * Insn.insn_size) in
  let slot_of pc =
    if
      pc >= m.code_start && pc < m.code_end
      && (pc - m.code_start) mod Insn.insn_size = 0
    then Some ((pc - m.code_start) / Insn.insn_size)
    else None
  in
  let fall = if slot + 1 < n then [ slot + 1 ] else [] in
  match Insn.decode code addr with
  | exception Insn.Invalid_instruction _ -> [] (* data in the code range *)
  | Insn.Jmp { target } -> (
      match slot_of (Int32.to_int target land 0xFFFFFFFF) with
      | Some s -> [ s ]
      | None -> [])
  | Insn.Branch { target; _ } -> (
      match slot_of (Int32.to_int target land 0xFFFFFFFF) with
      | Some s -> s :: fall
      | None -> fall)
  | Insn.Jal _ | Insn.Jalr _ | Insn.Syscall ->
      fall (* call-skipping: the callee returns to the next instruction *)
  | Insn.Jr _ | Insn.Sysret | Insn.Iret | Insn.Halt -> []
  | _ -> fall

(* Iterative post-dominator sets: pd(i) = {i} ∪ ⋂_{s ∈ succ(i)} pd(s),
   with pd(EXIT) = {EXIT} and an implicit EXIT edge for successor-less
   nodes.  Module code is small (hundreds of slots) and the analysis is
   memoized per module, so the simple fixpoint beats a clever algorithm
   on clarity. *)
let analyze ~code (m : Module_map.entry) =
  let n = (m.code_end - m.code_start) / Insn.insn_size in
  if n <= 0 || n > max_slots then None
  else begin
    let succ = Array.init n (successors ~code m ~n) in
    let exit_node = n in
    let full = IS.of_list (List.init (n + 1) Fun.id) in
    let pd = Array.make (n + 1) full in
    pd.(exit_node) <- IS.singleton exit_node;
    let changed = ref true in
    while !changed do
      changed := false;
      for i = n - 1 downto 0 do
        let inter =
          match succ.(i) with
          | [] -> pd.(exit_node)
          | s :: rest -> List.fold_left (fun acc x -> IS.inter acc pd.(x)) pd.(s) rest
        in
        let nv = IS.add i inter in
        if not (IS.equal nv pd.(i)) then begin
          pd.(i) <- nv;
          changed := true
        end
      done
    done;
    (* The immediate post-dominator is the closest strict one: along the
       chain i → ipdom(i) → … → EXIT the pd sets shrink, so it is the
       candidate with the largest pd set. *)
    let ipdom =
      Array.init n (fun i ->
          let cands = IS.remove i pd.(i) in
          IS.fold
            (fun d best ->
              if best = exit_node || IS.cardinal pd.(d) > IS.cardinal pd.(best)
              then d
              else best)
            cands exit_node)
    in
    Some { i_start = m.code_start; i_n = n; i_ipdom = ipdom }
  end

let info_for t ~modules ~code pc =
  match Module_map.find_code modules pc with
  | None -> None
  | Some m -> (
      match Hashtbl.find_opt t.cache m.name with
      | Some cached -> cached
      | None ->
          let a = analyze ~code m in
          Hashtbl.replace t.cache m.name a;
          a)

(* Nearest common ancestor of two slots in the ipdom forest, nodes
   themselves included (a successor that already is the join point is its
   own rendezvous). *)
let nca info a b =
  let exit_node = info.i_n in
  let chain slot =
    let rec go acc s =
      if s = exit_node || IS.mem s acc then acc
      else go (IS.add s acc) info.i_ipdom.(s)
    in
    go IS.empty slot
  in
  let anc_a = chain a in
  let rec walk s = if s = exit_node then None else if IS.mem s anc_a then Some s else walk info.i_ipdom.(s) in
  walk b

let join_point t ~modules ~code ~a ~b =
  match info_for t ~modules ~code a with
  | None -> None
  | Some info ->
      let slot pc =
        let off = pc - info.i_start in
        if off >= 0 && off < info.i_n * Insn.insn_size && off mod Insn.insn_size = 0
        then Some (off / Insn.insn_size)
        else None
      in
      (match (slot a, slot b) with
      | Some sa, Some sb -> (
          match nca info sa sb with
          | Some s -> Some (info.i_start + (s * Insn.insn_size))
          | None -> None)
      | _ -> None)
