(** Ite-join of two sibling states (the state-merging transform of the
    veritesting / MergePoint line of work, applied to the paper's
    ExecState).

    Two states [a] (parked first at the rendezvous) and [b] (arriving)
    that descend from the same fork carry constraint lists of the form
    [suffix_a @ base] and [suffix_b @ base] with a physically shared
    [base].  The join disjoins the path conditions — the merged list is
    [or(guard_a, guard_b) :: base] with each guard the conjunction of
    that side's suffix — and turns every differing register and symbolic
    memory byte into [ite(guard_a, v_a, v_b)] built through the interning
    smart constructors, so shared subtrees cost nothing (hash-consing)
    and the state diff is O(differences), not O(state).

    Anything the expression language cannot represent symbolically makes
    the pair {e unmergeable} and the pair falls back to enumeration:
    device state is concrete by construction (the VM executes it), so
    differing device fields — and in particular an in-flight DMA or RX
    queue — cannot become ite-expressions; differing interrupt plumbing
    or environment frames would need symbolic control state; a
    half-[incomplete] pair would taint the complete side's soundness
    marker; and instret differences matter to instruction-counting
    plugins when the caller says so. *)

module Expr = S2e_expr.Expr
module State = S2e_core.State
module Symmem = S2e_core.Symmem
module Vm = S2e_vm

type reason =
  | Status          (** a side already terminated *)
  | Pc              (** rendezvous pcs differ (defensive; should not happen) *)
  | Multipath       (** S2ENA/S2DIS multipath toggles differ *)
  | Irq_state       (** interrupt plumbing differs (enabled/in_irq/epc/pending) *)
  | Env_frames      (** pending environment calls differ *)
  | Call_stack      (** shadow return stacks differ *)
  | Incomplete      (** exactly one side carries the incomplete marker *)
  | Instret         (** instret differs and an instret-sensitive plugin is on *)
  | Pending_dma     (** in-flight DMA / RX queue state differs *)
  | Device_state    (** other device-visible fields differ *)

let reason_label = function
  | Status -> "status"
  | Pc -> "pc"
  | Multipath -> "multipath"
  | Irq_state -> "irq_state"
  | Env_frames -> "env_frames"
  | Call_stack -> "call_stack"
  | Incomplete -> "incomplete"
  | Instret -> "instret"
  | Pending_dma -> "pending_dma"
  | Device_state -> "device_state"

type failure =
  | Unmergeable of reason
  | Rejected of int  (** predicted ite blow-up cost exceeded the budget *)

(* Device state is concrete (the VM executes it), so it cannot be joined
   symbolically: any difference is unmergeable.  DMA-ish fields get their
   own taxonomy bucket because an in-flight transfer is the
   paper-relevant hazard. *)
let check_devices (da : Vm.Devices.t) (db : Vm.Devices.t) =
  let na = da.netdev and nb = db.netdev in
  if
    na.Vm.Netdev.dma_addr <> nb.Vm.Netdev.dma_addr
    || na.dma_len <> nb.dma_len
    || na.rx_queue <> nb.rx_queue
    || na.rx_pos <> nb.rx_pos
  then Error (Unmergeable Pending_dma)
  else if
    na.card_id <> nb.card_id || na.link_up <> nb.link_up
    || na.rx_enabled <> nb.rx_enabled
    || na.irq_mask <> nb.irq_mask
    || na.tx_buf <> nb.tx_buf
    || na.tx_frames <> nb.tx_frames
    || na.mac_pos <> nb.mac_pos
    || na.irq_pending <> nb.irq_pending
    || da.console.Vm.Console.out <> db.console.Vm.Console.out
    || da.timer.Vm.Timer.enabled <> db.timer.Vm.Timer.enabled
    || da.timer.interval <> db.timer.interval
    || da.timer.countdown <> db.timer.countdown
    || da.timer.fired <> db.timer.fired
  then Error (Unmergeable Device_state)
  else Ok ()

let check_mergeable ~instret_sensitive (a : State.t) (b : State.t) =
  if not (State.is_active a && State.is_active b) then Error (Unmergeable Status)
  else if a.pc <> b.pc then Error (Unmergeable Pc)
  else if a.multipath <> b.multipath then Error (Unmergeable Multipath)
  else if
    a.irq_enabled <> b.irq_enabled
    || a.in_irq <> b.in_irq || a.iepc <> b.iepc || a.sepc <> b.sepc
    || a.pending_irqs <> b.pending_irqs
    || a.irqs_suppressed <> b.irqs_suppressed
  then Error (Unmergeable Irq_state)
  else if a.env_frames <> b.env_frames then Error (Unmergeable Env_frames)
  else if a.ret_stack <> b.ret_stack then Error (Unmergeable Call_stack)
  else if a.incomplete <> b.incomplete then Error (Unmergeable Incomplete)
  else if instret_sensitive && a.instret <> b.instret then
    Error (Unmergeable Instret)
  else check_devices a.devices b.devices

(* First [k] elements of a constraint list: the side's own additions
   since the fork (newest first). *)
let take k l =
  let rec go k l acc =
    if k <= 0 then List.rev acc
    else match l with [] -> List.rev acc | x :: tl -> go (k - 1) tl (x :: acc)
  in
  go k l []

let rec drop k l = if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl

let conj = function
  | [] -> Expr.bool_t
  | c :: rest -> List.fold_left Expr.log_and c rest

(* Symbolic-memory diff: walk both overlays (address-sorted) and emit the
   bytes that differ, reading the other side's byte (overlay or shared
   base) for one-sided entries. *)
let mem_diffs (ma : Symmem.t) (mb : Symmem.t) =
  let la = List.rev (Symmem.fold_overlay (fun addr v acc -> (addr, v) :: acc) ma []) in
  let lb = List.rev (Symmem.fold_overlay (fun addr v acc -> (addr, v) :: acc) mb []) in
  let rec go la lb acc =
    match (la, lb) with
    | [], [] -> List.rev acc
    | (addr, va) :: ta, [] ->
        let vb = Symmem.read_byte mb addr in
        go ta [] (if Expr.equal va vb then acc else (addr, va, vb) :: acc)
    | [], (addr, vb) :: tb ->
        let va = Symmem.read_byte ma addr in
        go [] tb (if Expr.equal va vb then acc else (addr, va, vb) :: acc)
    | (aa, va) :: ta, (ab, vb) :: tb ->
        if aa = ab then
          go ta tb (if Expr.equal va vb then acc else (aa, va, vb) :: acc)
        else if aa < ab then
          let vb' = Symmem.read_byte mb aa in
          go ta lb (if Expr.equal va vb' then acc else (aa, va, vb') :: acc)
        else
          let va' = Symmem.read_byte ma ab in
          go la tb (if Expr.equal va' vb then acc else (ab, va', vb) :: acc)
  in
  go la lb []

(** Attempt to fold [a] (the parked side) into [b] (the arriving side),
    mutating [b] into the merged state.  [base_len] is the length of the
    shared constraint tail below the fork.  [budget] is the maximum
    predicted ite blow-up in expression nodes ([None] = merge always).
    On success returns [Ok cost]; [a] must then be discarded by the
    caller.  On failure neither state is modified. *)
let attempt ~simplify ~budget ~instret_sensitive ~base_len ~(a : State.t)
    ~(b : State.t) =
  match check_mergeable ~instret_sensitive a b with
  | Error _ as e -> e
  | Ok () ->
      let suffix_a = take (List.length a.constraints - base_len) a.constraints in
      let suffix_b = take (List.length b.constraints - base_len) b.constraints in
      let guard_a = conj suffix_a in
      let guard_b = conj suffix_b in
      let reg_diffs = ref [] in
      Array.iteri
        (fun i va ->
          if not (Expr.equal va b.regs.(i)) then
            reg_diffs := (i, va, b.regs.(i)) :: !reg_diffs)
        a.regs;
      let m_diffs = mem_diffs a.mem b.mem in
      (* Predicted ite blow-up from the O(1) hash-cons node counts: each
         differing cell gains an ite node plus (worst case, no sharing)
         both arms; the disjoined guard is paid once. *)
      let cost =
        List.fold_left
          (fun acc (_, va, vb) -> acc + 1 + Expr.size va + Expr.size vb)
          (1 + Expr.size guard_a + Expr.size guard_b)
          (!reg_diffs @ m_diffs)
      in
      (match budget with
      | Some max_cost when cost > max_cost -> Error (Rejected cost)
      | _ ->
          List.iter
            (fun (i, va, vb) -> b.regs.(i) <- simplify (Expr.ite guard_a va vb))
            !reg_diffs;
          List.iter
            (fun (addr, va, vb) ->
              b.mem <- Symmem.write_byte b.mem addr (simplify (Expr.ite guard_a va vb)))
            m_diffs;
          let disj = Expr.log_or guard_a guard_b in
          (* Installed directly (not via add_constraint): the case tree
             substitutes suffixes back by position, so the disjunction
             must occupy a list slot even when it folds to [true]. *)
          b.constraints <- disj :: drop (List.length b.constraints - base_len) b.constraints;
          b.cases <-
            State.Case_split
              {
                disj;
                base_len;
                a_suffix = suffix_a;
                b_suffix = suffix_b;
                a_tree = a.cases;
                b_tree = b.cases;
              };
          b.soft_constraints <- max a.soft_constraints b.soft_constraints;
          b.instret <- max a.instret b.instret;
          b.sym_instret <- max a.sym_instret b.sym_instret;
          b.depth <- max a.depth b.depth;
          b.virtual_time <-
            (if Int64.compare a.virtual_time b.virtual_time > 0 then a.virtual_time
             else b.virtual_time);
          Ok cost)
