(** Merge-point detection: intra-module post-dominators over the
    call-skipping block CFG.  Identifies the pc where the two sides of a
    fork re-converge, which is where sibling states rendezvous for an
    ite-join. *)

type t
(** Memoized per-module post-dominator tables. *)

val create : unit -> t

val join_point :
  t ->
  modules:S2e_core.Module_map.t ->
  code:Bytes.t ->
  a:int ->
  b:int ->
  int option
(** [join_point t ~modules ~code ~a ~b] is the nearest common
    post-dominator of the two fork successor pcs [a] and [b] within their
    module, or [None] when the sides only re-converge at function exit
    (the caller then falls back to the return-site rendezvous), when the
    pcs live in different or unknown modules, or when the module is too
    large to analyze. *)
