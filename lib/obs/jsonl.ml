(** Minimal JSON support for the telemetry stream: a writer for snapshot
    lines and a recursive-descent parser for the [stats] renderer.  No
    external dependency; covers the JSON subset the reporter emits (plus
    standard escapes) and rejects anything malformed with a position. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_num b f =
  if Float.is_nan f || Float.abs f = infinity then
    Buffer.add_string b "null" (* JSON has no nan/inf *)
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.9g" f)

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> add_num b f
  | Str s -> escape_string b s
  | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  write b j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else error "invalid literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' ->
          (if !pos >= n then error "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'n' -> Buffer.add_char b '\n'
           | 't' -> Buffer.add_char b '\t'
           | 'r' -> Buffer.add_char b '\r'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'u' ->
               if !pos + 4 > n then error "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               pos := !pos + 4;
               let code =
                 try int_of_string ("0x" ^ hex)
                 with Failure _ -> error "bad \\u escape"
               in
               (* Encode the code point as UTF-8 (BMP only, no surrogate
                  pairing — the writer never emits them). *)
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
           | _ -> error "bad escape");
          go ()
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let sub = String.sub s start (!pos - start) in
    match float_of_string_opt sub with
    | Some f -> Num f
    | None -> error (Printf.sprintf "bad number %S" sub)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> error "expected , or } in object"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> error "expected , or ] in array"
          in
          Arr (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %c" c)
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_obj = function Obj kvs -> Some kvs | _ -> None
let to_arr = function Arr xs -> Some xs | _ -> None

let num_member k j = Option.bind (member k j) to_num
let str_member k j = Option.bind (member k j) to_str
