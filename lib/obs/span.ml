(** Phase spans: monotonic-clock timers that attribute wall time to named
    execution phases (translate, execute, solver, steal, ...).

    A phase accumulates {e exclusive} (self) time: each domain keeps a
    stack of open spans in domain-local storage, and when a span closes,
    the time its nested children recorded is subtracted before the
    remainder is added to the phase's {!Metrics.fcounter}.  Summing every
    phase therefore never double-counts nested work — the per-run time
    breakdown adds up to the total spanned time, which is what lets the
    reporter print Table-5-style percentages that sum to ~100%.

    The clock is [Unix.gettimeofday] monotonized per domain (a reading
    older than the previous one is clamped), so spans never go negative
    across NTP steps. *)

type phase = {
  p_self : Metrics.fcounter; (* exclusive seconds: "phase.<name>_s" *)
  p_count : Metrics.counter; (* span closures: "phase.<name>_count" *)
  p_trace : int; (* interned name for {!Trace.span} events *)
}

let phase ?reg name =
  {
    p_self = Metrics.fcounter ?reg (Printf.sprintf "phase.%s_s" name);
    p_count = Metrics.counter ?reg (Printf.sprintf "phase.%s_count" name);
    p_trace = Trace.intern name;
  }

(* Per-domain clock clamp and span stack. *)
type frame = { mutable child : float }

type dls = { mutable last : float; mutable stack : frame list }

let dls_key = Domain.DLS.new_key (fun () -> { last = 0.; stack = [] })

let now () =
  let d = Domain.DLS.get dls_key in
  let t = Unix.gettimeofday () in
  if t < d.last then d.last else begin d.last <- t; t end

let timed ?on_elapsed ph f =
  let d = Domain.DLS.get dls_key in
  let fr = { child = 0. } in
  let t0 = now () in
  d.stack <- fr :: d.stack;
  let finish () =
    let dt = now () -. t0 in
    (match d.stack with
    | _ :: rest -> d.stack <- rest
    | [] -> () (* unbalanced close: only possible through effects misuse *));
    Metrics.fadd ph.p_self (Float.max 0. (dt -. fr.child));
    Metrics.incr ph.p_count;
    if Trace.enabled () then Trace.span ~name:ph.p_trace ~ts:t0 ~dur:dt;
    (match d.stack with
    | parent :: _ -> parent.child <- parent.child +. dt
    | [] -> ());
    match on_elapsed with Some g -> g dt | None -> ()
  in
  match f () with
  | r ->
      finish ();
      r
  | exception e ->
      finish ();
      raise e
