(** Domain-sharded metrics registry.

    Counters, gauges and fixed-bucket histograms whose cells live in
    per-domain shards: an update is a plain array store into the calling
    domain's shard (no locks, no atomics on the hot path), and
    {!snapshot} merges the shards lock-free.  Shards persist after their
    domain dies, so a snapshot taken after [Domain.join] of all writers
    is exact; a snapshot taken mid-run may be a few increments stale but
    never tears or crashes.  Registration and {!reset} are the only
    synchronized (cold) paths. *)

type t
(** A registry.  Most callers use the process-wide {!default}. *)

val default : t
val create : unit -> t

type gauge_merge =
  | Sum  (** per-domain last value, summed across shards (e.g. live paths) *)
  | Max  (** per-domain running max, maxed across shards (watermarks) *)

type counter
type gauge
type fcounter
type histogram

val counter : ?reg:t -> string -> counter
(** Monotonic int counter, summed across shards.  Registration is
    idempotent: the same name yields a handle to the same cells. *)

val gauge : ?reg:t -> ?merge:gauge_merge -> string -> gauge
(** Point-in-time int value; [merge] (default [Max]) picks the
    cross-shard combination. *)

val fcounter : ?reg:t -> string -> fcounter
(** Monotonic float accumulator (e.g. seconds), summed across shards.
    {!Span} phases are built on these. *)

val histogram : ?reg:t -> bounds:float array -> string -> histogram
(** Fixed-bucket histogram.  [bounds] are strictly increasing upper
    bounds; an observation [v] lands in the first bucket with
    [v <= bound], or the overflow bucket past the last bound.
    @raise Invalid_argument on empty or non-increasing bounds. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> int -> unit
val fadd : fcounter -> float -> unit
val observe : histogram -> float -> unit

type value =
  | Int of int
  | Float of float
  | Hist of { bounds : float array; counts : int array; sum : float }

type snapshot = (string * value) list
(** Metric name to merged value, in registration order. *)

val snapshot : ?reg:t -> unit -> snapshot
(** Lock-free merged view of every shard. *)

val shard_snapshots : ?reg:t -> unit -> (int * snapshot) list
(** Per-shard (unmerged) views keyed by shard id in creation order: the
    per-worker breakdown when each worker runs in its own domain. *)

val find : snapshot -> string -> value option

val get_int : snapshot -> string -> int
(** The metric's int value, or 0 when absent / not an int. *)

val get_float : snapshot -> string -> float
(** The metric's numeric value as a float, or 0. when absent. *)

val merge_snapshots : ?reg:t -> snapshot list -> snapshot
(** Combine snapshots taken in {e different processes} (distributed
    workers) into one, consulting [reg] for each metric's kind: counters,
    [Sum] gauges, float accumulators and histograms add element-wise;
    [Max] gauges take the max.  Names not registered locally fall back to
    numeric summation.  Name order follows first appearance. *)

val reset : ?reg:t -> unit -> unit
(** Zero every cell of every shard.  Callers must ensure no writer domain
    is concurrently active (typically: between runs). *)
