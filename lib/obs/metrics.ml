(** Domain-sharded metrics registry: the counting half of the telemetry
    subsystem (the timing half is {!Span}).

    Every metric owns one or more cells in per-domain {e shards}.  The hot
    path — incrementing a counter, setting a gauge, bumping a histogram
    bucket — is a plain array store into the calling domain's own shard:
    no atomics, no locks, no false sharing with other domains.  Shards are
    created lazily through [Domain.DLS] the first time a domain touches
    the registry and are never unregistered, so counts survive
    [Domain.join] and a snapshot taken after joining workers is exact.

    [snapshot] merges the shards lock-free: it reads the live arrays of
    every shard without synchronization.  Mid-run this may observe values
    a few increments stale (plain word-sized loads cannot tear in OCaml);
    after the writing domains have been joined it is exact.  The registry
    mutex guards only the cold paths: metric registration, shard
    registration and [reset]. *)

type gauge_merge = Sum | Max

(* A histogram with upper bounds [|b0; ...; bk|] owns k+2 int cells
   (bucket counts, cumulative-style "value <= bound" placement plus one
   overflow bucket) and one float cell (sum of observed values). *)
type kind =
  | K_counter
  | K_gauge of gauge_merge
  | K_fcounter
  | K_hist of float array

type entry = {
  e_name : string;
  e_kind : kind;
  e_ibase : int; (* first int cell, -1 when none *)
  e_ilen : int;
  e_fbase : int; (* first float cell, -1 when none *)
  e_flen : int;
}

type shard = {
  mutable shard_id : int;
  mutable ints : int array;
  mutable floats : float array;
}

type t = {
  mutex : Mutex.t;
  mutable entries : entry list; (* newest first *)
  mutable isize : int;
  mutable fsize : int;
  mutable shards : shard list; (* newest first, never removed *)
  mutable nshards : int;
  key : shard Domain.DLS.key;
}

let create () =
  let holder = ref None in
  let key =
    Domain.DLS.new_key (fun () ->
        match !holder with
        | None -> { shard_id = 0; ints = [||]; floats = [||] }
        | Some t ->
            Mutex.lock t.mutex;
            let s =
              {
                shard_id = t.nshards;
                ints = Array.make (max 8 t.isize) 0;
                floats = Array.make (max 8 t.fsize) 0.;
              }
            in
            t.nshards <- t.nshards + 1;
            t.shards <- s :: t.shards;
            Mutex.unlock t.mutex;
            s)
  in
  let t =
    { mutex = Mutex.create (); entries = []; isize = 0; fsize = 0;
      shards = []; nshards = 0; key }
  in
  holder := Some t;
  t

let default = create ()

(* ------------------------------------------------------------------ *)
(* Shard access (hot path)                                             *)
(* ------------------------------------------------------------------ *)

let shard t = Domain.DLS.get t.key

(* Growth happens only when a metric was registered after this domain's
   shard was created: the owning domain replaces its own array, and a
   concurrent snapshot simply sees the old (shorter) one. *)
let ensure_ints s n =
  if Array.length s.ints < n then begin
    let a = Array.make (max n ((2 * Array.length s.ints) + 8)) 0 in
    Array.blit s.ints 0 a 0 (Array.length s.ints);
    s.ints <- a
  end

let ensure_floats s n =
  if Array.length s.floats < n then begin
    let a = Array.make (max n ((2 * Array.length s.floats) + 8)) 0. in
    Array.blit s.floats 0 a 0 (Array.length s.floats);
    s.floats <- a
  end

(* ------------------------------------------------------------------ *)
(* Registration (cold path)                                            *)
(* ------------------------------------------------------------------ *)

type counter = { c_reg : t; c_slot : int }
type gauge = { g_reg : t; g_slot : int; g_merge : gauge_merge }
type fcounter = { f_reg : t; f_slot : int }
type histogram = { h_reg : t; h_base : int; h_sum : int; h_bounds : float array }

let same_kind a b =
  match a, b with
  | K_counter, K_counter | K_fcounter, K_fcounter -> true
  | K_gauge m, K_gauge m' -> m = m'
  | K_hist b1, K_hist b2 -> b1 = b2
  | _ -> false

(* Register [name] with [kind], or return the existing entry when the
   same metric was already registered (module-level handles in several
   libraries may race to define the same name). *)
let register t name kind ~ilen ~flen =
  Mutex.lock t.mutex;
  let e =
    match List.find_opt (fun e -> e.e_name = name) t.entries with
    | Some e ->
        if not (same_kind e.e_kind kind) then begin
          Mutex.unlock t.mutex;
          invalid_arg
            (Printf.sprintf "Metrics: %S re-registered with a different kind"
               name)
        end;
        e
    | None ->
        let e =
          {
            e_name = name;
            e_kind = kind;
            e_ibase = (if ilen > 0 then t.isize else -1);
            e_ilen = ilen;
            e_fbase = (if flen > 0 then t.fsize else -1);
            e_flen = flen;
          }
        in
        t.isize <- t.isize + ilen;
        t.fsize <- t.fsize + flen;
        t.entries <- e :: t.entries;
        e
  in
  Mutex.unlock t.mutex;
  e

let counter ?(reg = default) name =
  let e = register reg name K_counter ~ilen:1 ~flen:0 in
  { c_reg = reg; c_slot = e.e_ibase }

let gauge ?(reg = default) ?(merge = Max) name =
  let e = register reg name (K_gauge merge) ~ilen:1 ~flen:0 in
  { g_reg = reg; g_slot = e.e_ibase; g_merge = merge }

let fcounter ?(reg = default) name =
  let e = register reg name K_fcounter ~ilen:0 ~flen:1 in
  { f_reg = reg; f_slot = e.e_fbase }

let histogram ?(reg = default) ~bounds name =
  if Array.length bounds = 0 then
    invalid_arg "Metrics.histogram: empty bounds";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metrics.histogram: bounds must be strictly increasing")
    bounds;
  let e =
    register reg name (K_hist bounds) ~ilen:(Array.length bounds + 1) ~flen:1
  in
  { h_reg = reg; h_base = e.e_ibase; h_sum = e.e_fbase; h_bounds = bounds }

(* ------------------------------------------------------------------ *)
(* Updates (hot path)                                                  *)
(* ------------------------------------------------------------------ *)

let add c n =
  let s = shard c.c_reg in
  ensure_ints s (c.c_slot + 1);
  s.ints.(c.c_slot) <- s.ints.(c.c_slot) + n

let incr c = add c 1

let set g v =
  let s = shard g.g_reg in
  ensure_ints s (g.g_slot + 1);
  match g.g_merge with
  | Sum -> s.ints.(g.g_slot) <- v
  | Max -> if v > s.ints.(g.g_slot) then s.ints.(g.g_slot) <- v

let fadd f dt =
  let s = shard f.f_reg in
  ensure_floats s (f.f_slot + 1);
  s.floats.(f.f_slot) <- s.floats.(f.f_slot) +. dt

let observe h v =
  let s = shard h.h_reg in
  ensure_ints s (h.h_base + Array.length h.h_bounds + 1);
  ensure_floats s (h.h_sum + 1);
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n || v <= h.h_bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  s.ints.(h.h_base + i) <- s.ints.(h.h_base + i) + 1;
  s.floats.(h.h_sum) <- s.floats.(h.h_sum) +. v

(* ------------------------------------------------------------------ *)
(* Snapshots (lock-free merge)                                         *)
(* ------------------------------------------------------------------ *)

type value =
  | Int of int
  | Float of float
  | Hist of { bounds : float array; counts : int array; sum : float }

type snapshot = (string * value) list

let read_int (s : shard) slot =
  let a = s.ints in
  if slot >= 0 && slot < Array.length a then a.(slot) else 0

let read_float (s : shard) slot =
  let a = s.floats in
  if slot >= 0 && slot < Array.length a then a.(slot) else 0.

let read_entry shards e =
  match e.e_kind with
  | K_counter ->
      Int (List.fold_left (fun acc s -> acc + read_int s e.e_ibase) 0 shards)
  | K_gauge Sum ->
      Int (List.fold_left (fun acc s -> acc + read_int s e.e_ibase) 0 shards)
  | K_gauge Max ->
      Int (List.fold_left (fun acc s -> max acc (read_int s e.e_ibase)) 0 shards)
  | K_fcounter ->
      Float (List.fold_left (fun acc s -> acc +. read_float s e.e_fbase) 0. shards)
  | K_hist bounds ->
      let counts = Array.make (Array.length bounds + 1) 0 in
      List.iter
        (fun s ->
          Array.iteri
            (fun i _ -> counts.(i) <- counts.(i) + read_int s (e.e_ibase + i))
            counts)
        shards;
      let sum =
        List.fold_left (fun acc s -> acc +. read_float s e.e_fbase) 0. shards
      in
      Hist { bounds; counts; sum }

let snapshot_of t shards =
  List.rev_map (fun e -> (e.e_name, read_entry shards e)) t.entries

let snapshot ?(reg = default) () = snapshot_of reg reg.shards

let shard_snapshots ?(reg = default) () =
  reg.shards
  |> List.map (fun s -> (s.shard_id, snapshot_of reg [ s ]))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let find snap name = List.assoc_opt name snap

let get_int snap name =
  match find snap name with Some (Int n) -> n | _ -> 0

let get_float snap name =
  match find snap name with
  | Some (Float f) -> f
  | Some (Int n) -> float_of_int n
  | _ -> 0.

(* Merge snapshots taken in different processes (distributed workers).
   The rule comes from the metric's kind in the local registry: counters,
   Sum gauges, fcounters and histograms add; Max gauges take the max.
   Names absent from the local registry fall back to summation. *)
let merge_snapshots ?(reg = default) snaps =
  let kind_of name =
    Mutex.lock reg.mutex;
    let e = List.find_opt (fun e -> e.e_name = name) reg.entries in
    Mutex.unlock reg.mutex;
    Option.map (fun e -> e.e_kind) e
  in
  let names =
    List.fold_left
      (fun acc snap ->
        List.fold_left
          (fun acc (name, _) ->
            if List.mem name acc then acc else name :: acc)
          acc snap)
      [] snaps
    |> List.rev
  in
  List.map
    (fun name ->
      let vs = List.filter_map (fun snap -> List.assoc_opt name snap) snaps in
      let v =
        match kind_of name, vs with
        | _, [] -> Int 0
        | Some (K_gauge Max), _ ->
            Int
              (List.fold_left
                 (fun acc v -> match v with Int n -> max acc n | _ -> acc)
                 0 vs)
        | _, Hist h0 :: _ ->
            (* Element-wise bucket sums; snapshots from the same binary
               always agree on bounds, others are skipped. *)
            let counts = Array.make (Array.length h0.counts) 0 in
            let sum = ref 0. in
            List.iter
              (function
                | Hist h when h.bounds = h0.bounds ->
                    Array.iteri
                      (fun i c ->
                        if i < Array.length counts then
                          counts.(i) <- counts.(i) + c)
                      h.counts;
                    sum := !sum +. h.sum
                | _ -> ())
              vs;
            Hist { bounds = h0.bounds; counts; sum = !sum }
        | _, _ ->
            if List.for_all (function Int _ -> true | _ -> false) vs then
              Int
                (List.fold_left
                   (fun acc v -> match v with Int n -> acc + n | _ -> acc)
                   0 vs)
            else
              Float
                (List.fold_left
                   (fun acc v ->
                     match v with
                     | Int n -> acc +. float_of_int n
                     | Float f -> acc +. f
                     | Hist _ -> acc)
                   0. vs)
      in
      (name, v))
    names

let reset ?(reg = default) () =
  Mutex.lock reg.mutex;
  List.iter
    (fun s ->
      Array.fill s.ints 0 (Array.length s.ints) 0;
      Array.fill s.floats 0 (Array.length s.floats) 0.)
    reg.shards;
  Mutex.unlock reg.mutex
