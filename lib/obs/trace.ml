(* Per-domain sharded ring-buffer event tracer.  See trace.mli for the
   contract.  The emit path is a plain array store into the calling
   domain's own ring — no locks, no atomics, no sharing; the registry
   mutex guards only shard registration, interning, draining and reset,
   mirroring the Metrics design. *)

type code = Path_start | Path_end | Query | Phase | Instant

type event = {
  ev_ts : float;
  ev_dur : float;
  ev_pid : int;
  ev_dom : int;
  ev_code : code;
  ev_path : int;
  ev_a : int;
  ev_b : int;
  ev_c : int;
}

let dummy =
  {
    ev_ts = 0.;
    ev_dur = 0.;
    ev_pid = 0;
    ev_dom = 0;
    ev_code = Instant;
    ev_path = -1;
    ev_a = 0;
    ev_b = 0;
    ev_c = 0;
  }

type shard = {
  sh_id : int;
  mutable sh_slots : event array; (* allocated on first emit *)
  mutable sh_cap : int;
  mutable sh_total : int; (* events ever written *)
  mutable sh_taken : int; (* events handed out by drain *)
}

let mutex = Mutex.create ()
let shards : shard list ref = ref []
let nshards = ref 0
let default_capacity = 65536
let capacity = ref default_capacity

(* The single global on/off gate: a plain bool read on every emit.  Plain
   (not atomic) is deliberate — enabling happens before domains spawn and
   word-sized loads cannot tear. *)
let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

type dls = { mutable d_last : float; mutable d_path : int }

let shard_key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock mutex;
      let s =
        { sh_id = !nshards; sh_slots = [||]; sh_cap = !capacity;
          sh_total = 0; sh_taken = 0 }
      in
      incr nshards;
      shards := s :: !shards;
      Mutex.unlock mutex;
      s)

let dls_key = Domain.DLS.new_key (fun () -> { d_last = 0.; d_path = -1 })

let now () =
  let d = Domain.DLS.get dls_key in
  let t = Unix.gettimeofday () in
  if t < d.d_last then d.d_last else begin d.d_last <- t; t end

let set_current_path id = (Domain.DLS.get dls_key).d_path <- id
let current_path () = (Domain.DLS.get dls_key).d_path

let clear_shards () =
  Mutex.lock mutex;
  List.iter
    (fun s ->
      s.sh_slots <- [||];
      s.sh_cap <- !capacity;
      s.sh_total <- 0;
      s.sh_taken <- 0)
    !shards;
  Mutex.unlock mutex

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity";
  capacity := n;
  clear_shards ()

let reset () = clear_shards ()

(* ------------------------------------------------------------------ *)
(* Name interning                                                      *)
(* ------------------------------------------------------------------ *)

let names : (string, int) Hashtbl.t = Hashtbl.create 64
let ids : (int, string) Hashtbl.t = Hashtbl.create 64
let next_id = ref 0

let intern name =
  Mutex.lock mutex;
  let id =
    match Hashtbl.find_opt names name with
    | Some id -> id
    | None ->
        let id = !next_id in
        incr next_id;
        Hashtbl.add names name id;
        Hashtbl.add ids id name;
        id
  in
  Mutex.unlock mutex;
  id

let name_of id =
  Mutex.lock mutex;
  let n = Hashtbl.find_opt ids id in
  Mutex.unlock mutex;
  match n with Some n -> n | None -> Printf.sprintf "?%d" id

(* ------------------------------------------------------------------ *)
(* Emit (hot path)                                                     *)
(* ------------------------------------------------------------------ *)

let emit ev =
  let s = Domain.DLS.get shard_key in
  if s.sh_cap > 0 then begin
    if Array.length s.sh_slots = 0 then s.sh_slots <- Array.make s.sh_cap dummy;
    s.sh_slots.(s.sh_total mod s.sh_cap) <- { ev with ev_dom = s.sh_id };
    s.sh_total <- s.sh_total + 1
  end

let path_start ?ts ~path ~parent () =
  if !enabled_flag then
    let ts = match ts with Some t -> t | None -> now () in
    emit { dummy with ev_ts = ts; ev_code = Path_start; ev_path = path;
           ev_a = parent }

let path_end ?ts ~path ~status ~incomplete () =
  if !enabled_flag then
    let ts = match ts with Some t -> t | None -> now () in
    emit { dummy with ev_ts = ts; ev_code = Path_end; ev_path = path;
           ev_a = status; ev_b = (if incomplete then 1 else 0) }

let query ?ts ?(inc = 0) ~dur ~prefix ~nodes ~result ~cache () =
  if !enabled_flag then
    let ts = match ts with Some t -> t | None -> now () -. dur in
    emit { dummy with ev_ts = ts; ev_dur = dur; ev_code = Query;
           ev_path = current_path (); ev_a = prefix; ev_b = nodes;
           ev_c = (inc * 16) + (result * 4) + cache }

let span ~name ~ts ~dur =
  if !enabled_flag then
    emit { dummy with ev_ts = ts; ev_dur = dur; ev_code = Phase;
           ev_path = current_path (); ev_a = name }

let instant ?ts ?(path = -1) ?(a = 0) ?(b = 0) name =
  if !enabled_flag then
    let ts = match ts with Some t -> t | None -> now () in
    emit { dummy with ev_ts = ts; ev_code = Instant; ev_path = path;
           ev_a = name; ev_b = a; ev_c = b }

(* ------------------------------------------------------------------ *)
(* Draining                                                            *)
(* ------------------------------------------------------------------ *)

let drain () =
  Mutex.lock mutex;
  let evs = ref [] and dropped = ref 0 in
  List.iter
    (fun s ->
      if s.sh_cap > 0 && Array.length s.sh_slots > 0 then begin
        let total = s.sh_total in
        let lo = max s.sh_taken (total - s.sh_cap) in
        dropped := !dropped + (lo - s.sh_taken);
        for i = lo to total - 1 do
          evs := s.sh_slots.(i mod s.sh_cap) :: !evs
        done;
        s.sh_taken <- total
      end)
    !shards;
  Mutex.unlock mutex;
  (List.sort (fun a b -> compare a.ev_ts b.ev_ts) !evs, !dropped)

(* ------------------------------------------------------------------ *)
(* Binary chunk codec (worker -> coordinator shipping)                 *)
(* ------------------------------------------------------------------ *)

let int_of_code = function
  | Path_start -> 0
  | Path_end -> 1
  | Query -> 2
  | Phase -> 3
  | Instant -> 4

let code_of_int = function
  | 0 -> Path_start
  | 1 -> Path_end
  | 2 -> Query
  | 3 -> Phase
  | 4 -> Instant
  | n -> failwith (Printf.sprintf "Trace.decode_chunk: bad event code %d" n)

let w_i64 b n = Buffer.add_int64_le b (Int64.of_int n)
let w_f64 b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let w_str b s =
  w_i64 b (String.length s);
  Buffer.add_string b s

type reader = { r_buf : string; mutable r_pos : int }

let r_i64 r =
  if r.r_pos + 8 > String.length r.r_buf then
    failwith "Trace.decode_chunk: truncated";
  let v = Int64.to_int (String.get_int64_le r.r_buf r.r_pos) in
  r.r_pos <- r.r_pos + 8;
  v

let r_f64 r =
  if r.r_pos + 8 > String.length r.r_buf then
    failwith "Trace.decode_chunk: truncated";
  let v = Int64.float_of_bits (String.get_int64_le r.r_buf r.r_pos) in
  r.r_pos <- r.r_pos + 8;
  v

let r_str r =
  let n = r_i64 r in
  if n < 0 || r.r_pos + n > String.length r.r_buf then
    failwith "Trace.decode_chunk: truncated string";
  let s = String.sub r.r_buf r.r_pos n in
  r.r_pos <- r.r_pos + n;
  s

let encode_chunk events ~dropped =
  let b = Buffer.create 4096 in
  (* Name table first so the decoder can remap Phase/Instant ids. *)
  Mutex.lock mutex;
  let table = Hashtbl.fold (fun name id acc -> (id, name) :: acc) names [] in
  Mutex.unlock mutex;
  w_i64 b (List.length table);
  List.iter (fun (id, name) -> w_i64 b id; w_str b name) table;
  w_i64 b dropped;
  w_i64 b (List.length events);
  List.iter
    (fun e ->
      w_i64 b (int_of_code e.ev_code);
      w_f64 b e.ev_ts;
      w_f64 b e.ev_dur;
      w_i64 b e.ev_dom;
      w_i64 b e.ev_path;
      w_i64 b e.ev_a;
      w_i64 b e.ev_b;
      w_i64 b e.ev_c)
    events;
  Buffer.contents b

let decode_chunk ?(pid = 0) ?(offset = 0.) s =
  let r = { r_buf = s; r_pos = 0 } in
  let ntable = r_i64 r in
  if ntable < 0 then failwith "Trace.decode_chunk: bad name table";
  let remap = Hashtbl.create (max 8 ntable) in
  for _ = 1 to ntable do
    let id = r_i64 r in
    let name = r_str r in
    Hashtbl.replace remap id (intern name)
  done;
  let remap_id id =
    match Hashtbl.find_opt remap id with Some id' -> id' | None -> id
  in
  let dropped = r_i64 r in
  let nev = r_i64 r in
  if nev < 0 then failwith "Trace.decode_chunk: bad event count";
  let evs = ref [] in
  for _ = 1 to nev do
    let code = code_of_int (r_i64 r) in
    let ts = r_f64 r in
    let dur = r_f64 r in
    let dom = r_i64 r in
    let path = r_i64 r in
    let a = r_i64 r in
    let b = r_i64 r in
    let c = r_i64 r in
    let a = match code with Phase | Instant -> remap_id a | _ -> a in
    evs :=
      { ev_ts = ts +. offset; ev_dur = dur; ev_pid = pid; ev_dom = dom;
        ev_code = code; ev_path = path; ev_a = a; ev_b = b; ev_c = c }
      :: !evs
  done;
  (List.rev !evs, dropped)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)
(* ------------------------------------------------------------------ *)

let result_name = function 0 -> "sat" | 1 -> "unsat" | _ -> "unknown"
let cache_name = function 0 -> "miss" | 1 -> "model" | _ -> "unsat"

(* Realized incremental reuse for the query: [fresh] built a new SAT
   instance, [partial] popped a live instance to a common ancestor and
   asserted a suffix, [hit] probed a live instance whose assumption stack
   matched the whole prefix. *)
let inc_name = function 0 -> "fresh" | 1 -> "partial" | _ -> "hit"

let json_of_event e =
  let open Jsonl in
  let us t = t *. 1e6 in
  let base name ph args =
    let common =
      [ ("name", Str name); ("ph", Str ph); ("ts", Num (us e.ev_ts));
        ("pid", Num (float_of_int e.ev_pid));
        ("tid", Num (float_of_int e.ev_dom)) ]
    in
    let dur = if ph = "X" then [ ("dur", Num (us e.ev_dur)) ] else [] in
    let scope = if ph = "i" then [ ("s", Str "t") ] else [] in
    Obj (common @ dur @ scope @ [ ("args", Obj args) ])
  in
  let path = ("path", Num (float_of_int e.ev_path)) in
  match e.ev_code with
  | Path_start ->
      base "path_start" "i"
        [ path; ("parent", Num (float_of_int e.ev_a)) ]
  | Path_end ->
      base "path_end" "i"
        [ path; ("status", Num (float_of_int e.ev_a));
          ("incomplete", Num (float_of_int e.ev_b)) ]
  | Query ->
      base "solver_query" "X"
        [ path;
          (* 63-bit hash: a JSON double would round it. *)
          ("prefix", Str (Printf.sprintf "0x%x" e.ev_a));
          ("nodes", Num (float_of_int e.ev_b));
          ("result", Str (result_name (e.ev_c / 4 mod 4)));
          ("cache", Str (cache_name (e.ev_c mod 4)));
          ("incremental", Str (inc_name (e.ev_c / 16))) ]
  | Phase -> base (name_of e.ev_a) "X" [ path ]
  | Instant ->
      base (name_of e.ev_a) "i"
        (path
         :: (if e.ev_b <> 0 || e.ev_c <> 0 then
               [ ("a", Num (float_of_int e.ev_b));
                 ("b", Num (float_of_int e.ev_c)) ]
             else []))

let to_json ?(dropped = 0) events =
  let open Jsonl in
  Obj
    [
      ("traceEvents", Arr (List.map json_of_event events));
      ("displayTimeUnit", Str "ms");
      ( "s2e",
        Obj
          [ ("dropped", Num (float_of_int dropped));
            ("events", Num (float_of_int (List.length events))) ] );
    ]

let write_json oc ?(dropped = 0) events =
  output_string oc (Jsonl.to_string (to_json ~dropped events));
  output_char oc '\n'
