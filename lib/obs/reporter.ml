(** Periodic run-stats reporter: serializes registry snapshots as JSONL.

    [start] spawns a dedicated domain that takes a lock-free
    {!Metrics.snapshot} every [interval] seconds and appends one JSON
    object per line to the output channel; [stop] joins the domain and
    emits a last line with ["kind":"final"], which — taken after the
    worker domains have been joined — is an exact merge of every shard.

    Line schema:
    {v
    {"ts": <unix time>, "elapsed_s": <since start>, "seq": N,
     "kind": "periodic" | "final",
     "metrics": {"<name>": <number>, ...},
     "hist": {"<name>": {"bounds": [...], "counts": [...], "sum": S}, ...},
     "shards": [{"shard": I, "metrics": {<nonzero cells only>}}, ...]}
    v} *)

type t = {
  reg : Metrics.t;
  out : out_channel;
  started : float;
  interval : float;
  stop_flag : bool Atomic.t;
  mutable seq : int; (* written by the reporter domain, then — after the
                        join in [stop] — by the stopping domain *)
  mutable dom : unit Domain.t option;
}

let snapshot_line t ~kind =
  let snap = Metrics.snapshot ~reg:t.reg () in
  let metrics, hists =
    List.fold_left
      (fun (ms, hs) (name, v) ->
        match v with
        | Metrics.Int n -> ((name, Jsonl.Num (float_of_int n)) :: ms, hs)
        | Metrics.Float f -> ((name, Jsonl.Num f) :: ms, hs)
        | Metrics.Hist { bounds; counts; sum } ->
            let h =
              Jsonl.Obj
                [
                  ("bounds",
                   Jsonl.Arr (Array.to_list bounds |> List.map (fun b -> Jsonl.Num b)));
                  ("counts",
                   Jsonl.Arr
                     (Array.to_list counts
                     |> List.map (fun c -> Jsonl.Num (float_of_int c))));
                  ("sum", Jsonl.Num sum);
                ]
            in
            (ms, (name, h) :: hs))
      ([], []) snap
  in
  let shards =
    Metrics.shard_snapshots ~reg:t.reg ()
    |> List.map (fun (id, snap) ->
           let cells =
             List.filter_map
               (fun (name, v) ->
                 match v with
                 | Metrics.Int 0 -> None
                 | Metrics.Int n -> Some (name, Jsonl.Num (float_of_int n))
                 | Metrics.Float f ->
                     if f = 0. then None else Some (name, Jsonl.Num f)
                 | Metrics.Hist _ -> None)
               snap
           in
           Jsonl.Obj
             [ ("shard", Jsonl.Num (float_of_int id)); ("metrics", Jsonl.Obj cells) ])
  in
  let now = Unix.gettimeofday () in
  Jsonl.Obj
    [
      ("ts", Jsonl.Num now);
      ("elapsed_s", Jsonl.Num (now -. t.started));
      ("seq", Jsonl.Num (float_of_int t.seq));
      ("kind", Jsonl.Str kind);
      ("metrics", Jsonl.Obj (List.rev metrics));
      ("hist", Jsonl.Obj (List.rev hists));
      ("shards", Jsonl.Arr shards);
    ]

let emit t ~kind =
  output_string t.out (Jsonl.to_string (snapshot_line t ~kind));
  output_char t.out '\n';
  flush t.out;
  t.seq <- t.seq + 1

let loop t =
  let chunk = Float.min 0.02 (Float.max 0.001 (t.interval /. 4.)) in
  let rec sleep_until deadline =
    if not (Atomic.get t.stop_flag) then begin
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining > 0. then begin
        Unix.sleepf (Float.min chunk remaining);
        sleep_until deadline
      end
    end
  in
  let rec go deadline =
    sleep_until deadline;
    if not (Atomic.get t.stop_flag) then begin
      (* A transient write failure must not kill the domain: [stop] still
         has to join it and emit the final line. *)
      (try emit t ~kind:"periodic" with Sys_error _ | Unix.Unix_error _ -> ());
      go (deadline +. t.interval)
    end
  in
  go (t.started +. t.interval)

let start ?(reg = Metrics.default) ~interval out =
  if interval <= 0. then invalid_arg "Reporter.start: interval must be > 0";
  let t =
    {
      reg;
      out;
      started = Unix.gettimeofday ();
      interval;
      stop_flag = Atomic.make false;
      seq = 0;
      dom = None;
    }
  in
  t.dom <- Some (Domain.spawn (fun () -> loop t));
  t

let stop t =
  Atomic.set t.stop_flag true;
  (match t.dom with
  | Some d ->
      (* Even if the reporter domain died, the final snapshot must go out. *)
      (try Domain.join d with _ -> ());
      t.dom <- None
  | None -> ());
  emit t ~kind:"final"

let with_reporter ?reg ~interval out f =
  let t = start ?reg ~interval out in
  Fun.protect ~finally:(fun () -> try stop t with Sys_error _ -> ()) f
