(** Periodic run-stats reporter: a dedicated domain appends one JSON
    snapshot line ({!Metrics.snapshot} plus per-shard views) to a channel
    every interval; {!stop} joins it and writes an exact final line. *)

type t

val start : ?reg:Metrics.t -> interval:float -> out_channel -> t
(** Spawn the reporter domain.  Lines carry ["kind":"periodic"].  The
    channel is flushed after every line and is {e not} closed by this
    module.  @raise Invalid_argument when [interval <= 0]. *)

val stop : t -> unit
(** Stop and join the reporter domain, then emit a ["kind":"final"] line.
    Call after joining any worker domains so the final merge is exact. *)

val emit : t -> kind:string -> unit
(** Write one snapshot line immediately (used for the final line; exposed
    for tests). *)

val with_reporter :
  ?reg:Metrics.t -> interval:float -> out_channel -> (unit -> 'a) -> 'a
(** [with_reporter ~interval out f] runs [f] with a reporter attached and
    guarantees the final ["kind":"final"] line is flushed whether [f]
    returns or raises. *)
