(** Low-overhead event tracer: per-domain sharded ring buffers of typed,
    timestamped events, off by default.

    Each domain owns a private bounded ring (no locks or atomics on the
    emit path); when the ring wraps, the oldest events are overwritten and
    the drop is counted exactly.  Tracing is gated on a single global
    flag: with tracing off every emit helper is one load and one branch.

    Events carry a monotonic per-domain timestamp, the emitting domain's
    shard id, and a process lane ([ev_pid]) that is [0] for locally
    emitted events and stamped by {!decode_chunk} when a distributed
    worker ships its buffer to the coordinator.  The binary chunk codec
    carries the string-interning table with each chunk, so name ids from
    another process are re-interned on arrival. *)

type code =
  | Path_start  (** [ev_path] born; [ev_a] = parent path id (-1 for root) *)
  | Path_end  (** [ev_path] terminated; [ev_a] = status code, [ev_b] = 1 if incomplete *)
  | Query
      (** solver query on [ev_path]: [ev_a] = constraint-prefix hash,
          [ev_b] = expression node count,
          [ev_c] = inc*16 + result*4 + cache class
          (inc: 0 fresh solve / 1 partial prefix hit / 2 full prefix hit;
           result: 0 sat / 1 unsat / 2 unknown;
           cache: 0 miss / 1 model-cache hit / 2 unsat-cache hit) *)
  | Phase  (** completed phase span; [ev_a] = interned phase name *)
  | Instant
      (** point event; [ev_a] = interned name, [ev_b]/[ev_c] = arguments *)

type event = {
  ev_ts : float;  (** start time, seconds (monotonized wall clock) *)
  ev_dur : float;  (** duration in seconds; [0.] for instants *)
  ev_pid : int;  (** process lane: 0 local, worker pid after dist merge *)
  ev_dom : int;  (** emitting domain's shard id within its process *)
  ev_code : code;
  ev_path : int;  (** path (state) id, [-1] when not path-scoped *)
  ev_a : int;
  ev_b : int;
  ev_c : int;
}

val set_enabled : bool -> unit
(** Turn tracing on or off.  Off (the default) reduces every emit helper
    to a flag check. *)

val enabled : unit -> bool

val set_capacity : int -> unit
(** Set the per-domain ring capacity (default 65536 events) and clear all
    shards.  Call while no other domain is emitting. *)

val reset : unit -> unit
(** Drop all buffered events and dropped-counts.  Call while no other
    domain is emitting (e.g. before an exploration starts). *)

val now : unit -> float
(** The tracer's clock: [Unix.gettimeofday] monotonized per domain. *)

val intern : string -> int
(** Intern a name for [Phase]/[Instant] events.  Safe from any domain. *)

val name_of : int -> string
(** Reverse of {!intern}; ["?<id>"] for ids never interned locally. *)

val set_current_path : int -> unit
(** Record the path id the calling domain is executing; subsequent
    {!query} events are attributed to it.  [-1] clears it. *)

val current_path : unit -> int

(** {1 Emit helpers} — no-ops while tracing is disabled. *)

val path_start : ?ts:float -> path:int -> parent:int -> unit -> unit
val path_end : ?ts:float -> path:int -> status:int -> incomplete:bool -> unit -> unit

val query :
  ?ts:float ->
  ?inc:int ->
  dur:float ->
  prefix:int ->
  nodes:int ->
  result:int ->
  cache:int ->
  unit ->
  unit
(** [ts] is the query's {e start}; defaults to [now () -. dur].  [inc] is
    the realized incremental-reuse class (0 fresh / 1 partial / 2 full
    prefix hit, default 0). *)

val span : name:int -> ts:float -> dur:float -> unit
(** A completed phase span ([name] from {!intern}); [ts] is the start. *)

val instant : ?ts:float -> ?path:int -> ?a:int -> ?b:int -> int -> unit
(** [instant name] records a point event ([name] from {!intern}). *)

(** {1 Draining and the chunk codec} *)

val drain : unit -> event list * int
(** Remove and return all buffered events, sorted by timestamp, plus the
    number of events dropped (ring overwrites) since the last drain.
    Exact once emitting domains have been joined. *)

val encode_chunk : event list -> dropped:int -> string
(** Serialize a drained batch, including the local interning table. *)

val decode_chunk : ?pid:int -> ?offset:float -> string -> event list * int
(** Decode a chunk from another process: stamps [ev_pid <- pid], shifts
    timestamps by [offset] (coordinator clock minus worker clock), and
    re-interns remote name ids into the local table.
    @raise Failure on a malformed chunk. *)

(** {1 Export} *)

val to_json : ?dropped:int -> event list -> Jsonl.t
(** Chrome/Perfetto [trace_event] JSON: an object with a [traceEvents]
    array (timestamps in microseconds; [ph]="X" for spans and queries,
    [ph]="i" for instants and path lifecycle) plus an [s2e] metadata
    object.  Constraint-prefix hashes are exported as hex strings —
    they do not fit a JSON double. *)

val write_json : out_channel -> ?dropped:int -> event list -> unit
(** {!to_json} rendered compactly to [oc], newline-terminated. *)
