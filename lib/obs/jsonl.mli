(** Minimal dependency-free JSON reader/writer for the telemetry stream
    (one JSON object per line — JSONL). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering.  Integral floats print without a decimal
    point; NaN/infinity become [null]. *)

val parse : string -> (t, string) result
(** Parse one complete JSON value; [Error] carries the offset of the
    first problem. *)

val member : string -> t -> t option
val to_num : t -> float option
val to_str : t -> string option
val to_obj : t -> (string * t) list option
val to_arr : t -> t list option
val num_member : string -> t -> float option
val str_member : string -> t -> string option
