(** Phase spans: per-domain monotonic timers accumulating {e exclusive}
    time per named phase, so that summing all phases never double-counts
    nested spans (a solver query timed inside an execute span contributes
    to "solver", not to both). *)

type phase
(** A named phase backed by two registry metrics:
    ["phase.<name>_s"] (exclusive seconds, {!Metrics.fcounter}) and
    ["phase.<name>_count"] (closed spans, {!Metrics.counter}). *)

val phase : ?reg:Metrics.t -> string -> phase
(** Register (idempotently) the phase's metrics in [reg] (default
    {!Metrics.default}). *)

val timed : ?on_elapsed:(float -> unit) -> phase -> (unit -> 'a) -> 'a
(** [timed ph f] runs [f], attributing its wall time minus any nested
    spans to [ph].  Exception-safe: the span closes when [f] raises.
    [on_elapsed] receives the {e inclusive} elapsed time (nested spans
    included) — used by the solver to feed its per-query statistics from
    the same clock readings. *)

val now : unit -> float
(** The per-domain monotonized clock the spans use. *)
