(** Elastic coordinator: multi-process and multi-host distribution of
    the exploration frontier with crash-tolerant work accounting, TCP
    worker admission with leases and session rejoin, delta-encoded
    snapshot shipping, coordinator-solo degradation, and merged
    telemetry.  See {!explore}. *)

module Executor = S2e_core.Executor
module State = S2e_core.State
module Solver = S2e_solver.Solver
module Obs = S2e_obs

(** How to start an attached worker process. *)
type spawn =
  | Fork of { jobs : int; slice : float; make_engine : unit -> Executor.t }
      (** [Unix.fork] and run {!Worker.serve} in the child.  Only safe
          while no OCaml domain has been spawned in this process. *)
  | Exec of { argv : string array }
      (** Spawn [argv] (typically [s2e_cli worker ...]); the worker end
          of the socketpair is passed via the [S2E_DIST_FD] environment
          variable. *)

(** Scheduling events, exposed for logging and fault-injection tests. *)
type event =
  | Spawned of { pid : int; slot : int }
  | Dispatched of { pid : int; item : int }
  | Completed of { pid : int; item : int; paths : int }
  | Checkpointed of { pid : int; item : int; states : int }
  | Crashed of { pid : int; requeued : bool }
  | Respawned of { pid : int; slot : int }
  | Joined of { wid : int; addr : string }
      (** a TCP worker completed its [Hello] handshake and was admitted *)
  | Rejoined of { wid : int; pid : int }
      (** a lost session re-authenticated with its token and resumed *)
  | Left of { wid : int; requeued : bool }
      (** a TCP worker's connection died (EOF or expired lease); its
          session is kept so it may still [Rejoin] *)
  | Solo of { item : int }
      (** no workers left: the coordinator started exploring this item
          on its own boot engine *)

type result = {
  procs : int;
  paths : Proto.path list;
      (** every terminated path, with its test case when [cases] was set *)
  stats : Executor.stats;  (** merged over workers + the local boot *)
  solver_stats : Solver.stats;
  obs : Obs.Metrics.snapshot;  (** merged worker registries + local *)
  steals : int;  (** checkpoints triggered by steal requests *)
  requeues : int;  (** in-flight items recovered from dead workers *)
  restarts : int;  (** attached worker processes respawned *)
  abandoned : (int * int) list;
      (** items given up after [max_item_attempts] worker deaths each:
          (item id, attempts).  Non-empty means exploration lost work —
          callers should report it and exit distinctly. *)
  naks : int;
      (** damaged/out-of-order frames NAKed (both directions, merged
          from the telemetry snapshots) *)
  retransmits : int;  (** frames re-sent on NAK, both directions *)
  injected : int;
      (** transport corruptions injected by the [proto.corrupt] fault
          plan, both directions *)
  unexplored : int;
      (** frontier states left when the run stopped, including one per
          abandoned item *)
  wall_seconds : float;
  joins : int;  (** TCP workers admitted over the run *)
  reconnects : int;  (** sessions resumed via [Rejoin] *)
  leaves : int;
      (** TCP worker connection losses (EOF or expired lease); a
          rejoining worker contributes one leave and one reconnect *)
  solo_paths : int;
      (** paths explored by the coordinator itself while degraded to
          solo mode *)
  delta_bytes : int;
      (** snapshot bytes actually shipped after delta encoding against
          the shared baseline (both directions, merged) *)
  delta_full_bytes : int;
      (** what the same snapshots would have cost shipped whole; the
          ratio [delta_bytes /. delta_full_bytes] is the compressor's
          report card *)
  trace : Obs.Trace.event list;
      (** merged event timeline (empty unless {!Obs.Trace} was enabled):
          worker trace chunks shipped over heartbeats and [Bye] frames,
          clock-offset normalized onto the coordinator's timeline and
          stamped with the worker's pid, interleaved with the
          coordinator's own events, sorted by timestamp *)
  trace_dropped : int;  (** trace-ring overwrites across all processes *)
}

val explore :
  ?procs:int ->
  ?limits:Executor.run_limits ->
  ?max_restarts:int ->
  ?max_item_attempts:int ->
  ?heartbeat_timeout:float ->
  ?cases:bool ->
  ?handle_sigint:bool ->
  ?listener:Unix.file_descr ->
  ?max_workers:int ->
  ?on_event:(event -> unit) ->
  spawn:spawn ->
  make_engine:(unit -> Executor.t) ->
  boot:(Executor.t -> State.t) ->
  unit ->
  result
(** [explore ~spawn ~make_engine ~boot ()] boots the initial state on a
    local engine, spawns [procs] attached worker processes (default 2),
    and drives the distributed frontier to exhaustion or until [limits]
    is hit.

    Work items (serialized fork-point states) are dispatched one per
    worker; when the queue runs dry the busiest worker is asked to
    [Steal]-checkpoint its frontier, which re-enters the queue.  An
    attached worker that dies or goes silent past [heartbeat_timeout]
    seconds (default 10) has its in-flight item requeued (at most
    [max_item_attempts] attempts per item, default 3) and is respawned
    with backoff (at most [max_restarts] times, default 8).  With
    [cases] workers additionally solve the canonical test case of every
    terminated path (one cold solver query per path, amortized across
    slices); otherwise [p_case] fields come back empty.  When
    [handle_sigint] is set, Ctrl-C triggers a graceful drain: busy
    workers checkpoint, and the returned [unexplored] counts what was
    left.  [on_event] observes scheduling decisions (used by the
    fault-injection tests).

    {b Elastic mode.}  Passing [listener] (a socket from
    {!Proto.listen}) lets TCP workers ([s2e_cli worker --connect], up to
    [max_workers] alive at once, default 64) join and leave mid-run.
    Each admitted worker is granted a session (wid + token) and a
    liveness {e lease} of [heartbeat_timeout] seconds in its [Welcome],
    along with the run's shared baseline snapshot; item blobs then ship
    delta-encoded against that baseline in both directions.  A remote
    worker whose connection dies (EOF or expired lease) has its item
    requeued {e without} charging an abandonment attempt — transport
    loss is presumed chaos, not a poison item — and may resume its
    session by reconnecting with [Rejoin] and its token.  In elastic
    mode item budgets adapt to each worker's observed throughput so
    slow workers return their remainder early; the fork-only path keeps
    the legacy fixed budget so [--procs N] results stay byte-identical.
    [procs = 0] is allowed when a [listener] is given.

    {b Degradation ladder.}  Workers may crash and be respawned; remote
    workers may leave and rejoin; and when {e no} worker is alive at
    all, the coordinator explores queued items on its own boot engine
    (solo mode) in short slices, still polling the listener so a
    late-joining worker can take over.  The run only abandons work for
    items that repeatedly kill attached workers, or when its own budget
    expires.

    The result merges every worker's paths, executor and solver stats,
    and metrics-registry snapshot with the coordinator's own.  The
    caller owns [listener] and closes it after [explore] returns. *)
