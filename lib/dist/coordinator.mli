(** Fork-server coordinator: multi-process distribution of the
    exploration frontier with crash-tolerant work accounting and merged
    telemetry.  See {!explore}. *)

module Executor = S2e_core.Executor
module State = S2e_core.State
module Solver = S2e_solver.Solver
module Obs = S2e_obs

(** How to start a worker process. *)
type spawn =
  | Fork of { jobs : int; slice : float; make_engine : unit -> Executor.t }
      (** [Unix.fork] and run {!Worker.serve} in the child.  Only safe
          while no OCaml domain has been spawned in this process. *)
  | Exec of { argv : string array }
      (** Spawn [argv] (typically [s2e_cli worker ...]); the worker end
          of the socketpair is passed via the [S2E_DIST_FD] environment
          variable. *)

(** Scheduling events, exposed for logging and fault-injection tests. *)
type event =
  | Spawned of { pid : int; slot : int }
  | Dispatched of { pid : int; item : int }
  | Completed of { pid : int; item : int; paths : int }
  | Checkpointed of { pid : int; item : int; states : int }
  | Crashed of { pid : int; requeued : bool }
  | Respawned of { pid : int; slot : int }

type result = {
  procs : int;
  paths : Proto.path list;
      (** every terminated path, with its test case when [cases] was set *)
  stats : Executor.stats;  (** merged over workers + the local boot *)
  solver_stats : Solver.stats;
  obs : Obs.Metrics.snapshot;  (** merged worker registries + local *)
  steals : int;  (** checkpoints triggered by steal requests *)
  requeues : int;  (** in-flight items recovered from dead workers *)
  restarts : int;  (** worker processes respawned *)
  abandoned : (int * int) list;
      (** items given up after [max_item_attempts] worker deaths each:
          (item id, attempts).  Non-empty means exploration lost work —
          callers should report it and exit distinctly. *)
  naks : int;
      (** damaged/out-of-order frames NAKed (both directions, merged
          from the telemetry snapshots) *)
  retransmits : int;  (** frames re-sent on NAK, both directions *)
  injected : int;
      (** transport corruptions injected by the [proto.corrupt] fault
          plan, both directions *)
  unexplored : int;
      (** frontier states left when the run stopped, including one per
          abandoned item *)
  wall_seconds : float;
  trace : Obs.Trace.event list;
      (** merged event timeline (empty unless {!Obs.Trace} was enabled):
          worker trace chunks shipped over heartbeats and [Bye] frames,
          clock-offset normalized onto the coordinator's timeline and
          stamped with the worker's pid, interleaved with the
          coordinator's own events, sorted by timestamp *)
  trace_dropped : int;  (** trace-ring overwrites across all processes *)
}

val explore :
  ?procs:int ->
  ?limits:Executor.run_limits ->
  ?max_restarts:int ->
  ?max_item_attempts:int ->
  ?heartbeat_timeout:float ->
  ?cases:bool ->
  ?handle_sigint:bool ->
  ?on_event:(event -> unit) ->
  spawn:spawn ->
  make_engine:(unit -> Executor.t) ->
  boot:(Executor.t -> State.t) ->
  unit ->
  result
(** [explore ~spawn ~make_engine ~boot ()] boots the initial state on a
    local engine, spawns [procs] worker processes (default 2), and
    drives the distributed frontier to exhaustion or until [limits] is
    hit.

    Work items (serialized fork-point states) are dispatched one per
    worker; when the queue runs dry the busiest worker is asked to
    [Steal]-checkpoint its frontier, which re-enters the queue.  A
    worker that dies or goes silent past [heartbeat_timeout] seconds
    (default 10) has its in-flight item requeued (at most
    [max_item_attempts] attempts per item, default 3) and is respawned
    with backoff (at most [max_restarts] times, default 8).  With
    [cases] workers additionally solve the canonical test case of every
    terminated path (one cold solver query per path, amortized across
    slices); otherwise [p_case] fields come back empty.  When
    [handle_sigint] is set, Ctrl-C triggers a graceful drain: busy
    workers checkpoint, and the returned [unexplored] counts what was
    left.  [on_event] observes scheduling decisions (used by the
    fault-injection tests).

    The result merges every worker's paths, executor and solver stats,
    and metrics-registry snapshot with the coordinator's own. *)
