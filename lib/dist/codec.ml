(** Versioned binary snapshot codec for fork-point execution states.

    Distribution ships {!S2e_core.State.t} values between processes, so a
    snapshot must capture everything a path owns privately: the register
    file, the copy-on-write symbolic-memory overlay (the base image is
    NOT shipped — both sides load the same guest, and the snapshot pins
    its length and checksum so a mismatch is a hard error), the path
    constraint set, cloned device state, and the interrupt/metadata
    fields plugins read.

    Expressions are serialized structurally and rebuilt with the {e raw}
    constructors, never the smart constructors: re-simplifying on decode
    could change expression identity, and the determinism argument for
    distributed = serial path sets requires every per-path solver
    decision to see exactly the constraint set the fork point had.
    Variable and state ids are preserved verbatim; the decoder bumps the
    local fresh-id counters past every id it saw, so ids minted later in
    the worker can never collide with shipped ones.

    The format is dependency-free and strict: a 4-byte magic, a version
    byte, a compression flag, the (possibly byte-run-compressed)
    payload, and a trailing FNV-1a checksum of the stored body.  Any
    truncation, corruption, unknown tag, malformed width or trailing
    garbage raises {!Error} — a torn snapshot must never become a
    subtly-wrong execution state.

    Version 4 adds two transports for the same payload: a cheap byte-run
    compressor applied to every full snapshot (falling back to the raw
    payload when it does not shrink), and a {e delta} container that
    ships a snapshot as copy/literal edit operations against a shared
    baseline snapshot negotiated at cluster join.  A delta never exceeds
    the full encoding (it falls back to carrying the full payload under
    a 4-byte delta header that replaces the 4-byte magic), and decoding
    re-seals the reconstructed payload deterministically, so
    [decode_delta ~baseline (encode_delta ~baseline blob)] is
    byte-identical to [blob]. *)

open S2e_expr
module Vm = S2e_vm
module Obs = S2e_obs
open S2e_core

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let version = 4
let magic = "S2EC"

(* Delta container magic: 3 bytes + 1 mode byte ('D' = real delta,
   'F' = full-payload fallback), so the fallback header is exactly as
   long as the full snapshot's magic and the size bound holds by
   construction.  Distinct from [magic], so blobs self-describe. *)
let delta_magic = "S2D"

(* ------------------------------------------------------------------ *)
(* Checksum                                                            *)
(* ------------------------------------------------------------------ *)

(* 32-bit FNV-1a. *)
let fnv32_gen get len =
  let h = ref 0x811c9dc5 in
  for i = 0 to len - 1 do
    h := (!h lxor get i) * 0x01000193 land 0xFFFFFFFF
  done;
  !h

let fnv32_sub s pos len = fnv32_gen (fun i -> Char.code s.[pos + i]) len
let fnv32 s = fnv32_sub s 0 (String.length s)
let fnv32_bytes b = fnv32_gen (fun i -> Char.code (Bytes.get b i)) (Bytes.length b)

(* The 1 MiB base image checksum is memoized per physical image: every
   state of a run shares one base, so it is computed once per process. *)
let base_sum_cache = ref (Bytes.create 0, 0)

let base_checksum b =
  let cached_b, cached = !base_sum_cache in
  if cached_b == b then cached
  else begin
    let c = fnv32_bytes b in
    base_sum_cache := (b, c);
    c
  end

(* ------------------------------------------------------------------ *)
(* Wire primitives                                                     *)
(* ------------------------------------------------------------------ *)

module Wire = struct
  type w = Buffer.t

  let create () = Buffer.create 256
  let contents = Buffer.contents
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u32 b v =
    if v < 0 || v > 0xFFFFFFFF then error "Wire.u32: value out of range";
    u8 b v;
    u8 b (v lsr 8);
    u8 b (v lsr 16);
    u8 b (v lsr 24)

  let i64 b v =
    for i = 0 to 7 do
      u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)))
    done

  let f64 b v = i64 b (Int64.bits_of_float v)
  let bool b v = u8 b (if v then 1 else 0)

  let raw b s = Buffer.add_string b s

  let str b s =
    u32 b (String.length s);
    raw b s

  let list b f xs =
    u32 b (List.length xs);
    List.iter f xs

  type r = { buf : string; mutable pos : int }

  let reader ?(pos = 0) buf = { buf; pos }
  let pos r = r.pos

  let need r n =
    if r.pos + n > String.length r.buf then error "truncated buffer"

  let ru8 r =
    need r 1;
    let v = Char.code r.buf.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let ru32 r =
    need r 4;
    let v =
      Char.code r.buf.[r.pos]
      lor (Char.code r.buf.[r.pos + 1] lsl 8)
      lor (Char.code r.buf.[r.pos + 2] lsl 16)
      lor (Char.code r.buf.[r.pos + 3] lsl 24)
    in
    r.pos <- r.pos + 4;
    v

  let ri64 r =
    need r 8;
    let v = ref 0L in
    for i = 7 downto 0 do
      v :=
        Int64.logor
          (Int64.shift_left !v 8)
          (Int64.of_int (Char.code r.buf.[r.pos + i]))
    done;
    r.pos <- r.pos + 8;
    !v

  let rf64 r = Int64.float_of_bits (ri64 r)
  let rbool r = ru8 r <> 0

  let rstr r =
    let n = ru32 r in
    need r n;
    let s = String.sub r.buf r.pos n in
    r.pos <- r.pos + n;
    s

  (* Explicitly left-to-right: the reader is stateful, so element order
     must not depend on [List.init]'s evaluation order. *)
  let read_n r n f =
    let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (f r :: acc) in
    go n []

  let rlist r f =
    let n = ru32 r in
    (* every element occupies at least one byte *)
    if n > String.length r.buf - r.pos then error "list length out of range";
    read_n r n f
end

open Wire

(* ------------------------------------------------------------------ *)
(* Byte-run compression                                                *)
(* ------------------------------------------------------------------ *)

(* Snapshots are dominated by repeated structure: zeroed register
   encodings, runs of identical constant bytes in overlays and device
   arrays.  A byte-run (RLE) scheme captures most of that for one pass
   and no tables: control byte [c < 0x80] introduces a literal run of
   [c + 1] bytes; [c >= 0x80] repeats the following byte [c - 0x80 + 3]
   times (runs shorter than 3 cost more encoded than literal). *)

let max_literal = 128 (* control 0x00..0x7F *)
let max_run = 130 (* control 0x80..0xFF, length 3..130 *)

let compress s =
  let n = String.length s in
  let b = Buffer.create ((n / 2) + 16) in
  let lit_start = ref 0 in
  (* Emit the pending literal bytes [lit_start, upto). *)
  let flush_lit upto =
    let i = ref !lit_start in
    while !i < upto do
      let len = min max_literal (upto - !i) in
      Buffer.add_char b (Char.chr (len - 1));
      Buffer.add_substring b s !i len;
      i := !i + len
    done;
    lit_start := upto
  in
  let i = ref 0 in
  while !i < n do
    let j = ref (!i + 1) in
    while !j < n && s.[!j] = s.[!i] do incr j done;
    let run = !j - !i in
    if run >= 3 then begin
      flush_lit !i;
      let remaining = ref run in
      while !remaining >= 3 do
        let take = min max_run !remaining in
        Buffer.add_char b (Char.chr (0x80 + take - 3));
        Buffer.add_char b s.[!i];
        remaining := !remaining - take
      done;
      (* A 1-2 byte tail of a capped run re-enters as pending literal. *)
      lit_start := !j - !remaining
    end;
    i := !j
  done;
  flush_lit n;
  Buffer.contents b

let decompress ~expect s =
  let n = String.length s in
  let b = Buffer.create expect in
  let i = ref 0 in
  while !i < n do
    let c = Char.code s.[!i] in
    incr i;
    if c < 0x80 then begin
      let len = c + 1 in
      if !i + len > n then error "compressed literal overruns input";
      Buffer.add_substring b s !i len;
      i := !i + len
    end
    else begin
      if !i >= n then error "compressed run overruns input";
      Buffer.add_string b (String.make (c - 0x80 + 3) s.[!i]);
      incr i
    end;
    if Buffer.length b > expect then error "decompressed output too long"
  done;
  if Buffer.length b <> expect then error "decompressed length mismatch";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let unop_tag = function Expr.Neg -> 0 | Expr.Bnot -> 1

let unop_of = function
  | 0 -> Expr.Neg
  | 1 -> Expr.Bnot
  | t -> error "unknown unop tag %d" t

let binop_tag : Expr.binop -> int = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Udiv -> 3 | Urem -> 4 | And -> 5
  | Or -> 6 | Xor -> 7 | Shl -> 8 | Lshr -> 9 | Ashr -> 10

let binop_of : int -> Expr.binop = function
  | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> Udiv | 4 -> Urem | 5 -> And
  | 6 -> Or | 7 -> Xor | 8 -> Shl | 9 -> Lshr | 10 -> Ashr
  | t -> error "unknown binop tag %d" t

let cmp_tag : Expr.cmpop -> int = function
  | Eq -> 0 | Ult -> 1 | Ule -> 2 | Slt -> 3 | Sle -> 4

let cmp_of : int -> Expr.cmpop = function
  | 0 -> Eq | 1 -> Ult | 2 -> Ule | 3 -> Slt | 4 -> Sle
  | t -> error "unknown cmpop tag %d" t

let rec encode_expr_into b (e : Expr.t) =
  match e with
  | Const { value; width; _ } ->
      u8 b 0;
      u8 b width;
      i64 b value
  | Var { id; name; width; _ } ->
      u8 b 1;
      u32 b id;
      u8 b width;
      str b name
  | Unop { op; arg; _ } ->
      u8 b 2;
      u8 b (unop_tag op);
      encode_expr_into b arg
  | Binop { op; lhs; rhs; _ } ->
      u8 b 3;
      u8 b (binop_tag op);
      encode_expr_into b lhs;
      encode_expr_into b rhs
  | Cmp { op; lhs; rhs; _ } ->
      u8 b 4;
      u8 b (cmp_tag op);
      encode_expr_into b lhs;
      encode_expr_into b rhs
  | Ite { cond; then_; else_; _ } ->
      u8 b 5;
      encode_expr_into b cond;
      encode_expr_into b then_;
      encode_expr_into b else_
  | Extract { hi; lo; arg; _ } ->
      u8 b 6;
      u8 b hi;
      u8 b lo;
      encode_expr_into b arg
  | Concat { high; low; _ } ->
      u8 b 7;
      encode_expr_into b high;
      encode_expr_into b low
  | Zext { arg; width; _ } ->
      u8 b 8;
      u8 b width;
      encode_expr_into b arg
  | Sext { arg; width; _ } ->
      u8 b 9;
      u8 b width;
      encode_expr_into b arg

(* Rebuilds via [Expr.Raw] — structure-preserving (no re-simplification,
   so a decoded state carries exactly the constraint structure the fork
   point had) but interning, so decoded expressions join the receiving
   domain's hash-cons table and get the physical-equality fast path.
   Widths not stored on the wire are derived from subexpressions, and
   structural invariants (operand width agreement, extract ranges,
   extension monotonicity) are checked strictly before the constructors'
   own assertions can trip.  [max_var] accumulates the largest variable
   id. *)
let rec decode_expr_from r max_var : Expr.t =
  let rwidth () =
    let w = ru8 r in
    if w < 1 || w > 64 then error "bad expression width %d" w;
    w
  in
  match ru8 r with
  | 0 ->
      let width = rwidth () in
      let value = ri64 r in
      Expr.Raw.const ~width value
  | 1 ->
      let id = ru32 r in
      let width = rwidth () in
      let name = rstr r in
      if id > !max_var then max_var := id;
      Expr.Raw.var ~id ~name ~width
  | 2 ->
      let op = unop_of (ru8 r) in
      let arg = decode_expr_from r max_var in
      Expr.Raw.unop op arg
  | 3 ->
      let op = binop_of (ru8 r) in
      let lhs = decode_expr_from r max_var in
      let rhs = decode_expr_from r max_var in
      if Expr.width lhs <> Expr.width rhs then error "binop width mismatch";
      Expr.Raw.binop op lhs rhs
  | 4 ->
      let op = cmp_of (ru8 r) in
      let lhs = decode_expr_from r max_var in
      let rhs = decode_expr_from r max_var in
      if Expr.width lhs <> Expr.width rhs then error "cmp width mismatch";
      Expr.Raw.cmp op lhs rhs
  | 5 ->
      let cond = decode_expr_from r max_var in
      let then_ = decode_expr_from r max_var in
      let else_ = decode_expr_from r max_var in
      if Expr.width cond <> 1 then error "ite condition width %d" (Expr.width cond);
      if Expr.width then_ <> Expr.width else_ then error "ite arm width mismatch";
      Expr.Raw.ite cond then_ else_
  | 6 ->
      let hi = ru8 r in
      let lo = ru8 r in
      let arg = decode_expr_from r max_var in
      if hi < lo || hi >= Expr.width arg then
        error "bad extract [%d:%d] of width %d" hi lo (Expr.width arg);
      Expr.Raw.extract ~hi ~lo arg
  | 7 ->
      let high = decode_expr_from r max_var in
      let low = decode_expr_from r max_var in
      if Expr.width high + Expr.width low > 64 then error "concat too wide";
      Expr.Raw.concat ~high ~low
  | 8 ->
      let width = rwidth () in
      let arg = decode_expr_from r max_var in
      if width < Expr.width arg then error "zext narrows";
      Expr.Raw.zext ~width arg
  | 9 ->
      let width = rwidth () in
      let arg = decode_expr_from r max_var in
      if width < Expr.width arg then error "sext narrows";
      Expr.Raw.sext ~width arg
  | t -> error "unknown expression tag %d" t

let encode_expr e =
  let b = create () in
  encode_expr_into b e;
  contents b

let decode_expr s =
  let r = reader s in
  let max_var = ref 0 in
  let e = decode_expr_from r max_var in
  if pos r <> String.length s then error "trailing bytes after expression";
  Expr.bump_var_counter !max_var;
  e

(* ------------------------------------------------------------------ *)
(* Devices                                                             *)
(* ------------------------------------------------------------------ *)

let encode_frame b f =
  u32 b (Array.length f);
  Array.iter (fun x -> i64 b (Int64.of_int x)) f

let decode_frame r =
  let n = ru32 r in
  if n > (String.length r.buf - r.pos) / 8 then error "frame length out of range";
  Array.of_list (read_n r n (fun r -> Int64.to_int (ri64 r)))

let encode_devices b (d : Vm.Devices.t) =
  str b d.console.out;
  bool b d.timer.enabled;
  u32 b d.timer.interval;
  i64 b (Int64.of_int d.timer.countdown);
  u32 b d.timer.fired;
  let nd = d.netdev in
  u32 b nd.card_id;
  bool b nd.link_up;
  bool b nd.rx_enabled;
  u32 b nd.irq_mask;
  list b (encode_frame b) nd.rx_queue;
  u32 b nd.rx_pos;
  list b (fun x -> i64 b (Int64.of_int x)) nd.tx_buf;
  list b (encode_frame b) nd.tx_frames;
  i64 b (Int64.of_int nd.dma_addr);
  i64 b (Int64.of_int nd.dma_len);
  u32 b nd.mac_pos;
  bool b nd.irq_pending

let decode_devices r : Vm.Devices.t =
  let console = { Vm.Console.out = rstr r } in
  let enabled = rbool r in
  let interval = ru32 r in
  let countdown = Int64.to_int (ri64 r) in
  let fired = ru32 r in
  let timer = { Vm.Timer.enabled; interval; countdown; fired } in
  let card_id = ru32 r in
  let netdev = Vm.Netdev.create ~card_id () in
  netdev.link_up <- rbool r;
  netdev.rx_enabled <- rbool r;
  netdev.irq_mask <- ru32 r;
  netdev.rx_queue <- rlist r decode_frame;
  netdev.rx_pos <- ru32 r;
  netdev.tx_buf <- rlist r (fun r -> Int64.to_int (ri64 r));
  netdev.tx_frames <- rlist r decode_frame;
  netdev.dma_addr <- Int64.to_int (ri64 r);
  netdev.dma_len <- Int64.to_int (ri64 r);
  netdev.mac_pos <- ru32 r;
  netdev.irq_pending <- rbool r;
  { Vm.Devices.console; timer; netdev }

(* ------------------------------------------------------------------ *)
(* States                                                              *)
(* ------------------------------------------------------------------ *)

let status_tag : State.status -> int = function
  | Active -> 0
  | Halted -> 1
  | Killed _ -> 2
  | Faulted _ -> 3
  | Aborted _ -> 4

let encode_status b (st : State.status) =
  u8 b (status_tag st);
  match st with
  | Active | Halted -> ()
  | Killed m | Faulted m | Aborted m -> str b m

let decode_status r : State.status =
  match ru8 r with
  | 0 -> Active
  | 1 -> Halted
  | 2 -> Killed (rstr r)
  | 3 -> Faulted (rstr r)
  | 4 -> Aborted (rstr r)
  | t -> error "unknown status tag %d" t

(* Case trees travel with a state so a remote worker can still expand a
   merged state's test cases into the exact enumerated set.  Rendezvous
   records do NOT travel: their ids are engine-local (the sending engine
   quiesces before snapshotting). *)
let rec encode_cases b (c : State.case_tree) =
  match c with
  | State.Case_leaf -> u8 b 0
  | State.Case_split { disj; base_len; a_suffix; b_suffix; a_tree; b_tree } ->
      u8 b 1;
      encode_expr_into b disj;
      u32 b base_len;
      list b (encode_expr_into b) a_suffix;
      list b (encode_expr_into b) b_suffix;
      encode_cases b a_tree;
      encode_cases b b_tree

let rec decode_cases r max_var : State.case_tree =
  match ru8 r with
  | 0 -> State.Case_leaf
  | 1 ->
      let disj = decode_expr_from r max_var in
      let base_len = ru32 r in
      let a_suffix = rlist r (fun r -> decode_expr_from r max_var) in
      let b_suffix = rlist r (fun r -> decode_expr_from r max_var) in
      let a_tree = decode_cases r max_var in
      let b_tree = decode_cases r max_var in
      State.Case_split { disj; base_len; a_suffix; b_suffix; a_tree; b_tree }
  | t -> error "unknown case-tree tag %d" t

(* ------------------------------------------------------------------ *)
(* Snapshot container                                                  *)
(* ------------------------------------------------------------------ *)

(* Wrap a raw snapshot payload into the self-describing v4 container:
   [magic | version | flag | u32 payload-length | body | u32
   FNV-1a(body)] where [flag] is ['C'] (body = compressed payload) or
   ['R'] (body = payload verbatim, when compression did not shrink it).
   Deterministic — delta reconstruction re-seals and must reproduce the
   original blob byte for byte. *)
let seal payload =
  let comp = compress payload in
  let flag, body =
    if String.length comp < String.length payload then ('C', comp)
    else ('R', payload)
  in
  let out = Buffer.create (String.length body + 16) in
  Buffer.add_string out magic;
  Buffer.add_char out (Char.chr version);
  Buffer.add_char out flag;
  let w = create () in
  u32 w (String.length payload);
  raw w body;
  u32 w (fnv32 body);
  Buffer.add_string out (contents w);
  Buffer.contents out

(* Inverse of {!seal}: verify and return the raw payload. *)
let unseal buf =
  let len = String.length buf in
  let hdr = String.length magic + 2 + 4 in
  if len < hdr + 4 then error "snapshot truncated";
  if String.sub buf 0 (String.length magic) <> magic then
    error "bad snapshot magic";
  let ver = Char.code buf.[String.length magic] in
  if ver <> version then error "unsupported snapshot version %d" ver;
  let flag = buf.[String.length magic + 1] in
  let payload_len = ru32 (reader ~pos:(String.length magic + 2) buf) in
  let body_len = len - hdr - 4 in
  let expect = ru32 (reader ~pos:(len - 4) buf) in
  if expect <> fnv32_sub buf hdr body_len then
    error "snapshot checksum mismatch";
  let body = String.sub buf hdr body_len in
  match flag with
  | 'C' -> decompress ~expect:payload_len body
  | 'R' ->
      if body_len <> payload_len then error "snapshot length mismatch";
      body
  | c -> error "unknown snapshot compression flag %C" c

let encode_state (s : State.t) =
  let b = create () in
  (* Base-image fingerprint: length + checksum, verified on decode. *)
  let base = Symmem.base s.mem in
  u32 b (Bytes.length base);
  u32 b (base_checksum base);
  u32 b s.id;
  u32 b s.parent;
  u32 b s.pc;
  u32 b s.depth;
  encode_status b s.status;
  bool b s.multipath;
  bool b s.incomplete;
  bool b s.irq_enabled;
  bool b s.in_irq;
  bool b s.irqs_suppressed;
  u32 b s.iepc;
  u32 b s.sepc;
  u32 b s.last_irq;
  list b (fun irq -> u32 b irq) s.pending_irqs;
  list b
    (fun (f : State.env_frame) ->
      u32 b f.callee;
      u32 b f.return_addr;
      bool b f.via_syscall)
    s.env_frames;
  i64 b s.virtual_time;
  i64 b (Int64.of_int s.instret);
  i64 b (Int64.of_int s.sym_instret);
  u32 b s.soft_constraints;
  u32 b (Array.length s.regs);
  Array.iter (encode_expr_into b) s.regs;
  u32 b (Symmem.overlay_size s.mem);
  Symmem.fold_overlay
    (fun addr e () ->
      u32 b addr;
      encode_expr_into b e)
    s.mem ();
  list b (encode_expr_into b) s.constraints;
  list b (fun ra -> u32 b ra) s.ret_stack;
  encode_cases b s.cases;
  encode_devices b s.devices;
  seal (contents b)

let decode_state ~base buf =
  let payload = unseal buf in
  let payload_end = String.length payload in
  let r = reader payload in
  let max_var = ref 0 in
  let blen = ru32 r in
  let bcrc = ru32 r in
  if blen <> Bytes.length base || bcrc <> base_checksum base then
    error "base image mismatch (peer loaded a different guest)";
  let id = ru32 r in
  let parent = ru32 r in
  let pc = ru32 r in
  let depth = ru32 r in
  let status = decode_status r in
  let multipath = rbool r in
  let incomplete = rbool r in
  let irq_enabled = rbool r in
  let in_irq = rbool r in
  let irqs_suppressed = rbool r in
  let iepc = ru32 r in
  let sepc = ru32 r in
  let last_irq = ru32 r in
  let pending_irqs = rlist r ru32 in
  let env_frames =
    rlist r (fun r ->
        let callee = ru32 r in
        let return_addr = ru32 r in
        let via_syscall = rbool r in
        { State.callee; return_addr; via_syscall })
  in
  let virtual_time = ri64 r in
  let instret = Int64.to_int (ri64 r) in
  let sym_instret = Int64.to_int (ri64 r) in
  let soft_constraints = ru32 r in
  let nregs = ru32 r in
  if nregs > payload_end - pos r then error "register count out of range";
  let regs =
    Array.of_list (read_n r nregs (fun r -> decode_expr_from r max_var))
  in
  let noverlay = ru32 r in
  if noverlay > payload_end - pos r then error "overlay count out of range";
  let overlay =
    read_n r noverlay (fun r ->
        let addr = ru32 r in
        let e = decode_expr_from r max_var in
        if Expr.width e <> 8 then error "overlay entry is not a byte";
        (addr, e))
  in
  let constraints = rlist r (fun r -> decode_expr_from r max_var) in
  let ret_stack = rlist r ru32 in
  let cases = decode_cases r max_var in
  let devices = decode_devices r in
  if pos r <> payload_end then error "trailing bytes after snapshot";
  let mem = Symmem.of_overlay ~base overlay in
  (* Never mint a fresh id that collides with a shipped one. *)
  Expr.bump_var_counter !max_var;
  State.bump_id_counter (max id parent);
  {
    State.id;
    parent;
    pc;
    regs;
    mem;
    constraints;
    soft_constraints;
    devices;
    irq_enabled;
    in_irq;
    iepc;
    sepc;
    last_irq;
    pending_irqs;
    irqs_suppressed;
    status;
    multipath;
    incomplete;
    instret;
    sym_instret;
    depth;
    virtual_time;
    env_frames;
    ret_stack;
    rendezvous = [];
    cases;
  }

(* ------------------------------------------------------------------ *)
(* Delta encoding against a shared baseline                            *)
(* ------------------------------------------------------------------ *)

(* Cluster transport ships snapshots as edits against a baseline blob
   (the root snapshot, handed to every worker at join).  Sibling states
   of one run share almost all of their payload with the root — the
   register file layout, most of the overlay, the constraint prefix —
   so copy ops against the baseline plus compressed literals cut the
   bytes on the wire by an order of magnitude on typical frontiers.

   The diff runs over the *decompressed* payloads (compression would
   destroy the byte alignment the block match needs), greedy: index the
   baseline by 16-byte blocks at 16-byte stride, scan the target, and
   extend every block hit forward as far as the bytes agree.

   Wire format, mode 'D':
     ["S2D" | 'D' | u32 FNV-1a(baseline payload) | u32 target payload
      length | u32 ops length | compress(ops) | u32 FNV-1a(compressed
      ops)]
   where ops is a sequence of [u8 0 | u32 len | bytes] literal and
   [u8 1 | u32 off | u32 len] copy operations.  Mode 'F' carries the
   full blob minus its 4-byte magic and is chosen whenever mode 'D'
   would not be strictly smaller, so a delta NEVER exceeds the full
   snapshot encoding. *)

let delta_block = 16

let m_delta_full = Obs.Metrics.counter "codec.delta_full_bytes"
let m_delta_out = Obs.Metrics.counter "codec.delta_bytes"

let delta_index base =
  let n = String.length base in
  let idx = Hashtbl.create ((n / delta_block) + 1) in
  let i = ref 0 in
  while !i + delta_block <= n do
    let key = String.sub base !i delta_block in
    if not (Hashtbl.mem idx key) then Hashtbl.add idx key !i;
    i := !i + delta_block
  done;
  idx

let delta_ops ~base target =
  let n = String.length target in
  let idx = delta_index base in
  let ops = create () in
  let lit_start = ref 0 in
  let flush upto =
    if upto > !lit_start then begin
      u8 ops 0;
      u32 ops (upto - !lit_start);
      raw ops (String.sub target !lit_start (upto - !lit_start))
    end;
    lit_start := upto
  in
  let i = ref 0 in
  while !i + delta_block <= n do
    match Hashtbl.find_opt idx (String.sub target !i delta_block) with
    | None -> incr i
    | Some off ->
        let m = ref delta_block in
        while
          off + !m < String.length base
          && !i + !m < n
          && base.[off + !m] = target.[!i + !m]
        do
          incr m
        done;
        flush !i;
        u8 ops 1;
        u32 ops off;
        u32 ops !m;
        i := !i + !m;
        lit_start := !i
  done;
  flush n;
  contents ops

let delta_apply ~base ops ~target_len =
  let b = Buffer.create target_len in
  let n = String.length ops in
  let r = reader ops in
  while pos r < n do
    match ru8 r with
    | 0 ->
        let len = ru32 r in
        need r len;
        Buffer.add_substring b ops (pos r) len;
        r.pos <- r.pos + len
    | 1 ->
        let off = ru32 r in
        let len = ru32 r in
        if off + len > String.length base then
          error "delta copy outside baseline";
        Buffer.add_substring b base off len
    | t -> error "unknown delta op %d" t
  done;
  if Buffer.length b <> target_len then error "delta target length mismatch";
  Buffer.contents b

let is_delta blob =
  String.length blob >= 4 && String.sub blob 0 3 = delta_magic

let encode_delta ~baseline blob =
  let bp = unseal baseline in
  let tp = unseal blob in
  let ops = delta_ops ~base:bp tp in
  let cops = compress ops in
  let w = create () in
  raw w delta_magic;
  u8 w (Char.code 'D');
  u32 w (fnv32 bp);
  u32 w (String.length tp);
  u32 w (String.length ops);
  raw w cops;
  u32 w (fnv32 cops);
  let cand = contents w in
  let out =
    if String.length cand < String.length blob then cand
    else
      (* Fallback header is exactly as long as the magic it replaces. *)
      delta_magic ^ "F"
      ^ String.sub blob (String.length magic)
          (String.length blob - String.length magic)
  in
  Obs.Metrics.add m_delta_full (String.length blob);
  Obs.Metrics.add m_delta_out (String.length out);
  out

let decode_delta ~baseline blob =
  if not (is_delta blob) then error "not a delta snapshot";
  match blob.[3] with
  | 'F' -> magic ^ String.sub blob 4 (String.length blob - 4)
  | 'D' ->
      let len = String.length blob in
      if len < 4 + 12 + 4 then error "delta truncated";
      let r = reader ~pos:4 blob in
      let base_digest = ru32 r in
      let target_len = ru32 r in
      let ops_len = ru32 r in
      let cops_len = len - pos r - 4 in
      if cops_len < 0 then error "delta truncated";
      let cops = String.sub blob (pos r) cops_len in
      let expect = ru32 (reader ~pos:(len - 4) blob) in
      if expect <> fnv32 cops then error "delta checksum mismatch";
      let bp = unseal baseline in
      if base_digest <> fnv32 bp then
        error "delta baseline mismatch (peer negotiated a different baseline)";
      if target_len > max_int / 2 then error "delta target length out of range";
      let ops = decompress ~expect:ops_len cops in
      seal (delta_apply ~base:bp ops ~target_len)
  | c -> error "unknown delta mode %C" c
