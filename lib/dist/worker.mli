(** Worker-process side of distributed exploration: decode items, slice
    exploration through {!S2e_core.Parallel.explore_frontier}, service
    steal/shutdown/liveness between slices, and retire each item with
    one atomic [Result] or [Checkpoint]. *)

module Executor = S2e_core.Executor

val serve :
  ?jobs:int ->
  ?slice:float ->
  ?heartbeat:float ->
  fd:Unix.file_descr ->
  make_engine:(unit -> Executor.t) ->
  unit ->
  unit
(** [serve ~fd ~make_engine ()] runs the worker loop on coordinator
    socket [fd] until a [Shutdown] arrives or the coordinator hangs up.

    [jobs] is the domains-per-process fan-out each slice uses (default
    1); [slice] the wall-clock seconds per exploration slice between
    control polls (default 0.05); [heartbeat] the liveness interval in
    seconds (default 0.25).  [make_engine] must return a fully
    configured engine whose loaded base image matches the
    coordinator's — snapshots pin the image fingerprint and a mismatch
    is a decode error.  Resets the default metrics registry on entry so
    the final [Bye] snapshot covers exactly this worker's work; ignores
    SIGINT/SIGPIPE (the coordinator owns shutdown). *)
