(** Worker-process side of distributed exploration: decode items, slice
    exploration through {!S2e_core.Parallel.explore_frontier}, service
    steal/shutdown/liveness between slices, and retire each item with
    one atomic [Result] or [Checkpoint]. *)

module Executor = S2e_core.Executor
module State = S2e_core.State
module Solver = S2e_solver.Solver

val serve :
  ?jobs:int ->
  ?slice:float ->
  ?heartbeat:float ->
  fd:Unix.file_descr ->
  make_engine:(unit -> Executor.t) ->
  unit ->
  unit
(** [serve ~fd ~make_engine ()] runs the worker loop on coordinator
    socket [fd] until a [Shutdown] arrives or the coordinator hangs up.

    [jobs] is the domains-per-process fan-out each slice uses (default
    1); [slice] the wall-clock seconds per exploration slice between
    control polls (default 0.05); [heartbeat] the liveness interval in
    seconds (default 0.25).  [make_engine] must return a fully
    configured engine whose loaded base image matches the
    coordinator's — snapshots pin the image fingerprint and a mismatch
    is a decode error.  Resets the default metrics registry on entry so
    the final [Bye] snapshot covers exactly this worker's work; ignores
    SIGINT/SIGPIPE (the coordinator owns shutdown). *)

val serve_tcp :
  ?jobs:int ->
  ?slice:float ->
  ?heartbeat:float ->
  ?max_retries:int ->
  host:string ->
  port:int ->
  make_engine:(unit -> Executor.t) ->
  unit ->
  unit
(** [serve_tcp ~host ~port ~make_engine ()] joins (and keeps rejoining)
    a TCP coordinator started with [s2e_cli serve --listen].

    The worker dials with exponential backoff plus jitter (50ms
    doubling to a 2s ceiling, at most [max_retries] consecutive
    failures, default 10), sends [Hello] and waits for a [Welcome]
    carrying its session id + token, its lease, and the shared baseline
    snapshot.  Item blobs arriving as deltas are expanded against the
    baseline; checkpointed frontier states ship back as deltas.  The
    heartbeat interval is clamped to a quarter of the granted lease.

    On a connection loss mid-run the half-explored frontier is
    discarded (the coordinator requeues the item when the lease
    expires), and the worker reconnects with [Rejoin], re-presenting
    its session token — the engine and its warm caches survive the
    reconnect.  A [Deny] (bad token, capacity, draining coordinator) or
    an orderly [Shutdown] ends the worker. *)

(** {2 Shared helpers}

    Exposed for the coordinator's solo-degradation mode (exploring
    items on its own boot engine when every worker is gone) and for
    tests. *)

val paths_of_state :
  ?ctx:Solver.ctx -> cases:bool -> State.t -> Proto.path list
(** Reportable paths of a terminated state: one per case-tree leaf when
    [cases] is set (each model solved with one cold query; [ctx] batches
    the case-tree pruning queries of consecutive states onto one shared
    incremental instance ring), else a single status-only entry. *)

val copy_exec_stats : Executor.stats -> Executor.stats
val copy_solver_stats : Solver.stats -> Solver.stats

val exec_delta : prev:Executor.stats -> Executor.stats -> Executor.stats
(** Since-mark stats delta: counters subtract, watermarks pass through
    (the receiver merges watermarks with max). *)

val solver_delta : prev:Solver.stats -> Solver.stats -> Solver.stats
