(** Worker-process side of distributed exploration.

    A worker owns a private {!Executor} stack (engines, searcher,
    translation cache, solver contexts) and explores one {e item} — a
    serialized fork-point state — at a time.  Exploration is sliced:
    each slice runs for a short wall-clock budget, then the control
    socket is polled.  That keeps steal, shutdown and liveness latency
    bounded by the slice length without threading interrupts through the
    engine.

    With [jobs = 1] (the default) the worker drives one {e persistent}
    engine with {!Executor.run_loop} slices, so the translation-block
    cache and the solver context's query cache stay warm across slices
    and items — the distributed hot path matches the serial engine's.
    With [jobs > 1] each slice fans the frontier out across OCaml
    domains via {!S2e_core.Parallel.explore_frontier}.

    Protocol discipline (the crash-consistency contract of {!Proto}):
    terminated paths and stats deltas for an item leave this process
    only in the single [Result] or [Checkpoint] that retires the item,
    and a [Checkpoint] carries the {e entire} remaining frontier.  If
    the process dies before that message, the coordinator still holds
    the original item blob and loses nothing. *)

module Parallel = S2e_core.Parallel
module Executor = S2e_core.Executor
module Events = S2e_core.Events
module State = S2e_core.State
module Solver = S2e_solver.Solver
module Obs = S2e_obs
module Fault = S2e_fault.Fault

(* Shutdown acknowledged: unwind out of the serve loop. *)
exception Done

(* Solving the canonical test case costs a cold solver query per path,
   so it is done only when the coordinator asked for it ([cases] in the
   Work message) — and, crucially, incrementally between slices with
   heartbeats interleaved, never as one silent burst at retire time
   (which would trip the coordinator's liveness timeout on items with
   many terminated paths). *)
(* A merged state ([--merge]) stands for every enumerated path folded
   into it; when the coordinator asked for cases it gets one path per
   case-tree leaf, so merged and enumerated runs report comparable case
   sets. *)
let paths_of_state ?ctx ~cases (s : State.t) =
  let status = State.report_string s in
  if not cases then [ { Proto.p_status = status; p_case = [] } ]
  else
    match Parallel.test_cases ?ctx s with
    | [] -> [ { Proto.p_status = status; p_case = [] } ]
    | tcs -> List.map (fun tc -> { Proto.p_status = status; p_case = tc }) tcs

let copy_exec_stats s =
  let c = Executor.new_stats () in
  Executor.merge_stats ~into:c s;
  c

let copy_solver_stats s =
  let c = Solver.new_stats () in
  Solver.merge_stats ~into:c s;
  c

(* Since-mark deltas against a persistent engine's cumulative stats.
   Counters subtract; high-watermark fields report the current watermark
   (the coordinator merges them with max, so this stays an upper bound
   contributed by this worker). *)
let exec_delta ~prev (cur : Executor.stats) : Executor.stats =
  {
    Executor.states_created = cur.Executor.states_created - prev.Executor.states_created;
    states_completed = cur.states_completed - prev.states_completed;
    max_live_states = cur.max_live_states;
    forks = cur.forks - prev.forks;
    concrete_instret = cur.concrete_instret - prev.concrete_instret;
    sym_instret = cur.sym_instret - prev.sym_instret;
    footprint_watermark = cur.footprint_watermark;
    concretizations = cur.concretizations - prev.concretizations;
    aborts = cur.aborts - prev.aborts;
    degradations = cur.degradations - prev.degradations;
  }

let solver_delta ~prev (cur : Solver.stats) : Solver.stats =
  {
    Solver.queries = cur.Solver.queries - prev.Solver.queries;
    sat_queries = cur.sat_queries - prev.sat_queries;
    cache_hits = cur.cache_hits - prev.cache_hits;
    unknowns = cur.unknowns - prev.unknowns;
    total_time = cur.total_time -. prev.total_time;
    max_time = cur.max_time;
    prefix_reused = cur.prefix_reused - prev.prefix_reused;
    prefix_reused_time = cur.prefix_reused_time -. prev.prefix_reused_time;
    inc_hits = cur.inc_hits - prev.inc_hits;
    inc_partials = cur.inc_partials - prev.inc_partials;
    sat_learned = cur.sat_learned - prev.sat_learned;
    (* a live-pool gauge, not a monotone counter: report the current value *)
    sat_kept = cur.sat_kept;
  }

(* One item's exploration, sliced.  The control loop below is written
   once against this interface; the two implementations differ in how a
   slice runs. *)
type slicer = {
  sl_base : Bytes.t;  (* local base image, for decoding items *)
  sl_start : State.t -> unit;  (* begin an item at its decoded root *)
  sl_run : deadline:float -> unit;  (* advance exploration one slice *)
  sl_frontier : unit -> State.t list;  (* unexplored remainder *)
  sl_drop : unit -> unit;  (* discard the frontier (after a checkpoint) *)
  sl_drain : unit -> State.t list;
      (* states terminated since the last drain, oldest first *)
  sl_stats : unit -> Executor.stats * Solver.stats;  (* deltas this item *)
  sl_quiesce : unit -> unit;
      (* release merge-parked states and strip engine-local rendezvous
         ids before the frontier leaves this process *)
}

(* jobs = 1: one engine for the whole worker lifetime.  Items are adopted
   into its searcher; slices continue the same run loop, so caches stay
   warm and the engine behaves exactly like a serial run interrupted
   every [slice] seconds. *)
let serial_slicer ~slice ~make_engine () =
  let eng : Executor.t = make_engine () in
  eng.Executor.solver <- Solver.create_ctx ();
  let terminated = ref [] in
  Events.reg_state_end eng.Executor.events (fun s ->
      terminated := s :: !terminated);
  let prev_e = ref (copy_exec_stats eng.Executor.stats) in
  let prev_s = ref (copy_solver_stats eng.Executor.solver.Solver.ctx_stats) in
  {
    sl_base = eng.Executor.base_mem;
    sl_start =
      (fun s0 ->
        terminated := [];
        prev_e := copy_exec_stats eng.Executor.stats;
        prev_s := copy_solver_stats eng.Executor.solver.Solver.ctx_stats;
        Executor.adopt eng s0);
    sl_run =
      (fun ~deadline ->
        let now = Unix.gettimeofday () in
        let limits =
          {
            Executor.max_instructions = None;
            max_seconds = Some (Float.min slice (deadline -. now));
            max_completed = None;
          }
        in
        Executor.run_loop ~limits eng);
    sl_frontier = (fun () -> eng.Executor.live);
    sl_drop =
      (fun () -> List.iter (Executor.disown eng) eng.Executor.live);
    sl_drain =
      (fun () ->
        let pending = List.rev !terminated in
        terminated := [];
        pending);
    sl_stats =
      (fun () ->
        ( exec_delta ~prev:!prev_e eng.Executor.stats,
          solver_delta ~prev:!prev_s eng.Executor.solver.Solver.ctx_stats ));
    sl_quiesce = (fun () -> eng.Executor.quiesce ());
  }

(* jobs > 1: each slice fans the current frontier across domains with
   fresh engines (states are self-contained, adoption is O(1)). *)
let parallel_slicer ~jobs ~slice ~make_engine () =
  let base = (make_engine ()).Executor.base_mem in
  let frontier = ref [] in
  let terminated = ref [] in
  let stats = ref (Executor.new_stats ()) in
  let solver = ref (Solver.new_stats ()) in
  {
    sl_base = base;
    sl_start =
      (fun s0 ->
        frontier := [ s0 ];
        terminated := [];
        stats := Executor.new_stats ();
        solver := Solver.new_stats ());
    sl_run =
      (fun ~deadline ->
        let now = Unix.gettimeofday () in
        let limits =
          {
            Executor.max_instructions = None;
            max_seconds = Some (Float.min slice (deadline -. now));
            max_completed = None;
          }
        in
        let r = Parallel.explore_frontier ~jobs ~limits ~make_engine !frontier in
        terminated := List.rev_append r.Parallel.completed !terminated;
        Executor.merge_stats ~into:!stats r.Parallel.stats;
        Solver.merge_stats ~into:!solver r.Parallel.solver_stats;
        frontier := r.Parallel.frontier;
        (* The slice's engines die here; any rendezvous ids the frontier
           carries are theirs and must not leak into the next slice's
           fresh controllers, whose ids restart. *)
        List.iter (fun (s : State.t) -> s.State.rendezvous <- []) !frontier);
    sl_frontier = (fun () -> !frontier);
    sl_drop = (fun () -> frontier := []);
    sl_drain =
      (fun () ->
        let pending = List.rev !terminated in
        terminated := [];
        pending);
    sl_stats = (fun () -> (!stats, !solver));
    sl_quiesce =
      (fun () ->
        List.iter (fun (s : State.t) -> s.State.rendezvous <- []) !frontier);
  }

(* One connected session against the coordinator: the idle/item control
   loop, written once for both transports.  [lease] is the liveness
   window granted in [Welcome] (TCP sessions; [None] on a socketpair,
   where the coordinator's timeout is not negotiated).  [unwrap]
   translates incoming item blobs (delta → full on TCP), [wrap]
   outgoing checkpoint blobs (full → delta).  Returns [`Shutdown] on an
   orderly drain and [`Lost] when the connection died — the TCP caller
   reconnects, the socketpair caller exits (its process is dead to the
   coordinator either way). *)
let run_session ~sl ~heartbeat ~lease ~unwrap ~wrap c =
  let pid = Unix.getpid () in
  (* A worker heartbeating exactly at the lease boundary flaps; keep at
     least four beats per lease. *)
  let heartbeat =
    match lease with
    | Some l when l > 0. -> Float.min heartbeat (l /. 4.)
    | _ -> heartbeat
  in
  (* How long a [proto.stall] freeze must last to overrun the lease. *)
  let stall_seconds =
    match lease with Some l when l > 0. -> 1.5 *. l | _ -> 4. *. heartbeat
  in
  let last_hb = ref (Unix.gettimeofday ()) in
  (* Trace chunks piggyback on the liveness traffic: each heartbeat (and
     the final Bye) carries whatever the rings buffered since the last
     send, so the coordinator can merge a live timeline.  With tracing
     off the chunk is the empty string — zero marginal bytes. *)
  let trace_chunk () =
    if Obs.Trace.enabled () then begin
      let events, dropped = Obs.Trace.drain () in
      if events = [] && dropped = 0 then ""
      else Obs.Trace.encode_chunk events ~dropped
    end
    else ""
  in
  let hb frontier =
    Proto.send c
      (Proto.Heartbeat
         { pid; frontier; now = Unix.gettimeofday (); trace = trace_chunk () });
    last_hb := Unix.gettimeofday ()
  in
  (* Every due heartbeat is a fault-injection point for the three
     liveness chaos kinds.  [proto.stall] freezes the whole process past
     the lease (the coordinator presumes death and requeues; our next
     send then finds the connection torn down or a requeued item —
     either way the recovery path runs for real).  [proto.disconnect]
     severs the socket abruptly, no goodbye: a TCP worker reconnects
     and rejoins, a socketpair worker dies and is respawned. *)
  let hb_probe frontier =
    if Fault.(fire Proto_stall) then begin
      Unix.sleepf stall_seconds;
      hb frontier
    end
    else if Fault.(fire Proto_disconnect) then begin
      (try Unix.shutdown c.Proto.fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ());
      raise Proto.Closed
    end
    else if Fault.(fire Proto_delay) then
      (* Fault plan: swallow this heartbeat and pretend it was sent —
         the coordinator's liveness timeout sees a silent worker. *)
      last_hb := Unix.gettimeofday ()
    else hb frontier
  in
  let maybe_hb frontier =
    if Unix.gettimeofday () -. !last_hb >= heartbeat then hb_probe frontier
  in
  let bye () =
    Proto.send c
      (Proto.Bye
         { obs = Obs.Metrics.snapshot (); now = Unix.gettimeofday ();
           trace = trace_chunk () })
  in
  (* One session-lifetime solver context for case conversion: every
     per-slice expansion between heartbeats lands on the same incremental
     instance ring, so merged states drained back-to-back reuse each
     other's encodings and learned clauses.  Safe to share across items —
     case verdicts and bytes are context-history-independent. *)
  let cases_ctx = Solver.create_ctx () in
  let run_item ~item ~budget ~cases blob =
    let deadline =
      if budget <= 0. then infinity else Unix.gettimeofday () +. budget
    in
    sl.sl_start (Codec.decode_state ~base:sl.sl_base (unwrap blob));
    let paths = ref [] in
    (* Convert newly terminated states to reportable paths.  With
       [cases] each conversion is a solver query, so keep heartbeating:
       the retire message itself then only has to send bytes. *)
    let drain () =
      match sl.sl_drain () with
      | [] -> ()
      | pending ->
          let frontier = List.length (sl.sl_frontier ()) in
          List.iter
            (fun s ->
              List.iter
                (fun p ->
                  paths := p :: !paths;
                  maybe_hb frontier)
                (paths_of_state ~ctx:cases_ctx ~cases s))
            pending
    in
    let checkpoint () =
      sl.sl_quiesce ();
      drain ();
      let stats, solver = sl.sl_stats () in
      Proto.send c
        (Proto.Checkpoint
           {
             item;
             paths = List.rev !paths;
             stats;
             solver;
             states =
               List.map
                 (fun s -> wrap (Codec.encode_state s))
                 (sl.sl_frontier ());
           });
      sl.sl_drop ()
    in
    let finished = ref false in
    while not !finished do
      (* Service control traffic between slices. *)
      (match Proto.recv_opt c ~timeout:0. with
      | Some Proto.Steal ->
          if List.length (sl.sl_frontier ()) >= 2 then begin
            checkpoint ();
            finished := true
          end
          else Proto.send c (Proto.Nak { item })
      | Some Proto.Shutdown ->
          checkpoint ();
          bye ();
          raise Done
      | Some Proto.Ping -> hb (List.length (sl.sl_frontier ()))
      | Some _ | None -> ());
      if not !finished then begin
        if sl.sl_frontier () = [] then begin
          drain ();
          let stats, solver = sl.sl_stats () in
          Proto.send c
            (Proto.Result { item; paths = List.rev !paths; stats; solver });
          finished := true
        end
        else if Unix.gettimeofday () >= deadline then begin
          (* Out of budget: return the unexplored remainder. *)
          checkpoint ();
          finished := true
        end
        else begin
          sl.sl_run ~deadline;
          drain ();
          maybe_hb (List.length (sl.sl_frontier ()))
        end
      end
    done
  in
  try
    let rec idle () =
      match Proto.recv_opt c ~timeout:heartbeat with
      | None ->
          hb_probe 0;
          idle ()
      | Some (Proto.Work { item; budget; cases; blob }) ->
          run_item ~item ~budget ~cases blob;
          idle ()
      | Some Proto.Shutdown -> bye ()
      | Some Proto.Ping ->
          hb 0;
          idle ()
      | Some _ ->
          (* e.g. a Steal that raced our Result: nothing to give; the
             coordinator clears its pending steal on our next message. *)
          idle ()
    in
    idle ();
    `Shutdown
  with
  | Done -> `Shutdown
  | Proto.Closed -> `Lost

let init_process () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* A terminal Ctrl-C hits the whole process group; workers must stay
     alive to checkpoint their frontier when the coordinator drains. *)
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  (* A fork-spawned worker inherits the parent's metric shards and trace
     rings; its report must cover only its own work. *)
  Obs.Metrics.reset ();
  Obs.Trace.reset ()

let make_slicer ~jobs ~slice ~make_engine () =
  if jobs = 1 then serial_slicer ~slice ~make_engine ()
  else parallel_slicer ~jobs ~slice ~make_engine ()

let serve ?(jobs = 1) ?(slice = 0.05) ?(heartbeat = 0.25) ~fd
    ~(make_engine : unit -> Executor.t) () =
  init_process ();
  let sl = make_slicer ~jobs ~slice ~make_engine () in
  let c = Proto.connect fd in
  match
    Proto.send c
      (Proto.Hello { version = Proto.version; pid = Unix.getpid (); jobs });
    run_session ~sl ~heartbeat ~lease:None ~unwrap:Fun.id ~wrap:Fun.id c
  with
  | `Shutdown | `Lost -> () (* coordinator drained or died; exit quietly *)
  | exception Proto.Closed -> () (* died before the session even started *)

(* ------------------------------------------------------------------ *)
(* TCP workers: dial, join, survive disconnects                        *)
(* ------------------------------------------------------------------ *)

(* Local splitmix64 for reconnect jitter — deliberately NOT the fault
   plan's seeded streams, which must stay reserved for injection
   decisions. *)
let jitter =
  let mix64 z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
    logxor z (shift_right_logical z 31)
  in
  let seq = ref 0 in
  fun () ->
    incr seq;
    let z =
      mix64
        (Int64.logxor
           (Int64.of_float (Unix.gettimeofday () *. 1e6))
           (Int64.of_int ((Unix.getpid () * 0x9e3779b9) + !seq)))
    in
    Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.

(* Exponential backoff, 50ms doubling to a 2s ceiling, with ±50% jitter
   so a herd of workers reconnecting to a restarted coordinator spreads
   out instead of dog-piling the accept queue. *)
let backoff attempt =
  let base = Float.min 2.0 (0.05 *. (2. ** float_of_int attempt)) in
  base *. (0.5 +. jitter ())

(* Send Hello (fresh) or Rejoin (returning) and wait for the verdict. *)
let handshake c ~session ~jobs =
  let pid = Unix.getpid () in
  (match !session with
  | None -> Proto.send c (Proto.Hello { version = Proto.version; pid; jobs })
  | Some (wid, token) -> Proto.send c (Proto.Rejoin { wid; token; pid; jobs }));
  let give_up = Unix.gettimeofday () +. 10. in
  let rec wait () =
    if Unix.gettimeofday () > give_up then `Lost
    else
      match Proto.recv_opt c ~timeout:0.25 with
      | Some (Proto.Welcome { wid; token; lease; baseline }) ->
          session := Some (wid, token);
          `Welcome (lease, baseline)
      | Some (Proto.Deny { reason }) -> `Denied reason
      | Some _ | None -> wait ()
  in
  try wait () with Proto.Closed | Codec.Error _ -> `Lost

let serve_tcp ?(jobs = 1) ?(slice = 0.05) ?(heartbeat = 0.25)
    ?(max_retries = 10) ~host ~port ~(make_engine : unit -> Executor.t) () =
  init_process ();
  (* One slicer for the whole worker lifetime: caches stay warm across
     reconnects, exactly as they do across items. *)
  let sl = make_slicer ~jobs ~slice ~make_engine () in
  let session = ref None in
  let attempt = ref 0 in
  let stop = ref false in
  let retry () =
    if !attempt >= max_retries then stop := true
    else begin
      incr attempt;
      Unix.sleepf (backoff !attempt)
    end
  in
  while not !stop do
    match Proto.dial ~host ~port with
    | exception _ -> retry ()
    | fd -> (
        let c = Proto.connect fd in
        let close () = try Unix.close fd with Unix.Unix_error _ -> () in
        match handshake c ~session ~jobs with
        | `Denied _reason ->
            (* Not transient (bad token, capacity, draining): exit. *)
            close ();
            stop := true
        | `Lost ->
            close ();
            retry ()
        | `Welcome (lease, baseline) -> (
            (* A successful admission resets the backoff ladder. *)
            attempt := 0;
            let unwrap blob =
              if Codec.is_delta blob then Codec.decode_delta ~baseline blob
              else blob
            in
            let wrap blob = Codec.encode_delta ~baseline blob in
            match
              run_session ~sl ~heartbeat ~lease:(Some lease) ~unwrap ~wrap c
            with
            | `Shutdown ->
                close ();
                stop := true
            | `Lost ->
                (* The coordinator presumed us dead and requeued our
                   item; discard the half-explored frontier before
                   rejoining so no path is double-counted. *)
                close ();
                sl.sl_quiesce ();
                ignore (sl.sl_drain ());
                sl.sl_drop ();
                retry ()
            | exception Codec.Error _ ->
                close ();
                stop := true))
  done
