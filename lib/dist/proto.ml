(** Length-prefixed socket message protocol between the coordinator and
    its worker processes.

    Every message travels in one frame: [u32 length | payload | u32
    checksum], with the payload's first byte a message tag.  A frame is
    written with a single [write] sequence and verified on receipt, so a
    worker dying mid-send surfaces as {!Closed} or a checksum
    {!Codec.Error} — never as a silently half-read message.

    Work accounting is crash-consistent by construction: a worker holds
    at most one in-flight {e item} (a serialized frontier), reports
    terminated paths only in the single [Result] or [Checkpoint] message
    that retires the item, and answers a [Steal] by checkpointing its
    {e entire} remaining frontier in one atomic message.  If the process
    dies at any point before that message, the coordinator requeues the
    original item blob and no path can be double-counted or lost. *)

module Solver = S2e_solver.Solver
module Obs = S2e_obs
module Executor = S2e_core.Executor
module Fault = S2e_fault.Fault
open Codec.Wire

exception Closed
(** Peer hung up (EOF/EPIPE/reset) — on a worker fd this means the
    process died or exited. *)

(* v5: solver stats carry incremental-reuse and learned-clause fields. *)
let version = 5

(** A terminated path, reduced to what the coordinator reports: the
    status string and the canonical test case. *)
type path = {
  p_status : string;
  p_case : (string * int64) list;
}

type msg =
  | Hello of { version : int; pid : int; jobs : int }
      (** worker → coordinator, once, immediately after spawn *)
  | Work of { item : int; budget : float; cases : bool; blob : string }
      (** coordinator → worker: explore this serialized state;
          [budget <= 0.] means unlimited.  [cases] asks for canonical
          test cases to be solved for each terminated path — off by
          default because it costs one cold solver query per path. *)
  | Steal  (** coordinator → worker: give back your surplus frontier *)
  | Ping  (** coordinator → worker: liveness probe *)
  | Shutdown  (** coordinator → worker: checkpoint, report and exit *)
  | Heartbeat of { pid : int; frontier : int; now : float; trace : string }
      (** worker → coordinator: alive, with current frontier size.  [now]
          is the worker's wall clock at send time (the coordinator derives
          a per-worker clock offset from it) and [trace] a drained
          {!Obs.Trace} chunk — [""] when tracing is off. *)
  | Nak of { item : int }
      (** worker → coordinator: steal declined (frontier too small) *)
  | Result of {
      item : int;
      paths : path list;
      stats : Executor.stats;
      solver : Solver.stats;
    }  (** worker → coordinator: item fully drained *)
  | Checkpoint of {
      item : int;
      paths : path list;
      stats : Executor.stats;
      solver : Solver.stats;
      states : string list;  (** serialized unexplored frontier *)
    }
      (** worker → coordinator: item retired early (steal, shutdown or
          budget); paths/stats cover work done so far, [states] is the
          whole remaining frontier *)
  | Bye of { obs : Obs.Metrics.snapshot; now : float; trace : string }
      (** worker → coordinator: final telemetry plus the last trace
          chunk, sent just before exit *)
  | Resend of { from : int }
      (** either direction: frames from sequence number [from] onwards
          were damaged or lost; retransmit them.  Control traffic — never
          delivered to the application, never fault-injected. *)
  | Welcome of { wid : int; token : string; lease : float; baseline : string }
      (** coordinator → worker: admission over TCP.  [wid]/[token]
          identify the session for later {!Rejoin}; [lease] is the
          liveness window in seconds (a worker silent past it is
          presumed dead and its item requeued); [baseline] the shared
          baseline snapshot blob for {!Codec.encode_delta}. *)
  | Rejoin of { wid : int; token : string; pid : int; jobs : int }
      (** worker → coordinator: a returning worker re-authenticates its
          session (in place of [Hello]) after a connection loss.  The
          coordinator requeues whatever item the session held — the
          worker discarded its in-flight frontier — and answers with a
          fresh [Welcome]. *)
  | Deny of { reason : string }
      (** coordinator → worker: admission or rejoin refused (version or
          token mismatch, at capacity, draining); the worker exits. *)

(* ------------------------------------------------------------------ *)
(* Payload encoding                                                    *)
(* ------------------------------------------------------------------ *)

let encode_exec_stats b (s : Executor.stats) =
  i64 b (Int64.of_int s.states_created);
  i64 b (Int64.of_int s.states_completed);
  i64 b (Int64.of_int s.max_live_states);
  i64 b (Int64.of_int s.forks);
  i64 b (Int64.of_int s.concrete_instret);
  i64 b (Int64.of_int s.sym_instret);
  i64 b (Int64.of_int s.footprint_watermark);
  i64 b (Int64.of_int s.concretizations);
  i64 b (Int64.of_int s.aborts);
  i64 b (Int64.of_int s.degradations)

let decode_exec_stats r : Executor.stats =
  let n () = Int64.to_int (ri64 r) in
  let states_created = n () in
  let states_completed = n () in
  let max_live_states = n () in
  let forks = n () in
  let concrete_instret = n () in
  let sym_instret = n () in
  let footprint_watermark = n () in
  let concretizations = n () in
  let aborts = n () in
  let degradations = n () in
  {
    Executor.states_created;
    states_completed;
    max_live_states;
    forks;
    concrete_instret;
    sym_instret;
    footprint_watermark;
    concretizations;
    aborts;
    degradations;
  }

let encode_solver_stats b (s : Solver.stats) =
  i64 b (Int64.of_int s.queries);
  i64 b (Int64.of_int s.sat_queries);
  i64 b (Int64.of_int s.cache_hits);
  i64 b (Int64.of_int s.unknowns);
  f64 b s.total_time;
  f64 b s.max_time;
  i64 b (Int64.of_int s.prefix_reused);
  f64 b s.prefix_reused_time;
  i64 b (Int64.of_int s.inc_hits);
  i64 b (Int64.of_int s.inc_partials);
  i64 b (Int64.of_int s.sat_learned);
  i64 b (Int64.of_int s.sat_kept)

let decode_solver_stats r : Solver.stats =
  let queries = Int64.to_int (ri64 r) in
  let sat_queries = Int64.to_int (ri64 r) in
  let cache_hits = Int64.to_int (ri64 r) in
  let unknowns = Int64.to_int (ri64 r) in
  let total_time = rf64 r in
  let max_time = rf64 r in
  let prefix_reused = Int64.to_int (ri64 r) in
  let prefix_reused_time = rf64 r in
  let inc_hits = Int64.to_int (ri64 r) in
  let inc_partials = Int64.to_int (ri64 r) in
  let sat_learned = Int64.to_int (ri64 r) in
  let sat_kept = Int64.to_int (ri64 r) in
  { Solver.queries; sat_queries; cache_hits; unknowns; total_time; max_time;
    prefix_reused; prefix_reused_time; inc_hits; inc_partials; sat_learned;
    sat_kept }

let encode_path b p =
  str b p.p_status;
  list b
    (fun (name, v) ->
      str b name;
      i64 b v)
    p.p_case

let decode_path r =
  let p_status = rstr r in
  let p_case =
    rlist r (fun r ->
        let name = rstr r in
        let v = ri64 r in
        (name, v))
  in
  { p_status; p_case }

let encode_obs_value b (v : Obs.Metrics.value) =
  match v with
  | Int n ->
      u8 b 0;
      i64 b (Int64.of_int n)
  | Float f ->
      u8 b 1;
      f64 b f
  | Hist { bounds; counts; sum } ->
      u8 b 2;
      u32 b (Array.length bounds);
      Array.iter (f64 b) bounds;
      u32 b (Array.length counts);
      Array.iter (fun c -> i64 b (Int64.of_int c)) counts;
      f64 b sum

let decode_obs_value r : Obs.Metrics.value =
  match ru8 r with
  | 0 -> Int (Int64.to_int (ri64 r))
  | 1 -> Float (rf64 r)
  | 2 ->
      let nb = ru32 r in
      if nb > 4096 then raise (Codec.Error "histogram bounds out of range");
      let bounds = Array.of_list (read_n r nb rf64) in
      let nc = ru32 r in
      if nc > 4096 then raise (Codec.Error "histogram counts out of range");
      let counts =
        Array.of_list (read_n r nc (fun r -> Int64.to_int (ri64 r)))
      in
      let sum = rf64 r in
      Hist { bounds; counts; sum }
  | t -> raise (Codec.Error (Printf.sprintf "unknown obs value tag %d" t))

let encode_obs b (snap : Obs.Metrics.snapshot) =
  list b
    (fun (name, v) ->
      str b name;
      encode_obs_value b v)
    snap

let decode_obs r : Obs.Metrics.snapshot =
  rlist r (fun r ->
      let name = rstr r in
      let v = decode_obs_value r in
      (name, v))

let encode_msg m =
  let b = create () in
  (match m with
  | Hello { version; pid; jobs } ->
      u8 b 0;
      u32 b version;
      u32 b pid;
      u32 b jobs
  | Work { item; budget; cases; blob } ->
      u8 b 1;
      u32 b item;
      f64 b budget;
      u8 b (if cases then 1 else 0);
      str b blob
  | Steal -> u8 b 2
  | Ping -> u8 b 3
  | Shutdown -> u8 b 4
  | Heartbeat { pid; frontier; now; trace } ->
      u8 b 5;
      u32 b pid;
      u32 b frontier;
      f64 b now;
      str b trace
  | Nak { item } ->
      u8 b 6;
      u32 b item
  | Result { item; paths; stats; solver } ->
      u8 b 7;
      u32 b item;
      list b (encode_path b) paths;
      encode_exec_stats b stats;
      encode_solver_stats b solver
  | Checkpoint { item; paths; stats; solver; states } ->
      u8 b 8;
      u32 b item;
      list b (encode_path b) paths;
      encode_exec_stats b stats;
      encode_solver_stats b solver;
      list b (str b) states
  | Bye { obs; now; trace } ->
      u8 b 9;
      encode_obs b obs;
      f64 b now;
      str b trace
  | Resend { from } ->
      u8 b 10;
      u32 b from
  | Welcome { wid; token; lease; baseline } ->
      u8 b 11;
      u32 b wid;
      str b token;
      f64 b lease;
      str b baseline
  | Rejoin { wid; token; pid; jobs } ->
      u8 b 12;
      u32 b wid;
      str b token;
      u32 b pid;
      u32 b jobs
  | Deny { reason } ->
      u8 b 13;
      str b reason);
  contents b

let decode_msg payload =
  let r = reader payload in
  let m =
    match ru8 r with
    | 0 ->
        let version = ru32 r in
        let pid = ru32 r in
        let jobs = ru32 r in
        Hello { version; pid; jobs }
    | 1 ->
        let item = ru32 r in
        let budget = rf64 r in
        let cases = ru8 r <> 0 in
        let blob = rstr r in
        Work { item; budget; cases; blob }
    | 2 -> Steal
    | 3 -> Ping
    | 4 -> Shutdown
    | 5 ->
        let pid = ru32 r in
        let frontier = ru32 r in
        let now = rf64 r in
        let trace = rstr r in
        Heartbeat { pid; frontier; now; trace }
    | 6 -> Nak { item = ru32 r }
    | 7 ->
        let item = ru32 r in
        let paths = rlist r decode_path in
        let stats = decode_exec_stats r in
        let solver = decode_solver_stats r in
        Result { item; paths; stats; solver }
    | 8 ->
        let item = ru32 r in
        let paths = rlist r decode_path in
        let stats = decode_exec_stats r in
        let solver = decode_solver_stats r in
        let states = rlist r rstr in
        Checkpoint { item; paths; stats; solver; states }
    | 9 ->
        let obs = decode_obs r in
        let now = rf64 r in
        let trace = rstr r in
        Bye { obs; now; trace }
    | 10 -> Resend { from = ru32 r }
    | 11 ->
        let wid = ru32 r in
        let token = rstr r in
        let lease = rf64 r in
        let baseline = rstr r in
        Welcome { wid; token; lease; baseline }
    | 12 ->
        let wid = ru32 r in
        let token = rstr r in
        let pid = ru32 r in
        let jobs = ru32 r in
        Rejoin { wid; token; pid; jobs }
    | 13 -> Deny { reason = rstr r }
    | t -> raise (Codec.Error (Printf.sprintf "unknown message tag %d" t))
  in
  if pos r <> String.length payload then
    raise (Codec.Error "trailing bytes after message");
  m

(* ------------------------------------------------------------------ *)
(* Framing and retransmission                                          *)
(* ------------------------------------------------------------------ *)

let max_frame = 256 * 1024 * 1024

(* Retransmit window: recent frames kept for Resend service.  A peer
   that falls further behind than this has desynchronized for real and
   is handled by the crash/requeue path. *)
let window_frames = 32

(* Consecutive damaged/out-of-order frames tolerated before the
   connection is declared unrecoverable. *)
let max_bad_streak = 64

(* Process-wide transport-recovery telemetry: counted on both ends, so
   the coordinator's merged snapshot accounts for worker-side recoveries
   too (they arrive with the worker's [Bye] snapshot). *)
let m_naks = Obs.Metrics.counter "dist.naks"
let m_retransmits = Obs.Metrics.counter "dist.retransmits"

(* Transport-frame trace events: tag byte + payload length per frame, and
   instants for the recovery traffic. *)
let t_frame_send = Obs.Trace.intern "frame.send"
let t_frame_recv = Obs.Trace.intern "frame.recv"
let t_frame_nak = Obs.Trace.intern "frame.nak"
let t_frame_retransmit = Obs.Trace.intern "frame.retransmit"

(** One end of a coordinator↔worker socket.  Frames carry sequence
    numbers ([u32 len | u32 seq | payload | u32 checksum]); the receiver
    delivers strictly in order, answering a damaged or out-of-order
    frame with [Resend] and dropping duplicates, so a frame corrupted in
    flight (or by the [proto.corrupt] fault plan) is recovered without
    losing or double-delivering a message. *)
type conn = {
  fd : Unix.file_descr;
  mutable tx_seq : int;  (* last sequence number sent *)
  mutable rx_seq : int;  (* last sequence number accepted in order *)
  window : (int * string) Queue.t;  (* clean recent frames, oldest first *)
  mutable naks : int;  (* Resend requests we sent *)
  mutable retransmits : int;  (* frames we re-sent on peer request *)
  mutable injected : int;  (* corruptions injected by the fault plan *)
  mutable streak : int;  (* consecutive bad frames seen *)
}

let connect fd =
  {
    fd;
    tx_seq = 0;
    rx_seq = 0;
    window = Queue.create ();
    naks = 0;
    retransmits = 0;
    injected = 0;
    streak = 0;
  }

let rec write_all fd buf ofs len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf ofs len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> raise Closed
    in
    write_all fd buf (ofs + n) (len - n)
  end

let rec read_exact fd buf ofs len =
  if len > 0 then begin
    let n =
      try Unix.read fd buf ofs len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> -1
      | Unix.Unix_error (Unix.ECONNRESET, _, _) -> raise Closed
    in
    if n = 0 then raise Closed
    else if n < 0 then read_exact fd buf ofs len (* EINTR: retry *)
    else read_exact fd buf (ofs + n) (len - n)
  end

let frame_of ~seq payload =
  let b = create () in
  u32 b (String.length payload);
  u32 b seq;
  raw b payload;
  u32 b (Codec.fnv32 payload lxor seq);
  contents b

let write_frame c frame =
  write_all c.fd (Bytes.unsafe_of_string frame) 0 (String.length frame)

(* Flip one payload byte of a copy of the frame.  The length/seq header
   stays intact so the receiver still reads whole frames off the stream;
   the checksum catches the damage and triggers retransmission.  (Truly
   torn frames — partial writes from a dying peer — desynchronize the
   stream and are exercised by the worker-kill path instead.) *)
let corrupted frame =
  let b = Bytes.of_string frame in
  let off = 8 + ((Bytes.length b - 12) / 2) in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
  Bytes.to_string b

let send c m =
  let payload = encode_msg m in
  if String.length payload > max_frame then
    raise (Codec.Error "frame too large");
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~a:(Char.code payload.[0]) ~b:(String.length payload)
      t_frame_send;
  c.tx_seq <- c.tx_seq + 1;
  let seq = c.tx_seq in
  let frame = frame_of ~seq payload in
  Queue.push (seq, frame) c.window;
  if Queue.length c.window > window_frames then ignore (Queue.pop c.window);
  let wire =
    (* Resend frames are exempt from injection, and retransmissions are
       served verbatim from the window: recovery itself always makes
       progress, even at corruption probability 1. *)
    match m with
    | Resend _ -> frame
    | _ ->
        if Fault.(fire Proto_corrupt) then begin
          c.injected <- c.injected + 1;
          corrupted frame
        end
        else frame
  in
  write_frame c wire

(* The peer reported a gap starting at [from]: re-send every windowed
   frame from there on, verbatim (original seq, no fault injection).
   The receiver's in-order discipline drops whatever it already had. *)
let serve_resend c ~from =
  if from <= c.tx_seq then begin
    (match Queue.peek_opt c.window with
    | Some (first, _) when from < first ->
        raise (Codec.Error "resend request beyond retransmit window")
    | _ -> ());
    Queue.iter
      (fun (seq, frame) ->
        if seq >= from then begin
          c.retransmits <- c.retransmits + 1;
          Obs.Metrics.incr m_retransmits;
          Obs.Trace.instant ~a:seq t_frame_retransmit;
          write_frame c frame
        end)
      c.window
  end

let request_resend c =
  c.streak <- c.streak + 1;
  if c.streak > max_bad_streak then
    raise (Codec.Error "unrecoverable frame corruption");
  c.naks <- c.naks + 1;
  Obs.Metrics.incr m_naks;
  Obs.Trace.instant ~a:(c.rx_seq + 1) t_frame_nak;
  send c (Resend { from = c.rx_seq + 1 })

(* One frame off the wire; [Error] on a checksum mismatch. *)
let read_frame c =
  let hdr = Bytes.create 8 in
  read_exact c.fd hdr 0 8;
  let r = reader (Bytes.to_string hdr) in
  let plen = ru32 r in
  if plen > max_frame then raise (Codec.Error "frame length out of range");
  let seq = ru32 r in
  let body = Bytes.create (plen + 4) in
  read_exact c.fd body 0 (plen + 4);
  let body = Bytes.to_string body in
  let payload = String.sub body 0 plen in
  let expect = ru32 (reader ~pos:plen body) in
  if expect = Codec.fnv32 payload lxor seq then Ok (seq, payload)
  else Error ()

(* Process one incoming frame.  [Some m] delivers a message; [None]
   means the frame was control traffic, a duplicate, or damaged (the
   latter answered with a Resend request). *)
let process c =
  match read_frame c with
  | Error () ->
      request_resend c;
      None
  | Ok (seq, payload) ->
      if seq <= c.rx_seq then None (* duplicate of an accepted frame *)
      else if seq > c.rx_seq + 1 then begin
        (* gap: an earlier frame never checked out *)
        request_resend c;
        None
      end
      else begin
        c.rx_seq <- seq;
        c.streak <- 0;
        if Obs.Trace.enabled () && String.length payload > 0 then
          Obs.Trace.instant ~a:(Char.code payload.[0])
            ~b:(String.length payload) t_frame_recv;
        match decode_msg payload with
        | Resend { from } ->
            serve_resend c ~from;
            None
        | m -> Some m
      end

let rec recv c = match process c with Some m -> m | None -> recv c

(** Wait up to [timeout] seconds for a frame; [None] on timeout or when
    the frame was consumed as control/recovery traffic.  [timeout = 0.]
    polls. *)
let recv_opt c ~timeout =
  match Unix.select [ c.fd ] [] [] timeout with
  | [], _, _ -> None
  | _ -> process c
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> None

(* Unix.file_descr is an int on Unix systems; distribution passes the
   worker's socket across exec via an environment variable. *)
external int_of_fd : Unix.file_descr -> int = "%identity"
external fd_of_int : int -> Unix.file_descr = "%identity"

(* ------------------------------------------------------------------ *)
(* TCP transport                                                       *)
(* ------------------------------------------------------------------ *)

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> raise Not_found
    | h -> h.Unix.h_addr_list.(0))

(* The protocol is request/response at heartbeat granularity; Nagle +
   delayed ACK would add ~40ms to every exchange, so disable it. *)
let nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

let listen ~host ~port =
  let addr = resolve host in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (addr, port));
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> invalid_arg "Proto.bound_port: not an inet socket"

let accept lfd =
  let fd, peer = Unix.accept lfd in
  nodelay fd;
  let addr =
    match peer with
    | Unix.ADDR_INET (a, p) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
    | Unix.ADDR_UNIX s -> s
  in
  (fd, addr)

let dial ~host ~port =
  let addr = resolve host in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  nodelay fd;
  fd
