(** Versioned, dependency-free binary snapshot codec for fork-point
    execution states.

    A snapshot carries everything a path owns privately — registers, the
    copy-on-write symbolic-memory overlay, the path constraint set,
    device state and plugin-visible metadata — plus a fingerprint
    (length + checksum) of the shared base image, which is {e not}
    shipped: both sides load the same guest, and a fingerprint mismatch
    is a hard decode error.

    Decoding is strict: truncation, corruption (trailing FNV-1a checksum
    over the payload), unknown tags, malformed widths or trailing bytes
    all raise {!Error}.  Expressions are rebuilt with raw constructors —
    never re-simplified — and variable/state ids are preserved verbatim,
    with the local fresh-id counters bumped past every decoded id. *)

open S2e_expr
open S2e_core

exception Error of string
(** Raised on any malformed input; decoding never returns a partial or
    best-effort state. *)

val version : int
(** Current snapshot format version, embedded in every encoding. *)

val fnv32 : string -> int
(** 32-bit FNV-1a checksum (also used by {!Proto} frames). *)

(** Little-endian wire primitives shared with {!Proto}.  Writers append
    to a growable buffer; readers consume a string left-to-right and
    raise {!Error} on underrun. *)
module Wire : sig
  type w

  val create : unit -> w
  val contents : w -> string
  val u8 : w -> int -> unit
  val u32 : w -> int -> unit
  val i64 : w -> int64 -> unit
  val f64 : w -> float -> unit
  val bool : w -> bool -> unit
  val str : w -> string -> unit
  val raw : w -> string -> unit
  val list : w -> ('a -> unit) -> 'a list -> unit

  type r

  val reader : ?pos:int -> string -> r
  val pos : r -> int
  val ru8 : r -> int
  val ru32 : r -> int
  val ri64 : r -> int64
  val rf64 : r -> float
  val rbool : r -> bool
  val rstr : r -> string
  val rlist : r -> (r -> 'a) -> 'a list

  val read_n : r -> int -> (r -> 'a) -> 'a list
  (** Read exactly [n] elements, strictly left-to-right. *)
end

val encode_expr : Expr.t -> string
(** Structural serialization; widths derivable from subexpressions are
    not stored. *)

val decode_expr : string -> Expr.t
(** Exact structural inverse of {!encode_expr} (no re-simplification),
    bumping the fresh-variable counter past every decoded id.
    @raise Error on malformed input. *)

val compress : string -> string
(** Byte-run (RLE) compression: control byte [< 0x80] introduces a
    literal run, [>= 0x80] a repeat of the following byte.  Applied to
    every full snapshot body (with a raw fallback when it does not
    shrink) and to delta edit scripts. *)

val decompress : expect:int -> string -> string
(** Strict inverse of {!compress}; the output must be exactly [expect]
    bytes.  @raise Error on malformed input or a length mismatch. *)

val encode_state : State.t -> string
(** Self-contained snapshot of one execution state (compressed when
    that shrinks it). *)

val decode_state : base:Bytes.t -> string -> State.t
(** Rebuild a state over the local [base] image.  The snapshot's base
    fingerprint must match [base]; variable and state id counters are
    bumped past every decoded id so later local forks cannot collide.
    @raise Error on malformed input or base-image mismatch. *)

val encode_delta : baseline:string -> string -> string
(** [encode_delta ~baseline blob] re-expresses the full snapshot [blob]
    as compressed copy/literal edits against [baseline] (another full
    snapshot, from {!encode_state} — the cluster's shared baseline
    negotiated at join).  Falls back to carrying the full payload when
    the delta would not be strictly smaller, so the result NEVER
    exceeds [String.length blob].  Counts [codec.delta_bytes] /
    [codec.delta_full_bytes] metrics for the wire-savings report.
    @raise Error when either input is not a valid snapshot blob. *)

val decode_delta : baseline:string -> string -> string
(** Reconstruct the exact full snapshot blob: [decode_delta ~baseline
    (encode_delta ~baseline blob) = blob], byte for byte.  @raise Error
    on malformed input or when [baseline] differs (by payload digest)
    from the one the delta was encoded against. *)

val is_delta : string -> bool
(** Whether a blob is a delta container (["S2D" ...]) rather than a full
    snapshot (["S2EC" ...]); the two are distinguishable from their
    first bytes so mixed streams self-describe. *)
