(** Length-prefixed, checksummed socket message protocol between the
    coordinator and its worker processes.

    Frame layout: [u32 payload-length | payload | u32 FNV-1a checksum].
    A torn or corrupted frame raises {!Closed} or {!Codec.Error} — never
    a half-read message.

    The work-accounting state machine is crash-consistent: a worker
    holds at most one in-flight item, retires it with exactly one
    [Result] (frontier drained) or [Checkpoint] (steal / shutdown /
    budget: remaining frontier returned whole, in one atomic message),
    and a worker death before that message simply requeues the original
    item blob — no path is lost or double-counted. *)

module Solver = S2e_solver.Solver
module Obs = S2e_obs
module Executor = S2e_core.Executor

exception Closed
(** Peer hung up: EOF, EPIPE or connection reset. *)

val version : int
(** Protocol version carried in [Hello]; a mismatch is fatal. *)

(** A terminated path as the coordinator reports it. *)
type path = {
  p_status : string;  (** {!S2e_core.State.status_string} of the end state *)
  p_case : (string * int64) list;
      (** canonical test case ({!S2e_core.Parallel.test_case}); [[]]
          when the run did not request test cases *)
}

type msg =
  | Hello of { version : int; pid : int; jobs : int }
  | Work of { item : int; budget : float; cases : bool; blob : string }
  | Steal
  | Ping
  | Shutdown
  | Heartbeat of { pid : int; frontier : int }
  | Nak of { item : int }
  | Result of {
      item : int;
      paths : path list;
      stats : Executor.stats;
      solver : Solver.stats;
    }
  | Checkpoint of {
      item : int;
      paths : path list;
      stats : Executor.stats;
      solver : Solver.stats;
      states : string list;
    }
  | Bye of { obs : Obs.Metrics.snapshot }

val encode_msg : msg -> string
(** Payload bytes (no frame header); exposed for tests. *)

val decode_msg : string -> msg
(** Strict inverse of {!encode_msg}.  @raise Codec.Error on malformed
    payloads. *)

val send : Unix.file_descr -> msg -> unit
(** Frame and write the whole message.  @raise Closed if the peer died. *)

val recv : Unix.file_descr -> msg
(** Block for one frame.  @raise Closed on EOF, @raise Codec.Error on a
    corrupt frame. *)

val recv_opt : Unix.file_descr -> timeout:float -> msg option
(** Wait up to [timeout] seconds for a frame ([0.] polls); [None] on
    timeout. *)

val int_of_fd : Unix.file_descr -> int
val fd_of_int : int -> Unix.file_descr
(** Unix file descriptors are ints; used to hand a socket across
    [exec] via the [S2E_DIST_FD] environment variable. *)
