(** Length-prefixed, checksummed, sequence-numbered socket message
    protocol between the coordinator and its worker processes.

    Frame layout: [u32 payload-length | u32 seq | payload | u32
    (FNV-1a(payload) lxor seq)].  Each direction numbers its frames
    1, 2, 3, …; the receiver delivers strictly in order.  A damaged
    frame (checksum mismatch) or a sequence gap is answered with a
    [Resend] request and the sender retransmits the missing frames
    verbatim from a small window — so a corrupted frame (in flight, or
    injected by the [proto.corrupt] fault plan) is recovered without
    losing or double-delivering a message.  Only an unrecoverable
    stream (a resend reaching beyond the window, or a long streak of
    bad frames) raises {!Codec.Error}; a dead peer raises {!Closed}.

    The work-accounting state machine is crash-consistent: a worker
    holds at most one in-flight item, retires it with exactly one
    [Result] (frontier drained) or [Checkpoint] (steal / shutdown /
    budget: remaining frontier returned whole, in one atomic message),
    and a worker death before that message simply requeues the original
    item blob — no path is lost or double-counted. *)

module Solver = S2e_solver.Solver
module Obs = S2e_obs
module Executor = S2e_core.Executor

exception Closed
(** Peer hung up: EOF, EPIPE or connection reset. *)

val version : int
(** Protocol version carried in [Hello]; a mismatch is fatal. *)

(** A terminated path as the coordinator reports it. *)
type path = {
  p_status : string;
      (** {!S2e_core.State.report_string} of the end state (includes the
          [incomplete] marker for degraded paths) *)
  p_case : (string * int64) list;
      (** canonical test case ({!S2e_core.Parallel.test_case}); [[]]
          when the run did not request test cases *)
}

type msg =
  | Hello of { version : int; pid : int; jobs : int }
  | Work of { item : int; budget : float; cases : bool; blob : string }
  | Steal
  | Ping
  | Shutdown
  | Heartbeat of { pid : int; frontier : int; now : float; trace : string }
      (** [now] is the worker's wall clock at send time (for per-worker
          clock-offset normalization) and [trace] a drained
          {!Obs.Trace} chunk — [""] when tracing is off *)
  | Nak of { item : int }
  | Result of {
      item : int;
      paths : path list;
      stats : Executor.stats;
      solver : Solver.stats;
    }
  | Checkpoint of {
      item : int;
      paths : path list;
      stats : Executor.stats;
      solver : Solver.stats;
      states : string list;
    }
  | Bye of { obs : Obs.Metrics.snapshot; now : float; trace : string }
  | Resend of { from : int }
      (** transport-recovery control traffic: "retransmit every frame
          from sequence number [from]".  Handled inside {!recv}/
          {!recv_opt}, never delivered to the application, and never
          fault-injected (recovery always makes progress). *)
  | Welcome of { wid : int; token : string; lease : float; baseline : string }
      (** coordinator → worker: TCP admission.  [wid]/[token] name the
          session for {!Rejoin}; [lease] the liveness window in
          seconds; [baseline] the shared snapshot blob deltas are
          encoded against. *)
  | Rejoin of { wid : int; token : string; pid : int; jobs : int }
      (** worker → coordinator: re-authenticate an existing session
          after a connection loss (in place of [Hello]) *)
  | Deny of { reason : string }
      (** coordinator → worker: admission/rejoin refused; worker exits *)

val encode_msg : msg -> string
(** Payload bytes (no frame header); exposed for tests. *)

val decode_msg : string -> msg
(** Strict inverse of {!encode_msg}.  @raise Codec.Error on malformed
    payloads. *)

type conn = {
  fd : Unix.file_descr;
  mutable tx_seq : int;  (** last sequence number sent *)
  mutable rx_seq : int;  (** last sequence number accepted in order *)
  window : (int * string) Queue.t;
      (** clean recent frames kept for retransmission, oldest first *)
  mutable naks : int;  (** [Resend] requests this end sent *)
  mutable retransmits : int;  (** frames re-sent on peer request *)
  mutable injected : int;  (** corruptions injected by the fault plan *)
  mutable streak : int;  (** consecutive bad frames seen *)
}
(** One end of a coordinator↔worker socket: the fd plus the sequencing
    and retransmission state.  Counter fields are exposed so the
    coordinator can fold per-connection recovery telemetry into its
    final report. *)

val connect : Unix.file_descr -> conn
(** Wrap a connected socket.  Both ends must wrap the same stream
    exactly once; sequence numbers start at 1. *)

val send : conn -> msg -> unit
(** Frame, window and write the whole message; injection point of the
    [proto.corrupt] fault plan.  @raise Closed if the peer died. *)

val recv : conn -> msg
(** Block until one application message is delivered in order (recovery
    traffic is serviced internally).  @raise Closed on EOF,
    @raise Codec.Error on an unrecoverable stream. *)

val recv_opt : conn -> timeout:float -> msg option
(** Wait up to [timeout] seconds ([0.] polls); [None] on timeout or when
    the frame read was consumed as recovery/control traffic (duplicate,
    damaged-and-NAKed, or [Resend] service). *)

val int_of_fd : Unix.file_descr -> int
val fd_of_int : int -> Unix.file_descr
(** Unix file descriptors are ints; used to hand a socket across
    [exec] via the [S2E_DIST_FD] environment variable. *)

val listen : host:string -> port:int -> Unix.file_descr
(** Bind and listen on [host:port] (with [SO_REUSEADDR]); [port = 0]
    picks an ephemeral port, recovered with {!bound_port}.  [host] may
    be a dotted quad or a resolvable name. *)

val bound_port : Unix.file_descr -> int
(** Local port of a bound socket. *)

val accept : Unix.file_descr -> Unix.file_descr * string
(** Accept one pending connection off a {!listen} socket; returns the
    connected fd (with [TCP_NODELAY] set) and a printable peer
    address. *)

val dial : host:string -> port:int -> Unix.file_descr
(** Connect to a coordinator at [host:port]; [TCP_NODELAY] set.
    Raises the underlying [Unix.Unix_error] on failure (callers retry
    with backoff). *)
